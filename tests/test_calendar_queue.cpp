// Differential lockdown of the controller's hierarchical calendar queue
// (src/controller/calendar_queue.hpp) against a plain binary min-heap —
// the structure it replaced. The EventQueue's determinism contract says
// pop order is exactly the sorted multiset order of the inserted times,
// so for any interleaving of inserts and pops the two structures must
// agree on every pop and every min(). The property tests sweep the time
// distributions that stress different code paths: clustered (steady-state
// controller wake-ups, a handful of adjacent buckets), sparse (fruitless
// year scans, direct-scan fallback), far-future (overflow tier and its
// migration), and past-time inserts after the clock advanced (floor
// decreases).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <queue>
#include <vector>

#include "src/controller/calendar_queue.hpp"
#include "src/controller/event_queue.hpp"
#include "src/util/random.hpp"

namespace rps::ctrl {
namespace {

using MinHeap =
    std::priority_queue<Microseconds, std::vector<Microseconds>, std::greater<>>;

/// Drive both structures through the same insert/pop interleaving and
/// require identical min() before and identical values from every pop.
void run_differential(const std::vector<Microseconds>& times, Rng& rng,
                      double pop_probability) {
  CalendarQueue queue;
  MinHeap heap;
  std::size_t next = 0;
  while (next < times.size() || !heap.empty()) {
    const bool can_pop = !heap.empty();
    const bool do_pop = can_pop && (next >= times.size() ||
                                    rng.chance(pop_probability));
    if (do_pop) {
      ASSERT_EQ(queue.min(), heap.top());
      ASSERT_EQ(queue.pop_min(), heap.top());
      heap.pop();
    } else {
      queue.insert(times[next]);
      heap.push(times[next]);
      ++next;
    }
    ASSERT_EQ(queue.size(), heap.size());
    if (!heap.empty()) ASSERT_EQ(queue.min(), heap.top());
  }
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueue, PopsInSortedOrder) {
  CalendarQueue queue;
  const std::vector<Microseconds> times = {500, 100, 900, 100, 300, 0, 700};
  for (const Microseconds t : times) queue.insert(t);
  std::vector<Microseconds> sorted = times;
  std::sort(sorted.begin(), sorted.end());
  for (const Microseconds expect : sorted) {
    ASSERT_FALSE(queue.empty());
    EXPECT_EQ(queue.min(), expect);
    EXPECT_EQ(queue.pop_min(), expect);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueue, ClusteredTimesDifferential) {
  // The controller's steady state: wake-ups within a few op latencies of
  // an advancing clock.
  Rng rng(101);
  std::vector<Microseconds> times;
  Microseconds clock = 0;
  for (int i = 0; i < 4000; ++i) {
    clock += static_cast<Microseconds>(rng.next_below(40));
    times.push_back(clock + static_cast<Microseconds>(rng.next_below(1500)));
  }
  run_differential(times, rng, 0.5);
}

TEST(CalendarQueue, SparseTimesDifferential) {
  // Events many empty years apart: every find-min walks a fruitless
  // cycle and must fall back to the exact direct scan.
  Rng rng(202);
  std::vector<Microseconds> times;
  for (int i = 0; i < 600; ++i) {
    times.push_back(static_cast<Microseconds>(rng.next_below(1'000'000'000)));
  }
  run_differential(times, rng, 0.4);
}

TEST(CalendarQueue, FarFutureOverflowDifferential) {
  // A near-clock cluster plus events far past one year: the latter land
  // in the overflow tier and must migrate down as the cluster drains.
  Rng rng(303);
  std::vector<Microseconds> times;
  for (int i = 0; i < 3000; ++i) {
    const bool far = rng.chance(0.2);
    times.push_back(far ? 10'000'000 + static_cast<Microseconds>(
                                           rng.next_below(100'000'000))
                        : static_cast<Microseconds>(rng.next_below(4'000)));
  }
  run_differential(times, rng, 0.45);
}

TEST(CalendarQueue, PastTimeInsertAfterClockAdvance) {
  // Pop the queue forward, then insert times below everything popped —
  // the cached min and the year-scan floor must handle a decrease.
  CalendarQueue queue;
  for (Microseconds t = 1000; t <= 5000; t += 1000) queue.insert(t);
  EXPECT_EQ(queue.pop_min(), 1000);
  EXPECT_EQ(queue.pop_min(), 2000);
  queue.insert(7);
  EXPECT_EQ(queue.min(), 7);
  EXPECT_EQ(queue.pop_min(), 7);
  EXPECT_EQ(queue.pop_min(), 3000);
  queue.insert(1);
  queue.insert(9'000'000);
  EXPECT_EQ(queue.pop_min(), 1);
  EXPECT_EQ(queue.pop_min(), 4000);
  EXPECT_EQ(queue.pop_min(), 5000);
  EXPECT_EQ(queue.pop_min(), 9'000'000);
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueue, DuplicateTimestampsCollapseToValueIdentity) {
  CalendarQueue queue;
  for (int i = 0; i < 100; ++i) queue.insert(42);
  queue.insert(41);
  queue.insert(43);
  EXPECT_EQ(queue.size(), 102u);
  EXPECT_EQ(queue.pop_min(), 41);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(queue.pop_min(), 42);
  EXPECT_EQ(queue.pop_min(), 43);
}

TEST(CalendarQueue, GrowsUnderLoadAndStaysSorted) {
  CalendarQueue queue;
  const std::size_t initial_buckets = queue.bucket_count();
  Rng rng(404);
  std::vector<Microseconds> times;
  for (int i = 0; i < 20'000; ++i) {
    times.push_back(static_cast<Microseconds>(rng.next_below(100'000)));
  }
  for (const Microseconds t : times) queue.insert(t);
  EXPECT_GT(queue.bucket_count(), initial_buckets);
  std::sort(times.begin(), times.end());
  for (const Microseconds expect : times) ASSERT_EQ(queue.pop_min(), expect);
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueue, ClearResets) {
  CalendarQueue queue;
  for (int i = 0; i < 50; ++i) queue.insert(i * 1000);
  queue.insert(100'000'000);  // overflow tier too
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  queue.insert(5);
  EXPECT_EQ(queue.min(), 5);
  EXPECT_EQ(queue.pop_min(), 5);
}

/// Reference model of the EventQueue's coalescing semantics over a plain
/// heap — the exact pre-calendar-queue implementation.
class HeapEventQueue {
 public:
  void schedule(Microseconds t) {
    if (processing_ && t <= current_) return;
    if (!heap_.empty() && t == heap_.top()) return;
    heap_.push(t);
  }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  Microseconds pop() {
    const Microseconds t = heap_.top();
    heap_.pop();
    current_ = t;
    processing_ = true;
    return t;
  }
  void end_instant() { processing_ = false; }

 private:
  MinHeap heap_;
  Microseconds current_ = 0;
  bool processing_ = false;
};

// The EventQueue over the calendar queue must behave exactly like the
// heap-backed one under a recorded-controller-style stream: redundant
// wake-ups at the current minimum, re-wakes at or before the instant
// being processed, and fresh times in between.
TEST(EventQueue, DifferentialAgainstHeapSemantics) {
  Rng rng(505);
  EventQueue queue;
  HeapEventQueue reference;
  Microseconds clock = 0;
  for (int round = 0; round < 3000; ++round) {
    const int inserts = 1 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < inserts; ++i) {
      // Mix in exact duplicates of the current min (the dominant
      // controller pattern) and past times.
      Microseconds t;
      const double kind = rng.next_double();
      if (kind < 0.3 && !reference.empty()) {
        t = clock + static_cast<Microseconds>(rng.next_below(200));
      } else if (kind < 0.5) {
        t = clock > 100 ? clock - static_cast<Microseconds>(rng.next_below(100))
                        : clock;
      } else {
        t = clock + static_cast<Microseconds>(rng.next_below(2000));
      }
      queue.schedule(t);
      reference.schedule(t);
      ASSERT_EQ(queue.size(), reference.size());
    }
    if (!reference.empty()) {
      const Microseconds expect = reference.pop();
      ASSERT_FALSE(queue.empty());
      ASSERT_EQ(queue.pop(), expect);
      clock = expect;
      // Re-wakes during the instant are dropped by both.
      queue.schedule(clock);
      reference.schedule(clock);
      queue.schedule(clock > 10 ? clock - 10 : 0);
      reference.schedule(clock > 10 ? clock - 10 : 0);
      ASSERT_EQ(queue.size(), reference.size());
      if (rng.chance(0.9)) {
        queue.end_instant();
        reference.end_instant();
      }
    }
  }
  while (!reference.empty()) {
    ASSERT_EQ(queue.pop(), reference.pop());
    queue.end_instant();
    reference.end_instant();
  }
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, CoalescesDuplicateOfCurrentMin) {
  EventQueue queue;
  queue.schedule(100);
  queue.schedule(100);  // exact duplicate of the min: dropped
  queue.schedule(200);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop(), 100);
  queue.end_instant();
  EXPECT_EQ(queue.pop(), 200);
}

TEST(EventQueue, DropsReWakesDuringProcessingWindow) {
  EventQueue queue;
  queue.schedule(100);
  EXPECT_EQ(queue.pop(), 100);
  // Mid-instant: anything at or before the popped time is redundant.
  queue.schedule(100);
  queue.schedule(50);
  EXPECT_TRUE(queue.empty());
  queue.schedule(150);  // strictly later: kept
  EXPECT_EQ(queue.size(), 1u);
  queue.end_instant();
  // After the instant closes, earlier times are accepted again.
  queue.schedule(120);
  EXPECT_EQ(queue.pop(), 120);
}

}  // namespace
}  // namespace rps::ctrl
