// Plane-aware device tests: unit addressing, PhysicalAddress round-trips,
// multi-plane program/erase window alignment, cache-program pipelining,
// and power loss cutting through a multi-plane group.
#include <gtest/gtest.h>

#include "src/nand/device.hpp"

namespace rps::nand {
namespace {

Geometry planes2() {
  Geometry g = Geometry::tiny();  // 2 channels x 2 chips
  g.planes_per_chip = 2;          // -> 8 units, units 2d and 2d+1 share die d
  return g;
}

TEST(PlaneGeometry, UnitDecomposition) {
  const Geometry g = planes2();
  EXPECT_EQ(g.num_chips(), 4u);
  EXPECT_EQ(g.num_units(), 8u);
  for (std::uint32_t u = 0; u < g.num_units(); ++u) {
    EXPECT_EQ(g.chip_of_unit(u), u / 2);
    EXPECT_EQ(g.plane_of_unit(u), u % 2);
    EXPECT_EQ(g.unit_of(g.chip_of_unit(u), g.plane_of_unit(u)), u);
    // All planes of a die sit on the die's channel.
    EXPECT_EQ(g.channel_of_unit(u), g.channel_of_chip(u / 2));
  }
  EXPECT_EQ(g.pages_per_chip(), 2 * g.pages_per_unit());
}

TEST(PhysicalAddress, RoundTripsThroughPageAddress) {
  const Geometry g = planes2();
  const PageAddress page{5, 3, {7, PageType::kMsb}};  // unit 5 = die 2 plane 1
  const PhysicalAddress phys = PhysicalAddress::from_page(g, page);
  EXPECT_EQ(phys.chip, 2u);
  EXPECT_EQ(phys.plane, 1u);
  EXPECT_EQ(phys.channel, g.channel_of_chip(2));
  EXPECT_EQ(phys.block, 3u);
  const PageAddress back = phys.to_page(g);
  EXPECT_EQ(back.chip, page.chip);
  EXPECT_EQ(back.block, page.block);
  EXPECT_TRUE(back.pos == page.pos);
  EXPECT_FALSE(phys.to_string().empty());
}

TEST(MultiPlaneProgram, AlignsCellWindowsAndPaysLatencyOnce) {
  NandDevice dev(planes2(), TimingSpec::paper(), SequenceKind::kRps);
  const PagePos pos{0, PageType::kLsb};
  // Both planes of die 0 (units 0 and 1), same block offset and position.
  const Result<OpTiming> op =
      dev.multi_plane_program({{0, 0, pos}, {1, 0, pos}}, {{}, {}}, 0);
  ASSERT_TRUE(op.is_ok());
  const Microseconds transfer = TimingSpec::paper().transfer_us;
  // Two serialized transfers on the die's channel, then one aligned
  // 500 us LSB window: the pair completes at 2*transfer + 500, not
  // 2*(transfer + 500).
  EXPECT_EQ(op.value().start, 0);
  EXPECT_EQ(op.value().complete, 2 * transfer + 500);
  EXPECT_EQ(dev.chip(0).busy_until(), dev.chip(1).busy_until());
  // Each plane's counters saw its own program.
  EXPECT_EQ(dev.chip(0).counters().lsb_programs, 1u);
  EXPECT_EQ(dev.chip(1).counters().lsb_programs, 1u);
}

TEST(MultiPlaneProgram, RejectsMalformedGroups) {
  NandDevice dev(planes2(), TimingSpec::paper(), SequenceKind::kRps);
  const PagePos pos{0, PageType::kLsb};
  // Units 1 and 2 live on different dies.
  EXPECT_EQ(dev.multi_plane_program({{1, 0, pos}, {2, 0, pos}}, {{}, {}}, 0).code(),
            ErrorCode::kInvalidArgument);
  // Same unit twice.
  EXPECT_EQ(dev.multi_plane_program({{0, 0, pos}, {0, 0, pos}}, {{}, {}}, 0).code(),
            ErrorCode::kInvalidArgument);
  // Different block offsets.
  EXPECT_EQ(dev.multi_plane_program({{0, 0, pos}, {1, 1, pos}}, {{}, {}}, 0).code(),
            ErrorCode::kInvalidArgument);
  // Different page positions.
  EXPECT_EQ(dev.multi_plane_program({{0, 0, pos}, {1, 0, {1, PageType::kLsb}}},
                                    {{}, {}}, 0)
                .code(),
            ErrorCode::kInvalidArgument);
  // Group larger than the plane count.
  EXPECT_EQ(dev.multi_plane_program({{0, 0, pos}, {1, 0, pos}, {2, 0, pos}},
                                    {{}, {}, {}}, 0)
                .code(),
            ErrorCode::kInvalidArgument);
  // A rejected group leaves every timeline untouched.
  EXPECT_EQ(dev.all_idle_at(), 0);
}

TEST(MultiPlaneProgram, RejectionHasNoSideEffects) {
  NandDevice dev(planes2(), TimingSpec::paper(), SequenceKind::kRps);
  const PagePos pos{0, PageType::kLsb};
  // Make member 1 illegal (its page is already programmed) while member 0
  // stays legal. Validation runs before any media or timeline effect, so
  // the rejected group must leave member 0's page unprogrammed too.
  ASSERT_TRUE(dev.program({1, 0, pos}, {}, 0).is_ok());
  const Microseconds idle = dev.all_idle_at();
  EXPECT_FALSE(dev.multi_plane_program({{0, 0, pos}, {1, 0, pos}},
                                       {{}, {}}, idle)
                   .is_ok());
  EXPECT_TRUE(dev.can_program({0, 0, pos}).is_ok());
  EXPECT_EQ(dev.chip(0).counters().lsb_programs, 0u);
  EXPECT_EQ(dev.all_idle_at(), idle);
}

TEST(MultiPlaneErase, OneAlignedEraseWindow) {
  NandDevice dev(planes2(), TimingSpec::paper(), SequenceKind::kRps);
  const Result<OpTiming> op = dev.multi_plane_erase({{2, 5}, {3, 5}}, 100);
  ASSERT_TRUE(op.is_ok());
  EXPECT_EQ(op.value().start, 100);
  EXPECT_EQ(op.value().complete, 100 + TimingSpec::paper().erase_us);
  EXPECT_EQ(dev.chip(2).counters().erases, 1u);
  EXPECT_EQ(dev.chip(3).counters().erases, 1u);
  // Mismatched dies and offsets are rejected.
  EXPECT_EQ(dev.multi_plane_erase({{0, 1}, {2, 1}}, 0).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(dev.multi_plane_erase({{0, 1}, {1, 2}}, 0).code(),
            ErrorCode::kInvalidArgument);
}

TEST(MultiPlaneErase, WaitsForTheBusiestMember) {
  NandDevice dev(planes2(), TimingSpec::paper(), SequenceKind::kRps);
  // Keep plane 1 of die 0 busy with a program.
  ASSERT_TRUE(dev.program({1, 0, {0, PageType::kLsb}}, {}, 0).is_ok());
  const Microseconds busy = dev.chip(1).busy_until();
  ASSERT_GT(busy, 0);
  const Result<OpTiming> op = dev.multi_plane_erase({{0, 1}, {1, 1}}, 0);
  ASSERT_TRUE(op.is_ok());
  // Both planes erase in one window, aligned after the busy member.
  EXPECT_EQ(op.value().start, busy);
  EXPECT_EQ(dev.chip(0).busy_until(), dev.chip(1).busy_until());
}

TEST(CacheProgram, KnobGatesTransferCellOverlap) {
  // Two back-to-back programs on one unit. With cache-program (default)
  // the second transfer rides the bus while the first cell op runs; with
  // the knob off the second transfer waits for the unit to go idle.
  const Microseconds transfer = TimingSpec::paper().transfer_us;
  NandDevice cached(planes2(), TimingSpec::paper(), SequenceKind::kRps);
  ASSERT_TRUE(cached.cache_program());
  ASSERT_TRUE(cached.program({0, 0, {0, PageType::kLsb}}, {}, 0).is_ok());
  const Result<OpTiming> piped = cached.program({0, 0, {1, PageType::kLsb}}, {}, 0);
  ASSERT_TRUE(piped.is_ok());
  EXPECT_EQ(piped.value().start, transfer);  // bus free right after transfer 1

  NandDevice strict(planes2(), TimingSpec::paper(), SequenceKind::kRps);
  strict.set_cache_program(false);
  ASSERT_TRUE(strict.program({0, 0, {0, PageType::kLsb}}, {}, 0).is_ok());
  const Microseconds busy = strict.chip(0).busy_until();
  const Result<OpTiming> serial = strict.program({0, 0, {1, PageType::kLsb}}, {}, 0);
  ASSERT_TRUE(serial.is_ok());
  EXPECT_EQ(serial.value().start, busy);  // transfer waits out the cell op
  // The cell op serializes on the unit either way; the knob moves the
  // transfer out from under the previous cell window, costing exactly one
  // bus transfer of extra latency per same-unit back-to-back program.
  EXPECT_EQ(serial.value().complete - piped.value().complete, transfer);
}

TEST(MultiPlanePowerLoss, CutThroughGroupYieldsOneVictimPerPlane) {
  NandDevice dev(planes2(), TimingSpec::paper(), SequenceKind::kRps);
  const PagePos pos{0, PageType::kLsb};
  const Result<OpTiming> op =
      dev.multi_plane_program({{0, 2, pos}, {1, 2, pos}}, {{}, {}}, 0);
  ASSERT_TRUE(op.is_ok());
  // Cut inside the aligned cell window: both planes lose their page.
  const std::vector<PowerLossVictim> victims =
      dev.inject_power_loss(op.value().complete - 1);
  ASSERT_EQ(victims.size(), 2u);
  for (const PowerLossVictim& v : victims) {
    EXPECT_EQ(v.block, 2u);
    EXPECT_TRUE(v.pos == pos);
  }
  EXPECT_NE(victims[0].chip, victims[1].chip);
}

TEST(PlanesDefaultOff, SinglePlaneGeometryIsUnchanged) {
  // planes_per_chip = 1: units == chips and a 1-member multi-plane group
  // degenerates to a plain program.
  NandDevice dev(Geometry::tiny(), TimingSpec::paper(), SequenceKind::kRps);
  EXPECT_EQ(dev.num_units(), Geometry::tiny().num_chips());
  const Result<OpTiming> single =
      dev.multi_plane_program({{0, 0, {0, PageType::kLsb}}}, {{}}, 0);
  ASSERT_TRUE(single.is_ok());
  EXPECT_EQ(single.value().complete, TimingSpec::paper().transfer_us + 500);
  // A 2-member group cannot exist on a single-plane die.
  EXPECT_EQ(dev.multi_plane_erase({{0, 0}, {1, 0}}, 0).code(),
            ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace rps::nand
