#include "src/util/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace rps {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(9);
  std::map<std::uint64_t, int> seen;
  for (int i = 0; i < 10000; ++i) ++seen[rng.next_below(7)];
  EXPECT_EQ(seen.size(), 7u);
  for (const auto& [value, count] : seen) {
    EXPECT_GT(count, 10000 / 7 / 2) << "residue " << value << " under-sampled";
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(21);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(40.0);
  EXPECT_NEAR(sum / n, 40.0, 1.0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(25);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  std::vector<int> original = v;
  rng.shuffle(v);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), original.begin()));  // overwhelmingly likely
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Zipf, SamplesWithinRange) {
  Rng rng(27);
  ZipfGenerator zipf(1000, 0.9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.sample(rng), 1000u);
}

TEST(Zipf, SkewConcentratesOnLowRanks) {
  Rng rng(29);
  ZipfGenerator zipf(10000, 0.9);
  std::uint64_t top_decile = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (zipf.sample(rng) < 1000) ++top_decile;
  }
  // With theta = 0.9 the hottest 10% of items take well over half the mass.
  EXPECT_GT(static_cast<double>(top_decile) / n, 0.55);
}

TEST(Zipf, HigherThetaIsMoreSkewed) {
  Rng rng(31);
  ZipfGenerator mild(10000, 0.5);
  ZipfGenerator hot(10000, 0.95);
  auto top_share = [&](ZipfGenerator& z) {
    int hits = 0;
    for (int i = 0; i < 30000; ++i) hits += z.sample(rng) < 100 ? 1 : 0;
    return hits;
  };
  EXPECT_LT(top_share(mild), top_share(hot));
}

TEST(Zipf, SingleItem) {
  Rng rng(33);
  ZipfGenerator zipf(1, 0.9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

}  // namespace
}  // namespace rps
