// Snapshot round-trip lockdown (src/sim/snapshot.hpp).
//
// The serializer's contract is: capture → restore into a fresh same-config
// FTL → capture again must produce the identical canonical byte stream
// (equal digests), and the restored instance must be behaviorally
// indistinguishable — the same post-restore op sequence drives both
// instances to the same state. Property-tested over all five MLC FTLs x
// planes 1/2/4, the TLC FTL, and across a file save/load boundary.
//
// GoldenDigests pins the capture digest of a fixed fill on the paper
// geometry (tests/data/snapshot_digests_paper.txt): any change to the
// snapshot encoding, the FTL placement logic, or the device model shows
// up as a digest mismatch and must come with a version bump + new goldens.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/flex_tlc_ftl.hpp"
#include "src/ftl/ftl_base.hpp"
#include "src/sim/runner.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/snapshot.hpp"
#include "src/util/random.hpp"

namespace rps::sim {
namespace {

constexpr FtlKind kKinds[] = {FtlKind::kPage, FtlKind::kParity, FtlKind::kRtf,
                              FtlKind::kFlex, FtlKind::kSlc};

ftl::FtlConfig planes_config(std::uint32_t planes) {
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  config.geometry.planes_per_chip = planes;
  return config;
}

/// Deterministic mixed fill: sequential cover of 60% of the exported
/// space, then random overwrites (enough to trigger GC on the tiny
/// device) — the state a trial would fork from.
void fill(ftl::FtlBase& ftl, std::uint64_t seed) {
  const Lpn span = ftl.exported_pages() * 6 / 10;
  for (Lpn lpn = 0; lpn < span; ++lpn) {
    ASSERT_TRUE(ftl.write(lpn, ftl.device().all_idle_at(), 0.5).is_ok());
  }
  Rng rng(seed);
  for (int i = 0; i < 300; ++i) {
    const Lpn lpn = rng.next_below(span);
    ASSERT_TRUE(ftl.write(lpn, ftl.device().all_idle_at(), 0.5).is_ok());
  }
}

struct Case {
  FtlKind kind;
  std::uint32_t planes;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  return std::string(to_string(info.param.kind)) + "_planes" +
         std::to_string(info.param.planes);
}

class SnapshotRoundTrip : public testing::TestWithParam<Case> {};

TEST_P(SnapshotRoundTrip, RestoreReproducesDigest) {
  const Case param = GetParam();
  const ftl::FtlConfig config = planes_config(param.planes);
  std::unique_ptr<ftl::FtlBase> original = make_ftl(param.kind, config);
  fill(*original, 0xabcd + param.planes);

  const Snapshot snapshot = Snapshot::capture(*original);
  ASSERT_TRUE(snapshot.valid());
  EXPECT_EQ(snapshot.ftl_name(), original->name());

  std::unique_ptr<ftl::FtlBase> restored = make_ftl(param.kind, config);
  ASSERT_TRUE(snapshot.restore(*restored));
  EXPECT_TRUE(restored->check_consistency());
  EXPECT_EQ(Snapshot::capture(*restored).digest(), snapshot.digest());
}

TEST_P(SnapshotRoundTrip, RestoredInstanceIsBehaviorallyIdentical) {
  const Case param = GetParam();
  const ftl::FtlConfig config = planes_config(param.planes);
  std::unique_ptr<ftl::FtlBase> original = make_ftl(param.kind, config);
  fill(*original, 0x1234 + param.planes);
  const Snapshot snapshot = Snapshot::capture(*original);
  std::unique_ptr<ftl::FtlBase> restored = make_ftl(param.kind, config);
  ASSERT_TRUE(snapshot.restore(*restored));

  // Drive both instances through the same post-fork op sequence; every
  // divergence in placement, GC, timing, or read results would separate
  // the final digests.
  Rng rng(0x5555);
  const Lpn span = original->exported_pages();
  for (int i = 0; i < 400; ++i) {
    const Lpn lpn = rng.next_below(span);
    if (rng.chance(0.3)) {
      const Result<ftl::HostOp> a = original->read(lpn, original->device().all_idle_at());
      const Result<ftl::HostOp> b = restored->read(lpn, restored->device().all_idle_at());
      ASSERT_EQ(a.is_ok(), b.is_ok());
      if (a.is_ok()) ASSERT_EQ(a.value().complete, b.value().complete);
    } else {
      const Result<ftl::HostOp> a =
          original->write(lpn, original->device().all_idle_at(), 0.5);
      const Result<ftl::HostOp> b =
          restored->write(lpn, restored->device().all_idle_at(), 0.5);
      ASSERT_EQ(a.is_ok(), b.is_ok());
      if (a.is_ok()) ASSERT_EQ(a.value().complete, b.value().complete);
    }
  }
  EXPECT_EQ(Snapshot::capture(*original).digest(),
            Snapshot::capture(*restored).digest());
}

INSTANTIATE_TEST_SUITE_P(
    AllFtlsAllPlanes, SnapshotRoundTrip,
    testing::Values(Case{FtlKind::kPage, 1}, Case{FtlKind::kPage, 2},
                    Case{FtlKind::kPage, 4}, Case{FtlKind::kParity, 1},
                    Case{FtlKind::kParity, 2}, Case{FtlKind::kParity, 4},
                    Case{FtlKind::kRtf, 1}, Case{FtlKind::kRtf, 2},
                    Case{FtlKind::kRtf, 4}, Case{FtlKind::kFlex, 1},
                    Case{FtlKind::kFlex, 2}, Case{FtlKind::kFlex, 4},
                    Case{FtlKind::kSlc, 1}, Case{FtlKind::kSlc, 2},
                    Case{FtlKind::kSlc, 4}),
    case_name);

TEST(SnapshotTlc, RoundTripReproducesDigest) {
  const core::TlcFtlConfig config = core::TlcFtlConfig::tiny();
  core::FlexTlcFtl original(config);
  const Lpn span = original.exported_pages() * 6 / 10;
  for (Lpn lpn = 0; lpn < span; ++lpn) {
    ASSERT_TRUE(original.write(lpn, original.device().all_idle_at(), 0.5).is_ok());
  }
  Rng rng(0x7c7c);
  for (int i = 0; i < 200; ++i) {
    const Lpn lpn = rng.next_below(span);
    ASSERT_TRUE(original.write(lpn, original.device().all_idle_at(), 0.5).is_ok());
  }

  const Snapshot snapshot = Snapshot::capture(original);
  ASSERT_TRUE(snapshot.valid());
  EXPECT_EQ(snapshot.ftl_name(), original.name());

  core::FlexTlcFtl restored(config);
  ASSERT_TRUE(snapshot.restore(restored));
  EXPECT_TRUE(restored.check_consistency());
  EXPECT_EQ(Snapshot::capture(restored).digest(), snapshot.digest());

  // Same post-fork writes, same resulting state.
  for (int i = 0; i < 150; ++i) {
    const Lpn lpn = rng.next_below(span);
    const auto a = original.write(lpn, original.device().all_idle_at(), 0.5);
    const auto b = restored.write(lpn, restored.device().all_idle_at(), 0.5);
    ASSERT_EQ(a.is_ok(), b.is_ok());
    if (a.is_ok()) ASSERT_EQ(a.value(), b.value());
  }
  EXPECT_EQ(Snapshot::capture(original).digest(),
            Snapshot::capture(restored).digest());
}

TEST(SnapshotFile, SaveLoadRoundTrip) {
  const ftl::FtlConfig config = ftl::FtlConfig::tiny();
  std::unique_ptr<ftl::FtlBase> ftl = make_ftl(FtlKind::kFlex, config);
  fill(*ftl, 0xf11e);
  const Snapshot snapshot = Snapshot::capture(*ftl);

  const std::string path = testing::TempDir() + "rps_snapshot_roundtrip.bin";
  ASSERT_TRUE(snapshot.save_file(path));
  const std::optional<Snapshot> loaded = Snapshot::load_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->digest(), snapshot.digest());

  std::unique_ptr<ftl::FtlBase> restored = make_ftl(FtlKind::kFlex, config);
  ASSERT_TRUE(loaded->restore(*restored));
  EXPECT_EQ(Snapshot::capture(*restored).digest(), snapshot.digest());
  std::remove(path.c_str());
}

TEST(SnapshotFile, TruncatedFileIsRejected) {
  const ftl::FtlConfig config = ftl::FtlConfig::tiny();
  std::unique_ptr<ftl::FtlBase> ftl = make_ftl(FtlKind::kPage, config);
  fill(*ftl, 0x7e57);
  const Snapshot snapshot = Snapshot::capture(*ftl);

  const std::string path = testing::TempDir() + "rps_snapshot_truncated.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(snapshot.bytes().data()),
              static_cast<std::streamsize>(snapshot.bytes().size() / 2));
  }
  EXPECT_FALSE(Snapshot::load_file(path).has_value());
  std::remove(path.c_str());
}

TEST(SnapshotValidation, CorruptedPayloadFailsChecksum) {
  const ftl::FtlConfig config = ftl::FtlConfig::tiny();
  std::unique_ptr<ftl::FtlBase> ftl = make_ftl(FtlKind::kParity, config);
  fill(*ftl, 0xbad);
  const Snapshot snapshot = Snapshot::capture(*ftl);

  std::vector<std::uint8_t> bytes = snapshot.bytes();
  bytes[bytes.size() / 2] ^= 0x01;  // one bit, middle of the payload
  const Snapshot corrupted = Snapshot::from_bytes(std::move(bytes));
  EXPECT_TRUE(corrupted.empty());

  std::unique_ptr<ftl::FtlBase> target = make_ftl(FtlKind::kParity, config);
  EXPECT_FALSE(corrupted.restore(*target));
}

TEST(SnapshotValidation, WrongFtlKindIsRejected) {
  const ftl::FtlConfig config = ftl::FtlConfig::tiny();
  std::unique_ptr<ftl::FtlBase> page = make_ftl(FtlKind::kPage, config);
  fill(*page, 0x0dd);
  const Snapshot snapshot = Snapshot::capture(*page);

  std::unique_ptr<ftl::FtlBase> parity = make_ftl(FtlKind::kParity, config);
  EXPECT_FALSE(snapshot.restore(*parity));

  core::FlexTlcFtl tlc(core::TlcFtlConfig::tiny());
  EXPECT_FALSE(snapshot.restore(tlc));
}

TEST(SnapshotValidation, WrongGeometryIsRejected) {
  std::unique_ptr<ftl::FtlBase> small =
      make_ftl(FtlKind::kFlex, ftl::FtlConfig::tiny());
  fill(*small, 0x9e0);
  const Snapshot snapshot = Snapshot::capture(*small);

  ftl::FtlConfig bigger = ftl::FtlConfig::tiny();
  bigger.geometry.blocks_per_chip *= 2;
  std::unique_ptr<ftl::FtlBase> target = make_ftl(FtlKind::kFlex, bigger);
  EXPECT_FALSE(snapshot.restore(*target));
}

// Golden digests: capture digest of a fixed 5% precondition fill on the
// paper geometry, one per FTL. Pinned in the repo so serialization-format
// or placement-behavior drift cannot land silently. Regenerate (after an
// intentional format change + kVersion bump) by running this test and
// copying the "actual" values from the failure output into
// tests/data/snapshot_digests_paper.txt.
TEST(SnapshotGolden, PaperGeometryDigestsMatchPinned) {
  std::map<std::string, std::string> pinned;
  {
    std::ifstream in(std::string(RPS_TESTS_DATA_DIR) +
                     "/snapshot_digests_paper.txt");
    ASSERT_TRUE(in.good()) << "missing tests/data/snapshot_digests_paper.txt";
    std::string name, digest;
    while (in >> name >> digest) pinned[name] = digest;
  }
  ASSERT_EQ(pinned.size(), std::size(kKinds));

  ExperimentSpec spec;  // paper geometry: the FtlConfig default
  spec.sim.precondition_fraction = 0.05;
  for (const FtlKind kind : kKinds) {
    const Snapshot snapshot = make_precondition_snapshot(kind, spec);
    char actual[17];
    std::snprintf(actual, sizeof actual, "%016llx",
                  static_cast<unsigned long long>(snapshot.digest()));
    ASSERT_TRUE(pinned.count(to_string(kind))) << to_string(kind);
    EXPECT_EQ(pinned[to_string(kind)], actual)
        << to_string(kind) << ": actual " << actual;
  }
}

}  // namespace
}  // namespace rps::sim
