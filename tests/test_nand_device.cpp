#include "src/nand/device.hpp"

#include <gtest/gtest.h>

namespace rps::nand {
namespace {

NandDevice make_device(SequenceKind kind = SequenceKind::kRps) {
  return NandDevice(Geometry::tiny(), TimingSpec::paper(), kind);
}

TEST(NandDevice, GeometryAccessors) {
  NandDevice dev = make_device();
  EXPECT_EQ(dev.geometry(), Geometry::tiny());
  EXPECT_EQ(dev.sequence_kind(), SequenceKind::kRps);
  EXPECT_EQ(dev.timing(), TimingSpec::paper());
}

TEST(NandDevice, ProgramIncludesBusTransfer) {
  NandDevice dev = make_device();
  const Result<OpTiming> op = dev.program({0, 0, {0, PageType::kLsb}}, {}, 0);
  ASSERT_TRUE(op.is_ok());
  EXPECT_EQ(op.value().start, 0);
  EXPECT_EQ(op.value().complete, TimingSpec::paper().transfer_us + 500);
}

TEST(NandDevice, ChannelBusSerializesChipsOnSameChannel) {
  // tiny(): 2 channels x 2 chips. Chips 0 and 1 share channel 0.
  NandDevice dev = make_device();
  const Result<OpTiming> a = dev.program({0, 0, {0, PageType::kLsb}}, {}, 0);
  const Result<OpTiming> b = dev.program({1, 0, {0, PageType::kLsb}}, {}, 0);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  // Chip 1's transfer waits for chip 0's transfer to release the bus.
  EXPECT_EQ(b.value().start, TimingSpec::paper().transfer_us);
  // Chips on a different channel are unaffected.
  const Result<OpTiming> c = dev.program({2, 0, {0, PageType::kLsb}}, {}, 0);
  ASSERT_TRUE(c.is_ok());
  EXPECT_EQ(c.value().start, 0);
}

TEST(NandDevice, CellOpsOverlapAcrossChipsOfOneChannel) {
  NandDevice dev = make_device();
  const Result<OpTiming> a = dev.program({0, 0, {0, PageType::kLsb}}, {}, 0);
  const Result<OpTiming> b = dev.program({1, 0, {0, PageType::kLsb}}, {}, 0);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  // The two 500 us cell programs overlap: chip 1 finishes only one
  // transfer-time later than chip 0, not a full program later.
  EXPECT_EQ(b.value().complete - a.value().complete, TimingSpec::paper().transfer_us);
}

TEST(NandDevice, ReadTransfersAfterSensing) {
  NandDevice dev = make_device();
  ASSERT_TRUE(dev.program({0, 0, {0, PageType::kLsb}}, {}, 0).is_ok());
  const Microseconds t0 = dev.chip(0).busy_until();
  const Result<NandDevice::ReadResult> read = dev.read({0, 0, {0, PageType::kLsb}}, t0);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().timing.complete,
            t0 + TimingSpec::paper().read_us + TimingSpec::paper().transfer_us);
  ASSERT_TRUE(read.value().data.is_ok());
}

TEST(NandDevice, CanProgramMirrorsBlockLegality) {
  NandDevice dev = make_device(SequenceKind::kFps);
  EXPECT_TRUE(dev.can_program({0, 0, {0, PageType::kLsb}}).is_ok());
  EXPECT_EQ(dev.can_program({0, 0, {1, PageType::kLsb}}).code(),
            ErrorCode::kSequenceViolation);
  EXPECT_EQ(dev.can_program({9, 0, {0, PageType::kLsb}}).code(), ErrorCode::kOutOfRange);
}

TEST(NandDevice, RejectedProgramLeavesChannelTimelineUntouched) {
  NandDevice dev = make_device(SequenceKind::kFps);
  ASSERT_FALSE(dev.program({0, 0, {2, PageType::kLsb}}, {}, 0).is_ok());
  // A subsequent valid program on the same channel starts at time zero.
  const Result<OpTiming> op = dev.program({0, 0, {0, PageType::kLsb}}, {}, 0);
  ASSERT_TRUE(op.is_ok());
  EXPECT_EQ(op.value().start, 0);
}

TEST(NandDevice, EraseAndCounters) {
  NandDevice dev = make_device();
  ASSERT_TRUE(dev.program({0, 1, {0, PageType::kLsb}}, {}, 0).is_ok());
  ASSERT_TRUE(dev.erase({0, 1}, 10'000).is_ok());
  EXPECT_EQ(dev.total_erase_count(), 1u);
  const OpCounters counters = dev.total_counters();
  EXPECT_EQ(counters.lsb_programs, 1u);
  EXPECT_EQ(counters.erases, 1u);
  EXPECT_TRUE(dev.block({0, 1}).is_erased());
}

TEST(NandDevice, PowerLossAcrossChips) {
  NandDevice dev = make_device();
  // Start MSB programs on two chips, LSB on a third.
  ASSERT_TRUE(dev.program({0, 0, {0, PageType::kLsb}}, {}, 0).is_ok());
  ASSERT_TRUE(dev.program({0, 0, {1, PageType::kLsb}}, {}, 0).is_ok());
  ASSERT_TRUE(dev.program({1, 0, {0, PageType::kLsb}}, {}, 0).is_ok());
  ASSERT_TRUE(dev.program({1, 0, {1, PageType::kLsb}}, {}, 0).is_ok());
  const Microseconds t = std::max(dev.chip(0).busy_until(), dev.chip(1).busy_until());
  ASSERT_TRUE(dev.program({0, 0, {0, PageType::kMsb}}, {}, t).is_ok());
  ASSERT_TRUE(dev.program({1, 0, {0, PageType::kMsb}}, {}, t).is_ok());

  const std::vector<PowerLossVictim> victims = dev.inject_power_loss(t + 100);
  ASSERT_EQ(victims.size(), 2u);
  for (const PowerLossVictim& v : victims) {
    EXPECT_EQ(v.pos.type, PageType::kMsb);
    EXPECT_EQ(dev.block({v.chip, v.block}).read({v.pos.wordline, PageType::kLsb}).code(),
              ErrorCode::kEccUncorrectable);
  }
}

TEST(NandDevice, AllIdleAt) {
  NandDevice dev = make_device();
  EXPECT_EQ(dev.all_idle_at(), 0);
  ASSERT_TRUE(dev.program({3, 0, {0, PageType::kLsb}}, {}, 1000).is_ok());
  EXPECT_EQ(dev.all_idle_at(), 1000 + TimingSpec::paper().transfer_us + 500);
}

TEST(NandDevice, OutOfRangeOps) {
  NandDevice dev = make_device();
  EXPECT_EQ(dev.program({99, 0, {0, PageType::kLsb}}, {}, 0).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(dev.read({0, 99, {0, PageType::kLsb}}, 0).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(dev.erase({0, 99}, 0).code(), ErrorCode::kOutOfRange);
}

}  // namespace
}  // namespace rps::nand
