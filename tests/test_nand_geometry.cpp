#include "src/nand/geometry.hpp"
#include "src/nand/timing.hpp"

#include <gtest/gtest.h>

namespace rps::nand {
namespace {

TEST(Geometry, PaperConfiguration) {
  // Section 4.1: 16 GB, 8 channels x 4 chips, 512 blocks/chip,
  // 256 x 4 KB pages per block.
  constexpr Geometry g = Geometry::paper();
  EXPECT_EQ(g.channels, 8u);
  EXPECT_EQ(g.chips_per_channel, 4u);
  EXPECT_EQ(g.num_chips(), 32u);
  EXPECT_EQ(g.blocks_per_chip, 512u);
  EXPECT_EQ(g.pages_per_block(), 256u);
  EXPECT_EQ(g.page_size_bytes, 4096u);
  EXPECT_EQ(g.capacity_bytes(), 16ull << 30);
  EXPECT_TRUE(g.valid());
}

TEST(Geometry, DerivedQuantities) {
  constexpr Geometry g = Geometry::tiny();
  EXPECT_EQ(g.num_chips(), 4u);
  EXPECT_EQ(g.pages_per_block(), 8u);
  EXPECT_EQ(g.pages_per_chip(), 128u);
  EXPECT_EQ(g.total_blocks(), 64u);
  EXPECT_EQ(g.total_pages(), 512u);
  EXPECT_TRUE(g.valid());
}

TEST(Geometry, ChannelOfChip) {
  constexpr Geometry g = Geometry::paper();
  EXPECT_EQ(g.channel_of_chip(0), 0u);
  EXPECT_EQ(g.channel_of_chip(3), 0u);
  EXPECT_EQ(g.channel_of_chip(4), 1u);
  EXPECT_EQ(g.channel_of_chip(31), 7u);
}

TEST(Geometry, InvalidConfigurations) {
  Geometry g = Geometry::tiny();
  g.channels = 0;
  EXPECT_FALSE(g.valid());
  g = Geometry::tiny();
  g.wordlines_per_block = 1;  // a single word line cannot satisfy C3
  EXPECT_FALSE(g.valid());
}

TEST(TimingSpec, PaperLatencies) {
  // Section 1: 500 us LSB vs 2000 us MSB program on 2X-nm MLC; Section 3.3
  // uses 40 us page reads.
  constexpr TimingSpec t = TimingSpec::paper();
  EXPECT_EQ(t.program_lsb_us, 500);
  EXPECT_EQ(t.program_msb_us, 2000);
  EXPECT_EQ(t.read_us, 40);
  EXPECT_EQ(t.program_msb_us / t.program_lsb_us, 4);
}

}  // namespace
}  // namespace rps::nand
