#include "src/nand/geometry.hpp"
#include "src/nand/timing.hpp"

#include <gtest/gtest.h>

namespace rps::nand {
namespace {

TEST(Geometry, PaperConfiguration) {
  // Section 4.1: 16 GB, 8 channels x 4 chips, 512 blocks/chip,
  // 256 x 4 KB pages per block.
  constexpr Geometry g = Geometry::paper();
  EXPECT_EQ(g.channels, 8u);
  EXPECT_EQ(g.chips_per_channel, 4u);
  EXPECT_EQ(g.num_chips(), 32u);
  EXPECT_EQ(g.blocks_per_chip, 512u);
  EXPECT_EQ(g.pages_per_block(), 256u);
  EXPECT_EQ(g.page_size_bytes, 4096u);
  EXPECT_EQ(g.capacity_bytes(), 16ull << 30);
  EXPECT_TRUE(g.valid());
}

TEST(Geometry, DerivedQuantities) {
  constexpr Geometry g = Geometry::tiny();
  EXPECT_EQ(g.num_chips(), 4u);
  EXPECT_EQ(g.pages_per_block(), 8u);
  EXPECT_EQ(g.pages_per_chip(), 128u);
  EXPECT_EQ(g.total_blocks(), 64u);
  EXPECT_EQ(g.total_pages(), 512u);
  EXPECT_TRUE(g.valid());
}

TEST(Geometry, ChannelOfChip) {
  constexpr Geometry g = Geometry::paper();
  EXPECT_EQ(g.channel_of_chip(0), 0u);
  EXPECT_EQ(g.channel_of_chip(3), 0u);
  EXPECT_EQ(g.channel_of_chip(4), 1u);
  EXPECT_EQ(g.channel_of_chip(31), 7u);
}

TEST(Geometry, InvalidConfigurations) {
  Geometry g = Geometry::tiny();
  g.channels = 0;
  EXPECT_FALSE(g.valid());
  g = Geometry::tiny();
  g.wordlines_per_block = 1;  // a single word line cannot satisfy C3
  EXPECT_FALSE(g.valid());
  g = Geometry::tiny();
  g.planes_per_chip = 0;
  EXPECT_FALSE(g.valid());
}

TEST(Geometry, PlanePresets) {
  constexpr Geometry g4 = Geometry::paper4x();
  EXPECT_EQ(g4.planes_per_chip, 4u);
  EXPECT_EQ(g4.num_units(), 4 * Geometry::paper().num_chips());
  EXPECT_EQ(g4.capacity_bytes(), 4 * Geometry::paper().capacity_bytes());
  EXPECT_TRUE(g4.valid());
  constexpr Geometry g16 = Geometry::paper16x();
  EXPECT_EQ(g16.capacity_bytes(), 16 * Geometry::paper().capacity_bytes());
  EXPECT_TRUE(g16.valid());
}

TEST(Geometry, UnitAddressing) {
  constexpr Geometry g = Geometry::paper4x();
  EXPECT_EQ(g.unit_of(5, 3), 23u);
  EXPECT_EQ(g.chip_of_unit(23), 5u);
  EXPECT_EQ(g.plane_of_unit(23), 3u);
  EXPECT_EQ(g.channel_of_unit(23), g.channel_of_chip(5));
  EXPECT_EQ(g.pages_per_chip(), 4 * g.pages_per_unit());
}

// Overflow guards: valid() must reject geometries whose derived counts
// would wrap, instead of silently truncating addresses downstream.
TEST(Geometry, OverflowGuards) {
  Geometry g = Geometry::tiny();
  // num_units overflows u32.
  g.channels = 1u << 16;
  g.chips_per_channel = 1u << 15;
  g.planes_per_chip = 4;
  EXPECT_FALSE(g.valid());

  // pages_per_unit / total_pages overflow u64.
  g = Geometry::tiny();
  g.blocks_per_chip = 1u << 31;
  g.wordlines_per_block = 1u << 31;
  EXPECT_FALSE(g.valid());

  // capacity_bytes overflows u64: a huge page size on a huge array.
  g = Geometry::paper();
  g.page_size_bytes = 0xffffffffu;
  g.blocks_per_chip = 0x7fffffffu;
  g.wordlines_per_block = 0x7fffffffu;
  EXPECT_FALSE(g.valid());

  // The real presets sit comfortably inside every bound.
  EXPECT_TRUE(Geometry::paper().valid());
  EXPECT_TRUE(Geometry::paper4x().valid());
  EXPECT_TRUE(Geometry::paper16x().valid());
}

TEST(TimingSpec, PaperLatencies) {
  // Section 1: 500 us LSB vs 2000 us MSB program on 2X-nm MLC; Section 3.3
  // uses 40 us page reads.
  constexpr TimingSpec t = TimingSpec::paper();
  EXPECT_EQ(t.program_lsb_us, 500);
  EXPECT_EQ(t.program_msb_us, 2000);
  EXPECT_EQ(t.read_us, 40);
  EXPECT_EQ(t.program_msb_us / t.program_lsb_us, 4);
}

}  // namespace
}  // namespace rps::nand
