// The deterministic parallel runner (src/util/parallel.hpp) and its
// adopters. The contract under test is the one every sweep and bench
// relies on: for ANY jobs value the merged output is bit-identical to
// the sequential run — parallelism may only change wall-clock time,
// never a single result byte.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/faultsim/sweep.hpp"
#include "src/sim/runner.hpp"
#include "src/util/parallel.hpp"

namespace rps {
namespace {

TEST(DeriveSeed, IsAPureFunctionOfBaseAndIndex) {
  EXPECT_EQ(util::derive_seed(1, 0), util::derive_seed(1, 0));
  EXPECT_EQ(util::derive_seed(42, 17), util::derive_seed(42, 17));
  EXPECT_NE(util::derive_seed(1, 0), util::derive_seed(1, 1));
  EXPECT_NE(util::derive_seed(1, 0), util::derive_seed(2, 0));
}

TEST(DeriveSeed, HasNoCollisionsOverATrialRange) {
  // A sweep derives one seed per trial index; a collision would silently
  // run the same trial twice and skip another.
  std::set<std::uint64_t> seen;
  for (std::uint64_t index = 0; index < 4096; ++index) {
    seen.insert(util::derive_seed(7, index));
  }
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 257;  // not a multiple of any jobs value
  std::vector<std::atomic<int>> hits(kN);
  util::parallel_for_indexed(kN, 8, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, MergesSlotsIdenticallyForAnyJobCount) {
  constexpr std::size_t kN = 100;
  const auto compute = [](std::size_t i) {
    // Stand-in for a trial: value depends on the index and its derived
    // seed, never on thread identity or timing.
    return util::derive_seed(99, i) ^ (static_cast<std::uint64_t>(i) << 32);
  };
  std::vector<std::uint64_t> sequential(kN);
  for (std::size_t i = 0; i < kN; ++i) sequential[i] = compute(i);

  for (const std::uint32_t jobs : {1u, 2u, 3u, 8u}) {
    std::vector<std::uint64_t> parallel(kN, 0);
    util::parallel_for_indexed(kN, jobs,
                               [&](std::size_t i) { parallel[i] = compute(i); });
    EXPECT_EQ(parallel, sequential) << "jobs=" << jobs;
  }
}

TEST(ParallelFor, JobsOneRunsInlineOnTheCallingThread) {
  // --jobs 1 must be exactly the pre-pool sequential path: same thread,
  // ascending order.
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  util::parallel_for_indexed(16, 1, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  std::vector<std::size_t> ascending(16);
  std::iota(ascending.begin(), ascending.end(), std::size_t{0});
  EXPECT_EQ(order, ascending);
}

TEST(ParallelFor, ZeroAndSingleElementRangesComplete) {
  int calls = 0;
  util::parallel_for_indexed(0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  util::parallel_for_indexed(1, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, FirstExceptionIsRethrownAtTheBarrier) {
  std::atomic<int> completed{0};
  EXPECT_THROW(
      util::parallel_for_indexed(64, 4,
                                 [&](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("trial 5");
                                   ++completed;
                                 }),
      std::runtime_error);
  // The barrier still held: no body is running after the throw, and the
  // non-throwing bodies that ran completed normally.
  EXPECT_GE(completed.load(), 0);
  EXPECT_LT(completed.load(), 64);
}

TEST(ParallelFor, PoolServesConsecutiveJobsAndSurvivesAnException) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::uint64_t> a(50, 0);
  pool.parallel_for_indexed(a.size(), [&](std::size_t i) { a[i] = i * i; });
  EXPECT_THROW(pool.parallel_for_indexed(
                   10, [&](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  // The pool is reusable after a failed job.
  std::vector<std::uint64_t> b(50, 0);
  pool.parallel_for_indexed(b.size(), [&](std::size_t i) { b[i] = a[i] + 1; });
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], i * i + 1);
}

// --- Adopters: parallel sweeps must be bit-identical to sequential. ---

void expect_same_sweep(const faultsim::SweepResult& seq,
                       const faultsim::SweepResult& par, const char* what) {
  EXPECT_EQ(seq.golden_boundaries, par.golden_boundaries) << what;
  EXPECT_EQ(seq.crashes_injected, par.crashes_injected) << what;
  EXPECT_EQ(seq.total_victims, par.total_victims) << what;
  EXPECT_EQ(seq.total_pages_lost, par.total_pages_lost) << what;
  EXPECT_EQ(seq.total_parity_recovered, par.total_parity_recovered) << what;
  EXPECT_EQ(seq.replay_mismatches, par.replay_mismatches) << what;
  ASSERT_EQ(seq.failures.size(), par.failures.size()) << what;
  for (std::size_t i = 0; i < seq.failures.size(); ++i) {
    EXPECT_EQ(seq.failures[i].line, par.failures[i].line) << what;
    EXPECT_EQ(seq.failures[i].report, par.failures[i].report) << what;
  }
}

TEST(ParallelSweep, JobsEightBitIdenticalToJobsOne) {
  faultsim::FaultSimConfig config;  // flexFTL / controller, tiny geometry
  config.seed = 5;
  faultsim::SweepOptions options;
  options.crash_points = 6;
  options.minimize = false;

  options.jobs = 1;
  const faultsim::SweepResult seq = faultsim::sweep(config, options);
  options.jobs = 8;
  const faultsim::SweepResult par = faultsim::sweep(config, options);
  EXPECT_GT(seq.crashes_injected, 0u);
  expect_same_sweep(seq, par, "sweep jobs=8");
}

TEST(ParallelSweep, MatrixBitIdenticalAcrossJobCounts) {
  faultsim::FaultSimConfig base;
  faultsim::MatrixOptions options;
  options.seeds = 2;
  options.densities = {4};
  options.sweep.minimize = false;

  options.jobs = 1;
  const std::vector<faultsim::MatrixCell> seq = faultsim::sweep_matrix(base, options);
  options.jobs = 4;
  const std::vector<faultsim::MatrixCell> par = faultsim::sweep_matrix(base, options);

  ASSERT_EQ(seq.size(), par.size());
  ASSERT_EQ(seq.size(), 2u);  // seeds x densities, cell-enumeration order
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].seed, par[i].seed);
    EXPECT_EQ(seq[i].points, par[i].points);
    expect_same_sweep(seq[i].result, par[i].result, "matrix cell");
  }
}

void expect_same_result(const sim::SimResult& seq, const sim::SimResult& par) {
  EXPECT_EQ(seq.ftl_name, par.ftl_name);
  EXPECT_EQ(seq.workload_name, par.workload_name);
  EXPECT_EQ(seq.requests, par.requests);
  EXPECT_EQ(seq.pages_read, par.pages_read);
  EXPECT_EQ(seq.pages_written, par.pages_written);
  EXPECT_EQ(seq.read_errors, par.read_errors);
  EXPECT_EQ(seq.makespan_us, par.makespan_us);
  EXPECT_EQ(seq.busy_us, par.busy_us);
  EXPECT_EQ(seq.erases, par.erases);
  EXPECT_EQ(seq.latency_us.size(), par.latency_us.size());
  EXPECT_EQ(seq.latency_us.mean(), par.latency_us.mean());
  EXPECT_EQ(seq.write_bw_mbps.size(), par.write_bw_mbps.size());
  EXPECT_EQ(seq.write_bw_mbps.mean(), par.write_bw_mbps.mean());
}

sim::ExperimentSpec tiny_spec() {
  sim::ExperimentSpec spec;
  spec.ftl_config.geometry = nand::Geometry{.channels = 2,
                                            .chips_per_channel = 2,
                                            .blocks_per_chip = 24,
                                            .wordlines_per_block = 16,
                                            .page_size_bytes = 2048,
                                            .spare_bytes = 32};
  spec.ftl_config.overprovisioning = 0.2;
  spec.ftl_config.gc_reserve_blocks = 1;
  spec.ftl_config.write_buffer_pages = 16;
  spec.ftl_config.rtf_active_blocks = 2;
  spec.requests = 1200;
  spec.working_set_fraction = 0.8;
  spec.sim.queue_depth = 16;
  return spec;
}

TEST(ParallelRunner, PresetMatrixMatchesSequentialExperiments) {
  const sim::ExperimentSpec spec = tiny_spec();
  const std::vector<workload::Preset> presets = {workload::Preset::kNtrx,
                                                 workload::Preset::kVarmail};

  const std::vector<std::vector<sim::SimResult>> matrix =
      sim::run_preset_matrix(presets, spec, /*jobs=*/4);

  ASSERT_EQ(matrix.size(), presets.size());
  for (std::size_t p = 0; p < presets.size(); ++p) {
    // The sequential reference: run_all_ftls at jobs=1 is the plain loop.
    const std::vector<sim::SimResult> seq =
        sim::run_all_ftls(presets[p], spec, /*jobs=*/1);
    ASSERT_EQ(matrix[p].size(), seq.size());
    for (std::size_t f = 0; f < seq.size(); ++f) {
      expect_same_result(seq[f], matrix[p][f]);
    }
  }
}

TEST(ParallelRunner, ParseJobsFlagAcceptsBothSpellings) {
  const auto parse = [](std::vector<const char*> argv) {
    return sim::parse_jobs_flag(static_cast<int>(argv.size()),
                                const_cast<char**>(argv.data()));
  };
  EXPECT_EQ(parse({"bench"}), 1u);
  EXPECT_EQ(parse({"bench", "--jobs=6"}), 6u);
  EXPECT_EQ(parse({"bench", "--jobs", "3"}), 3u);
  EXPECT_EQ(parse({"bench", "--jobs=garbage"}), 1u);
  EXPECT_EQ(parse({"bench", "--jobs"}), 1u);
  EXPECT_EQ(parse({"bench", "--jobs=0"}), 1u);
}

}  // namespace
}  // namespace rps
