// Crash-consistency checks built on the src/faultsim/ harness.
//
// The sweep driver injects power losses at op-completion boundaries of a
// seeded workload, reboots, and audits acknowledged data against the
// shadow oracle. These tests pin the harness's guarantees:
//   - the differential matrix: every FTL under both engines survives a
//     crash sweep with zero verdict violations (flexFTL must restore or
//     explicitly account for every acknowledged page; FTLs without a
//     recovery procedure must at least rescan to the newest intact copy),
//   - every injected crash replays bit-identically from its one-line
//     reproducer,
//   - RecoveryReport.recovery_time_us is the device-idle delta (parallel
//     across chips), never the serial sum of the charged operations.
#include <gtest/gtest.h>

#include "src/core/flex_ftl.hpp"
#include "src/faultsim/harness.hpp"
#include "src/faultsim/sweep.hpp"

namespace rps::faultsim {
namespace {

SweepOptions quick_sweep_options() {
  SweepOptions options;
  options.crash_points = 5;
  options.verify_replay = true;   // determinism is itself under test
  options.minimize = false;       // keep the matrix fast; faultsim_main minimizes
  return options;
}

std::string cell_name(const FaultSimConfig& config) {
  return std::string(sim::to_string(config.kind)) + "/" +
         to_string(config.engine) + "/seed" + std::to_string(config.seed);
}

// Satellite: the differential crash-consistency matrix. All five FTLs,
// both engines, fixed seeds. A failure prints the minimal reproducer
// lines the sweep collected.
TEST(FaultSim, DifferentialCrashMatrix) {
  std::uint64_t total_crashes = 0;
  std::uint64_t total_victims = 0;
  for (const sim::FtlKind kind :
       {sim::FtlKind::kPage, sim::FtlKind::kParity, sim::FtlKind::kRtf,
        sim::FtlKind::kFlex, sim::FtlKind::kSlc}) {
    for (const sim::Engine engine :
         {sim::Engine::kController, sim::Engine::kLegacySync}) {
      for (const std::uint64_t seed : {3ull, 11ull}) {
        FaultSimConfig config;
        config.kind = kind;
        config.engine = engine;
        config.seed = seed;
        const SweepResult result = sweep(config, quick_sweep_options());
        EXPECT_EQ(result.replay_mismatches, 0u) << cell_name(config);
        EXPECT_TRUE(result.ok()) << cell_name(config) << ": " << [&] {
          std::string lines;
          for (const SweepFailure& f : result.failures) lines += f.line + "\n";
          return lines;
        }();
        total_crashes += result.crashes_injected;
        total_victims += result.total_victims;
      }
    }
  }
  // The matrix only means something if the crashes actually bit: power
  // losses were injected and destroyed in-flight programs.
  EXPECT_GT(total_crashes, 0u);
  EXPECT_GT(total_victims, 0u);
}

// Tentpole acceptance: flexFTL loses no acknowledged page across a denser
// sweep — every loss the cut forces is either parity-recovered or
// explicitly reported in RecoveryReport.pages_lost, and the oracle holds
// the FTL to it.
TEST(FaultSim, FlexFtlNeverLosesAcknowledgedData) {
  FaultSimConfig config;
  config.kind = sim::FtlKind::kFlex;
  config.seed = 1;
  SweepOptions options;
  options.crash_points = 16;
  const SweepResult result = sweep(config, options);
  EXPECT_TRUE(result.ok()) << [&] {
    std::string lines;
    for (const SweepFailure& f : result.failures) lines += f.line + "\n";
    return lines;
  }();
  EXPECT_EQ(result.replay_mismatches, 0u);
  EXPECT_GT(result.crashes_injected, 0u);
  // The paper's hazard actually fired: pages were rebuilt from parity.
  EXPECT_GT(result.total_parity_recovered, 0u);
}

// Plane-aware crash consistency: with two planes per die, plane-grouped
// controller writes and coalesced multi-plane GC erases are in play, and
// a bad-block pool with factory defects keeps the remap table non-trivial.
// A cut can now land inside an aligned multi-plane cell window (one victim
// per member plane); recovery must still restore or account for every
// acknowledged page, over remapped blocks, with bit-identical replays.
TEST(FaultSim, MultiPlaneSweepStaysCrashConsistent) {
  for (const sim::FtlKind kind : {sim::FtlKind::kFlex, sim::FtlKind::kPage}) {
    for (const sim::Engine engine :
         {sim::Engine::kController, sim::Engine::kLegacySync}) {
      FaultSimConfig config;
      config.kind = kind;
      config.engine = engine;
      config.seed = 9;
      config.ftl_config.geometry.planes_per_chip = 2;
      config.ftl_config.bad_blocks.spare_blocks_per_unit = 1;
      config.ftl_config.bad_blocks.factory_bad_ppm = 50'000;
      const SweepResult result = sweep(config, quick_sweep_options());
      EXPECT_EQ(result.replay_mismatches, 0u) << cell_name(config);
      EXPECT_TRUE(result.ok()) << cell_name(config) << ": " << [&] {
        std::string lines;
        for (const SweepFailure& f : result.failures) lines += f.line + "\n";
        return lines;
      }();
      EXPECT_GT(result.crashes_injected, 0u) << cell_name(config);
    }
  }
}

// Satellite: the new topology/failure flags round-trip through the
// reproducer line and replay to the same report.
TEST(FaultSim, PlaneAndBadBlockFlagsRoundTrip) {
  FaultSimConfig golden;
  golden.kind = sim::FtlKind::kFlex;
  golden.seed = 4;
  golden.ftl_config.geometry.planes_per_chip = 2;
  golden.ftl_config.bad_blocks.spare_blocks_per_unit = 2;
  golden.ftl_config.bad_blocks.factory_bad_ppm = 20'000;
  golden.ftl_config.bad_blocks.erase_endurance = 5'000;
  const TrialResult base = run_trial(golden);
  ASSERT_GT(base.boundaries.size(), 10u);

  FaultSimConfig crashed = golden;
  crashed.crash_time_us = base.boundaries[base.boundaries.size() / 3] - 1;
  const std::string line = reproducer(crashed);
  EXPECT_NE(line.find("--planes=2"), std::string::npos) << line;
  EXPECT_NE(line.find("--spares=2"), std::string::npos) << line;
  const std::optional<FaultSimConfig> parsed = parse_reproducer(line);
  ASSERT_TRUE(parsed.has_value()) << line;
  EXPECT_EQ(parsed->ftl_config.geometry.planes_per_chip, 2u);
  EXPECT_EQ(parsed->ftl_config.bad_blocks.spare_blocks_per_unit, 2u);
  EXPECT_EQ(parsed->ftl_config.bad_blocks.factory_bad_ppm, 20'000u);
  EXPECT_EQ(parsed->ftl_config.bad_blocks.erase_endurance, 5'000u);
  const CrashReport first = run_trial(crashed).report;
  const CrashReport replay = run_trial(*parsed).report;
  EXPECT_TRUE(first.crashed);
  EXPECT_EQ(first, replay) << line;
}

// Satellite: reproducer lines round-trip and replay deterministically.
TEST(FaultSim, ReproducerRoundTripsAndReplaysBitEqual) {
  FaultSimConfig golden;
  golden.kind = sim::FtlKind::kFlex;
  golden.seed = 5;
  const TrialResult base = run_trial(golden);
  ASSERT_GT(base.boundaries.size(), 10u);

  FaultSimConfig crashed = golden;
  crashed.crash_time_us = base.boundaries[base.boundaries.size() / 2] - 1;
  const std::string line = reproducer(crashed);
  const std::optional<FaultSimConfig> parsed = parse_reproducer(line);
  ASSERT_TRUE(parsed.has_value()) << line;

  const CrashReport first = run_trial(crashed).report;
  const CrashReport replay = run_trial(*parsed).report;
  EXPECT_TRUE(first.crashed);
  EXPECT_EQ(first, replay) << line;
}

// Satellite: the recovery-time property. Reads charged during recovery
// serialize per chip but run in parallel across chips, so the report must
// equal the device-idle delta — strictly less than the serial sum of the
// charged reads once at least two chips carry recovery work.
TEST(FaultSim, RecoveryTimeIsDeviceIdleDeltaNotSerialSum) {
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  config.geometry.channels = 2;
  config.geometry.chips_per_channel = 1;
  config.geometry.wordlines_per_block = 8;
  core::FlexFtl ftl(config);

  // Fill one fast block per chip with burst-pressure (LSB) writes so both
  // chips end up with a slow block for recovery to walk.
  const std::uint32_t wordlines = config.geometry.wordlines_per_block;
  Microseconds t = 0;
  for (Lpn lpn = 0; lpn < 2 * wordlines; ++lpn) {
    std::vector<std::uint8_t> payload(8, static_cast<std::uint8_t>(lpn));
    const auto op = ftl.write_data(lpn, payload, t, /*buffer_utilization=*/0.95);
    ASSERT_TRUE(op.is_ok());
    t = op.value().complete;
  }
  ASSERT_GE(ftl.sbqueue_depth(0), 1u);
  ASSERT_GE(ftl.sbqueue_depth(1), 1u);

  const Microseconds cut = ftl.device().all_idle_at();
  const auto victims = ftl.device().inject_power_loss(cut);
  const core::RecoveryReport report = ftl.recover_from_power_loss(victims, cut);

  // Exact identity: the report is the wall-clock the reboot takes.
  EXPECT_EQ(report.recovery_time_us, ftl.device().all_idle_at() - cut);

  const std::uint64_t reads = report.lsb_pages_read + report.parity_pages_read;
  ASSERT_GE(reads, 2u * wordlines);  // both chips' slow blocks were walked
  const Microseconds serial_sum =
      static_cast<Microseconds>(reads) * config.timing.read_us;
  EXPECT_GT(report.recovery_time_us, 0);
  EXPECT_LT(report.recovery_time_us, serial_sum);
}

// Satellite: a cut during the parity flush itself is detected — the
// proactive parity verification finds the corrupt page, the block
// proceeds unprotected, and the report says so.
TEST(FaultSim, CutDuringParityFlushIsCountedNotTrusted) {
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  config.geometry.channels = 1;
  config.geometry.chips_per_channel = 1;
  config.geometry.wordlines_per_block = 8;
  core::FlexFtl ftl(config);

  // The last LSB write of the fast block triggers the parity flush; the
  // flush program is the chip's final op, so a cut one microsecond before
  // the device drains lands inside it.
  const std::uint32_t wordlines = config.geometry.wordlines_per_block;
  Microseconds t = 0;
  for (Lpn lpn = 0; lpn < wordlines; ++lpn) {
    std::vector<std::uint8_t> payload(8, static_cast<std::uint8_t>(lpn + 1));
    const auto op = ftl.write_data(lpn, payload, t, /*buffer_utilization=*/0.95);
    ASSERT_TRUE(op.is_ok());
    t = op.value().complete;
  }
  ASSERT_EQ(ftl.sbqueue_depth(0), 1u);

  const Microseconds cut = ftl.device().all_idle_at() - 1;
  const auto victims = ftl.device().inject_power_loss(cut);
  ASSERT_EQ(victims.size(), 1u);  // the parity program was mid-flight

  const std::uint64_t skipped_before = ftl.skipped_parity_backups();
  const core::RecoveryReport report = ftl.recover_from_power_loss(victims, cut);
  EXPECT_EQ(report.parity_flush_interrupted, 1u);
  EXPECT_EQ(ftl.skipped_parity_backups(), skipped_before + 1);
  // Only the parity page died; every acknowledged host page survives.
  EXPECT_EQ(report.pages_lost, 0u);
  for (Lpn lpn = 0; lpn < wordlines; ++lpn) {
    EXPECT_TRUE(ftl.read_data(lpn, ftl.device().all_idle_at()).is_ok()) << lpn;
  }
  EXPECT_TRUE(ftl.check_consistency());
}

// Multi-tenant crash sweeps: the power loss lands mid-arbitration of the
// multi-queue frontend. Recovery must preserve (or explicitly drop to
// tag 0) the per-tenant stream→block mappings — a nonzero cross-tenant
// tag is a violation the stream audit counts — and every crash must
// still replay bit-identically from its reproducer line, which now
// round-trips --tenants / --arb.
TEST(FaultSim, MultiTenantSweepSurvivesAllPoliciesAndFtls) {
  for (const sim::FtlKind kind :
       {sim::FtlKind::kPage, sim::FtlKind::kFlex, sim::FtlKind::kParity}) {
    for (const ctrl::ArbPolicy arb : ctrl::kAllArbPolicies) {
      FaultSimConfig config;
      config.kind = kind;
      config.seed = 7;
      config.requests = 200;
      config.tenants = 4;
      config.arb = arb;
      const SweepResult result = sweep(config, quick_sweep_options());
      const std::string cell = std::string(sim::to_string(kind)) + "/" +
                               ctrl::to_string(arb);
      EXPECT_EQ(result.replay_mismatches, 0u) << cell;
      EXPECT_TRUE(result.ok()) << cell << ": " << [&] {
        std::string lines;
        for (const SweepFailure& f : result.failures) lines += f.line + "\n";
        return lines;
      }();
      EXPECT_GT(result.crashes_injected, 0u) << cell;
    }
  }
}

TEST(FaultSim, MultiTenantReproducerRoundTripsOnlyNonDefaultFlags) {
  FaultSimConfig config;
  config.tenants = 8;
  config.arb = ctrl::ArbPolicy::kWeightedDeficitRoundRobin;
  config.crash_time_us = 123456;
  const std::string line = reproducer(config);
  EXPECT_NE(line.find("--tenants=8"), std::string::npos) << line;
  EXPECT_NE(line.find("--arb=wdrr"), std::string::npos) << line;

  const std::optional<FaultSimConfig> parsed = parse_reproducer(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tenants, 8u);
  EXPECT_EQ(parsed->arb, ctrl::ArbPolicy::kWeightedDeficitRoundRobin);
  EXPECT_EQ(parsed->crash_time_us, 123456);

  // Defaults stay invisible: a single-tenant config emits the exact
  // legacy line (byte-compatible with pre-multi-tenant reproducers).
  const std::string legacy_line = reproducer(FaultSimConfig{});
  EXPECT_EQ(legacy_line.find("--tenants"), std::string::npos) << legacy_line;
  EXPECT_EQ(legacy_line.find("--arb"), std::string::npos) << legacy_line;
  // And unknown policies are rejected, not defaulted.
  EXPECT_FALSE(parse_reproducer("faultsim --arb=bogus").has_value());
  EXPECT_FALSE(parse_reproducer("faultsim --tenants=0").has_value());
}

}  // namespace
}  // namespace rps::faultsim
