#include "src/workload/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace rps::workload {
namespace {

Trace make_trace() {
  Trace t("demo");
  t.add({0, IoKind::kWrite, 10, 2});
  t.add({100, IoKind::kRead, 4, 1});
  t.add({5'000, IoKind::kWrite, 100, 8});
  return t;
}

TEST(Trace, BasicAccessors) {
  const Trace t = make_trace();
  EXPECT_EQ(t.name(), "demo");
  EXPECT_EQ(t.size(), 3u);
  EXPECT_FALSE(t.empty());
  EXPECT_TRUE(t.is_sorted());
  EXPECT_EQ(t.lpn_span(), 108u);
}

TEST(Trace, SortByArrival) {
  Trace t;
  t.add({50, IoKind::kRead, 1, 1});
  t.add({10, IoKind::kWrite, 2, 1});
  EXPECT_FALSE(t.is_sorted());
  t.sort_by_arrival();
  EXPECT_TRUE(t.is_sorted());
  EXPECT_EQ(t.requests().front().lpn, 2u);
}

TEST(TraceStats, CountsAndRatio) {
  const TraceStats s = make_trace().stats();
  EXPECT_EQ(s.requests, 3u);
  EXPECT_EQ(s.read_requests, 1u);
  EXPECT_EQ(s.write_requests, 2u);
  EXPECT_EQ(s.read_pages, 1u);
  EXPECT_EQ(s.write_pages, 10u);
  EXPECT_NEAR(s.read_fraction(), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(s.duration_us, 5'000);
}

TEST(TraceStats, IdleFraction) {
  const TraceStats s = make_trace().stats(/*idle_threshold_us=*/1000);
  // Only the 100 -> 5000 gap exceeds the threshold.
  EXPECT_NEAR(s.idle_fraction, 4'900.0 / 5'000.0, 1e-9);
  const TraceStats s2 = make_trace().stats(/*idle_threshold_us=*/10'000);
  EXPECT_DOUBLE_EQ(s2.idle_fraction, 0.0);
}

TEST(TraceStats, IntensivenessBuckets) {
  auto trace_with_rate = [](Microseconds gap, std::size_t n) {
    Trace t;
    for (std::size_t i = 0; i < n; ++i) {
      t.add({static_cast<Microseconds>(i) * gap, IoKind::kWrite, 0, 1});
    }
    return t.stats();
  };
  EXPECT_EQ(trace_with_rate(50, 1000).intensiveness(), "Very high");   // 20k IOPS
  EXPECT_EQ(trace_with_rate(500, 1000).intensiveness(), "High");      // 2k IOPS
  EXPECT_EQ(trace_with_rate(5'000, 1000).intensiveness(), "Moderate");
  EXPECT_EQ(trace_with_rate(50'000, 100).intensiveness(), "Low");
}

TEST(Trace, SaveLoadRoundTrip) {
  const std::string path = "/tmp/rps_trace_test.txt";
  const Trace original = make_trace();
  ASSERT_TRUE(original.save(path).is_ok());
  Result<Trace> loaded = Trace::load(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().name(), "demo");
  EXPECT_EQ(loaded.value().requests(), original.requests());
  std::filesystem::remove(path);
}

TEST(Trace, LoadMissingFile) {
  EXPECT_EQ(Trace::load("/nonexistent/path/trace.txt").code(), ErrorCode::kNotFound);
}

TEST(Trace, EmptyStats) {
  const TraceStats s = Trace().stats();
  EXPECT_EQ(s.requests, 0u);
  EXPECT_EQ(s.iops(), 0.0);
  EXPECT_EQ(s.read_fraction(), 0.0);
}

}  // namespace
}  // namespace rps::workload
