#include "src/util/table.hpp"

#include <gtest/gtest.h>

namespace rps {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Every line has the same structure; "value" column must start at the
  // same offset in header and rows.
  const auto header_pos = out.find("value");
  const auto row_pos = out.find("22222");
  EXPECT_EQ(header_pos % (out.find('\n') + 1), row_pos % (out.find('\n') + 1));
}

TEST(TablePrinter, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW((void)t.to_string());
  EXPECT_NO_THROW((void)t.to_csv());
}

TEST(TablePrinter, CsvFormat) {
  TablePrinter t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n3,4\n");
}

TEST(TablePrinter, FmtHelpers) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::fmt_int(-42), "-42");
}

}  // namespace
}  // namespace rps
