// Durability features layered on the FTL framework: TRIM/discard,
// OOB-based mapping reconstruction after a reboot, wear statistics, and a
// property sweep that cuts power at many different instants and checks
// that flexFTL's recovery never loses acknowledged data.
#include <gtest/gtest.h>

#include "src/core/flex_ftl.hpp"
#include "src/ftl/page_ftl.hpp"
#include "src/ftl/parity_ftl.hpp"
#include "src/ftl/rtf_ftl.hpp"
#include "src/sim/runner.hpp"
#include "src/util/random.hpp"

namespace rps {
namespace {

TEST(Trim, DropsMappingAndFreesThePage) {
  ftl::PageFtl ftl(ftl::FtlConfig::tiny());
  ASSERT_TRUE(ftl.write(7, 0).is_ok());
  const nand::PageAddress addr = ftl.mapping().lookup(7).value();
  const std::uint32_t valid_before = ftl.blocks().valid_pages({addr.chip, addr.block});
  ASSERT_TRUE(ftl.trim(7).is_ok());
  EXPECT_FALSE(ftl.mapping().is_mapped(7));
  EXPECT_EQ(ftl.blocks().valid_pages({addr.chip, addr.block}), valid_before - 1);
  // Subsequent reads are zero-fill.
  const Result<ftl::HostOp> read = ftl.read(7, 1000);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().complete, 1000);
  EXPECT_TRUE(ftl.check_consistency());
}

TEST(Trim, IdempotentAndRangeChecked) {
  ftl::PageFtl ftl(ftl::FtlConfig::tiny());
  EXPECT_TRUE(ftl.trim(3).is_ok());  // never written: no-op
  EXPECT_TRUE(ftl.trim(3).is_ok());
  EXPECT_EQ(ftl.trim(ftl.exported_pages()).code(), ErrorCode::kOutOfRange);
}

TEST(Trim, TrimmedSpaceIsReclaimableByGc) {
  ftl::PageFtl ftl(ftl::FtlConfig::tiny());
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0).is_ok());
  // Trim half the space, then write far more than the untrimmed share
  // could hold: GC must harvest the trimmed pages.
  for (Lpn lpn = 0; lpn < n; lpn += 2) ASSERT_TRUE(ftl.trim(lpn).is_ok());
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(ftl.write(1 + 2 * rng.next_below(n / 2), 0).is_ok()) << i;
  }
  EXPECT_TRUE(ftl.check_consistency());
}

class RebuildMapping : public ::testing::TestWithParam<sim::FtlKind> {};

TEST_P(RebuildMapping, MediaScanReconstructsTheTable) {
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  auto ftl = sim::make_ftl(GetParam(), config);
  const Lpn n = ftl->exported_pages();
  Rng rng(11);
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl->write(lpn, 0, 0.5).is_ok());
  for (int i = 0; i < 2500; ++i) {
    ASSERT_TRUE(ftl->write(rng.next_below(n), 0, 0.5).is_ok());
  }
  std::vector<bool> trimmed(n, false);
  for (int i = 0; i < 30; ++i) {
    const Lpn lpn = rng.next_below(n);
    ASSERT_TRUE(ftl->trim(lpn).is_ok());
    trimmed[lpn] = true;
  }

  // Snapshot the live table, then reconstruct from the media alone.
  std::vector<std::optional<nand::PageAddress>> before(n);
  for (Lpn lpn = 0; lpn < n; ++lpn) {
    const Result<nand::PageAddress> addr = ftl->mapping().lookup(lpn);
    if (addr.is_ok()) before[lpn] = addr.value();
  }
  ftl->rebuild_mapping();
  for (Lpn lpn = 0; lpn < n; ++lpn) {
    const Result<nand::PageAddress> addr = ftl->mapping().lookup(lpn);
    if (before[lpn].has_value()) {
      ASSERT_TRUE(addr.is_ok()) << "lpn " << lpn << " lost by rebuild";
      // A partially relocated victim can leave two identical copies of an
      // LPN on the media; rebuild may pick either. Content must match.
      const nand::PageData rebuilt =
          ftl->device().block({addr.value().chip, addr.value().block})
              .read(addr.value().pos).value();
      const nand::PageData live =
          ftl->device().block({before[lpn]->chip, before[lpn]->block})
              .read(before[lpn]->pos).value();
      EXPECT_EQ(rebuilt.signature, live.signature) << "lpn " << lpn;
      EXPECT_EQ(rebuilt.version, live.version) << "lpn " << lpn;
    } else if (!trimmed[lpn]) {
      // TRIM is volatile (no trim journal is modeled): rebuild may
      // resurrect trimmed data, but never-written pages must stay unmapped.
      EXPECT_FALSE(addr.is_ok()) << "lpn " << lpn << " resurrected by rebuild";
    }
  }
  EXPECT_TRUE(ftl->check_consistency());
}

INSTANTIATE_TEST_SUITE_P(Kinds, RebuildMapping,
                         ::testing::Values(sim::FtlKind::kPage, sim::FtlKind::kParity,
                                           sim::FtlKind::kRtf, sim::FtlKind::kFlex),
                         [](const auto& info) { return sim::to_string(info.param); });

TEST(RebuildMappingBehaviour, NewestVersionWinsOverStaleCopies) {
  // Force a GC relocation so two physical copies of an LPN coexist is
  // hard to freeze; instead overwrite an LPN repeatedly and check rebuild
  // lands on the newest copy the live table also points to.
  ftl::PageFtl ftl(ftl::FtlConfig::tiny());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ftl.write(5, 0).is_ok());
  const nand::PageAddress live = ftl.mapping().lookup(5).value();
  ftl.rebuild_mapping();
  EXPECT_EQ(ftl.mapping().lookup(5).value(), live);
}

TEST(WearStats, TracksEraseDistribution) {
  ftl::PageFtl ftl(ftl::FtlConfig::tiny());
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0).is_ok());
  Rng rng(5);
  for (int i = 0; i < 6000; ++i) ASSERT_TRUE(ftl.write(rng.next_below(n), 0).is_ok());
  const nand::NandDevice::WearStats wear = ftl.device().wear_stats();
  EXPECT_GT(wear.max_erases, 0u);
  EXPECT_GE(wear.max_erases, wear.min_erases);
  EXPECT_GT(wear.mean_erases, 0.0);
  // FIFO free-list recycling keeps wear reasonably even under uniform
  // overwrites: the spread should stay within a few erase cycles.
  EXPECT_LE(wear.max_erases - wear.min_erases, wear.mean_erases + 6.0);
}

TEST(WearStats, FreshDeviceIsZero) {
  const nand::NandDevice dev(nand::Geometry::tiny(), nand::TimingSpec::zero(),
                             nand::SequenceKind::kRps);
  const nand::NandDevice::WearStats wear = dev.wear_stats();
  EXPECT_EQ(wear.min_erases, 0u);
  EXPECT_EQ(wear.max_erases, 0u);
  EXPECT_EQ(wear.mean_erases, 0.0);
}

// Property sweep: whatever instant the power fails at, flexFTL recovery
// must leave every *acknowledged* page readable with its original
// signature (in-flight, unacknowledged writes may vanish).
class PowerLossSweep : public ::testing::TestWithParam<int> {};

TEST_P(PowerLossSweep, NoAcknowledgedDataLost) {
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  config.geometry.channels = 1;
  config.geometry.chips_per_channel = 2;
  config.geometry.wordlines_per_block = 8;
  core::FlexFtl ftl(config);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);

  // Mixed traffic: bursts (LSB) and lulls (MSB) so both phases are live.
  const Lpn n = ftl.exported_pages();
  std::vector<std::uint64_t> acknowledged_sig(n, 0);
  std::vector<Microseconds> acknowledged_at(n, kTimeNever);
  Microseconds now = 0;
  for (int i = 0; i < 300; ++i) {
    const Lpn lpn = rng.next_below(n / 2);
    const double u = rng.chance(0.5) ? 0.95 : 0.02;
    const Result<ftl::HostOp> op = ftl.write(lpn, now, u);
    ASSERT_TRUE(op.is_ok());
    // Record what the device itself stored (the signature is generated
    // inside write()); treat the write as acknowledged at completion.
    const nand::PageAddress addr = ftl.mapping().lookup(lpn).value();
    acknowledged_sig[lpn] =
        ftl.device().block({addr.chip, addr.block}).read(addr.pos).value().signature;
    acknowledged_at[lpn] = op.value().complete;
    now += rng.next_below(800);
  }

  // Cut power at a parameterized instant inside the active window.
  const Microseconds horizon = ftl.device().all_idle_at();
  const Microseconds cut = horizon * (GetParam() % 97 + 1) / 98;
  const auto victims = ftl.device().inject_power_loss(cut);
  const core::RecoveryReport report = ftl.recover_from_power_loss(victims, horizon);
  (void)report;

  // Every page acknowledged strictly before the cut must read back intact.
  const Microseconds check_at = ftl.device().all_idle_at();
  for (Lpn lpn = 0; lpn < n; ++lpn) {
    if (acknowledged_at[lpn] > cut) continue;
    const Result<nand::PageData> data = ftl.read_data(lpn, check_at);
    ASSERT_TRUE(data.is_ok())
        << "lpn " << lpn << " lost (cut at " << cut << ", seed " << GetParam() << ")";
    EXPECT_EQ(data.value().signature, acknowledged_sig[lpn]) << "lpn " << lpn;
  }
  EXPECT_TRUE(ftl.check_consistency());
}

INSTANTIATE_TEST_SUITE_P(CutInstants, PowerLossSweep, ::testing::Range(0, 24));

}  // namespace
}  // namespace rps
