// slcFTL: the Lee et al. [4]-style baseline that trades half the capacity
// for pure LSB-speed writes and inherent power-loss safety.
#include "src/ftl/slc_ftl.hpp"

#include <gtest/gtest.h>

#include "src/core/flex_ftl.hpp"
#include "src/ftl/page_ftl.hpp"
#include "src/util/random.hpp"

namespace rps::ftl {
namespace {

TEST(SlcFtl, ExportsHalfTheMlcCapacity) {
  const FtlConfig config = FtlConfig::tiny();
  SlcFtl slc(config);
  PageFtl mlc(config);
  EXPECT_EQ(slc.exported_pages() * 2, mlc.exported_pages());
}

TEST(SlcFtl, EveryWriteIsLsbSpeed) {
  SlcFtl ftl(FtlConfig::tiny());
  Microseconds now = 0;
  for (Lpn lpn = 0; lpn < 32; ++lpn) {
    const Result<HostOp> op = ftl.write(lpn, now);
    ASSERT_TRUE(op.is_ok());
    // Each write costs transfer + LSB program, pipelined across 4 chips.
    now = op.value().complete;
  }
  EXPECT_EQ(ftl.stats().host_lsb_writes, 32u);
  EXPECT_EQ(ftl.stats().host_msb_writes, 0u);
  EXPECT_EQ(ftl.device().total_counters().msb_programs, 0u);
}

TEST(SlcFtl, BlocksRunInSlcMode) {
  SlcFtl ftl(FtlConfig::tiny());
  ASSERT_TRUE(ftl.write(0, 0).is_ok());
  const nand::PageAddress addr = ftl.mapping().lookup(0).value();
  EXPECT_TRUE(ftl.device().block({addr.chip, addr.block}).slc_mode());
  EXPECT_EQ(addr.pos.type, nand::PageType::kLsb);
}

TEST(SlcFtl, PowerLossOnlyAffectsTheInFlightPage) {
  // No MSB programs exist, so a power cut can never destroy previously
  // acknowledged data — the paired-page problem is structurally absent.
  SlcFtl ftl(FtlConfig::tiny());
  Microseconds now = 0;
  for (Lpn lpn = 0; lpn < 8; ++lpn) {
    const Result<HostOp> op = ftl.write(lpn, now);
    ASSERT_TRUE(op.is_ok());
    now = op.value().complete;
  }
  const Result<HostOp> last = ftl.write(8, now);
  ASSERT_TRUE(last.is_ok());
  const auto victims = ftl.device().inject_power_loss(last.value().complete - 100);
  ASSERT_EQ(victims.size(), 1u);
  // All acknowledged pages still read fine without any recovery procedure.
  for (Lpn lpn = 0; lpn < 8; ++lpn) {
    EXPECT_TRUE(ftl.read_data(lpn, now).is_ok()) << lpn;
  }
}

TEST(SlcFtl, SurvivesSteadyStateStress) {
  SlcFtl ftl(FtlConfig::tiny());
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0).is_ok());
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(ftl.write(rng.next_below(n), 0).is_ok()) << i;
  }
  EXPECT_TRUE(ftl.check_consistency());
  for (Lpn lpn = 0; lpn < n; ++lpn) EXPECT_TRUE(ftl.read(lpn, 0).is_ok());
  EXPECT_EQ(ftl.device().total_counters().msb_programs, 0u);
}

TEST(SlcFtl, BurstSpeedMatchesFlexFtlFastPhase) {
  // The paper's point: flexFTL reaches SLC-class peak write bandwidth
  // without sacrificing capacity. Same 64-page burst, fresh devices.
  const FtlConfig config = FtlConfig::tiny();
  SlcFtl slc(config);
  core::FlexFtl flex(config);
  for (Lpn lpn = 0; lpn < 64; ++lpn) {
    ASSERT_TRUE(slc.write(lpn, 0).is_ok());
    ASSERT_TRUE(flex.write(lpn, 0, /*buffer_utilization=*/0.95).is_ok());
  }
  // flexFTL's only extra cost is one parity page per completed fast block:
  // a 1/wordlines overhead (25% on tiny's 4-word-line blocks, 0.8% on the
  // paper's 128-word-line blocks).
  const auto slc_time = static_cast<double>(slc.device().all_idle_at());
  const auto flex_time = static_cast<double>(flex.device().all_idle_at());
  const double wordlines = config.geometry.wordlines_per_block;
  EXPECT_LE(flex_time, slc_time * (1.0 + 1.0 / wordlines) * 1.1);
  EXPECT_GE(flex_time, slc_time);
  // ...but flexFTL exports twice the logical space.
  EXPECT_EQ(flex.exported_pages(), slc.exported_pages() * 2);
}

}  // namespace
}  // namespace rps::ftl
