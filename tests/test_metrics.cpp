// Attributed wear & WAF accounting (src/obs/metrics.hpp, ISSUE 10).
//
// The load-bearing claims under test:
//   - Conservation is EXACT: the cause-tagged attribution sums equal the
//     device's OpCounters field for field (lsb/msb programs, erases), and
//     meta + stream programs partition all programs — for every MLC FTL x
//     planes 1/2/4, for the TLC FTL, and still after a power-loss crash
//     (pending-erase voiding must roll the attribution and ledger back).
//   - The per-block wear ledger is the same events viewed per block: its
//     column sums equal the device counters at every instant, and
//     summarize_wear's digest is consistent with the raw ledger.
//   - The MetricsReport built from a run matrix is byte-identical for any
//     --jobs value (the report serializes jobs-invariant SimResults).
//   - The ledger and attribution counters survive a Snapshot round-trip
//     bit-exactly, and survive crash_reboot without breaking conservation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/core/flex_tlc_ftl.hpp"
#include "src/ftl/ftl_base.hpp"
#include "src/nand/attribution.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/runner.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/snapshot.hpp"
#include "src/util/random.hpp"

namespace rps::obs {
namespace {

constexpr sim::FtlKind kKinds[] = {sim::FtlKind::kPage, sim::FtlKind::kParity,
                                   sim::FtlKind::kRtf, sim::FtlKind::kFlex,
                                   sim::FtlKind::kSlc};

ftl::FtlConfig planes_config(std::uint32_t planes) {
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  config.geometry.planes_per_chip = planes;
  return config;
}

/// Deterministic mixed fill: sequential cover, then enough random
/// overwrites to trigger GC, then idle windows so background GC / wear
/// leveling / scrubbing run too — every WriteCause path a tiny device can
/// exercise.
void fill(ftl::FtlBase& ftl, std::uint64_t seed) {
  const Lpn span = ftl.exported_pages() * 6 / 10;
  for (Lpn lpn = 0; lpn < span; ++lpn) {
    ASSERT_TRUE(ftl.write(lpn, ftl.device().all_idle_at(), 0.5).is_ok());
  }
  Rng rng(seed);
  // Overwrite pressure scales with capacity so GC (and its erases) fire
  // even on the 4-plane variant of the tiny geometry.
  const std::uint64_t overwrites = std::max<std::uint64_t>(400, span * 3);
  for (std::uint64_t i = 0; i < overwrites; ++i) {
    const Lpn lpn = rng.next_below(span);
    ASSERT_TRUE(ftl.write(lpn, ftl.device().all_idle_at(), 0.5).is_ok());
    if (i % 128 == 127) {
      const Microseconds t = ftl.device().all_idle_at();
      ftl.on_idle(t, t + 10'000'000);
    }
  }
}

/// The conservation invariants between a device's attribution, wear
/// ledger and its OpCounters — checked EXACTLY (these are the same
/// events charged at the same instants, not estimates).
template <typename DeviceT>
void expect_conserved(const DeviceT& device) {
  const nand::AttributionCounters& a = device.attribution();
  const nand::OpCounters total = device.total_counters();
  EXPECT_EQ(a.total_lsb_programs(), total.lsb_programs);
  EXPECT_EQ(a.total_msb_programs(), total.msb_programs);
  EXPECT_EQ(a.total_erases(), total.erases);
  EXPECT_EQ(a.meta_programs + a.total_stream_programs(), total.programs());

  const WearSummary wear = collect_wear(device);
  EXPECT_EQ(wear.total_programs, total.programs());
  EXPECT_EQ(wear.total_erases, total.erases);
}

// ------------------------------------------------------------ conservation

struct Case {
  sim::FtlKind kind;
  std::uint32_t planes;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  return std::string(sim::to_string(info.param.kind)) + "_planes" +
         std::to_string(info.param.planes);
}

class AttributionConservation : public testing::TestWithParam<Case> {};

TEST_P(AttributionConservation, SumsMatchDeviceCountersExactly) {
  const Case param = GetParam();
  const ftl::FtlConfig config = planes_config(param.planes);
  std::unique_ptr<ftl::FtlBase> ftl = sim::make_ftl(param.kind, config);
  fill(*ftl, /*seed=*/7);

  expect_conserved(ftl->device());
  const nand::AttributionCounters& a = ftl->device().attribution();
  // The fill is host-driven with GC pressure: both causes must show up.
  EXPECT_GT(a.programs(nand::WriteCause::kHost), 0u);
  EXPECT_GT(a.total_erases(), 0u);
}

TEST_P(AttributionConservation, HoldsAfterCrashAndReboot) {
  const Case param = GetParam();
  const ftl::FtlConfig config = planes_config(param.planes);
  std::unique_ptr<ftl::FtlBase> ftl = sim::make_ftl(param.kind, config);
  fill(*ftl, /*seed=*/11);

  // Cut mid-flight: launch one more write and chop 1us before it lands.
  const Microseconds t = ftl->device().all_idle_at();
  const Result<ftl::HostOp> op = ftl->write(0, t, 0.5);
  ASSERT_TRUE(op.is_ok());
  const Microseconds cut = op.value().complete - 1;
  const std::vector<nand::PowerLossVictim> victims =
      ftl->device().inject_power_loss(cut);

  // Power loss voids lazily-pending erases; the attribution and ledger
  // must roll back with them — conservation holds at the cut...
  expect_conserved(ftl->device());

  // ...and after the reboot path (mapping rebuild / parity recovery).
  (void)sim::crash_reboot(param.kind, *ftl, victims, cut);
  expect_conserved(ftl->device());
  EXPECT_TRUE(ftl->check_consistency());
}

TEST_P(AttributionConservation, LedgerAndAttributionSurviveSnapshot) {
  const Case param = GetParam();
  const ftl::FtlConfig config = planes_config(param.planes);
  std::unique_ptr<ftl::FtlBase> ftl = sim::make_ftl(param.kind, config);
  fill(*ftl, /*seed=*/13);

  const sim::Snapshot snapshot = sim::Snapshot::capture(*ftl);
  std::unique_ptr<ftl::FtlBase> restored = sim::make_ftl(param.kind, config);
  ASSERT_TRUE(snapshot.restore(*restored));

  EXPECT_EQ(restored->device().attribution(), ftl->device().attribution());
  const std::uint32_t chips = ftl->device().geometry().num_chips();
  for (std::uint32_t c = 0; c < chips; ++c) {
    EXPECT_EQ(restored->device().chip(c).wear_ledger(),
              ftl->device().chip(c).wear_ledger())
        << "chip " << c;
  }
  EXPECT_EQ(collect_wear(restored->device()), collect_wear(ftl->device()));
  expect_conserved(restored->device());
}

INSTANTIATE_TEST_SUITE_P(AllFtlsAllPlanes, AttributionConservation,
                         testing::ValuesIn([] {
                           std::vector<Case> cases;
                           for (const sim::FtlKind kind : kKinds) {
                             for (const std::uint32_t planes : {1u, 2u, 4u}) {
                               cases.push_back({kind, planes});
                             }
                           }
                           return cases;
                         }()),
                         case_name);

// --------------------------------------------------------------------- TLC

TEST(AttributionConservationTlc, SteadyStateAndCrashRecovery) {
  core::FlexTlcFtl ftl(core::TlcFtlConfig::tiny());
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) {
    ASSERT_TRUE(ftl.write(lpn, 0, 0.5).is_ok());
  }
  Rng rng(5);
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(ftl.write(rng.next_below(n), 0, rng.next_double()).is_ok());
  }
  expect_conserved(ftl.device());
  const nand::AttributionCounters& a = ftl.device().attribution();
  EXPECT_GT(a.programs(nand::WriteCause::kHost), 0u);
  // The TLC parity lane always flushes under kParity.
  EXPECT_GT(a.programs(nand::WriteCause::kParity), 0u);

  // Crash mid-write, recover, re-check: TLC's eager erases and parity
  // recovery writes (kMeta) must keep the books balanced.
  const Microseconds t = ftl.device().all_idle_at();
  const Result<Microseconds> op = ftl.write(0, t, 0.5);
  ASSERT_TRUE(op.is_ok());
  const auto victims = ftl.device().inject_power_loss(op.value() - 1);
  expect_conserved(ftl.device());
  (void)ftl.recover_from_power_loss(victims, ftl.device().all_idle_at());
  expect_conserved(ftl.device());
}

TEST(AttributionConservationTlc, LedgerSurvivesSnapshot) {
  core::FlexTlcFtl ftl(core::TlcFtlConfig::tiny());
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) {
    ASSERT_TRUE(ftl.write(lpn, 0, 0.5).is_ok());
  }
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(ftl.write(rng.next_below(n), 0, rng.next_double()).is_ok());
  }

  const sim::Snapshot snapshot = sim::Snapshot::capture(ftl);
  core::FlexTlcFtl restored(core::TlcFtlConfig::tiny());
  ASSERT_TRUE(snapshot.restore(restored));

  EXPECT_EQ(restored.device().attribution(), ftl.device().attribution());
  const std::uint32_t chips = ftl.device().geometry().num_chips();
  for (std::uint32_t c = 0; c < chips; ++c) {
    EXPECT_EQ(restored.device().chip(c).wear_ledger(),
              ftl.device().chip(c).wear_ledger())
        << "chip " << c;
  }
  expect_conserved(restored.device());
}

// ------------------------------------------------------------ wear summary

TEST(WearSummary, DigestIsConsistentWithRawLedger) {
  std::unique_ptr<ftl::FtlBase> ftl =
      sim::make_ftl(sim::FtlKind::kFlex, planes_config(1));
  fill(*ftl, /*seed=*/21);

  const WearSummary wear = collect_wear(ftl->device());
  const std::uint32_t chips = ftl->device().geometry().num_chips();
  std::uint64_t blocks = 0, erases = 0, programs = 0;
  std::uint64_t min_e = ~0ull, max_e = 0;
  std::uint64_t hist_total = 0;
  for (std::uint32_t c = 0; c < chips; ++c) {
    for (const nand::BlockWear& b : ftl->device().chip(c).wear_ledger()) {
      ++blocks;
      erases += b.erases;
      programs += b.programs;
      min_e = std::min(min_e, b.erases);
      max_e = std::max(max_e, b.erases);
    }
  }
  EXPECT_EQ(wear.blocks, blocks);
  EXPECT_EQ(wear.total_erases, erases);
  EXPECT_EQ(wear.total_programs, programs);
  EXPECT_EQ(wear.min_erases, min_e);
  EXPECT_EQ(wear.max_erases, max_e);
  for (const std::uint64_t count : wear.pe_histogram) hist_total += count;
  EXPECT_EQ(hist_total, blocks);  // every block lands in exactly one bucket
  EXPECT_GE(wear.max_over_mean_erases, 1.0);
}

// ------------------------------------------------- report jobs-invariance

sim::ExperimentSpec tiny_spec() {
  sim::ExperimentSpec spec;
  spec.ftl_config.geometry = nand::Geometry{.channels = 2,
                                            .chips_per_channel = 2,
                                            .blocks_per_chip = 24,
                                            .wordlines_per_block = 16,
                                            .page_size_bytes = 2048,
                                            .spare_bytes = 32};
  spec.ftl_config.overprovisioning = 0.2;
  spec.ftl_config.gc_reserve_blocks = 1;
  spec.ftl_config.write_buffer_pages = 16;
  spec.ftl_config.rtf_active_blocks = 2;
  spec.requests = 1200;
  spec.working_set_fraction = 0.8;
  spec.sim.queue_depth = 16;
  return spec;
}

std::string matrix_report(const std::vector<workload::Preset>& presets,
                          const sim::ExperimentSpec& spec, std::uint32_t jobs) {
  const std::vector<std::vector<sim::SimResult>> matrix =
      sim::run_preset_matrix(presets, spec, jobs);
  MetricsReport report;
  for (std::size_t p = 0; p < presets.size(); ++p) {
    for (const sim::SimResult& result : matrix[p]) {
      report.begin(std::string(workload::to_string(presets[p])) + "/" +
                   result.ftl_name);
      sim::add_result_metrics(report, result);
      report.end();
    }
  }
  return report.str();
}

TEST(MetricsReport, ByteIdenticalAcrossJobs) {
  const sim::ExperimentSpec spec = tiny_spec();
  const std::vector<workload::Preset> presets = {workload::Preset::kNtrx,
                                                 workload::Preset::kVarmail};
  const std::string jobs1 = matrix_report(presets, spec, 1);
  const std::string jobs2 = matrix_report(presets, spec, 2);
  const std::string jobs8 = matrix_report(presets, spec, 8);
  EXPECT_EQ(jobs1, jobs2);
  EXPECT_EQ(jobs1, jobs8);
  // Sanity: the report is a real document, not an accidentally-empty one.
  EXPECT_NE(jobs1.find("\"metrics_version\":1"), std::string::npos);
  EXPECT_NE(jobs1.find("NTRX/pageFTL"), std::string::npos);
  EXPECT_NE(jobs1.find("\"waf\""), std::string::npos);
}

TEST(MetricsReport, WafDecomposesExactly) {
  // WAF accounting identity on a real run: total programs = sum over
  // causes, and waf_of sums to waf_total.
  const sim::ExperimentSpec spec = tiny_spec();
  const sim::SimResult result =
      sim::run_experiment(sim::FtlKind::kFlex, workload::Preset::kVarmail, spec);
  const nand::AttributionCounters& a = result.attribution;
  std::uint64_t by_cause = 0;
  double waf_sum = 0.0;
  for (std::size_t c = 0; c < nand::kNumWriteCauses; ++c) {
    const auto cause = static_cast<nand::WriteCause>(c);
    by_cause += a.programs(cause);
    waf_sum += waf_of(a, cause);
  }
  EXPECT_EQ(by_cause, a.total_programs());
  EXPECT_GT(a.programs(nand::WriteCause::kHost), 0u);
  EXPECT_NEAR(waf_sum, waf_total(a), 1e-9);
  EXPECT_GE(waf_total(a), 1.0);  // the host's own writes alone give WAF 1
}

}  // namespace
}  // namespace rps::obs
