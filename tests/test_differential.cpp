// Differential testing: every FTL, whatever its allocation policy, is a
// correct page store. Running the identical operation sequence through all
// five implementations must produce identical logical contents — any
// divergence is a mapping/GC/backup bug in one of them. Also sweeps the
// geometry so block/page-count edge cases (tiny blocks, single channel,
// many chips) are all exercised.
#include <gtest/gtest.h>

#include <utility>

#include "src/controller/controller.hpp"
#include "src/sim/runner.hpp"
#include "src/util/random.hpp"

namespace rps {
namespace {

struct Op {
  bool is_write;
  Lpn lpn;
  std::uint64_t tag;  // payload identity
};

std::vector<Op> make_ops(Lpn space, std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ops.push_back(Op{rng.chance(0.7), rng.next_below(space), i});
  }
  return ops;
}

std::vector<std::uint8_t> payload_of(std::uint64_t tag) {
  return {static_cast<std::uint8_t>(tag), static_cast<std::uint8_t>(tag >> 8),
          static_cast<std::uint8_t>(tag >> 16)};
}

/// Apply the op sequence and return the logical image (one tag per LPN;
/// SIZE_MAX for never-written).
std::vector<std::uint64_t> apply_and_extract(sim::FtlKind kind,
                                             const ftl::FtlConfig& config,
                                             const std::vector<Op>& ops, Lpn space) {
  auto ftl = sim::make_ftl(kind, config);
  EXPECT_GE(ftl->exported_pages(), space);
  Rng urng(99);
  for (const Op& op : ops) {
    if (op.is_write) {
      EXPECT_TRUE(ftl->write_data(op.lpn, payload_of(op.tag), 0, urng.next_double())
                      .is_ok());
    } else {
      (void)ftl->read(op.lpn, 0);
    }
  }
  EXPECT_TRUE(ftl->check_consistency());
  std::vector<std::uint64_t> image(space, SIZE_MAX);
  for (Lpn lpn = 0; lpn < space; ++lpn) {
    const Result<nand::PageData> data = ftl->read_data(lpn, 0);
    if (!data.is_ok()) continue;
    const std::vector<std::uint8_t>& b = data.value().bytes;
    EXPECT_EQ(b.size(), 3u) << "lpn " << lpn;
    image[lpn] = static_cast<std::uint64_t>(b[0]) |
                 (static_cast<std::uint64_t>(b[1]) << 8) |
                 (static_cast<std::uint64_t>(b[2]) << 16);
  }
  return image;
}

TEST(Differential, AllFtlsAgreeOnLogicalContents) {
  const ftl::FtlConfig config = ftl::FtlConfig::tiny();
  // slcFTL exports half the space: size the op stream for the smallest.
  const Lpn space = 150;
  const std::vector<Op> ops = make_ops(space, 4000, 11);

  const std::vector<std::uint64_t> reference =
      apply_and_extract(sim::FtlKind::kPage, config, ops, space);
  for (const sim::FtlKind kind : {sim::FtlKind::kParity, sim::FtlKind::kRtf,
                                  sim::FtlKind::kFlex, sim::FtlKind::kSlc}) {
    const std::vector<std::uint64_t> image = apply_and_extract(kind, config, ops, space);
    EXPECT_EQ(image, reference) << sim::to_string(kind);
  }
}

using Placement = std::pair<Lpn, nand::PageAddress>;

/// Replay a single-page QD-1 trace and record every physical placement the
/// FTL commits (host writes and GC relocations alike), either through the
/// legacy synchronous entry points or through the controller.
std::vector<Placement> qd1_placements(sim::FtlKind kind,
                                      const ftl::FtlConfig& config,
                                      const std::vector<Op>& ops,
                                      bool through_controller) {
  auto ftl = sim::make_ftl(kind, config);
  std::vector<Placement> placements;
  ftl->set_placement_observer([&](Lpn lpn, const nand::PageAddress& addr) {
    placements.push_back({lpn, addr});
  });
  ctrl::Controller controller(*ftl);
  Rng urng(99);
  for (const Op& op : ops) {
    // QD-1: each command issues only once the device is fully idle, so the
    // controller's idle-chip constraint admits every chip — the policy sees
    // exactly the choice set the legacy path gives it.
    const Microseconds now = ftl->device().all_idle_at();
    if (through_controller) {
      ctrl::HostCommand cmd;
      cmd.kind = op.is_write ? ctrl::CmdKind::kWrite : ctrl::CmdKind::kRead;
      cmd.lpn = op.lpn;
      cmd.page_count = 1;
      cmd.issue = now;
      if (op.is_write) cmd.buffer_utilization = urng.next_double();
      const ctrl::CommandResult r = controller.execute(cmd);
      EXPECT_TRUE(r.ok);
    } else {
      if (op.is_write) {
        EXPECT_TRUE(ftl->write(op.lpn, now, urng.next_double()).is_ok());
      } else {
        (void)ftl->read(op.lpn, now);
      }
    }
  }
  EXPECT_TRUE(ftl->check_consistency());
  return placements;
}

// The controller layer must be a pure re-plumbing for queue-depth-1 traffic:
// with every chip idle at issue, striping constrains nothing, and each
// allocator must place every page exactly where the legacy synchronous path
// would have. Any divergence means the refactor changed policy, not just
// scheduling.
TEST(Differential, ControllerMatchesLegacyPlacementsAtQd1) {
  const ftl::FtlConfig config = ftl::FtlConfig::tiny();
  const Lpn space = 150;
  const std::vector<Op> ops = make_ops(space, 3000, 23);
  for (const sim::FtlKind kind : {sim::FtlKind::kPage, sim::FtlKind::kParity,
                                  sim::FtlKind::kRtf, sim::FtlKind::kFlex,
                                  sim::FtlKind::kSlc}) {
    const std::vector<Placement> legacy =
        qd1_placements(kind, config, ops, /*through_controller=*/false);
    const std::vector<Placement> controller =
        qd1_placements(kind, config, ops, /*through_controller=*/true);
    ASSERT_FALSE(legacy.empty()) << sim::to_string(kind);
    EXPECT_EQ(controller, legacy) << sim::to_string(kind);
  }
}

struct SweepGeometry {
  const char* name;
  nand::Geometry geometry;
};

class GeometrySweep : public ::testing::TestWithParam<SweepGeometry> {};

TEST_P(GeometrySweep, EveryFtlSurvivesAndStaysConsistent) {
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  config.geometry = GetParam().geometry;
  config.rtf_active_blocks = 2;
  // Extreme shapes have few blocks per chip; the fixed overheads (active +
  // backup + GC reserve) need generous spare space to leave GC headroom.
  config.overprovisioning = 0.45;
  for (const sim::FtlKind kind : {sim::FtlKind::kPage, sim::FtlKind::kParity,
                                  sim::FtlKind::kRtf, sim::FtlKind::kFlex,
                                  sim::FtlKind::kSlc}) {
    auto ftl = sim::make_ftl(kind, config);
    const Lpn n = ftl->exported_pages();
    ASSERT_GT(n, 0u) << sim::to_string(kind);
    for (Lpn lpn = 0; lpn < n; ++lpn) {
      ASSERT_TRUE(ftl->write(lpn, 0, 0.5).is_ok())
          << sim::to_string(kind) << " fill " << lpn;
    }
    Rng rng(5);
    for (int i = 0; i < 1500; ++i) {
      ASSERT_TRUE(ftl->write(rng.next_below(n), 0, rng.next_double()).is_ok())
          << sim::to_string(kind) << " overwrite " << i;
      if (i % 300 == 299) {
        const Microseconds t = ftl->device().all_idle_at();
        ftl->on_idle(t, t + 5'000'000);
      }
    }
    EXPECT_TRUE(ftl->check_consistency()) << sim::to_string(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometrySweep,
    ::testing::Values(
        SweepGeometry{"SingleChip",
                      {.channels = 1, .chips_per_channel = 1, .blocks_per_chip = 24,
                       .wordlines_per_block = 8, .page_size_bytes = 512,
                       .spare_bytes = 16}},
        SweepGeometry{"ManySmallChips",
                      {.channels = 4, .chips_per_channel = 4, .blocks_per_chip = 8,
                       .wordlines_per_block = 4, .page_size_bytes = 512,
                       .spare_bytes = 16}},
        SweepGeometry{"TallBlocks",
                      {.channels = 1, .chips_per_channel = 2, .blocks_per_chip = 10,
                       .wordlines_per_block = 32, .page_size_bytes = 512,
                       .spare_bytes = 16}},
        SweepGeometry{"TwoWordlines",
                      {.channels = 2, .chips_per_channel = 1, .blocks_per_chip = 24,
                       .wordlines_per_block = 2, .page_size_bytes = 512,
                       .spare_bytes = 16}},
        SweepGeometry{"TwoPlanes",
                      {.channels = 2, .chips_per_channel = 1, .planes_per_chip = 2,
                       .blocks_per_chip = 12, .wordlines_per_block = 8,
                       .page_size_bytes = 512, .spare_bytes = 16}},
        SweepGeometry{"FourPlanes",
                      {.channels = 1, .chips_per_channel = 2, .planes_per_chip = 4,
                       .blocks_per_chip = 8, .wordlines_per_block = 4,
                       .page_size_bytes = 512, .spare_bytes = 16}}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace rps
