// Observability layer: mergeable histograms, the state sampler's cadence
// contract, and the determinism guarantees of the trace sink.
//
// The load-bearing claims under test:
//   - LatencyHistogram quantiles are within one sub-bucket (< 0.8%
//     relative) of the true sample and never below it; merging per-slot
//     histograms in slot order is bit-identical for any --jobs value,
//   - StateSampler emits at most one sample per period-grid slot, with
//     timestamps that are multiples of the period and strictly increasing
//     no matter how irregular the tick times are,
//   - a traced run serializes byte-identically across repeat runs of the
//     same config (traces are pure functions of config + seed),
//   - attaching a TraceSink / StateSampler does not perturb the
//     simulation: the A/B of a traced and untraced run is equal in every
//     result field.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/faultsim/harness.hpp"
#include "src/faultsim/sweep.hpp"
#include "src/obs/histogram.hpp"
#include "src/obs/sampler.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/runner.hpp"
#include "src/util/parallel.hpp"
#include "src/util/random.hpp"

namespace rps::obs {
namespace {

// ---------------------------------------------------------------- histogram

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_low(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_high(v), v);
    h.add(v);
  }
  EXPECT_EQ(h.count(), LatencyHistogram::kSubBuckets);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), LatencyHistogram::kSubBuckets - 1);
  // Values below 2^kSubBucketBits occupy one bucket each, so quantiles of
  // small values are exact, not approximations.
  EXPECT_EQ(h.percentile(50.0), 63u);
  EXPECT_EQ(h.percentile(100.0), 127u);
}

TEST(LatencyHistogram, BucketBoundsContainTheirValues) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = rng.next_u64() >> (rng.next_below(40));
    const std::size_t idx = LatencyHistogram::bucket_index(v);
    EXPECT_LE(LatencyHistogram::bucket_low(idx), v);
    EXPECT_GE(LatencyHistogram::bucket_high(idx), v);
    if (idx > 0) {
      EXPECT_EQ(LatencyHistogram::bucket_low(idx),
                LatencyHistogram::bucket_high(idx - 1) + 1);
    }
  }
}

TEST(LatencyHistogram, QuantileErrorWithinOneSubBucket) {
  // Sorted ground truth vs histogram report: the report is the bucket's
  // upper bound, so it is >= the true order statistic and within one
  // sub-bucket's width (2^-7 < 0.8% relative) of it.
  Rng rng(11);
  std::vector<std::uint64_t> values;
  LatencyHistogram h;
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t v = 1 + (rng.next_u64() % 3'000'000);
    values.push_back(v);
    h.add(v);
  }
  std::sort(values.begin(), values.end());
  for (const double p : {50.0, 90.0, 99.0, 99.9, 100.0}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::max<double>(1.0, std::ceil(p / 100.0 * values.size())));
    const std::uint64_t truth = values[rank - 1];
    const std::uint64_t reported = h.percentile(p);
    EXPECT_GE(reported, truth);
    EXPECT_LE(static_cast<double>(reported),
              static_cast<double>(truth) * (1.0 + 1.0 / 128.0) + 1.0);
  }
  EXPECT_EQ(h.percentile(100.0), values.back());
  EXPECT_EQ(h.max(), values.back());
  EXPECT_EQ(h.min(), values.front());
}

TEST(LatencyHistogram, CdfMatchesEmpirical) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_DOUBLE_EQ(h.cdf_at(50), 0.5);
  EXPECT_DOUBLE_EQ(h.cdf_at(100), 1.0);
  EXPECT_DOUBLE_EQ(h.cdf_at(0), 0.0);
}

TEST(LatencyHistogram, MergeEqualsBulkAdd) {
  Rng rng(3);
  LatencyHistogram all, a, b;
  for (int i = 0; i < 5'000; ++i) {
    const std::uint64_t v = rng.next_u64() % 1'000'000;
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  LatencyHistogram merged = a;
  merged.merge(b);
  EXPECT_EQ(merged, all);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_EQ(merged.sum(), all.sum());
  EXPECT_EQ(merged.min(), all.min());
  EXPECT_EQ(merged.max(), all.max());
  EXPECT_EQ(merged.to_json(), all.to_json());
}

TEST(LatencyHistogram, ShardedMergeIsJobsInvariant) {
  // The sweep-engine pattern: samples shard across parallel_for_indexed
  // slots, each slot fills its own histogram, and the slots merge in slot
  // order. The result must be bit-identical for ANY jobs value.
  constexpr std::size_t kSlots = 16;
  constexpr std::size_t kPerSlot = 2'000;
  LatencyHistogram sequential;
  for (std::size_t s = 0; s < kSlots; ++s) {
    Rng rng(1000 + s);
    for (std::size_t i = 0; i < kPerSlot; ++i) sequential.add(rng.next_u64() % 500'000);
  }

  for (const std::uint32_t jobs : {1u, 2u, 4u, 8u}) {
    std::vector<LatencyHistogram> slots(kSlots);
    util::parallel_for_indexed(kSlots, jobs, [&](std::size_t s) {
      Rng rng(1000 + s);
      for (std::size_t i = 0; i < kPerSlot; ++i) slots[s].add(rng.next_u64() % 500'000);
    });
    LatencyHistogram merged;
    for (const LatencyHistogram& slot : slots) merged.merge(slot);
    EXPECT_EQ(merged, sequential) << "jobs=" << jobs;
    EXPECT_EQ(merged.to_json(), sequential.to_json()) << "jobs=" << jobs;
  }
}

// ------------------------------------------------------------------ sampler

TEST(StateSampler, EmitsOncePerGridSlot) {
  StateSampler sampler(250);
  for (const Microseconds t : {0, 10, 249, 250, 600, 601, 740, 1250}) {
    sampler.tick(t);
  }
  ASSERT_EQ(sampler.samples().size(), 4u);
  EXPECT_EQ(sampler.samples()[0].ts, 0);
  EXPECT_EQ(sampler.samples()[1].ts, 250);
  EXPECT_EQ(sampler.samples()[2].ts, 500);
  EXPECT_EQ(sampler.samples()[3].ts, 1250);
}

TEST(StateSampler, CadencePropertyUnderIrregularTicks) {
  // Property: for any nondecreasing tick sequence, sample timestamps are
  // multiples of the period, strictly increasing, and never more numerous
  // than the distinct grid slots touched.
  Rng rng(42);
  StateSampler sampler(1'000);
  Microseconds now = 0;
  std::size_t distinct_slots = 0;
  Microseconds last_slot = -1;
  for (int i = 0; i < 5'000; ++i) {
    now += static_cast<Microseconds>(rng.next_below(700));
    const Microseconds slot = now - now % 1'000;
    if (slot > last_slot) {
      ++distinct_slots;
      last_slot = slot;
    }
    sampler.tick(now);
  }
  EXPECT_EQ(sampler.samples().size(), distinct_slots);
  Microseconds prev = -1;
  for (const StateSample& s : sampler.samples()) {
    EXPECT_EQ(s.ts % 1'000, 0);
    EXPECT_GT(s.ts, prev);
    prev = s.ts;
  }
}

TEST(StateSampler, CollectorPopulatesSamples) {
  StateSampler sampler(100);
  sampler.set_collector([](StateSample& s) {
    s.q = 7;
    s.sbqueue = 3;
    s.chip_queue = {1, 2};
  });
  sampler.set_utilization(0.5);
  sampler.tick(100);
  ASSERT_EQ(sampler.samples().size(), 1u);
  EXPECT_EQ(sampler.samples()[0].q, 7);
  EXPECT_EQ(sampler.samples()[0].sbqueue, 3u);
  EXPECT_DOUBLE_EQ(sampler.samples()[0].u, 0.5);
  const std::string csv = sampler.to_csv();
  EXPECT_NE(csv.find("ts_us,u,q,sbqueue,free_frac,write_q,chip0,chip1"),
            std::string::npos);
  EXPECT_NE(csv.find("100,0.500000,7,3,"), std::string::npos);
}

// -------------------------------------------------------------------- trace

faultsim::FaultSimConfig traced_config() {
  faultsim::FaultSimConfig config;
  config.kind = sim::FtlKind::kFlex;
  config.engine = sim::Engine::kController;
  config.seed = 3;
  config.requests = 200;
  return config;
}

TEST(TraceSink, SameSeedSerializesByteIdentically) {
  TraceSink a, b;
  (void)faultsim::run_trial(traced_config(), &a);
  (void)faultsim::run_trial(traced_config(), &b);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.to_chrome_json(), b.to_chrome_json());
}

TEST(TraceSink, SweepTraceIsDeterministicAndScopedPerCrashPoint) {
  faultsim::SweepOptions options;
  options.crash_points = 3;
  options.verify_replay = false;
  options.minimize = false;
  TraceSink a, b;
  options.jobs = 1;
  (void)faultsim::sweep(traced_config(), options, &a);
  options.jobs = 4;  // tracing forces jobs=1; output must not change
  (void)faultsim::sweep(traced_config(), options, &b);
  EXPECT_EQ(a.to_chrome_json(), b.to_chrome_json());
  // Golden run under pid 0 plus one pid per crash point.
  bool saw_golden = false, saw_point = false;
  for (const TraceEvent& e : a.events()) {
    if (e.pid == 0) saw_golden = true;
    if (e.pid >= 1) saw_point = true;
  }
  EXPECT_TRUE(saw_golden);
  EXPECT_TRUE(saw_point);
  EXPECT_EQ(a.count(EventKind::kPowerLossCut), options.crash_points);
}

TEST(TraceSink, TracedRunCoversTheEventTaxonomy) {
  TraceSink sink;
  (void)faultsim::run_trial(traced_config(), &sink);
  EXPECT_GT(sink.count(EventKind::kNandWrite), 0u);
  EXPECT_GT(sink.count(EventKind::kBlockFastToSlow), 0u);
  EXPECT_GT(sink.count(EventKind::kParityFlush), 0u);
  const std::string json = sink.to_chrome_json();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
  // Lane metadata: one process_name per pid, one thread_name per lane.
  // (The faultsim harness drives the FTL directly — host-lane events only
  // exist in Simulator-driven traces, so only chip lanes appear here.)
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"chip 0\""), std::string::npos);
}

// ------------------------------------------------------------- disabled A/B

TEST(Observability, TracingDoesNotPerturbTheTrial) {
  TraceSink sink;
  StateSampler sampler(1'000);
  const faultsim::TrialResult plain = faultsim::run_trial(traced_config());
  const faultsim::TrialResult traced =
      faultsim::run_trial(traced_config(), &sink);
  EXPECT_EQ(plain.report, traced.report);
  EXPECT_EQ(plain.boundaries, traced.boundaries);
}

TEST(Observability, TracingDoesNotPerturbTheExperiment) {
  sim::ExperimentSpec spec;
  spec.ftl_config = ftl::FtlConfig::tiny();
  spec.requests = 2'000;
  const sim::SimResult plain =
      run_experiment(sim::FtlKind::kFlex, workload::Preset::kVarmail, spec);

  TraceSink sink;
  StateSampler sampler(1'000);
  const sim::SimResult traced = run_experiment(
      sim::FtlKind::kFlex, workload::Preset::kVarmail, spec, &sink, &sampler);

  EXPECT_FALSE(sink.empty());
  EXPECT_FALSE(sampler.samples().empty());
  EXPECT_EQ(plain.requests, traced.requests);
  EXPECT_EQ(plain.pages_written, traced.pages_written);
  EXPECT_EQ(plain.pages_read, traced.pages_read);
  EXPECT_EQ(plain.makespan_us, traced.makespan_us);
  EXPECT_EQ(plain.erases, traced.erases);
  EXPECT_EQ(plain.latency_hist_us, traced.latency_hist_us);
  EXPECT_EQ(plain.write_bw_kbps, traced.write_bw_kbps);
}

}  // namespace
}  // namespace rps::obs
