// flexFTL-TLC: three-phase ordering, dual parity protection, and the TLC
// power-loss matrix (an interrupted CSB pass destroys the word line's LSB
// page; an interrupted MSB pass destroys LSB and CSB).
#include "src/core/flex_tlc_ftl.hpp"

#include <gtest/gtest.h>

#include "src/util/random.hpp"

namespace rps::core {
namespace {

TlcFtlConfig one_chip() {
  TlcFtlConfig c = TlcFtlConfig::tiny();
  c.geometry.chips_per_channel = 1;
  return c;
}

std::vector<std::uint8_t> payload_for(Lpn lpn) {
  return {static_cast<std::uint8_t>(lpn * 3 + 1), static_cast<std::uint8_t>(lpn >> 3)};
}

TEST(FlexTlcFtl, BurstsAreServedEntirelyByLsbPass) {
  FlexTlcFtl ftl(TlcFtlConfig::tiny());
  for (Lpn lpn = 0; lpn < 40; ++lpn) {
    ASSERT_TRUE(ftl.write(lpn, 0, /*buffer_utilization=*/0.95).is_ok());
  }
  EXPECT_EQ(ftl.stats().host_writes_by_pass[0], 40u);
  EXPECT_EQ(ftl.stats().host_writes_by_pass[1], 0u);
  EXPECT_EQ(ftl.stats().host_writes_by_pass[2], 0u);
}

TEST(FlexTlcFtl, ThreePhaseBlockLifecycle) {
  FlexTlcFtl ftl(one_chip());
  const std::uint32_t wl = ftl.config().geometry.wordlines_per_block;
  // Fast phase fills a block's LSB pages; one LSB parity page flushes.
  for (Lpn lpn = 0; lpn < wl; ++lpn) {
    ASSERT_TRUE(ftl.write(lpn, 0, 0.95).is_ok());
  }
  EXPECT_EQ(ftl.csb_queue_depth(0), 1u);
  EXPECT_EQ(ftl.stats().backup_pages, 1u);
  // Low utilization consumes the CSB pass next (no MSB capacity yet).
  for (Lpn lpn = 0; lpn < wl; ++lpn) {
    ASSERT_TRUE(ftl.write(100 + lpn, 0, 0.01).is_ok());
  }
  EXPECT_EQ(ftl.csb_queue_depth(0), 0u);
  EXPECT_EQ(ftl.msb_queue_depth(0), 1u);
  EXPECT_EQ(ftl.stats().backup_pages, 2u);  // + the CSB parity page
  EXPECT_EQ(ftl.stats().host_writes_by_pass[1], wl);
  // Then the MSB pass completes the block.
  for (Lpn lpn = 0; lpn < wl; ++lpn) {
    ASSERT_TRUE(ftl.write(200 + lpn, 0, 0.01).is_ok());
  }
  EXPECT_EQ(ftl.msb_queue_depth(0), 0u);
  EXPECT_EQ(ftl.stats().host_writes_by_pass[2], wl);
  EXPECT_TRUE(ftl.check_consistency());
}

TEST(FlexTlcFtl, QuotaDrainsOnLsbRecoversOnMsb) {
  FlexTlcFtl ftl(one_chip());
  const std::int64_t q0 = ftl.quota();
  const std::uint32_t wl = ftl.config().geometry.wordlines_per_block;
  for (Lpn lpn = 0; lpn < wl; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0, 0.95).is_ok());
  EXPECT_EQ(ftl.quota(), q0 - wl);
  for (Lpn lpn = 0; lpn < wl; ++lpn) ASSERT_TRUE(ftl.write(50 + lpn, 0, 0.01).is_ok());
  EXPECT_EQ(ftl.quota(), q0 - wl);  // CSB pass is quota-neutral
  for (Lpn lpn = 0; lpn < wl; ++lpn) ASSERT_TRUE(ftl.write(90 + lpn, 0, 0.01).is_ok());
  EXPECT_EQ(ftl.quota(), q0);  // MSB pass repays
}

TEST(FlexTlcFtl, SteadyStateStressStaysConsistent) {
  FlexTlcFtl ftl(TlcFtlConfig::tiny());
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) {
    ASSERT_TRUE(ftl.write(lpn, 0, 0.5).is_ok()) << lpn;
  }
  Rng rng(9);
  for (int i = 0; i < 6000; ++i) {
    ASSERT_TRUE(ftl.write(rng.next_below(n), 0, rng.next_double()).is_ok()) << i;
    if (i % 500 == 499) {
      const Microseconds t = ftl.device().all_idle_at();
      ftl.on_idle(t, t + 30'000'000);
    }
  }
  EXPECT_TRUE(ftl.check_consistency());
  EXPECT_GT(ftl.device().total_erase_count(), 0u);
  for (Lpn lpn = 0; lpn < n; ++lpn) {
    EXPECT_TRUE(ftl.read_data(lpn, 0).is_ok()) << lpn;
  }
}

TEST(FlexTlcFtl, CsbPassPowerLossRecoversLsbFromParity) {
  FlexTlcFtl ftl(one_chip());
  const std::uint32_t wl = ftl.config().geometry.wordlines_per_block;
  Microseconds t = 0;
  for (Lpn lpn = 0; lpn < wl; ++lpn) {
    const auto op = ftl.write_data(lpn, payload_for(lpn), t, 0.95);
    ASSERT_TRUE(op.is_ok());
    t = op.value();
  }
  // First CSB program; cut power mid-flight.
  const auto csb = ftl.write_data(100, payload_for(100), t, 0.01);
  ASSERT_TRUE(csb.is_ok());
  const auto victims = ftl.device().inject_power_loss(csb.value() - 100);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0].pos.type, nand::TlcPageType::kCsb);
  // The paired LSB page (lpn 0) is destroyed...
  EXPECT_EQ(ftl.read_data(0, ftl.device().all_idle_at()).code(),
            ErrorCode::kEccUncorrectable);
  // ...and parity recovery brings it back.
  const TlcRecoveryReport report =
      ftl.recover_from_power_loss(victims, ftl.device().all_idle_at());
  EXPECT_EQ(report.pages_recovered, 1u);
  EXPECT_EQ(report.pages_lost, 0u);
  const auto data = ftl.read_data(0, ftl.device().all_idle_at());
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(data.value().bytes, payload_for(0));
}

TEST(FlexTlcFtl, MsbPassPowerLossRecoversBothLowerPages) {
  FlexTlcFtl ftl(one_chip());
  const std::uint32_t wl = ftl.config().geometry.wordlines_per_block;
  Microseconds t = 0;
  // Fill LSB pass (lpns 0..wl-1) and CSB pass (lpns 100..100+wl-1).
  for (Lpn lpn = 0; lpn < wl; ++lpn) {
    const auto op = ftl.write_data(lpn, payload_for(lpn), t, 0.95);
    ASSERT_TRUE(op.is_ok());
    t = op.value();
  }
  for (Lpn lpn = 0; lpn < wl; ++lpn) {
    const auto op = ftl.write_data(100 + lpn, payload_for(100 + lpn), t, 0.01);
    ASSERT_TRUE(op.is_ok());
    t = op.value();
  }
  // First MSB program; cut power mid-flight: LSB(0) and CSB(0) both die.
  const auto msb = ftl.write_data(200, payload_for(200), t, 0.01);
  ASSERT_TRUE(msb.is_ok());
  const auto victims = ftl.device().inject_power_loss(msb.value() - 200);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0].pos.type, nand::TlcPageType::kMsb);
  EXPECT_EQ(ftl.read_data(0, t).code(), ErrorCode::kEccUncorrectable);
  EXPECT_EQ(ftl.read_data(100, t).code(), ErrorCode::kEccUncorrectable);

  const TlcRecoveryReport report =
      ftl.recover_from_power_loss(victims, ftl.device().all_idle_at());
  EXPECT_EQ(report.pages_recovered, 2u);
  EXPECT_EQ(report.pages_lost, 0u);
  const Microseconds check = ftl.device().all_idle_at();
  const auto lsb_data = ftl.read_data(0, check);
  ASSERT_TRUE(lsb_data.is_ok());
  EXPECT_EQ(lsb_data.value().bytes, payload_for(0));
  const auto csb_data = ftl.read_data(100, check);
  ASSERT_TRUE(csb_data.is_ok());
  EXPECT_EQ(csb_data.value().bytes, payload_for(100));
  EXPECT_TRUE(ftl.check_consistency());
}

TEST(FlexTlcFtl, TimingAsymmetryVisibleInCompletionTimes) {
  FlexTlcFtl ftl(one_chip());
  const nand::TlcTimingSpec timing = ftl.config().timing;
  const auto lsb = ftl.write(0, 0, 0.95);
  ASSERT_TRUE(lsb.is_ok());
  EXPECT_EQ(lsb.value(), timing.transfer_us + timing.program_lsb_us);
}

}  // namespace
}  // namespace rps::core
