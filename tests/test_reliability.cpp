// Tests of the Fig. 4 substitute model: the *relative* reliability claims
// are combinatorial properties of program orders, which must hold exactly;
// the Monte-Carlo layer must respond to aggressors, P/E stress and
// retention in the physically expected directions.
#include "src/reliability/study.hpp"

#include <gtest/gtest.h>

namespace rps::reliability {
namespace {

InterferenceConfig small_config() {
  InterferenceConfig c;
  c.cells_per_wordline = 512;
  return c;
}

TEST(Interference, DistributionWidthOfTightData) {
  std::vector<double> vth;
  for (int i = 0; i < 1000; ++i) vth.push_back(1.0 + 0.001 * (i % 10));
  EXPECT_LT(distribution_width(vth), 0.01);
  EXPECT_EQ(distribution_width({1.0}), 0.0);
}

TEST(Interference, SimulateBlockShapes) {
  Rng rng(1);
  const std::uint32_t wl = 8;
  const auto results = simulate_block(nand::fps_order(wl), wl, small_config(), rng);
  ASSERT_EQ(results.size(), wl);
  for (const WordlineResult& r : results) {
    EXPECT_EQ(r.population.total_cells(), 512u);
    EXPECT_GT(r.wpi_sum, 0.0);
    EXPECT_LE(r.aggressors_after_msb, 1u);
  }
}

TEST(Interference, AggressorsWidenDistributions) {
  // A word line with one post-MSB aggressor has a wider (or equal) summed
  // Vth width than the last word line (zero aggressors), averaged over
  // many blocks.
  Rng rng(2);
  const std::uint32_t wl = 8;
  double with_aggressor = 0.0;
  double without = 0.0;
  const int blocks = 40;
  for (int b = 0; b < blocks; ++b) {
    const auto results = simulate_block(nand::fps_order(wl), wl, small_config(), rng);
    with_aggressor += results[2].wpi_sum;   // interior: 1 aggressor
    without += results[wl - 1].wpi_sum;     // last WL: 0 aggressors
    EXPECT_EQ(results[2].aggressors_after_msb, 1u);
    EXPECT_EQ(results[wl - 1].aggressors_after_msb, 0u);
  }
  EXPECT_GT(with_aggressor / blocks, without / blocks);
}

TEST(Ber, GrayCodingAdjacentMisreadCostsOneBit) {
  const VthModel m = VthModel::nominal();
  // State 1 ('01') read as state 2 ('00'): one bit flip.
  EXPECT_EQ(bit_errors_for_cell(1, m.read_ref[1] + 0.01, m), 1u);
  // Correct read: zero errors.
  EXPECT_EQ(bit_errors_for_cell(1, m.state_mean[1], m), 0u);
  // State 0 ('11') read as state 3 ('10'): one bit differs in Gray code.
  EXPECT_EQ(bit_errors_for_cell(0, m.state_mean[3], m), 1u);
  // State 1 ('01') read as state 3 ('10'): two bits.
  EXPECT_EQ(bit_errors_for_cell(1, m.state_mean[3], m), 2u);
}

TEST(Ber, StressIncreasesErrors) {
  Rng rng(3);
  const std::uint32_t wl = 8;
  const auto results = simulate_block(nand::rps_full_order(wl), wl, small_config(), rng);
  const VthModel m = VthModel::nominal();
  double fresh = 0.0;
  double stressed = 0.0;
  for (const WordlineResult& r : results) {
    fresh += page_ber(r.population, StressCondition::fresh(), m, rng);
    stressed += page_ber(r.population, StressCondition::worst_case(), m, rng);
  }
  EXPECT_LT(fresh, stressed);
  EXPECT_LT(stressed / wl, 0.05);  // worst case still ECC-meaningful, not noise
}

TEST(Ber, RetentionAffectsHighStatesMore) {
  Rng rng(4);
  const VthModel m = VthModel::nominal();
  const StressCondition retention{0.0, 365.0};
  // The erased state holds no charge: retention must not move it.
  EXPECT_DOUBLE_EQ(apply_stress(m.state_mean[0], 0, retention, m, rng), m.state_mean[0]);
  // The top state loses the most charge.
  double top_shift = 0.0;
  double mid_shift = 0.0;
  for (int i = 0; i < 2000; ++i) {
    top_shift += m.state_mean[3] - apply_stress(m.state_mean[3], 3, retention, m, rng);
    mid_shift += m.state_mean[1] - apply_stress(m.state_mean[1], 1, retention, m, rng);
  }
  EXPECT_GT(top_shift, mid_shift);
  EXPECT_GT(top_shift, 0.0);
}

TEST(Study, MakeOrderMatchesSchemes) {
  Rng rng(5);
  EXPECT_EQ(make_order(Scheme::kFps, 8, rng), nand::fps_order(8));
  EXPECT_EQ(make_order(Scheme::kRpsFull, 8, rng), nand::rps_full_order(8));
  EXPECT_EQ(make_order(Scheme::kRpsHalf, 8, rng), nand::rps_half_order(8));
  EXPECT_TRUE(nand::order_satisfies(make_order(Scheme::kRpsRandom, 8, rng), 8,
                                    nand::SequenceKind::kRps));
}

TEST(Study, Fig4aRelation_RpsNoWorseThanFps) {
  // The paper's Fig. 4(a) claim: WPi under RPSfull / RPShalf is not
  // higher than under FPS. Compare medians with a small tolerance for
  // Monte-Carlo noise.
  StudyConfig config;
  config.blocks = 24;
  config.wordlines = 16;
  config.interference = small_config();
  const StudyResult fps = run_study(Scheme::kFps, config);
  const StudyResult full = run_study(Scheme::kRpsFull, config);
  const StudyResult half = run_study(Scheme::kRpsHalf, config);
  const double tolerance = 0.02 * fps.wpi_per_page.median();
  EXPECT_LE(full.wpi_per_page.median(), fps.wpi_per_page.median() + tolerance);
  EXPECT_LE(half.wpi_per_page.median(), fps.wpi_per_page.median() + tolerance);
}

TEST(Study, Fig4bRelation_UnconstrainedIsWorse) {
  // The motivation for ordering constraints: a fully unconstrained order
  // accumulates visibly more interference and a higher worst-case BER.
  StudyConfig config;
  config.blocks = 24;
  config.wordlines = 16;
  config.interference = small_config();
  const StudyResult fps = run_study(Scheme::kFps, config);
  const StudyResult wild = run_study(Scheme::kUnconstrained, config);
  EXPECT_GT(wild.wpi_per_page.percentile(90), fps.wpi_per_page.percentile(90));
  EXPECT_GT(wild.ber_per_page.mean(), fps.ber_per_page.mean());
  EXPECT_GT(wild.aggressors.max(), 1.0);
}

TEST(Study, AggressorSamplesMatchTheory) {
  StudyConfig config;
  config.blocks = 4;
  config.wordlines = 16;
  config.interference = small_config();
  for (const Scheme scheme : {Scheme::kFps, Scheme::kRpsFull, Scheme::kRpsHalf,
                              Scheme::kRpsRandom}) {
    const StudyResult r = run_study(scheme, config);
    EXPECT_LE(r.aggressors.max(), 1.0) << to_string(scheme);
  }
}

TEST(Study, RunStudiesCoversAllSchemes) {
  StudyConfig config;
  config.blocks = 2;
  config.wordlines = 8;
  config.interference = small_config();
  const auto results = run_studies(
      {Scheme::kFps, Scheme::kRpsFull, Scheme::kRpsHalf}, config);
  ASSERT_EQ(results.size(), 3u);
  for (const StudyResult& r : results) {
    EXPECT_EQ(r.wpi_per_page.size(), 2u * 8u);
    EXPECT_EQ(r.ber_per_page.size(), 2u * 8u);
  }
}

TEST(Study, DeterministicForSeed) {
  StudyConfig config;
  config.blocks = 2;
  config.wordlines = 8;
  config.interference = small_config();
  const StudyResult a = run_study(Scheme::kRpsRandom, config);
  const StudyResult b = run_study(Scheme::kRpsRandom, config);
  EXPECT_EQ(a.wpi_per_page.median(), b.wpi_per_page.median());
  EXPECT_EQ(a.ber_per_page.mean(), b.ber_per_page.mean());
}

}  // namespace
}  // namespace rps::reliability
