// Controller-layer tests: command decomposition, the event queue, and the
// scheduler's core properties under random interleavings —
//   * causality: issue <= ready <= start <= complete for every op,
//   * dependency ordering: an op never starts before its deps complete,
//   * legality: per-block program order still satisfies the sequence
//     constraints (FPS for pageFTL, RPS constraints 1-3 for flexFTL),
//     observed through the placement hook with the checkers from
//     src/nand/program_order.hpp (the same ones
//     test_nand_program_order.cpp exercises directly).
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <vector>

#include "src/controller/controller.hpp"
#include "src/controller/event_queue.hpp"
#include "src/controller/nand_op.hpp"
#include "src/nand/program_order.hpp"
#include "src/sim/runner.hpp"
#include "src/util/random.hpp"

namespace rps {
namespace {

TEST(EventQueue, PopsInNondecreasingTimeOrder) {
  ctrl::EventQueue events;
  EXPECT_TRUE(events.empty());
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    events.schedule(static_cast<Microseconds>(rng.next_below(10'000)));
  }
  EXPECT_EQ(events.size(), 200u);
  Microseconds last = -1;
  while (!events.empty()) {
    const Microseconds peeked = events.peek();
    const Microseconds t = events.pop();
    EXPECT_EQ(t, peeked);
    EXPECT_GE(t, last);
    last = t;
  }
  EXPECT_TRUE(events.empty());
}

TEST(SplitRequest, OnePageOpPerPage) {
  ctrl::HostCommand cmd;
  cmd.kind = ctrl::CmdKind::kWrite;
  cmd.lpn = 40;
  cmd.page_count = 8;
  const std::vector<ctrl::NandOp> ops = ctrl::split_request(cmd);
  ASSERT_EQ(ops.size(), 8u);
  for (std::uint32_t j = 0; j < ops.size(); ++j) {
    EXPECT_EQ(ops[j].kind, ctrl::OpKind::kHostWrite);
    EXPECT_EQ(ops[j].lpn, 40u + j);
    EXPECT_TRUE(ops[j].deps.empty()) << "unordered pages are independent";
  }
}

TEST(SplitRequest, OrderedCommandChainsDependencies) {
  ctrl::HostCommand cmd;
  cmd.kind = ctrl::CmdKind::kWrite;
  cmd.lpn = 0;
  cmd.page_count = 4;
  cmd.ordered = true;
  const std::vector<ctrl::NandOp> ops = ctrl::split_request(cmd);
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_TRUE(ops[0].deps.empty());
  for (std::uint32_t j = 1; j < ops.size(); ++j) {
    ASSERT_EQ(ops[j].deps.size(), 1u);
    EXPECT_EQ(ops[j].deps[0], j - 1);
  }
}

TEST(Controller, SinglePageWriteCompletesAtProgramTime) {
  const ftl::FtlConfig config = ftl::FtlConfig::tiny();
  auto ftl = sim::make_ftl(sim::FtlKind::kPage, config);
  ctrl::Controller controller(*ftl);
  ctrl::HostCommand cmd;
  cmd.kind = ctrl::CmdKind::kWrite;
  cmd.lpn = 3;
  cmd.page_count = 1;
  cmd.issue = 1000;
  const ctrl::CommandResult r = controller.execute(cmd);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.pages, 1u);
  // First program of a block is LSB: transfer + LSB program.
  EXPECT_EQ(r.last_complete,
            1000 + config.timing.transfer_us + config.timing.program_lsb_us);
  EXPECT_TRUE(controller.idle());
}

TEST(Controller, MultiPageRequestStripesAcrossIdleChips) {
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  auto ftl = sim::make_ftl(sim::FtlKind::kPage, config);
  const std::uint32_t chips = ftl->device().geometry().num_chips();
  ASSERT_GT(chips, 1u);
  ctrl::Controller controller(*ftl, {.stripe_writes = true, .keep_op_log = true});
  ctrl::HostCommand cmd;
  cmd.kind = ctrl::CmdKind::kWrite;
  cmd.lpn = 0;
  cmd.page_count = chips;  // one page per chip fits the idle array exactly
  const ctrl::CommandResult r = controller.execute(cmd);
  ASSERT_TRUE(r.ok);
  std::map<std::uint32_t, int> per_chip;
  for (const ctrl::OpRecord& rec : controller.op_log()) {
    EXPECT_EQ(rec.start, 0) << "every page dispatches at issue, none queues";
    ++per_chip[rec.chip];
  }
  EXPECT_EQ(per_chip.size(), chips) << "pages landed on distinct chips";
  // All programs overlap: the whole request costs one program plus the
  // serialized bus transfers of the chips sharing a channel — not
  // `chips` back-to-back programs as on the legacy synchronous path.
  EXPECT_EQ(r.last_complete,
            config.geometry.chips_per_channel * config.timing.transfer_us +
                config.timing.program_lsb_us);
}

TEST(Controller, ReadOfUnmappedPageRetiresInstantly) {
  const ftl::FtlConfig config = ftl::FtlConfig::tiny();
  auto ftl = sim::make_ftl(sim::FtlKind::kPage, config);
  ctrl::Controller controller(*ftl);
  ctrl::HostCommand cmd;
  cmd.kind = ctrl::CmdKind::kRead;
  cmd.lpn = 5;
  cmd.page_count = 2;
  cmd.issue = 77;
  const ctrl::CommandResult r = controller.execute(cmd);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.read_errors, 0u);
  EXPECT_EQ(r.last_complete, 77) << "zero-fill read touches no device timeline";
  EXPECT_EQ(ftl->stats().unmapped_reads, 2u);
}

struct InterleavingCase {
  sim::FtlKind kind;
  nand::SequenceKind sequence;
  std::uint64_t seed;
};

class RandomInterleavings : public ::testing::TestWithParam<InterleavingCase> {};

TEST_P(RandomInterleavings, KeepsCausalityDependenciesAndProgramOrder) {
  const InterleavingCase param = GetParam();
  const ftl::FtlConfig config = ftl::FtlConfig::tiny();
  auto ftl = sim::make_ftl(param.kind, config);
  const std::uint32_t wordlines = config.geometry.wordlines_per_block;

  // Per-block legality tracking via the placement hook. Every host/GC
  // page commit is checked incrementally against the sequence scheme; a
  // failing check on a block whose history restarted (erase + reuse) is
  // retried against a fresh state, so only genuine order violations
  // fail. (The device model rejects illegal programs outright — this
  // re-derivation proves the *scheduler* never even attempts reordering
  // within a block.)
  std::unordered_map<std::uint64_t, nand::BlockProgramState> block_states;
  ftl->set_placement_observer([&](Lpn, const nand::PageAddress& addr) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(addr.chip) << 32) | addr.block;
    auto [it, inserted] = block_states.try_emplace(key, wordlines);
    nand::BlockProgramState& state = it->second;
    (void)inserted;
    if (!nand::check_program_legality(state, addr.pos, param.sequence).is_ok()) {
      state.reset();  // block was erased and reused; restart its history
      ASSERT_TRUE(
          nand::check_program_legality(state, addr.pos, param.sequence).is_ok())
          << "illegal program order at chip " << addr.chip << " block "
          << addr.block << " wl " << addr.pos.wordline;
    }
    state.mark_programmed(addr.pos);
  });

  ctrl::Controller controller(*ftl, {.stripe_writes = true, .keep_op_log = true});
  const Lpn space = ftl->exported_pages();
  ASSERT_GT(space, 16u);

  Rng rng(param.seed);
  std::map<ctrl::CommandId, bool> ordered;
  std::vector<ctrl::CommandId> ids;
  Microseconds t = 0;
  for (int i = 0; i < 400; ++i) {
    ctrl::HostCommand cmd;
    const bool is_read = rng.chance(0.3);
    cmd.kind = is_read ? ctrl::CmdKind::kRead : ctrl::CmdKind::kWrite;
    cmd.page_count = 1 + static_cast<std::uint32_t>(rng.next_below(8));
    cmd.lpn = rng.next_below(space - 8);
    cmd.ordered = rng.chance(0.3);
    cmd.buffer_utilization = rng.next_double();
    cmd.issue = t;
    t += static_cast<Microseconds>(rng.next_below(400));
    ids.push_back(controller.submit(cmd));
    ordered[ids.back()] = cmd.ordered;
    // Partial drains interleave execution with submission — commands
    // overlap both in arrival time and in flight.
    if (rng.chance(0.5)) controller.drain(t);
  }
  controller.drain();
  EXPECT_TRUE(controller.idle());

  // Causality on every retired op.
  std::map<ctrl::CommandId, std::map<std::uint32_t, Microseconds>> completes;
  for (const ctrl::OpRecord& rec : controller.op_log()) {
    EXPECT_GE(rec.ready, rec.issue);
    EXPECT_GE(rec.start, rec.ready) << "op dispatched before it was ready";
    EXPECT_GE(rec.complete, rec.start);
    completes[rec.cmd][rec.index] = rec.complete;
  }
  // Dependency ordering: ordered commands complete page j after page j-1.
  for (const ctrl::CommandId id : ids) {
    if (!ordered.at(id)) continue;
    const auto& by_index = completes.at(id);
    Microseconds prev = 0;
    for (const auto& [index, complete] : by_index) {
      (void)index;
      EXPECT_GE(complete, prev) << "dependency chain violated in command " << id;
      prev = complete;
    }
  }
  // Every command retired with every page accounted for.
  for (const ctrl::CommandId id : ids) {
    const ctrl::CommandResult r = controller.take_result(id);
    EXPECT_TRUE(r.ok) << "command " << id;
    EXPECT_GE(r.first_complete, r.issue) << "completion precedes issue";
    EXPECT_GE(r.last_complete, r.first_complete);
    EXPECT_EQ(completes.at(id).size(), r.pages);
  }
  EXPECT_TRUE(ftl->check_consistency());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, RandomInterleavings,
    ::testing::Values(
        InterleavingCase{sim::FtlKind::kPage, nand::SequenceKind::kFps, 101},
        InterleavingCase{sim::FtlKind::kPage, nand::SequenceKind::kFps, 202},
        InterleavingCase{sim::FtlKind::kFlex, nand::SequenceKind::kRps, 303},
        InterleavingCase{sim::FtlKind::kFlex, nand::SequenceKind::kRps, 404}),
    [](const ::testing::TestParamInfo<InterleavingCase>& info) {
      return std::string(sim::to_string(info.param.kind)) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace rps
