// Power-loss recovery (Section 3.3, Fig. 7): a sudden power-off during an
// MSB program destroys the paired LSB page's acknowledged data; flexFTL
// reconstructs it from the per-block parity page, end to end, with real
// payload bytes.
#include <gtest/gtest.h>

#include "src/core/flex_ftl.hpp"

namespace rps::core {
namespace {

ftl::FtlConfig one_chip_config() {
  ftl::FtlConfig c = ftl::FtlConfig::tiny();
  c.geometry.channels = 1;
  c.geometry.chips_per_channel = 1;
  c.geometry.wordlines_per_block = 8;
  c.geometry.blocks_per_chip = 16;
  return c;
}

std::vector<std::uint8_t> payload_for(Lpn lpn) {
  std::vector<std::uint8_t> bytes(16);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(lpn * 31 + i);
  }
  return bytes;
}

/// Drive a FlexFtl into the dangerous state: a slow block mid-MSB-phase,
/// then cut power during an MSB program. Returns the victims.
std::vector<nand::PowerLossVictim> cut_power_during_msb(FlexFtl& ftl) {
  const std::uint32_t wordlines = ftl.config().geometry.wordlines_per_block;
  // Fast phase: fill a block's LSB pages with real payloads.
  Microseconds t = 0;
  for (Lpn lpn = 0; lpn < wordlines; ++lpn) {
    auto op = ftl.write_data(lpn, payload_for(lpn), t, /*buffer_utilization=*/0.95);
    EXPECT_TRUE(op.is_ok());
    t = op.value().complete;
  }
  EXPECT_EQ(ftl.sbqueue_depth(0), 1u);
  // Slow phase: start the first MSB program and cut power mid-flight.
  auto msb = ftl.write_data(150, payload_for(150), t, 0.01);
  EXPECT_TRUE(msb.is_ok());
  const Microseconds mid = msb.value().complete - 100;
  return ftl.device().inject_power_loss(mid);
}

TEST(Recovery, PowerLossDestroysPairedLsbWithoutRecovery) {
  FlexFtl ftl(one_chip_config());
  const auto victims = cut_power_during_msb(ftl);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0].pos.type, nand::PageType::kMsb);
  // The paired LSB page's data (lpn 0, acknowledged long ago) is gone.
  EXPECT_EQ(ftl.read_data(0, ftl.device().all_idle_at()).code(),
            ErrorCode::kEccUncorrectable);
}

TEST(Recovery, ParityRebuildsTheLostPage) {
  FlexFtl ftl(one_chip_config());
  const auto victims = cut_power_during_msb(ftl);
  ASSERT_FALSE(victims.empty());

  const RecoveryReport report =
      ftl.recover_from_power_loss(victims, ftl.device().all_idle_at());
  EXPECT_EQ(report.pages_recovered, 1u);
  EXPECT_EQ(report.pages_lost, 0u);
  EXPECT_GE(report.interrupted_writes_discarded, 1u);
  EXPECT_GT(report.lsb_pages_read, 0u);
  EXPECT_EQ(report.parity_pages_read, 1u);

  // The recovered page carries the original payload at a new location.
  const Result<nand::PageData> data = ftl.read_data(0, ftl.device().all_idle_at());
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(data.value().bytes, payload_for(0));
  EXPECT_TRUE(ftl.check_consistency());
}

TEST(Recovery, AllOtherPagesSurviveUntouched) {
  FlexFtl ftl(one_chip_config());
  const std::uint32_t wordlines = ftl.config().geometry.wordlines_per_block;
  const auto victims = cut_power_during_msb(ftl);
  ftl.recover_from_power_loss(victims, ftl.device().all_idle_at());
  for (Lpn lpn = 1; lpn < wordlines; ++lpn) {
    const Result<nand::PageData> data = ftl.read_data(lpn, ftl.device().all_idle_at());
    ASSERT_TRUE(data.is_ok()) << lpn;
    EXPECT_EQ(data.value().bytes, payload_for(lpn)) << lpn;
  }
}

TEST(Recovery, InterruptedWriteIsDiscardedNotServedCorrupt) {
  FlexFtl ftl(one_chip_config());
  const auto victims = cut_power_during_msb(ftl);
  ftl.recover_from_power_loss(victims, ftl.device().all_idle_at());
  // lpn 150 was in flight and never acknowledged: after recovery it must
  // read as never-written (zero-fill), not as corrupt data.
  EXPECT_EQ(ftl.read_data(150, ftl.device().all_idle_at()).code(),
            ErrorCode::kNotFound);
}

TEST(Recovery, StaleDestroyedDataNeedsNoRestore) {
  FlexFtl ftl(one_chip_config());
  const std::uint32_t wordlines = ftl.config().geometry.wordlines_per_block;
  Microseconds t = 0;
  for (Lpn lpn = 0; lpn < wordlines; ++lpn) {
    auto op = ftl.write_data(lpn, payload_for(lpn), t, 0.95);
    ASSERT_TRUE(op.is_ok());
    t = op.value().complete;
  }
  // Overwrite lpn 0: its old copy in the slow block is now stale.
  auto rewrite = ftl.write_data(0, payload_for(77), t, 0.95);
  ASSERT_TRUE(rewrite.is_ok());
  t = rewrite.value().complete;
  // Cut power during the slow block's first MSB program.
  auto msb = ftl.write_data(150, payload_for(150), t, 0.01);
  ASSERT_TRUE(msb.is_ok());
  const auto victims = ftl.device().inject_power_loss(msb.value().complete - 100);

  const RecoveryReport report =
      ftl.recover_from_power_loss(victims, ftl.device().all_idle_at());
  EXPECT_EQ(report.pages_recovered, 0u);  // destroyed page held stale data
  EXPECT_EQ(report.pages_lost, 0u);
  const Result<nand::PageData> data = ftl.read_data(0, ftl.device().all_idle_at());
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(data.value().bytes, payload_for(77));
}

TEST(Recovery, FastBlockParityBufferRecomputed) {
  FlexFtl ftl(one_chip_config());
  const std::uint32_t wordlines = ftl.config().geometry.wordlines_per_block;
  // Half-fill a fast block, then power-cycle (no MSB in flight).
  Microseconds t = 0;
  for (Lpn lpn = 0; lpn < wordlines / 2; ++lpn) {
    auto op = ftl.write_data(lpn, payload_for(lpn), t, 0.95);
    ASSERT_TRUE(op.is_ok());
    t = op.value().complete;
  }
  const auto victims = ftl.device().inject_power_loss(t + 10);  // idle: nothing in flight
  EXPECT_TRUE(victims.empty());
  const RecoveryReport report = ftl.recover_from_power_loss(victims, t + 10);
  EXPECT_EQ(report.fast_blocks_checked, 1u);
  EXPECT_EQ(report.pages_lost, 0u);
  // The rebuilt accumulator must produce a correct parity page: finish the
  // block, cut power in the MSB phase, and recover.
  Microseconds t2 = ftl.device().all_idle_at();
  for (Lpn lpn = wordlines / 2; lpn < wordlines; ++lpn) {
    auto op = ftl.write_data(lpn, payload_for(lpn), t2, 0.95);
    ASSERT_TRUE(op.is_ok());
    t2 = op.value().complete;
  }
  auto msb = ftl.write_data(150, payload_for(150), t2, 0.01);
  ASSERT_TRUE(msb.is_ok());
  const auto victims2 = ftl.device().inject_power_loss(msb.value().complete - 50);
  const RecoveryReport report2 =
      ftl.recover_from_power_loss(victims2, ftl.device().all_idle_at());
  EXPECT_EQ(report2.pages_recovered, 1u);
  const Result<nand::PageData> data = ftl.read_data(0, ftl.device().all_idle_at());
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(data.value().bytes, payload_for(0));
}

TEST(Recovery, ReportedTimeMatchesPaperEstimateShape) {
  // Section 3.3 estimates the reboot read cost as
  //   chips x slow/fast blocks x LSB pages x 40 us.
  // Verify the measured recovery time is in that ballpark for our config.
  FlexFtl ftl(one_chip_config());
  const std::uint32_t wordlines = ftl.config().geometry.wordlines_per_block;
  const auto victims = cut_power_during_msb(ftl);
  const Microseconds start = ftl.device().all_idle_at();
  const RecoveryReport report = ftl.recover_from_power_loss(victims, start);
  // One slow block of 8 LSB pages + 1 parity read + the rewrite program.
  const Microseconds reads_us =
      static_cast<Microseconds>(report.lsb_pages_read + report.parity_pages_read) *
      (ftl.config().timing.read_us + ftl.config().timing.transfer_us);
  EXPECT_GE(report.recovery_time_us, reads_us);
  EXPECT_LT(report.recovery_time_us,
            reads_us + 3 * ftl.config().timing.program_msb_us +
                static_cast<Microseconds>(wordlines) * 100);
}

TEST(Recovery, NoSlowBlocksMeansTrivialRecovery) {
  FlexFtl ftl(one_chip_config());
  const RecoveryReport report = ftl.recover_from_power_loss({}, 0);
  EXPECT_EQ(report.slow_blocks_checked, 0u);
  EXPECT_EQ(report.lsb_pages_read, 0u);
  EXPECT_EQ(report.pages_recovered, 0u);
}

}  // namespace
}  // namespace rps::core
