#include "src/ftl/rtf_ftl.hpp"

#include <gtest/gtest.h>

#include "src/util/random.hpp"

namespace rps::ftl {
namespace {

TEST(RtfFtl, ServesBurstsFromLsbPool) {
  RtfFtl ftl(FtlConfig::tiny());  // 2 active blocks per chip
  const std::uint32_t chips = ftl.config().geometry.num_chips();
  // Each fresh active block offers LSB(0), LSB(1) before an MSB is due:
  // with 2 blocks per chip, the first 4 writes per chip are all LSB.
  for (std::uint32_t i = 0; i < chips * 4; ++i) {
    ASSERT_TRUE(ftl.write(i, 0).is_ok());
  }
  EXPECT_EQ(ftl.stats().host_lsb_writes, chips * 4);
  EXPECT_EQ(ftl.stats().host_msb_writes, 0u);
}

TEST(RtfFtl, LsbReadyCursorCount) {
  RtfFtl ftl(FtlConfig::tiny());
  EXPECT_EQ(ftl.lsb_ready_cursors(0), 0u);  // nothing allocated yet
  ASSERT_TRUE(ftl.write(0, 0).is_ok());
  // At least the block that served the write is now allocated; its next
  // page is LSB(1).
  std::uint32_t total_ready = 0;
  for (std::uint32_t c = 0; c < ftl.config().geometry.num_chips(); ++c) {
    total_ready += ftl.lsb_ready_cursors(c);
  }
  EXPECT_GE(total_ready, 1u);
}

TEST(RtfFtl, MsbWritesPayPairedBackup) {
  // Exhaust the LSB pool on a single-chip device, forcing MSB writes, and
  // check the paired-page backups appear.
  FtlConfig config = FtlConfig::tiny();
  config.geometry.channels = 1;
  config.geometry.chips_per_channel = 1;
  config.rtf_active_blocks = 1;
  RtfFtl ftl(config);
  ASSERT_TRUE(ftl.write(0, 0).is_ok());  // LSB(0)
  ASSERT_TRUE(ftl.write(1, 0).is_ok());  // LSB(1)
  EXPECT_EQ(ftl.stats().backup_pages, 0u);
  ASSERT_TRUE(ftl.write(2, 0).is_ok());  // MSB(0): backs up LSB(0) first
  EXPECT_EQ(ftl.stats().host_msb_writes, 1u);
  EXPECT_EQ(ftl.stats().backup_pages, 1u);
}

TEST(RtfFtl, BackupSkippedForStaleLsbData) {
  FtlConfig config = FtlConfig::tiny();
  config.geometry.channels = 1;
  config.geometry.chips_per_channel = 1;
  config.rtf_active_blocks = 1;
  RtfFtl ftl(config);
  ASSERT_TRUE(ftl.write(0, 0).is_ok());  // LSB(0) holds lpn 0
  ASSERT_TRUE(ftl.write(1, 0).is_ok());  // LSB(1)
  ASSERT_TRUE(ftl.write(2, 0).is_ok());  // MSB(0): backup #1 (lpn 0 live)
  ASSERT_TRUE(ftl.write(0, 0).is_ok());  // overwrites lpn 0 -> LSB(2) stale...
  const std::uint64_t backups = ftl.stats().backup_pages;
  EXPECT_EQ(backups, 1u);
}

TEST(RtfFtl, IdleTimeRestoresLsbPool) {
  FtlConfig config = FtlConfig::tiny();
  config.bgc_free_threshold = 0.0;  // isolate the return-to-fast mechanism
  RtfFtl ftl(config);
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0).is_ok());
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) ASSERT_TRUE(ftl.write(rng.next_below(n), 0).is_ok());
  const Microseconds start = ftl.device().all_idle_at();
  ftl.on_idle(start, start + 50'000'000);
  std::uint32_t ready = 0;
  for (std::uint32_t c = 0; c < ftl.config().geometry.num_chips(); ++c) {
    ready += ftl.lsb_ready_cursors(c);
  }
  EXPECT_GT(ready, 0u);
  EXPECT_TRUE(ftl.check_consistency());
}

TEST(RtfFtl, SurvivesSteadyStateStress) {
  RtfFtl ftl(FtlConfig::tiny());
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0).is_ok());
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(ftl.write(rng.next_below(n), 0).is_ok()) << i;
    if (i % 500 == 0) {
      const Microseconds t = ftl.device().all_idle_at();
      ftl.on_idle(t, t + 1'000'000);
    }
  }
  EXPECT_TRUE(ftl.check_consistency());
  for (Lpn lpn = 0; lpn < n; ++lpn) EXPECT_TRUE(ftl.read(lpn, 0).is_ok());
}

TEST(RtfFtl, MaintainsConfiguredActiveBlockCount) {
  FtlConfig config = FtlConfig::tiny();
  config.rtf_active_blocks = 2;
  RtfFtl ftl(config);
  for (Lpn lpn = 0; lpn < 64; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0).is_ok());
  // Count kActive blocks per chip: never above the configured pool size
  // (the paper's rtfFTL uses 8 per chip; tiny() uses 2).
  for (std::uint32_t c = 0; c < ftl.config().geometry.num_chips(); ++c) {
    std::uint32_t active = 0;
    for (std::uint32_t b = 0; b < ftl.config().geometry.blocks_per_chip; ++b) {
      if (ftl.blocks().use({c, b}) == BlockUse::kActive) ++active;
    }
    EXPECT_LE(active, 2u) << "chip " << c;
  }
}

}  // namespace
}  // namespace rps::ftl
