// flexFTL behaviour: 2PO block lifecycle, per-block parity backup cadence,
// policy-driven page-type selection, block-pool feedback, and steady-state
// robustness — all on the tiny geometry.
#include "src/core/flex_ftl.hpp"

#include <gtest/gtest.h>

#include "src/ftl/parity_ftl.hpp"
#include "src/util/random.hpp"

namespace rps::core {
namespace {

ftl::FtlConfig tiny_config() { return ftl::FtlConfig::tiny(); }

TEST(FlexFtl, DeviceRunsRelaxedSequence) {
  FlexFtl ftl(tiny_config());
  EXPECT_EQ(ftl.device().sequence_kind(), nand::SequenceKind::kRps);
}

TEST(FlexFtl, BurstOfLsbWritesOnOneChip) {
  // Under high buffer utilization with quota available, every write is an
  // LSB write — the 2PO fast phase. tiny() has 4 word lines per block, so
  // 4 consecutive LSB writes per chip land in one block; the 5th rolls to
  // a fresh fast block with no intervening MSB write.
  FlexFtl ftl(tiny_config());
  const std::uint32_t chips = ftl.config().geometry.num_chips();
  for (std::uint32_t i = 0; i < chips * 6; ++i) {
    ASSERT_TRUE(ftl.write(i, 0, /*buffer_utilization=*/0.95).is_ok());
  }
  EXPECT_EQ(ftl.stats().host_lsb_writes, chips * 6);
  EXPECT_EQ(ftl.stats().host_msb_writes, 0u);
}

TEST(FlexFtl, BlockLifecycleFastToSlowToFull) {
  FlexFtl ftl(tiny_config());
  const std::uint32_t wordlines = ftl.config().geometry.wordlines_per_block;
  // Fill one chip's fast block with LSB writes (chip selection follows
  // headroom + round-robin; with a fresh device each chip gets writes in
  // turn, so write enough for every chip to finish one fast block).
  const std::uint32_t chips = ftl.config().geometry.num_chips();
  for (std::uint32_t i = 0; i < chips * wordlines; ++i) {
    ASSERT_TRUE(ftl.write(i, 0, 0.95).is_ok());
  }
  // Every chip completed its fast block: it must now sit in the SBQueue.
  for (std::uint32_t c = 0; c < chips; ++c) {
    EXPECT_EQ(ftl.sbqueue_depth(c), 1u) << "chip " << c;
    EXPECT_TRUE(ftl.active_slow_block(c).has_value());
  }
  // One parity backup page per completed fast block (Section 3.3).
  EXPECT_EQ(ftl.stats().backup_pages, chips);

  // Now force MSB consumption (low utilization) to finish the slow blocks.
  for (std::uint32_t i = 0; i < chips * wordlines; ++i) {
    ASSERT_TRUE(ftl.write(100 + i, 0, 0.01).is_ok());
  }
  for (std::uint32_t c = 0; c < chips; ++c) {
    EXPECT_EQ(ftl.sbqueue_depth(c), 0u) << "chip " << c;
  }
  EXPECT_EQ(ftl.stats().host_msb_writes, chips * wordlines);
  EXPECT_TRUE(ftl.check_consistency());
}

TEST(FlexFtl, OneParityPageProtectsAWholeBlock) {
  // The headline lifetime win: a 2PO block of N LSB pages needs exactly
  // one parity backup page, not N/2 like parityFTL under FPS.
  FlexFtl ftl(tiny_config());
  const std::uint32_t chips = ftl.config().geometry.num_chips();
  const std::uint32_t wordlines = ftl.config().geometry.wordlines_per_block;
  for (std::uint32_t i = 0; i < chips * wordlines * 3; ++i) {
    ASSERT_TRUE(ftl.write(i % ftl.exported_pages(), 0, 0.95).is_ok());
  }
  // 3 completed fast blocks per chip -> exactly 3 parity pages per chip.
  EXPECT_EQ(ftl.stats().backup_pages, chips * 3);
}

TEST(FlexFtl, QuotaDrainsOnLsbAndRecoversOnMsb) {
  FlexFtl ftl(tiny_config());
  const std::int64_t q0 = ftl.quota();
  ASSERT_GT(q0, 0);
  // Complete one fast block per chip so slow blocks exist for MSB writes.
  const std::int64_t lsb_writes =
      static_cast<std::int64_t>(ftl.config().geometry.num_chips()) *
      ftl.config().geometry.wordlines_per_block;
  for (std::int64_t i = 0; i < lsb_writes; ++i) {
    ASSERT_TRUE(ftl.write(static_cast<Lpn>(i), 0, 0.95).is_ok());
  }
  EXPECT_EQ(ftl.quota(), q0 - lsb_writes);
  // Drain the SBQueue with MSB writes: quota climbs back (capped at q0).
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ftl.write(100 + i, 0, 0.01).is_ok());
  EXPECT_EQ(ftl.quota(), q0 - lsb_writes + 4);
}

TEST(FlexFtl, MsbPreferredWhenBufferLow) {
  FlexFtl ftl(tiny_config());
  const std::uint32_t wordlines = ftl.config().geometry.wordlines_per_block;
  const std::uint32_t chips = ftl.config().geometry.num_chips();
  // Create slow blocks everywhere.
  for (std::uint32_t i = 0; i < chips * wordlines; ++i) {
    ASSERT_TRUE(ftl.write(i, 0, 0.95).is_ok());
  }
  const std::uint64_t msb_before = ftl.stats().host_msb_writes;
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(ftl.write(150 + i, 0, 0.01).is_ok());
  EXPECT_EQ(ftl.stats().host_msb_writes - msb_before, 8u);
}

TEST(FlexFtl, ParityBufferAccumulatesBlockParity) {
  // Verify the flushed parity page really is the XOR of the block's LSB
  // pages by checking it against manually XOR-ed device contents.
  ftl::FtlConfig config = tiny_config();
  config.geometry.channels = 1;
  config.geometry.chips_per_channel = 1;
  FlexFtl ftl(config);
  const std::uint32_t wordlines = config.geometry.wordlines_per_block;
  for (std::uint32_t i = 0; i < wordlines; ++i) {
    ASSERT_TRUE(ftl.write(i, 0, 0.95).is_ok());
  }
  ASSERT_EQ(ftl.stats().backup_pages, 1u);
  // Find the backup block and its parity page.
  const nand::NandDevice& dev = ftl.device();
  const std::uint32_t slow = *ftl.active_slow_block(0);
  nand::PageData expected;
  expected.lpn = 0;
  for (std::uint32_t wl = 0; wl < wordlines; ++wl) {
    expected.xor_with(dev.block({0, slow}).read({wl, nand::PageType::kLsb}).value());
  }
  for (std::uint32_t b = 0; b < config.geometry.blocks_per_chip; ++b) {
    if (ftl.blocks().use({0, b}) != ftl::BlockUse::kBackup) continue;
    const Result<nand::PageData> parity =
        dev.block({0, b}).read({0, nand::PageType::kLsb});
    ASSERT_TRUE(parity.is_ok());
    EXPECT_EQ(parity.value().signature, expected.signature);
    EXPECT_EQ(parity.value().lpn, expected.lpn);
    EXPECT_EQ(parity.value().spare, slow | nand::kNonHostSpareFlag);  // inverse map + metadata flag
    return;
  }
  FAIL() << "no backup block found";
}

TEST(FlexFtl, GcCopiesConsumeMsbPagesAndRaiseQuota) {
  FlexFtl ftl(tiny_config());
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0, 0.5).is_ok());
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) ASSERT_TRUE(ftl.write(rng.next_below(n), 0, 0.5).is_ok());
  ASSERT_GT(ftl.stats().gc_copy_pages, 0u);
  // GC copies consumed MSB pages: device MSB programs exceed host MSB writes.
  EXPECT_GT(ftl.device().total_counters().msb_programs, ftl.stats().host_msb_writes);
  EXPECT_TRUE(ftl.check_consistency());
}

TEST(FlexFtl, IdleQuotaReplenishment) {
  FlexFtl ftl(tiny_config());
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0, 0.5).is_ok());
  // An LSB-heavy churn: drains the quota, parks blocks in the SBQueue
  // (MSB capacity for idle GC) and leaves invalid pages for victims.
  Rng churn(2);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(ftl.write(churn.next_below(n), 0, 0.95).is_ok());
  }
  const std::int64_t drained = ftl.quota();
  ASSERT_LT(drained, ftl.policy().initial_quota());
  const Microseconds start = ftl.device().all_idle_at();
  ftl.on_idle(start, start + 100'000'000);
  EXPECT_GT(ftl.quota(), drained);
  EXPECT_TRUE(ftl.check_consistency());
}

TEST(FlexFtl, SurvivesSteadyStateStress) {
  FlexFtl ftl(tiny_config());
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0, 0.5).is_ok());
  Rng rng(17);
  for (int i = 0; i < 6000; ++i) {
    const double u = rng.next_double();
    ASSERT_TRUE(ftl.write(rng.next_below(n), 0, u).is_ok()) << i;
    if (i % 400 == 0) {
      const Microseconds t = ftl.device().all_idle_at();
      ftl.on_idle(t, t + 2'000'000);
    }
  }
  EXPECT_TRUE(ftl.check_consistency());
  for (Lpn lpn = 0; lpn < n; ++lpn) EXPECT_TRUE(ftl.read(lpn, 0).is_ok());
}

TEST(FlexFtl, FarFewerBackupPagesThanParityFtl) {
  // The Section 3.3 comparison: one parity page per block (flexFTL) versus
  // one per two LSB pages (parityFTL under FPS).
  FlexFtl flex(tiny_config());
  ftl::ParityFtl parity(tiny_config());
  const Lpn n = flex.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) {
    ASSERT_TRUE(flex.write(lpn, 0, 0.5).is_ok());
    ASSERT_TRUE(parity.write(lpn, 0, 0.5).is_ok());
  }
  // flexFTL: ~1 parity page per wordlines LSB pages; parityFTL: 1 per 2.
  // On tiny() (4 word lines) that is a 2x gap; on the paper's 128-word-line
  // blocks it is 64x.
  EXPECT_LT(flex.stats().backup_pages * 3, parity.stats().backup_pages * 2);
}

}  // namespace
}  // namespace rps::core
