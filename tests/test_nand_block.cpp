#include "src/nand/block.hpp"

#include <gtest/gtest.h>

namespace rps::nand {
namespace {

PageData make_data(Lpn lpn, std::uint64_t sig) {
  PageData d;
  d.lpn = lpn;
  d.signature = sig;
  return d;
}

TEST(PageData, XorIsInvolution) {
  PageData a = make_data(5, 0xdeadbeef);
  a.bytes = {1, 2, 3};
  PageData b = make_data(9, 0xfeedface);
  b.bytes = {4, 5};
  PageData acc = a;
  acc.xor_with(b);
  acc.xor_with(b);
  EXPECT_EQ(acc, a);
}

TEST(PageData, XorRecoversMissingPage) {
  // The parity-recovery primitive: parity ^ (all but one) == the one.
  PageData pages[3] = {make_data(1, 111), make_data(2, 222), make_data(3, 333)};
  PageData parity;
  parity.lpn = 0;
  for (const PageData& p : pages) parity.xor_with(p);
  PageData recovered = parity;
  recovered.xor_with(pages[0]);
  recovered.xor_with(pages[2]);
  EXPECT_EQ(recovered.lpn, pages[1].lpn);
  EXPECT_EQ(recovered.signature, pages[1].signature);
}

TEST(Block, ProgramReadRoundTrip) {
  Block b(4, SequenceKind::kRps);
  EXPECT_TRUE(b.program({0, PageType::kLsb}, make_data(7, 42)).is_ok());
  const Result<PageData> read = b.read({0, PageType::kLsb});
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().lpn, 7u);
  EXPECT_EQ(read.value().signature, 42u);
}

TEST(Block, ReadErasedPage) {
  Block b(4, SequenceKind::kRps);
  EXPECT_EQ(b.read({0, PageType::kLsb}).code(), ErrorCode::kNotProgrammed);
  EXPECT_EQ(b.read({9, PageType::kLsb}).code(), ErrorCode::kOutOfRange);
}

TEST(Block, EnforcesSequence) {
  Block b(4, SequenceKind::kFps);
  EXPECT_EQ(b.program({2, PageType::kLsb}, {}).code(), ErrorCode::kSequenceViolation);
  EXPECT_EQ(b.programmed_pages(), 0u);  // failed program changes nothing
}

TEST(Block, FullLifecycleUnderRpsFull) {
  const std::uint32_t wl = 8;
  Block b(wl, SequenceKind::kRps);
  for (const PagePos pos : rps_full_order(wl)) {
    EXPECT_TRUE(b.program(pos, make_data(pos.flat_index(), 1)).is_ok());
  }
  EXPECT_TRUE(b.is_fully_programmed());
  EXPECT_EQ(b.programmed_lsb_pages(), wl);
  EXPECT_EQ(b.programmed_msb_pages(), wl);
  EXPECT_FALSE(b.next_lsb().has_value());
  EXPECT_FALSE(b.next_msb().has_value());
}

TEST(Block, EraseResetsEverythingAndCountsWear) {
  Block b(2, SequenceKind::kRps);
  ASSERT_TRUE(b.program({0, PageType::kLsb}, make_data(1, 1)).is_ok());
  EXPECT_EQ(b.erase_count(), 0u);
  b.erase();
  EXPECT_EQ(b.erase_count(), 1u);
  EXPECT_TRUE(b.is_erased());
  EXPECT_EQ(b.read({0, PageType::kLsb}).code(), ErrorCode::kNotProgrammed);
  b.erase();
  EXPECT_EQ(b.erase_count(), 2u);
}

TEST(Block, NextLsbTracksFrontier) {
  Block b(3, SequenceKind::kRps);
  ASSERT_TRUE(b.next_lsb().has_value());
  EXPECT_EQ(b.next_lsb()->wordline, 0u);
  ASSERT_TRUE(b.program({0, PageType::kLsb}, {}).is_ok());
  EXPECT_EQ(b.next_lsb()->wordline, 1u);
  ASSERT_TRUE(b.program({1, PageType::kLsb}, {}).is_ok());
  ASSERT_TRUE(b.program({2, PageType::kLsb}, {}).is_ok());
  EXPECT_FALSE(b.next_lsb().has_value());
}

TEST(Block, NextMsbRespectsConstraint3) {
  Block b(3, SequenceKind::kRps);
  ASSERT_TRUE(b.program({0, PageType::kLsb}, {}).is_ok());
  // MSB(0) needs LSB(1) first.
  EXPECT_FALSE(b.next_msb().has_value());
  ASSERT_TRUE(b.program({1, PageType::kLsb}, {}).is_ok());
  ASSERT_TRUE(b.next_msb().has_value());
  EXPECT_EQ(b.next_msb()->wordline, 0u);
  ASSERT_TRUE(b.program({0, PageType::kMsb}, {}).is_ok());
  EXPECT_FALSE(b.next_msb().has_value());  // MSB(1) needs LSB(2)
}

TEST(Block, CorruptMakesPageUnreadable) {
  Block b(2, SequenceKind::kRps);
  ASSERT_TRUE(b.program({0, PageType::kLsb}, make_data(3, 3)).is_ok());
  b.corrupt({0, PageType::kLsb});
  EXPECT_EQ(b.read({0, PageType::kLsb}).code(), ErrorCode::kEccUncorrectable);
  EXPECT_EQ(b.page_state({0, PageType::kLsb}), PageState::kCorrupted);
  // Still counts as programmed for ordering purposes.
  EXPECT_TRUE(b.is_programmed({0, PageType::kLsb}));
}

TEST(Block, CorruptErasedPageIsNoOp) {
  Block b(2, SequenceKind::kRps);
  b.corrupt({1, PageType::kLsb});
  EXPECT_EQ(b.page_state({1, PageType::kLsb}), PageState::kErased);
}

TEST(Block, SlcModeAllowsConsecutiveLsbOnFpsDevice) {
  Block b(4, SequenceKind::kFps);
  ASSERT_TRUE(b.set_slc_mode().is_ok());
  EXPECT_TRUE(b.slc_mode());
  for (std::uint32_t wl = 0; wl < 4; ++wl) {
    EXPECT_TRUE(b.program({wl, PageType::kLsb}, {}).is_ok()) << wl;
  }
  // MSB programs are rejected in SLC mode.
  EXPECT_EQ(b.program({0, PageType::kMsb}, {}).code(), ErrorCode::kSequenceViolation);
}

TEST(Block, SlcModeRequiresErasedBlock) {
  Block b(4, SequenceKind::kFps);
  ASSERT_TRUE(b.program({0, PageType::kLsb}, {}).is_ok());
  EXPECT_EQ(b.set_slc_mode().code(), ErrorCode::kNotErased);
}

TEST(Block, EraseClearsSlcMode) {
  Block b(4, SequenceKind::kFps);
  ASSERT_TRUE(b.set_slc_mode().is_ok());
  b.erase();
  EXPECT_FALSE(b.slc_mode());
  // Back in MLC mode: FPS constraint 4 applies again.
  ASSERT_TRUE(b.program({0, PageType::kLsb}, {}).is_ok());
  ASSERT_TRUE(b.program({1, PageType::kLsb}, {}).is_ok());
  EXPECT_EQ(b.program({2, PageType::kLsb}, {}).code(), ErrorCode::kSequenceViolation);
}

TEST(Block, SlcLsbOrderStillEnforced) {
  Block b(4, SequenceKind::kFps);
  ASSERT_TRUE(b.set_slc_mode().is_ok());
  EXPECT_EQ(b.program({2, PageType::kLsb}, {}).code(), ErrorCode::kSequenceViolation);
}

}  // namespace
}  // namespace rps::nand
