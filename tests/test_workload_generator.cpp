// The synthetic generators stand in for Sysbench/Filebench; these tests pin
// the Table 1 characteristics (read:write ratio, intensiveness buckets,
// idle structure) that the evaluation depends on.
#include "src/workload/generator.hpp"

#include <gtest/gtest.h>

namespace rps::workload {
namespace {

constexpr Lpn kWorkingSet = 1 << 16;

TEST(Generator, Deterministic) {
  const SyntheticConfig config = preset_config(Preset::kVarmail, kWorkingSet, 5000, 7);
  const Trace a = generate(config);
  const Trace b = generate(config);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.requests(), b.requests());
}

TEST(Generator, SeedChangesTrace) {
  const Trace a = generate(preset_config(Preset::kVarmail, kWorkingSet, 5000, 1));
  const Trace b = generate(preset_config(Preset::kVarmail, kWorkingSet, 5000, 2));
  EXPECT_NE(a.requests(), b.requests());
}

TEST(Generator, RespectsRequestCountAndBounds) {
  const Trace t = generate(preset_config(Preset::kOltp, kWorkingSet, 12'345, 3));
  EXPECT_EQ(t.size(), 12'345u);
  EXPECT_TRUE(t.is_sorted());
  for (const IoRequest& r : t.requests()) {
    EXPECT_GE(r.page_count, 1u);
    EXPECT_LE(r.lpn + r.page_count, kWorkingSet);
  }
}

TEST(Generator, SizesComeFromDistribution) {
  SyntheticConfig config = preset_config(Preset::kOltp, kWorkingSet, 20'000, 5);
  config.size_dist = {{1, 0.5}, {4, 0.5}};
  const Trace t = generate(config);
  std::uint64_t ones = 0;
  std::uint64_t fours = 0;
  for (const IoRequest& r : t.requests()) {
    ASSERT_TRUE(r.page_count == 1 || r.page_count == 4) << r.page_count;
    (r.page_count == 1 ? ones : fours) += 1;
  }
  EXPECT_NEAR(static_cast<double>(ones) / t.size(), 0.5, 0.05);
  EXPECT_GT(fours, 0u);
}

TEST(Generator, ZipfLocalityConcentratesWrites) {
  SyntheticConfig config = preset_config(Preset::kNtrx, kWorkingSet, 30'000, 9);
  config.zipf_theta = 0.95;
  const Trace t = generate(config);
  std::uint64_t hot = 0;
  std::uint64_t writes = 0;
  for (const IoRequest& r : t.requests()) {
    if (r.kind != IoKind::kWrite) continue;
    ++writes;
    if (r.lpn < kWorkingSet / 10) ++hot;
  }
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(writes), 0.5);
}

struct PresetExpectation {
  Preset preset;
  double read_fraction;
  const char* intensiveness;
  bool large_idles;
};

class PresetCharacteristics : public ::testing::TestWithParam<PresetExpectation> {};

TEST_P(PresetCharacteristics, MatchesTable1) {
  const PresetExpectation& expect = GetParam();
  const Trace t = generate(preset_config(expect.preset, kWorkingSet, 60'000, 1));
  const TraceStats s = t.stats(/*idle_threshold_us=*/20'000);
  EXPECT_NEAR(s.read_fraction(), expect.read_fraction, 0.02)
      << to_string(expect.preset);
  EXPECT_STREQ(s.intensiveness().c_str(), expect.intensiveness)
      << to_string(expect.preset) << " iops=" << s.iops();
  if (expect.large_idles) {
    EXPECT_GT(s.idle_fraction, 0.3) << to_string(expect.preset);
  } else {
    EXPECT_LT(s.idle_fraction, 0.3) << to_string(expect.preset);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table1, PresetCharacteristics,
    ::testing::Values(
        // Table 1: OLTP 7:3 very high, NTRX 3:7 very high, Webserver 4:1
        // moderate (large idles), Varmail 1:1 high, Fileserver 1:2 high.
        PresetExpectation{Preset::kOltp, 0.7, "Very high", false},
        PresetExpectation{Preset::kNtrx, 0.3, "Very high", false},
        PresetExpectation{Preset::kWebserver, 0.8, "Moderate", true},
        PresetExpectation{Preset::kVarmail, 0.5, "High", true},
        PresetExpectation{Preset::kFileserver, 1.0 / 3.0, "High", true}),
    [](const auto& info) { return to_string(info.param.preset); });

TEST(SequentialFill, CoversWholeSpanOnce) {
  const Trace t = sequential_fill(100, 8);
  Lpn covered = 0;
  Lpn expected_next = 0;
  for (const IoRequest& r : t.requests()) {
    EXPECT_EQ(r.kind, IoKind::kWrite);
    EXPECT_EQ(r.lpn, expected_next);
    covered += r.page_count;
    expected_next = r.lpn + r.page_count;
  }
  EXPECT_EQ(covered, 100u);
  EXPECT_EQ(t.requests().back().page_count, 4u);  // 100 = 12*8 + 4
}

TEST(PresetNames, AllDistinct) {
  EXPECT_STREQ(to_string(Preset::kOltp), "OLTP");
  EXPECT_STREQ(to_string(Preset::kNtrx), "NTRX");
  EXPECT_STREQ(to_string(Preset::kWebserver), "Webserver");
  EXPECT_STREQ(to_string(Preset::kVarmail), "Varmail");
  EXPECT_STREQ(to_string(Preset::kFileserver), "Fileserver");
}

}  // namespace
}  // namespace rps::workload
