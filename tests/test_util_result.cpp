#include "src/util/result.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rps {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), ErrorCode::kOk);
}

TEST(Status, ErrorCarriesCode) {
  Status s{ErrorCode::kSequenceViolation};
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kSequenceViolation);
  EXPECT_EQ(s.message(), "SequenceViolation");
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::ok(), Status{});
  EXPECT_EQ(Status{ErrorCode::kNoFreeBlock}, Status{ErrorCode::kNoFreeBlock});
  EXPECT_FALSE(Status{ErrorCode::kNoFreeBlock} == Status{ErrorCode::kNotFound});
}

TEST(ErrorCodeNames, AllDistinctAndNonEmpty) {
  std::vector<ErrorCode> codes = {
      ErrorCode::kOk,           ErrorCode::kSequenceViolation,
      ErrorCode::kAlreadyProgrammed, ErrorCode::kNotErased,
      ErrorCode::kOutOfRange,   ErrorCode::kEccUncorrectable,
      ErrorCode::kNotProgrammed, ErrorCode::kNoFreeBlock,
      ErrorCode::kNoFreePage,   ErrorCode::kBufferFull,
      ErrorCode::kNotFound,     ErrorCode::kInvalidArgument,
      ErrorCode::kPowerLoss};
  std::vector<std::string> names;
  for (ErrorCode c : codes) names.emplace_back(to_string(c));
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = ErrorCode::kNotFound;
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOnlyTake) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(r.is_ok());
  std::vector<int> taken = std::move(r).take();
  EXPECT_EQ(taken.size(), 3u);
}

TEST(Result, MutableAccess) {
  Result<std::string> r = std::string("abc");
  r.value() += "d";
  EXPECT_EQ(r.value(), "abcd");
}

}  // namespace
}  // namespace rps
