#include "src/ftl/parity_ftl.hpp"

#include <gtest/gtest.h>

#include "src/util/random.hpp"

namespace rps::ftl {
namespace {

TEST(ParityFtl, FlushesOneParityPerTwoHostLsbWrites) {
  ParityFtl ftl(FtlConfig::tiny());
  // Writes stripe across chips; the first writes per chip are LSB pages.
  // After 2 host LSB writes the accumulated parity is flushed.
  ASSERT_TRUE(ftl.write(0, 0).is_ok());
  EXPECT_EQ(ftl.pending_lsb_pages(), 1u);
  EXPECT_EQ(ftl.stats().backup_pages, 0u);
  ASSERT_TRUE(ftl.write(1, 0).is_ok());
  EXPECT_EQ(ftl.pending_lsb_pages(), 0u);
  EXPECT_EQ(ftl.stats().backup_pages, 1u);
}

TEST(ParityFtl, BackupRateIsHalfOfLsbWrites) {
  ParityFtl ftl(FtlConfig::tiny());
  for (Lpn lpn = 0; lpn < 64; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0).is_ok());
  const std::uint64_t lsb = ftl.stats().host_lsb_writes;
  // One parity page per kLsbPagesPerParity LSB writes (+/- one pending).
  EXPECT_NEAR(static_cast<double>(ftl.stats().backup_pages),
              static_cast<double>(lsb) / ParityFtl::kLsbPagesPerParity, 1.0);
}

TEST(ParityFtl, MsbWaitsForCoveringParity) {
  // Build a single-chip config so the write sequence is fully forced, and
  // verify the MSB program is delayed to at least the parity flush time.
  FtlConfig config = FtlConfig::tiny();
  config.geometry.channels = 1;
  config.geometry.chips_per_channel = 1;
  ParityFtl ftl(config);
  // FPS on one chip: L0, L1, M0. The parity of {L0, L1} flushes when L1 is
  // written; M0 must start no earlier than that flush completes.
  ASSERT_TRUE(ftl.write(0, 0).is_ok());
  const Result<HostOp> l1 = ftl.write(1, 0);
  ASSERT_TRUE(l1.is_ok());
  EXPECT_EQ(ftl.stats().backup_pages, 1u);
  const Result<HostOp> m0 = ftl.write(2, 0);
  ASSERT_TRUE(m0.is_ok());
  // Parity flush is an extra 500us-class program on the same (only) chip,
  // so M0 completes later than it would have without the backup scheme.
  const Microseconds lsb_us = config.timing.program_lsb_us;
  const Microseconds msb_us = config.timing.program_msb_us;
  EXPECT_GE(m0.value().complete, 2 * lsb_us + lsb_us /*parity*/ + msb_us);
}

TEST(ParityFtl, BackupBlocksAreSlcMode) {
  ParityFtl ftl(FtlConfig::tiny());
  for (Lpn lpn = 0; lpn < 8; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0).is_ok());
  ASSERT_GT(ftl.stats().backup_pages, 0u);
  bool found_slc_backup = false;
  for (std::uint32_t c = 0; c < ftl.config().geometry.num_chips(); ++c) {
    for (std::uint32_t b = 0; b < ftl.config().geometry.blocks_per_chip; ++b) {
      if (ftl.blocks().use({c, b}) == BlockUse::kBackup) {
        EXPECT_TRUE(ftl.device().block({c, b}).slc_mode());
        found_slc_backup = true;
      }
    }
  }
  EXPECT_TRUE(found_slc_backup);
}

TEST(ParityFtl, GcCopiesDoNotAccumulateParity) {
  ParityFtl ftl(FtlConfig::tiny());
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0).is_ok());
  Rng rng(5);
  const std::uint64_t backup_before = ftl.stats().backup_pages;
  const std::uint64_t host_lsb_before = ftl.stats().host_lsb_writes;
  for (int i = 0; i < 3000; ++i) ASSERT_TRUE(ftl.write(rng.next_below(n), 0).is_ok());
  ASSERT_GT(ftl.stats().gc_copy_pages, 0u);
  // Backups track host LSB writes only, not relocation copies. Every
  // flush covers up to two LSB pages; MSB-forced partial flushes cover one.
  const std::uint64_t host_lsb = ftl.stats().host_lsb_writes - host_lsb_before;
  const std::uint64_t backups = ftl.stats().backup_pages - backup_before;
  EXPECT_LE(backups,
            host_lsb / ParityFtl::kLsbPagesPerParity + ftl.partial_flushes() + 2);
  EXPECT_LE(backups, host_lsb + 2);
}

TEST(ParityFtl, SurvivesSteadyStateStress) {
  ParityFtl ftl(FtlConfig::tiny());
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0).is_ok());
  Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(ftl.write(rng.next_below(n), 0).is_ok()) << i;
  }
  EXPECT_TRUE(ftl.check_consistency());
  for (Lpn lpn = 0; lpn < n; ++lpn) EXPECT_TRUE(ftl.read(lpn, 0).is_ok());
}

TEST(ParityFtl, MoreErasesThanPageFtlUnderSameLoad) {
  // Fig. 8(b)'s mechanism: backup pages consume blocks, so parityFTL wears
  // the device faster than the backup-free baseline.
  PageFtl page(FtlConfig::tiny());
  ParityFtl parity(FtlConfig::tiny());
  for (FtlBase* ftl : {static_cast<FtlBase*>(&page), static_cast<FtlBase*>(&parity)}) {
    const Lpn n = ftl->exported_pages();
    for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl->write(lpn, 0).is_ok());
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) ASSERT_TRUE(ftl->write(rng.next_below(n), 0).is_ok());
  }
  EXPECT_GT(parity.device().total_erase_count(), page.device().total_erase_count());
}

}  // namespace
}  // namespace rps::ftl
