// Property tests for the multi-queue host frontend and its arbitration
// layer:
//   - arbitration conservation: every admitted command completes exactly
//     once (no loss, no duplication), per tenant,
//   - per-tenant FIFO: the admission log preserves each queue's order,
//   - WRR admits weight-proportionally over every full arbitration
//     cycle; WDRR equalizes *pages* (not commands) across queues of
//     equal weight under asymmetric command sizes,
//   - the whole multi-tenant replay is bit-identical across --jobs
//     values (trace generation is the only parallel stage),
//   - the open-loop generator stamps arrivals in sim-time, so bursty
//     tenants leave real idle windows and background scrubbing runs
//     (the regression the generator fix exists for).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "src/controller/arbiter.hpp"
#include "src/host/multi_queue.hpp"
#include "src/host/tenant.hpp"
#include "src/sim/runner.hpp"
#include "src/util/random.hpp"

namespace rps::host {
namespace {

// --- QueueArbiter unit properties -----------------------------------------

std::vector<std::uint64_t> admit_n(ctrl::QueueArbiter& arb, std::uint32_t queues,
                                   std::uint64_t n,
                                   const std::vector<std::uint32_t>& cost) {
  const std::vector<std::uint8_t> all(queues, 1);
  std::vector<std::uint64_t> counts(queues, 0);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto pick = arb.admit(all, cost);
    EXPECT_TRUE(pick.has_value()) << "saturated queues must always admit";
    if (!pick) break;
    ++counts[*pick];
  }
  return counts;
}

TEST(QueueArbiter, RoundRobinCyclesEligibleQueues) {
  ctrl::QueueArbiter arb(4, ctrl::ArbiterConfig{});  // default policy is RR
  const std::vector<std::uint32_t> cost(4, 1);
  const std::vector<std::uint64_t> counts = admit_n(arb, 4, 40, cost);
  for (std::uint32_t q = 0; q < 4; ++q) EXPECT_EQ(counts[q], 10u) << q;

  // Ineligible queues are skipped without stalling the cycle.
  const std::vector<std::uint8_t> only_two{0, 1, 0, 1};
  std::vector<std::uint64_t> partial(4, 0);
  for (int i = 0; i < 10; ++i) {
    const auto pick = arb.admit(only_two, cost);
    ASSERT_TRUE(pick.has_value());
    ++partial[*pick];
  }
  EXPECT_EQ(partial[0], 0u);
  EXPECT_EQ(partial[2], 0u);
  EXPECT_EQ(partial[1], 5u);
  EXPECT_EQ(partial[3], 5u);

  // Nothing eligible: the arbiter must decline, not spin.
  EXPECT_FALSE(arb.admit(std::vector<std::uint8_t>(4, 0), cost).has_value());
}

TEST(QueueArbiter, WrrAdmitsWeightProportionallyEveryCycle) {
  ctrl::ArbiterConfig config;
  config.policy = ctrl::ArbPolicy::kWeightedRoundRobin;
  config.weights = {1, 2, 3, 4};
  ctrl::QueueArbiter arb(4, config);
  const std::vector<std::uint32_t> cost(4, 1);
  // One full cycle admits exactly weight[q] commands from each queue;
  // check the proportion holds over every whole cycle.
  for (int cycle = 1; cycle <= 5; ++cycle) {
    ctrl::QueueArbiter fresh(4, config);
    const std::vector<std::uint64_t> counts =
        admit_n(fresh, 4, static_cast<std::uint64_t>(cycle) * 10, cost);
    for (std::uint32_t q = 0; q < 4; ++q) {
      EXPECT_EQ(counts[q], static_cast<std::uint64_t>(cycle) * config.weights[q])
          << "cycle " << cycle << " queue " << q;
    }
  }
}

TEST(QueueArbiter, WdrrEqualizesPagesNotCommands) {
  // Queue 0 issues 8-page commands, queue 1 issues 1-page commands, equal
  // weights. Cost-blind policies give queue 0 8x the bandwidth; WDRR must
  // equalize admitted *pages*, i.e. admit ~8 small commands per large one.
  ctrl::ArbiterConfig config;
  config.policy = ctrl::ArbPolicy::kWeightedDeficitRoundRobin;
  config.quantum_pages = 8;
  ctrl::QueueArbiter arb(2, config);
  const std::vector<std::uint32_t> cost{8, 1};
  const std::vector<std::uint8_t> all{1, 1};
  std::uint64_t pages[2] = {0, 0};
  for (int i = 0; i < 900; ++i) {
    const auto pick = arb.admit(all, cost);
    ASSERT_TRUE(pick.has_value());
    pages[*pick] += cost[*pick];
  }
  const double ratio =
      static_cast<double>(pages[0]) / static_cast<double>(pages[1]);
  EXPECT_GT(ratio, 0.9) << pages[0] << " vs " << pages[1];
  EXPECT_LT(ratio, 1.1) << pages[0] << " vs " << pages[1];
}

TEST(QueueArbiter, WdrrDropsBankedDeficitWhenQueueGoesIdle) {
  // Classic DRR: a queue that empties loses its banked deficit — it must
  // not come back later and burst through service it never queued for.
  ctrl::ArbiterConfig config;
  config.policy = ctrl::ArbPolicy::kWeightedDeficitRoundRobin;
  config.quantum_pages = 4;
  ctrl::QueueArbiter arb(2, config);
  const std::vector<std::uint32_t> cost{8, 1};
  // Queue 0's 8-page head needs two visits' deficit at quantum 4: the
  // first admit banks 4 pages for it and serves queue 1 instead.
  ASSERT_EQ(arb.admit({1, 1}, cost), std::optional<std::uint32_t>(1));
  EXPECT_EQ(arb.deficit(0), 4u);
  // Queue 0 goes idle. Keep admitting from queue 1 until the pointer
  // sweeps past queue 0 again — the visit must drop its banked deficit,
  // so queue 0 cannot later burst through service it never queued for.
  for (int i = 0; i < 6; ++i) (void)arb.admit({0, 1}, cost);
  EXPECT_EQ(arb.deficit(0), 0u);
}

// --- O(active) arbiter vs full-scan reference model ------------------------

/// The pre-optimization full-scan arbiter, kept verbatim as an executable
/// specification. The production QueueArbiter replaced the per-admission
/// O(N) scan with an intrusive active set and lazy deficit zeroing; this
/// reference pins the contract those tricks must preserve: identical
/// admission sequences AND identical observable deficits, admission by
/// admission, under arbitrary eligibility/cost schedules.
class ReferenceArbiter {
 public:
  ReferenceArbiter(std::uint32_t queues, ctrl::ArbiterConfig config)
      : queues_(queues), config_(std::move(config)), deficit_(queues, 0) {
    weights_.resize(queues_, 1);
    for (std::uint32_t q = 0; q < queues_ && q < config_.weights.size(); ++q) {
      weights_[q] = std::max<std::uint32_t>(1, config_.weights[q]);
    }
    if (config_.quantum_pages == 0) config_.quantum_pages = 1;
  }

  std::optional<std::uint32_t> admit(const std::vector<std::uint8_t>& eligible,
                                     const std::vector<std::uint32_t>& head_cost) {
    switch (config_.policy) {
      case ctrl::ArbPolicy::kRoundRobin: {
        for (std::uint32_t scan = 0; scan < queues_; ++scan) {
          const std::uint32_t q = cur_;
          cur_ = (cur_ + 1) % queues_;
          if (eligible[q] != 0) return q;
        }
        return std::nullopt;
      }
      case ctrl::ArbPolicy::kWeightedRoundRobin: {
        for (std::uint32_t scan = 0; scan <= queues_; ++scan) {
          if (eligible[cur_] != 0 && (!visiting_ || credit_ > 0)) {
            if (!visiting_) {
              visiting_ = true;
              credit_ = weights_[cur_];
            }
            --credit_;
            return cur_;
          }
          visiting_ = false;
          cur_ = (cur_ + 1) % queues_;
        }
        return std::nullopt;
      }
      case ctrl::ArbPolicy::kWeightedDeficitRoundRobin: {
        std::uint32_t max_cost = 1;
        bool any = false;
        for (std::uint32_t q = 0; q < queues_; ++q) {
          if (eligible[q] == 0) continue;
          any = true;
          max_cost = std::max(max_cost, std::max<std::uint32_t>(1, head_cost[q]));
        }
        if (!any) return std::nullopt;
        const std::uint64_t rounds = 2 + max_cost / config_.quantum_pages;
        for (std::uint64_t scan = 0; scan < rounds * queues_ + 1; ++scan) {
          if (eligible[cur_] == 0) {
            deficit_[cur_] = 0;  // eager form of the production lazy zeroing
            visiting_ = false;
            cur_ = (cur_ + 1) % queues_;
            continue;
          }
          if (!visiting_) {
            visiting_ = true;
            deficit_[cur_] +=
                static_cast<std::uint64_t>(config_.quantum_pages) * weights_[cur_];
          }
          const std::uint64_t cost = std::max<std::uint32_t>(1, head_cost[cur_]);
          if (deficit_[cur_] >= cost) {
            deficit_[cur_] -= cost;
            return cur_;
          }
          visiting_ = false;
          cur_ = (cur_ + 1) % queues_;
        }
        return std::nullopt;
      }
    }
    return std::nullopt;
  }

  [[nodiscard]] std::uint64_t deficit(std::uint32_t queue) const {
    return deficit_[queue];
  }

 private:
  std::uint32_t queues_;
  ctrl::ArbiterConfig config_;
  std::vector<std::uint32_t> weights_;
  std::uint32_t cur_ = 0;
  std::uint32_t credit_ = 0;
  bool visiting_ = false;
  std::vector<std::uint64_t> deficit_;
};

TEST(QueueArbiter, MatchesFullScanReferenceOnRandomSchedules) {
  // Drive three implementations of the same contract with random
  // eligibility churn: the reference full scan, the production arbiter
  // through its full-sync vector admit(), and a second production
  // instance through the incremental set_eligible()/admit() interface
  // (the O(active) path the frontend actually uses). Every admission and
  // every WDRR deficit must agree step by step.
  for (const ctrl::ArbPolicy policy : ctrl::kAllArbPolicies) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      Rng rng(seed * 7919 + static_cast<std::uint64_t>(policy));
      const auto queues =
          static_cast<std::uint32_t>(2 + rng.next_below(15));  // 2..16
      ctrl::ArbiterConfig config;
      config.policy = policy;
      config.quantum_pages = static_cast<std::uint32_t>(1 + rng.next_below(8));
      for (std::uint32_t q = 0; q < queues; ++q) {
        config.weights.push_back(static_cast<std::uint32_t>(rng.next_below(4)));
      }
      ReferenceArbiter reference(queues, config);
      ctrl::QueueArbiter full_sync(queues, config);
      ctrl::QueueArbiter incremental(queues, config);

      std::vector<std::uint8_t> eligible(queues, 0);
      std::vector<std::uint32_t> cost(queues, 1);
      const auto report = [&](std::uint32_t q) {
        incremental.set_eligible(q, eligible[q] != 0, cost[q]);
      };
      for (int step = 0; step < 600; ++step) {
        // Churn a few queues: arrivals, departures, head-cost changes.
        const std::uint64_t churn = rng.next_below(3);
        for (std::uint64_t c = 0; c <= churn; ++c) {
          const auto q = static_cast<std::uint32_t>(rng.next_below(queues));
          eligible[q] = rng.chance(0.6) ? 1 : 0;
          cost[q] = static_cast<std::uint32_t>(rng.next_below(17));
          report(q);
        }
        const std::optional<std::uint32_t> want = reference.admit(eligible, cost);
        ASSERT_EQ(full_sync.admit(eligible, cost), want)
            << to_string(policy) << " seed " << seed << " step " << step;
        ASSERT_EQ(incremental.admit(), want)
            << to_string(policy) << " seed " << seed << " step " << step;
        for (std::uint32_t q = 0; q < queues; ++q) {
          ASSERT_EQ(incremental.deficit(q), reference.deficit(q))
              << to_string(policy) << " seed " << seed << " step " << step
              << " queue " << q;
          ASSERT_EQ(full_sync.deficit(q), reference.deficit(q))
              << to_string(policy) << " seed " << seed << " step " << step
              << " queue " << q;
        }
        if (want) {
          // The admitted head leaves its queue: either another command is
          // behind it (new cost) or the queue drains.
          const std::uint32_t q = *want;
          eligible[q] = rng.chance(0.7) ? 1 : 0;
          cost[q] = static_cast<std::uint32_t>(rng.next_below(17));
          report(q);
        }
      }
    }
  }
}

// --- Frontend properties ---------------------------------------------------

/// A hand-built trace: `n` one-or-more-page writes all arriving at `at`,
/// cycling over `span` pages of the tenant's partition.
workload::Trace instant_burst(std::uint64_t n, std::uint32_t pages, Microseconds at,
                              Lpn first, Lpn span) {
  workload::Trace t("burst");
  for (std::uint64_t i = 0; i < n; ++i) {
    workload::IoRequest r;
    r.arrival_us = at;
    r.kind = workload::IoKind::kWrite;
    r.page_count = pages;
    r.lpn = first + static_cast<Lpn>(i * pages) % (span - pages + 1);
    t.add(r);
  }
  return t;
}

TEST(MultiQueueFrontend, ConservationAndPerTenantFifo) {
  auto ftl = sim::make_ftl(sim::FtlKind::kFlex, ftl::FtlConfig::tiny());
  MultiQueueConfig mq;
  mq.keep_admission_log = true;
  MultiQueueFrontend frontend(*ftl, mq);

  const std::uint32_t kTenants = 4;
  std::vector<std::uint64_t> trace_sizes;
  for (std::uint32_t i = 0; i < kTenants; ++i) {
    TenantConfig t;
    t.id = i;
    t.requests = 150 + 25 * i;  // unequal sizes: conservation per tenant
    t.mean_interarrival_us = 200;
    t.read_fraction = 0.3;
    const LpnPartition part =
        tenant_partition(i, kTenants, ftl->exported_pages());
    workload::Trace trace = tenant_trace(t, part, /*base_seed=*/7);
    trace_sizes.push_back(trace.size());
    frontend.add_tenant(t, std::move(trace));
  }

  const MultiQueueResult result = frontend.run();

  // Conservation: every request of every tenant was admitted and completed
  // exactly once; the histograms account for every completion.
  ASSERT_EQ(result.tenants.size(), kTenants);
  for (std::uint32_t i = 0; i < kTenants; ++i) {
    const TenantResult& t = result.tenants[i];
    EXPECT_EQ(t.submitted, trace_sizes[i]) << "tenant " << i;
    EXPECT_EQ(t.completed, trace_sizes[i]) << "tenant " << i;
    EXPECT_EQ(t.aborted, 0u) << "tenant " << i;
    EXPECT_EQ(t.latency_us.count(), t.completed) << "tenant " << i;
    EXPECT_EQ(t.read_requests + t.write_requests, t.submitted) << "tenant " << i;
    EXPECT_EQ(t.latency_us.count() - t.write_latency_us.count() +
                  t.write_requests,
              t.submitted)
        << "tenant " << i;
  }

  // Per-tenant FIFO: each queue's admissions happen in queue order, at
  // instants never before the request arrived.
  std::vector<std::uint64_t> next_seq(kTenants, 0);
  for (const AdmissionRecord& rec : frontend.admission_log()) {
    ASSERT_LT(rec.tenant, kTenants);
    EXPECT_EQ(rec.seq, next_seq[rec.tenant]) << "tenant " << rec.tenant;
    ++next_seq[rec.tenant];
    EXPECT_GE(rec.admit_us, rec.arrival_us);
  }
  for (std::uint32_t i = 0; i < kTenants; ++i) {
    EXPECT_EQ(next_seq[i], trace_sizes[i]) << "tenant " << i;
  }
  EXPECT_TRUE(ftl->check_consistency());
}

TEST(MultiQueueFrontend, WrrAdmissionWindowsAreWeightProportional) {
  // Four saturated queues (every request arrives at the same instant, no
  // binding cap): the admission log's order is exactly the arbiter's
  // schedule, so every whole WRR cycle admits weight[q] commands of
  // queue q.
  auto ftl = sim::make_ftl(sim::FtlKind::kPage, ftl::FtlConfig::tiny());
  MultiQueueConfig mq;
  mq.arbiter.policy = ctrl::ArbPolicy::kWeightedRoundRobin;
  mq.keep_admission_log = true;
  MultiQueueFrontend frontend(*ftl, mq);

  const std::uint32_t kTenants = 4;
  const std::uint32_t weights[kTenants] = {1, 2, 3, 4};
  const std::uint64_t kPerTenant = 60;
  for (std::uint32_t i = 0; i < kTenants; ++i) {
    TenantConfig t;
    t.id = i;
    t.weight = weights[i];
    t.in_flight_cap = 100000;  // the arbiter, not the cap, orders admission
    const LpnPartition part =
        tenant_partition(i, kTenants, ftl->exported_pages());
    frontend.add_tenant(
        t, instant_burst(kPerTenant, 1, /*at=*/1, part.first, part.pages));
  }
  (void)frontend.run();

  const std::vector<AdmissionRecord>& log = frontend.admission_log();
  ASSERT_EQ(log.size(), kPerTenant * kTenants);
  // While all queues are backlogged (the first 6 full cycles of 10
  // admissions), every cycle is weight-exact.
  const std::uint32_t cycle_len = 1 + 2 + 3 + 4;
  for (std::uint32_t cycle = 0; cycle < 6; ++cycle) {
    std::uint64_t counts[kTenants] = {0, 0, 0, 0};
    for (std::uint32_t k = 0; k < cycle_len; ++k) {
      ++counts[log[cycle * cycle_len + k].tenant];
    }
    for (std::uint32_t q = 0; q < kTenants; ++q) {
      EXPECT_EQ(counts[q], weights[q]) << "cycle " << cycle << " queue " << q;
    }
  }
}

TEST(MultiQueueFrontend, WdrrAdmissionEqualizesPagesUnderMixedSizes) {
  // Tenant 0 floods 8-page writes, tenant 1 issues 1-page writes. Under
  // WDRR with equal weights the admitted-page counts track each other
  // cycle by cycle — inspect the log's running page totals.
  auto ftl = sim::make_ftl(sim::FtlKind::kPage, ftl::FtlConfig::tiny());
  MultiQueueConfig mq;
  mq.arbiter.policy = ctrl::ArbPolicy::kWeightedDeficitRoundRobin;
  mq.arbiter.quantum_pages = 8;
  mq.keep_admission_log = true;
  MultiQueueFrontend frontend(*ftl, mq);

  const Lpn half = ftl->exported_pages() / 2;
  TenantConfig flood;
  flood.id = 0;
  flood.in_flight_cap = 100000;
  TenantConfig small = flood;
  small.id = 1;
  frontend.add_tenant(flood, instant_burst(40, 8, 1, 0, half));
  frontend.add_tenant(small, instant_burst(320, 1, 1, half, half));
  (void)frontend.run();

  std::uint64_t pages[2] = {0, 0};
  std::uint64_t commands[2] = {0, 0};
  std::size_t seen = 0;
  for (const AdmissionRecord& rec : frontend.admission_log()) {
    pages[rec.tenant] += rec.pages;
    ++commands[rec.tenant];
    ++seen;
    // While both queues are still backlogged, the running page totals
    // never diverge by more than one quantum's worth of slack per queue.
    if (seen >= 32 && commands[0] < 40 && commands[1] < 320) {
      const std::uint64_t hi = std::max(pages[0], pages[1]);
      const std::uint64_t lo = std::min(pages[0], pages[1]);
      EXPECT_LE(hi - lo, 16u) << "at admission " << seen;
    }
  }
  EXPECT_EQ(commands[0], 40u);
  EXPECT_EQ(commands[1], 320u);
}

TEST(MultiQueueFrontend, ReplayIsBitIdenticalAcrossJobs) {
  // The full pipeline — parallel trace generation, frontend replay,
  // per-tenant histograms — must produce identical digests at any --jobs.
  std::vector<TenantConfig> tenants(6);
  for (std::uint32_t i = 0; i < tenants.size(); ++i) {
    tenants[i].id = i;
    tenants[i].requests = 120;
    tenants[i].mean_interarrival_us = 300;
    tenants[i].arrival = (i % 2 == 0) ? workload::ArrivalProcess::kPoisson
                                      : workload::ArrivalProcess::kBurstyOnOff;
  }

  auto run_at = [&](std::uint32_t jobs) {
    auto ftl = sim::make_ftl(sim::FtlKind::kFlex, ftl::FtlConfig::tiny());
    std::vector<workload::Trace> traces =
        build_tenant_traces(tenants, ftl->exported_pages(), /*seed=*/42, jobs);
    MultiQueueFrontend frontend(*ftl);
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      frontend.add_tenant(tenants[i], std::move(traces[i]));
    }
    return frontend.run();
  };

  const MultiQueueResult r1 = run_at(1);
  const MultiQueueResult r2 = run_at(2);
  const MultiQueueResult r8 = run_at(8);
  ASSERT_GT(r1.tenants.size(), 0u);
  EXPECT_EQ(r1.digest(), r2.digest());
  EXPECT_EQ(r1.digest(), r8.digest());
  for (std::size_t i = 0; i < r1.tenants.size(); ++i) {
    EXPECT_TRUE(r1.tenants[i].latency_us == r8.tenants[i].latency_us)
        << "tenant " << i;
    EXPECT_TRUE(r1.tenants[i].write_latency_us == r8.tenants[i].write_latency_us)
        << "tenant " << i;
  }
}

TEST(MultiQueueFrontend, BurstyTenantsOpenIdleWindowsThatRunScrubs) {
  // Regression for the open-loop generator's sim-time arrival fix: a
  // bursty tenant's OFF periods must appear as real gaps in the arrival
  // stamps (an index-based clock collapses them), so the frontend detects
  // idle windows and the FTL's background machinery — here read-disturb
  // scrubbing — actually runs.
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  config.read_scrub_threshold = 30;  // scrub after 30 reads-since-erase
  auto ftl = sim::make_ftl(sim::FtlKind::kPage, config);

  TenantConfig t;
  t.id = 0;
  t.arrival = workload::ArrivalProcess::kBurstyOnOff;
  t.read_fraction = 0.9;        // hammer reads to trip the disturb counter
  t.zipf_theta = 0.99;          // concentrate them on few blocks
  t.requests = 4000;
  t.mean_interarrival_us = 50;
  t.on_mean_us = 5'000;
  t.off_mean_us = 50'000;

  const LpnPartition part = tenant_partition(0, 1, ftl->exported_pages());
  const workload::Trace trace = tenant_trace(t, part, /*base_seed=*/9);
  // The generator property itself: OFF periods dominate the timeline.
  EXPECT_GT(trace.stats(/*idle_threshold_us=*/1000).idle_fraction, 0.3);

  // Warm the device so reads hit programmed pages.
  for (Lpn lpn = 0; lpn < part.pages; ++lpn) {
    ASSERT_TRUE(ftl->write(lpn, ftl->device().all_idle_at(), 0.5).is_ok());
  }

  MultiQueueFrontend frontend(*ftl);
  frontend.add_tenant(t, trace);
  const MultiQueueResult result = frontend.run();

  EXPECT_EQ(result.tenants[0].completed, trace.size());
  EXPECT_GT(result.idle_windows, 0u);
  EXPECT_GT(ftl->stats().scrubbed_blocks, 0u)
      << "idle windows: " << result.idle_windows;
  EXPECT_TRUE(ftl->check_consistency());
}

TEST(MultiQueueFrontend, SharedPageBudgetSerializesAdmissionsWhenTight) {
  // A one-page budget allows exactly one command in flight: every
  // admission after the first can only happen at the completion instant
  // of its predecessor, so admit stamps are strictly increasing. And the
  // pool must not leak: all requests still complete exactly once.
  auto ftl = sim::make_ftl(sim::FtlKind::kPage, ftl::FtlConfig::tiny());
  MultiQueueConfig mq;
  mq.shared_page_budget = 1;
  mq.keep_admission_log = true;
  MultiQueueFrontend frontend(*ftl, mq);

  const Lpn half = ftl->exported_pages() / 2;
  for (std::uint32_t i = 0; i < 2; ++i) {
    TenantConfig t;
    t.id = i;
    t.in_flight_cap = 100000;  // only the shared pool throttles
    frontend.add_tenant(t, instant_burst(25, 1, 1, i * half, half));
  }
  const MultiQueueResult result = frontend.run();

  EXPECT_EQ(result.tenants[0].completed, 25u);
  EXPECT_EQ(result.tenants[1].completed, 25u);
  const std::vector<AdmissionRecord>& log = frontend.admission_log();
  ASSERT_EQ(log.size(), 50u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_GT(log[i].admit_us, log[i - 1].admit_us) << "admission " << i;
  }
  EXPECT_TRUE(ftl->check_consistency());
}

TEST(MultiQueueFrontend, SharedPageBudgetAdmitsOversizedCommandsAlone) {
  // A command larger than the whole pool must not deadlock: it is
  // admitted alone, once everything else drained. With a competing
  // single-page tenant, both queues still drain to completion.
  auto ftl = sim::make_ftl(sim::FtlKind::kPage, ftl::FtlConfig::tiny());
  MultiQueueConfig mq;
  mq.shared_page_budget = 4;
  mq.keep_admission_log = true;
  MultiQueueFrontend frontend(*ftl, mq);

  const Lpn half = ftl->exported_pages() / 2;
  TenantConfig big;
  big.id = 0;
  big.in_flight_cap = 100000;
  TenantConfig small = big;
  small.id = 1;
  frontend.add_tenant(big, instant_burst(10, 6, 1, 0, half));  // 6 > budget
  frontend.add_tenant(small, instant_burst(40, 1, 1, half, half));
  const MultiQueueResult result = frontend.run();

  EXPECT_EQ(result.tenants[0].completed, 10u);
  EXPECT_EQ(result.tenants[1].completed, 40u);
  // The oversized commands were serialized: each 6-page admission stands
  // alone at its instant (nothing else fits beside an over-budget hog).
  for (const AdmissionRecord& rec : frontend.admission_log()) {
    if (rec.tenant != 0) continue;
    for (const AdmissionRecord& other : frontend.admission_log()) {
      if (&other != &rec && other.admit_us == rec.admit_us) {
        ADD_FAILURE() << "oversized command shared instant " << rec.admit_us;
      }
    }
  }
  EXPECT_TRUE(ftl->check_consistency());
}

}  // namespace
}  // namespace rps::host
