// Cross-module integration: all four FTLs driven through the simulator on
// a shared workload, checking the comparative properties the paper's
// evaluation rests on — on a scaled-down device so the suite stays fast.
#include <gtest/gtest.h>

#include "src/core/flex_ftl.hpp"
#include "src/sim/runner.hpp"

namespace rps {
namespace {

sim::ExperimentSpec small_spec() {
  sim::ExperimentSpec spec;
  spec.ftl_config.geometry = nand::Geometry{.channels = 2,
                                            .chips_per_channel = 2,
                                            .blocks_per_chip = 24,
                                            .wordlines_per_block = 16,
                                            .page_size_bytes = 2048,
                                            .spare_bytes = 32};
  spec.ftl_config.overprovisioning = 0.2;
  spec.ftl_config.gc_reserve_blocks = 1;
  spec.ftl_config.write_buffer_pages = 16;
  spec.ftl_config.rtf_active_blocks = 2;
  spec.requests = 4000;
  spec.working_set_fraction = 0.8;
  spec.sim.queue_depth = 16;
  return spec;
}

class AllFtls : public ::testing::TestWithParam<sim::FtlKind> {};

TEST_P(AllFtls, CompletesAWorkloadAndStaysConsistent) {
  const sim::ExperimentSpec spec = small_spec();
  auto ftl = sim::make_ftl(GetParam(), spec.ftl_config);
  sim::Simulator simulator(*ftl, spec.sim);
  simulator.precondition();
  const workload::Trace trace = workload::generate(workload::preset_config(
      workload::Preset::kVarmail,
      static_cast<Lpn>(ftl->exported_pages() * spec.working_set_fraction),
      spec.requests, 3));
  const sim::SimResult r = simulator.run(trace);
  EXPECT_EQ(r.requests, spec.requests);
  EXPECT_EQ(r.read_errors, 0u);
  EXPECT_GT(r.iops_makespan(), 0.0);
  EXPECT_GE(r.waf(), 1.0);
  EXPECT_TRUE(ftl->check_consistency());
}

TEST_P(AllFtls, DataIntegrityUnderOverwrites) {
  // Write known signatures, overwrite some, verify every final value via
  // device reads (signature equality proves mapping correctness).
  const sim::ExperimentSpec spec = small_spec();
  auto ftl = sim::make_ftl(GetParam(), spec.ftl_config);
  const Lpn n = ftl->exported_pages();
  std::vector<std::vector<std::uint8_t>> expected(n);
  Rng rng(99);
  Microseconds t = 0;
  for (Lpn lpn = 0; lpn < n; ++lpn) {
    expected[lpn] = {static_cast<std::uint8_t>(lpn), static_cast<std::uint8_t>(lpn >> 8)};
    ASSERT_TRUE(ftl->write_data(lpn, expected[lpn], t, 0.5).is_ok());
  }
  for (int i = 0; i < 2000; ++i) {
    const Lpn lpn = rng.next_below(n);
    expected[lpn] = {static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i >> 8),
                     static_cast<std::uint8_t>(lpn)};
    ASSERT_TRUE(ftl->write_data(lpn, expected[lpn], t, 0.5).is_ok());
  }
  for (Lpn lpn = 0; lpn < n; ++lpn) {
    const Result<nand::PageData> data = ftl->read_data(lpn, t);
    ASSERT_TRUE(data.is_ok()) << "lpn " << lpn;
    EXPECT_EQ(data.value().bytes, expected[lpn]) << "lpn " << lpn;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllFtls,
                         ::testing::Values(sim::FtlKind::kPage, sim::FtlKind::kParity,
                                           sim::FtlKind::kRtf, sim::FtlKind::kFlex),
                         [](const auto& info) { return sim::to_string(info.param); });

TEST(Comparative, FlexAbsorbsBurstsAtLsbSpeed) {
  // Fig. 8(c)'s mechanism: under buffer pressure flexFTL serves a burst
  // with LSB-only programs (500 us) while pageFTL must alternate LSB/MSB
  // (1250 us average) — roughly 2x burst bandwidth on a fresh device.
  const sim::ExperimentSpec spec = small_spec();
  auto page = sim::make_ftl(sim::FtlKind::kPage, spec.ftl_config);
  auto flex = sim::make_ftl(sim::FtlKind::kFlex, spec.ftl_config);
  const Lpn burst = 256;
  for (Lpn lpn = 0; lpn < burst; ++lpn) {
    ASSERT_TRUE(page->write(lpn, 0, 0.95).is_ok());
    ASSERT_TRUE(flex->write(lpn, 0, 0.95).is_ok());
  }
  const Microseconds page_time = page->device().all_idle_at();
  const Microseconds flex_time = flex->device().all_idle_at();
  EXPECT_LT(flex_time * 2, page_time * 3);  // at least 1.5x faster
  EXPECT_GT(page_time, flex_time);
}

TEST(Comparative, BackupOverheadOrdering) {
  // Per host page: flexFTL ~1/wordlines backup pages, parityFTL ~0.25,
  // rtfFTL ~0.5 — the mechanism behind Fig. 8(b).
  const sim::ExperimentSpec spec = small_spec();
  const sim::SimResult parity =
      sim::run_experiment(sim::FtlKind::kParity, workload::Preset::kNtrx, spec);
  const sim::SimResult rtf =
      sim::run_experiment(sim::FtlKind::kRtf, workload::Preset::kNtrx, spec);
  const sim::SimResult flex =
      sim::run_experiment(sim::FtlKind::kFlex, workload::Preset::kNtrx, spec);
  EXPECT_LT(flex.ftl_stats.backup_pages * 2, parity.ftl_stats.backup_pages);
  // flexFTL pays ~1/wordlines backups per LSB page vs rtfFTL's ~1 per MSB
  // page; with this test's 16-word-line blocks that is a modest gap (it is
  // 128x on the paper's geometry).
  EXPECT_LT(flex.ftl_stats.backup_pages, rtf.ftl_stats.backup_pages);
}

TEST(Comparative, FlexEraseCountNoWorseThanBackupFtls) {
  const sim::ExperimentSpec spec = small_spec();
  const sim::SimResult parity =
      sim::run_experiment(sim::FtlKind::kParity, workload::Preset::kNtrx, spec);
  const sim::SimResult rtf =
      sim::run_experiment(sim::FtlKind::kRtf, workload::Preset::kNtrx, spec);
  const sim::SimResult flex =
      sim::run_experiment(sim::FtlKind::kFlex, workload::Preset::kNtrx, spec);
  EXPECT_LE(flex.erases, parity.erases);
  EXPECT_LE(flex.erases, rtf.erases);
}

TEST(Comparative, DeviceEnforcesSequenceAcrossFtls) {
  // Sanity at the device boundary: the FPS FTLs run on FPS devices, flex
  // on an RPS device — and none of them ever trips a sequence violation
  // (all asserts in the FTLs would fire otherwise; verify kinds here).
  const sim::ExperimentSpec spec = small_spec();
  EXPECT_EQ(sim::make_ftl(sim::FtlKind::kPage, spec.ftl_config)->device().sequence_kind(),
            nand::SequenceKind::kFps);
  EXPECT_EQ(sim::make_ftl(sim::FtlKind::kParity, spec.ftl_config)->device().sequence_kind(),
            nand::SequenceKind::kFps);
  EXPECT_EQ(sim::make_ftl(sim::FtlKind::kRtf, spec.ftl_config)->device().sequence_kind(),
            nand::SequenceKind::kFps);
  EXPECT_EQ(sim::make_ftl(sim::FtlKind::kFlex, spec.ftl_config)->device().sequence_kind(),
            nand::SequenceKind::kRps);
}

}  // namespace
}  // namespace rps
