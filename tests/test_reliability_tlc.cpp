// The TLC reliability study: relaxed-TLC orders accumulate no more
// interference than the conventional shadow sequence; unconstrained
// orders degrade — the Fig. 4 relation carried to 3-bit cells.
#include "src/reliability/tlc_study.hpp"

#include <gtest/gtest.h>

namespace rps::reliability {
namespace {

TlcStudyConfig small_config() {
  TlcStudyConfig c;
  c.cells_per_wordline = 384;
  return c;
}

TEST(TlcGray, AdjacentStatesDifferInOneBit) {
  for (std::size_t s = 0; s + 1 < kTlcStates; ++s) {
    const std::uint8_t diff = tlc_gray(s) ^ tlc_gray(s + 1);
    EXPECT_EQ(__builtin_popcount(diff), 1) << "states " << s << "," << s + 1;
  }
}

TEST(TlcGray, AllCodesDistinct) {
  for (std::size_t a = 0; a < kTlcStates; ++a) {
    for (std::size_t b = a + 1; b < kTlcStates; ++b) {
      EXPECT_NE(tlc_gray(a), tlc_gray(b));
    }
  }
}

TEST(TlcBer, CorrectReadIsErrorFree) {
  const TlcVthModel m = TlcVthModel::nominal();
  for (std::size_t s = 0; s < kTlcStates; ++s) {
    EXPECT_EQ(tlc_bit_errors_for_cell(s, m.state_mean[s], m), 0u) << s;
  }
}

TEST(TlcBer, AdjacentMisreadCostsOneBit) {
  const TlcVthModel m = TlcVthModel::nominal();
  // State 2 read just above read_ref[2] resolves as state 3.
  EXPECT_EQ(tlc_bit_errors_for_cell(2, m.read_ref[2] + 0.01, m), 1u);
}

TEST(TlcSimulate, ShapesAndAggressorBound) {
  Rng rng(1);
  const std::uint32_t wl = 8;
  const auto results =
      simulate_tlc_block(nand::tlc_rps_full_order(wl), wl, small_config(), rng);
  ASSERT_EQ(results.size(), wl);
  for (const TlcWordlineResult& r : results) {
    EXPECT_LE(r.aggressors_after_final, 1u);
    EXPECT_GT(r.wpi_sum, 0.0);
    EXPECT_GE(r.ber, 0.0);
  }
}

TEST(TlcStudy, RpsNoWorseThanFps) {
  const TlcStudyConfig config = small_config();
  const TlcStudyResult fps = run_tlc_study(TlcScheme::kFps, 32, 24, config, 42);
  const TlcStudyResult rps = run_tlc_study(TlcScheme::kRpsFull, 32, 24, config, 42);
  const TlcStudyResult rnd = run_tlc_study(TlcScheme::kRpsRandom, 32, 24, config, 42);
  // Independent Monte-Carlo streams per scheme: allow 2% sampling noise.
  const double tolerance = 0.02 * fps.wpi_per_page.median();
  EXPECT_LE(rps.wpi_per_page.median(), fps.wpi_per_page.median() + tolerance);
  EXPECT_LE(rnd.wpi_per_page.median(), fps.wpi_per_page.median() + tolerance);
  EXPECT_LE(rps.aggressors.max(), 1.0);
  EXPECT_LE(rnd.aggressors.max(), 1.0);
}

TEST(TlcStudy, UnconstrainedDegrades) {
  const TlcStudyConfig config = small_config();
  const TlcStudyResult fps = run_tlc_study(TlcScheme::kFps, 16, 16, config, 42);
  const TlcStudyResult wild =
      run_tlc_study(TlcScheme::kUnconstrained, 16, 16, config, 42);
  EXPECT_GT(wild.aggressors.max(), 1.0);
  EXPECT_GT(wild.wpi_per_page.percentile(90), fps.wpi_per_page.percentile(90));
  // TLC's tight state pitch makes the extra interference cost bit errors
  // even at fresh conditions.
  EXPECT_GT(wild.ber_per_page.mean(), fps.ber_per_page.mean());
}

TEST(TlcStudy, Deterministic) {
  const TlcStudyConfig config = small_config();
  const TlcStudyResult a = run_tlc_study(TlcScheme::kRpsRandom, 4, 8, config, 7);
  const TlcStudyResult b = run_tlc_study(TlcScheme::kRpsRandom, 4, 8, config, 7);
  EXPECT_EQ(a.wpi_per_page.median(), b.wpi_per_page.median());
  EXPECT_EQ(a.ber_per_page.mean(), b.ber_per_page.mean());
}

}  // namespace
}  // namespace rps::reliability
