#include "src/workload/msr_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rps::workload {
namespace {

constexpr const char* kSample =
    "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n"
    "128166372003061629,hm,0,Read,8192,4096,151\n"
    "128166372003061640,hm,0,Write,12288,8192,312\n"
    "128166372003071629,hm,1,Write,0,512,100\n"
    "128166372003081629,hm,0,Read,4095,2,90\n"
    "garbage,row,that,should,be,skipped\n";

TEST(MsrImport, ParsesRowsAndSkipsJunk) {
  std::istringstream in(kSample);
  const auto result = import_msr_trace(in, {.page_size_bytes = 4096});
  ASSERT_TRUE(result.is_ok());
  const Trace& t = result.value().trace;
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(result.value().skipped_rows, 2u);  // header + garbage

  const IoRequest& first = t.requests()[0];
  EXPECT_EQ(first.arrival_us, 0);
  EXPECT_EQ(first.kind, IoKind::kRead);
  EXPECT_EQ(first.lpn, 2u);        // byte 8192 / 4096
  EXPECT_EQ(first.page_count, 1u);

  const IoRequest& second = t.requests()[1];
  EXPECT_EQ(second.arrival_us, 1);  // 11 ticks later -> 1 us
  EXPECT_EQ(second.kind, IoKind::kWrite);
  EXPECT_EQ(second.lpn, 3u);
  EXPECT_EQ(second.page_count, 2u);  // 8 KB spans two pages
}

TEST(MsrImport, UnalignedRequestSpansPages) {
  std::istringstream in(kSample);
  const auto result = import_msr_trace(in, {.page_size_bytes = 4096});
  ASSERT_TRUE(result.is_ok());
  // Offset 4095, size 2: touches bytes 4095..4096 -> pages 0 and 1.
  const IoRequest& straddler = result.value().trace.requests()[3];
  EXPECT_EQ(straddler.lpn, 0u);
  EXPECT_EQ(straddler.page_count, 2u);
}

TEST(MsrImport, DiskFilter) {
  std::istringstream in(kSample);
  MsrImportOptions options;
  options.disk_filter = 1;
  const auto result = import_msr_trace(in, options);
  ASSERT_TRUE(result.is_ok());
  ASSERT_EQ(result.value().trace.size(), 1u);
  EXPECT_EQ(result.value().trace.requests()[0].kind, IoKind::kWrite);
}

TEST(MsrImport, WrapSpanKeepsRequestsInRange) {
  std::istringstream in(
      "128166372003061629,hm,0,Write,40960000,8192,10\n");
  MsrImportOptions options;
  options.wrap_span_pages = 100;
  const auto result = import_msr_trace(in, options);
  ASSERT_TRUE(result.is_ok());
  const IoRequest& r = result.value().trace.requests()[0];
  EXPECT_LE(r.lpn + r.page_count, 100u);
}

TEST(MsrImport, MaxRequestsCap) {
  std::istringstream in(kSample);
  MsrImportOptions options;
  options.max_requests = 2;
  const auto result = import_msr_trace(in, options);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().trace.size(), 2u);
}

TEST(MsrImport, MissingFile) {
  EXPECT_EQ(import_msr_trace_file("/nonexistent.csv", {}).code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace rps::workload
