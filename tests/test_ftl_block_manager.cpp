#include "src/ftl/block_manager.hpp"

#include <gtest/gtest.h>

namespace rps::ftl {
namespace {

TEST(BlockManager, InitialStateAllFree) {
  BlockManager bm(2, 8, 16);
  EXPECT_EQ(bm.chips(), 2u);
  EXPECT_EQ(bm.free_blocks(0), 8u);
  EXPECT_EQ(bm.total_free_blocks(), 16u);
  EXPECT_DOUBLE_EQ(bm.free_fraction(0), 1.0);
  EXPECT_EQ(bm.chip_valid_pages(0), 0u);
}

TEST(BlockManager, AllocateRespectsReserve) {
  BlockManager bm(1, 4, 16);
  EXPECT_TRUE(bm.allocate(0, BlockUse::kActive, 2).is_ok());
  EXPECT_TRUE(bm.allocate(0, BlockUse::kActive, 2).is_ok());
  // Two left == reserve: host allocation fails, GC allocation succeeds.
  EXPECT_EQ(bm.allocate(0, BlockUse::kActive, 2).code(), ErrorCode::kNoFreeBlock);
  EXPECT_TRUE(bm.allocate(0, BlockUse::kActive, 0).is_ok());
  EXPECT_TRUE(bm.allocate(0, BlockUse::kActive, 0).is_ok());
  EXPECT_EQ(bm.allocate(0, BlockUse::kActive, 0).code(), ErrorCode::kNoFreeBlock);
}

TEST(BlockManager, UseTransitionsAndRelease) {
  BlockManager bm(1, 4, 16);
  const Result<std::uint32_t> block = bm.allocate(0, BlockUse::kActive, 0);
  ASSERT_TRUE(block.is_ok());
  const nand::BlockAddress addr{0, block.value()};
  EXPECT_EQ(bm.use(addr), BlockUse::kActive);
  bm.set_use(addr, BlockUse::kFull);
  EXPECT_EQ(bm.use(addr), BlockUse::kFull);
  bm.release(addr);
  EXPECT_EQ(bm.use(addr), BlockUse::kFree);
  EXPECT_EQ(bm.free_blocks(0), 4u);
}

TEST(BlockManager, ValidAccountingPerBlockAndChip) {
  BlockManager bm(2, 4, 16);
  const nand::BlockAddress a{0, 0};
  const nand::BlockAddress b{1, 2};
  bm.add_valid(a);
  bm.add_valid(a);
  bm.add_valid(b);
  EXPECT_EQ(bm.valid_pages(a), 2u);
  EXPECT_EQ(bm.chip_valid_pages(0), 2u);
  EXPECT_EQ(bm.chip_valid_pages(1), 1u);
  bm.remove_valid(a);
  EXPECT_EQ(bm.valid_pages(a), 1u);
  EXPECT_EQ(bm.chip_valid_pages(0), 1u);
}

TEST(BlockManager, VictimSelectionGreedy) {
  BlockManager bm(1, 4, 16);
  // Block 0: 16 written, 10 valid (6 invalid). Block 1: 16 written, 2 valid.
  for (const auto& [block, valid] : std::vector<std::pair<std::uint32_t, int>>{{0, 10}, {1, 2}}) {
    const Result<std::uint32_t> id = bm.allocate(0, BlockUse::kActive, 0);
    ASSERT_TRUE(id.is_ok());
    ASSERT_EQ(id.value(), block);
    const nand::BlockAddress addr{0, block};
    for (int i = 0; i < 16; ++i) bm.add_written(addr);
    for (int i = 0; i < valid; ++i) bm.add_valid(addr);
    bm.set_use(addr, BlockUse::kFull);
  }
  const auto victim = bm.pick_victim(0);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 1u);
  EXPECT_EQ(bm.best_victim_gain(0), 14u);
}

TEST(BlockManager, VictimIgnoresNonFullAndFullyValidBlocks) {
  BlockManager bm(1, 4, 16);
  // An active block with invalid pages is not a victim.
  const Result<std::uint32_t> active = bm.allocate(0, BlockUse::kActive, 0);
  ASSERT_TRUE(active.is_ok());
  for (int i = 0; i < 8; ++i) bm.add_written({0, active.value()});
  EXPECT_FALSE(bm.pick_victim(0).has_value());
  // A full block with zero invalid pages is not a victim either.
  const Result<std::uint32_t> full = bm.allocate(0, BlockUse::kBackup, 0);
  ASSERT_TRUE(full.is_ok());
  const nand::BlockAddress addr{0, full.value()};
  for (int i = 0; i < 16; ++i) {
    bm.add_written(addr);
    bm.add_valid(addr);
  }
  bm.set_use(addr, BlockUse::kFull);
  EXPECT_FALSE(bm.pick_victim(0).has_value());
  EXPECT_EQ(bm.best_victim_gain(0), 0u);
}

TEST(BlockManager, ReleaseRecyclesInFifoOrder) {
  BlockManager bm(1, 3, 4);
  const auto a = bm.allocate(0, BlockUse::kActive, 0);
  const auto b = bm.allocate(0, BlockUse::kActive, 0);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  bm.release({0, a.value()});
  bm.release({0, b.value()});
  // Remaining fresh block first, then the released ones in release order.
  EXPECT_EQ(bm.allocate(0, BlockUse::kActive, 0).value(), 2u);
  EXPECT_EQ(bm.allocate(0, BlockUse::kActive, 0).value(), a.value());
  EXPECT_EQ(bm.allocate(0, BlockUse::kActive, 0).value(), b.value());
}

}  // namespace
}  // namespace rps::ftl
