// Static wear leveling: cold blocks are pulled back into circulation when
// their wear trails the chip's hottest block by the configured threshold.
#include <gtest/gtest.h>

#include "src/ftl/page_ftl.hpp"
#include "src/util/random.hpp"

namespace rps::ftl {
namespace {

/// Fill the device, then hammer a small hot range so that blocks holding
/// the cold majority stop cycling entirely.
template <typename Ftl>
void skewed_workload(Ftl& ftl, int rounds, bool idle_between) {
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0).is_ok());
  Rng rng(21);
  const Lpn hot_span = n / 8;
  for (int i = 0; i < rounds; ++i) {
    ASSERT_TRUE(ftl.write(rng.next_below(hot_span), 0).is_ok());
    if (idle_between && i % 200 == 199) {
      const Microseconds t = ftl.device().all_idle_at();
      ftl.on_idle(t, t + 30'000'000);
    }
  }
}

TEST(WearLeveling, DisabledByDefaultLetsWearDiverge) {
  PageFtl ftl(FtlConfig::tiny());
  skewed_workload(ftl, 8000, /*idle_between=*/true);
  const nand::NandDevice::WearStats wear = ftl.device().wear_stats();
  // Cold blocks never cycle: the spread grows with the hot traffic.
  EXPECT_GT(wear.max_erases - wear.min_erases, 8u);
}

TEST(WearLeveling, ThresholdBoundsTheSpread) {
  FtlConfig config = FtlConfig::tiny();
  config.wear_level_threshold = 4;
  PageFtl ftl(config);
  skewed_workload(ftl, 8000, /*idle_between=*/true);
  const nand::NandDevice::WearStats wear = ftl.device().wear_stats();
  // Leveling runs once per idle window; between windows the hot blocks
  // gain roughly writes_per_gap / pages_per_block / chips erases, so the
  // spread is bounded by threshold + that growth + slack.
  const std::uint64_t growth_per_gap =
      200 / ftl.config().geometry.pages_per_block() /
      ftl.config().geometry.num_chips() * 4;  // GC amplification headroom
  EXPECT_LE(wear.max_erases - wear.min_erases, 4u + growth_per_gap + 4u);
  EXPECT_TRUE(ftl.check_consistency());
}

TEST(WearLeveling, NeedsIdleTimeToAct) {
  FtlConfig config = FtlConfig::tiny();
  config.wear_level_threshold = 4;
  PageFtl ftl(config);
  skewed_workload(ftl, 8000, /*idle_between=*/false);  // never idle
  const nand::NandDevice::WearStats wear = ftl.device().wear_stats();
  EXPECT_GT(wear.max_erases - wear.min_erases, 4u + 3u);
}

TEST(WearLeveling, DataSurvivesMigration) {
  FtlConfig config = FtlConfig::tiny();
  config.wear_level_threshold = 3;
  PageFtl ftl(config);
  const Lpn n = ftl.exported_pages();
  // Cold data with known payloads in the upper half.
  for (Lpn lpn = 0; lpn < n; ++lpn) {
    ASSERT_TRUE(ftl.write_data(lpn, {static_cast<std::uint8_t>(lpn), 0x5a}, 0).is_ok());
  }
  Rng rng(5);
  for (int i = 0; i < 6000; ++i) {
    ASSERT_TRUE(ftl.write(rng.next_below(n / 8), 0).is_ok());
    if (i % 200 == 199) {
      const Microseconds t = ftl.device().all_idle_at();
      ftl.on_idle(t, t + 30'000'000);
    }
  }
  for (Lpn lpn = n / 2; lpn < n; ++lpn) {
    const Result<nand::PageData> data = ftl.read_data(lpn, 0);
    ASSERT_TRUE(data.is_ok()) << lpn;
    EXPECT_EQ(data.value().bytes,
              (std::vector<std::uint8_t>{static_cast<std::uint8_t>(lpn), 0x5a}))
        << lpn;
  }
  EXPECT_TRUE(ftl.check_consistency());
}

}  // namespace
}  // namespace rps::ftl
