// BadBlockTable unit tests: factory-scan determinism, remap/reverse
// round-trips under random grown-bad sequences, spare exhaustion and
// retirement, and the FTL-level retire flow (capacity attrition).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "src/ftl/page_ftl.hpp"
#include "src/nand/bad_block.hpp"
#include "src/nand/device.hpp"

namespace rps::nand {
namespace {

BadBlockConfig spares_only(std::uint32_t spares) {
  BadBlockConfig c;
  c.spare_blocks_per_unit = spares;
  return c;
}

TEST(BadBlockTable, DisabledIsIdentity) {
  const BadBlockTable table({}, /*units=*/4, /*blocks_per_unit=*/16);
  EXPECT_FALSE(table.enabled());
  EXPECT_EQ(table.visible_blocks(), 16u);
  for (std::uint32_t u = 0; u < 4; ++u) {
    for (std::uint32_t b = 0; b < 16; ++b) {
      EXPECT_EQ(table.translate(u, b), b);
      ASSERT_TRUE(table.reverse(u, b).has_value());
      EXPECT_EQ(*table.reverse(u, b), b);
      EXPECT_FALSE(table.is_retired(u, b));
    }
  }
  EXPECT_EQ(table.counters().factory_bad, 0u);
}

TEST(BadBlockTable, SparesShrinkVisibleRange) {
  const BadBlockTable table(spares_only(4), 2, 16);
  EXPECT_EQ(table.visible_blocks(), 12u);
  EXPECT_EQ(table.spares_remaining(0), 4u);
  EXPECT_EQ(table.spares_remaining(1), 4u);
  // Unmapped spares have no visible address.
  EXPECT_FALSE(table.reverse(0, 12).has_value());
  EXPECT_FALSE(table.reverse(0, 15).has_value());
}

TEST(BadBlockTable, FactoryScanIsDeterministic) {
  BadBlockConfig c = spares_only(8);
  c.factory_bad_ppm = 200'000;  // 20%: plenty of marks in 64 blocks
  const BadBlockTable a(c, 4, 64);
  const BadBlockTable b(c, 4, 64);
  EXPECT_GT(a.counters().factory_bad, 0u);
  EXPECT_EQ(a.counters().factory_bad, b.counters().factory_bad);
  for (std::uint32_t u = 0; u < 4; ++u) {
    EXPECT_EQ(a.spares_remaining(u), b.spares_remaining(u));
    for (std::uint32_t blk = 0; blk < a.visible_blocks(); ++blk) {
      EXPECT_EQ(a.translate(u, blk), b.translate(u, blk));
      EXPECT_EQ(a.is_retired(u, blk), b.is_retired(u, blk));
    }
  }
  // A different seed draws a different defect pattern (overwhelmingly).
  c.seed ^= 0x1234567ull;
  const BadBlockTable other(c, 4, 64);
  EXPECT_NE(a.counters().factory_bad, other.counters().factory_bad);
}

TEST(BadBlockTable, RemapRedirectsToSpareAndBack) {
  BadBlockTable table(spares_only(2), 1, 8);
  ASSERT_EQ(table.visible_blocks(), 6u);
  const auto spare = table.remap(0, 3, BadBlockCause::kEraseFailure);
  ASSERT_TRUE(spare.has_value());
  EXPECT_GE(*spare, 6u);
  EXPECT_EQ(table.translate(0, 3), *spare);
  ASSERT_TRUE(table.reverse(0, *spare).has_value());
  EXPECT_EQ(*table.reverse(0, *spare), 3u);
  // The dead physical block no longer reverse-translates.
  EXPECT_FALSE(table.reverse(0, 3).has_value());
  EXPECT_EQ(table.counters().grown_bad, 1u);
  EXPECT_EQ(table.counters().remapped, 1u);
}

TEST(BadBlockTable, ExhaustedPoolRetires) {
  BadBlockTable table(spares_only(1), 1, 8);
  ASSERT_TRUE(table.remap(0, 0, BadBlockCause::kEraseFailure).has_value());
  EXPECT_FALSE(table.has_spare(0));
  const auto none = table.remap(0, 1, BadBlockCause::kEraseFailure);
  EXPECT_FALSE(none.has_value());
  EXPECT_TRUE(table.is_retired(0, 1));
  EXPECT_FALSE(table.is_retired(0, 0));
  EXPECT_EQ(table.counters().retired, 1u);
  // A retired visible address never reverse-resolves.
  EXPECT_FALSE(table.reverse(0, table.translate(0, 1)).has_value());
}

// Property: under any random grown-bad sequence, translate/reverse stay
// exact inverses over the live (non-retired) visible range, no physical
// block backs two visible addresses, and a remapped-away physical block
// is never handed out again.
TEST(BadBlockTable, RemapReverseRoundTripProperty) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 20; ++round) {
    const std::uint32_t blocks = 32;
    const std::uint32_t spares = 1 + static_cast<std::uint32_t>(rng() % 8);
    BadBlockConfig c = spares_only(spares);
    c.seed = rng();
    BadBlockTable table(c, 2, blocks);
    const std::uint32_t visible = table.visible_blocks();
    for (int step = 0; step < 40; ++step) {
      const auto unit = static_cast<std::uint32_t>(rng() % 2);
      const auto block = static_cast<std::uint32_t>(rng() % visible);
      if (table.is_retired(unit, block)) continue;
      table.remap(unit, block, BadBlockCause::kProgramFailure);

      for (std::uint32_t u = 0; u < 2; ++u) {
        std::set<std::uint32_t> backing;
        for (std::uint32_t v = 0; v < visible; ++v) {
          const std::uint32_t physical = table.translate(u, v);
          ASSERT_LT(physical, blocks);
          if (table.is_retired(u, v)) {
            EXPECT_FALSE(table.reverse(u, physical).has_value());
            continue;
          }
          // Inverse round-trip and injectivity over live addresses.
          ASSERT_TRUE(table.reverse(u, physical).has_value());
          EXPECT_EQ(*table.reverse(u, physical), v);
          EXPECT_TRUE(backing.insert(physical).second)
              << "physical block " << physical << " backs two visible blocks";
        }
      }
    }
  }
}

TEST(BadBlockTable, EnduranceLimitsAreJitteredAroundMean) {
  BadBlockConfig c = spares_only(2);
  c.erase_endurance = 1000;
  c.endurance_jitter_pct = 25;
  const BadBlockTable table(c, 1, 64);
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (std::uint32_t b = 0; b < 64; ++b) {
    const std::uint64_t limit = table.endurance_limit(0, b);
    EXPECT_GE(limit, 750u);
    EXPECT_LE(limit, 1250u);
    lo = std::min(lo, limit);
    hi = std::max(hi, limit);
  }
  EXPECT_LT(lo, hi);  // the draw actually spreads
  // Unlimited endurance when the knob is off.
  const BadBlockTable off(spares_only(2), 1, 64);
  EXPECT_EQ(off.endurance_limit(0, 0), UINT64_MAX);
}

// Device-level: an erase hitting its endurance limit transparently remaps
// while spares last, then surfaces kBlockBad.
TEST(BadBlockDevice, EraseFailureRemapsThenRetires) {
  Geometry g = Geometry::tiny();
  BadBlockConfig c = spares_only(1);
  c.erase_endurance = 3;
  c.endurance_jitter_pct = 0;
  NandDevice device(g, TimingSpec::paper(), SequenceKind::kRps, c);
  ASSERT_EQ(device.visible_blocks(), g.blocks_per_chip - 1);

  std::uint64_t remapped = 0, retired = 0;
  device.set_bad_block_listener([&](const BadBlockEvent& event) {
    if (event.new_physical < 0) ++retired; else ++remapped;
  });

  const BlockAddress addr{0, 0};
  Microseconds now = 0;
  // Limit 3 with zero jitter: erases 1..3 succeed on the original block.
  for (int i = 0; i < 3; ++i) {
    const auto timing = device.erase(addr, now);
    ASSERT_TRUE(timing.is_ok());
    now = timing.value().complete;
  }
  // Erase 4 trips the limit, remaps to the fresh spare, and succeeds there.
  const auto remap_erase = device.erase(addr, now);
  ASSERT_TRUE(remap_erase.is_ok());
  now = remap_erase.value().complete;
  EXPECT_EQ(remapped, 1u);
  EXPECT_EQ(device.bad_blocks().counters().grown_bad, 1u);
  // The spare wears out too; with the pool dry the address retires.
  for (int i = 0; i < 2; ++i) {
    const auto timing = device.erase(addr, now);
    ASSERT_TRUE(timing.is_ok());
    now = timing.value().complete;
  }
  const auto dead = device.erase(addr, now);
  ASSERT_FALSE(dead.is_ok());
  EXPECT_EQ(dead.code(), ErrorCode::kBlockBad);
  EXPECT_EQ(retired, 1u);
  EXPECT_TRUE(device.bad_blocks().is_retired(0, 0));
  // Every later touch of the retired address fails fast.
  EXPECT_EQ(device.erase(addr, now).code(), ErrorCode::kBlockBad);
}

// FTL-level: a worn-out GC victim is retired from the BlockManager
// (capacity attrition) and the FTL keeps serving writes.
TEST(BadBlockFtl, RetiredBlocksLeaveThePoolsAndWritesContinue) {
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  config.overprovisioning = 0.25;
  config.bad_blocks.spare_blocks_per_unit = 1;
  config.bad_blocks.erase_endurance = 40;
  config.bad_blocks.endurance_jitter_pct = 25;
  ftl::PageFtl ftl(config);

  const Lpn pages = ftl.exported_pages();
  Microseconds now = 0;
  std::mt19937_64 rng(11);
  std::uint64_t writes_ok = 0;
  for (int i = 0; i < 30'000; ++i) {
    const Lpn lpn = rng() % pages;
    const auto op = ftl.write(lpn, now);
    // Attrition eventually wins on this tiny device (endurance 40 bounds
    // its total erase budget); the point is that writes keep landing long
    // past the first remaps and that the books balance when it ends.
    if (!op.is_ok()) break;
    ++writes_ok;
    now = op.value().complete;
  }
  EXPECT_GT(writes_ok, 2'000u);
  EXPECT_GT(ftl.stats().remapped_blocks, 0u);
  EXPECT_EQ(ftl.stats().remapped_blocks,
            ftl.device().bad_blocks().counters().remapped);
  EXPECT_TRUE(ftl.check_consistency());
  // Retirement bookkeeping matches between device table and BlockManager.
  std::uint64_t manager_retired = 0;
  for (std::uint32_t u = 0; u < ftl.device().geometry().num_units(); ++u) {
    manager_retired += ftl.blocks().retired_blocks(u);
  }
  EXPECT_EQ(manager_retired, ftl.device().bad_blocks().counters().retired);
}

}  // namespace
}  // namespace rps::nand
