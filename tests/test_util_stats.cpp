#include "src/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/random.hpp"

namespace rps {
namespace {

TEST(StreamingStats, EmptyIsSane) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeMatchesDirect) {
  Rng rng(5);
  StreamingStats direct;
  StreamingStats a;
  StreamingStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    direct.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), direct.count());
  EXPECT_NEAR(a.mean(), direct.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), direct.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), direct.min());
  EXPECT_DOUBLE_EQ(a.max(), direct.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a;
  a.add(1.0);
  StreamingStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(SampleSet, PercentilesOfKnownData) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(25), 25.75, 1e-9);
  EXPECT_NEAR(s.percentile(75), 75.25, 1e-9);
}

TEST(SampleSet, SingleSample) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.0);
}

TEST(SampleSet, InsertAfterQueryResorts) {
  SampleSet s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
}

TEST(SampleSet, BoxPlot) {
  SampleSet s;
  for (int i = 0; i <= 8; ++i) s.add(i);
  const BoxPlot box = s.box_plot();
  EXPECT_DOUBLE_EQ(box.min, 0.0);
  EXPECT_DOUBLE_EQ(box.median, 4.0);
  EXPECT_DOUBLE_EQ(box.max, 8.0);
  EXPECT_DOUBLE_EQ(box.mean, 4.0);
  EXPECT_EQ(box.count, 9u);
  EXPECT_DOUBLE_EQ(box.q1, 2.0);
  EXPECT_DOUBLE_EQ(box.q3, 6.0);
}

TEST(SampleSet, CdfAt) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(99.0), 1.0);
}

TEST(SampleSet, CdfCurveMonotonic) {
  Rng rng(3);
  SampleSet s;
  for (int i = 0; i < 500; ++i) s.add(rng.normal(10.0, 3.0));
  const auto curve = s.cdf_curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_DOUBLE_EQ(h.bin_low(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_high(5), 6.0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 10);
  h.add(0.75, 5);
  EXPECT_EQ(h.bin_count(0), 10u);
  EXPECT_EQ(h.bin_count(1), 5u);
  EXPECT_EQ(h.total(), 15u);
}

TEST(Histogram, AsciiRenderNonEmpty) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.1);
  h.add(0.9);
  const std::string art = h.to_ascii(20);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace rps
