// Direct coverage of the TLC device layer (blocks, chips, the device) —
// timing of the three passes, constraint enforcement at the device
// boundary, and the TLC power-loss matrix.
#include "src/nand/tlc_device.hpp"

#include <gtest/gtest.h>

namespace rps::nand {
namespace {

TlcGeometry tiny_geometry() {
  return TlcGeometry{.channels = 1,
                     .chips_per_channel = 2,
                     .blocks_per_chip = 4,
                     .wordlines_per_block = 4,
                     .page_size_bytes = 512};
}

TEST(TlcBlockModel, PassFrontiers) {
  TlcBlock block(4, TlcSequenceKind::kRps);
  ASSERT_TRUE(block.next_in_pass(TlcPageType::kLsb).has_value());
  EXPECT_EQ(block.next_in_pass(TlcPageType::kLsb)->wordline, 0u);
  // CSB frontier closed until LSB(1) exists (T4).
  EXPECT_FALSE(block.next_in_pass(TlcPageType::kCsb).has_value());
  ASSERT_TRUE(block.program({0, TlcPageType::kLsb}, {}).is_ok());
  ASSERT_TRUE(block.program({1, TlcPageType::kLsb}, {}).is_ok());
  ASSERT_TRUE(block.next_in_pass(TlcPageType::kCsb).has_value());
  // MSB frontier closed until CSB(1) exists (T5).
  EXPECT_FALSE(block.next_in_pass(TlcPageType::kMsb).has_value());
}

TEST(TlcBlockModel, FullLifecycleAndErase) {
  TlcBlock block(4, TlcSequenceKind::kRps);
  for (const TlcPagePos pos : tlc_rps_full_order(4)) {
    ASSERT_TRUE(block.program(pos, {}).is_ok()) << pos.wordline;
  }
  EXPECT_TRUE(block.is_fully_programmed());
  EXPECT_EQ(block.programmed_in_pass(TlcPageType::kCsb), 4u);
  block.erase();
  EXPECT_TRUE(block.is_erased());
  EXPECT_EQ(block.erase_count(), 1u);
  EXPECT_EQ(block.read({0, TlcPageType::kLsb}).code(), ErrorCode::kNotProgrammed);
}

TEST(TlcChipModel, PassLatencies) {
  const TlcTimingSpec timing = TlcTimingSpec::nominal();
  TlcChip chip(2, 4, TlcSequenceKind::kRps, timing);
  const auto lsb = chip.program(0, {0, TlcPageType::kLsb}, {}, 0);
  ASSERT_TRUE(lsb.is_ok());
  EXPECT_EQ(lsb.value().busy_time(), timing.program_lsb_us);
  ASSERT_TRUE(chip.program(0, {1, TlcPageType::kLsb}, {}, 0).is_ok());
  const auto csb = chip.program(0, {0, TlcPageType::kCsb}, {}, 0);
  ASSERT_TRUE(csb.is_ok());
  EXPECT_EQ(csb.value().busy_time(), timing.program_csb_us);
  ASSERT_TRUE(chip.program(0, {2, TlcPageType::kLsb}, {}, 0).is_ok());
  ASSERT_TRUE(chip.program(0, {1, TlcPageType::kCsb}, {}, 0).is_ok());
  const auto msb = chip.program(0, {0, TlcPageType::kMsb}, {}, 0);
  ASSERT_TRUE(msb.is_ok());
  EXPECT_EQ(msb.value().busy_time(), timing.program_msb_us);
}

TEST(TlcChipModel, RejectsIllegalOrderWithoutTimelineChange) {
  TlcChip chip(2, 4, TlcSequenceKind::kRps, TlcTimingSpec::nominal());
  EXPECT_FALSE(chip.program(0, {0, TlcPageType::kCsb}, {}, 0).is_ok());
  EXPECT_EQ(chip.busy_until(), 0);
}

TEST(TlcChipModel, PowerLossDuringCsbKillsLsbOnly) {
  TlcChip chip(2, 4, TlcSequenceKind::kRps, TlcTimingSpec::nominal());
  ASSERT_TRUE(chip.program(0, {0, TlcPageType::kLsb}, {}, 0).is_ok());
  ASSERT_TRUE(chip.program(0, {1, TlcPageType::kLsb}, {}, 0).is_ok());
  const auto csb = chip.program(0, {0, TlcPageType::kCsb}, {}, 0);
  ASSERT_TRUE(csb.is_ok());
  const auto victim = chip.apply_power_loss(csb.value().complete - 50);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->pos.type, TlcPageType::kCsb);
  EXPECT_EQ(chip.block(0).read({0, TlcPageType::kLsb}).code(),
            ErrorCode::kEccUncorrectable);
  EXPECT_TRUE(chip.block(0).read({1, TlcPageType::kLsb}).is_ok());
}

TEST(TlcChipModel, PowerLossDuringMsbKillsBothLowerPages) {
  TlcChip chip(2, 4, TlcSequenceKind::kRps, TlcTimingSpec::nominal());
  for (std::uint32_t k = 0; k < 3; ++k) {
    ASSERT_TRUE(chip.program(0, {k, TlcPageType::kLsb}, {}, 0).is_ok());
  }
  ASSERT_TRUE(chip.program(0, {0, TlcPageType::kCsb}, {}, 0).is_ok());
  ASSERT_TRUE(chip.program(0, {1, TlcPageType::kCsb}, {}, 0).is_ok());
  const auto msb = chip.program(0, {0, TlcPageType::kMsb}, {}, 0);
  ASSERT_TRUE(msb.is_ok());
  ASSERT_TRUE(chip.apply_power_loss(msb.value().complete - 50).has_value());
  EXPECT_EQ(chip.block(0).read({0, TlcPageType::kLsb}).code(),
            ErrorCode::kEccUncorrectable);
  EXPECT_EQ(chip.block(0).read({0, TlcPageType::kCsb}).code(),
            ErrorCode::kEccUncorrectable);
  EXPECT_TRUE(chip.block(0).read({1, TlcPageType::kLsb}).is_ok());
  EXPECT_TRUE(chip.block(0).read({1, TlcPageType::kCsb}).is_ok());
}

TEST(TlcDeviceModel, ChannelBusSerialization) {
  TlcDevice dev(tiny_geometry(), TlcTimingSpec::nominal(), TlcSequenceKind::kRps);
  // Two chips share the single channel: the second transfer queues.
  const auto a = dev.program({0, 0, {0, TlcPageType::kLsb}}, {}, 0);
  const auto b = dev.program({1, 0, {0, TlcPageType::kLsb}}, {}, 0);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  EXPECT_EQ(b.value().start, TlcTimingSpec::nominal().transfer_us);
  // Cell programs overlap across chips.
  EXPECT_EQ(b.value().complete - a.value().complete,
            TlcTimingSpec::nominal().transfer_us);
}

TEST(TlcDeviceModel, ReadRoundTripAndCounters) {
  TlcDevice dev(tiny_geometry(), TlcTimingSpec::nominal(), TlcSequenceKind::kRps);
  PageData d;
  d.lpn = 9;
  ASSERT_TRUE(dev.program({0, 1, {0, TlcPageType::kLsb}}, d, 0).is_ok());
  const auto read = dev.read({0, 1, {0, TlcPageType::kLsb}}, 1000);
  ASSERT_TRUE(read.is_ok());
  ASSERT_TRUE(read.value().data.is_ok());
  EXPECT_EQ(read.value().data.value().lpn, 9u);
  ASSERT_TRUE(dev.erase(0, 1, 5000).is_ok());
  const OpCounters counters = dev.total_counters();
  EXPECT_EQ(counters.lsb_programs, 1u);
  EXPECT_EQ(counters.reads, 1u);
  EXPECT_EQ(dev.total_erase_count(), 1u);
}

TEST(TlcDeviceModel, OutOfRange) {
  TlcDevice dev(tiny_geometry(), TlcTimingSpec::nominal(), TlcSequenceKind::kRps);
  EXPECT_EQ(dev.program({9, 0, {0, TlcPageType::kLsb}}, {}, 0).code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ(dev.read({0, 9, {0, TlcPageType::kLsb}}, 0).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(dev.erase(0, 9, 0).code(), ErrorCode::kOutOfRange);
}

TEST(TlcDeviceModel, FpsDeviceRejectsRpsOnlyOrders) {
  TlcDevice dev(tiny_geometry(), TlcTimingSpec::nominal(), TlcSequenceKind::kFps);
  ASSERT_TRUE(dev.program({0, 0, {0, TlcPageType::kLsb}}, {}, 0).is_ok());
  ASSERT_TRUE(dev.program({0, 0, {1, TlcPageType::kLsb}}, {}, 0).is_ok());
  ASSERT_TRUE(dev.program({0, 0, {2, TlcPageType::kLsb}}, {}, 0).is_ok());
  // LSB(3) before MSB(0) violates T6 on a TLC-FPS device.
  EXPECT_EQ(dev.program({0, 0, {3, TlcPageType::kLsb}}, {}, 0).code(),
            ErrorCode::kSequenceViolation);
}

}  // namespace
}  // namespace rps::nand
