// The future-write predictor (the paper's conclusion): EWMA burst-size
// estimation and its effect on flexFTL's idle-time quota replenishment.
#include "src/core/write_predictor.hpp"

#include <gtest/gtest.h>

#include "src/core/flex_ftl.hpp"
#include "src/util/random.hpp"

namespace rps::core {
namespace {

TEST(WritePredictor, UnseededReportsNoPrediction) {
  const WritePredictor p;
  EXPECT_FALSE(p.seeded());
  EXPECT_EQ(p.predicted_demand(), -1);
}

TEST(WritePredictor, FirstObservationSeedsEwma) {
  WritePredictor p;
  p.observe_burst(100);
  EXPECT_TRUE(p.seeded());
  EXPECT_DOUBLE_EQ(p.ewma(), 100.0);
  EXPECT_EQ(p.peak(), 100u);
}

TEST(WritePredictor, EwmaTracksRecentBursts) {
  WritePredictor p(0.5);
  p.observe_burst(100);
  p.observe_burst(200);
  EXPECT_DOUBLE_EQ(p.ewma(), 150.0);
  p.observe_burst(200);
  EXPECT_DOUBLE_EQ(p.ewma(), 175.0);
}

TEST(WritePredictor, PredictionHasTwoXHeadroom) {
  WritePredictor p(0.5);
  p.observe_burst(100);
  EXPECT_EQ(p.predicted_demand(), 201);
  p.observe_burst(400);
  // EWMA 250 -> padded 501.
  EXPECT_EQ(p.predicted_demand(), 501);
}

TEST(WritePredictor, StablePatternConvergesToTwiceBurst) {
  WritePredictor p(0.3);
  for (int i = 0; i < 50; ++i) p.observe_burst(64);
  EXPECT_NEAR(p.ewma(), 64.0, 1e-6);
  EXPECT_EQ(p.predicted_demand(), 129);
}

TEST(WritePredictor, ForgetsAnInitialOutlier) {
  // The first observation after boot is the whole preconditioning fill;
  // a steady rhythm of small bursts must pull the prediction back down.
  WritePredictor p(0.3);
  p.observe_burst(100'000);
  for (int i = 0; i < 30; ++i) p.observe_burst(8);
  EXPECT_LT(p.predicted_demand(), 64);
}

TEST(FlexFtlPredictor, BoundsIdleQuotaReplenishment) {
  // Isolate the quota-replenishment loop (base free-space BGC disabled):
  // after a run of small observed bursts, the quota already covers the
  // predicted demand, so a long idle does NO quota GC with the predictor
  // on — and plenty with it off (it chases the static ceiling).
  auto run = [](bool use_predictor) {
    ftl::FtlConfig config = ftl::FtlConfig::tiny();
    config.use_write_predictor = use_predictor;
    config.bgc_free_threshold = 0.0;  // isolate the quota loop
    config.overprovisioning = 0.5;
    FlexFtl ftl(config);
    const Lpn n = ftl.exported_pages();
    for (Lpn lpn = 0; lpn < n; ++lpn) (void)ftl.write(lpn, 0, 0.5);
    Rng rng(3);
    // Churn creates invalid pages so the quota loop has victims.
    for (int i = 0; i < 400; ++i) (void)ftl.write(rng.next_below(n), 0, 0.5);
    // Small bursts with short idles: the predictor observes a rhythm of
    // 8-page bursts but the windows are too short for any GC.
    for (int cycle = 0; cycle < 12; ++cycle) {
      for (int i = 0; i < 8; ++i) (void)ftl.write(rng.next_below(n), 0, 0.95);
      const Microseconds t = ftl.device().all_idle_at();
      ftl.on_idle(t, t + 2'000);  // shorter than the spill guard
    }
    // One long idle: measure the quota loop's relocation work alone.
    const std::uint64_t copies_before = ftl.stats().gc_copy_pages;
    const Microseconds t = ftl.device().all_idle_at();
    ftl.on_idle(t, t + 400'000'000);
    return ftl.stats().gc_copy_pages - copies_before;
  };
  const std::uint64_t copies_off = run(false);
  const std::uint64_t copies_on = run(true);
  EXPECT_GT(copies_off, 0u);
  EXPECT_EQ(copies_on, 0u);  // quota (well above 17) already covers demand
}

TEST(FlexFtlPredictor, StillAbsorbsTheObservedBurstSize) {
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  config.use_write_predictor = true;
  config.bgc_free_threshold = 0.4;  // see BoundsIdleQuotaReplenishment
  config.overprovisioning = 0.5;
  FlexFtl ftl(config);
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) (void)ftl.write(lpn, 0, 0.5);
  Rng rng(5);
  for (int cycle = 0; cycle < 8; ++cycle) {
    std::uint64_t lsb_before = ftl.stats().host_lsb_writes;
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(ftl.write(rng.next_below(n), 0, 0.95).is_ok());
    }
    const Microseconds t = ftl.device().all_idle_at();
    ftl.on_idle(t, t + 400'000'000);
    if (cycle >= 2) {
      // Once seeded, the recurring burst is still served (almost) entirely
      // at LSB speed — block-pool feedback may divert the odd write.
      EXPECT_GE(ftl.stats().host_lsb_writes - lsb_before, 14u) << "cycle " << cycle;
    }
  }
  EXPECT_TRUE(ftl.check_consistency());
}

}  // namespace
}  // namespace rps::core
