// Warm-start differential lockdown: a trial forked from a steady-state
// snapshot must be bit-identical to one that ran its own fill phase.
//
// Three layers, mirroring how snapshots are consumed:
//   - sim::run_experiment with a precondition snapshot vs a cold run:
//     identical SimResult counters and identical mergeable latency
//     histograms for every FTL kind;
//   - faultsim::run_trial forked from a WarmStart vs cold: identical
//     CrashReports, across a 16-seed sweep;
//   - faultsim::sweep_matrix digests: cold vs warm and --jobs 1/2/8 all
//     equal (the bench_simcore / CI snapshot-smoke invariant).
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/faultsim/harness.hpp"
#include "src/faultsim/sweep.hpp"
#include "src/sim/runner.hpp"
#include "src/sim/snapshot.hpp"

namespace rps {
namespace {

using faultsim::FaultSimConfig;
using faultsim::WarmStart;

sim::ExperimentSpec quick_spec() {
  sim::ExperimentSpec spec;
  spec.ftl_config = ftl::FtlConfig::tiny();
  spec.requests = 600;
  spec.seed = 11;
  return spec;
}

void expect_results_equal(const sim::SimResult& cold, const sim::SimResult& warm,
                          const std::string& label) {
  EXPECT_EQ(cold.requests, warm.requests) << label;
  EXPECT_EQ(cold.pages_read, warm.pages_read) << label;
  EXPECT_EQ(cold.pages_written, warm.pages_written) << label;
  EXPECT_EQ(cold.read_errors, warm.read_errors) << label;
  EXPECT_EQ(cold.makespan_us, warm.makespan_us) << label;
  EXPECT_EQ(cold.busy_us, warm.busy_us) << label;
  EXPECT_EQ(cold.idle_windows, warm.idle_windows) << label;
  EXPECT_EQ(cold.idle_time_us, warm.idle_time_us) << label;
  EXPECT_EQ(cold.erases, warm.erases) << label;
  EXPECT_EQ(cold.latency_hist_us, warm.latency_hist_us) << label;
  EXPECT_EQ(cold.write_bw_kbps, warm.write_bw_kbps) << label;
}

// Satellite: run_experiment forked from make_precondition_snapshot is
// bit-identical to the cold path, for every FTL kind and both engines.
TEST(WarmStartDifferential, RunExperimentColdVsFork) {
  for (const sim::FtlKind kind : sim::kAllFtls) {
    for (const sim::Engine engine :
         {sim::Engine::kController, sim::Engine::kLegacySync}) {
      sim::ExperimentSpec spec = quick_spec();
      spec.sim.engine = engine;
      const sim::SimResult cold =
          run_experiment(kind, workload::Preset::kVarmail, spec);
      const sim::Snapshot warm = sim::make_precondition_snapshot(kind, spec);
      const sim::SimResult forked = run_experiment(
          kind, workload::Preset::kVarmail, spec, nullptr, nullptr, &warm);
      expect_results_equal(cold, forked,
                           std::string(sim::to_string(kind)) + "/" +
                               (engine == sim::Engine::kController ? "controller"
                                                                   : "legacy"));
    }
  }
}

// One snapshot serves every preset: the fill phase never sees the
// workload, so forking the whole preset row from one capture matches
// per-cell cold preconditioning.
TEST(WarmStartDifferential, OneSnapshotServesAllPresets) {
  const sim::ExperimentSpec spec = quick_spec();
  const sim::Snapshot warm =
      sim::make_precondition_snapshot(sim::FtlKind::kFlex, spec);
  // OLTP and Varmail: both fit the tiny device (Fileserver's large
  // sequential writes outrun GC on 4 x 16-block chips even cold).
  for (const workload::Preset preset :
       {workload::Preset::kVarmail, workload::Preset::kOltp}) {
    const sim::SimResult cold = run_experiment(sim::FtlKind::kFlex, preset, spec);
    const sim::SimResult forked =
        run_experiment(sim::FtlKind::kFlex, preset, spec, nullptr, nullptr, &warm);
    expect_results_equal(cold, forked, workload::to_string(preset));
  }
}

// Satellite: faultsim trials forked from a WarmStart reproduce the cold
// CrashReport bit for bit, across 16 seeds (golden runs and crashed runs).
TEST(WarmStartDifferential, FaultsimTrialColdVsFork16Seeds) {
  FaultSimConfig base;
  const WarmStart warm = make_warm_start(base);
  ASSERT_FALSE(warm.empty());
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    FaultSimConfig config = base;
    config.seed = seed;
    const faultsim::TrialResult cold = run_trial(config);
    const faultsim::TrialResult forked = run_trial(config, nullptr, &warm);
    EXPECT_TRUE(cold.report == forked.report) << "seed " << seed;
    EXPECT_EQ(cold.boundaries, forked.boundaries) << "seed " << seed;

    // And the crashed variant: cut mid-flight at a golden boundary.
    if (cold.boundaries.size() > 4) {
      config.crash_time_us = cold.boundaries[cold.boundaries.size() / 2] - 1;
      const faultsim::TrialResult cold_crash = run_trial(config);
      const faultsim::TrialResult forked_crash = run_trial(config, nullptr, &warm);
      EXPECT_TRUE(cold_crash.report == forked_crash.report) << "seed " << seed;
    }
  }
}

/// Order-sensitive digest over every numeric field of a sweep matrix —
/// the same reduction bench_simcore pins.
std::uint64_t digest_matrix(const std::vector<faultsim::MatrixCell>& cells) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  for (const faultsim::MatrixCell& cell : cells) {
    mix(cell.seed);
    mix(cell.points);
    mix(cell.result.golden_boundaries);
    mix(cell.result.crashes_injected);
    mix(cell.result.total_victims);
    mix(cell.result.total_pages_lost);
    mix(cell.result.total_parity_recovered);
    mix(cell.result.replay_mismatches);
    mix(cell.result.failures.size());
  }
  return h;
}

// Satellite: the sweep matrix digests bit-identically cold vs warm and at
// --jobs 1, 2, and 8 — preconditioning once and forking trials changes
// nothing observable, at any parallelism.
TEST(WarmStartDifferential, SweepMatrixDigestColdVsWarmAcrossJobs) {
  FaultSimConfig base;
  faultsim::MatrixOptions options;
  options.seeds = 4;
  options.densities = {6};
  options.sweep.minimize = false;

  options.sweep.warm_start = false;
  options.jobs = 1;
  const std::uint64_t cold = digest_matrix(sweep_matrix(base, options));

  options.sweep.warm_start = true;
  std::vector<std::uint64_t> warm_digests;
  for (const std::uint32_t jobs : {1u, 2u, 8u}) {
    options.jobs = jobs;
    warm_digests.push_back(digest_matrix(sweep_matrix(base, options)));
  }
  for (const std::uint64_t digest : warm_digests) EXPECT_EQ(digest, cold);
}

// The WarmStart file round-trip feeds back into trials unchanged
// (faultsim --snapshot / --from-snapshot).
TEST(WarmStartDifferential, WarmStartFileRoundTrip) {
  FaultSimConfig base;
  const WarmStart warm = make_warm_start(base);
  const std::string path = testing::TempDir() + "rps_warm_start.bin";
  ASSERT_TRUE(warm.save_file(path));

  const std::optional<WarmStart> loaded = WarmStart::load_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->digest(), warm.digest());

  FaultSimConfig config = base;
  config.seed = 9;
  const faultsim::TrialResult cold = run_trial(config);
  const faultsim::TrialResult forked = run_trial(config, nullptr, &*loaded);
  EXPECT_TRUE(cold.report == forked.report);
  std::remove(path.c_str());
}

// A warm start made for one FTL must not silently feed a config for
// another: loaders reject the mismatch before any trial runs.
TEST(WarmStartDifferential, SnapshotKindMismatchIsRejected) {
  FaultSimConfig flex;  // kFlex default
  const WarmStart warm = make_warm_start(flex);
  std::unique_ptr<ftl::FtlBase> page =
      sim::make_ftl(sim::FtlKind::kPage, flex.ftl_config);
  EXPECT_FALSE(warm.ftl.restore(*page));
}

}  // namespace
}  // namespace rps
