// The host block-device adapter: sector addressing, read-modify-write for
// unaligned writes, zero-fill semantics, TRIM alignment rules.
#include "src/host/block_device.hpp"

#include <gtest/gtest.h>

#include "src/core/flex_ftl.hpp"
#include "src/ftl/page_ftl.hpp"
#include "src/util/random.hpp"

namespace rps::host {
namespace {

ftl::FtlConfig small_config() {
  ftl::FtlConfig c = ftl::FtlConfig::tiny();  // 512-byte pages
  return c;
}

std::vector<std::uint8_t> pattern(std::size_t bytes, std::uint8_t seed) {
  std::vector<std::uint8_t> data(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<std::uint8_t>(seed + i * 7);
  }
  return data;
}

TEST(BlockDevice, GeometryDerivation) {
  ftl::PageFtl ftl(small_config());
  BlockDevice dev(ftl, {.sector_bytes = 128});
  EXPECT_EQ(dev.sectors_per_page(), 4u);  // 512-byte pages
  EXPECT_EQ(dev.num_sectors(), ftl.exported_pages() * 4);
  EXPECT_EQ(dev.capacity_bytes(), ftl.exported_pages() * 512);
}

TEST(BlockDevice, AlignedWriteReadRoundTrip) {
  ftl::PageFtl ftl(small_config());
  BlockDevice dev(ftl, {.sector_bytes = 128});
  const std::vector<std::uint8_t> data = pattern(1024, 3);  // 2 full pages
  const Result<Microseconds> written = dev.write(4, data, 0);
  ASSERT_TRUE(written.is_ok());
  EXPECT_GT(written.value(), 0);
  EXPECT_EQ(dev.stats().rmw_cycles, 0u);  // aligned: no read-modify-write

  const auto read = dev.read(4, 8, written.value());
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().data, data);
}

TEST(BlockDevice, UnalignedWriteDoesReadModifyWrite) {
  ftl::PageFtl ftl(small_config());
  BlockDevice dev(ftl, {.sector_bytes = 128});
  // Prime a full page, then overwrite its middle two sectors.
  const std::vector<std::uint8_t> base = pattern(512, 1);
  ASSERT_TRUE(dev.write(0, base, 0).is_ok());
  const std::vector<std::uint8_t> patch = pattern(256, 9);
  const Result<Microseconds> written = dev.write(1, patch, 10'000);
  ASSERT_TRUE(written.is_ok());
  EXPECT_EQ(dev.stats().rmw_cycles, 1u);

  const auto read = dev.read(0, 4, written.value());
  ASSERT_TRUE(read.is_ok());
  std::vector<std::uint8_t> expected = base;
  std::copy(patch.begin(), patch.end(), expected.begin() + 128);
  EXPECT_EQ(read.value().data, expected);
}

TEST(BlockDevice, WriteSpanningPagesUnaligned) {
  ftl::PageFtl ftl(small_config());
  BlockDevice dev(ftl, {.sector_bytes = 128});
  // 6 sectors starting at sector 2: tail of page 0, all of page 1.
  const std::vector<std::uint8_t> data = pattern(768, 21);
  ASSERT_TRUE(dev.write(2, data, 0).is_ok());
  const auto read = dev.read(2, 6, 1'000'000);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().data, data);
  // Head page was partial (RMW); second page was full.
  EXPECT_EQ(dev.stats().rmw_cycles, 1u);
}

TEST(BlockDevice, UnwrittenRegionsReadZero) {
  ftl::PageFtl ftl(small_config());
  BlockDevice dev(ftl, {.sector_bytes = 128});
  const auto read = dev.read(40, 4, 0);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().data, std::vector<std::uint8_t>(512, 0));
  EXPECT_EQ(read.value().complete, 0);  // zero-fill: no device time
}

TEST(BlockDevice, ValidationErrors) {
  ftl::PageFtl ftl(small_config());
  BlockDevice dev(ftl, {.sector_bytes = 128});
  EXPECT_EQ(dev.write(0, {}, 0).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(dev.write(0, std::vector<std::uint8_t>(100, 0), 0).code(),
            ErrorCode::kInvalidArgument);  // not sector-aligned size
  EXPECT_EQ(dev.write(dev.num_sectors(), pattern(128, 0), 0).code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ(dev.read(0, 0, 0).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(dev.read(dev.num_sectors() - 1, 2, 0).code(), ErrorCode::kOutOfRange);
}

TEST(BlockDevice, TrimDiscardsOnlyWholePages) {
  ftl::PageFtl ftl(small_config());
  BlockDevice dev(ftl, {.sector_bytes = 128});
  ASSERT_TRUE(dev.write(0, pattern(512 * 3, 5), 0).is_ok());  // pages 0..2
  // Trim sectors 2..9: pages fully covered are 1 only (sectors 4..7).
  ASSERT_TRUE(dev.trim(2, 8).is_ok());
  EXPECT_TRUE(ftl.mapping().is_mapped(0));
  EXPECT_FALSE(ftl.mapping().is_mapped(1));
  EXPECT_TRUE(ftl.mapping().is_mapped(2));
}

TEST(BlockDevice, RandomizedIntegrityAgainstShadowCopy) {
  core::FlexFtl ftl(small_config());
  BlockDevice dev(ftl, {.sector_bytes = 128});
  const std::uint64_t sectors = dev.num_sectors() / 2;  // stay within capacity
  std::vector<std::uint8_t> shadow(sectors * 128, 0);
  Rng rng(77);
  Microseconds now = 0;
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t start = rng.next_below(sectors - 8);
    const std::uint64_t len = 1 + rng.next_below(8);
    if (rng.chance(0.6)) {
      const std::vector<std::uint8_t> data =
          pattern(len * 128, static_cast<std::uint8_t>(i));
      ASSERT_TRUE(dev.write(start, data, now, 0.5).is_ok());
      std::copy(data.begin(), data.end(),
                shadow.begin() + static_cast<std::ptrdiff_t>(start * 128));
    } else {
      const auto read = dev.read(start, len, now);
      ASSERT_TRUE(read.is_ok());
      const std::vector<std::uint8_t> expected(
          shadow.begin() + static_cast<std::ptrdiff_t>(start * 128),
          shadow.begin() + static_cast<std::ptrdiff_t>((start + len) * 128));
      ASSERT_EQ(read.value().data, expected) << "iteration " << i;
    }
    now += 3000;
  }
  EXPECT_TRUE(ftl.check_consistency());
}

}  // namespace
}  // namespace rps::host
