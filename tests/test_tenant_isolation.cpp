// Tenant isolation properties of the multi-queue frontend:
//   - N=1 is a pure re-plumbing: a single-tenant frontend (tenant 0 =
//     the default stream) commits exactly the placements the legacy
//     synchronous single-stream path commits, for all five FTLs — the
//     stream machinery must be invisible until a second tenant exists,
//   - nonzero write streams segregate: with per-tenant streams mapped to
//     distinct cursor slots, no active block ever holds two tenants'
//     pages (before GC ever runs), and every page's OOB spare word
//     carries its tenant's stream tag.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "src/host/multi_queue.hpp"
#include "src/host/tenant.hpp"
#include "src/nand/block.hpp"
#include "src/sim/runner.hpp"
#include "src/util/random.hpp"

namespace rps::host {
namespace {

struct Placement {
  Lpn lpn;
  nand::PageAddress addr;
  friend bool operator==(const Placement& a, const Placement& b) {
    return a.lpn == b.lpn && a.addr.chip == b.addr.chip &&
           a.addr.block == b.addr.block &&
           a.addr.pos.wordline == b.addr.pos.wordline &&
           a.addr.pos.type == b.addr.pos.type;
  }
};

struct SpacedOp {
  bool is_write;
  Lpn lpn;
  Microseconds arrival;
};

/// Single-page requests spaced far enough apart that the device is fully
/// idle at every arrival — the regime where the controller path is
/// provably placement-identical to the legacy path (see
/// test_differential.cpp), so any divergence here is the frontend's.
std::vector<SpacedOp> spaced_ops(Lpn space, std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<SpacedOp> ops;
  ops.reserve(count);
  Microseconds now = 1'000;
  for (std::size_t i = 0; i < count; ++i) {
    ops.push_back(SpacedOp{!rng.chance(0.2), rng.next_below(space), now});
    now += 100'000;  // >> any single-request service time on the tiny device
  }
  return ops;
}

/// The utilization the frontend reports for a lone 1-page write with
/// nothing else in flight.
double lone_write_utilization(const ftl::FtlBase& ftl) {
  return std::min(1.0, 1.0 / ftl.config().write_buffer_pages);
}

TEST(TenantIsolation, SingleTenantFrontendMatchesLegacyPlacements) {
  const ftl::FtlConfig config = ftl::FtlConfig::tiny();
  for (const sim::FtlKind kind : {sim::FtlKind::kPage, sim::FtlKind::kParity,
                                  sim::FtlKind::kRtf, sim::FtlKind::kFlex,
                                  sim::FtlKind::kSlc}) {
    auto legacy_ftl = sim::make_ftl(kind, config);
    const Lpn space = legacy_ftl->exported_pages();
    const std::vector<SpacedOp> ops = spaced_ops(space, 500, 17);

    // Legacy single-stream path at the same instants.
    std::vector<Placement> legacy;
    legacy_ftl->set_placement_observer([&](Lpn lpn, const nand::PageAddress& a) {
      legacy.push_back({lpn, a});
    });
    const double u = lone_write_utilization(*legacy_ftl);
    for (const SpacedOp& op : ops) {
      if (op.is_write) {
        ASSERT_TRUE(legacy_ftl->write(op.lpn, op.arrival, u).is_ok());
      } else {
        (void)legacy_ftl->read(op.lpn, op.arrival);
      }
    }

    // Same ops as a one-tenant frontend trace. Idle windows are disabled
    // on the frontend side because the legacy loop above offers none.
    auto ftl = sim::make_ftl(kind, config);
    std::vector<Placement> frontend_placements;
    ftl->set_placement_observer([&](Lpn lpn, const nand::PageAddress& a) {
      frontend_placements.push_back({lpn, a});
    });
    workload::Trace trace("n1");
    for (const SpacedOp& op : ops) {
      workload::IoRequest r;
      r.arrival_us = op.arrival;
      r.kind = op.is_write ? workload::IoKind::kWrite : workload::IoKind::kRead;
      r.lpn = op.lpn;
      r.page_count = 1;
      trace.add(r);
    }
    MultiQueueConfig mq;
    mq.idle_threshold_us = kTimeNever / 2;  // no idle windows
    MultiQueueFrontend frontend(*ftl, mq);
    TenantConfig tenant;  // id 0 -> stream 0 -> the default cursor slot
    frontend.add_tenant(tenant, std::move(trace));
    const MultiQueueResult result = frontend.run();

    ASSERT_EQ(result.tenants[0].completed, ops.size()) << sim::to_string(kind);
    ASSERT_FALSE(legacy.empty()) << sim::to_string(kind);
    EXPECT_EQ(frontend_placements, legacy) << sim::to_string(kind);
    EXPECT_TRUE(ftl->check_consistency()) << sim::to_string(kind);
  }
}

TEST(TenantIsolation, NonzeroStreamsSegregateActiveBlocks) {
  // Three tenants on explicit streams 1..3 (distinct cursor slots on the
  // default 4-slot budget), write-only, sized well under the fresh
  // device's free space so GC never runs: every programmed block must
  // belong to exactly one tenant, and every page's OOB tag must name its
  // tenant's stream.
  auto ftl = sim::make_ftl(sim::FtlKind::kPage, ftl::FtlConfig::tiny());
  const std::uint32_t kTenants = 3;
  const Lpn space = ftl->exported_pages();

  std::map<std::uint64_t, std::set<std::uint32_t>> block_owners;
  ftl->set_placement_observer([&](Lpn lpn, const nand::PageAddress& a) {
    const std::uint64_t key = (static_cast<std::uint64_t>(a.chip) << 32) | a.block;
    block_owners[key].insert(tenant_of_lpn(lpn, kTenants, space));
  });

  MultiQueueFrontend frontend(*ftl);
  for (std::uint32_t i = 0; i < kTenants; ++i) {
    TenantConfig t;
    t.id = i;
    t.stream = i + 1;  // explicit nonzero stream, distinct slot each
    t.read_fraction = 0.0;
    t.requests = 60;
    t.mean_interarrival_us = 400;
    const LpnPartition part = tenant_partition(i, kTenants, space);
    frontend.add_tenant(t, tenant_trace(t, part, /*base_seed=*/31));
  }
  const MultiQueueResult result = frontend.run();
  for (const TenantResult& t : result.tenants) {
    EXPECT_EQ(t.completed, t.submitted);
    EXPECT_GT(t.pages, 0u);
  }
  ASSERT_EQ(ftl->stats().foreground_gc_blocks + ftl->stats().background_gc_blocks,
            0u)
      << "sizing bug: GC ran, the pre-GC segregation property does not apply";

  ASSERT_FALSE(block_owners.empty());
  for (const auto& [key, owners] : block_owners) {
    EXPECT_EQ(owners.size(), 1u)
        << "chip " << (key >> 32) << " block " << (key & 0xffffffffu)
        << " holds pages of " << owners.size() << " tenants";
  }

  // OOB tags: every mapped page written by tenant i carries stream i+1.
  const Microseconds now = ftl->device().all_idle_at();
  std::uint64_t tagged = 0;
  for (Lpn lpn = 0; lpn < space; ++lpn) {
    const Result<nand::PageData> data = ftl->read_data(lpn, now);
    if (!data.is_ok()) continue;
    const std::uint32_t tag = nand::stream_of_spare(data.value().spare);
    if (tag == 0) continue;  // never written in this run
    EXPECT_EQ(tag, tenant_of_lpn(lpn, kTenants, space) + 1) << "lpn " << lpn;
    ++tagged;
  }
  EXPECT_GT(tagged, 0u);
}

}  // namespace
}  // namespace rps::host
