// The TLC generalization: constraint T6 is an over-specification exactly
// like MLC constraint 4 — every relaxed-TLC order exposes a word line to
// at most one aggressor program after its final pass, the same bound the
// conventional shadow sequence achieves.
#include "src/nand/tlc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace rps::nand {
namespace {

bool is_permutation_of_all_pages(const TlcProgramOrder& order, std::uint32_t wordlines) {
  std::set<std::uint32_t> seen;
  for (const TlcPagePos pos : order) seen.insert(pos.flat_index());
  return order.size() == static_cast<std::size_t>(wordlines) * 3 &&
         seen.size() == order.size();
}

TEST(TlcBlockState, PassProgression) {
  TlcBlockState s(4);
  EXPECT_FALSE(s.is_programmed({0, TlcPageType::kLsb}));
  s.mark_programmed({0, TlcPageType::kLsb});
  EXPECT_TRUE(s.is_programmed({0, TlcPageType::kLsb}));
  EXPECT_FALSE(s.is_programmed({0, TlcPageType::kCsb}));
  s.mark_programmed({0, TlcPageType::kCsb});
  s.mark_programmed({0, TlcPageType::kMsb});
  EXPECT_TRUE(s.is_programmed({0, TlcPageType::kMsb}));
  s.reset();
  EXPECT_EQ(s.passes(0), 0);
}

TEST(TlcLegality, PhysicalProgressionEnforced) {
  TlcBlockState s(4);
  // CSB before LSB of the same word line is physically impossible.
  EXPECT_EQ(check_tlc_program_legality(s, {0, TlcPageType::kCsb},
                                       TlcSequenceKind::kUnconstrained)
                .code(),
            ErrorCode::kNotErased);
  s.mark_programmed({0, TlcPageType::kLsb});
  EXPECT_EQ(check_tlc_program_legality(s, {0, TlcPageType::kLsb},
                                       TlcSequenceKind::kUnconstrained)
                .code(),
            ErrorCode::kAlreadyProgrammed);
}

TEST(TlcLegality, T4RequiresNextLsbBeforeCsb) {
  TlcBlockState s(4);
  s.mark_programmed({0, TlcPageType::kLsb});
  EXPECT_EQ(check_tlc_program_legality(s, {0, TlcPageType::kCsb},
                                       TlcSequenceKind::kRps)
                .code(),
            ErrorCode::kSequenceViolation);
  s.mark_programmed({1, TlcPageType::kLsb});
  EXPECT_TRUE(check_tlc_program_legality(s, {0, TlcPageType::kCsb},
                                         TlcSequenceKind::kRps)
                  .is_ok());
}

TEST(TlcLegality, T5RequiresNextCsbBeforeMsb) {
  TlcBlockState s(4);
  for (std::uint32_t k = 0; k < 3; ++k) s.mark_programmed({k, TlcPageType::kLsb});
  s.mark_programmed({0, TlcPageType::kCsb});
  EXPECT_EQ(check_tlc_program_legality(s, {0, TlcPageType::kMsb},
                                       TlcSequenceKind::kRps)
                .code(),
            ErrorCode::kSequenceViolation);
  s.mark_programmed({1, TlcPageType::kCsb});
  EXPECT_TRUE(check_tlc_program_legality(s, {0, TlcPageType::kMsb},
                                         TlcSequenceKind::kRps)
                  .is_ok());
}

TEST(TlcLegality, T6OnlyUnderFps) {
  // The over-specified constraint: LSB(3) before MSB(0) exists.
  TlcBlockState s(6);
  for (std::uint32_t k = 0; k < 3; ++k) s.mark_programmed({k, TlcPageType::kLsb});
  EXPECT_EQ(check_tlc_program_legality(s, {3, TlcPageType::kLsb},
                                       TlcSequenceKind::kFps)
                .code(),
            ErrorCode::kSequenceViolation);
  EXPECT_TRUE(check_tlc_program_legality(s, {3, TlcPageType::kLsb},
                                         TlcSequenceKind::kRps)
                  .is_ok());
}

TEST(TlcCanonicalOrders, FpsIsNearlyForced) {
  // Unlike MLC FPS (a total order), the TLC constraint set leaves one page
  // of slack: T6's distance is three word lines, so at most two pages are
  // ever simultaneously legal, and the canonical shadow order is always
  // among them.
  const std::uint32_t wordlines = 8;
  TlcBlockState s(wordlines);
  for (const TlcPagePos pos : tlc_fps_order(wordlines)) {
    const std::vector<TlcPagePos> legal = legal_tlc_programs(s, TlcSequenceKind::kFps);
    ASSERT_GE(legal.size(), 1u);
    ASSERT_LE(legal.size(), 2u) << "at " << to_string(pos.type) << "(" << pos.wordline << ")";
    EXPECT_NE(std::find(legal.begin(), legal.end(), pos), legal.end());
    s.mark_programmed(pos);
  }
}

class TlcOrderValidity : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TlcOrderValidity, FpsSatisfiesAllSix) {
  const std::uint32_t wl = GetParam();
  const TlcProgramOrder order = tlc_fps_order(wl);
  EXPECT_TRUE(is_permutation_of_all_pages(order, wl));
  EXPECT_TRUE(tlc_order_satisfies(order, wl, TlcSequenceKind::kFps));
  EXPECT_TRUE(tlc_order_satisfies(order, wl, TlcSequenceKind::kRps));
}

TEST_P(TlcOrderValidity, RpsFullSatisfiesRpsButNotFps) {
  const std::uint32_t wl = GetParam();
  const TlcProgramOrder order = tlc_rps_full_order(wl);
  EXPECT_TRUE(is_permutation_of_all_pages(order, wl));
  EXPECT_TRUE(tlc_order_satisfies(order, wl, TlcSequenceKind::kRps));
  if (wl >= 4) EXPECT_FALSE(tlc_order_satisfies(order, wl, TlcSequenceKind::kFps));
}

TEST_P(TlcOrderValidity, RandomRpsOrdersValid) {
  const std::uint32_t wl = GetParam();
  Rng rng(wl * 131 + 1);
  for (int trial = 0; trial < 15; ++trial) {
    const TlcProgramOrder order = random_tlc_rps_order(wl, rng);
    EXPECT_TRUE(is_permutation_of_all_pages(order, wl));
    EXPECT_TRUE(tlc_order_satisfies(order, wl, TlcSequenceKind::kRps));
  }
}

INSTANTIATE_TEST_SUITE_P(Wordlines, TlcOrderValidity,
                         ::testing::Values(2u, 3u, 4u, 8u, 32u, 96u));

class TlcExposure : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TlcExposure, FpsExposesAtMostOne) {
  const std::uint32_t wl = GetParam();
  for (const std::uint32_t e : analyze_tlc_exposure(tlc_fps_order(wl), wl)) {
    EXPECT_LE(e, 1u);
  }
}

TEST_P(TlcExposure, EveryRpsOrderExposesAtMostOne) {
  // The generalized theorem: T1-T5 already force LSB(k+1)/CSB(k+1) and all
  // of WL(k-1) before MSB(k); only MSB(k+1) can follow.
  const std::uint32_t wl = GetParam();
  Rng rng(wl * 37 + 5);
  for (int trial = 0; trial < 25; ++trial) {
    const TlcProgramOrder order = random_tlc_rps_order(wl, rng);
    for (const std::uint32_t e : analyze_tlc_exposure(order, wl)) {
      EXPECT_LE(e, 1u);
    }
  }
}

TEST_P(TlcExposure, UnconstrainedCanExceedOne) {
  const std::uint32_t wl = GetParam();
  if (wl < 4) return;
  Rng rng(wl * 41 + 9);
  std::uint32_t worst = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const TlcProgramOrder order = random_tlc_unconstrained_order(wl, rng);
    for (const std::uint32_t e : analyze_tlc_exposure(order, wl)) {
      worst = std::max(worst, e);
    }
  }
  EXPECT_GT(worst, 1u);
  EXPECT_LE(worst, 6u);  // 3 pages on each of 2 neighbors
}

INSTANTIATE_TEST_SUITE_P(Wordlines, TlcExposure, ::testing::Values(2u, 4u, 8u, 32u));

TEST(TlcRpsCapability, AllLsbPagesBeforeAnyOtherPass) {
  // The payoff the paper projects onto TLC: under T1-T5, a block's entire
  // LSB capacity is writable consecutively (the fast phase triples).
  const std::uint32_t wl = 16;
  TlcBlockState s(wl);
  for (std::uint32_t k = 0; k < wl; ++k) {
    ASSERT_TRUE(check_tlc_program_legality(s, {k, TlcPageType::kLsb},
                                           TlcSequenceKind::kRps)
                    .is_ok())
        << k;
    s.mark_programmed({k, TlcPageType::kLsb});
  }
  // Under TLC-FPS the same run is cut off at the fourth LSB page.
  TlcBlockState f(wl);
  f.mark_programmed({0, TlcPageType::kLsb});
  f.mark_programmed({1, TlcPageType::kLsb});
  f.mark_programmed({2, TlcPageType::kLsb});
  EXPECT_EQ(check_tlc_program_legality(f, {3, TlcPageType::kLsb},
                                       TlcSequenceKind::kFps)
                .code(),
            ErrorCode::kSequenceViolation);
}

}  // namespace
}  // namespace rps::nand
