// The adaptive page-allocation decision rule of Section 3.2, verbatim.
#include "src/core/policy.hpp"

#include <gtest/gtest.h>

namespace rps::core {
namespace {

PolicyManager make_policy(std::int64_t quota = 10) {
  PolicyManager::Params p;
  p.u_high = 0.8;
  p.u_low = 0.1;
  p.initial_quota = quota;
  p.chips = 2;
  return PolicyManager(p);
}

TEST(PolicyManager, HighUtilizationWithQuotaPicksLsb) {
  PolicyManager policy = make_policy();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(policy.choose(0, 0.9, true), nand::PageType::kLsb);
  }
}

TEST(PolicyManager, HighUtilizationWithoutQuotaAlternates) {
  PolicyManager policy = make_policy(0);
  const nand::PageType first = policy.choose(0, 0.9, true);
  const nand::PageType second = policy.choose(0, 0.9, true);
  EXPECT_NE(first, second);
  EXPECT_NE(policy.choose(0, 0.9, true), second);
}

TEST(PolicyManager, LowUtilizationPicksMsb) {
  PolicyManager policy = make_policy();
  EXPECT_EQ(policy.choose(0, 0.05, true), nand::PageType::kMsb);
}

TEST(PolicyManager, LowUtilizationWithoutSlowBlockFallsBackToLsb) {
  // Footnote 1: if there is no slow block, an LSB page is selected.
  PolicyManager policy = make_policy();
  EXPECT_EQ(policy.choose(0, 0.05, false), nand::PageType::kLsb);
}

TEST(PolicyManager, MidUtilizationAlternates) {
  PolicyManager policy = make_policy();
  int lsb = 0;
  for (int i = 0; i < 10; ++i) {
    if (policy.choose(0, 0.5, true) == nand::PageType::kLsb) ++lsb;
  }
  EXPECT_EQ(lsb, 5);
}

TEST(PolicyManager, AlternationIsPerChip) {
  // Chip-interleaved striping must not see a globally flapping toggle:
  // consecutive decisions for the *same* chip alternate.
  PolicyManager policy = make_policy(0);
  const nand::PageType c0_first = policy.choose(0, 0.5, true);
  const nand::PageType c1_first = policy.choose(1, 0.5, true);
  const nand::PageType c0_second = policy.choose(0, 0.5, true);
  const nand::PageType c1_second = policy.choose(1, 0.5, true);
  EXPECT_NE(c0_first, c0_second);
  EXPECT_NE(c1_first, c1_second);
}

TEST(PolicyManager, QuotaBookkeeping) {
  PolicyManager policy = make_policy(2);
  EXPECT_EQ(policy.quota(), 2);
  policy.note_lsb_write();
  policy.note_lsb_write();
  policy.note_lsb_write();
  EXPECT_EQ(policy.quota(), -1);
  policy.note_msb_write();
  EXPECT_EQ(policy.quota(), 0);
}

TEST(PolicyManager, QuotaCappedAtInitialValue) {
  PolicyManager policy = make_policy(3);
  for (int i = 0; i < 10; ++i) policy.note_msb_write();
  EXPECT_EQ(policy.quota(), 3);
  EXPECT_EQ(policy.initial_quota(), 3);
}

TEST(PolicyManager, QuotaExhaustionSwitchesRegime) {
  // The paper's performance-fluctuation guard: with u high, LSB is used
  // until q runs out, then the policy degrades to alternation.
  PolicyManager policy = make_policy(2);
  EXPECT_EQ(policy.choose(0, 0.95, true), nand::PageType::kLsb);
  policy.note_lsb_write();
  EXPECT_EQ(policy.choose(0, 0.95, true), nand::PageType::kLsb);
  policy.note_lsb_write();
  // q == 0 now: alternate.
  const nand::PageType a = policy.choose(0, 0.95, true);
  const nand::PageType b = policy.choose(0, 0.95, true);
  EXPECT_NE(a, b);
}

TEST(PolicyManager, ThresholdBoundariesExclusive) {
  PolicyManager policy = make_policy();
  // u == u_high is NOT "higher than u_high" -> alternate zone.
  const nand::PageType a = policy.choose(0, 0.8, true);
  const nand::PageType b = policy.choose(0, 0.8, true);
  EXPECT_NE(a, b);
  // u == u_low is NOT "lower than u_low" -> alternate zone too.
  const nand::PageType c = policy.choose(1, 0.1, true);
  const nand::PageType d = policy.choose(1, 0.1, true);
  EXPECT_NE(c, d);
}

}  // namespace
}  // namespace rps::core
