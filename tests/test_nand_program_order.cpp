// Tests for the paper's core device-level claim: the FPS scheme is
// constraints 1-4, RPS drops only constraint 4, and every RPS order keeps
// the post-MSB aggressor count per word line at the FPS level (<= 1).
#include "src/nand/program_order.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/util/random.hpp"

namespace rps::nand {
namespace {

bool is_permutation_of_all_pages(const ProgramOrder& order, std::uint32_t wordlines) {
  std::set<std::uint32_t> seen;
  for (const PagePos pos : order) seen.insert(pos.flat_index());
  return order.size() == static_cast<std::size_t>(wordlines) * 2 &&
         seen.size() == order.size();
}

TEST(BlockProgramState, TracksWordlineStates) {
  BlockProgramState s(4);
  EXPECT_EQ(s.state(0), WordlineState::kErased);
  s.mark_programmed({0, PageType::kLsb});
  EXPECT_EQ(s.state(0), WordlineState::kLsbProgrammed);
  EXPECT_TRUE(s.is_programmed({0, PageType::kLsb}));
  EXPECT_FALSE(s.is_programmed({0, PageType::kMsb}));
  s.mark_programmed({0, PageType::kMsb});
  EXPECT_EQ(s.state(0), WordlineState::kFullyProgrammed);
  EXPECT_TRUE(s.is_programmed({0, PageType::kMsb}));
  s.reset();
  EXPECT_EQ(s.state(0), WordlineState::kErased);
}

TEST(CheckLegality, FirstProgramMustBeLsb0UnderFpsAndRps) {
  for (const SequenceKind kind : {SequenceKind::kFps, SequenceKind::kRps}) {
    BlockProgramState s(4);
    EXPECT_TRUE(check_program_legality(s, {0, PageType::kLsb}, kind).is_ok());
    EXPECT_EQ(check_program_legality(s, {1, PageType::kLsb}, kind).code(),
              ErrorCode::kSequenceViolation);
    // MSB(0) before LSB(0) is physically impossible under any scheme.
    EXPECT_EQ(check_program_legality(s, {0, PageType::kMsb}, kind).code(),
              ErrorCode::kNotErased);
  }
}

TEST(CheckLegality, ReprogramRejected) {
  BlockProgramState s(4);
  s.mark_programmed({0, PageType::kLsb});
  EXPECT_EQ(check_program_legality(s, {0, PageType::kLsb}, SequenceKind::kRps).code(),
            ErrorCode::kAlreadyProgrammed);
}

TEST(CheckLegality, OutOfRangeWordline) {
  BlockProgramState s(4);
  EXPECT_EQ(check_program_legality(s, {4, PageType::kLsb}, SequenceKind::kRps).code(),
            ErrorCode::kOutOfRange);
}

TEST(CheckLegality, Constraint3RequiresNextLsbBeforeMsb) {
  // Program LSB(0), LSB(1): MSB(0) needs LSB(1) -> now legal under both.
  BlockProgramState s(4);
  s.mark_programmed({0, PageType::kLsb});
  EXPECT_EQ(check_program_legality(s, {0, PageType::kMsb}, SequenceKind::kRps).code(),
            ErrorCode::kSequenceViolation);
  s.mark_programmed({1, PageType::kLsb});
  EXPECT_TRUE(check_program_legality(s, {0, PageType::kMsb}, SequenceKind::kRps).is_ok());
  EXPECT_TRUE(check_program_legality(s, {0, PageType::kMsb}, SequenceKind::kFps).is_ok());
}

TEST(CheckLegality, Constraint3RelaxedOnLastWordline) {
  // On the last word line there is no LSB(k+1); MSB(last) becomes legal
  // once all prior constraints hold.
  BlockProgramState s(2);
  s.mark_programmed({0, PageType::kLsb});
  s.mark_programmed({1, PageType::kLsb});
  s.mark_programmed({0, PageType::kMsb});
  EXPECT_TRUE(check_program_legality(s, {1, PageType::kMsb}, SequenceKind::kRps).is_ok());
}

TEST(CheckLegality, Constraint4OnlyUnderFps) {
  // The paper's key relaxation: LSB(k) no longer needs MSB(k-2) first.
  BlockProgramState s(4);
  s.mark_programmed({0, PageType::kLsb});
  s.mark_programmed({1, PageType::kLsb});
  // LSB(2) with MSB(0) unwritten: C4 violation under FPS, fine under RPS.
  EXPECT_EQ(check_program_legality(s, {2, PageType::kLsb}, SequenceKind::kFps).code(),
            ErrorCode::kSequenceViolation);
  EXPECT_TRUE(check_program_legality(s, {2, PageType::kLsb}, SequenceKind::kRps).is_ok());
}

TEST(CheckLegality, UnconstrainedOnlyPhysical) {
  BlockProgramState s(4);
  // Any LSB page first is fine without ordering constraints.
  EXPECT_TRUE(
      check_program_legality(s, {3, PageType::kLsb}, SequenceKind::kUnconstrained).is_ok());
  // But MSB before its paired LSB never is.
  EXPECT_EQ(
      check_program_legality(s, {3, PageType::kMsb}, SequenceKind::kUnconstrained).code(),
      ErrorCode::kNotErased);
}

TEST(LegalPrograms, FpsHasSingleLegalPageAlongItsOrder) {
  // The canonical FPS order should be *forced*: at every step exactly one
  // page is legal under FPS.
  const std::uint32_t wordlines = 8;
  BlockProgramState s(wordlines);
  for (const PagePos pos : fps_order(wordlines)) {
    const std::vector<PagePos> legal = legal_programs(s, SequenceKind::kFps);
    ASSERT_EQ(legal.size(), 1u);
    EXPECT_EQ(legal.front(), pos);
    s.mark_programmed(pos);
  }
}

TEST(LegalPrograms, RpsHasAtMostTwoFrontiers) {
  // Under RPS the legal set is the LSB frontier plus (possibly) the MSB
  // frontier — never more.
  Rng rng(77);
  const std::uint32_t wordlines = 16;
  BlockProgramState s(wordlines);
  for (std::uint32_t step = 0; step < wordlines * 2; ++step) {
    const std::vector<PagePos> legal = legal_programs(s, SequenceKind::kRps);
    ASSERT_GE(legal.size(), 1u);
    ASSERT_LE(legal.size(), 2u);
    s.mark_programmed(legal[rng.next_below(legal.size())]);
  }
}

TEST(CanonicalOrders, FpsOrderMatchesFig2b) {
  // Fig. 2(b): 0=LSB(0), 1=LSB(1), 2=MSB(0), 3=LSB(2), 4=MSB(1), ...
  const ProgramOrder order = fps_order(6);
  const ProgramOrder expected = {
      {0, PageType::kLsb}, {1, PageType::kLsb}, {0, PageType::kMsb},
      {2, PageType::kLsb}, {1, PageType::kMsb}, {3, PageType::kLsb},
      {2, PageType::kMsb}, {4, PageType::kLsb}, {3, PageType::kMsb},
      {5, PageType::kLsb}, {4, PageType::kMsb}, {5, PageType::kMsb}};
  EXPECT_EQ(order, expected);
}

TEST(CanonicalOrders, RpsFullIsAllLsbThenAllMsb) {
  const ProgramOrder order = rps_full_order(4);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(order[i].type, PageType::kLsb);
    EXPECT_EQ(order[i].wordline, i);
    EXPECT_EQ(order[i + 4].type, PageType::kMsb);
    EXPECT_EQ(order[i + 4].wordline, i);
  }
}

class OrderValidity : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(OrderValidity, FpsSatisfiesAllFourConstraints) {
  const std::uint32_t wl = GetParam();
  const ProgramOrder order = fps_order(wl);
  EXPECT_TRUE(is_permutation_of_all_pages(order, wl));
  EXPECT_TRUE(order_satisfies(order, wl, SequenceKind::kFps));
  EXPECT_TRUE(order_satisfies(order, wl, SequenceKind::kRps));  // FPS ⊂ RPS
}

TEST_P(OrderValidity, RpsFullSatisfiesRpsButNotFps) {
  const std::uint32_t wl = GetParam();
  const ProgramOrder order = rps_full_order(wl);
  EXPECT_TRUE(is_permutation_of_all_pages(order, wl));
  EXPECT_TRUE(order_satisfies(order, wl, SequenceKind::kRps));
  if (wl >= 3) {
    // Writing LSB(2) before MSB(0) violates constraint 4.
    EXPECT_FALSE(order_satisfies(order, wl, SequenceKind::kFps));
  }
}

TEST_P(OrderValidity, RpsHalfSatisfiesRps) {
  const std::uint32_t wl = GetParam();
  const ProgramOrder order = rps_half_order(wl);
  EXPECT_TRUE(is_permutation_of_all_pages(order, wl));
  EXPECT_TRUE(order_satisfies(order, wl, SequenceKind::kRps));
}

TEST_P(OrderValidity, RandomRpsOrdersAreValid) {
  const std::uint32_t wl = GetParam();
  Rng rng(wl * 1000 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    const ProgramOrder order = random_rps_order(wl, rng);
    EXPECT_TRUE(is_permutation_of_all_pages(order, wl));
    EXPECT_TRUE(order_satisfies(order, wl, SequenceKind::kRps));
  }
}

TEST_P(OrderValidity, RandomUnconstrainedOrdersArePermutations) {
  const std::uint32_t wl = GetParam();
  Rng rng(wl * 1000 + 2);
  for (int trial = 0; trial < 20; ++trial) {
    const ProgramOrder order = random_unconstrained_order(wl, rng);
    EXPECT_TRUE(is_permutation_of_all_pages(order, wl));
    EXPECT_TRUE(order_satisfies(order, wl, SequenceKind::kUnconstrained));
  }
}

INSTANTIATE_TEST_SUITE_P(Wordlines, OrderValidity,
                         ::testing::Values(2u, 3u, 4u, 5u, 8u, 16u, 64u, 128u));

class ExposureProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ExposureProperty, FpsExposesAtMostOneAggressor) {
  const std::uint32_t wl = GetParam();
  for (const WordlineExposure& e : analyze_exposure(fps_order(wl), wl)) {
    EXPECT_LE(e.aggressors_after_msb, 1u);
  }
}

TEST_P(ExposureProperty, EveryRpsOrderExposesAtMostOneAggressor) {
  // Section 2.2's argument: constraints 1-3 alone already force LSB(k-1),
  // LSB(k), LSB(k+1) and MSB(k-1) before MSB(k); only MSB(k+1) can follow.
  const std::uint32_t wl = GetParam();
  Rng rng(wl * 31 + 7);
  for (int trial = 0; trial < 30; ++trial) {
    const ProgramOrder order = random_rps_order(wl, rng);
    for (const WordlineExposure& e : analyze_exposure(order, wl)) {
      EXPECT_LE(e.aggressors_after_msb, 1u);
    }
  }
}

TEST_P(ExposureProperty, RpsFullAndHalfMatchFpsExposure) {
  const std::uint32_t wl = GetParam();
  const auto fps = analyze_exposure(fps_order(wl), wl);
  for (const ProgramOrder& order : {rps_full_order(wl), rps_half_order(wl)}) {
    const auto rps = analyze_exposure(order, wl);
    for (std::uint32_t k = 0; k < wl; ++k) {
      EXPECT_LE(rps[k].aggressors_after_msb, std::max(1u, fps[k].aggressors_after_msb));
    }
  }
}

TEST_P(ExposureProperty, UnconstrainedOrdersCanExceedOneAggressor) {
  // Fig. 2(a)'s motivation: without ordering constraints some word line
  // sees multiple post-MSB aggressors (up to 4).
  const std::uint32_t wl = GetParam();
  if (wl < 4) return;
  Rng rng(wl * 97 + 3);
  std::uint32_t worst = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const ProgramOrder order = random_unconstrained_order(wl, rng);
    for (const WordlineExposure& e : analyze_exposure(order, wl)) {
      worst = std::max(worst, e.aggressors_after_msb);
    }
  }
  EXPECT_GT(worst, 1u);
  EXPECT_LE(worst, 4u);
}

INSTANTIATE_TEST_SUITE_P(Wordlines, ExposureProperty,
                         ::testing::Values(2u, 4u, 8u, 16u, 64u));

TEST(Exposure, WorstCaseHandConstructed) {
  // Program WL1 fully first, then all its neighbors: WL1 sees 4 aggressors.
  const ProgramOrder order = {
      {0, PageType::kLsb}, {1, PageType::kLsb}, {2, PageType::kLsb},
      {1, PageType::kMsb},  // WL1 complete; everything below aggresses it
      {0, PageType::kMsb}, {2, PageType::kMsb}, {3, PageType::kLsb},
      {3, PageType::kMsb}};
  ASSERT_TRUE(order_satisfies(order, 4, SequenceKind::kUnconstrained));
  const auto exposure = analyze_exposure(order, 4);
  // Aggressors on WL1 after MSB(1): MSB(0), MSB(2), and nothing else
  // adjacent (LSB(0), LSB(2) came before).
  EXPECT_EQ(exposure[1].aggressors_after_msb, 2u);
  EXPECT_EQ(exposure[3].aggressors_after_msb, 0u);
}

TEST(PagePos, FlatIndexRoundTrip) {
  for (std::uint32_t wl = 0; wl < 10; ++wl) {
    for (const PageType t : {PageType::kLsb, PageType::kMsb}) {
      const PagePos pos{wl, t};
      EXPECT_EQ(PagePos::from_flat(pos.flat_index()), pos);
    }
  }
}

TEST(PagePos, ToString) {
  EXPECT_EQ((PagePos{3, PageType::kLsb}).to_string(), "LSB(3)");
  EXPECT_EQ((PagePos{0, PageType::kMsb}).to_string(), "MSB(0)");
}

TEST(SequenceKindNames, Distinct) {
  EXPECT_STREQ(to_string(SequenceKind::kFps), "FPS");
  EXPECT_STREQ(to_string(SequenceKind::kRps), "RPS");
  EXPECT_STREQ(to_string(SequenceKind::kUnconstrained), "Unconstrained");
}

}  // namespace
}  // namespace rps::nand
