#include "src/ftl/mapping.hpp"

#include <gtest/gtest.h>

namespace rps::ftl {
namespace {

constexpr nand::PageAddress kA{0, 1, {2, nand::PageType::kLsb}};
constexpr nand::PageAddress kB{3, 4, {5, nand::PageType::kMsb}};

TEST(MappingTable, StartsUnmapped) {
  MappingTable m(100);
  EXPECT_EQ(m.exported_pages(), 100u);
  EXPECT_EQ(m.mapped_count(), 0u);
  EXPECT_FALSE(m.is_mapped(0));
  EXPECT_EQ(m.lookup(0).code(), ErrorCode::kNotFound);
  EXPECT_EQ(m.lookup(100).code(), ErrorCode::kOutOfRange);
}

TEST(MappingTable, UpdateAndLookup) {
  MappingTable m(100);
  EXPECT_FALSE(m.update(7, kA).has_value());
  EXPECT_TRUE(m.is_mapped(7));
  EXPECT_EQ(m.mapped_count(), 1u);
  ASSERT_TRUE(m.lookup(7).is_ok());
  EXPECT_EQ(m.lookup(7).value(), kA);
  EXPECT_TRUE(m.maps_to(7, kA));
  EXPECT_FALSE(m.maps_to(7, kB));
  EXPECT_FALSE(m.maps_to(8, kA));
}

TEST(MappingTable, OverwriteReturnsOldAddress) {
  MappingTable m(100);
  m.update(7, kA);
  const auto old = m.update(7, kB);
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(*old, kA);
  EXPECT_EQ(m.mapped_count(), 1u);
  EXPECT_TRUE(m.maps_to(7, kB));
}

TEST(MappingTable, Unmap) {
  MappingTable m(100);
  m.update(7, kA);
  const auto old = m.unmap(7);
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(*old, kA);
  EXPECT_EQ(m.mapped_count(), 0u);
  EXPECT_FALSE(m.is_mapped(7));
  EXPECT_FALSE(m.unmap(7).has_value());
  EXPECT_FALSE(m.unmap(500).has_value());
}

}  // namespace
}  // namespace rps::ftl
