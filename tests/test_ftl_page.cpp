#include "src/ftl/page_ftl.hpp"

#include <gtest/gtest.h>

#include "src/util/random.hpp"

namespace rps::ftl {
namespace {

FtlConfig tiny_config() { return FtlConfig::tiny(); }

TEST(PageFtl, WriteReadRoundTrip) {
  PageFtl ftl(tiny_config());
  const Result<HostOp> write = ftl.write(5, 0);
  ASSERT_TRUE(write.is_ok());
  EXPECT_GT(write.value().complete, 0);
  const Result<HostOp> read = ftl.read(5, write.value().complete);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(ftl.stats().host_write_pages, 1u);
  EXPECT_EQ(ftl.stats().host_read_pages, 1u);
}

TEST(PageFtl, WriteDataPayloadRoundTrip) {
  PageFtl ftl(tiny_config());
  ASSERT_TRUE(ftl.write_data(3, {1, 2, 3, 4}, 0).is_ok());
  const Result<nand::PageData> data = ftl.read_data(3, 10'000);
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(data.value().bytes, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(data.value().lpn, 3u);
}

TEST(PageFtl, OutOfRangeLpn) {
  PageFtl ftl(tiny_config());
  EXPECT_EQ(ftl.write(ftl.exported_pages(), 0).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(ftl.read(ftl.exported_pages(), 0).code(), ErrorCode::kOutOfRange);
}

TEST(PageFtl, UnwrittenReadIsZeroFill) {
  PageFtl ftl(tiny_config());
  const Result<HostOp> read = ftl.read(9, 1234);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().complete, 1234);  // no device access
  EXPECT_EQ(ftl.stats().unmapped_reads, 1u);
}

TEST(PageFtl, FollowsFpsOrderExactly) {
  PageFtl ftl(tiny_config());
  // First writes land on chip-local active blocks following Fig. 2(b):
  // LSB, LSB, MSB alternation — verify via host page-type counters.
  const std::uint32_t chips = ftl.config().geometry.num_chips();
  for (std::uint32_t i = 0; i < chips * 2; ++i) {
    ASSERT_TRUE(ftl.write(i, 0).is_ok());
  }
  // Each chip served 2 writes: LSB(0), LSB(1) — all LSB so far.
  EXPECT_EQ(ftl.stats().host_lsb_writes, chips * 2);
  for (std::uint32_t i = 0; i < chips; ++i) {
    ASSERT_TRUE(ftl.write(100 + i, 0).is_ok());
  }
  // Third write per chip is MSB(0).
  EXPECT_EQ(ftl.stats().host_msb_writes, chips);
}

TEST(PageFtl, OverwriteInvalidatesOldPage) {
  PageFtl ftl(tiny_config());
  ASSERT_TRUE(ftl.write(1, 0).is_ok());
  const nand::PageAddress first = ftl.mapping().lookup(1).value();
  ASSERT_TRUE(ftl.write(1, 0).is_ok());
  const nand::PageAddress second = ftl.mapping().lookup(1).value();
  EXPECT_NE(first, second);
  EXPECT_TRUE(ftl.check_consistency());
}

TEST(PageFtl, SteadyStateOverwriteStress) {
  // Fill the whole logical space, then overwrite far beyond physical
  // capacity: GC must keep the device serviceable indefinitely.
  PageFtl ftl(tiny_config());
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0).is_ok());
  Rng rng(42);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(ftl.write(rng.next_below(n), 0).is_ok()) << "write " << i;
  }
  EXPECT_TRUE(ftl.check_consistency());
  EXPECT_GT(ftl.device().total_erase_count(), 0u);
  EXPECT_GT(ftl.stats().gc_copy_pages, 0u);
  // Every logical page is still readable.
  for (Lpn lpn = 0; lpn < n; ++lpn) {
    EXPECT_TRUE(ftl.read(lpn, 0).is_ok()) << lpn;
  }
}

TEST(PageFtl, WafIsReasonableUnderSkewedOverwrites) {
  PageFtl ftl(tiny_config());
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0).is_ok());
  Rng rng(1);
  ZipfGenerator zipf(n, 0.9);
  const std::uint64_t host_before = ftl.stats().host_write_pages;
  const std::uint64_t programs_before = ftl.device().total_counters().programs();
  for (int i = 0; i < 6000; ++i) ASSERT_TRUE(ftl.write(zipf.sample(rng), 0).is_ok());
  const double waf = static_cast<double>(ftl.device().total_counters().programs() -
                                         programs_before) /
                     static_cast<double>(ftl.stats().host_write_pages - host_before);
  EXPECT_GE(waf, 1.0);
  EXPECT_LT(waf, 6.0);
}

TEST(PageFtl, BackgroundGcReclaimsInIdle) {
  FtlConfig config = tiny_config();
  config.bgc_free_threshold = 1.0;  // always eligible
  PageFtl ftl(config);
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0).is_ok());
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(ftl.write(rng.next_below(n), 0).is_ok());
  const std::uint64_t bg_before = ftl.stats().background_gc_blocks;
  const Microseconds start = ftl.device().all_idle_at();
  ftl.on_idle(start, start + 10'000'000);
  EXPECT_GT(ftl.stats().background_gc_blocks, bg_before);
  EXPECT_TRUE(ftl.check_consistency());
}

TEST(PageFtl, BackgroundGcHonorsDeadline) {
  FtlConfig config = tiny_config();
  config.bgc_free_threshold = 1.0;
  PageFtl ftl(config);
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0).is_ok());
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(ftl.write(rng.next_below(n), 0).is_ok());
  const Microseconds start = ftl.device().all_idle_at();
  // Window shorter than the spill guard: no background work at all.
  ftl.on_idle(start, start + 100);
  EXPECT_EQ(ftl.device().all_idle_at(), start);
}

TEST(PageFtl, ConsistencyAfterMixedTraffic) {
  PageFtl ftl(tiny_config());
  Rng rng(9);
  const Lpn n = ftl.exported_pages();
  for (int i = 0; i < 3000; ++i) {
    const Lpn lpn = rng.next_below(n);
    if (rng.chance(0.3)) {
      ASSERT_TRUE(ftl.read(lpn, 0).is_ok());
    } else {
      ASSERT_TRUE(ftl.write(lpn, 0).is_ok());
    }
  }
  EXPECT_TRUE(ftl.check_consistency());
}

}  // namespace
}  // namespace rps::ftl
