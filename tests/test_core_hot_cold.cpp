// flexFTL hot/cold stream separation: GC relocation copies live in their
// own fast/slow stream, so cold data ages in homogeneous blocks and the
// write amplification of skewed workloads drops.
#include <gtest/gtest.h>

#include "src/core/flex_ftl.hpp"
#include "src/util/random.hpp"

namespace rps::core {
namespace {

/// Skewed steady-state churn; returns final write amplification.
double run_churn(bool separate, std::uint64_t* erases = nullptr) {
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  config.geometry.blocks_per_chip = 32;
  config.separate_gc_stream = separate;
  FlexFtl ftl(config);
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) {
    const auto op = ftl.write(lpn, 0, 0.5);
    EXPECT_TRUE(op.is_ok());
  }
  Rng rng(13);
  const std::uint64_t host_before = ftl.stats().host_write_pages;
  const std::uint64_t programs_before = ftl.device().total_counters().programs();
  const std::uint64_t erases_before = ftl.device().total_erase_count();
  const Lpn hot = n / 8;
  for (int i = 0; i < 12'000; ++i) {
    // 90% of writes hit the hot eighth of the space.
    const Lpn lpn = rng.chance(0.9) ? rng.next_below(hot)
                                    : hot + rng.next_below(n - hot);
    const auto op = ftl.write(lpn, 0, 0.5);
    EXPECT_TRUE(op.is_ok());
    if (i % 1000 == 999) {
      const Microseconds t = ftl.device().all_idle_at();
      ftl.on_idle(t, t + 20'000'000);
    }
  }
  EXPECT_TRUE(ftl.check_consistency());
  if (erases != nullptr) *erases = ftl.device().total_erase_count() - erases_before;
  return static_cast<double>(ftl.device().total_counters().programs() -
                             programs_before) /
         static_cast<double>(ftl.stats().host_write_pages - host_before);
}

TEST(HotColdSeparation, ReducesWriteAmplificationUnderSkew) {
  std::uint64_t erases_mixed = 0;
  std::uint64_t erases_separated = 0;
  const double mixed = run_churn(false, &erases_mixed);
  const double separated = run_churn(true, &erases_separated);
  EXPECT_LT(separated, mixed * 0.97);  // measurably better
  EXPECT_LE(erases_separated, erases_mixed);
}

TEST(HotColdSeparation, ColdStreamActuallyUsed) {
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  config.separate_gc_stream = true;
  FlexFtl ftl(config);
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0, 0.5).is_ok());
  Rng rng(5);
  bool saw_cold = false;
  for (int i = 0; i < 4000 && !saw_cold; ++i) {
    ASSERT_TRUE(ftl.write(rng.next_below(n / 4), 0, 0.95).is_ok());
    for (std::uint32_t c = 0; c < ftl.config().geometry.num_chips(); ++c) {
      saw_cold |= ftl.cold_sbqueue_depth(c) > 0;
    }
  }
  EXPECT_TRUE(saw_cold);
}

TEST(HotColdSeparation, OffByDefaultKeepsColdQueueEmpty) {
  FlexFtl ftl(ftl::FtlConfig::tiny());
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0, 0.5).is_ok());
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(ftl.write(rng.next_below(n), 0, 0.5).is_ok());
  }
  for (std::uint32_t c = 0; c < ftl.config().geometry.num_chips(); ++c) {
    EXPECT_EQ(ftl.cold_sbqueue_depth(c), 0u);
  }
}

TEST(HotColdSeparation, DataIntegrityPreserved) {
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  config.separate_gc_stream = true;
  FlexFtl ftl(config);
  const Lpn n = ftl.exported_pages();
  std::vector<std::uint8_t> tag(n);
  Rng rng(31);
  for (Lpn lpn = 0; lpn < n; ++lpn) {
    tag[lpn] = static_cast<std::uint8_t>(lpn);
    ASSERT_TRUE(ftl.write_data(lpn, {tag[lpn]}, 0, 0.5).is_ok());
  }
  for (int i = 0; i < 4000; ++i) {
    const Lpn lpn = rng.next_below(n);
    tag[lpn] = static_cast<std::uint8_t>(i);
    ASSERT_TRUE(ftl.write_data(lpn, {tag[lpn]}, 0, rng.next_double()).is_ok());
  }
  for (Lpn lpn = 0; lpn < n; ++lpn) {
    const Result<nand::PageData> data = ftl.read_data(lpn, 0);
    ASSERT_TRUE(data.is_ok()) << lpn;
    EXPECT_EQ(data.value().bytes, std::vector<std::uint8_t>{tag[lpn]}) << lpn;
  }
}

}  // namespace
}  // namespace rps::core
