#include "src/sim/simulator.hpp"

#include <gtest/gtest.h>

#include "src/ftl/page_ftl.hpp"
#include "src/sim/runner.hpp"
#include "src/workload/generator.hpp"

namespace rps::sim {
namespace {

SimConfig quick_sim() {
  SimConfig c;
  c.queue_depth = 8;
  return c;
}

workload::Trace steady_trace(Lpn span, std::size_t n, Microseconds gap) {
  workload::Trace t("steady");
  for (std::size_t i = 0; i < n; ++i) {
    t.add({static_cast<Microseconds>(i) * gap, workload::IoKind::kWrite,
           static_cast<Lpn>(i) % span, 1});
  }
  return t;
}

TEST(Simulator, PreconditionFillsMapping) {
  ftl::PageFtl ftl(ftl::FtlConfig::tiny());
  Simulator sim(ftl, quick_sim());
  sim.precondition();
  EXPECT_EQ(ftl.mapping().mapped_count(), ftl.exported_pages());
}

TEST(Simulator, RunCountsRequestsAndPages) {
  ftl::PageFtl ftl(ftl::FtlConfig::tiny());
  Simulator sim(ftl, quick_sim());
  workload::Trace t("mix");
  t.add({0, workload::IoKind::kWrite, 0, 3});
  t.add({100, workload::IoKind::kRead, 0, 2});
  t.add({200, workload::IoKind::kWrite, 10, 1});
  const SimResult r = sim.run(t);
  EXPECT_EQ(r.requests, 3u);
  EXPECT_EQ(r.write_requests, 2u);
  EXPECT_EQ(r.read_requests, 1u);
  EXPECT_EQ(r.pages_written, 4u);
  EXPECT_EQ(r.pages_read, 2u);
  EXPECT_EQ(r.latency_us.size(), 3u);
  EXPECT_GT(r.makespan_us, 0);
}

TEST(Simulator, EmptyTrace) {
  ftl::PageFtl ftl(ftl::FtlConfig::tiny());
  Simulator sim(ftl, quick_sim());
  const SimResult r = sim.run(workload::Trace("empty"));
  EXPECT_EQ(r.requests, 0u);
  EXPECT_EQ(r.iops_makespan(), 0.0);
  EXPECT_EQ(r.iops_busy(), 0.0);
}

TEST(Simulator, BufferedWritesAckInstantlyWhenUnderloaded) {
  // Sparse writes never fill the buffer: every write's latency is zero
  // (acknowledged on buffer insert), regardless of program latency.
  ftl::PageFtl ftl(ftl::FtlConfig::tiny());
  Simulator sim(ftl, quick_sim());
  const SimResult r = sim.run(steady_trace(32, 50, /*gap=*/100'000));
  EXPECT_EQ(r.latency_us.max(), 0.0);
}

TEST(Simulator, SaturationMakesWritesWaitForBuffer) {
  // Back-to-back writes exceed the device rate: ACKs become flush-bound
  // and latencies grow.
  ftl::PageFtl ftl(ftl::FtlConfig::tiny());
  Simulator sim(ftl, quick_sim());
  const SimResult r = sim.run(steady_trace(32, 2000, /*gap=*/1));
  EXPECT_GT(r.latency_us.percentile(90), 1000.0);
  EXPECT_GT(r.makespan_us, 2000);
}

TEST(Simulator, IdleWindowsDetectedAndDelivered) {
  ftl::PageFtl ftl(ftl::FtlConfig::tiny());
  Simulator sim(ftl, quick_sim());
  workload::Trace t("gappy");
  for (int burst = 0; burst < 5; ++burst) {
    const Microseconds base = burst * 1'000'000;
    for (int i = 0; i < 10; ++i) {
      t.add({base + i * 10, workload::IoKind::kWrite,
             static_cast<Lpn>(burst * 10 + i), 1});
    }
  }
  const SimResult r = sim.run(t);
  EXPECT_GE(r.idle_windows, 4u);
  EXPECT_GT(r.idle_time_us, 3'000'000);
}

TEST(Simulator, DeterministicResults) {
  const workload::Trace t = workload::generate(
      workload::preset_config(workload::Preset::kVarmail, 128, 2000, 5));
  auto run_once = [&]() {
    ftl::PageFtl ftl(ftl::FtlConfig::tiny());
    Simulator sim(ftl, quick_sim());
    sim.precondition();
    return sim.run(t);
  };
  const SimResult a = run_once();
  const SimResult b = run_once();
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.erases, b.erases);
  EXPECT_EQ(a.ops.programs(), b.ops.programs());
}

TEST(Simulator, DeltaCountersExcludePrecondition) {
  ftl::PageFtl ftl(ftl::FtlConfig::tiny());
  Simulator sim(ftl, quick_sim());
  sim.precondition();
  const std::uint64_t programs_total = ftl.device().total_counters().programs();
  ASSERT_GT(programs_total, 0u);
  const SimResult r = sim.run(steady_trace(32, 10, 1000));
  EXPECT_EQ(r.ops.programs(), ftl.device().total_counters().programs() - programs_total);
  EXPECT_LE(r.ops.programs(), programs_total);
}

TEST(Simulator, BandwidthSamplesPresentForWriteWorkloads) {
  ftl::PageFtl ftl(ftl::FtlConfig::tiny());
  SimConfig config = quick_sim();
  config.bw_window_us = 10'000;
  Simulator sim(ftl, config);
  const SimResult r = sim.run(steady_trace(32, 500, 100));
  EXPECT_FALSE(r.write_bw_mbps.empty());
  EXPECT_GT(r.write_bw_mbps.max(), 0.0);
}

TEST(Simulator, WarmUpReachesGcSteadyState) {
  ftl::PageFtl ftl(ftl::FtlConfig::tiny());
  Simulator sim(ftl, quick_sim());
  sim.precondition();
  const workload::Trace warm = workload::generate(
      workload::preset_config(workload::Preset::kNtrx, ftl.exported_pages(), 3000, 9));
  sim.warm_up(warm);
  EXPECT_GT(ftl.device().total_erase_count(), 0u);
  EXPECT_TRUE(ftl.check_consistency());
}

TEST(Runner, MakeFtlProducesAllFour) {
  const ftl::FtlConfig config = ftl::FtlConfig::tiny();
  EXPECT_EQ(make_ftl(FtlKind::kPage, config)->name(), "pageFTL");
  EXPECT_EQ(make_ftl(FtlKind::kParity, config)->name(), "parityFTL");
  EXPECT_EQ(make_ftl(FtlKind::kRtf, config)->name(), "rtfFTL");
  EXPECT_EQ(make_ftl(FtlKind::kFlex, config)->name(), "flexFTL");
}

TEST(Runner, BenchGeometryShape) {
  const nand::Geometry g = bench_geometry();
  EXPECT_EQ(g.channels, 8u);          // the paper's channel organization
  EXPECT_EQ(g.chips_per_channel, 4u);
  EXPECT_EQ(g.pages_per_block(), 256u);
  EXPECT_TRUE(g.valid());
}

TEST(Runner, RunExperimentEndToEnd) {
  ExperimentSpec spec;
  spec.ftl_config = ftl::FtlConfig::tiny();
  spec.requests = 1500;
  spec.working_set_fraction = 0.8;
  const SimResult r = run_experiment(FtlKind::kFlex, workload::Preset::kVarmail, spec);
  EXPECT_EQ(r.ftl_name, "flexFTL");
  EXPECT_EQ(r.workload_name, "Varmail");
  EXPECT_EQ(r.requests, 1500u);
  EXPECT_GT(r.iops_makespan(), 0.0);
}

}  // namespace
}  // namespace rps::sim
