#include "src/nand/chip.hpp"

#include <gtest/gtest.h>

namespace rps::nand {
namespace {

Chip make_chip(std::uint32_t blocks = 4, std::uint32_t wordlines = 4) {
  return Chip(blocks, wordlines, SequenceKind::kRps, TimingSpec::paper());
}

TEST(Chip, ProgramLatencyByPageType) {
  Chip chip = make_chip();
  const Result<OpTiming> lsb = chip.program(0, {0, PageType::kLsb}, {}, 0);
  ASSERT_TRUE(lsb.is_ok());
  EXPECT_EQ(lsb.value().start, 0);
  EXPECT_EQ(lsb.value().busy_time(), 500);

  const Result<OpTiming> lsb1 = chip.program(0, {1, PageType::kLsb}, {}, 0);
  ASSERT_TRUE(lsb1.is_ok());
  EXPECT_EQ(lsb1.value().start, 500);  // serialized behind the first program

  const Result<OpTiming> msb = chip.program(0, {0, PageType::kMsb}, {}, 0);
  ASSERT_TRUE(msb.is_ok());
  EXPECT_EQ(msb.value().busy_time(), 2000);
  EXPECT_EQ(chip.busy_until(), 500 + 500 + 2000);
}

TEST(Chip, LaterIssueTimeDelaysStart) {
  Chip chip = make_chip();
  const Result<OpTiming> op = chip.program(0, {0, PageType::kLsb}, {}, 10'000);
  ASSERT_TRUE(op.is_ok());
  EXPECT_EQ(op.value().start, 10'000);
  EXPECT_EQ(chip.busy_until(), 10'500);
}

TEST(Chip, RejectedProgramLeavesTimelineUntouched) {
  Chip chip = make_chip();
  const Result<OpTiming> bad = chip.program(0, {0, PageType::kMsb}, {}, 0);
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(chip.busy_until(), 0);
  EXPECT_EQ(chip.counters().programs(), 0u);
}

TEST(Chip, ReadTimingAndData) {
  Chip chip = make_chip();
  PageData d;
  d.lpn = 3;
  ASSERT_TRUE(chip.program(0, {0, PageType::kLsb}, d, 0).is_ok());
  const Result<Chip::ReadOutcome> read = chip.read(0, {0, PageType::kLsb}, 600);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().timing.busy_time(), 40);
  ASSERT_TRUE(read.value().data.is_ok());
  EXPECT_EQ(read.value().data.value().lpn, 3u);
}

TEST(Chip, Counters) {
  Chip chip = make_chip();
  ASSERT_TRUE(chip.program(0, {0, PageType::kLsb}, {}, 0).is_ok());
  ASSERT_TRUE(chip.program(0, {1, PageType::kLsb}, {}, 0).is_ok());
  ASSERT_TRUE(chip.program(0, {0, PageType::kMsb}, {}, 0).is_ok());
  ASSERT_TRUE(chip.read(0, {0, PageType::kLsb}, 0).is_ok());
  ASSERT_TRUE(chip.erase(1, 0).is_ok());
  EXPECT_EQ(chip.counters().lsb_programs, 2u);
  EXPECT_EQ(chip.counters().msb_programs, 1u);
  EXPECT_EQ(chip.counters().reads, 1u);
  EXPECT_EQ(chip.counters().erases, 1u);
  EXPECT_EQ(chip.total_erase_count(), 1u);
}

TEST(Chip, EraseTiming) {
  Chip chip = make_chip();
  const Result<OpTiming> erase = chip.erase(0, 100);
  ASSERT_TRUE(erase.is_ok());
  EXPECT_EQ(erase.value().busy_time(), TimingSpec::paper().erase_us);
}

TEST(Chip, InFlightProgramTracking) {
  Chip chip = make_chip();
  ASSERT_TRUE(chip.program(0, {0, PageType::kLsb}, {}, 0).is_ok());  // [0, 500)
  EXPECT_TRUE(chip.program_in_flight_at(0).has_value());
  EXPECT_TRUE(chip.program_in_flight_at(499).has_value());
  EXPECT_FALSE(chip.program_in_flight_at(500).has_value());
  const auto hit = chip.program_in_flight_at(250);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->pos, (PagePos{0, PageType::kLsb}));
}

TEST(Chip, PowerLossDuringMsbDestroysPairedLsb) {
  Chip chip = make_chip();
  PageData lsb_data;
  lsb_data.lpn = 77;
  ASSERT_TRUE(chip.program(0, {0, PageType::kLsb}, lsb_data, 0).is_ok());
  ASSERT_TRUE(chip.program(0, {1, PageType::kLsb}, {}, 0).is_ok());
  // MSB(0) in flight during [1000, 3000).
  ASSERT_TRUE(chip.program(0, {0, PageType::kMsb}, {}, 0).is_ok());

  const auto victim = chip.apply_power_loss(1500);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->pos, (PagePos{0, PageType::kMsb}));
  // Both the interrupted MSB page and its paired LSB page lost their data.
  EXPECT_EQ(chip.block(0).read({0, PageType::kMsb}).code(), ErrorCode::kEccUncorrectable);
  EXPECT_EQ(chip.block(0).read({0, PageType::kLsb}).code(), ErrorCode::kEccUncorrectable);
  // The neighbor LSB page survives.
  EXPECT_TRUE(chip.block(0).read({1, PageType::kLsb}).is_ok());
}

TEST(Chip, PowerLossDuringLsbOnlyKillsThatPage) {
  Chip chip = make_chip();
  ASSERT_TRUE(chip.program(0, {0, PageType::kLsb}, {}, 0).is_ok());
  const auto victim = chip.apply_power_loss(100);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->pos, (PagePos{0, PageType::kLsb}));
  EXPECT_EQ(chip.block(0).read({0, PageType::kLsb}).code(), ErrorCode::kEccUncorrectable);
}

TEST(Chip, PowerLossWhileIdleHitsNothing) {
  Chip chip = make_chip();
  ASSERT_TRUE(chip.program(0, {0, PageType::kLsb}, {}, 0).is_ok());
  EXPECT_FALSE(chip.apply_power_loss(600).has_value());
  EXPECT_TRUE(chip.block(0).read({0, PageType::kLsb}).is_ok());
}

TEST(Chip, BusyTimeAccumulates) {
  Chip chip = make_chip();
  ASSERT_TRUE(chip.program(0, {0, PageType::kLsb}, {}, 0).is_ok());
  ASSERT_TRUE(chip.read(0, {0, PageType::kLsb}, 1'000'000).is_ok());
  EXPECT_EQ(chip.busy_time_total(), 540);
}

}  // namespace
}  // namespace rps::nand
