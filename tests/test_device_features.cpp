// Device/FTL features layered beyond the paper's baseline model: program
// suspension (read-latency QoS under 2 ms MSB programs) and read-disturb
// scrubbing.
#include <gtest/gtest.h>

#include "src/core/flex_ftl.hpp"
#include "src/ftl/page_ftl.hpp"
#include "src/util/random.hpp"
#include "src/util/stats.hpp"

namespace rps {
namespace {

TEST(ProgramSuspend, ReadPreemptsInFlightMsbProgram) {
  nand::Chip chip(4, 4, nand::SequenceKind::kRps, nand::TimingSpec::paper());
  chip.set_program_suspend(true);
  ASSERT_TRUE(chip.program(0, {0, nand::PageType::kLsb}, {}, 0).is_ok());
  ASSERT_TRUE(chip.program(0, {1, nand::PageType::kLsb}, {}, 0).is_ok());
  // MSB program occupies [1000, 3000).
  const auto msb = chip.program(0, {0, nand::PageType::kMsb}, {}, 0);
  ASSERT_TRUE(msb.is_ok());
  ASSERT_EQ(msb.value().start, 1000);

  // A read at t=1500 preempts: it completes at 1540, not after 3000.
  const auto read = chip.read(0, {0, nand::PageType::kLsb}, 1500);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().timing.start, 1500);
  EXPECT_EQ(read.value().timing.complete, 1540);
  // The program (and the chip) stretched by read + suspend/resume overhead.
  EXPECT_EQ(chip.busy_until(), 3000 + 40 + 30);
  const auto in_flight = chip.program_in_flight_at(3020);
  ASSERT_TRUE(in_flight.has_value());
  EXPECT_EQ(in_flight->suspends, 1u);
}

TEST(ProgramSuspend, DisabledReadsQueueBehindPrograms) {
  nand::Chip chip(4, 4, nand::SequenceKind::kRps, nand::TimingSpec::paper());
  ASSERT_TRUE(chip.program(0, {0, nand::PageType::kLsb}, {}, 0).is_ok());
  const auto read = chip.read(0, {0, nand::PageType::kLsb}, 100);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().timing.start, 500);  // waits for the program
}

TEST(ProgramSuspend, SuspensionCountIsBounded) {
  nand::TimingSpec timing = nand::TimingSpec::paper();
  timing.max_suspends_per_program = 2;
  nand::Chip chip(4, 4, nand::SequenceKind::kRps, timing);
  chip.set_program_suspend(true);
  ASSERT_TRUE(chip.program(0, {0, nand::PageType::kLsb}, {}, 0).is_ok());  // [0,500)
  // First two reads preempt; the third queues behind the stretched program.
  EXPECT_EQ(chip.read(0, {0, nand::PageType::kLsb}, 100).value().timing.start, 100);
  EXPECT_EQ(chip.read(0, {0, nand::PageType::kLsb}, 200).value().timing.start, 200);
  const auto third = chip.read(0, {0, nand::PageType::kLsb}, 300);
  EXPECT_EQ(third.value().timing.start, 500 + 2 * (40 + 30));
}

TEST(ProgramSuspend, FtlReadJumpsAnInFlightMsbProgram) {
  // End-to-end through the FTL: a read issued mid-MSB-program returns in
  // ~read time with suspension, but waits out the 2 ms program without it.
  auto read_latency = [](bool suspend) -> Microseconds {
    ftl::FtlConfig config = ftl::FtlConfig::tiny();
    config.geometry.channels = 1;
    config.geometry.chips_per_channel = 1;
    config.program_suspend = suspend;
    ftl::PageFtl ftl(config);
    // FPS: L0(0..500), L1(510..1010), M0(1020..3020) with bus transfers.
    EXPECT_TRUE(ftl.write(0, 0, 0.5).is_ok());
    EXPECT_TRUE(ftl.write(1, 0, 0.5).is_ok());
    EXPECT_TRUE(ftl.write(2, 0, 0.5).is_ok());  // the MSB program
    // Read lpn 0 while the MSB program is in flight.
    const Microseconds issue = 2'000;
    const Result<ftl::HostOp> read = ftl.read(0, issue);
    EXPECT_TRUE(read.is_ok());
    return read.is_ok() ? read.value().complete - issue : 0;
  };
  const Microseconds with = read_latency(true);
  const Microseconds without = read_latency(false);
  const nand::TimingSpec timing = nand::TimingSpec::paper();
  EXPECT_EQ(with, timing.read_us + timing.transfer_us);
  EXPECT_GT(without, timing.program_msb_us / 2);  // waited for the program
}

TEST(ReadDisturb, CounterTracksReadsAndResetsOnErase) {
  nand::Block block(4, nand::SequenceKind::kRps);
  ASSERT_TRUE(block.program({0, nand::PageType::kLsb}, {}).is_ok());
  EXPECT_EQ(block.reads_since_erase(), 0u);
  for (int i = 0; i < 5; ++i) (void)block.read({0, nand::PageType::kLsb});
  EXPECT_EQ(block.reads_since_erase(), 5u);
  block.erase();
  EXPECT_EQ(block.reads_since_erase(), 0u);
}

TEST(ReadDisturb, ScrubRefreshesHotReadBlocks) {
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  config.read_scrub_threshold = 500;
  ftl::PageFtl ftl(config);
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0).is_ok());
  // Hammer reads on one LPN: its block's read counter climbs past the
  // threshold.
  const nand::PageAddress addr = ftl.mapping().lookup(5).value();
  for (int i = 0; i < 600; ++i) ASSERT_TRUE(ftl.read(5, 0).is_ok());
  ASSERT_GE(ftl.device().block({addr.chip, addr.block}).reads_since_erase(), 500u);

  const Microseconds t = ftl.device().all_idle_at();
  ftl.on_idle(t, t + 60'000'000);
  EXPECT_GE(ftl.stats().scrubbed_blocks, 1u);
  // The hammered block was refreshed: the LPN lives elsewhere now and the
  // data is still readable.
  const nand::PageAddress after = ftl.mapping().lookup(5).value();
  EXPECT_FALSE(after == addr);
  EXPECT_TRUE(ftl.read(5, 0).is_ok());
  EXPECT_TRUE(ftl.check_consistency());
}

TEST(ReadDisturb, ScrubOffByDefault) {
  ftl::PageFtl ftl(ftl::FtlConfig::tiny());
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) ASSERT_TRUE(ftl.write(lpn, 0).is_ok());
  for (int i = 0; i < 600; ++i) ASSERT_TRUE(ftl.read(5, 0).is_ok());
  const Microseconds t = ftl.device().all_idle_at();
  ftl.on_idle(t, t + 60'000'000);
  EXPECT_EQ(ftl.stats().scrubbed_blocks, 0u);
}

}  // namespace
}  // namespace rps
