// Fig. 8(b) reproduction: normalized block erasure counts (the lifetime
// metric). The paper: flexFTL reduces erasures by up to 30% (23% avg) over
// parityFTL and up to 32% (28% avg) over rtfFTL, thanks to the per-block
// parity backup that the 2PO scheme enables.
#include <cstdio>

#include "bench/bench_fig8_common.hpp"
#include "src/util/table.hpp"

using namespace rps;

int main(int argc, char** argv) {
  sim::ExperimentSpec spec = bench::fig8_spec();
  spec.requests = sim::parse_requests_flag(argc, argv, spec.requests);
  if (!bench::apply_geometry_flag(argc, argv, spec)) return 2;
  const std::uint32_t jobs = sim::parse_jobs_flag(argc, argv);
  std::printf("Fig. 8(b): normalized block erasure counts, 4 FTLs x 5 workloads\n");
  std::printf("(erasures during the measured run, normalized to pageFTL)\n\n");

  const std::vector<workload::Preset> presets(std::begin(workload::kAllPresets),
                                              std::end(workload::kAllPresets));
  const std::vector<std::vector<sim::SimResult>> matrix =
      sim::run_preset_matrix(presets, spec, jobs);

  TablePrinter table({"Workload", "pageFTL", "parityFTL", "rtfFTL", "flexFTL",
                      "flex vs parity", "flex vs rtf", "backup pages (flex/parity/rtf)"});
  double reduction_parity = 0.0;
  double reduction_rtf = 0.0;
  for (std::size_t p = 0; p < presets.size(); ++p) {
    const workload::Preset preset = presets[p];
    const std::vector<sim::SimResult>& results = matrix[p];
    const auto page = static_cast<double>(results[0].erases);
    const auto parity = static_cast<double>(results[1].erases);
    const auto rtf = static_cast<double>(results[2].erases);
    const auto flex = static_cast<double>(results[3].erases);
    reduction_parity += 1.0 - flex / parity;
    reduction_rtf += 1.0 - flex / rtf;
    table.add_row(
        {workload::to_string(preset), TablePrinter::fmt(1.0, 2),
         TablePrinter::fmt(parity / page, 2), TablePrinter::fmt(rtf / page, 2),
         TablePrinter::fmt(flex / page, 2),
         TablePrinter::fmt((1.0 - flex / parity) * 100, 0) + "%",
         TablePrinter::fmt((1.0 - flex / rtf) * 100, 0) + "%",
         TablePrinter::fmt_int(static_cast<std::int64_t>(results[3].ftl_stats.backup_pages)) +
             " / " +
             TablePrinter::fmt_int(static_cast<std::int64_t>(results[1].ftl_stats.backup_pages)) +
             " / " +
             TablePrinter::fmt_int(static_cast<std::int64_t>(results[2].ftl_stats.backup_pages))});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("flexFTL average erasure reduction: vs parityFTL %.0f%% (paper: 23%%), "
              "vs rtfFTL %.0f%% (paper: 28%%)\n",
              reduction_parity / 5 * 100, reduction_rtf / 5 * 100);
  if (!bench::maybe_write_metrics(argc, argv, presets, matrix)) return 2;
  return bench::maybe_write_flex_trace(argc, argv, workload::kAllPresets[0], spec)
             ? 0
             : 2;
}
