// Extension of Fig. 4(b): BER of the FPS and RPS schemes swept over P/E
// cycling and retention time, confirming the "not higher than FPS"
// relation holds across the whole lifetime envelope, not just at the
// single worst-case point the paper reports.
#include <cstdio>

#include "src/reliability/study.hpp"
#include "src/util/table.hpp"

using namespace rps;
using reliability::Scheme;

namespace {

reliability::StudyConfig base_config() {
  reliability::StudyConfig config;
  config.blocks = 80;
  config.wordlines = 32;
  config.interference.cells_per_wordline = 1024;
  config.seed = 42;
  return config;
}

void sweep(const char* title, const std::vector<reliability::StressCondition>& points,
           const char* (*label)(const reliability::StressCondition&)) {
  std::printf("%s\n", title);
  TablePrinter table({"Condition", "FPS median BER", "RPSfull median BER",
                      "ratio", "holds"});
  for (const reliability::StressCondition& stress : points) {
    reliability::StudyConfig config = base_config();
    config.stress = stress;
    const reliability::StudyResult fps = run_study(Scheme::kFps, config);
    const reliability::StudyResult rps = run_study(Scheme::kRpsFull, config);
    const double fps_ber = fps.ber_per_page.mean();
    const double rps_ber = rps.ber_per_page.mean();
    const double ratio = fps_ber > 0 ? rps_ber / fps_ber : 1.0;
    // Noise-aware criterion: each scheme runs an independent Monte-Carlo
    // stream, so tiny absolute BERs carry sampling error; accept RPS
    // within 10% of FPS or within an absolute 3e-5 floor.
    const bool holds = rps_ber <= fps_ber * 1.10 + 3e-5;
    table.add_row({label(stress), TablePrinter::fmt(fps_ber * 1e3, 3),
                   TablePrinter::fmt(rps_ber * 1e3, 3), TablePrinter::fmt(ratio, 3),
                   holds ? "yes" : "NO"});
    std::fflush(stdout);
  }
  std::printf("%s(BER x 1e-3; 'holds' = RPS within 10%% of FPS or 3e-5 absolute)\n\n",
              table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("Reliability sweep: RPS vs FPS BER across the lifetime envelope\n\n");

  static char label_buffer[64];
  sweep("P/E cycling sweep (fresh retention):",
        {{0, 0}, {1000, 0}, {2000, 0}, {3000, 0}, {5000, 0}},
        +[](const reliability::StressCondition& s) -> const char* {
          std::snprintf(label_buffer, sizeof label_buffer, "%5.0f P/E", s.pe_cycles);
          return label_buffer;
        });

  sweep("Retention sweep (at 3K P/E):",
        {{3000, 0}, {3000, 30}, {3000, 90}, {3000, 365}, {3000, 730}},
        +[](const reliability::StressCondition& s) -> const char* {
          std::snprintf(label_buffer, sizeof label_buffer, "%4.0f days", s.retention_days);
          return label_buffer;
        });
  return 0;
}
