// Extension of Fig. 4(b): BER of the FPS and RPS schemes swept over P/E
// cycling and retention time, confirming the "not higher than FPS"
// relation holds across the whole lifetime envelope, not just at the
// single worst-case point the paper reports.
#include <cstdio>
#include <string>

#include "src/reliability/study.hpp"
#include "src/sim/runner.hpp"
#include "src/util/parallel.hpp"
#include "src/util/table.hpp"

using namespace rps;
using reliability::Scheme;

namespace {

reliability::StudyConfig base_config() {
  reliability::StudyConfig config;
  config.blocks = 80;
  config.wordlines = 32;
  config.interference.cells_per_wordline = 1024;
  config.seed = 42;
  return config;
}

void sweep(const char* title, const std::vector<reliability::StressCondition>& points,
           std::string (*label)(const reliability::StressCondition&),
           std::uint32_t jobs) {
  std::printf("%s\n", title);
  // Each point runs two independent Monte-Carlo studies from its own
  // config; points fan out jobs-wide into index-owned slots and the table
  // is assembled in point order — identical output at any --jobs value.
  struct PointRow {
    std::string label;
    double fps_ber = 0.0;
    double rps_ber = 0.0;
  };
  std::vector<PointRow> rows(points.size());
  util::parallel_for_indexed(points.size(), jobs, [&](std::size_t i) {
    reliability::StudyConfig config = base_config();
    config.stress = points[i];
    const reliability::StudyResult fps = run_study(Scheme::kFps, config);
    const reliability::StudyResult rps = run_study(Scheme::kRpsFull, config);
    rows[i] = {label(points[i]), fps.ber_per_page.mean(), rps.ber_per_page.mean()};
  });

  TablePrinter table({"Condition", "FPS median BER", "RPSfull median BER",
                      "ratio", "holds"});
  for (const PointRow& row : rows) {
    const double ratio = row.fps_ber > 0 ? row.rps_ber / row.fps_ber : 1.0;
    // Noise-aware criterion: each scheme runs an independent Monte-Carlo
    // stream, so tiny absolute BERs carry sampling error; accept RPS
    // within 10% of FPS or within an absolute 3e-5 floor.
    const bool holds = row.rps_ber <= row.fps_ber * 1.10 + 3e-5;
    table.add_row({row.label, TablePrinter::fmt(row.fps_ber * 1e3, 3),
                   TablePrinter::fmt(row.rps_ber * 1e3, 3), TablePrinter::fmt(ratio, 3),
                   holds ? "yes" : "NO"});
  }
  std::printf("%s(BER x 1e-3; 'holds' = RPS within 10%% of FPS or 3e-5 absolute)\n\n",
              table.to_string().c_str());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t jobs = sim::parse_jobs_flag(argc, argv);
  std::printf("Reliability sweep: RPS vs FPS BER across the lifetime envelope\n\n");

  sweep("P/E cycling sweep (fresh retention):",
        {{0, 0}, {1000, 0}, {2000, 0}, {3000, 0}, {5000, 0}},
        +[](const reliability::StressCondition& s) {
          char buffer[64];
          std::snprintf(buffer, sizeof buffer, "%5.0f P/E", s.pe_cycles);
          return std::string(buffer);
        },
        jobs);

  sweep("Retention sweep (at 3K P/E):",
        {{3000, 0}, {3000, 30}, {3000, 90}, {3000, 365}, {3000, 730}},
        +[](const reliability::StressCondition& s) {
          char buffer[64];
          std::snprintf(buffer, sizeof buffer, "%4.0f days", s.retention_days);
          return std::string(buffer);
        },
        jobs);
  return 0;
}
