// Ablation (ours): static wear leveling under a skewed workload. Lifetime
// is Fig. 8(b)'s concern; wear *evenness* is its device-level counterpart:
// an 80/20-style hot/cold split concentrates erases on the blocks cycling
// the hot data, and the device dies by its hottest block. Static leveling
// migrates trailing cold blocks during idle periods.
//
// Reads the obs metrics layer (ISSUE 10): the wear numbers come from the
// device's per-block wear ledger via obs::collect_wear, and the erase
// total is decomposed by WriteCause — showing directly that the leveler
// buys its bounded spread with wear_level-tagged erases, not host ones.
// --metrics=PATH additionally writes the full per-threshold report.
#include <cstdio>
#include <string>

#include "src/core/flex_ftl.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/runner.hpp"
#include "src/util/random.hpp"
#include "src/util/table.hpp"

using namespace rps;

namespace {

struct Outcome {
  obs::WearSummary wear;
  nand::AttributionCounters attribution;
  std::uint64_t gc_copies = 0;
};

Outcome run(std::uint64_t threshold) {
  ftl::FtlConfig config;
  config.geometry = nand::Geometry{.channels = 2,
                                   .chips_per_channel = 2,
                                   .blocks_per_chip = 32,
                                   .wordlines_per_block = 32,
                                   .page_size_bytes = 2048,
                                   .spare_bytes = 32};
  config.overprovisioning = 0.2;
  config.wear_level_threshold = threshold;
  core::FlexFtl ftl(config);
  const Lpn n = ftl.exported_pages();
  for (Lpn lpn = 0; lpn < n; ++lpn) (void)ftl.write(lpn, 0, 0.5);
  // Hot/cold: all further writes hit 10% of the space; idle every 512
  // writes gives background GC and wear leveling room to act.
  Rng rng(3);
  const Lpn hot = n / 10;
  for (int i = 0; i < 120'000; ++i) {
    (void)ftl.write(rng.next_below(hot), 0, 0.5);
    if (i % 512 == 511) {
      const Microseconds t = ftl.device().all_idle_at();
      ftl.on_idle(t, t + 30'000'000);
    }
  }
  return Outcome{obs::collect_wear(ftl.device()), ftl.device().attribution(),
                 ftl.stats().gc_copy_pages};
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation: static wear leveling, flexFTL, 90%% cold / 10%% hot writes\n\n");

  TablePrinter table({"wear threshold", "total erases", "max PE", "min PE",
                      "max/mean", "CoV", "wl erases", "gc erases", "GC copies"});
  obs::MetricsReport report;
  const std::uint64_t thresholds[] = {0, 32, 16, 8};
  for (const std::uint64_t threshold : thresholds) {
    const Outcome o = run(threshold);
    table.add_row(
        {threshold == 0 ? "off"
                        : TablePrinter::fmt_int(static_cast<std::int64_t>(threshold)),
         TablePrinter::fmt_int(static_cast<std::int64_t>(o.wear.total_erases)),
         TablePrinter::fmt_int(static_cast<std::int64_t>(o.wear.max_erases)),
         TablePrinter::fmt_int(static_cast<std::int64_t>(o.wear.min_erases)),
         TablePrinter::fmt(o.wear.max_over_mean_erases, 2),
         TablePrinter::fmt(o.wear.cov_erases, 2),
         TablePrinter::fmt_int(static_cast<std::int64_t>(
             o.attribution.cause_erases(nand::WriteCause::kWearLevel))),
         TablePrinter::fmt_int(static_cast<std::int64_t>(
             o.attribution.cause_erases(nand::WriteCause::kGcCopy))),
         TablePrinter::fmt_int(static_cast<std::int64_t>(o.gc_copies))});
    report.begin(threshold == 0 ? "threshold_off"
                                : "threshold_" + std::to_string(threshold));
    report.add_attribution(o.attribution);
    report.add_wear(o.wear);
    report.end();
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Leveling trades migration copies for a bounded wear spread: the\n");
  std::printf("device's end of life moves from the hottest block toward the mean.\n");
  const std::string metrics_path = sim::parse_metrics_flag(argc, argv);
  if (!metrics_path.empty()) {
    if (!report.write_file(metrics_path)) {
      std::fprintf(stderr, "failed to write metrics report at: %s\n",
                   metrics_path.c_str());
      return 2;
    }
    std::printf("metrics: %s\n", metrics_path.c_str());
  }
  return 0;
}
