// Simulation-core wall-clock harness: the repo's perf regression gate.
//
// Two measurements, written to BENCH_simcore.json:
//
//   1. Single-trial throughput: simulated page ops per wall-clock second
//      for every FTL x engine cell (5 x 2), measured over Simulator::run
//      only (preconditioning and warm-up excluded). Compared against the
//      pre-optimization baseline recorded in kBaselineKops below — the
//      acceptance bar is "no worse than baseline" for every cell.
//   2. Sweep scaling: wall time of a faultsim seed x density matrix at
//      --jobs 1 vs --jobs 8, plus an FNV-1a digest of every cell's
//      numeric results at both job counts — and a third, cold arm
//      (--jobs 1, fill re-run per trial) whose digest must equal the
//      warm arms'. bit_identical must hold on any host; the speedup is
//      only meaningful on multi-core hosts (host.cpus is recorded so CI
//      can judge).
//   3. Fork cost: per-FTL wall time of Simulator::precondition (the cold
//      fork path every trial used to pay) vs Snapshot restore (the warm
//      path), with checkpoint digests proving the restored state is
//      bit-identical. fork_speedup is the headline warm-start number.
//
// Usage: bench_simcore [--quick] [--jobs=N] [--out=PATH] [--alloc-audit]
//                      [--metrics=PATH]
//   --quick        smaller request counts / fewer seeds (CI smoke)
//   --jobs=N       parallel arm of the sweep scaling run (default 8)
//   --out          JSON path (default BENCH_simcore.json in the CWD)
//   --alloc-audit  skip the measurements; instead assert that a warmed
//                  controller-engine replay performs ZERO heap
//                  allocations across its steady-state window, for every
//                  FTL kind (exit 1 on any allocation)
//   --metrics=PATH write an obs::MetricsReport with one "<ftl>/<engine>"
//                  section per throughput cell (first-replay simulation
//                  results only — no wall-clock numbers, so the file is
//                  deterministic across hosts and --jobs values)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/faultsim/harness.hpp"
#include "src/faultsim/sweep.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/runner.hpp"
#include "src/sim/simulator.hpp"
#include "src/util/alloc_audit.hpp"
#include "src/workload/generator.hpp"

using namespace rps;

namespace {

// Pre-PR single-threaded throughput (kops = thousand simulated page ops
// per wall second), captured on the 1-CPU reference container at the
// commit before the hot-path optimizations, full (non-quick) sizes.
// Regenerate by running the pre-optimization build of this harness.
struct BaselineEntry {
  sim::FtlKind kind;
  sim::Engine engine;
  double kops;
};
constexpr BaselineEntry kBaselineKops[] = {
    {sim::FtlKind::kPage, sim::Engine::kController, 1200.8},
    {sim::FtlKind::kPage, sim::Engine::kLegacySync, 1681.2},
    {sim::FtlKind::kParity, sim::Engine::kController, 995.6},
    {sim::FtlKind::kParity, sim::Engine::kLegacySync, 1223.0},
    {sim::FtlKind::kRtf, sim::Engine::kController, 675.1},
    {sim::FtlKind::kRtf, sim::Engine::kLegacySync, 1160.7},
    {sim::FtlKind::kFlex, sim::Engine::kController, 1012.5},
    {sim::FtlKind::kFlex, sim::Engine::kLegacySync, 1143.6},
    {sim::FtlKind::kSlc, sim::Engine::kController, 1186.7},
    {sim::FtlKind::kSlc, sim::Engine::kLegacySync, 1702.0},
};
// Pre-PR wall seconds of the full-size jobs=1 sweep arm on the reference
// container.
constexpr double kBaselineSweepSecs = 2.115;

double baseline_kops(sim::FtlKind kind, sim::Engine engine) {
  for (const BaselineEntry& e : kBaselineKops) {
    if (e.kind == kind && e.engine == engine) return e.kops;
  }
  return 0.0;
}

const char* engine_name(sim::Engine engine) {
  switch (engine) {
    case sim::Engine::kController: return "controller";
    case sim::Engine::kLegacySync: return "legacy";
  }
  __builtin_unreachable();
}

double now_secs() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A mid-size device: big enough that GC, striping and queueing all run
/// in their steady-state regimes, small enough that the full 5x2 cell
/// matrix finishes in tens of seconds. 4 x 2 chips, 64 blocks x 64
/// wordlines (128 MLC pages) x 4 KB = 256 MB.
nand::Geometry simcore_geometry() {
  nand::Geometry g;
  g.channels = 4;
  g.chips_per_channel = 2;
  g.blocks_per_chip = 64;
  g.wordlines_per_block = 64;
  g.page_size_bytes = 4096;
  return g;
}

struct CellResult {
  sim::FtlKind kind = sim::FtlKind::kPage;
  sim::Engine engine = sim::Engine::kController;
  double kops = 0.0;       // measured simulated page ops / wall sec / 1e3
  double secs = 0.0;       // wall seconds of the measured run
  std::uint64_t ops = 0;   // pages read + written in the measured run
  sim::SimResult result;   // first replay's simulation results (deterministic)
};

CellResult measure_cell(sim::FtlKind kind, sim::Engine engine,
                        std::uint64_t requests, int reps) {
  sim::ExperimentSpec spec = sim::ExperimentSpec::bench_default();
  spec.ftl_config.geometry = simcore_geometry();
  spec.sim.engine = engine;
  spec.requests = requests;

  // One precondition + warm-up, then `reps` timed replays of the same
  // trace (best-of-reps damps scheduler noise). Replays after the first
  // start from the previous replay's device state — still steady state,
  // which is the regime the baseline comparison cares about.
  std::unique_ptr<ftl::FtlBase> ftl = sim::make_ftl(kind, spec.ftl_config);
  sim::Simulator simulator(*ftl, spec.sim);
  simulator.precondition();
  const Lpn working_set = static_cast<Lpn>(
      static_cast<double>(ftl->exported_pages()) * spec.working_set_fraction);
  const workload::Trace warmup = workload::generate(workload::preset_config(
      workload::Preset::kVarmail, working_set, spec.requests / 2,
      spec.seed ^ 0x77777777ull));
  simulator.warm_up(warmup);
  const workload::Trace trace = workload::generate(workload::preset_config(
      workload::Preset::kVarmail, working_set, spec.requests, spec.seed));

  CellResult cell;
  cell.kind = kind;
  cell.engine = engine;
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = now_secs();
    const sim::SimResult result = simulator.run(trace);
    const double secs = now_secs() - t0;
    const std::uint64_t ops = result.pages_read + result.pages_written;
    const double kops = secs > 0 ? static_cast<double>(ops) / secs / 1e3 : 0.0;
    if (rep == 0 || kops > cell.kops) {
      cell.secs = secs;
      cell.ops = ops;
      cell.kops = kops;
    }
    // Keep the first replay's SimResult for --metrics: replay 0 starts
    // from the preconditioned + warmed state, so its counters depend only
    // on the spec — not on which rep happened to be fastest.
    if (rep == 0) cell.result = result;
  }
  return cell;
}

/// Order-sensitive FNV-1a over every numeric field of every matrix cell
/// (and each failure's reproducer line): two runs digest equal iff their
/// reports are bit-identical in cell order.
std::uint64_t digest_matrix(const std::vector<faultsim::MatrixCell>& cells) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  for (const faultsim::MatrixCell& cell : cells) {
    mix(cell.seed);
    mix(cell.points);
    mix(cell.result.golden_boundaries);
    mix(cell.result.crashes_injected);
    mix(cell.result.total_victims);
    mix(cell.result.total_pages_lost);
    mix(cell.result.total_parity_recovered);
    mix(cell.result.replay_mismatches);
    mix(cell.result.failures.size());
    for (const faultsim::SweepFailure& f : cell.result.failures) {
      for (const char c : f.line) mix(static_cast<unsigned char>(c));
    }
  }
  return h;
}

struct SweepScaling {
  std::uint64_t seeds = 0;
  std::uint64_t density = 0;
  std::uint32_t jobs = 8;
  double cold_jobs1_secs = 0.0;  // fill re-run inside every trial
  double jobs1_secs = 0.0;       // warm: trials fork from one snapshot
  double jobsn_secs = 0.0;
  std::uint64_t digest_cold = 0;
  std::uint64_t digest_jobs1 = 0;
  std::uint64_t digest_jobsn = 0;
  bool bit_identical = false;  // cold == warm(jobs1) == warm(jobsN)
};

SweepScaling measure_sweep(std::uint64_t seeds, std::uint64_t density,
                           std::uint32_t jobs) {
  SweepScaling scaling;
  scaling.seeds = seeds;
  scaling.density = density;
  scaling.jobs = jobs;

  faultsim::FaultSimConfig base;  // flexFTL / controller, the default
  faultsim::MatrixOptions options;
  options.seeds = seeds;
  options.densities = {density};

  // Cold arm: the pre-snapshot behavior, fill phase re-run per trial.
  options.jobs = 1;
  options.sweep.warm_start = false;
  double t0 = now_secs();
  const std::vector<faultsim::MatrixCell> cold =
      faultsim::sweep_matrix(base, options);
  scaling.cold_jobs1_secs = now_secs() - t0;
  scaling.digest_cold = digest_matrix(cold);

  options.sweep.warm_start = true;
  t0 = now_secs();
  const std::vector<faultsim::MatrixCell> sequential =
      faultsim::sweep_matrix(base, options);
  scaling.jobs1_secs = now_secs() - t0;
  scaling.digest_jobs1 = digest_matrix(sequential);

  options.jobs = jobs;
  t0 = now_secs();
  const std::vector<faultsim::MatrixCell> parallel =
      faultsim::sweep_matrix(base, options);
  scaling.jobsn_secs = now_secs() - t0;
  scaling.digest_jobsn = digest_matrix(parallel);

  scaling.bit_identical = scaling.digest_jobs1 == scaling.digest_jobsn &&
                          scaling.digest_cold == scaling.digest_jobs1;
  return scaling;
}

/// The fixed per-trial fork cost warm-starting eliminates: wall time of
/// Simulator::precondition (what every Fig. 8 / runner trial used to pay)
/// vs restoring the same state from a Snapshot, per FTL kind on the
/// simcore geometry. Checkpoint digests of both paths must match — the
/// restored device is bit-identical to the preconditioned one.
struct ForkCost {
  double precondition_secs = 0.0;  // summed over all FTL kinds
  double restore_secs = 0.0;
  std::uint64_t snapshot_bytes = 0;  // summed
  bool digests_match = true;
};

ForkCost measure_fork_cost() {
  ForkCost cost;
  sim::ExperimentSpec spec = sim::ExperimentSpec::bench_default();
  spec.ftl_config.geometry = simcore_geometry();
  constexpr sim::FtlKind kKinds[] = {sim::FtlKind::kPage, sim::FtlKind::kParity,
                                     sim::FtlKind::kRtf, sim::FtlKind::kFlex,
                                     sim::FtlKind::kSlc};
  for (const sim::FtlKind kind : kKinds) {
    std::unique_ptr<ftl::FtlBase> ftl = sim::make_ftl(kind, spec.ftl_config);
    sim::Simulator simulator(*ftl, spec.sim);
    double t0 = now_secs();
    simulator.precondition();
    cost.precondition_secs += now_secs() - t0;
    const sim::Snapshot snapshot = simulator.checkpoint();
    cost.snapshot_bytes += snapshot.bytes().size();

    std::unique_ptr<ftl::FtlBase> fork = sim::make_ftl(kind, spec.ftl_config);
    sim::Simulator forked(*fork, spec.sim);
    t0 = now_secs();
    const bool restored = forked.warm_start(snapshot);
    cost.restore_secs += now_secs() - t0;
    cost.digests_match = cost.digests_match && restored &&
                         forked.checkpoint().digest() == snapshot.digest();
  }
  return cost;
}

void write_json(const std::string& path, bool quick, std::uint64_t requests,
                const std::vector<CellResult>& cells, const SweepScaling& sweep,
                const ForkCost& fork) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"simcore\",\n");
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"host\": {\"cpus\": %u},\n",
               std::max(1u, std::thread::hardware_concurrency()));
  std::fprintf(out, "  \"single_trial\": {\n");
  std::fprintf(out, "    \"requests\": %llu,\n",
               static_cast<unsigned long long>(requests));
  std::fprintf(out, "    \"workload\": \"Varmail\",\n");
  std::fprintf(out, "    \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    const double base = baseline_kops(c.kind, c.engine);
    std::fprintf(out,
                 "      {\"ftl\": \"%s\", \"engine\": \"%s\", \"kops\": %.2f, "
                 "\"secs\": %.3f, \"ops\": %llu, \"baseline_kops\": %.2f, "
                 "\"vs_baseline\": %.3f}%s\n",
                 sim::to_string(c.kind), engine_name(c.engine), c.kops, c.secs,
                 static_cast<unsigned long long>(c.ops), base,
                 base > 0 ? c.kops / base : 0.0,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"sweep_scaling\": {\n");
  std::fprintf(out, "    \"seeds\": %llu,\n",
               static_cast<unsigned long long>(sweep.seeds));
  std::fprintf(out, "    \"density\": %llu,\n",
               static_cast<unsigned long long>(sweep.density));
  std::fprintf(out, "    \"jobs\": %u,\n", sweep.jobs);
  std::fprintf(out, "    \"cold_jobs1_secs\": %.3f,\n", sweep.cold_jobs1_secs);
  std::fprintf(out, "    \"jobs1_secs\": %.3f,\n", sweep.jobs1_secs);
  std::fprintf(out, "    \"jobsN_secs\": %.3f,\n", sweep.jobsn_secs);
  std::fprintf(out, "    \"speedup\": %.3f,\n",
               sweep.jobsn_secs > 0 ? sweep.jobs1_secs / sweep.jobsn_secs : 0.0);
  std::fprintf(out, "    \"baseline_jobs1_secs\": %.3f,\n", kBaselineSweepSecs);
  std::fprintf(out, "    \"digest_cold\": \"%016llx\",\n",
               static_cast<unsigned long long>(sweep.digest_cold));
  std::fprintf(out, "    \"digest_jobs1\": \"%016llx\",\n",
               static_cast<unsigned long long>(sweep.digest_jobs1));
  std::fprintf(out, "    \"digest_jobsN\": \"%016llx\",\n",
               static_cast<unsigned long long>(sweep.digest_jobsn));
  std::fprintf(out, "    \"bit_identical\": %s\n",
               sweep.bit_identical ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"warm_start\": {\n");
  std::fprintf(out, "    \"precondition_secs\": %.3f,\n", fork.precondition_secs);
  std::fprintf(out, "    \"restore_secs\": %.3f,\n", fork.restore_secs);
  std::fprintf(out, "    \"fork_speedup\": %.2f,\n",
               fork.restore_secs > 0 ? fork.precondition_secs / fork.restore_secs
                                     : 0.0);
  std::fprintf(out, "    \"snapshot_bytes\": %llu,\n",
               static_cast<unsigned long long>(fork.snapshot_bytes));
  std::fprintf(out, "    \"digests_match\": %s\n",
               fork.digests_match ? "true" : "false");
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

/// --alloc-audit: the machine-checked form of the zero-allocation claim.
/// For every FTL kind on the controller engine: precondition + warm-up,
/// replay the measured trace once so every arena, pool and scratch vector
/// reaches its high-water mark, then replay it again with the
/// operator-new interposer armed across the steady-state window
/// (Simulator's steady-state hook). Any allocation fails the audit.
int run_alloc_audit(std::uint64_t requests) {
  if (!util::alloc_audit_linked()) {
    std::fprintf(stderr, "alloc audit: interposer not linked into this binary\n");
    return 1;
  }
  std::printf("alloc audit: controller engine, Varmail, %llu requests, "
              "third (warmed) replay\n",
              static_cast<unsigned long long>(requests));
  bool ok = true;
  constexpr sim::FtlKind kKinds[] = {sim::FtlKind::kPage, sim::FtlKind::kParity,
                                     sim::FtlKind::kRtf, sim::FtlKind::kFlex,
                                     sim::FtlKind::kSlc};
  // Debug aid: RPS_ALLOC_AUDIT_FTL=<name> audits just that FTL (pairs
  // with RPS_ALLOC_AUDIT_BACKTRACE=N, which dumps offender stacks).
  const char* only = std::getenv("RPS_ALLOC_AUDIT_FTL");
  for (const sim::FtlKind kind : kKinds) {
    if (only != nullptr && std::string(only) != sim::to_string(kind)) continue;
    sim::ExperimentSpec spec = sim::ExperimentSpec::bench_default();
    spec.ftl_config.geometry = simcore_geometry();
    spec.sim.engine = sim::Engine::kController;
    spec.requests = requests;
    std::unique_ptr<ftl::FtlBase> ftl = sim::make_ftl(kind, spec.ftl_config);
    sim::Simulator simulator(*ftl, spec.sim);
    simulator.precondition();
    const Lpn working_set = static_cast<Lpn>(
        static_cast<double>(ftl->exported_pages()) * spec.working_set_fraction);
    const workload::Trace warmup = workload::generate(workload::preset_config(
        workload::Preset::kVarmail, working_set, spec.requests / 2,
        spec.seed ^ 0x77777777ull));
    simulator.warm_up(warmup);
    const workload::Trace trace = workload::generate(workload::preset_config(
        workload::Preset::kVarmail, working_set, spec.requests, spec.seed));

    // Two warm replays before the audited one: container capacities only
    // ever double, so a first replay leaves every arena, pool and scratch
    // vector at (at least) half its converged capacity and the second
    // replay's residual growth is what run three would have paid. After
    // two, the high-water marks have converged and the audit is strict.
    simulator.run(trace);
    simulator.run(trace);
    util::AllocAuditStats stats;
    simulator.set_steady_state_hook([&stats](bool enter) {
      if (enter) {
        util::alloc_audit_arm();
      } else {
        stats = util::alloc_audit_disarm();
      }
    });
    simulator.run(trace);  // audited
    simulator.set_steady_state_hook(nullptr);
    std::printf("  %-9s allocations=%llu bytes=%llu frees=%llu  %s\n",
                sim::to_string(kind),
                static_cast<unsigned long long>(stats.allocations),
                static_cast<unsigned long long>(stats.bytes),
                static_cast<unsigned long long>(stats.frees),
                stats.allocations == 0 ? "OK" : "FAIL");
    std::fflush(stdout);
    ok = ok && stats.allocations == 0;
  }
  std::printf("alloc audit: %s\n",
              ok ? "PASS (zero steady-state heap allocations)" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool alloc_audit = false;
  std::string out_path = "BENCH_simcore.json";
  std::string metrics_path;
  std::uint32_t jobs = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--alloc-audit") {
      alloc_audit = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<std::uint32_t>(std::stoul(arg.substr(7)));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  const std::uint64_t requests = quick ? 10'000 : 100'000;
  const std::uint64_t seeds = quick ? 8 : 64;
  const int reps = quick ? 2 : 3;
  constexpr std::uint64_t kDensity = 16;

  if (alloc_audit) return run_alloc_audit(requests);

  std::printf("bench_simcore%s: single-trial throughput (Varmail, %llu requests)\n",
              quick ? " --quick" : "", static_cast<unsigned long long>(requests));
  std::vector<CellResult> cells;
  constexpr sim::FtlKind kKinds[] = {sim::FtlKind::kPage, sim::FtlKind::kParity,
                                     sim::FtlKind::kRtf, sim::FtlKind::kFlex,
                                     sim::FtlKind::kSlc};
  for (const sim::FtlKind kind : kKinds) {
    for (const sim::Engine engine :
         {sim::Engine::kController, sim::Engine::kLegacySync}) {
      cells.push_back(measure_cell(kind, engine, requests, reps));
      const CellResult& c = cells.back();
      const double base = baseline_kops(kind, engine);
      std::printf("  %-9s %-10s %9.1f kops  (%.2fs, %llu ops)%s\n",
                  sim::to_string(kind), engine_name(engine), c.kops, c.secs,
                  static_cast<unsigned long long>(c.ops),
                  base > 0 ? (c.kops >= base ? "  >= baseline" : "  BELOW baseline")
                           : "");
      std::fflush(stdout);
    }
  }

  std::printf("sweep scaling: %llu seeds x density %llu, jobs 1 vs %u\n",
              static_cast<unsigned long long>(seeds),
              static_cast<unsigned long long>(kDensity), jobs);
  const SweepScaling sweep = measure_sweep(seeds, kDensity, jobs);
  std::printf("  cold jobs=1: %.2fs  warm jobs=1: %.2fs  jobs=%u: %.2fs  "
              "speedup %.2fx  bit_identical=%s\n",
              sweep.cold_jobs1_secs, sweep.jobs1_secs, jobs, sweep.jobsn_secs,
              sweep.jobsn_secs > 0 ? sweep.jobs1_secs / sweep.jobsn_secs : 0.0,
              sweep.bit_identical ? "yes" : "NO");

  std::printf("fork cost: precondition vs snapshot-restore, all FTLs on the "
              "simcore geometry\n");
  const ForkCost fork = measure_fork_cost();
  std::printf("  precondition %.3fs  restore %.3fs  fork_speedup %.1fx  "
              "snapshot %.1f MiB  digests_match=%s\n",
              fork.precondition_secs, fork.restore_secs,
              fork.restore_secs > 0 ? fork.precondition_secs / fork.restore_secs
                                    : 0.0,
              static_cast<double>(fork.snapshot_bytes) / (1024.0 * 1024.0),
              fork.digests_match ? "yes" : "NO");

  write_json(out_path, quick, requests, cells, sweep, fork);

  if (!metrics_path.empty()) {
    obs::MetricsReport report;
    for (const CellResult& cell : cells) {
      report.begin(std::string(sim::to_string(cell.kind)) + "/" +
                   engine_name(cell.engine));
      sim::add_result_metrics(report, cell.result);
      report.end();
    }
    if (!report.write_file(metrics_path)) {
      std::fprintf(stderr, "failed to write metrics report at: %s\n",
                   metrics_path.c_str());
      return 2;
    }
    std::printf("metrics: %s\n", metrics_path.c_str());
  }
  return sweep.bit_identical && fork.digests_match ? 0 : 1;
}
