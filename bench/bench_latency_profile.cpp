// Extension of Fig. 8: request-latency distributions across the four FTLs
// and five workloads. The paper reports IOPS and bandwidth; tail latency
// is where the paired-page backup cost and the LSB/MSB asymmetry are most
// visible to an application.
#include <cstdio>

#include "bench/bench_fig8_common.hpp"
#include "src/util/table.hpp"

using namespace rps;

int main() {
  sim::ExperimentSpec spec = bench::fig8_spec();
  spec.requests = 150'000;
  std::printf("Latency profile: per-request latency percentiles (us)\n\n");

  for (const workload::Preset preset : workload::kAllPresets) {
    TablePrinter table({"FTL", "p50", "p90", "p99", "p99.9", "max"});
    for (const sim::FtlKind kind : sim::kAllFtls) {
      const sim::SimResult r = run_experiment(kind, preset, spec);
      table.add_row({r.ftl_name, TablePrinter::fmt(r.latency_us.percentile(50), 0),
                     TablePrinter::fmt(r.latency_us.percentile(90), 0),
                     TablePrinter::fmt(r.latency_us.percentile(99), 0),
                     TablePrinter::fmt(r.latency_us.percentile(99.9), 0),
                     TablePrinter::fmt(r.latency_us.max(), 0)});
      std::fflush(stdout);
    }
    std::printf("%s:\n%s\n", workload::to_string(preset), table.to_string().c_str());
  }
  return 0;
}
