// Extension of Fig. 8: request-latency distributions across the four FTLs
// and five workloads. The paper reports IOPS and bandwidth; tail latency
// is where the paired-page backup cost and the LSB/MSB asymmetry are most
// visible to an application.
//
// Flags: --requests=N overrides the request count (CI smoke runs);
// --trace=PATH additionally runs one traced flexFTL experiment on the
// first preset and writes Chrome trace JSON + state CSV (see
// bench_fig8_common.hpp).
#include <cstdio>

#include "bench/bench_fig8_common.hpp"
#include "src/util/table.hpp"

using namespace rps;

int main(int argc, char** argv) {
  sim::ExperimentSpec spec = bench::fig8_spec();
  spec.requests = sim::parse_requests_flag(argc, argv, 150'000);
  if (!bench::apply_geometry_flag(argc, argv, spec)) return 2;
  std::printf("Latency profile: per-request latency percentiles (us)\n\n");

  // Precondition each FTL once and fork every preset cell from the
  // snapshot — the fill never sees the preset, so the 5 x 4 matrix pays
  // for 4 preconditions instead of 20 and stays bit-identical.
  std::vector<sim::Snapshot> warm(std::size(sim::kAllFtls));
  for (std::size_t f = 0; f < warm.size(); ++f) {
    warm[f] = sim::make_precondition_snapshot(sim::kAllFtls[f], spec);
  }

  for (const workload::Preset preset : workload::kAllPresets) {
    TablePrinter table({"FTL", "p50", "p90", "p99", "p99.9", "max"});
    for (std::size_t f = 0; f < std::size(sim::kAllFtls); ++f) {
      const sim::FtlKind kind = sim::kAllFtls[f];
      const sim::SimResult r =
          run_experiment(kind, preset, spec, nullptr, nullptr, &warm[f]);
      // Quantiles come from the mergeable histogram (bucket upper bounds,
      // <0.8% relative error) rather than the raw sample sort — identical
      // numbers to what any sharded/merged run of the same spec reports.
      const obs::LatencyHistogram& h = r.latency_hist_us;
      table.add_row({r.ftl_name,
                     TablePrinter::fmt(static_cast<double>(h.percentile(50)), 0),
                     TablePrinter::fmt(static_cast<double>(h.percentile(90)), 0),
                     TablePrinter::fmt(static_cast<double>(h.percentile(99)), 0),
                     TablePrinter::fmt(static_cast<double>(h.percentile(99.9)), 0),
                     TablePrinter::fmt(static_cast<double>(h.max()), 0)});
      std::fflush(stdout);
    }
    std::printf("%s:\n%s\n", workload::to_string(preset), table.to_string().c_str());
  }
  return bench::maybe_write_flex_trace(argc, argv, workload::kAllPresets[0], spec)
             ? 0
             : 2;
}
