// Ablation (ours): rtfFTL's active-block pool size. The paper's Section 5
// argues the return-to-fast scheme is limited because its LSB pool is
// bounded by a small number of active blocks per chip (8 in the
// evaluation). This sweep shows the pool size's effect — and that even a
// large pool cannot match flexFTL, because FPS still interleaves MSB
// programs after at most two LSB pages per block.
#include <cstdio>

#include "bench/bench_fig8_common.hpp"
#include "src/util/table.hpp"

using namespace rps;

int main() {
  std::printf("Ablation: rtfFTL active blocks per chip (Varmail)\n");
  std::printf("(paper setting: 8; flexFTL shown for reference)\n\n");

  TablePrinter table({"FTL", "active blocks", "IOPS", "p50 lat (us)",
                      "bw p99.5 (MB/s)", "erases", "backup pages"});
  for (const std::uint32_t pool : {1u, 2u, 4u, 8u, 16u}) {
    sim::ExperimentSpec spec = bench::fig8_spec();
    spec.requests = 150'000;
    spec.ftl_config.rtf_active_blocks = pool;
    const sim::SimResult r =
        run_experiment(sim::FtlKind::kRtf, workload::Preset::kVarmail, spec);
    table.add_row({"rtfFTL", TablePrinter::fmt_int(pool),
                   TablePrinter::fmt(r.iops_makespan(), 0),
                   TablePrinter::fmt(r.latency_us.percentile(50), 0),
                   TablePrinter::fmt(r.write_bw_mbps.percentile(99.5), 1),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(r.erases)),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(r.ftl_stats.backup_pages))});
    std::fflush(stdout);
  }
  {
    sim::ExperimentSpec spec = bench::fig8_spec();
    spec.requests = 150'000;
    const sim::SimResult r =
        run_experiment(sim::FtlKind::kFlex, workload::Preset::kVarmail, spec);
    table.add_row({"flexFTL", "-", TablePrinter::fmt(r.iops_makespan(), 0),
                   TablePrinter::fmt(r.latency_us.percentile(50), 0),
                   TablePrinter::fmt(r.write_bw_mbps.percentile(99.5), 1),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(r.erases)),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(r.ftl_stats.backup_pages))});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
