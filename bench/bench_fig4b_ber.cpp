// Fig. 4(b) reproduction: bit-error-rate distributions under the paper's
// worst-case operating condition (3K P/E cycles + 1 year retention) for
// the FPS and RPS program schemes. The paper's claim: the BER for RPS is
// not higher than for FPS even at end of life.
#include <cstdio>

#include "src/reliability/study.hpp"
#include "src/util/table.hpp"

using namespace rps;
using reliability::Scheme;

int main() {
  reliability::StudyConfig config;
  config.blocks = 96;
  config.wordlines = 64;
  config.interference.cells_per_wordline = 1024;
  config.stress = reliability::StressCondition::worst_case();
  config.seed = 42;

  const std::vector<Scheme> schemes = {Scheme::kFps, Scheme::kRpsFull,
                                       Scheme::kRpsHalf, Scheme::kRpsRandom,
                                       Scheme::kUnconstrained};
  const auto results = run_studies(schemes, config);

  std::printf("Fig. 4(b): bit error rate under the worst-case condition\n");
  std::printf("(%.0f P/E cycles, %.0f-day retention)\n\n", config.stress.pe_cycles,
              config.stress.retention_days);

  TablePrinter table({"Scheme", "p10", "median", "p90", "p99", "max", "mean"});
  double fps_median = 0.0;
  for (const reliability::StudyResult& r : results) {
    if (r.scheme == Scheme::kFps) fps_median = r.ber_per_page.median();
    table.add_row({to_string(r.scheme),
                   TablePrinter::fmt(r.ber_per_page.percentile(10) * 1e3, 3),
                   TablePrinter::fmt(r.ber_per_page.median() * 1e3, 3),
                   TablePrinter::fmt(r.ber_per_page.percentile(90) * 1e3, 3),
                   TablePrinter::fmt(r.ber_per_page.percentile(99) * 1e3, 3),
                   TablePrinter::fmt(r.ber_per_page.max() * 1e3, 3),
                   TablePrinter::fmt(r.ber_per_page.mean() * 1e3, 3)});
  }
  std::printf("%s(all values x 1e-3)\n\n", table.to_string().c_str());

  std::printf("Paper's claim: RPS BER is NOT higher than FPS BER at worst case.\n");
  for (const reliability::StudyResult& r : results) {
    if (r.scheme == Scheme::kFps) continue;
    const double ratio = fps_median > 0 ? r.ber_per_page.median() / fps_median : 0.0;
    const bool rps = r.scheme != Scheme::kUnconstrained;
    std::printf("  %-12s median BER / FPS median BER = %.3f (%s)\n",
                to_string(r.scheme), ratio,
                rps ? (ratio <= 1.05 ? "holds" : "VIOLATED")
                    : "strawman: expected > 1");
  }
  return 0;
}
