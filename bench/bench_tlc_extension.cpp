// Extension (paper Section 1 / future work): the RPS idea carried to TLC
// (3-bit) NAND. Shows (a) the interference-exposure bound of the relaxed
// TLC sequence equals the conventional shadow sequence's, and (b) the
// fast-phase capacity RPS unlocks: the whole block's LSB pages become one
// consecutive fast run instead of FPS's three-page prefix.
#include <cstdio>

#include "src/nand/tlc.hpp"
#include "src/core/flex_tlc_ftl.hpp"
#include "src/reliability/tlc_study.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"

using namespace rps;

namespace {

/// Longest prefix of pure-LSB programs a sequence kind allows.
std::uint32_t lsb_run_capacity(std::uint32_t wordlines, nand::TlcSequenceKind kind) {
  nand::TlcBlockState block(wordlines);
  std::uint32_t run = 0;
  for (std::uint32_t k = 0; k < wordlines; ++k) {
    if (!nand::check_tlc_program_legality(block, {k, nand::TlcPageType::kLsb}, kind)
             .is_ok()) {
      break;
    }
    block.mark_programmed({k, nand::TlcPageType::kLsb});
    ++run;
  }
  return run;
}

}  // namespace

int main() {
  constexpr std::uint32_t kWordlines = 96;
  constexpr int kTrials = 300;
  Rng rng(7);

  std::printf("TLC extension: relaxed program sequence on 3-bit NAND\n");
  std::printf("(%u word lines = %u pages per block, %d random orders per scheme)\n\n",
              kWordlines, kWordlines * 3, kTrials);

  // Interference exposure per word line (aggressor programs after the
  // final pass), over random members of each sequence family.
  TablePrinter table({"Scheme", "max exposure", "mean exposure",
                      "consecutive LSB run"});
  {
    SampleSet fps;
    for (const std::uint32_t e :
         nand::analyze_tlc_exposure(nand::tlc_fps_order(kWordlines), kWordlines)) {
      fps.add(e);
    }
    table.add_row({"TLC-FPS (shadow)", TablePrinter::fmt(fps.max(), 0),
                   TablePrinter::fmt(fps.mean(), 3),
                   TablePrinter::fmt_int(lsb_run_capacity(kWordlines,
                                                          nand::TlcSequenceKind::kFps))});
  }
  {
    SampleSet rps;
    for (int t = 0; t < kTrials; ++t) {
      for (const std::uint32_t e : nand::analyze_tlc_exposure(
               nand::random_tlc_rps_order(kWordlines, rng), kWordlines)) {
        rps.add(e);
      }
    }
    table.add_row({"TLC-RPS (random)", TablePrinter::fmt(rps.max(), 0),
                   TablePrinter::fmt(rps.mean(), 3),
                   TablePrinter::fmt_int(lsb_run_capacity(kWordlines,
                                                          nand::TlcSequenceKind::kRps))});
  }
  {
    SampleSet wild;
    for (int t = 0; t < kTrials; ++t) {
      for (const std::uint32_t e : nand::analyze_tlc_exposure(
               nand::random_tlc_unconstrained_order(kWordlines, rng), kWordlines)) {
        wild.add(e);
      }
    }
    table.add_row({"TLC-Unconstrained", TablePrinter::fmt(wild.max(), 0),
                   TablePrinter::fmt(wild.mean(), 3), "-"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Dropping the over-specified T6 keeps the exposure bound at 1 (as on\n");
  std::printf("MLC) while growing the consecutive fast-LSB run from 3 pages to the\n");
  std::printf("whole block — the TLC analogue of the paper's RPSfull/2PO scheme.\n\n");

  // Fig. 4 methodology on the 8-state TLC Vth model.
  std::printf("TLC reliability (Fig. 4 methodology, 8-state Vth model):\n");
  TablePrinter reliability({"Scheme", "median WPi [V]", "mean BER (x1e-3)",
                            "max aggressors"});
  const reliability::TlcStudyConfig config;
  for (const reliability::TlcScheme scheme :
       {reliability::TlcScheme::kFps, reliability::TlcScheme::kRpsFull,
        reliability::TlcScheme::kRpsRandom, reliability::TlcScheme::kUnconstrained}) {
    const reliability::TlcStudyResult r =
        reliability::run_tlc_study(scheme, 48, 48, config, 42);
    reliability.add_row({to_string(scheme),
                         TablePrinter::fmt(r.wpi_per_page.median(), 4),
                         TablePrinter::fmt(r.ber_per_page.mean() * 1e3, 3),
                         TablePrinter::fmt(r.aggressors.max(), 0)});
  }
  std::printf("%s\n", reliability.to_string().c_str());

  // 3PO burst absorption on the full flexFTL-TLC stack: under buffer
  // pressure the whole burst rides the 400 us LSB pass; the shadow-order
  // average would be (400+1100+2600)/3 = 1367 us per page.
  std::printf("flexFTL-TLC burst absorption (3PO):\n");
  core::TlcFtlConfig ftl_config;
  ftl_config.geometry = nand::TlcGeometry{.channels = 2,
                                          .chips_per_channel = 2,
                                          .blocks_per_chip = 64,
                                          .wordlines_per_block = 32,
                                          .page_size_bytes = 4096};
  core::FlexTlcFtl ftl(ftl_config);
  const Lpn burst = 512;
  for (Lpn lpn = 0; lpn < burst; ++lpn) {
    (void)ftl.write(lpn, 0, /*buffer_utilization=*/0.95);
  }
  const Microseconds drain = ftl.device().all_idle_at();
  const double per_page = static_cast<double>(drain) /
                          (static_cast<double>(burst) / ftl_config.geometry.num_chips());
  std::printf("  %llu-page burst drained in %lld us: %.0f us/page/chip "
              "(LSB pass: %lld us; shadow average: %.0f us)\n",
              static_cast<unsigned long long>(burst), static_cast<long long>(drain),
              per_page, static_cast<long long>(ftl_config.timing.program_lsb_us),
              (400.0 + 1100.0 + 2600.0) / 3.0);
  std::printf("  host writes by pass (L/C/M): %llu / %llu / %llu\n",
              static_cast<unsigned long long>(ftl.stats().host_writes_by_pass[0]),
              static_cast<unsigned long long>(ftl.stats().host_writes_by_pass[1]),
              static_cast<unsigned long long>(ftl.stats().host_writes_by_pass[2]));
  return 0;
}
