// Microbench (ours): what the command-scheduling controller layer buys on
// multi-page requests. A QD-8 stream of 8-page sequential writes is replayed
// twice per FTL — once through the legacy synchronous path (each request's
// pages programmed one after another, placement blind to chip busyness) and
// once through the controller (requests split into per-page ops, ops striped
// across idle chips).
//
// Read the numbers honestly: at QD-8 the legacy closed loop already keeps
// 8 requests in flight, and pageFTL/flexFTL's headroom-driven chip choice
// round-robins the array well enough to keep every chip busy — the device is
// the bottleneck and the controller can only match it, not double it. The
// controller's win shows where the *policy* serializes: rtfFTL funnels
// bursts into a bounded LSB-active pool, and striping ops to idle chips
// recovers the array parallelism the pool ordering gives up.
#include <cstdio>

#include "src/sim/runner.hpp"
#include "src/util/table.hpp"
#include "src/workload/trace.hpp"

using namespace rps;

namespace {

constexpr std::uint32_t kQueueDepth = 8;
constexpr std::uint32_t kPagesPerRequest = 8;
constexpr std::uint64_t kRequests = 10'000;

workload::Trace sequential_writes(Lpn space) {
  workload::Trace trace("seq-write-8p");
  trace.reserve(kRequests);
  Lpn lpn = 0;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    workload::IoRequest req;
    req.arrival_us = 0;  // back-to-back: the QD-8 window alone gates issue
    req.kind = workload::IoKind::kWrite;
    req.lpn = lpn;
    req.page_count = kPagesPerRequest;
    trace.add(req);
    lpn += kPagesPerRequest;
    if (lpn + kPagesPerRequest > space) lpn = 0;
  }
  return trace;
}

struct RunNumbers {
  double iops = 0.0;
  double utilization = 0.0;
  double waf = 0.0;
};

RunNumbers run_one(sim::FtlKind kind, sim::Engine engine) {
  ftl::FtlConfig config;
  config.geometry = sim::bench_geometry();
  config.overprovisioning = 0.20;
  auto ftl = sim::make_ftl(kind, config);

  sim::SimConfig sim_config;
  sim_config.engine = engine;
  sim_config.queue_depth = kQueueDepth;
  sim::Simulator simulator(*ftl, sim_config);
  simulator.precondition();

  const std::uint32_t chips = ftl->device().geometry().num_chips();
  Microseconds busy_before = 0;
  for (std::uint32_t c = 0; c < chips; ++c) {
    busy_before += ftl->device().chip(c).busy_time_total();
  }

  const Lpn space = ftl->exported_pages();
  const sim::SimResult r = simulator.run(sequential_writes(space));

  Microseconds busy_after = 0;
  for (std::uint32_t c = 0; c < chips; ++c) {
    busy_after += ftl->device().chip(c).busy_time_total();
  }

  RunNumbers n;
  n.iops = r.iops_makespan();
  n.waf = r.waf();
  if (r.makespan_us > 0) {
    n.utilization = static_cast<double>(busy_after - busy_before) /
                    (static_cast<double>(chips) * static_cast<double>(r.makespan_us));
  }
  return n;
}

}  // namespace

int main() {
  std::printf(
      "Controller striping microbench: QD-%u, %u-page sequential writes,\n"
      "%llu requests on the Fig. 8 geometry (8 channels x 4 chips).\n"
      "'util' is the mean fraction of the run each chip spent busy.\n\n",
      kQueueDepth, kPagesPerRequest, static_cast<unsigned long long>(kRequests));

  TablePrinter table({"FTL", "engine", "IOPS", "util", "WAF", "vs legacy"});
  for (const sim::FtlKind kind :
       {sim::FtlKind::kPage, sim::FtlKind::kRtf, sim::FtlKind::kFlex}) {
    double legacy_iops = 0.0;
    for (const sim::Engine engine :
         {sim::Engine::kLegacySync, sim::Engine::kController}) {
      const bool is_legacy = engine == sim::Engine::kLegacySync;
      const RunNumbers n = run_one(kind, engine);
      if (is_legacy) legacy_iops = n.iops;
      const double ratio = legacy_iops > 0.0 ? n.iops / legacy_iops : 0.0;
      table.add_row({std::string(sim::to_string(kind)),
                     is_legacy ? "legacy" : "controller",
                     TablePrinter::fmt(n.iops, 0), TablePrinter::fmt(n.utilization, 3),
                     TablePrinter::fmt(n.waf, 2),
                     is_legacy ? "1.00x" : TablePrinter::fmt(ratio, 2) + "x"});
      std::fflush(stdout);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Note: legacy pageFTL/flexFTL are already work-conserving at this depth\n"
      "(util ~1.0) — the controller matches the device ceiling there; the\n"
      "striping gain concentrates where policy ordering idles chips (rtfFTL).\n");
  return 0;
}
