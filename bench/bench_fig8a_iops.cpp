// Fig. 8(a) reproduction: normalized IOPS of pageFTL, parityFTL, rtfFTL
// and flexFTL across the five workloads. The paper's headline numbers:
// flexFTL beats pageFTL by up to 16% (5% avg), parityFTL by up to 56%
// (35% avg) and rtfFTL by up to 61% (29% avg); it matches pageFTL on the
// idle-less OLTP/NTRX and the read-dominant Webserver.
#include <cstdio>

#include "bench/bench_fig8_common.hpp"
#include "src/util/table.hpp"

using namespace rps;

int main(int argc, char** argv) {
  sim::ExperimentSpec spec = bench::fig8_spec();
  spec.requests = sim::parse_requests_flag(argc, argv, spec.requests);
  if (!bench::apply_geometry_flag(argc, argv, spec)) return 2;
  const std::uint32_t jobs = sim::parse_jobs_flag(argc, argv);
  std::printf("Fig. 8(a): normalized IOPS, 4 FTLs x 5 workloads\n");
  std::printf("(%llu requests per run; IOPS over makespan, closed-loop think time)\n\n",
              static_cast<unsigned long long>(spec.requests));

  const std::vector<workload::Preset> presets(std::begin(workload::kAllPresets),
                                              std::end(workload::kAllPresets));
  // All 20 preset x FTL experiments fan out jobs-wide; the matrix comes
  // back in loop order, so the table below is identical at any --jobs.
  const std::vector<std::vector<sim::SimResult>> matrix =
      sim::run_preset_matrix(presets, spec, jobs);

  TablePrinter table({"Workload", "pageFTL", "parityFTL", "rtfFTL", "flexFTL",
                      "flex/page", "flex/parity", "flex/rtf"});
  double sums[3] = {0, 0, 0};
  for (std::size_t p = 0; p < presets.size(); ++p) {
    const workload::Preset preset = presets[p];
    const std::vector<sim::SimResult>& results = matrix[p];
    const double page = results[0].iops_makespan();
    const double parity = results[1].iops_makespan();
    const double rtf = results[2].iops_makespan();
    const double flex = results[3].iops_makespan();
    table.add_row({workload::to_string(preset), TablePrinter::fmt(1.0, 2),
                   TablePrinter::fmt(parity / page, 2),
                   TablePrinter::fmt(rtf / page, 2),
                   TablePrinter::fmt(flex / page, 2),
                   TablePrinter::fmt(flex / page, 2),
                   TablePrinter::fmt(flex / parity, 2),
                   TablePrinter::fmt(flex / rtf, 2)});
    sums[0] += flex / page;
    sums[1] += flex / parity;
    sums[2] += flex / rtf;
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("flexFTL average gain: vs pageFTL %+.0f%% (paper: +5%%), "
              "vs parityFTL %+.0f%% (paper: +35%%), vs rtfFTL %+.0f%% (paper: +29%%)\n",
              (sums[0] / 5 - 1) * 100, (sums[1] / 5 - 1) * 100,
              (sums[2] / 5 - 1) * 100);
  if (!bench::maybe_write_metrics(argc, argv, presets, matrix)) return 2;
  return bench::maybe_write_flex_trace(argc, argv, workload::kAllPresets[0], spec)
             ? 0
             : 2;
}
