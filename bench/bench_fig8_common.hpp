// Shared configuration for the Fig. 8 benches: the evaluation setup of
// Section 4.1 scaled to 128 blocks per chip (4 GB) so each full run of
// 4 FTLs x 5 workloads completes in seconds. See DESIGN.md for the
// methodology (precondition + locality-matched warm-up + closed-loop
// think-time replay).
#pragma once

#include "src/sim/runner.hpp"

namespace rps::bench {

inline sim::ExperimentSpec fig8_spec() {
  sim::ExperimentSpec spec = sim::ExperimentSpec::bench_default();
  spec.requests = 300'000;
  spec.seed = 1;
  return spec;
}

}  // namespace rps::bench
