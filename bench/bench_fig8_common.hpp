// Shared configuration for the Fig. 8 benches: the evaluation setup of
// Section 4.1 scaled to 128 blocks per chip (4 GB) so each full run of
// 4 FTLs x 5 workloads completes in seconds. See DESIGN.md for the
// methodology (precondition + locality-matched warm-up + closed-loop
// think-time replay).
#pragma once

#include <cstdio>
#include <string>

#include "src/obs/metrics.hpp"
#include "src/obs/sampler.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/runner.hpp"

namespace rps::bench {

inline sim::ExperimentSpec fig8_spec() {
  sim::ExperimentSpec spec = sim::ExperimentSpec::bench_default();
  spec.requests = 300'000;
  spec.seed = 1;
  return spec;
}

/// --geometry=paper|paper4x|paper16x: device-topology presets for the
/// Fig. 8 benches, all derived from the scaled bench geometry (8 ch x
/// 4 chips, 128 blocks, 4 GB) so runtimes stay bench-sized:
///   paper    - the default single-plane array (flag optional);
///   paper4x  - 4 planes per chip (4x capacity, multi-plane GC erase
///              coalescing and plane-grouped striping become active);
///   paper16x - 4 planes AND a doubled channel/chip fabric (16x).
/// Returns false (after printing to stderr) on an unknown preset name;
/// true when the flag is absent or applied.
inline bool apply_geometry_flag(int argc, char** argv,
                                sim::ExperimentSpec& spec) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--geometry=", 0) != 0) continue;
    const std::string name = arg.substr(11);
    nand::Geometry g = sim::bench_geometry();
    if (name == "paper") {
      // The default: explicit spelling of the no-flag configuration.
    } else if (name == "paper4x") {
      g.planes_per_chip = 4;
    } else if (name == "paper16x") {
      g.planes_per_chip = 4;
      g.channels *= 2;
      g.chips_per_channel *= 2;
    } else {
      std::fprintf(stderr,
                   "unknown --geometry preset: %s (want paper|paper4x|paper16x)\n",
                   name.c_str());
      return false;
    }
    spec.ftl_config.geometry = g;
    std::printf("geometry: %s (%u ch x %u chips x %u planes, %u blocks/plane)\n",
                name.c_str(), g.channels, g.chips_per_channel, g.planes_per_chip,
                g.blocks_per_chip);
  }
  return true;
}

/// --trace=PATH support for the Fig. 8 benches: run ONE extra traced
/// flexFTL experiment on `preset` and write its Chrome trace_event JSON
/// to PATH (open in Perfetto / chrome://tracing) plus the FTL state time
/// series (u, q, SBQueue depth, free-block fraction, queue depths on a
/// 1 ms grid) to PATH.state.csv. A dedicated single-threaded run, apart
/// from the measured fleet, so the bench numbers stay untouched and the
/// trace is byte-identical regardless of --jobs. Returns false only when
/// the artifacts cannot be written; true when the flag is absent.
inline bool maybe_write_flex_trace(int argc, char** argv,
                                   workload::Preset preset,
                                   const sim::ExperimentSpec& spec) {
  const std::string path = sim::parse_trace_flag(argc, argv);
  if (path.empty()) return true;
  obs::TraceSink sink;
  obs::StateSampler sampler(/*period_us=*/1'000);
  (void)run_experiment(sim::FtlKind::kFlex, preset, spec, &sink, &sampler);
  const std::string state_path = path + ".state.csv";
  if (!sink.write_chrome_json(path) || !sampler.write_csv(state_path)) {
    std::fprintf(stderr, "failed to write trace artifacts at: %s\n",
                 path.c_str());
    return false;
  }
  std::printf("trace: %s (%zu events); state series: %s (%zu samples)\n",
              path.c_str(), sink.size(), state_path.c_str(),
              sampler.samples().size());
  return true;
}

/// --metrics=PATH support for the Fig. 8 benches: write one structured
/// obs::MetricsReport over the already-computed result matrix — one
/// "<preset>/<ftl>" section per cell with headline numbers, the
/// cause-tagged WAF breakdown and the wear-ledger digest. The report
/// serializes finished SimResults (which are --jobs-invariant), so the
/// file is byte-identical for any --jobs value. Returns false only when
/// the file cannot be written; true when the flag is absent.
inline bool maybe_write_metrics(int argc, char** argv,
                                const std::vector<workload::Preset>& presets,
                                const std::vector<std::vector<sim::SimResult>>& matrix) {
  const std::string path = sim::parse_metrics_flag(argc, argv);
  if (path.empty()) return true;
  obs::MetricsReport report;
  for (std::size_t p = 0; p < presets.size(); ++p) {
    for (const sim::SimResult& result : matrix[p]) {
      report.begin(std::string(workload::to_string(presets[p])) + "/" +
                   result.ftl_name);
      sim::add_result_metrics(report, result);
      report.end();
    }
  }
  if (!report.write_file(path)) {
    std::fprintf(stderr, "failed to write metrics report at: %s\n", path.c_str());
    return false;
  }
  std::printf("metrics: %s\n", path.c_str());
  return true;
}

}  // namespace rps::bench
