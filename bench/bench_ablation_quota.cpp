// Ablation (ours): the LSB quota q. The paper motivates q as the guard
// against performance fluctuation — without it, a long burst consumes all
// free LSB pages and the bandwidth collapses to MSB speed. This sweep
// varies the initial quota (as a fraction of all LSB pages; the paper uses
// 5%) and reports Varmail IOPS, latency and bandwidth stability.
#include <cstdio>

#include "bench/bench_fig8_common.hpp"
#include "src/util/table.hpp"

using namespace rps;

int main() {
  std::printf("Ablation: flexFTL initial LSB quota q0 (Varmail)\n");
  std::printf("(paper setting: q0 = 5%% of all LSB pages)\n\n");

  TablePrinter table({"q0 fraction", "IOPS", "p50 lat (us)", "p99 lat (us)",
                      "bw p99.5 (MB/s)", "bw stddev", "LSB share"});
  for (const double fraction : {0.0, 0.01, 0.05, 0.20, 1.00}) {
    sim::ExperimentSpec spec = bench::fig8_spec();
    spec.requests = 150'000;
    spec.ftl_config.initial_quota_fraction = fraction;
    const sim::SimResult r =
        run_experiment(sim::FtlKind::kFlex, workload::Preset::kVarmail, spec);
    StreamingStats bw;
    for (const double x : r.write_bw_mbps.sorted()) bw.add(x);
    const double lsb_share =
        static_cast<double>(r.ftl_stats.host_lsb_writes) /
        static_cast<double>(r.ftl_stats.host_lsb_writes + r.ftl_stats.host_msb_writes);
    table.add_row({TablePrinter::fmt(fraction, 2),
                   TablePrinter::fmt(r.iops_makespan(), 0),
                   TablePrinter::fmt(r.latency_us.percentile(50), 0),
                   TablePrinter::fmt(r.latency_us.percentile(99), 0),
                   TablePrinter::fmt(r.write_bw_mbps.percentile(99.5), 1),
                   TablePrinter::fmt(bw.stddev(), 1),
                   TablePrinter::fmt(lsb_share, 2)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("q0 = 0 disables LSB bursts entirely; very large q0 risks free-LSB\n");
  std::printf("exhaustion under sustained load (the fluctuation the paper warns of).\n");
  return 0;
}
