// Micro benchmarks (google-benchmark): the op-level costs of the simulator
// primitives — constraint checking, order generation, device operations,
// mapping updates, parity XOR and the interference Monte Carlo. These
// bound the simulation throughput (host-time per simulated I/O).
#include <benchmark/benchmark.h>

#include "src/core/flex_ftl.hpp"
#include "src/ftl/page_ftl.hpp"
#include "src/nand/device.hpp"
#include "src/nand/program_order.hpp"
#include "src/reliability/interference.hpp"
#include "src/util/random.hpp"

using namespace rps;

namespace {

void BM_CheckProgramLegality(benchmark::State& state) {
  nand::BlockProgramState block(128);
  for (std::uint32_t wl = 0; wl < 64; ++wl) {
    block.mark_programmed({wl, nand::PageType::kLsb});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(nand::check_program_legality(
        block, {64, nand::PageType::kLsb}, nand::SequenceKind::kRps));
  }
}
BENCHMARK(BM_CheckProgramLegality);

void BM_FpsOrderGeneration(benchmark::State& state) {
  const auto wordlines = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nand::fps_order(wordlines));
  }
}
BENCHMARK(BM_FpsOrderGeneration)->Arg(64)->Arg(128);

void BM_RandomRpsOrder(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nand::random_rps_order(64, rng));
  }
}
BENCHMARK(BM_RandomRpsOrder);

void BM_ExposureAnalysis(benchmark::State& state) {
  const nand::ProgramOrder order = nand::rps_full_order(128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nand::analyze_exposure(order, 128));
  }
}
BENCHMARK(BM_ExposureAnalysis);

void BM_DeviceProgramEraseCycle(benchmark::State& state) {
  nand::NandDevice dev(nand::Geometry::tiny(), nand::TimingSpec::paper(),
                       nand::SequenceKind::kRps);
  const nand::ProgramOrder order =
      nand::rps_full_order(nand::Geometry::tiny().wordlines_per_block);
  Microseconds now = 0;
  for (auto _ : state) {
    for (const nand::PagePos pos : order) {
      benchmark::DoNotOptimize(dev.program({0, 0, pos}, {}, now));
    }
    benchmark::DoNotOptimize(dev.erase({0, 0}, now));
    now = dev.all_idle_at();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(order.size()));
}
BENCHMARK(BM_DeviceProgramEraseCycle);

void BM_PageDataXor(benchmark::State& state) {
  nand::PageData acc;
  acc.lpn = 0;
  nand::PageData page;
  page.lpn = 42;
  page.signature = 0x1234567890abcdefull;
  page.bytes.assign(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    acc.xor_with(page);
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PageDataXor)->Arg(0)->Arg(4096);

void BM_PageFtlWrite(benchmark::State& state) {
  ftl::PageFtl ftl(ftl::FtlConfig::tiny());
  const Lpn n = ftl.exported_pages();
  Rng rng(7);
  for (Lpn lpn = 0; lpn < n; ++lpn) {
    (void)ftl.write(lpn, 0, 0.5);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl.write(rng.next_below(n), 0, 0.5));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageFtlWrite);

void BM_FlexFtlWrite(benchmark::State& state) {
  core::FlexFtl ftl(ftl::FtlConfig::tiny());
  const Lpn n = ftl.exported_pages();
  Rng rng(7);
  for (Lpn lpn = 0; lpn < n; ++lpn) {
    (void)ftl.write(lpn, 0, 0.5);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl.write(rng.next_below(n), 0, 0.5));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlexFtlWrite);

void BM_FlexFtlRead(benchmark::State& state) {
  core::FlexFtl ftl(ftl::FtlConfig::tiny());
  const Lpn n = ftl.exported_pages();
  Rng rng(7);
  for (Lpn lpn = 0; lpn < n; ++lpn) {
    (void)ftl.write(lpn, 0, 0.5);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl.read(rng.next_below(n), 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlexFtlRead);

void BM_InterferenceBlock(benchmark::State& state) {
  Rng rng(3);
  reliability::InterferenceConfig config;
  config.cells_per_wordline = 256;
  const nand::ProgramOrder order = nand::rps_full_order(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reliability::simulate_block(order, 16, config, rng));
  }
}
BENCHMARK(BM_InterferenceBlock);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(5);
  ZipfGenerator zipf(1 << 20, 0.85);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

}  // namespace
