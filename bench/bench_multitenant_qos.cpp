// Multi-tenant QoS bench: arbitration policy vs an adversarial flood.
//
// N tenants share one device through the multi-queue frontend. Tenants
// 0..N-2 ("victims") are well-behaved open-loop Poisson sources of
// single-page requests; tenant N-1 is an adversarial write flood that
// wakes up mid-run and pours large multi-page writes into its queue far
// faster than the device can serve them. The same tenant set replays
// under each arbitration policy (RR, WRR, WDRR), and every victim also
// replays alone on a fresh device (its solo baseline).
//
// The quantity under test is the victims' pooled p99 completion latency
// (completion - arrival, so queueing delay is included; pooling all
// victims gives the percentile thousands of samples, making it stable
// across seeds). The shared admission budget is what the policies fight
// over: it holds one 8-page flood command plus two victim pages, so at
// every completion instant the arbiter decides whether freed pages go to
// waiting victim heads or back to the flood. Cost-blind RR hands the
// flood a whole command per cycle — 8x a victim's turn in pages — and
// interleaves it ahead of queued victim writes in the controller's FIFO;
// WDRR (page-granular deficits, one-page quantum) drains every waiting
// victim head first and lets the flood claim budget only when no victim
// is waiting. The acceptance bar (checked at exit): pooled victim p99
// under WDRR <= 2x the pooled solo p99, while plain RR exceeds it.
//
// Determinism: tenant traces come from build_tenant_traces (slot-per-
// index, derive_seed per tenant) and every cell is an independent
// single-threaded replay, so the final digest is bit-identical for any
// --jobs value. CI runs --jobs=1 and --jobs=2 and compares the digest
// line.
//
// Usage: bench_multitenant_qos [--quick] [--tenants=N] [--jobs=N]
//                              [--seed=N] [--out=PATH] [--trace=PATH]
//                              [--metrics=PATH]
//   --quick    smaller request counts (CI smoke)
//   --tenants  tenant count, clamped to [8, 1024] (default 16)
//   --jobs     parallelism across cells and trace generation (default 1)
//   --out      JSON path (default BENCH_multitenant_qos.json in the CWD)
//   --trace    write a Perfetto-loadable trace of the WDRR cell
//   --metrics  write an obs::MetricsReport of a dedicated WDRR re-run
//              (fresh device, so device totals == run delta), including
//              the per-tenant stream_programs breakdown and wear ledger
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/host/multi_queue.hpp"
#include "src/host/tenant.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/runner.hpp"
#include "src/util/parallel.hpp"

using namespace rps;

namespace {

/// Mid-size device: 4 x 2 chips, 96 blocks x 32 wordlines (64 MLC pages)
/// x 2 KB = 48k pages. Sized so the whole bench writes well under one
/// device fill — GC never runs, so the policy contrast is pure
/// arbitration, not GC interference. Small enough that the full
/// policy x solo matrix still finishes in seconds.
nand::Geometry qos_geometry() {
  nand::Geometry g;
  g.channels = 4;
  g.chips_per_channel = 2;
  g.blocks_per_chip = 96;
  g.wordlines_per_block = 32;
  g.page_size_bytes = 2048;
  return g;
}

struct BenchParams {
  std::uint32_t tenants = 16;
  /// Requests across ALL victims combined is held at victim_requests x 15
  /// regardless of --tenants (see make_tenants), so the run length and
  /// device fill are invariant under tenant-count scaling.
  std::uint64_t victim_requests = 800;
  Microseconds victim_interarrival_us = 5'000;
  /// Write-heavy victims: the victim tail is then dominated by program
  /// latency, the resource the flood actually contends for.
  double victim_read_fraction = 0.2;
  /// Enough flood commands that the flood stays backlogged from its start
  /// (1/3 into the run) until the last victim completes, under every
  /// policy — so the contended fraction of victim requests is the same
  /// across policies and seeds.
  std::uint64_t flood_requests = 2'600;
  /// Eight pages per flood command: cost-blind admission hands the flood
  /// 8x a victim's bandwidth per turn (one command saturates every chip
  /// of the 4x2 device for about one program time).
  std::uint32_t flood_pages = 8;
  Microseconds flood_interarrival_us = 100;
  /// NVMe-style shared controller admission budget (pages) — the scarce
  /// resource the arbiter allocates under saturation. One flood command
  /// plus two victim pages: a victim never queues behind more than one
  /// flood command inside the device, and whenever the budget binds it is
  /// the arbitration policy that decides who gets the freed pages.
  std::uint32_t shared_page_budget = 10;
  /// WDRR deficit grant per visit. One page = the victims' command size,
  /// so page-fairness is enforced at victim granularity: a victim's head
  /// always fits a fresh grant, while the flood must bank several visits
  /// per command and never claims budget while a victim head waits.
  std::uint32_t quantum_pages = 1;
  /// Controller write striping (on in every cell, including solo).
  bool stripe_writes = true;
  std::uint64_t seed = 1;
};

std::vector<host::TenantConfig> make_tenants(const BenchParams& p) {
  std::vector<host::TenantConfig> tenants;
  tenants.reserve(p.tenants);
  // Aggregate victim load stays constant as --tenants varies: the
  // per-victim interarrival stretches linearly with the victim count
  // (the default 15 victims at 4 ms each, ~3.75 req/ms aggregate), so
  // the device operating point — and the QoS contrast — survives scaling
  // from 8 to 64 tenants.
  const std::uint64_t victims = p.tenants - 1;
  const Microseconds victim_gap =
      std::max<Microseconds>(1, p.victim_interarrival_us * victims / 15);
  const std::uint64_t victim_requests =
      std::max<std::uint64_t>(50, p.victim_requests * 15 / victims);
  for (std::uint32_t i = 0; i + 1 < p.tenants; ++i) {
    host::TenantConfig t;
    t.id = i;
    t.read_fraction = p.victim_read_fraction;
    t.size_dist = {{1, 1.0}};
    t.mean_interarrival_us = victim_gap;
    t.requests = victim_requests;
    tenants.push_back(t);
  }
  // The adversary: saturating large sequential-ish writes, switched on
  // one third of the way into the victims' run.
  host::TenantConfig flood;
  flood.id = p.tenants - 1;
  flood.read_fraction = 0.0;
  flood.size_dist = {{p.flood_pages, 1.0}};
  flood.mean_interarrival_us = p.flood_interarrival_us;
  flood.start_us = p.victim_requests * p.victim_interarrival_us / 3;
  flood.requests = p.flood_requests;
  tenants.push_back(flood);
  return tenants;
}

std::unique_ptr<ftl::FtlBase> make_device() {
  ftl::FtlConfig config;
  config.geometry = qos_geometry();
  // The page-mapped baseline FTL: its in-order LSB/MSB programming makes
  // the solo write tail a stable ~tPROG_msb, so "p99 vs solo" measures
  // arbitration, not placement luck. (flexFTL serves a lone tenant almost
  // entirely from fast LSB pages, which deflates the solo baseline and
  // would make any contended ratio look catastrophic.)
  return sim::make_ftl(sim::FtlKind::kPage, config);
}

/// One multi-tenant replay of the full tenant set under `policy`. With
/// `keep_device` non-null the freshly built FTL is handed back to the
/// caller after the run (--metrics reads its attribution + wear ledger;
/// a fresh device means totals == the run's delta).
host::MultiQueueResult run_policy_cell(const BenchParams& params,
                                       const std::vector<host::TenantConfig>& tenants,
                                       const std::vector<workload::Trace>& traces,
                                       ctrl::ArbPolicy policy,
                                       obs::TraceSink* sink = nullptr,
                                       std::unique_ptr<ftl::FtlBase>* keep_device = nullptr) {
  std::unique_ptr<ftl::FtlBase> ftl = make_device();
  host::MultiQueueConfig mq;
  mq.arbiter.policy = policy;
  mq.arbiter.quantum_pages = params.quantum_pages;
  mq.shared_page_budget = params.shared_page_budget;
  mq.stripe_writes = params.stripe_writes;
  host::MultiQueueFrontend frontend(*ftl, mq);
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    frontend.add_tenant(tenants[i], traces[i]);
  }
  if (sink != nullptr) frontend.set_observability(sink, nullptr);
  host::MultiQueueResult result = frontend.run();
  if (keep_device != nullptr) *keep_device = std::move(ftl);
  return result;
}

/// Victim `id` alone on a fresh device: the same trace, no contention.
host::MultiQueueResult run_solo_cell(const BenchParams& params,
                                     const host::TenantConfig& victim,
                                     const workload::Trace& trace) {
  std::unique_ptr<ftl::FtlBase> ftl = make_device();
  host::MultiQueueConfig mq;
  mq.shared_page_budget = params.shared_page_budget;
  mq.stripe_writes = params.stripe_writes;
  host::MultiQueueFrontend frontend(*ftl, mq);
  host::TenantConfig solo = victim;
  solo.id = 0;  // single queue; stream falls back to the default slot
  solo.stream = 0;
  frontend.add_tenant(solo, trace);
  return frontend.run();
}

std::uint64_t mix_digest(std::uint64_t h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (byte * 8)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

struct PolicySummary {
  ctrl::ArbPolicy policy = ctrl::ArbPolicy::kRoundRobin;
  /// All victims' completions pooled into one histogram — thousands of
  /// samples, so the p99 (and the acceptance ratio built on it) is stable
  /// across seeds, unlike any single victim's 99th percentile.
  std::uint64_t victim_p50 = 0;
  std::uint64_t victim_p99 = 0;
  double ratio_vs_solo = 0.0;  // pooled victim p99 / pooled solo p99
  std::uint64_t flood_p99 = 0;
};

PolicySummary summarize(const host::MultiQueueResult& result,
                        std::uint64_t solo_pooled_p99, ctrl::ArbPolicy policy) {
  PolicySummary s;
  s.policy = policy;
  obs::LatencyHistogram pooled;
  for (std::size_t i = 0; i + 1 < result.tenants.size(); ++i) {
    pooled.merge(result.tenants[i].latency_us);
  }
  s.victim_p50 = pooled.p50();
  s.victim_p99 = pooled.p99();
  s.ratio_vs_solo = solo_pooled_p99 > 0
                        ? static_cast<double>(s.victim_p99) /
                              static_cast<double>(solo_pooled_p99)
                        : 0.0;
  s.flood_p99 = result.tenants.back().latency_us.p99();
  return s;
}

void write_json(const std::string& path, const BenchParams& params, bool quick,
                const std::vector<ctrl::ArbPolicy>& policies,
                const std::vector<host::MultiQueueResult>& policy_results,
                const std::vector<PolicySummary>& summaries,
                const std::vector<std::uint64_t>& solo_p50,
                const std::vector<std::uint64_t>& solo_p99, std::uint64_t digest) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"multitenant_qos\",\n");
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"tenants\": %u,\n", params.tenants);
  std::fprintf(out, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(params.seed));
  std::fprintf(out, "  \"digest\": \"%016llx\",\n",
               static_cast<unsigned long long>(digest));
  std::fprintf(out, "  \"solo\": [\n");
  for (std::size_t i = 0; i < solo_p99.size(); ++i) {
    std::fprintf(out, "    {\"tenant\": %zu, \"p50\": %llu, \"p99\": %llu}%s\n", i,
                 static_cast<unsigned long long>(solo_p50[i]),
                 static_cast<unsigned long long>(solo_p99[i]),
                 i + 1 < solo_p99.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"policies\": [\n");
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const host::MultiQueueResult& r = policy_results[p];
    const PolicySummary& s = summaries[p];
    std::fprintf(out, "    {\"policy\": \"%s\",\n", ctrl::to_string(policies[p]));
    std::fprintf(out, "     \"victim_p50\": %llu,\n",
                 static_cast<unsigned long long>(s.victim_p50));
    std::fprintf(out, "     \"victim_p99\": %llu,\n",
                 static_cast<unsigned long long>(s.victim_p99));
    std::fprintf(out, "     \"ratio_vs_solo\": %.3f,\n", s.ratio_vs_solo);
    std::fprintf(out, "     \"flood_p99\": %llu,\n",
                 static_cast<unsigned long long>(s.flood_p99));
    std::fprintf(out, "     \"tenants\": [\n");
    for (std::size_t i = 0; i < r.tenants.size(); ++i) {
      const host::TenantResult& t = r.tenants[i];
      std::fprintf(out,
                   "       {\"tenant\": %zu, \"completed\": %llu, \"p50\": %llu, "
                   "\"p99\": %llu, \"histogram\": %s}%s\n",
                   i, static_cast<unsigned long long>(t.completed),
                   static_cast<unsigned long long>(t.latency_us.p50()),
                   static_cast<unsigned long long>(t.latency_us.p99()),
                   t.latency_us.to_json().c_str(),
                   i + 1 < r.tenants.size() ? "," : "");
    }
    std::fprintf(out, "     ]}%s\n", p + 1 < policies.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::uint32_t jobs = 1;
  std::uint32_t tenants = 16;
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_multitenant_qos.json";
  std::string trace_path;
  std::string metrics_path;
  BenchParams params;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<std::uint32_t>(std::stoul(arg.substr(7)));
    } else if (arg.rfind("--tenants=", 0) == 0) {
      tenants = static_cast<std::uint32_t>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
    } else if (arg.rfind("--budget=", 0) == 0) {
      // Undocumented tuning knobs (kept for experiments/regeneration).
      params.shared_page_budget = static_cast<std::uint32_t>(std::stoul(arg.substr(9)));
    } else if (arg.rfind("--quantum=", 0) == 0) {
      params.quantum_pages = static_cast<std::uint32_t>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--flood-pages=", 0) == 0) {
      params.flood_pages = static_cast<std::uint32_t>(std::stoul(arg.substr(14)));
    } else if (arg.rfind("--victim-gap=", 0) == 0) {
      params.victim_interarrival_us = std::stoull(arg.substr(13));
    } else if (arg.rfind("--victim-rf=", 0) == 0) {
      params.victim_read_fraction = std::stod(arg.substr(12));
    } else if (arg.rfind("--stripe=", 0) == 0) {
      params.stripe_writes = std::stoul(arg.substr(9)) != 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  // The O(active) arbiter and incremental frontend eligibility keep
  // admission cost tied to backlogged tenants, so the frontend scales to
  // four-digit tenant counts (aggregate victim load is invariant under
  // --tenants; see make_tenants).
  params.tenants = std::clamp(tenants, 8u, 1024u);
  params.seed = seed;
  if (quick) {
    params.victim_requests = 400;
    params.flood_requests = 1'300;
  }

  const std::vector<host::TenantConfig> tenant_configs = make_tenants(params);
  const Lpn exported = make_device()->exported_pages();
  const std::vector<workload::Trace> traces =
      host::build_tenant_traces(tenant_configs, exported, params.seed, jobs);

  // Cells: one per policy, one solo run per victim. All independent —
  // run them `jobs`-wide with slot-per-index results.
  const std::vector<ctrl::ArbPolicy> policies = {
      ctrl::ArbPolicy::kRoundRobin, ctrl::ArbPolicy::kWeightedRoundRobin,
      ctrl::ArbPolicy::kWeightedDeficitRoundRobin};
  const std::size_t victims = params.tenants - 1;
  std::vector<host::MultiQueueResult> policy_results(policies.size());
  std::vector<host::MultiQueueResult> solo_results(victims);
  util::ThreadPool pool(jobs);
  pool.parallel_for_indexed(policies.size() + victims, [&](std::size_t i) {
    if (i < policies.size()) {
      policy_results[i] = run_policy_cell(params, tenant_configs, traces, policies[i]);
    } else {
      const std::size_t v = i - policies.size();
      solo_results[v] = run_solo_cell(params, tenant_configs[v], traces[v]);
    }
  });

  std::vector<std::uint64_t> solo_p50(victims), solo_p99(victims);
  obs::LatencyHistogram solo_pooled;
  for (std::size_t v = 0; v < victims; ++v) {
    solo_p50[v] = solo_results[v].tenants[0].latency_us.p50();
    solo_p99[v] = solo_results[v].tenants[0].latency_us.p99();
    solo_pooled.merge(solo_results[v].tenants[0].latency_us);
  }
  const std::uint64_t solo_pooled_p99 = solo_pooled.p99();

  // Order-sensitive digest over every cell: bit-identical across --jobs.
  std::uint64_t digest = 0xcbf29ce484222325ull;
  for (const host::MultiQueueResult& r : policy_results) {
    digest = mix_digest(digest, r.digest());
  }
  for (const host::MultiQueueResult& r : solo_results) {
    digest = mix_digest(digest, r.digest());
  }

  std::printf(
      "bench_multitenant_qos%s: %u tenants (%zu victims + 1 write flood), "
      "seed %llu\n",
      quick ? " --quick" : "", params.tenants, victims,
      static_cast<unsigned long long>(params.seed));
  std::printf("  solo victim p99 (all victims pooled): %llu us\n",
              static_cast<unsigned long long>(solo_pooled_p99));
  std::printf("  %-6s %14s %16s %12s %14s\n", "policy", "victim p50", "victim p99",
              "p99/solo", "flood p99");
  std::vector<PolicySummary> summaries;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    summaries.push_back(summarize(policy_results[p], solo_pooled_p99, policies[p]));
    const PolicySummary& s = summaries.back();
    std::printf("  %-6s %11llu us %13llu us %11.2fx %11llu us\n",
                ctrl::to_string(policies[p]),
                static_cast<unsigned long long>(s.victim_p50),
                static_cast<unsigned long long>(s.victim_p99),
                s.ratio_vs_solo,
                static_cast<unsigned long long>(s.flood_p99));
  }
  std::printf("digest: %016llx\n", static_cast<unsigned long long>(digest));

  if (!trace_path.empty()) {
    // Re-run the WDRR cell with a trace sink; the replay is deterministic,
    // so the traced run matches the measured one.
    obs::TraceSink sink;
    run_policy_cell(params, tenant_configs, traces,
                    ctrl::ArbPolicy::kWeightedDeficitRoundRobin, &sink);
    if (sink.write_chrome_json(trace_path)) {
      std::printf("wrote %s (%zu events)\n", trace_path.c_str(), sink.size());
    }
  }

  write_json(out_path, params, quick, policies, policy_results, summaries,
             solo_p50, solo_p99, digest);

  if (!metrics_path.empty()) {
    // Dedicated WDRR re-run on a fresh device: the replay is deterministic
    // (same traces, single-threaded), and the fresh device makes the
    // attribution totals exactly the run's own delta. The per-tenant
    // program breakdown is the stream_programs array — every tenant's
    // commands carry its stream tag (slot-per-tenant up to 32, then the
    // shared overflow slot).
    std::unique_ptr<ftl::FtlBase> device;
    const host::MultiQueueResult wdrr_rerun =
        run_policy_cell(params, tenant_configs, traces,
                        ctrl::ArbPolicy::kWeightedDeficitRoundRobin,
                        /*sink=*/nullptr, &device);
    const PolicySummary wdrr_summary =
        summarize(wdrr_rerun, solo_pooled_p99, ctrl::ArbPolicy::kWeightedDeficitRoundRobin);
    obs::MetricsReport report;
    report.begin("wdrr");
    report.add_u64("tenants", params.tenants);
    report.add_u64("seed", params.seed);
    report.add_u64("victim_p50_us", wdrr_summary.victim_p50);
    report.add_u64("victim_p99_us", wdrr_summary.victim_p99);
    report.add_f64("ratio_vs_solo", wdrr_summary.ratio_vs_solo);
    report.add_u64("flood_p99_us", wdrr_summary.flood_p99);
    report.add_attribution(device->device().attribution());
    report.add_wear(obs::collect_wear(device->device()));
    report.end();
    if (!report.write_file(metrics_path)) {
      std::fprintf(stderr, "failed to write metrics report at: %s\n",
                   metrics_path.c_str());
      return 2;
    }
    std::printf("metrics: %s\n", metrics_path.c_str());
  }

  // Acceptance: WDRR bounds the victims' tails, cost-blind RR does not.
  const PolicySummary& rr = summaries.front();
  const PolicySummary& wdrr = summaries.back();
  const bool wdrr_bounded = wdrr.ratio_vs_solo <= 2.0;
  const bool rr_exceeds = rr.ratio_vs_solo > 2.0;
  std::printf("acceptance: wdrr victim p99 %.2fx solo (need <= 2.0x) %s, "
              "rr victim p99 %.2fx solo (need > 2.0x) %s\n",
              wdrr.ratio_vs_solo, wdrr_bounded ? "OK" : "FAIL",
              rr.ratio_vs_solo, rr_exceeds ? "OK" : "FAIL");
  return wdrr_bounded && rr_exceeds ? 0 : 1;
}
