// Ablation (paper's conclusion / future work): the page-cache-style future
// write predictor. With prediction on, idle-time GC replenishes the LSB
// quota only to the observed burst demand instead of the static 5%
// ceiling — same burst absorption, less idle churn, fewer erasures.
#include <cstdio>

#include "bench/bench_fig8_common.hpp"
#include "src/util/table.hpp"

using namespace rps;

int main() {
  std::printf("Ablation: flexFTL future-write predictor (Varmail and Fileserver)\n\n");

  TablePrinter table({"Workload", "Predictor", "IOPS", "p50 lat (us)",
                      "bw p99.5 (MB/s)", "bgGC blocks", "erases"});
  for (const workload::Preset preset :
       {workload::Preset::kVarmail, workload::Preset::kFileserver}) {
    for (const bool use_predictor : {false, true}) {
      sim::ExperimentSpec spec = bench::fig8_spec();
      spec.requests = 150'000;
      spec.ftl_config.use_write_predictor = use_predictor;
      const sim::SimResult r = run_experiment(sim::FtlKind::kFlex, preset, spec);
      table.add_row({workload::to_string(preset), use_predictor ? "on" : "off",
                     TablePrinter::fmt(r.iops_makespan(), 0),
                     TablePrinter::fmt(r.latency_us.percentile(50), 0),
                     TablePrinter::fmt(r.write_bw_mbps.percentile(99.5), 1),
                     TablePrinter::fmt_int(
                         static_cast<std::int64_t>(r.ftl_stats.background_gc_blocks)),
                     TablePrinter::fmt_int(static_cast<std::int64_t>(r.erases))});
      std::fflush(stdout);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
