// Ablation (ours): the policy manager's utilization thresholds u_high and
// u_low (the paper uses 80% / 10%). Sweeps the decision boundaries and
// reports how the LSB/MSB mix and performance respond on Varmail.
#include <cstdio>

#include "bench/bench_fig8_common.hpp"
#include "src/util/table.hpp"

using namespace rps;

int main() {
  std::printf("Ablation: flexFTL policy thresholds (u_high, u_low) on Varmail\n");
  std::printf("(paper setting: u_high = 0.80, u_low = 0.10)\n\n");

  struct Setting {
    double u_high;
    double u_low;
  };
  const Setting settings[] = {{0.95, 0.05}, {0.80, 0.10}, {0.60, 0.20},
                              {0.50, 0.50}, {0.20, 0.10}, {1.01, 0.00}};
  // (1.01, 0.00): u never exceeds u_high and never drops below u_low —
  // the policy degenerates to pure alternation (an FPS-like flexFTL).

  TablePrinter table({"u_high", "u_low", "IOPS", "p50 lat (us)",
                      "bw p99.5 (MB/s)", "LSB share"});
  for (const Setting& s : settings) {
    sim::ExperimentSpec spec = bench::fig8_spec();
    spec.requests = 150'000;
    spec.ftl_config.u_high = s.u_high;
    spec.ftl_config.u_low = s.u_low;
    const sim::SimResult r =
        run_experiment(sim::FtlKind::kFlex, workload::Preset::kVarmail, spec);
    const double lsb_share =
        static_cast<double>(r.ftl_stats.host_lsb_writes) /
        static_cast<double>(r.ftl_stats.host_lsb_writes + r.ftl_stats.host_msb_writes);
    table.add_row({TablePrinter::fmt(s.u_high, 2), TablePrinter::fmt(s.u_low, 2),
                   TablePrinter::fmt(r.iops_makespan(), 0),
                   TablePrinter::fmt(r.latency_us.percentile(50), 0),
                   TablePrinter::fmt(r.write_bw_mbps.percentile(99.5), 1),
                   TablePrinter::fmt(lsb_share, 2)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
