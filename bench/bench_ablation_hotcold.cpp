// Ablation (ours): flexFTL hot/cold stream separation. Skewed workloads
// mix short-lived host data with long-lived GC copies in the same blocks;
// separating the streams lets cold blocks stay fully valid (never GCed
// again) while hot blocks die quickly — lower WAF, fewer erasures.
#include <cstdio>

#include "bench/bench_fig8_common.hpp"
#include "src/util/table.hpp"

using namespace rps;

int main() {
  std::printf("Ablation: flexFTL hot/cold GC-stream separation\n\n");

  TablePrinter table({"Workload", "separation", "IOPS", "WAF", "erases",
                      "GC copies"});
  for (const workload::Preset preset :
       {workload::Preset::kVarmail, workload::Preset::kNtrx}) {
    for (const bool separate : {false, true}) {
      sim::ExperimentSpec spec = bench::fig8_spec();
      spec.requests = 150'000;
      spec.ftl_config.separate_gc_stream = separate;
      const sim::SimResult r = run_experiment(sim::FtlKind::kFlex, preset, spec);
      table.add_row({workload::to_string(preset), separate ? "on" : "off",
                     TablePrinter::fmt(r.iops_makespan(), 0),
                     TablePrinter::fmt(r.waf(), 3),
                     TablePrinter::fmt_int(static_cast<std::int64_t>(r.erases)),
                     TablePrinter::fmt_int(
                         static_cast<std::int64_t>(r.ftl_stats.gc_copy_pages))});
      std::fflush(stdout);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
