// Fig. 4(a) reproduction: distributions of the per-page summed Vth
// distribution widths (sum of WPi) under FPS, RPSfull and RPShalf — the
// paper's device-level validation that relaxing constraint 4 does not
// increase cell-to-cell interference. The unconstrained random order is
// included as the strawman that motivates ordering constraints (Fig. 2a).
//
// The paper measured >90 blocks of real 2X-nm MLC chips; we Monte-Carlo
// the same experiment over the interference model (see DESIGN.md for why
// the relative relation is preserved exactly).
#include <cstdio>

#include "src/reliability/study.hpp"
#include "src/util/table.hpp"

using namespace rps;
using reliability::Scheme;

int main() {
  reliability::StudyConfig config;
  config.blocks = 96;       // "more than 90 blocks"
  config.wordlines = 64;
  config.interference.cells_per_wordline = 1024;
  config.seed = 42;

  const std::vector<Scheme> schemes = {Scheme::kFps, Scheme::kRpsFull,
                                       Scheme::kRpsHalf, Scheme::kRpsRandom,
                                       Scheme::kUnconstrained};
  const auto results = run_studies(schemes, config);

  std::printf("Fig. 4(a): per-page sum of Vth distribution widths (WPi) [V]\n");
  std::printf("%u blocks x %u word lines, %u cells per word line\n\n",
              config.blocks, config.wordlines,
              config.interference.cells_per_wordline);

  TablePrinter table({"Scheme", "min", "q1", "median", "q3", "max", "mean",
                      "aggressors(max)"});
  double fps_median = 0.0;
  for (const reliability::StudyResult& r : results) {
    const BoxPlot box = r.wpi_per_page.box_plot();
    if (r.scheme == Scheme::kFps) fps_median = box.median;
    table.add_row({to_string(r.scheme), TablePrinter::fmt(box.min, 4),
                   TablePrinter::fmt(box.q1, 4), TablePrinter::fmt(box.median, 4),
                   TablePrinter::fmt(box.q3, 4), TablePrinter::fmt(box.max, 4),
                   TablePrinter::fmt(box.mean, 4),
                   TablePrinter::fmt(r.aggressors.max(), 0)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Paper's claim: WPi under RPSfull/RPShalf is NOT higher than FPS.\n");
  for (const reliability::StudyResult& r : results) {
    if (r.scheme == Scheme::kRpsFull || r.scheme == Scheme::kRpsHalf ||
        r.scheme == Scheme::kRpsRandom) {
      const double delta = r.wpi_per_page.median() - fps_median;
      // Each scheme uses an independent Monte-Carlo stream; differences
      // within 0.5% of the FPS median are sampling noise.
      std::printf("  %-10s median - FPS median = %+.4f V (%s)\n", to_string(r.scheme),
                  delta, delta <= 0.005 * fps_median ? "holds" : "VIOLATED");
    }
  }
  const double wild_delta = results.back().wpi_per_page.median() - fps_median;
  std::printf("  %-10s median - FPS median = %+.4f V (motivates constraints)\n",
              "Unconstr.", wild_delta);
  return 0;
}
