// Ablation (ours): program suspension. A 2 ms MSB program parked in front
// of a read is the single largest latency hazard of MLC NAND; suspension
// lets reads preempt it at a small resume cost. flexFTL already converts
// most burst-path programs to 500 us LSB writes, so it needs suspension
// the least — another angle on the paper's asymmetry story.
#include <cstdio>

#include "bench/bench_fig8_common.hpp"
#include "src/util/table.hpp"

using namespace rps;

int main() {
  std::printf("Ablation: program suspension (Webserver: light, read-dominant —\n"
              "reads meet in-flight programs rather than standing queues)\n\n");

  TablePrinter table({"FTL", "suspend", "IOPS", "p50 (us)", "p99 (us)",
                      "p99.9 (us)"});
  for (const sim::FtlKind kind :
       {sim::FtlKind::kPage, sim::FtlKind::kParity, sim::FtlKind::kFlex}) {
    for (const bool suspend : {false, true}) {
      sim::ExperimentSpec spec = bench::fig8_spec();
      spec.requests = 150'000;
      spec.ftl_config.program_suspend = suspend;
      const sim::SimResult r =
          run_experiment(kind, workload::Preset::kWebserver, spec);
      table.add_row({std::string(sim::to_string(kind)), suspend ? "on" : "off",
                     TablePrinter::fmt(r.iops_makespan(), 0),
                     TablePrinter::fmt(r.latency_us.percentile(50), 0),
                     TablePrinter::fmt(r.latency_us.percentile(99), 0),
                     TablePrinter::fmt(r.latency_us.percentile(99.9), 0)});
      std::fflush(stdout);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
