// Table 1 reproduction: I/O characteristics of the five benchmark
// workloads (read:write ratio and I/O intensiveness), measured from the
// synthetic traces that stand in for Sysbench/Filebench.
#include <cstdio>

#include "src/sim/runner.hpp"
#include "src/util/parallel.hpp"
#include "src/util/table.hpp"
#include "src/workload/generator.hpp"

using namespace rps;

namespace {

std::string ratio_string(double read_fraction) {
  // Express as the paper does: small-integer read:write ratios.
  static constexpr struct {
    double fraction;
    const char* label;
  } kKnown[] = {{0.7, "7:3"},       {0.3, "3:7"}, {0.8, "4:1"},
                {0.5, "1:1"},       {1.0 / 3.0, "1:2"}};
  for (const auto& known : kKnown) {
    if (std::abs(read_fraction - known.fraction) < 0.03) return known.label;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.2f:%.2f", read_fraction,
                1.0 - read_fraction);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t jobs = sim::parse_jobs_flag(argc, argv);
  std::printf("Table 1: I/O characteristics of the five benchmark workloads\n");
  std::printf("(paper: OLTP 7:3 very high; NTRX 3:7 very high; Webserver 4:1\n");
  std::printf(" moderate; Varmail 1:1 high; Fileserver 1:2 high)\n\n");

  const Lpn working_set = static_cast<Lpn>(
      sim::bench_geometry().total_pages() * 0.8 * 0.8);

  // Trace generation per preset is independent; stats land in preset
  // order, so the table is identical at any --jobs value.
  const std::vector<workload::Preset> presets(std::begin(workload::kAllPresets),
                                              std::end(workload::kAllPresets));
  std::vector<workload::TraceStats> stats(presets.size());
  util::parallel_for_indexed(presets.size(), jobs, [&](std::size_t p) {
    const workload::Trace trace = workload::generate(
        workload::preset_config(presets[p], working_set, 200'000, 1));
    stats[p] = trace.stats(/*idle_threshold_us=*/20'000);
  });

  TablePrinter table({"Workload", "Read:Write", "I/O intensiveness", "IOPS",
                      "Mean req pages", "Idle fraction"});
  for (std::size_t p = 0; p < presets.size(); ++p) {
    const workload::TraceStats& s = stats[p];
    const double mean_pages = static_cast<double>(s.read_pages + s.write_pages) /
                              static_cast<double>(s.requests);
    table.add_row({workload::to_string(presets[p]), ratio_string(s.read_fraction()),
                   s.intensiveness(), TablePrinter::fmt(s.iops(), 0),
                   TablePrinter::fmt(mean_pages, 2),
                   TablePrinter::fmt(s.idle_fraction, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
