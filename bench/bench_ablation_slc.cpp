// Ablation (paper Section 5, related work): flexFTL vs the Lee et al. [4]
// style SLC-mode FTL. slcFTL gets SLC-class writes by never using MSB
// pages — at half the capacity; flexFTL reaches the same burst speed while
// exporting the full MLC capacity. Both run the same Varmail request
// stream (sized to fit the smaller device).
#include <cstdio>

#include "bench/bench_fig8_common.hpp"
#include "src/util/table.hpp"

using namespace rps;

int main() {
  std::printf("Ablation: flexFTL vs the capacity-sacrificing SLC-mode baseline\n\n");

  sim::ExperimentSpec spec = bench::fig8_spec();
  spec.requests = 150'000;
  // Size the working set for the SLC device (half capacity) so the same
  // trace is fair to both.
  spec.working_set_fraction = 0.40;

  TablePrinter table({"FTL", "exported pages", "IOPS", "p50 lat (us)",
                      "bw p99.5 (MB/s)", "WAF", "erases"});
  for (const sim::FtlKind kind :
       {sim::FtlKind::kPage, sim::FtlKind::kFlex, sim::FtlKind::kSlc}) {
    const sim::SimResult r = run_experiment(kind, workload::Preset::kVarmail, spec);
    auto ftl = sim::make_ftl(kind, spec.ftl_config);
    table.add_row({r.ftl_name,
                   TablePrinter::fmt_int(static_cast<std::int64_t>(ftl->exported_pages())),
                   TablePrinter::fmt(r.iops_makespan(), 0),
                   TablePrinter::fmt(r.latency_us.percentile(50), 0),
                   TablePrinter::fmt(r.write_bw_mbps.percentile(99.5), 1),
                   TablePrinter::fmt(r.waf(), 2),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(r.erases))});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("flexFTL approaches slcFTL's speed at twice the exported capacity —\n");
  std::printf("the paper's argument against capacity-sacrificing LSB-only designs.\n");
  return 0;
}
