// Fig. 8(c) reproduction: CDF curves of write bandwidth for Varmail.
// The paper: flexFTL's peak write bandwidth is ~2.13x the best competitor's
// and its average write bandwidth is 24% above parityFTL / 17% above
// rtfFTL — the visible effect of absorbing bursts with LSB-only writes.
//
// Flags: --jobs=N parallelizes the four FTL runs; --requests=N overrides
// the request count; --trace=PATH runs one traced flexFTL experiment and
// writes Chrome trace JSON + state CSV (see bench_fig8_common.hpp).
#include <cstdio>

#include "bench/bench_fig8_common.hpp"
#include "src/util/table.hpp"

using namespace rps;

namespace {

// The shared histogram stores integer KB/s (bytes per window scaled by
// 1000/window_us); the tables report MB/s.
double mbps(std::uint64_t kbps) { return static_cast<double>(kbps) / 1000.0; }

}  // namespace

int main(int argc, char** argv) {
  sim::ExperimentSpec spec = bench::fig8_spec();
  spec.sim.bw_window_us = 50'000;
  spec.requests = sim::parse_requests_flag(argc, argv, spec.requests);
  if (!bench::apply_geometry_flag(argc, argv, spec)) return 2;
  const std::uint32_t jobs = sim::parse_jobs_flag(argc, argv);
  std::printf("Fig. 8(c): CDF of write bandwidth for Varmail (50 ms windows)\n\n");

  const std::vector<sim::SimResult> results =
      run_all_ftls(workload::Preset::kVarmail, spec, jobs);

  // CDF table: fraction of windows with bandwidth <= x. Sourced from the
  // mergeable KB/s histogram — the same numbers for any --jobs value.
  TablePrinter cdf({"MB/s", "pageFTL", "parityFTL", "rtfFTL", "flexFTL"});
  for (double x = 0.0; x <= 160.0; x += 10.0) {
    std::vector<std::string> row{TablePrinter::fmt(x, 0)};
    for (const sim::SimResult& r : results) {
      row.push_back(TablePrinter::fmt(
          r.write_bw_kbps.cdf_at(static_cast<std::uint64_t>(x * 1000.0)), 2));
    }
    cdf.add_row(row);
  }
  std::printf("%s\n", cdf.to_string().c_str());

  TablePrinter summary({"FTL", "mean MB/s", "median", "p95", "peak (p99.5)"});
  for (const sim::SimResult& r : results) {
    const obs::LatencyHistogram& h = r.write_bw_kbps;
    summary.add_row({r.ftl_name, TablePrinter::fmt(h.mean() / 1000.0, 1),
                     TablePrinter::fmt(mbps(h.percentile(50)), 1),
                     TablePrinter::fmt(mbps(h.percentile(95)), 1),
                     TablePrinter::fmt(mbps(h.percentile(99.5)), 1)});
  }
  std::printf("%s\n", summary.to_string().c_str());

  const double flex_peak = mbps(results[3].write_bw_kbps.percentile(99.5));
  double best_other_peak = 0.0;
  std::string best_other = "?";
  for (int i = 0; i < 3; ++i) {
    const double peak = mbps(results[i].write_bw_kbps.percentile(99.5));
    if (peak > best_other_peak) {
      best_other_peak = peak;
      best_other = results[i].ftl_name;
    }
  }
  std::printf("flexFTL peak = %.2fx the best competitor's (%s); paper: 2.13x\n",
              flex_peak / best_other_peak, best_other.c_str());
  std::printf("flexFTL mean = %+.0f%% vs parityFTL (paper: +24%%), %+.0f%% vs rtfFTL (paper: +17%%)\n",
              (results[3].write_bw_kbps.mean() / results[1].write_bw_kbps.mean() - 1) * 100,
              (results[3].write_bw_kbps.mean() / results[2].write_bw_kbps.mean() - 1) * 100);
  if (!bench::maybe_write_metrics(argc, argv, {workload::Preset::kVarmail},
                                  {results})) {
    return 2;
  }
  return bench::maybe_write_flex_trace(argc, argv, workload::Preset::kVarmail,
                                       spec)
             ? 0
             : 2;
}
