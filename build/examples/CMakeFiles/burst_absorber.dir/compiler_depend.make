# Empty compiler generated dependencies file for burst_absorber.
# This may be replaced when dependencies are built.
