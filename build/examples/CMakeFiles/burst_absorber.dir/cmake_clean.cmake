file(REMOVE_RECURSE
  "CMakeFiles/burst_absorber.dir/burst_absorber.cpp.o"
  "CMakeFiles/burst_absorber.dir/burst_absorber.cpp.o.d"
  "burst_absorber"
  "burst_absorber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_absorber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
