# Empty compiler generated dependencies file for workload_comparison.
# This may be replaced when dependencies are built.
