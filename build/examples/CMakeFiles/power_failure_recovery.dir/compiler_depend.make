# Empty compiler generated dependencies file for power_failure_recovery.
# This may be replaced when dependencies are built.
