# Empty dependencies file for filesystem_journal.
# This may be replaced when dependencies are built.
