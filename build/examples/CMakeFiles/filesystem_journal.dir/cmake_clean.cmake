file(REMOVE_RECURSE
  "CMakeFiles/filesystem_journal.dir/filesystem_journal.cpp.o"
  "CMakeFiles/filesystem_journal.dir/filesystem_journal.cpp.o.d"
  "filesystem_journal"
  "filesystem_journal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filesystem_journal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
