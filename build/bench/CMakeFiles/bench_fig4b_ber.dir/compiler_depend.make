# Empty compiler generated dependencies file for bench_fig4b_ber.
# This may be replaced when dependencies are built.
