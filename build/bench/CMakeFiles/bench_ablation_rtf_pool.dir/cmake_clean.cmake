file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rtf_pool.dir/bench_ablation_rtf_pool.cpp.o"
  "CMakeFiles/bench_ablation_rtf_pool.dir/bench_ablation_rtf_pool.cpp.o.d"
  "bench_ablation_rtf_pool"
  "bench_ablation_rtf_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rtf_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
