# Empty dependencies file for bench_ablation_rtf_pool.
# This may be replaced when dependencies are built.
