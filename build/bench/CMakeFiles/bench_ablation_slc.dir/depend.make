# Empty dependencies file for bench_ablation_slc.
# This may be replaced when dependencies are built.
