file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_slc.dir/bench_ablation_slc.cpp.o"
  "CMakeFiles/bench_ablation_slc.dir/bench_ablation_slc.cpp.o.d"
  "bench_ablation_slc"
  "bench_ablation_slc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_slc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
