file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4a_wpi.dir/bench_fig4a_wpi.cpp.o"
  "CMakeFiles/bench_fig4a_wpi.dir/bench_fig4a_wpi.cpp.o.d"
  "bench_fig4a_wpi"
  "bench_fig4a_wpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4a_wpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
