# Empty dependencies file for bench_fig4a_wpi.
# This may be replaced when dependencies are built.
