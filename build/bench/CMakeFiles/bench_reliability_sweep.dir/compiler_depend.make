# Empty compiler generated dependencies file for bench_reliability_sweep.
# This may be replaced when dependencies are built.
