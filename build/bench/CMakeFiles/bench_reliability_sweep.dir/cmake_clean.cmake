file(REMOVE_RECURSE
  "CMakeFiles/bench_reliability_sweep.dir/bench_reliability_sweep.cpp.o"
  "CMakeFiles/bench_reliability_sweep.dir/bench_reliability_sweep.cpp.o.d"
  "bench_reliability_sweep"
  "bench_reliability_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reliability_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
