
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8a_iops.cpp" "bench/CMakeFiles/bench_fig8a_iops.dir/bench_fig8a_iops.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8a_iops.dir/bench_fig8a_iops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/rps_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rps_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/rps_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/rps_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
