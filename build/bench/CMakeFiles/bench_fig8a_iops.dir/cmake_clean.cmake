file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8a_iops.dir/bench_fig8a_iops.cpp.o"
  "CMakeFiles/bench_fig8a_iops.dir/bench_fig8a_iops.cpp.o.d"
  "bench_fig8a_iops"
  "bench_fig8a_iops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8a_iops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
