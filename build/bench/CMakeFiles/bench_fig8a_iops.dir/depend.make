# Empty dependencies file for bench_fig8a_iops.
# This may be replaced when dependencies are built.
