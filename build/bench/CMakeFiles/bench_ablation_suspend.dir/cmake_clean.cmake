file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_suspend.dir/bench_ablation_suspend.cpp.o"
  "CMakeFiles/bench_ablation_suspend.dir/bench_ablation_suspend.cpp.o.d"
  "bench_ablation_suspend"
  "bench_ablation_suspend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_suspend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
