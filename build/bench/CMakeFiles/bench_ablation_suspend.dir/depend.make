# Empty dependencies file for bench_ablation_suspend.
# This may be replaced when dependencies are built.
