# Empty compiler generated dependencies file for bench_fig8c_bandwidth_cdf.
# This may be replaced when dependencies are built.
