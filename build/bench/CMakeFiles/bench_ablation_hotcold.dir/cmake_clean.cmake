file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hotcold.dir/bench_ablation_hotcold.cpp.o"
  "CMakeFiles/bench_ablation_hotcold.dir/bench_ablation_hotcold.cpp.o.d"
  "bench_ablation_hotcold"
  "bench_ablation_hotcold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hotcold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
