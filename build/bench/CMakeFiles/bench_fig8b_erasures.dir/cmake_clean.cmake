file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8b_erasures.dir/bench_fig8b_erasures.cpp.o"
  "CMakeFiles/bench_fig8b_erasures.dir/bench_fig8b_erasures.cpp.o.d"
  "bench_fig8b_erasures"
  "bench_fig8b_erasures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8b_erasures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
