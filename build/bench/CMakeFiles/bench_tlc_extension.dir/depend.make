# Empty dependencies file for bench_tlc_extension.
# This may be replaced when dependencies are built.
