file(REMOVE_RECURSE
  "CMakeFiles/bench_tlc_extension.dir/bench_tlc_extension.cpp.o"
  "CMakeFiles/bench_tlc_extension.dir/bench_tlc_extension.cpp.o.d"
  "bench_tlc_extension"
  "bench_tlc_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tlc_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
