# Empty compiler generated dependencies file for rps_tests.
# This may be replaced when dependencies are built.
