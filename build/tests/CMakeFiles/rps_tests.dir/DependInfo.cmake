
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core_flex.cpp" "tests/CMakeFiles/rps_tests.dir/test_core_flex.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_core_flex.cpp.o.d"
  "/root/repo/tests/test_core_flex_tlc.cpp" "tests/CMakeFiles/rps_tests.dir/test_core_flex_tlc.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_core_flex_tlc.cpp.o.d"
  "/root/repo/tests/test_core_hot_cold.cpp" "tests/CMakeFiles/rps_tests.dir/test_core_hot_cold.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_core_hot_cold.cpp.o.d"
  "/root/repo/tests/test_core_policy.cpp" "tests/CMakeFiles/rps_tests.dir/test_core_policy.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_core_policy.cpp.o.d"
  "/root/repo/tests/test_core_predictor.cpp" "tests/CMakeFiles/rps_tests.dir/test_core_predictor.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_core_predictor.cpp.o.d"
  "/root/repo/tests/test_core_recovery.cpp" "tests/CMakeFiles/rps_tests.dir/test_core_recovery.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_core_recovery.cpp.o.d"
  "/root/repo/tests/test_device_features.cpp" "tests/CMakeFiles/rps_tests.dir/test_device_features.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_device_features.cpp.o.d"
  "/root/repo/tests/test_differential.cpp" "tests/CMakeFiles/rps_tests.dir/test_differential.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_differential.cpp.o.d"
  "/root/repo/tests/test_ftl_block_manager.cpp" "tests/CMakeFiles/rps_tests.dir/test_ftl_block_manager.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_ftl_block_manager.cpp.o.d"
  "/root/repo/tests/test_ftl_durability.cpp" "tests/CMakeFiles/rps_tests.dir/test_ftl_durability.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_ftl_durability.cpp.o.d"
  "/root/repo/tests/test_ftl_mapping.cpp" "tests/CMakeFiles/rps_tests.dir/test_ftl_mapping.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_ftl_mapping.cpp.o.d"
  "/root/repo/tests/test_ftl_page.cpp" "tests/CMakeFiles/rps_tests.dir/test_ftl_page.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_ftl_page.cpp.o.d"
  "/root/repo/tests/test_ftl_parity.cpp" "tests/CMakeFiles/rps_tests.dir/test_ftl_parity.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_ftl_parity.cpp.o.d"
  "/root/repo/tests/test_ftl_rtf.cpp" "tests/CMakeFiles/rps_tests.dir/test_ftl_rtf.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_ftl_rtf.cpp.o.d"
  "/root/repo/tests/test_ftl_slc.cpp" "tests/CMakeFiles/rps_tests.dir/test_ftl_slc.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_ftl_slc.cpp.o.d"
  "/root/repo/tests/test_ftl_wear_leveling.cpp" "tests/CMakeFiles/rps_tests.dir/test_ftl_wear_leveling.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_ftl_wear_leveling.cpp.o.d"
  "/root/repo/tests/test_host_block_device.cpp" "tests/CMakeFiles/rps_tests.dir/test_host_block_device.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_host_block_device.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/rps_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_nand_block.cpp" "tests/CMakeFiles/rps_tests.dir/test_nand_block.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_nand_block.cpp.o.d"
  "/root/repo/tests/test_nand_chip.cpp" "tests/CMakeFiles/rps_tests.dir/test_nand_chip.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_nand_chip.cpp.o.d"
  "/root/repo/tests/test_nand_device.cpp" "tests/CMakeFiles/rps_tests.dir/test_nand_device.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_nand_device.cpp.o.d"
  "/root/repo/tests/test_nand_geometry.cpp" "tests/CMakeFiles/rps_tests.dir/test_nand_geometry.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_nand_geometry.cpp.o.d"
  "/root/repo/tests/test_nand_program_order.cpp" "tests/CMakeFiles/rps_tests.dir/test_nand_program_order.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_nand_program_order.cpp.o.d"
  "/root/repo/tests/test_nand_tlc.cpp" "tests/CMakeFiles/rps_tests.dir/test_nand_tlc.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_nand_tlc.cpp.o.d"
  "/root/repo/tests/test_nand_tlc_device.cpp" "tests/CMakeFiles/rps_tests.dir/test_nand_tlc_device.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_nand_tlc_device.cpp.o.d"
  "/root/repo/tests/test_reliability.cpp" "tests/CMakeFiles/rps_tests.dir/test_reliability.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_reliability.cpp.o.d"
  "/root/repo/tests/test_reliability_tlc.cpp" "tests/CMakeFiles/rps_tests.dir/test_reliability_tlc.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_reliability_tlc.cpp.o.d"
  "/root/repo/tests/test_sim_simulator.cpp" "tests/CMakeFiles/rps_tests.dir/test_sim_simulator.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_sim_simulator.cpp.o.d"
  "/root/repo/tests/test_util_random.cpp" "tests/CMakeFiles/rps_tests.dir/test_util_random.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_util_random.cpp.o.d"
  "/root/repo/tests/test_util_result.cpp" "tests/CMakeFiles/rps_tests.dir/test_util_result.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_util_result.cpp.o.d"
  "/root/repo/tests/test_util_stats.cpp" "tests/CMakeFiles/rps_tests.dir/test_util_stats.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_util_stats.cpp.o.d"
  "/root/repo/tests/test_util_table.cpp" "tests/CMakeFiles/rps_tests.dir/test_util_table.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_util_table.cpp.o.d"
  "/root/repo/tests/test_workload_generator.cpp" "tests/CMakeFiles/rps_tests.dir/test_workload_generator.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_workload_generator.cpp.o.d"
  "/root/repo/tests/test_workload_msr.cpp" "tests/CMakeFiles/rps_tests.dir/test_workload_msr.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_workload_msr.cpp.o.d"
  "/root/repo/tests/test_workload_trace.cpp" "tests/CMakeFiles/rps_tests.dir/test_workload_trace.cpp.o" "gcc" "tests/CMakeFiles/rps_tests.dir/test_workload_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/rps_host.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/rps_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rps_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/rps_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/rps_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
