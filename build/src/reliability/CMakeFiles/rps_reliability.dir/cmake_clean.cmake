file(REMOVE_RECURSE
  "CMakeFiles/rps_reliability.dir/ber.cpp.o"
  "CMakeFiles/rps_reliability.dir/ber.cpp.o.d"
  "CMakeFiles/rps_reliability.dir/interference.cpp.o"
  "CMakeFiles/rps_reliability.dir/interference.cpp.o.d"
  "CMakeFiles/rps_reliability.dir/study.cpp.o"
  "CMakeFiles/rps_reliability.dir/study.cpp.o.d"
  "CMakeFiles/rps_reliability.dir/tlc_study.cpp.o"
  "CMakeFiles/rps_reliability.dir/tlc_study.cpp.o.d"
  "librps_reliability.a"
  "librps_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rps_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
