file(REMOVE_RECURSE
  "librps_reliability.a"
)
