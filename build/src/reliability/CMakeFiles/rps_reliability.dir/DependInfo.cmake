
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reliability/ber.cpp" "src/reliability/CMakeFiles/rps_reliability.dir/ber.cpp.o" "gcc" "src/reliability/CMakeFiles/rps_reliability.dir/ber.cpp.o.d"
  "/root/repo/src/reliability/interference.cpp" "src/reliability/CMakeFiles/rps_reliability.dir/interference.cpp.o" "gcc" "src/reliability/CMakeFiles/rps_reliability.dir/interference.cpp.o.d"
  "/root/repo/src/reliability/study.cpp" "src/reliability/CMakeFiles/rps_reliability.dir/study.cpp.o" "gcc" "src/reliability/CMakeFiles/rps_reliability.dir/study.cpp.o.d"
  "/root/repo/src/reliability/tlc_study.cpp" "src/reliability/CMakeFiles/rps_reliability.dir/tlc_study.cpp.o" "gcc" "src/reliability/CMakeFiles/rps_reliability.dir/tlc_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nand/CMakeFiles/rps_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
