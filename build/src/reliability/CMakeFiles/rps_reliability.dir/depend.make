# Empty dependencies file for rps_reliability.
# This may be replaced when dependencies are built.
