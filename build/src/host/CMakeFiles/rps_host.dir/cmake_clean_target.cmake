file(REMOVE_RECURSE
  "librps_host.a"
)
