file(REMOVE_RECURSE
  "CMakeFiles/rps_host.dir/block_device.cpp.o"
  "CMakeFiles/rps_host.dir/block_device.cpp.o.d"
  "librps_host.a"
  "librps_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rps_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
