# Empty compiler generated dependencies file for rps_host.
# This may be replaced when dependencies are built.
