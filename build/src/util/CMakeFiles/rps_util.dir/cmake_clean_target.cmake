file(REMOVE_RECURSE
  "librps_util.a"
)
