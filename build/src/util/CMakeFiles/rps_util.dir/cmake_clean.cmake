file(REMOVE_RECURSE
  "CMakeFiles/rps_util.dir/log.cpp.o"
  "CMakeFiles/rps_util.dir/log.cpp.o.d"
  "CMakeFiles/rps_util.dir/random.cpp.o"
  "CMakeFiles/rps_util.dir/random.cpp.o.d"
  "CMakeFiles/rps_util.dir/stats.cpp.o"
  "CMakeFiles/rps_util.dir/stats.cpp.o.d"
  "CMakeFiles/rps_util.dir/table.cpp.o"
  "CMakeFiles/rps_util.dir/table.cpp.o.d"
  "librps_util.a"
  "librps_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rps_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
