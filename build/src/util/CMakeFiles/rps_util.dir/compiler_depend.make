# Empty compiler generated dependencies file for rps_util.
# This may be replaced when dependencies are built.
