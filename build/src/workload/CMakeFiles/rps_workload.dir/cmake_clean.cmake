file(REMOVE_RECURSE
  "CMakeFiles/rps_workload.dir/generator.cpp.o"
  "CMakeFiles/rps_workload.dir/generator.cpp.o.d"
  "CMakeFiles/rps_workload.dir/msr_trace.cpp.o"
  "CMakeFiles/rps_workload.dir/msr_trace.cpp.o.d"
  "CMakeFiles/rps_workload.dir/trace.cpp.o"
  "CMakeFiles/rps_workload.dir/trace.cpp.o.d"
  "librps_workload.a"
  "librps_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rps_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
