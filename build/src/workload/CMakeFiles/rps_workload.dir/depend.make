# Empty dependencies file for rps_workload.
# This may be replaced when dependencies are built.
