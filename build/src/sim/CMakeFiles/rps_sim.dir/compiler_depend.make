# Empty compiler generated dependencies file for rps_sim.
# This may be replaced when dependencies are built.
