file(REMOVE_RECURSE
  "CMakeFiles/rps_sim.dir/runner.cpp.o"
  "CMakeFiles/rps_sim.dir/runner.cpp.o.d"
  "CMakeFiles/rps_sim.dir/simulator.cpp.o"
  "CMakeFiles/rps_sim.dir/simulator.cpp.o.d"
  "librps_sim.a"
  "librps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
