file(REMOVE_RECURSE
  "librps_sim.a"
)
