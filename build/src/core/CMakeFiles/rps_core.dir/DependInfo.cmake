
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/flex_ftl.cpp" "src/core/CMakeFiles/rps_core.dir/flex_ftl.cpp.o" "gcc" "src/core/CMakeFiles/rps_core.dir/flex_ftl.cpp.o.d"
  "/root/repo/src/core/flex_tlc_ftl.cpp" "src/core/CMakeFiles/rps_core.dir/flex_tlc_ftl.cpp.o" "gcc" "src/core/CMakeFiles/rps_core.dir/flex_tlc_ftl.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/rps_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/rps_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/recovery.cpp" "src/core/CMakeFiles/rps_core.dir/recovery.cpp.o" "gcc" "src/core/CMakeFiles/rps_core.dir/recovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ftl/CMakeFiles/rps_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/rps_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
