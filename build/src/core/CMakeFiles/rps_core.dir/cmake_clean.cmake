file(REMOVE_RECURSE
  "CMakeFiles/rps_core.dir/flex_ftl.cpp.o"
  "CMakeFiles/rps_core.dir/flex_ftl.cpp.o.d"
  "CMakeFiles/rps_core.dir/flex_tlc_ftl.cpp.o"
  "CMakeFiles/rps_core.dir/flex_tlc_ftl.cpp.o.d"
  "CMakeFiles/rps_core.dir/policy.cpp.o"
  "CMakeFiles/rps_core.dir/policy.cpp.o.d"
  "CMakeFiles/rps_core.dir/recovery.cpp.o"
  "CMakeFiles/rps_core.dir/recovery.cpp.o.d"
  "librps_core.a"
  "librps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
