file(REMOVE_RECURSE
  "librps_core.a"
)
