# Empty compiler generated dependencies file for rps_nand.
# This may be replaced when dependencies are built.
