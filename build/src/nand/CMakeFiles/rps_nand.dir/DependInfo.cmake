
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nand/block.cpp" "src/nand/CMakeFiles/rps_nand.dir/block.cpp.o" "gcc" "src/nand/CMakeFiles/rps_nand.dir/block.cpp.o.d"
  "/root/repo/src/nand/chip.cpp" "src/nand/CMakeFiles/rps_nand.dir/chip.cpp.o" "gcc" "src/nand/CMakeFiles/rps_nand.dir/chip.cpp.o.d"
  "/root/repo/src/nand/device.cpp" "src/nand/CMakeFiles/rps_nand.dir/device.cpp.o" "gcc" "src/nand/CMakeFiles/rps_nand.dir/device.cpp.o.d"
  "/root/repo/src/nand/program_order.cpp" "src/nand/CMakeFiles/rps_nand.dir/program_order.cpp.o" "gcc" "src/nand/CMakeFiles/rps_nand.dir/program_order.cpp.o.d"
  "/root/repo/src/nand/tlc.cpp" "src/nand/CMakeFiles/rps_nand.dir/tlc.cpp.o" "gcc" "src/nand/CMakeFiles/rps_nand.dir/tlc.cpp.o.d"
  "/root/repo/src/nand/tlc_device.cpp" "src/nand/CMakeFiles/rps_nand.dir/tlc_device.cpp.o" "gcc" "src/nand/CMakeFiles/rps_nand.dir/tlc_device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
