file(REMOVE_RECURSE
  "librps_nand.a"
)
