file(REMOVE_RECURSE
  "CMakeFiles/rps_nand.dir/block.cpp.o"
  "CMakeFiles/rps_nand.dir/block.cpp.o.d"
  "CMakeFiles/rps_nand.dir/chip.cpp.o"
  "CMakeFiles/rps_nand.dir/chip.cpp.o.d"
  "CMakeFiles/rps_nand.dir/device.cpp.o"
  "CMakeFiles/rps_nand.dir/device.cpp.o.d"
  "CMakeFiles/rps_nand.dir/program_order.cpp.o"
  "CMakeFiles/rps_nand.dir/program_order.cpp.o.d"
  "CMakeFiles/rps_nand.dir/tlc.cpp.o"
  "CMakeFiles/rps_nand.dir/tlc.cpp.o.d"
  "CMakeFiles/rps_nand.dir/tlc_device.cpp.o"
  "CMakeFiles/rps_nand.dir/tlc_device.cpp.o.d"
  "librps_nand.a"
  "librps_nand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rps_nand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
