file(REMOVE_RECURSE
  "CMakeFiles/rps_ftl.dir/block_manager.cpp.o"
  "CMakeFiles/rps_ftl.dir/block_manager.cpp.o.d"
  "CMakeFiles/rps_ftl.dir/ftl_base.cpp.o"
  "CMakeFiles/rps_ftl.dir/ftl_base.cpp.o.d"
  "CMakeFiles/rps_ftl.dir/mapping.cpp.o"
  "CMakeFiles/rps_ftl.dir/mapping.cpp.o.d"
  "CMakeFiles/rps_ftl.dir/page_ftl.cpp.o"
  "CMakeFiles/rps_ftl.dir/page_ftl.cpp.o.d"
  "CMakeFiles/rps_ftl.dir/parity_ftl.cpp.o"
  "CMakeFiles/rps_ftl.dir/parity_ftl.cpp.o.d"
  "CMakeFiles/rps_ftl.dir/rtf_ftl.cpp.o"
  "CMakeFiles/rps_ftl.dir/rtf_ftl.cpp.o.d"
  "CMakeFiles/rps_ftl.dir/slc_ftl.cpp.o"
  "CMakeFiles/rps_ftl.dir/slc_ftl.cpp.o.d"
  "librps_ftl.a"
  "librps_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rps_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
