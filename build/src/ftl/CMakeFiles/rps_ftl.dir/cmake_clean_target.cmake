file(REMOVE_RECURSE
  "librps_ftl.a"
)
