
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/block_manager.cpp" "src/ftl/CMakeFiles/rps_ftl.dir/block_manager.cpp.o" "gcc" "src/ftl/CMakeFiles/rps_ftl.dir/block_manager.cpp.o.d"
  "/root/repo/src/ftl/ftl_base.cpp" "src/ftl/CMakeFiles/rps_ftl.dir/ftl_base.cpp.o" "gcc" "src/ftl/CMakeFiles/rps_ftl.dir/ftl_base.cpp.o.d"
  "/root/repo/src/ftl/mapping.cpp" "src/ftl/CMakeFiles/rps_ftl.dir/mapping.cpp.o" "gcc" "src/ftl/CMakeFiles/rps_ftl.dir/mapping.cpp.o.d"
  "/root/repo/src/ftl/page_ftl.cpp" "src/ftl/CMakeFiles/rps_ftl.dir/page_ftl.cpp.o" "gcc" "src/ftl/CMakeFiles/rps_ftl.dir/page_ftl.cpp.o.d"
  "/root/repo/src/ftl/parity_ftl.cpp" "src/ftl/CMakeFiles/rps_ftl.dir/parity_ftl.cpp.o" "gcc" "src/ftl/CMakeFiles/rps_ftl.dir/parity_ftl.cpp.o.d"
  "/root/repo/src/ftl/rtf_ftl.cpp" "src/ftl/CMakeFiles/rps_ftl.dir/rtf_ftl.cpp.o" "gcc" "src/ftl/CMakeFiles/rps_ftl.dir/rtf_ftl.cpp.o.d"
  "/root/repo/src/ftl/slc_ftl.cpp" "src/ftl/CMakeFiles/rps_ftl.dir/slc_ftl.cpp.o" "gcc" "src/ftl/CMakeFiles/rps_ftl.dir/slc_ftl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nand/CMakeFiles/rps_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
