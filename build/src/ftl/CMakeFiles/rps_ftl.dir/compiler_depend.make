# Empty compiler generated dependencies file for rps_ftl.
# This may be replaced when dependencies are built.
