// Sweep driver: systematic crash injection over op-completion boundaries.
//
// A sweep first runs the golden (no-crash) trial of a config to harvest
// the sorted host-op completion times, then injects one power loss just
// before each of `crash_points` evenly spaced completions — every Nth op
// boundary, exactly the paper's hazard window (a cut lands mid-program).
// Every injected crash is replayed from its own one-line reproducer and
// the two CrashReports must compare bit-equal (determinism is itself an
// invariant under test). On a violation the driver bisects the request
// count down to the smallest prefix that still fails and emits the
// minimal reproducer line.
#pragma once

#include <cstdint>
#include <vector>

#include "src/faultsim/harness.hpp"

namespace rps::faultsim {

struct SweepOptions {
  /// Crash points injected, evenly spaced over the golden boundaries
  /// (the "crash density"; capped by the number of boundaries).
  std::uint64_t crash_points = 16;
  /// Re-run every crashed trial from its parsed reproducer line and
  /// require a bit-equal CrashReport.
  bool verify_replay = true;
  /// Bisect failing configs down to a minimal request count.
  bool minimize = true;
  /// Trial parallelism: crash points are independent trials (each builds
  /// its own FTL from the config), so they run `jobs`-wide and merge in
  /// crash-point order — the SweepResult is bit-identical for any jobs
  /// value, including 1 (which runs inline, the pre-pool path).
  std::uint32_t jobs = 1;
  /// false (faultsim --cold) re-runs the fill phase in every trial
  /// instead of forking from a shared post-fill snapshot. Results are
  /// bit-identical either way — this exists so the differential test and
  /// the CI smoke job can prove exactly that.
  bool warm_start = true;
};

/// One surviving (post-minimization) failure.
struct SweepFailure {
  FaultSimConfig config;    // minimized if options.minimize
  CrashReport report;       // report of the minimized config
  std::string line;         // reproducer(config)
  bool replay_mismatch = false;  // failed determinism, not the oracle
};

struct SweepResult {
  std::uint64_t golden_boundaries = 0;
  std::uint64_t crashes_injected = 0;
  std::uint64_t total_victims = 0;         // in-flight programs destroyed
  std::uint64_t total_pages_lost = 0;      // losses recovery owned up to
  std::uint64_t total_parity_recovered = 0;
  std::uint64_t replay_mismatches = 0;
  std::vector<SweepFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Run the sweep for `base` (its crash_time_us is ignored; the driver
/// chooses crash points from the golden boundaries). With `sink`
/// attached the golden trial records under pid 0 and crash point k under
/// pid 1 + k; tracing forces jobs = 1 (one sink, one recording thread —
/// and a traced sweep must be byte-identical to its --jobs=1 self
/// anyway). Replay-verify and minimization re-runs are never traced.
/// Every trial forks from a shared post-fill WarmStart — `warm` when
/// given (faultsim --from-snapshot), else one made internally — instead
/// of re-running the fill phase per trial; results are bit-identical to
/// the cold path at any jobs value.
SweepResult sweep(const FaultSimConfig& base, const SweepOptions& options,
                  obs::TraceSink* sink = nullptr, const WarmStart* warm = nullptr);

/// A full seed x crash-density matrix (the CI sweep and bench_simcore's
/// scaling measurement).
struct MatrixOptions {
  std::uint64_t seeds = 16;                       // cells use seed 1..seeds
  std::vector<std::uint64_t> densities = {8, 16, 32};
  SweepOptions sweep;  // per-cell options; its `jobs` is forced to 1 when
                       // cells themselves run in parallel (no nesting)
  /// Parallelism across (seed, density) cells. Cells are independent
  /// trials; results come back in cell-enumeration order (seed-major,
  /// density-minor) — bit-identical for any jobs value.
  std::uint32_t jobs = 1;
};

struct MatrixCell {
  std::uint64_t seed = 0;
  std::uint64_t points = 0;
  SweepResult result;
};

/// `warm` (optional, faultsim --from-snapshot) supplies the shared fork
/// point; when null and options.sweep.warm_start is set, one is made
/// internally from `base` (the fill phase ignores the seed and crash
/// density, so a single WarmStart serves every cell).
std::vector<MatrixCell> sweep_matrix(const FaultSimConfig& base,
                                     const MatrixOptions& options,
                                     const WarmStart* warm = nullptr);

/// Smallest request count in [1, config.requests] whose trial still
/// fails the same way (violations or inconsistency). The workload
/// generator is prefix-stable — trimming requests never perturbs the
/// surviving prefix — so plain bisection applies. `warm` (optional)
/// skips the fill phase of every probe trial; trimming requests never
/// touches the fill, so the same WarmStart stays valid throughout.
FaultSimConfig minimize_failure(const FaultSimConfig& config,
                                const WarmStart* warm = nullptr);

}  // namespace rps::faultsim
