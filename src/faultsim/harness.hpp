// Deterministic power-loss fault-injection harness.
//
// One trial = one seeded workload driven against one FTL under one
// engine, optionally cut short by a power loss at an exact simulated
// microsecond, then rebooted (sim::crash_reboot) and audited by the
// shadow oracle. Everything — workload, placement, crash, recovery —
// is a pure function of the config, so a trial replays bit-identically
// from its one-line reproducer.
//
// Crash points are chosen at *op-completion boundaries*: a golden
// (no-crash) trial of the same config yields the sorted list of host-op
// completion times; crashing at boundaries[k] - 1 puts the k-th
// completion mid-flight, which is the interesting instant (the paper's
// Fig. 7b hazard is a cut during an MSB program destroying its paired
// LSB page).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/controller/arbiter.hpp"
#include "src/core/flex_ftl.hpp"
#include "src/faultsim/oracle.hpp"
#include "src/ftl/config.hpp"
#include "src/nand/attribution.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/runner.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/snapshot.hpp"

namespace rps::faultsim {

/// Everything a trial depends on. Two equal configs produce bit-equal
/// CrashReports — the sweep driver verifies this for every injection.
struct FaultSimConfig {
  sim::FtlKind kind = sim::FtlKind::kFlex;
  sim::Engine engine = sim::Engine::kController;
  std::uint64_t seed = 1;
  std::uint64_t requests = 300;
  std::uint32_t max_pages_per_request = 4;
  double working_set_fraction = 0.5;
  double read_fraction = 0.2;
  Microseconds mean_gap_us = 200;
  /// kTimeNever = golden run (no crash), used to harvest boundaries.
  Microseconds crash_time_us = kTimeNever;
  /// > 1 routes the main phase through the multi-queue host frontend:
  /// one open-loop tenant per queue (even tenants Poisson, odd bursty),
  /// each on its own LPN partition and write stream, arbitrated by `arb`.
  /// A power loss then lands mid-arbitration, and the audit additionally
  /// verifies the per-tenant stream tags after recovery (see
  /// CrashReport::stream_tag_mismatches). Uses the controller engine
  /// regardless of `engine`.
  std::uint32_t tenants = 1;
  ctrl::ArbPolicy arb = ctrl::ArbPolicy::kRoundRobin;
  ftl::FtlConfig ftl_config = small_config();

  /// The harness device: the tiny 2x2-chip geometry with 8 wordlines per
  /// block — big enough for striping and GC, small enough that a full
  /// sweep over dozens of crash points stays sub-second.
  static ftl::FtlConfig small_config();
};

/// Outcome of one crash trial (or golden run, with crash fields zeroed).
struct CrashReport {
  Microseconds crash_time_us = kTimeNever;
  bool crashed = false;
  std::uint64_t requests_issued = 0;
  std::uint64_t victims = 0;             // in-flight programs destroyed
  std::uint64_t cancelled_write_ops = 0;  // controller engine only
  std::uint64_t cancelled_read_ops = 0;
  std::uint64_t aborted_commands = 0;
  bool recovery_supported = false;
  core::RecoveryReport recovery;
  OracleCheck oracle;
  /// Acknowledged losses beyond what recovery explicitly reported in
  /// pages_lost — losses the FTL never owned up to.
  std::uint64_t unaccounted_loss = 0;
  /// Multi-tenant runs: mapped LPNs whose stored stream tag names a
  /// *different* tenant than the LPN's partition owner. Tag 0 is never a
  /// mismatch (the default stream, and what recovery reconstruction
  /// leaves when the OOB hint is lost) — but a nonzero cross-tenant tag
  /// means the stream→block plumbing misrouted data, so it always counts
  /// toward `violations`.
  std::uint64_t stream_tag_mismatches = 0;
  /// The pass/fail verdict: for a recovery-supporting FTL (flexFTL),
  /// stale reads plus unaccounted losses; for FTLs without a recovery
  /// procedure, losses are by design and only stale-after-rescan data
  /// counts (rebuild_mapping must still pick the newest intact copy).
  std::uint64_t violations = 0;
  bool consistent = true;  // FtlBase::check_consistency after reboot

  friend bool operator==(const CrashReport&, const CrashReport&) = default;
};

struct TrialResult {
  CrashReport report;
  /// Sorted, deduplicated host-op completion times (golden runs; crash
  /// runs return the boundaries observed before the cut).
  std::vector<Microseconds> boundaries;
  /// The trial device's cause-tagged op attribution and wear-ledger
  /// digest at the end of the trial (post-recovery for crash trials).
  /// Totals over the whole trial including the fill phase — the trial
  /// builds its device fresh, so totals == the trial's own delta.
  nand::AttributionCounters attribution;
  obs::WearSummary wear;
};

/// Steady post-fill state a trial can fork from instead of re-running
/// the fill phase: the FTL/device snapshot plus the shadow oracle's
/// write history at the epoch mark. The fill phase is a pure function of
/// (kind, ftl_config, working_set_fraction) — never the seed, engine,
/// tenancy, or crash point — so ONE WarmStart serves an entire sweep
/// matrix, and a forked trial is bit-identical to a cold one.
struct WarmStart {
  sim::Snapshot ftl;
  std::vector<std::uint8_t> oracle;

  [[nodiscard]] bool empty() const { return ftl.empty(); }
  /// FNV-1a over both sections (the snapshot-smoke CI digest).
  [[nodiscard]] std::uint64_t digest() const;

  /// File round-trip (faultsim --snapshot / --from-snapshot).
  [[nodiscard]] bool save_file(const std::string& path) const;
  static std::optional<WarmStart> load_file(const std::string& path);
};

/// Run the fill phase of `config` once and capture the fork point.
WarmStart make_warm_start(const FaultSimConfig& config);

/// Run one trial end to end: fill phase, seeded main phase, optional
/// crash + reboot + oracle audit. With `sink` attached, the main phase
/// (and crash / recovery) is traced: NandOp events per chip under the
/// controller engine, GC and parity events from the FTL, plus the
/// power-loss cut and the recovery phase. The fill phase is not traced.
/// With `warm` non-null the fill phase is skipped and the trial forks
/// from the snapshot (which must match config's kind and geometry).
TrialResult run_trial(const FaultSimConfig& config, obs::TraceSink* sink = nullptr,
                      const WarmStart* warm = nullptr);

/// One-line reproducer: a `faultsim` command line that replays this exact
/// trial. Round-trips through parse_reproducer.
std::string reproducer(const FaultSimConfig& config);

/// Parse a reproducer line (or any faultsim flag list). Returns nullopt
/// on an unknown flag or malformed value.
std::optional<FaultSimConfig> parse_reproducer(const std::string& line);

const char* to_string(sim::Engine engine);
std::optional<sim::FtlKind> ftl_kind_from(const std::string& name);
std::optional<sim::Engine> engine_from(const std::string& name);

}  // namespace rps::faultsim
