#include "src/faultsim/oracle.hpp"

#include <cstdio>
#include <cstdlib>

namespace rps::faultsim {

void ShadowOracle::attach(ftl::FtlBase& ftl) {
  ftl_ = &ftl;
  ftl.set_placement_observer(
      [this](Lpn lpn, const nand::PageAddress& addr) { observe(lpn, addr); });
}

void ShadowOracle::detach() {
  if (ftl_ != nullptr) ftl_->set_placement_observer({});
  ftl_ = nullptr;
}

void ShadowOracle::observe(Lpn lpn, const nand::PageAddress& addr) {
  ++observed_commits_;
  // The page was just programmed, so reading its stored record back is the
  // ground truth of what the device holds for this commit.
  const Result<nand::PageData> stored =
      ftl_->device().block({addr.chip, addr.block}).read(addr.pos);
  if (!stored.is_ok()) return;  // never expected for a fresh commit
  const std::uint64_t version = stored.value().version;
  std::vector<WriteRecord>& records = history_[lpn];
  // GC relocations and parity-recovery rewrites re-commit an existing host
  // write under its original version: same logical data, not a new write.
  for (const WriteRecord& r : records) {
    if (r.version == version) return;
  }
  records.push_back(WriteRecord{version, stored.value().signature, kTimeNever});
}

void ShadowOracle::mark_epoch() {
  epoch_.clear();
  for (const auto& [lpn, records] : history_) epoch_[lpn] = records.size();
}

void ShadowOracle::ack_latest(Lpn lpn, Microseconds complete) {
  const auto it = history_.find(lpn);
  if (it == history_.end() || it->second.empty()) return;
  it->second.back().acked_at = complete;
}

void ShadowOracle::finalize_from_op_log(const std::vector<ctrl::OpRecord>& log) {
  // The controller retires write ops synchronously at dispatch, so the log
  // order is the dispatch order — which is the order versions were
  // assigned and committed. Per LPN, the i-th successful host-write record
  // is the i-th post-epoch history entry.
  std::unordered_map<Lpn, std::size_t> cursor;
  for (const ctrl::OpRecord& rec : log) {
    if (rec.kind != ctrl::OpKind::kHostWrite || !rec.ok) continue;
    const auto it = history_.find(rec.lpn);
    if (it == history_.end()) continue;
    std::size_t base = 0;
    if (const auto eit = epoch_.find(rec.lpn); eit != epoch_.end()) base = eit->second;
    const std::size_t idx = base + cursor[rec.lpn]++;
    if (idx < it->second.size()) it->second[idx].acked_at = rec.complete;
  }
}

OracleCheck ShadowOracle::check(ftl::FtlBase& ftl, Microseconds crash_time,
                                Microseconds now) const {
  OracleCheck result;
  for (const auto& [lpn, records] : history_) {
    if (records.empty()) continue;
    const auto acked = [crash_time](const WriteRecord& r) {
      return r.acked_at != kTimeNever && r.acked_at <= crash_time;
    };
    const WriteRecord& newest = records.back();
    if (!acked(newest)) {
      // The newest pre-crash write was still in flight. If an *older*
      // write was acknowledged, its copy may legitimately be gone already
      // (eager-commit overwrite hazard): skip, but never silently.
      bool any_acked = false;
      for (const WriteRecord& r : records) any_acked = any_acked || acked(r);
      if (any_acked) ++result.overwrite_hazard_skipped;
      continue;
    }
    ++result.acked_lpns_checked;
    const Result<nand::PageData> data = ftl.read_data(lpn, now);
    const bool ok = data.is_ok() && data.value().version == newest.version &&
                    data.value().signature == newest.signature;
    if (ok) continue;
    if (std::getenv("FAULTSIM_DEBUG") != nullptr) {
      std::fprintf(stderr, "[oracle] lpn=%llu expected v%llu sig=%llx; read %s",
                   (unsigned long long)lpn, (unsigned long long)newest.version,
                   (unsigned long long)newest.signature,
                   data.is_ok() ? "ok" : "FAILED");
      if (data.is_ok()) {
        std::fprintf(stderr, " v%llu sig=%llx",
                     (unsigned long long)data.value().version,
                     (unsigned long long)data.value().signature);
      }
      std::fprintf(stderr, "; history:");
      for (const WriteRecord& r : records) {
        std::fprintf(stderr, " (v%llu acked=%lld)", (unsigned long long)r.version,
                     (long long)r.acked_at);
      }
      std::fprintf(stderr, "\n");
    }
    if (data.is_ok()) {
      ++result.stale;
    } else {
      ++result.lost;
    }
    if (result.first_failed_lpn == kInvalidLpn) result.first_failed_lpn = lpn;
  }
  return result;
}

}  // namespace rps::faultsim
