#include "src/faultsim/oracle.hpp"

#include <cstdio>
#include <cstdlib>

#include "src/util/serialize.hpp"

namespace rps::faultsim {

void ShadowOracle::attach(ftl::FtlBase& ftl) {
  ftl_ = &ftl;
  if (history_.size() < ftl.exported_pages()) {
    history_.resize(ftl.exported_pages());
  }
  ftl.set_placement_observer(
      [this](Lpn lpn, const nand::PageAddress& addr) { observe(lpn, addr); });
}

void ShadowOracle::detach() {
  if (ftl_ != nullptr) ftl_->set_placement_observer({});
  ftl_ = nullptr;
}

void ShadowOracle::observe(Lpn lpn, const nand::PageAddress& addr) {
  ++observed_commits_;
  if (lpn >= history_.size()) return;  // observer only reports host LPNs
  // The page was just programmed, so peeking at its stored record is the
  // ground truth of what the device holds for this commit (zero-copy: the
  // record is inspected in place, never duplicated).
  const nand::PageData* stored =
      ftl_->device().block({addr.chip, addr.block}).peek(addr.pos);
  if (stored == nullptr) return;  // never expected for a fresh commit
  const std::uint64_t version = stored->version;
  std::vector<WriteRecord>& records = history_[lpn];
  // GC relocations and parity-recovery rewrites re-commit an existing host
  // write under its original version: same logical data, not a new write.
  for (const WriteRecord& r : records) {
    if (r.version == version) return;
  }
  records.push_back(WriteRecord{version, stored->signature, kTimeNever});
}

void ShadowOracle::mark_epoch() {
  epoch_.assign(history_.size(), 0);
  for (Lpn lpn = 0; lpn < history_.size(); ++lpn) {
    epoch_[lpn] = history_[lpn].size();
  }
}

void ShadowOracle::ack_latest(Lpn lpn, Microseconds complete) {
  if (lpn >= history_.size() || history_[lpn].empty()) return;
  history_[lpn].back().acked_at = complete;
}

void ShadowOracle::finalize_from_op_log(const std::vector<ctrl::OpRecord>& log) {
  // The controller retires write ops synchronously at dispatch, so the log
  // order is the dispatch order — which is the order versions were
  // assigned and committed. Per LPN, the i-th successful host-write record
  // is the i-th post-epoch history entry.
  std::vector<std::size_t> cursor(history_.size(), 0);
  for (const ctrl::OpRecord& rec : log) {
    if (rec.kind != ctrl::OpKind::kHostWrite || !rec.ok) continue;
    if (rec.lpn >= history_.size() || history_[rec.lpn].empty()) continue;
    const std::size_t base = rec.lpn < epoch_.size() ? epoch_[rec.lpn] : 0;
    const std::size_t idx = base + cursor[rec.lpn]++;
    if (idx < history_[rec.lpn].size()) history_[rec.lpn][idx].acked_at = rec.complete;
  }
}

OracleCheck ShadowOracle::check(ftl::FtlBase& ftl, Microseconds crash_time,
                                Microseconds now) const {
  OracleCheck result;
  // LPN-ascending walk: first_failed_lpn is the smallest failing LPN,
  // deterministically (the old hash-map walk picked an arbitrary one).
  for (Lpn lpn = 0; lpn < history_.size(); ++lpn) {
    const std::vector<WriteRecord>& records = history_[lpn];
    if (records.empty()) continue;
    const auto acked = [crash_time](const WriteRecord& r) {
      return r.acked_at != kTimeNever && r.acked_at <= crash_time;
    };
    const WriteRecord& newest = records.back();
    if (!acked(newest)) {
      // The newest pre-crash write was still in flight. If an *older*
      // write was acknowledged, its copy may legitimately be gone already
      // (eager-commit overwrite hazard): skip, but never silently.
      bool any_acked = false;
      for (const WriteRecord& r : records) any_acked = any_acked || acked(r);
      if (any_acked) ++result.overwrite_hazard_skipped;
      continue;
    }
    ++result.acked_lpns_checked;
    const Result<nand::PageData> data = ftl.read_data(lpn, now);
    const bool ok = data.is_ok() && data.value().version == newest.version &&
                    data.value().signature == newest.signature;
    if (ok) continue;
    if (std::getenv("FAULTSIM_DEBUG") != nullptr) {
      std::fprintf(stderr, "[oracle] lpn=%llu expected v%llu sig=%llx; read %s",
                   (unsigned long long)lpn, (unsigned long long)newest.version,
                   (unsigned long long)newest.signature,
                   data.is_ok() ? "ok" : "FAILED");
      if (data.is_ok()) {
        std::fprintf(stderr, " v%llu sig=%llx",
                     (unsigned long long)data.value().version,
                     (unsigned long long)data.value().signature);
      }
      std::fprintf(stderr, "; history:");
      for (const WriteRecord& r : records) {
        std::fprintf(stderr, " (v%llu acked=%lld)", (unsigned long long)r.version,
                     (long long)r.acked_at);
      }
      std::fprintf(stderr, "\n");
    }
    if (data.is_ok()) {
      ++result.stale;
    } else {
      ++result.lost;
    }
    if (result.first_failed_lpn == kInvalidLpn) result.first_failed_lpn = lpn;
  }
  return result;
}

void ShadowOracle::save(ser::Writer& w) const {
  w.u64(history_.size());
  for (const std::vector<WriteRecord>& records : history_) {
    w.u64(records.size());
    for (const WriteRecord& rec : records) {
      w.u64(rec.version);
      w.u64(rec.signature);
      w.i64(rec.acked_at);
    }
  }
  w.u64(epoch_.size());
  for (const std::size_t base : epoch_) w.u64(base);
  w.u64(observed_commits_);
}

void ShadowOracle::load(ser::Reader& r) {
  const std::uint64_t lpns = r.u64();
  if (lpns > r.remaining()) {
    r.fail();
    return;
  }
  history_.assign(static_cast<std::size_t>(lpns), {});
  for (std::vector<WriteRecord>& records : history_) {
    const std::uint64_t n = r.u64();
    if (n > r.remaining()) {
      r.fail();
      return;
    }
    records.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      WriteRecord rec;
      rec.version = r.u64();
      rec.signature = r.u64();
      rec.acked_at = r.i64();
      records.push_back(rec);
    }
  }
  const std::uint64_t epochs = r.u64();
  if (epochs > r.remaining()) {
    r.fail();
    return;
  }
  epoch_.assign(static_cast<std::size_t>(epochs), 0);
  for (std::size_t& base : epoch_) base = static_cast<std::size_t>(r.u64());
  observed_commits_ = r.u64();
}

}  // namespace rps::faultsim
