// Shadow oracle for crash-consistency checking.
//
// The oracle rides the FTL's placement observer: every mapping commit
// (host write or GC relocation) appends a (version, signature) record to
// the per-LPN history — GC copies carry the same host-write version as
// their source and are deduplicated, so the history is exactly the
// sequence of host writes in program order. Acknowledgement times are
// joined in afterwards: the legacy path acks each write at its returned
// completion (ack_latest), the controller path joins the op log's
// successful host-write records against the history in dispatch order
// (finalize_from_op_log).
//
// After a crash and reboot, check() walks every LPN and classifies it:
//   - newest pre-crash write acknowledged (program durable at the cut):
//     the read-back must match that version and signature, else it counts
//     as lost (read fails) or stale (an older copy resurfaced),
//   - newest write unacknowledged but an older one was acknowledged: the
//     LPN sits in the overwrite-hazard window — under the eager-commit
//     device model GC may already have erased the acknowledged copy while
//     the newer write was in flight — so it is skipped and counted,
//   - never acknowledged: unacknowledged data may vanish silently.
#pragma once

#include <cstdint>
#include <vector>

#include "src/controller/controller.hpp"
#include "src/ftl/ftl_base.hpp"
#include "src/util/types.hpp"

namespace rps::ser {
class Writer;
class Reader;
}  // namespace rps::ser

namespace rps::faultsim {

/// Post-recovery verdict over every acknowledged host write.
struct OracleCheck {
  std::uint64_t acked_lpns_checked = 0;
  std::uint64_t lost = 0;   // acknowledged data unreadable after reboot
  std::uint64_t stale = 0;  // readable, but an older version resurfaced
  /// LPNs excluded because their newest pre-crash write was still
  /// unacknowledged (see the overwrite-hazard note above).
  std::uint64_t overwrite_hazard_skipped = 0;
  Lpn first_failed_lpn = kInvalidLpn;

  friend bool operator==(const OracleCheck&, const OracleCheck&) = default;
};

class ShadowOracle {
 public:
  /// Attach to `ftl`: installs the placement observer (replacing any
  /// previous one) and snoops every commit from now on. The oracle must
  /// outlive the observer's use; detach() before destroying either.
  void attach(ftl::FtlBase& ftl);
  void detach();

  /// Mark the epoch boundary between preconditioning (acked via
  /// ack_latest) and the measured phase (acked via the op log): the op-log
  /// join starts after the records present now.
  void mark_epoch();

  /// Legacy-path acknowledgement: the newest record of `lpn` became
  /// durable at `complete`.
  void ack_latest(Lpn lpn, Microseconds complete);

  /// Controller-path acknowledgement: join successful host-write op
  /// records (in log = dispatch order) against the post-epoch history of
  /// each LPN. An op's data counts as durable at its completion time.
  void finalize_from_op_log(const std::vector<ctrl::OpRecord>& log);

  /// Verify post-reboot state: reads every LPN with an acknowledged write
  /// through `ftl` at time `now` and compares against the newest write
  /// acknowledged by `crash_time`. Charges device time (it is a reboot
  /// scrub, not free).
  [[nodiscard]] OracleCheck check(ftl::FtlBase& ftl, Microseconds crash_time,
                                  Microseconds now) const;

  [[nodiscard]] std::uint64_t observed_commits() const { return observed_commits_; }

  /// Snapshot support (warm-started trials): serialize / restore the full
  /// write history and epoch cursors. load() expects an oracle already
  /// attach()ed to a same-capacity FTL (attach sizes the tables).
  void save(ser::Writer& w) const;
  void load(ser::Reader& r);

 private:
  struct WriteRecord {
    std::uint64_t version = 0;
    std::uint64_t signature = 0;
    Microseconds acked_at = kTimeNever;
  };

  void observe(Lpn lpn, const nand::PageAddress& addr);

  ftl::FtlBase* ftl_ = nullptr;
  /// Per-LPN write history, indexed by LPN (sized to the attached FTL's
  /// exported pages — the observer only ever reports host LPNs). Flat
  /// indexing replaces the former hash maps on the observe hot path,
  /// which runs once per mapping commit of every trial.
  std::vector<std::vector<WriteRecord>> history_;
  /// Per-LPN history length at mark_epoch(); op-log join cursor base.
  std::vector<std::size_t> epoch_;
  std::uint64_t observed_commits_ = 0;
};

}  // namespace rps::faultsim
