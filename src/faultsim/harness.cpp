#include "src/faultsim/harness.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/controller/controller.hpp"
#include "src/host/multi_queue.hpp"
#include "src/obs/trace.hpp"
#include "src/util/random.hpp"
#include "src/util/serialize.hpp"

namespace rps::faultsim {

ftl::FtlConfig FaultSimConfig::small_config() {
  ftl::FtlConfig c = ftl::FtlConfig::tiny();
  // Keep the tiny 2-channel x 2-chip array (striping and per-chip queues
  // stay exercised) but deepen the blocks so a fast block holds enough LSB
  // pages for the parity-flush window to be hittable by a sweep.
  c.geometry.wordlines_per_block = 8;
  return c;
}

const char* to_string(sim::Engine engine) {
  switch (engine) {
    case sim::Engine::kController: return "controller";
    case sim::Engine::kLegacySync: return "legacy";
  }
  __builtin_unreachable();
}

std::optional<sim::FtlKind> ftl_kind_from(const std::string& name) {
  for (const sim::FtlKind kind :
       {sim::FtlKind::kPage, sim::FtlKind::kParity, sim::FtlKind::kRtf,
        sim::FtlKind::kFlex, sim::FtlKind::kSlc}) {
    if (name == sim::to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::optional<sim::Engine> engine_from(const std::string& name) {
  if (name == "controller") return sim::Engine::kController;
  if (name == "legacy") return sim::Engine::kLegacySync;
  return std::nullopt;
}

namespace {

/// One generated host request of the main phase.
struct GenRequest {
  bool write = true;
  Lpn lpn = 0;
  std::uint32_t pages = 1;
  double utilization = 0.0;
  Microseconds arrival = 0;
};

/// The whole main-phase request stream, precomputed so both engines (and
/// every crash point) consume the identical seeded sequence.
std::vector<GenRequest> generate_workload(const FaultSimConfig& config,
                                          Lpn working_set, Microseconds start) {
  Rng rng(config.seed * 0x9e3779b97f4a7c15ull + 0x632be59bd9b4e019ull);
  std::vector<GenRequest> reqs;
  reqs.reserve(config.requests);
  Microseconds now = start;
  for (std::uint64_t i = 0; i < config.requests; ++i) {
    GenRequest r;
    now += static_cast<Microseconds>(rng.next_below(
        2 * static_cast<std::uint64_t>(config.mean_gap_us) + 1));
    r.arrival = now;
    r.pages = 1 + static_cast<std::uint32_t>(
                      rng.next_below(std::max<std::uint32_t>(1, config.max_pages_per_request)));
    r.pages = static_cast<std::uint32_t>(
        std::min<Lpn>(r.pages, working_set));
    r.lpn = rng.next_below(working_set - r.pages + 1);
    r.write = !rng.chance(config.read_fraction);
    // Alternate burst-like and lull-like buffer pressure so flexFTL's
    // policy serves both LSB and MSB phases (both crash hazards live).
    r.utilization = rng.chance(0.5) ? 0.95 : 0.02;
    reqs.push_back(r);
  }
  return reqs;
}

/// Tenant set for a multi-tenant trial: the seeded workload knobs mapped
/// onto per-tenant open-loop sources. Even ids arrive Poisson, odd ids
/// bursty on/off — the bursty OFF periods are what opens idle windows
/// (background GC/scrub) in the middle of a crash sweep. Interarrival
/// scales with the tenant count so the aggregate load matches the
/// single-stream trial's.
std::vector<host::TenantConfig> make_tenants(const FaultSimConfig& config,
                                             std::uint32_t tenants,
                                             Microseconds start) {
  workload::SizeDistribution dist{{1, 0.6}};
  if (config.max_pages_per_request >= 2) dist.push_back({2, 0.3});
  if (config.max_pages_per_request >= 4) dist.push_back({4, 0.1});
  std::vector<host::TenantConfig> out(tenants);
  for (std::uint32_t i = 0; i < tenants; ++i) {
    host::TenantConfig& t = out[i];
    t.id = i;
    t.arrival = (i % 2 == 0) ? workload::ArrivalProcess::kPoisson
                             : workload::ArrivalProcess::kBurstyOnOff;
    t.read_fraction = config.read_fraction;
    t.size_dist = dist;
    t.mean_interarrival_us = config.mean_gap_us * tenants;
    t.on_mean_us = 20 * config.mean_gap_us;
    t.off_mean_us = 50 * config.mean_gap_us;
    t.start_us = start;
    t.requests = std::max<std::uint64_t>(1, config.requests / tenants);
  }
  return out;
}

}  // namespace

std::uint64_t WarmStart::digest() const {
  std::uint64_t h = ser::fnv1a(ftl.bytes());
  return ser::fnv1a(oracle.data(), oracle.size(), h);
}

namespace {
constexpr std::uint64_t kWarmStartMagic = 0x314d524157535052ull;  // "RPSWARM1"
}  // namespace

bool WarmStart::save_file(const std::string& path) const {
  ser::Writer w;
  w.u64(kWarmStartMagic);
  w.u64(ftl.bytes().size());
  w.bytes(ftl.bytes().data(), ftl.bytes().size());
  w.u64(oracle.size());
  w.bytes(oracle.data(), oracle.size());
  w.u64(digest());
  const std::vector<std::uint8_t> bytes = w.take();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  return std::fclose(f) == 0 && written == bytes.size();
}

std::optional<WarmStart> WarmStart::load_file(const std::string& path) {
  // Reuse the snapshot file reader for the raw bytes; validation is ours.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) return std::nullopt;
  ser::Reader r(bytes);
  if (r.u64() != kWarmStartMagic) return std::nullopt;
  WarmStart warm;
  const std::uint64_t snap_size = r.u64();
  if (snap_size > r.remaining()) return std::nullopt;
  std::vector<std::uint8_t> snap(static_cast<std::size_t>(snap_size));
  r.bytes(snap.data(), snap.size());
  warm.ftl = sim::Snapshot::from_bytes(std::move(snap));
  const std::uint64_t oracle_size = r.u64();
  if (oracle_size > r.remaining()) return std::nullopt;
  warm.oracle.resize(static_cast<std::size_t>(oracle_size));
  r.bytes(warm.oracle.data(), warm.oracle.size());
  const std::uint64_t digest = r.u64();
  if (!r.ok() || !r.at_end() || digest != warm.digest() || !warm.ftl.valid()) {
    return std::nullopt;
  }
  return warm;
}

namespace {

/// The seed-independent fill phase: one pass over the working set through
/// the synchronous path while the device is idle. Everything here is
/// durable long before any crash point (crash points come from main-phase
/// completions). Ends with the oracle's epoch mark — exactly the fork
/// point WarmStart captures.
void run_fill_phase(ftl::FtlBase& ftl, ShadowOracle& oracle, Lpn working_set) {
  for (Lpn lpn = 0; lpn < working_set; ++lpn) {
    const Result<ftl::HostOp> op = ftl.write(lpn, ftl.device().all_idle_at(), 0.5);
    if (op.is_ok()) oracle.ack_latest(lpn, op.value().complete);
  }
  oracle.mark_epoch();
}

Lpn fill_working_set(const ftl::FtlBase& ftl, const FaultSimConfig& config) {
  return std::max<Lpn>(
      1, static_cast<Lpn>(static_cast<double>(ftl.exported_pages()) *
                          config.working_set_fraction));
}

}  // namespace

WarmStart make_warm_start(const FaultSimConfig& config) {
  std::unique_ptr<ftl::FtlBase> ftl = sim::make_ftl(config.kind, config.ftl_config);
  ShadowOracle oracle;
  oracle.attach(*ftl);
  run_fill_phase(*ftl, oracle, fill_working_set(*ftl, config));
  oracle.detach();
  WarmStart warm;
  warm.ftl = sim::Snapshot::capture(*ftl);
  ser::Writer w;
  oracle.save(w);
  warm.oracle = w.take();
  return warm;
}

TrialResult run_trial(const FaultSimConfig& config, obs::TraceSink* sink,
                      const WarmStart* warm) {
  TrialResult out;
  CrashReport& report = out.report;
  report.crash_time_us = config.crash_time_us;
  const Microseconds crash = config.crash_time_us;

  std::unique_ptr<ftl::FtlBase> ftl = sim::make_ftl(config.kind, config.ftl_config);
  ShadowOracle oracle;
  oracle.attach(*ftl);

  const Lpn working_set = fill_working_set(*ftl, config);
  if (warm != nullptr) {
    // Fork from the shared post-fill snapshot instead of re-filling: the
    // restored device, mapping and oracle history are bit-identical to
    // what the fill loop below would produce.
    const bool restored = warm->ftl.restore(*ftl);
    assert(restored);
    (void)restored;
    ser::Reader r(warm->oracle);
    oracle.load(r);
    assert(r.ok() && r.at_end());
  } else {
    run_fill_phase(*ftl, oracle, working_set);
  }
  // Trace the main phase only: fill-phase writes are setup, not behaviour
  // under test.
  if (sink != nullptr) {
    sink->set_planes(ftl->device().geometry().planes_per_chip);
  }
  ftl->set_trace_sink(sink);

  const Microseconds start = ftl->device().all_idle_at() + 1'000;
  const std::vector<GenRequest> reqs = generate_workload(config, working_set, start);

  std::vector<nand::PowerLossVictim> victims;
  std::vector<Microseconds> completes;

  if (config.tenants > 1) {
    // Multi-tenant frontend path: per-tenant open-loop queues over
    // disjoint partitions of the (pre-filled) working set, arbitrated
    // admission, per-tenant write streams. A crash lands mid-arbitration.
    const auto tenant_count = static_cast<std::uint32_t>(
        std::min<Lpn>(config.tenants, working_set));
    host::MultiQueueConfig mq;
    mq.arbiter.policy = config.arb;
    mq.keep_op_log = true;
    host::MultiQueueFrontend frontend(*ftl, mq);
    for (const host::TenantConfig& t :
         make_tenants(config, tenant_count, start)) {
      frontend.add_tenant(
          t, host::tenant_trace(
                 t, host::tenant_partition(t.id, tenant_count, working_set),
                 config.seed));
    }
    frontend.set_observability(sink, nullptr);
    host::MultiQueueResult mres = frontend.run(crash);
    if (crash != kTimeNever) {
      report.crashed = true;
      ctrl::PowerLossOutcome outcome = frontend.power_loss(crash, mres);
      victims = std::move(outcome.victims);
      report.victims = victims.size();
      report.cancelled_write_ops = outcome.cancelled_write_ops;
      report.cancelled_read_ops = outcome.cancelled_read_ops;
      report.aborted_commands = outcome.aborted_commands;
    }
    for (const host::TenantResult& t : mres.tenants) {
      report.requests_issued += t.submitted;
    }
    oracle.finalize_from_op_log(frontend.controller().op_log());
    for (const ctrl::OpRecord& rec : frontend.controller().op_log()) {
      if (rec.ok && rec.complete < crash) completes.push_back(rec.complete);
    }
  } else if (config.engine == sim::Engine::kController) {
    ctrl::Controller controller(
        *ftl, ctrl::ControllerConfig{.stripe_writes = true, .keep_op_log = true});
    controller.set_observability(sink, nullptr);
    for (const GenRequest& r : reqs) {
      if (r.arrival >= crash) break;
      ctrl::HostCommand cmd;
      cmd.kind = r.write ? ctrl::CmdKind::kWrite : ctrl::CmdKind::kRead;
      cmd.lpn = r.lpn;
      cmd.page_count = r.pages;
      cmd.issue = r.arrival;
      cmd.buffer_utilization = r.utilization;
      controller.submit(cmd);
      controller.drain(r.arrival);
      ++report.requests_issued;
    }
    if (crash != kTimeNever) {
      report.crashed = true;
      ctrl::PowerLossOutcome outcome = controller.power_loss(crash);
      victims = std::move(outcome.victims);
      report.victims = victims.size();
      report.cancelled_write_ops = outcome.cancelled_write_ops;
      report.cancelled_read_ops = outcome.cancelled_read_ops;
      report.aborted_commands = outcome.aborted_commands;
    } else {
      controller.drain();
    }
    oracle.finalize_from_op_log(controller.op_log());
    for (const ctrl::OpRecord& rec : controller.op_log()) {
      if (rec.ok && rec.complete < crash) completes.push_back(rec.complete);
    }
  } else {
    for (const GenRequest& r : reqs) {
      if (r.arrival >= crash) break;
      for (std::uint32_t j = 0; j < r.pages; ++j) {
        if (r.write) {
          const Result<ftl::HostOp> op = ftl->write(r.lpn + j, r.arrival, r.utilization);
          if (op.is_ok()) {
            oracle.ack_latest(r.lpn + j, op.value().complete);
            if (op.value().complete < crash) completes.push_back(op.value().complete);
          }
        } else {
          const Result<ftl::HostOp> op = ftl->read(r.lpn + j, r.arrival);
          if (op.is_ok() && op.value().complete < crash) {
            completes.push_back(op.value().complete);
          }
        }
      }
      ++report.requests_issued;
    }
    if (crash != kTimeNever) {
      report.crashed = true;
      victims = ftl->device().inject_power_loss(crash);
      report.victims = victims.size();
    }
  }

  std::sort(completes.begin(), completes.end());
  completes.erase(std::unique(completes.begin(), completes.end()), completes.end());
  out.boundaries = std::move(completes);

  if (report.crashed && std::getenv("FAULTSIM_DEBUG") != nullptr) {
    for (const nand::PowerLossVictim& v : victims) {
      std::fprintf(stderr, "[victim] chip=%u block=%u wl=%u type=%s\n", v.chip,
                   v.block, v.pos.wordline,
                   v.pos.type == nand::PageType::kLsb ? "LSB" : "MSB");
    }
  }
  if (report.crashed && sink != nullptr) {
    sink->record(obs::EventKind::kPowerLossCut, 0, crash, -1, victims.size());
  }
  if (report.crashed) {
    // Reboot at the instant of the cut; recovery work is charged from
    // there (the device timelines were capped to the crash time).
    const sim::RebootOutcome reboot =
        sim::crash_reboot(config.kind, *ftl, victims, crash, sink);
    report.recovery_supported = reboot.recovery_supported;
    report.recovery = reboot.report;
  }

  const Microseconds check_at = std::max(ftl->device().all_idle_at(),
                                         report.crashed ? crash : Microseconds{0});
  report.oracle = oracle.check(*ftl, crash, check_at);
  report.unaccounted_loss = report.oracle.lost > report.recovery.pages_lost
                                ? report.oracle.lost - report.recovery.pages_lost
                                : 0;
  // Verdict: an FTL with a real recovery procedure must leave no stale
  // reads and no losses it did not explicitly report. FTLs without one
  // (recovery_supported == false) lose destroyed pages by design — the
  // oracle still counts them, but they are not violations.
  report.violations =
      report.recovery_supported ? report.oracle.stale + report.unaccounted_loss : 0;
  if (config.tenants > 1) {
    // Stream-tag audit: every readable mapped page must carry either tag
    // 0 (default stream, fill-phase data, or an OOB hint recovery could
    // not reconstruct) or the stream of its partition's owner. A nonzero
    // tag naming a different tenant means the frontend/allocator routed
    // one tenant's data through another's stream — a violation whether or
    // not the trial crashed.
    const auto tenant_count = static_cast<std::uint32_t>(
        std::min<Lpn>(config.tenants, working_set));
    for (Lpn lpn = 0; lpn < working_set; ++lpn) {
      const Result<nand::PageData> data = ftl->read_data(lpn, check_at);
      if (!data.is_ok()) continue;  // destroyed data: the oracle's department
      if ((data.value().spare & nand::kNonHostSpareFlag) != 0) continue;
      const std::uint32_t tag = nand::stream_of_spare(data.value().spare);
      if (tag == 0) continue;
      const std::uint32_t owner =
          host::tenant_of_lpn(lpn, tenant_count, working_set);
      if (tag != owner) ++report.stream_tag_mismatches;
    }
    report.violations += report.stream_tag_mismatches;
  }
  report.consistent = ftl->check_consistency();
  out.attribution = ftl->device().attribution();
  out.wear = obs::collect_wear(ftl->device());
  ftl->set_trace_sink(nullptr);
  oracle.detach();
  return out;
}

std::string reproducer(const FaultSimConfig& config) {
  std::ostringstream os;
  os << "faultsim --ftl=" << sim::to_string(config.kind)
     << " --engine=" << to_string(config.engine) << " --seed=" << config.seed
     << " --requests=" << config.requests
     << " --max-pages=" << config.max_pages_per_request
     << " --ws=" << config.working_set_fraction
     << " --reads=" << config.read_fraction << " --gap=" << config.mean_gap_us
     << " --crash-us=" << config.crash_time_us;
  // Non-default device topology / failure knobs only, so legacy
  // reproducer lines stay byte-identical.
  if (config.ftl_config.geometry.planes_per_chip != 1) {
    os << " --planes=" << config.ftl_config.geometry.planes_per_chip;
  }
  if (config.ftl_config.bad_blocks.spare_blocks_per_unit != 0) {
    os << " --spares=" << config.ftl_config.bad_blocks.spare_blocks_per_unit;
  }
  if (config.ftl_config.bad_blocks.factory_bad_ppm != 0) {
    os << " --factory-ppm=" << config.ftl_config.bad_blocks.factory_bad_ppm;
  }
  if (config.ftl_config.bad_blocks.erase_endurance != 0) {
    os << " --endurance=" << config.ftl_config.bad_blocks.erase_endurance;
  }
  if (config.tenants != 1) os << " --tenants=" << config.tenants;
  if (config.arb != ctrl::ArbPolicy::kRoundRobin) {
    os << " --arb=" << ctrl::to_string(config.arb);
  }
  return os.str();
}

std::optional<FaultSimConfig> parse_reproducer(const std::string& line) {
  FaultSimConfig config;
  std::istringstream is(line);
  std::string token;
  bool first = true;
  while (is >> token) {
    // The leading word of a reproducer line is the binary name.
    if (first && token.find("--") != 0) {
      first = false;
      continue;
    }
    first = false;
    const std::size_t eq = token.find('=');
    if (token.rfind("--", 0) != 0 || eq == std::string::npos) return std::nullopt;
    const std::string key = token.substr(2, eq - 2);
    const std::string value = token.substr(eq + 1);
    try {
      if (key == "ftl") {
        const auto kind = ftl_kind_from(value);
        if (!kind) return std::nullopt;
        config.kind = *kind;
      } else if (key == "engine") {
        const auto engine = engine_from(value);
        if (!engine) return std::nullopt;
        config.engine = *engine;
      } else if (key == "seed") {
        config.seed = std::stoull(value);
      } else if (key == "requests") {
        config.requests = std::stoull(value);
      } else if (key == "max-pages") {
        config.max_pages_per_request = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "ws") {
        config.working_set_fraction = std::stod(value);
      } else if (key == "reads") {
        config.read_fraction = std::stod(value);
      } else if (key == "gap") {
        config.mean_gap_us = std::stoll(value);
      } else if (key == "crash-us") {
        config.crash_time_us = std::stoll(value);
      } else if (key == "planes") {
        config.ftl_config.geometry.planes_per_chip =
            static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "spares") {
        config.ftl_config.bad_blocks.spare_blocks_per_unit =
            static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "factory-ppm") {
        config.ftl_config.bad_blocks.factory_bad_ppm =
            static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "endurance") {
        config.ftl_config.bad_blocks.erase_endurance = std::stoull(value);
      } else if (key == "tenants") {
        config.tenants = static_cast<std::uint32_t>(std::stoul(value));
        if (config.tenants == 0) return std::nullopt;
      } else if (key == "arb") {
        const auto policy = ctrl::arb_policy_from(value);
        if (!policy) return std::nullopt;
        config.arb = *policy;
      } else {
        return std::nullopt;
      }
    } catch (...) {
      return std::nullopt;
    }
  }
  return config;
}

}  // namespace rps::faultsim
