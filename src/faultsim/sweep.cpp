#include "src/faultsim/sweep.hpp"

#include <algorithm>

#include "src/obs/trace.hpp"
#include "src/util/parallel.hpp"

namespace rps::faultsim {

namespace {

bool fails(const CrashReport& report) {
  return report.violations > 0 || !report.consistent;
}

}  // namespace

FaultSimConfig minimize_failure(const FaultSimConfig& config, const WarmStart* warm) {
  FaultSimConfig best = config;
  // Requests arriving at or after the cut were never issued; dropping
  // them cannot change the trial. Start the search from the issued count.
  {
    FaultSimConfig probe = config;
    probe.requests = run_trial(config, nullptr, warm).report.requests_issued;
    if (probe.requests > 0 && fails(run_trial(probe, nullptr, warm).report)) {
      best = probe;
    }
  }
  // Bisect [1, best.requests] for the smallest still-failing prefix. The
  // failure is not strictly monotone in the prefix length (a dropped
  // request can move the crash off its victim), so this is a greedy
  // shrink: keep halving while the lower half still fails.
  std::uint64_t lo = 1;
  std::uint64_t hi = best.requests;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    FaultSimConfig probe = best;
    probe.requests = mid;
    if (fails(run_trial(probe, nullptr, warm).report)) {
      best = probe;
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return best;
}

namespace {

/// Everything one crash point contributes to the SweepResult, produced
/// independently per point and merged in point order.
struct PointOutcome {
  std::uint64_t victims = 0;
  std::uint64_t pages_lost = 0;
  std::uint64_t parity_recovered = 0;
  bool replay_mismatch = false;
  bool failed = false;
  SweepFailure failure;
};

PointOutcome run_point(const FaultSimConfig& golden,
                       const std::vector<Microseconds>& boundaries,
                       std::uint64_t k, std::uint64_t points,
                       const SweepOptions& options, obs::TraceSink* sink,
                       const WarmStart* warm) {
  // Evenly spaced boundary indices; crash one microsecond before the
  // completion so the op is mid-flight at the cut.
  const std::size_t idx = static_cast<std::size_t>(
      (k * boundaries.size()) / points + boundaries.size() / (2 * points));
  FaultSimConfig crashed = golden;
  crashed.crash_time_us = boundaries[std::min(idx, boundaries.size() - 1)] - 1;
  // One pid scope per crash point; only this primary trial records —
  // replay verification and minimization below re-run the same config and
  // would double every event.
  if (sink != nullptr) sink->set_pid(static_cast<std::uint32_t>(1 + k));
  const TrialResult trial = run_trial(crashed, sink, warm);
  PointOutcome outcome;
  outcome.victims = trial.report.victims;
  outcome.pages_lost = trial.report.recovery.pages_lost;
  outcome.parity_recovered = trial.report.recovery.pages_recovered;

  if (options.verify_replay) {
    // The reproducer line must round-trip and replay to the identical
    // report — otherwise the "deterministic" in the harness's name is
    // broken and every failure below is unactionable.
    const std::optional<FaultSimConfig> parsed =
        parse_reproducer(reproducer(crashed));
    outcome.replay_mismatch =
        !parsed || !(run_trial(*parsed, nullptr, warm).report == trial.report);
  }

  if (!fails(trial.report) && !outcome.replay_mismatch) return outcome;

  outcome.failed = true;
  outcome.failure.replay_mismatch = outcome.replay_mismatch;
  outcome.failure.config = (options.minimize && fails(trial.report))
                               ? minimize_failure(crashed, warm)
                               : crashed;
  outcome.failure.report = run_trial(outcome.failure.config, nullptr, warm).report;
  outcome.failure.line = reproducer(outcome.failure.config);
  return outcome;
}

}  // namespace

SweepResult sweep(const FaultSimConfig& base, const SweepOptions& options,
                  obs::TraceSink* sink, const WarmStart* warm) {
  SweepResult result;

  // Precondition once, fork everywhere: the golden trial, every crash
  // point, every replay-verify and minimization probe all share one
  // post-fill snapshot. Read-only, so jobs-wide sharing is free.
  WarmStart local;
  if (warm == nullptr && options.warm_start) {
    local = make_warm_start(base);
    warm = &local;
  }

  FaultSimConfig golden = base;
  golden.crash_time_us = kTimeNever;
  if (sink != nullptr) sink->set_pid(0);  // golden run's trace scope
  const TrialResult golden_trial = run_trial(golden, sink, warm);
  const std::vector<Microseconds>& boundaries = golden_trial.boundaries;
  result.golden_boundaries = boundaries.size();
  if (boundaries.empty()) return result;

  const std::uint64_t points =
      std::min<std::uint64_t>(options.crash_points, boundaries.size());
  // Each crash point replays the whole trial from its own config — the
  // points share nothing, so they run jobs-wide. Outcomes land in
  // point-indexed slots and merge below in point order: the SweepResult
  // (and stdout derived from it) is bit-identical for any jobs value.
  // One shared sink cannot take concurrent writers: tracing runs inline.
  const std::uint32_t jobs = sink != nullptr ? 1 : options.jobs;
  std::vector<PointOutcome> outcomes(points);
  util::parallel_for_indexed(
      points, jobs, [&](std::size_t k) {
        outcomes[k] = run_point(golden, boundaries, k, points, options, sink, warm);
      });
  for (PointOutcome& outcome : outcomes) {
    ++result.crashes_injected;
    result.total_victims += outcome.victims;
    result.total_pages_lost += outcome.pages_lost;
    result.total_parity_recovered += outcome.parity_recovered;
    if (outcome.replay_mismatch) ++result.replay_mismatches;
    if (outcome.failed) result.failures.push_back(std::move(outcome.failure));
  }
  return result;
}

std::vector<MatrixCell> sweep_matrix(const FaultSimConfig& base,
                                     const MatrixOptions& options,
                                     const WarmStart* warm) {
  std::vector<MatrixCell> cells;
  for (std::uint64_t seed = 1; seed <= options.seeds; ++seed) {
    for (const std::uint64_t points : options.densities) {
      MatrixCell cell;
      cell.seed = seed;
      cell.points = points;
      cells.push_back(std::move(cell));
    }
  }
  // One warm start serves the whole matrix: the fill phase never sees the
  // seed or crash density, so every (seed, density) cell forks from it.
  WarmStart local;
  if (warm == nullptr && options.sweep.warm_start) {
    local = make_warm_start(base);
    warm = &local;
  }
  // One level of parallelism only: when cells fan out across the pool,
  // each cell's inner sweep runs sequentially (nested pools would
  // oversubscribe without adding coverage).
  SweepOptions per_cell = options.sweep;
  if (options.jobs > 1) per_cell.jobs = 1;
  util::parallel_for_indexed(cells.size(), options.jobs, [&](std::size_t i) {
    FaultSimConfig config = base;
    config.seed = cells[i].seed;
    SweepOptions cell_options = per_cell;
    cell_options.crash_points = cells[i].points;
    cells[i].result = sweep(config, cell_options, nullptr, warm);
  });
  return cells;
}

}  // namespace rps::faultsim
