#include "src/faultsim/sweep.hpp"

#include <algorithm>

namespace rps::faultsim {

namespace {

bool fails(const CrashReport& report) {
  return report.violations > 0 || !report.consistent;
}

}  // namespace

FaultSimConfig minimize_failure(const FaultSimConfig& config) {
  FaultSimConfig best = config;
  // Requests arriving at or after the cut were never issued; dropping
  // them cannot change the trial. Start the search from the issued count.
  {
    FaultSimConfig probe = config;
    probe.requests = run_trial(config).report.requests_issued;
    if (probe.requests > 0 && fails(run_trial(probe).report)) best = probe;
  }
  // Bisect [1, best.requests] for the smallest still-failing prefix. The
  // failure is not strictly monotone in the prefix length (a dropped
  // request can move the crash off its victim), so this is a greedy
  // shrink: keep halving while the lower half still fails.
  std::uint64_t lo = 1;
  std::uint64_t hi = best.requests;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    FaultSimConfig probe = best;
    probe.requests = mid;
    if (fails(run_trial(probe).report)) {
      best = probe;
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return best;
}

SweepResult sweep(const FaultSimConfig& base, const SweepOptions& options) {
  SweepResult result;

  FaultSimConfig golden = base;
  golden.crash_time_us = kTimeNever;
  const TrialResult golden_trial = run_trial(golden);
  const std::vector<Microseconds>& boundaries = golden_trial.boundaries;
  result.golden_boundaries = boundaries.size();
  if (boundaries.empty()) return result;

  const std::uint64_t points =
      std::min<std::uint64_t>(options.crash_points, boundaries.size());
  for (std::uint64_t k = 0; k < points; ++k) {
    // Evenly spaced boundary indices; crash one microsecond before the
    // completion so the op is mid-flight at the cut.
    const std::size_t idx = static_cast<std::size_t>(
        (k * boundaries.size()) / points + boundaries.size() / (2 * points));
    FaultSimConfig crashed = golden;
    crashed.crash_time_us = boundaries[std::min(idx, boundaries.size() - 1)] - 1;
    const TrialResult trial = run_trial(crashed);
    ++result.crashes_injected;
    result.total_victims += trial.report.victims;
    result.total_pages_lost += trial.report.recovery.pages_lost;
    result.total_parity_recovered += trial.report.recovery.pages_recovered;

    bool replay_mismatch = false;
    if (options.verify_replay) {
      // The reproducer line must round-trip and replay to the identical
      // report — otherwise the "deterministic" in the harness's name is
      // broken and every failure below is unactionable.
      const std::optional<FaultSimConfig> parsed =
          parse_reproducer(reproducer(crashed));
      replay_mismatch =
          !parsed || !(run_trial(*parsed).report == trial.report);
      if (replay_mismatch) ++result.replay_mismatches;
    }

    if (!fails(trial.report) && !replay_mismatch) continue;

    SweepFailure failure;
    failure.replay_mismatch = replay_mismatch;
    failure.config = (options.minimize && fails(trial.report))
                         ? minimize_failure(crashed)
                         : crashed;
    failure.report = run_trial(failure.config).report;
    failure.line = reproducer(failure.config);
    result.failures.push_back(std::move(failure));
  }
  return result;
}

}  // namespace rps::faultsim
