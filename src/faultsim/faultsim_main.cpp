// faultsim: deterministic power-loss crash-consistency driver.
//
// Modes:
//   faultsim --matrix [--seeds=16] [--densities=8,16,32] [--jobs=N] [--ftl=flex]
//       CI sweep: for each seed x crash-density cell, inject crashes at
//       evenly spaced op-completion boundaries, audit recovery with the
//       shadow oracle, and verify every crash replays bit-identically
//       from its reproducer line. Exit 1 and print each failure's
//       minimal one-line reproducer on stderr (first line of stderr is
//       machine-grabbable for a CI artifact).
//   faultsim --sweep --ftl=... --engine=... --seed=N [--points=16] [--jobs=N]
//       One sweep cell, verbose per-crash summary.
//   faultsim --ftl=... --seed=N --crash-us=T [...]
//       Replay a single reproducer line (the flags ARE the line printed
//       by a failing sweep). Exit 1 on violations.
//
// --trace=PATH (sweep and single-trial modes) writes a Chrome trace_event
// JSON of the run — open it in Perfetto / chrome://tracing. Tracing a
// sweep forces --jobs=1; each crash point records under its own process
// lane. Traces timestamp in simulated microseconds and are byte-identical
// across runs of the same flags.
//
// --metrics=PATH (sweep and single-trial modes) writes an
// obs::MetricsReport with the cause-tagged attribution breakdown and the
// wear-ledger digest. Single-trial mode reports the replayed trial
// itself; sweep mode reports the config's golden (no-crash) trial, which
// is deterministic and --jobs-invariant.
//
// Warm-start plumbing (results are bit-identical in all three modes):
//   --snapshot=PATH       run only the fill phase of the config, save the
//                         post-fill WarmStart (FTL + oracle) to PATH,
//                         print its digest, and exit.
//   --from-snapshot=PATH  fork every trial from a WarmStart saved by
//                         --snapshot instead of re-running the fill. The
//                         snapshot must match the config's --ftl.
//   --cold                re-run the fill phase in every trial (disables
//                         the internal warm start sweeps use by default);
//                         the slow path kept for differential testing.
#include <cstdio>
#include <string>
#include <vector>

#include "src/faultsim/harness.hpp"
#include "src/faultsim/sweep.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace {

using namespace rps;
using namespace rps::faultsim;

void print_report(const CrashReport& r) {
  std::printf(
      "crash_us=%lld issued=%llu victims=%llu cancelled_w=%llu "
      "cancelled_r=%llu aborted=%llu\n",
      static_cast<long long>(r.crash_time_us),
      static_cast<unsigned long long>(r.requests_issued),
      static_cast<unsigned long long>(r.victims),
      static_cast<unsigned long long>(r.cancelled_write_ops),
      static_cast<unsigned long long>(r.cancelled_read_ops),
      static_cast<unsigned long long>(r.aborted_commands));
  std::printf(
      "recovery: supported=%d recovered=%llu lost=%llu discarded=%llu "
      "rolled_back=%llu parity_flush_interrupted=%llu time_us=%lld\n",
      r.recovery_supported ? 1 : 0,
      static_cast<unsigned long long>(r.recovery.pages_recovered),
      static_cast<unsigned long long>(r.recovery.pages_lost),
      static_cast<unsigned long long>(r.recovery.interrupted_writes_discarded),
      static_cast<unsigned long long>(r.recovery.relocations_rolled_back),
      static_cast<unsigned long long>(r.recovery.parity_flush_interrupted),
      static_cast<long long>(r.recovery.recovery_time_us));
  std::printf(
      "oracle: checked=%llu lost=%llu stale=%llu hazard_skipped=%llu "
      "unaccounted=%llu violations=%llu consistent=%d\n",
      static_cast<unsigned long long>(r.oracle.acked_lpns_checked),
      static_cast<unsigned long long>(r.oracle.lost),
      static_cast<unsigned long long>(r.oracle.stale),
      static_cast<unsigned long long>(r.oracle.overwrite_hazard_skipped),
      static_cast<unsigned long long>(r.unaccounted_loss),
      static_cast<unsigned long long>(r.violations), r.consistent ? 1 : 0);
  if (r.oracle.first_failed_lpn != kInvalidLpn) {
    std::printf("first_failed_lpn=%llu\n",
                static_cast<unsigned long long>(r.oracle.first_failed_lpn));
  }
}

int report_failures(const SweepResult& result) {
  for (const SweepFailure& f : result.failures) {
    std::fprintf(stderr, "%s\n", f.line.c_str());
    std::fprintf(stderr,
                 "  ^ %s: violations=%llu lost=%llu stale=%llu consistent=%d\n",
                 f.replay_mismatch ? "REPLAY MISMATCH" : "ORACLE VIOLATION",
                 static_cast<unsigned long long>(f.report.violations),
                 static_cast<unsigned long long>(f.report.oracle.lost),
                 static_cast<unsigned long long>(f.report.oracle.stale),
                 f.report.consistent ? 1 : 0);
  }
  return result.ok() ? 0 : 1;
}

/// One trial's metrics report: crash/oracle headline numbers, then the
/// attribution and wear sections collected by run_trial.
bool write_metrics(const std::string& path, const char* label,
                   const TrialResult& trial) {
  obs::MetricsReport report;
  report.begin(label);
  report.add_u64("requests_issued", trial.report.requests_issued);
  report.add_i64("crash_time_us", trial.report.crash_time_us);
  report.add_u64("victims", trial.report.victims);
  report.add_u64("violations", trial.report.violations);
  report.add_u64("boundaries", trial.boundaries.size());
  report.add_attribution(trial.attribution);
  report.add_wear(trial.wear);
  report.end();
  if (!report.write_file(path)) {
    std::fprintf(stderr, "failed to write metrics report at: %s\n", path.c_str());
    return false;
  }
  std::printf("metrics: %s\n", path.c_str());
  return true;
}

std::vector<std::uint64_t> parse_list(const std::string& value) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos < value.size()) {
    const std::size_t comma = value.find(',', pos);
    const std::string item =
        value.substr(pos, comma == std::string::npos ? comma : comma - pos);
    out.push_back(std::stoull(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int run_matrix(const FaultSimConfig& base, std::uint64_t seeds,
               const std::vector<std::uint64_t>& densities, std::uint32_t jobs,
               bool warm_start, const WarmStart* warm) {
  MatrixOptions options;
  options.seeds = seeds;
  options.densities = densities;
  options.jobs = jobs;
  options.sweep.warm_start = warm_start;
  // Cells fan out jobs-wide but come back in cell-enumeration order, so
  // the per-cell lines (and the totals) below are byte-identical to a
  // sequential run for any --jobs value.
  const std::vector<MatrixCell> matrix = sweep_matrix(base, options, warm);
  SweepResult total;
  std::uint64_t cells = 0;
  for (const MatrixCell& cell : matrix) {
    ++cells;
    total.crashes_injected += cell.result.crashes_injected;
    total.total_victims += cell.result.total_victims;
    total.total_pages_lost += cell.result.total_pages_lost;
    total.total_parity_recovered += cell.result.total_parity_recovered;
    total.replay_mismatches += cell.result.replay_mismatches;
    for (const SweepFailure& f : cell.result.failures) total.failures.push_back(f);
    std::printf("seed=%llu points=%llu: crashes=%llu victims=%llu "
                "recovered=%llu lost=%llu failures=%zu\n",
                static_cast<unsigned long long>(cell.seed),
                static_cast<unsigned long long>(cell.points),
                static_cast<unsigned long long>(cell.result.crashes_injected),
                static_cast<unsigned long long>(cell.result.total_victims),
                static_cast<unsigned long long>(cell.result.total_parity_recovered),
                static_cast<unsigned long long>(cell.result.total_pages_lost),
                cell.result.failures.size());
    std::fflush(stdout);
  }
  std::printf("matrix: cells=%llu crashes=%llu victims=%llu recovered=%llu "
              "lost=%llu replay_mismatches=%llu failures=%zu\n",
              static_cast<unsigned long long>(cells),
              static_cast<unsigned long long>(total.crashes_injected),
              static_cast<unsigned long long>(total.total_victims),
              static_cast<unsigned long long>(total.total_parity_recovered),
              static_cast<unsigned long long>(total.total_pages_lost),
              static_cast<unsigned long long>(total.replay_mismatches),
              total.failures.size());
  return report_failures(total);
}

}  // namespace

int main(int argc, char** argv) {
  bool matrix = false;
  bool do_sweep = false;
  std::uint64_t seeds = 16;
  std::vector<std::uint64_t> densities = {8, 16, 32};
  std::uint64_t points = 16;
  std::uint32_t jobs = 1;
  std::string trace_path;
  std::string metrics_path;
  std::string snapshot_path;
  std::string from_snapshot_path;
  bool cold = false;

  // Split driver flags from reproducer flags; the rest of the line is
  // parsed by the same parser the sweep's replay check uses.
  std::string repro_line = "faultsim";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--matrix") {
        matrix = true;
      } else if (arg == "--sweep") {
        do_sweep = true;
      } else if (arg.rfind("--seeds=", 0) == 0) {
        seeds = std::stoull(arg.substr(8));
      } else if (arg.rfind("--densities=", 0) == 0) {
        densities = parse_list(arg.substr(12));
      } else if (arg.rfind("--points=", 0) == 0) {
        points = std::stoull(arg.substr(9));
      } else if (arg.rfind("--jobs=", 0) == 0) {
        jobs = static_cast<std::uint32_t>(std::stoul(arg.substr(7)));
      } else if (arg.rfind("--trace=", 0) == 0) {
        trace_path = arg.substr(8);
      } else if (arg.rfind("--metrics=", 0) == 0) {
        metrics_path = arg.substr(10);
      } else if (arg.rfind("--snapshot=", 0) == 0) {
        snapshot_path = arg.substr(11);
      } else if (arg.rfind("--from-snapshot=", 0) == 0) {
        from_snapshot_path = arg.substr(16);
      } else if (arg == "--cold") {
        cold = true;
      } else {
        repro_line += ' ';
        repro_line += arg;
      }
    } catch (...) {
      std::fprintf(stderr, "malformed flag: %s\n", arg.c_str());
      return 2;
    }
  }

  const std::optional<FaultSimConfig> config = parse_reproducer(repro_line);
  if (!config) {
    std::fprintf(stderr, "unrecognized flags in: %s\n", repro_line.c_str());
    return 2;
  }

  if (!snapshot_path.empty()) {
    // Snapshot-only mode: run the fill phase, persist the fork point.
    const WarmStart warm = make_warm_start(*config);
    if (!warm.save_file(snapshot_path)) {
      std::fprintf(stderr, "failed to write snapshot: %s\n",
                   snapshot_path.c_str());
      return 2;
    }
    std::printf("snapshot: %s ftl=%s bytes=%zu digest=%016llx\n",
                snapshot_path.c_str(), warm.ftl.ftl_name().c_str(),
                warm.ftl.bytes().size() + warm.oracle.size(),
                static_cast<unsigned long long>(warm.digest()));
    return 0;
  }

  std::optional<WarmStart> loaded;
  if (!from_snapshot_path.empty()) {
    if (cold) {
      std::fprintf(stderr, "--from-snapshot and --cold are exclusive\n");
      return 2;
    }
    loaded = WarmStart::load_file(from_snapshot_path);
    if (!loaded) {
      std::fprintf(stderr, "failed to load snapshot: %s\n",
                   from_snapshot_path.c_str());
      return 2;
    }
    std::printf("from-snapshot: %s ftl=%s digest=%016llx\n",
                from_snapshot_path.c_str(), loaded->ftl.ftl_name().c_str(),
                static_cast<unsigned long long>(loaded->digest()));
  }
  const WarmStart* warm = loaded ? &*loaded : nullptr;

  if (matrix) return run_matrix(*config, seeds, densities, jobs, !cold, warm);

  obs::TraceSink sink;
  obs::TraceSink* const sink_ptr = trace_path.empty() ? nullptr : &sink;
  const auto write_trace = [&]() {
    if (sink_ptr == nullptr) return true;
    if (!sink.write_chrome_json(trace_path)) {
      std::fprintf(stderr, "failed to write trace: %s\n", trace_path.c_str());
      return false;
    }
    std::printf("trace: %s (%zu events)\n", trace_path.c_str(), sink.size());
    return true;
  };

  if (do_sweep) {
    SweepOptions options;
    options.crash_points = points;
    options.jobs = jobs;
    options.warm_start = !cold;
    const SweepResult result = sweep(*config, options, sink_ptr, warm);
    if (!write_trace()) return 2;
    if (!metrics_path.empty()) {
      // The sweep's attribution view: its golden (no-crash) trial — the
      // same run that defines the sweep's crash boundaries, so the report
      // is deterministic and independent of --jobs or crash density.
      FaultSimConfig golden = *config;
      golden.crash_time_us = kTimeNever;
      if (!write_metrics(metrics_path, "golden", run_trial(golden, nullptr, warm))) {
        return 2;
      }
    }
    std::printf("boundaries=%llu crashes=%llu victims=%llu recovered=%llu "
                "lost=%llu replay_mismatches=%llu failures=%zu\n",
                static_cast<unsigned long long>(result.golden_boundaries),
                static_cast<unsigned long long>(result.crashes_injected),
                static_cast<unsigned long long>(result.total_victims),
                static_cast<unsigned long long>(result.total_parity_recovered),
                static_cast<unsigned long long>(result.total_pages_lost),
                static_cast<unsigned long long>(result.replay_mismatches),
                result.failures.size());
    return report_failures(result);
  }

  // Single-trial replay (runs cold unless --from-snapshot is given).
  const TrialResult trial = run_trial(*config, sink_ptr, warm);
  if (!write_trace()) return 2;
  if (!metrics_path.empty() && !write_metrics(metrics_path, "trial", trial)) {
    return 2;
  }
  std::printf("%s\n", reproducer(*config).c_str());
  print_report(trial.report);
  return (trial.report.violations > 0 || !trial.report.consistent) ? 1 : 0;
}
