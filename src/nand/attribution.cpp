#include "src/nand/attribution.hpp"

#include "src/util/serialize.hpp"

namespace rps::nand {

const char* to_string(WriteCause cause) {
  switch (cause) {
    case WriteCause::kHost: return "host";
    case WriteCause::kGcCopy: return "gc_copy";
    case WriteCause::kWearLevel: return "wear_level";
    case WriteCause::kParity: return "parity";
    case WriteCause::kBackup: return "backup";
    case WriteCause::kScrub: return "scrub";
    case WriteCause::kMeta: return "meta";
  }
  return "?";
}

AttributionCounters delta(const AttributionCounters& a, const AttributionCounters& b) {
  AttributionCounters d;
  for (std::size_t i = 0; i < kNumWriteCauses; ++i) {
    d.lsb_programs[i] = a.lsb_programs[i] - b.lsb_programs[i];
    d.msb_programs[i] = a.msb_programs[i] - b.msb_programs[i];
    d.erases[i] = a.erases[i] - b.erases[i];
  }
  for (std::size_t i = 0; i < d.stream_programs.size(); ++i) {
    d.stream_programs[i] = a.stream_programs[i] - b.stream_programs[i];
  }
  d.meta_programs = a.meta_programs - b.meta_programs;
  return d;
}

void save(ser::Writer& w, const AttributionCounters& c) {
  for (const std::uint64_t v : c.lsb_programs) w.u64(v);
  for (const std::uint64_t v : c.msb_programs) w.u64(v);
  for (const std::uint64_t v : c.erases) w.u64(v);
  for (const std::uint64_t v : c.stream_programs) w.u64(v);
  w.u64(c.meta_programs);
}

void load(ser::Reader& r, AttributionCounters& c) {
  for (std::uint64_t& v : c.lsb_programs) v = r.u64();
  for (std::uint64_t& v : c.msb_programs) v = r.u64();
  for (std::uint64_t& v : c.erases) v = r.u64();
  for (std::uint64_t& v : c.stream_programs) v = r.u64();
  c.meta_programs = r.u64();
}

void save(ser::Writer& w, const BlockWear& wear) {
  w.u64(wear.programs);
  w.u64(wear.erases);
  w.i64(wear.last_erase_us);
}

void load(ser::Reader& r, BlockWear& wear) {
  wear.programs = r.u64();
  wear.erases = r.u64();
  wear.last_erase_us = r.i64();
}

}  // namespace rps::nand
