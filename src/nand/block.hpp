// One MLC NAND block: word-line program state, stored page contents, wear.
//
// The block enforces the active program-sequence policy on every program;
// an FTL physically cannot violate the device's constraint set. Page
// contents are stored as a compact record (logical page number + a 64-bit
// payload signature + optional raw bytes) so large simulations stay small
// in memory while recovery tests can still verify real data.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/nand/address.hpp"
#include "src/nand/program_order.hpp"
#include "src/util/result.hpp"
#include "src/util/types.hpp"

namespace rps::ser {
class Writer;
class Reader;
}  // namespace rps::ser

namespace rps::nand {

/// Spare-area flag marking a page as FTL metadata (parity or paired-page
/// backup), not host data. Mapping reconstruction after a reboot skips
/// flagged pages; host pages never set it.
inline constexpr std::uint64_t kNonHostSpareFlag = 1ull << 63;

/// Low spare bits of a *host* page carry its write-stream tag (the
/// FDP-style placement hint the multi-queue frontend assigns per tenant).
/// Tag 0 is the default stream; GC copies inherit the tag with the rest
/// of the page, so stream ownership survives relocation. Metadata pages
/// (kNonHostSpareFlag) reuse these bits for their own purposes.
inline constexpr std::uint64_t kStreamSpareMask = 0xffffull;

/// The stream tag stored in a host page's spare word.
[[nodiscard]] inline constexpr std::uint32_t stream_of_spare(std::uint64_t spare) {
  return static_cast<std::uint32_t>(spare & kStreamSpareMask);
}

/// What a program operation stores into a page.
///
/// `spare` models the out-of-band area; FTLs use it for the reverse map
/// (LPN) and flexFTL's parity backup stores the fast-block number there.
/// `version` is the host-write sequence number, the tie-breaker mapping
/// reconstruction uses when several physical copies of an LPN exist.
struct PageData {
  Lpn lpn = kInvalidLpn;
  std::uint64_t signature = 0;          // stands in for the 4 KB payload
  std::uint64_t spare = 0;              // OOB metadata word
  std::uint64_t version = 0;            // host-write sequence number
  std::vector<std::uint8_t> bytes;      // optional raw payload (tests/examples)

  /// XOR combine, the primitive behind every parity-backup scheme here.
  void xor_with(const PageData& other);

  friend bool operator==(const PageData&, const PageData&) = default;
};

/// Canonical byte encoding of a stored page record (snapshots).
void save(ser::Writer& w, const PageData& d);
void load(ser::Reader& r, PageData& d);

/// Lifecycle state of a stored page.
enum class PageState : std::uint8_t {
  kErased = 0,
  kValid,         // programmed, data intact
  kCorrupted,     // programmed but destroyed (power loss) — ECC-uncorrectable
};

class Block {
 public:
  Block(std::uint32_t wordlines, SequenceKind kind);

  [[nodiscard]] std::uint32_t wordlines() const { return program_state_.wordlines(); }
  [[nodiscard]] std::uint32_t num_pages() const { return wordlines() * 2; }
  [[nodiscard]] SequenceKind sequence_kind() const { return kind_; }

  /// Legality of programming `pos` next, without performing it.
  [[nodiscard]] Status can_program(PagePos pos) const {
    if (slc_mode_) {
      if (pos.type == PageType::kMsb) return Status{ErrorCode::kSequenceViolation};
      // LSB pages only, ascending (constraint 1); no cross-type constraints.
      return check_program_legality(program_state_, pos, SequenceKind::kRps);
    }
    return check_program_legality(program_state_, pos, kind_);
  }

  /// Program a page; fails (and changes nothing) if the order is illegal.
  Status program(PagePos pos, PageData data) {
    const Status legal = can_program(pos);
    if (!legal.is_ok()) return legal;
    store_programmed(pos, std::move(data));
    return Status::ok();
  }

  /// Program a page whose legality the caller has already established via
  /// can_program() on this exact block state (the device's resolve step).
  /// Skips the redundant re-validation; asserts the physical invariant.
  void program_prechecked(PagePos pos, PageData data) {
    assert(!program_state_.is_programmed(pos));
    store_programmed(pos, std::move(data));
  }

  /// Read a page: kNotProgrammed for erased pages, kEccUncorrectable for
  /// pages destroyed by a power loss.
  [[nodiscard]] Result<PageData> read(PagePos pos) const {
    if (pos.wordline >= wordlines()) return ErrorCode::kOutOfRange;
    ++reads_since_erase_;
    const PageSlot& s = slot(pos);
    switch (s.state) {
      case PageState::kErased: return ErrorCode::kNotProgrammed;
      case PageState::kCorrupted: return ErrorCode::kEccUncorrectable;
      case PageState::kValid: return s.data;
    }
    return ErrorCode::kInvalidArgument;
  }

  /// Zero-copy read: the stored record in place, or nullptr unless the
  /// page is kValid. Counts toward reads_since_erase exactly like read()
  /// — it models the same sensing pass, so scrub thresholds see it — and
  /// the pointer is invalidated by the next program/erase/corrupt of this
  /// block. For hot paths (GC validity tests, mapping rebuild, oracle
  /// audits) that only inspect the record; read() copies the payload.
  [[nodiscard]] const PageData* peek(PagePos pos) const {
    if (pos.wordline >= wordlines()) return nullptr;
    ++reads_since_erase_;
    const PageSlot& s = slot(pos);
    return s.state == PageState::kValid ? &s.data : nullptr;
  }

  /// Raw page state (for FTL bookkeeping and tests).
  [[nodiscard]] PageState page_state(PagePos pos) const { return slot(pos).state; }
  [[nodiscard]] WordlineState wordline_state(std::uint32_t wl) const {
    return program_state_.state(wl);
  }
  [[nodiscard]] bool is_programmed(PagePos pos) const {
    return program_state_.is_programmed(pos);
  }

  /// Erase the whole block, incrementing wear. Clears SLC mode.
  void erase();

  /// Put the (erased) block into SLC mode: only its LSB pages are used, in
  /// ascending word-line order, each at LSB program speed; MSB programs are
  /// rejected. Real MLC parts expose this per-block mode, and FPS-based
  /// FTLs use it for backup blocks, where MLC ordering constraints would
  /// otherwise forbid consecutive fast writes. Returns kNotErased if the
  /// block already holds data.
  Status set_slc_mode();
  [[nodiscard]] bool slc_mode() const { return slc_mode_; }

  /// Destroy a programmed page's contents (power-loss injection). The page
  /// still counts as programmed for ordering purposes.
  void corrupt(PagePos pos);

  [[nodiscard]] std::uint64_t erase_count() const { return erase_count_; }
  /// Read operations since the last erase — the read-disturb exposure that
  /// scrubbing policies act on (every sensing pass stresses the block).
  [[nodiscard]] std::uint64_t reads_since_erase() const { return reads_since_erase_; }
  [[nodiscard]] std::uint32_t programmed_pages() const { return programmed_pages_; }
  [[nodiscard]] std::uint32_t programmed_lsb_pages() const { return programmed_lsb_; }
  [[nodiscard]] std::uint32_t programmed_msb_pages() const {
    return programmed_pages_ - programmed_lsb_;
  }
  [[nodiscard]] bool is_fully_programmed() const {
    return programmed_pages_ == num_pages();
  }
  [[nodiscard]] bool is_erased() const { return programmed_pages_ == 0; }

  /// Next legal LSB / MSB page in ascending word-line order, if any.
  /// Under RPS these are the two program frontiers flexFTL consumes.
  [[nodiscard]] std::optional<PagePos> next_lsb() const {
    // C1 forces ascending LSB order, so the frontier is the count of
    // LSB-programmed word lines.
    if (programmed_lsb_ >= wordlines()) return std::nullopt;
    return PagePos{programmed_lsb_, PageType::kLsb};
  }
  [[nodiscard]] std::optional<PagePos> next_msb() const;

  /// Snapshot support: serialize / restore the full mutable state (page
  /// slots, program state, wear, read-disturb exposure, SLC mode). The
  /// target block must have the same shape (wordlines, sequence kind).
  void save(ser::Writer& w) const;
  void load(ser::Reader& r);

 private:
  struct PageSlot {
    PageState state = PageState::kErased;
    PageData data;
  };

  [[nodiscard]] const PageSlot& slot(PagePos pos) const { return slots_[pos.flat_index()]; }
  [[nodiscard]] PageSlot& slot(PagePos pos) { return slots_[pos.flat_index()]; }

  void store_programmed(PagePos pos, PageData&& data) {
    program_state_.mark_programmed(pos);
    PageSlot& s = slot(pos);
    s.state = PageState::kValid;
    s.data = std::move(data);
    ++programmed_pages_;
    if (pos.type == PageType::kLsb) ++programmed_lsb_;
  }

  SequenceKind kind_;
  BlockProgramState program_state_;
  std::vector<PageSlot> slots_;
  std::uint64_t erase_count_ = 0;
  mutable std::uint64_t reads_since_erase_ = 0;
  std::uint32_t programmed_pages_ = 0;
  std::uint32_t programmed_lsb_ = 0;
  bool slc_mode_ = false;
};

}  // namespace rps::nand
