#include "src/nand/device.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace rps::nand {

NandDevice::NandDevice(const Geometry& geometry, const TimingSpec& timing, SequenceKind kind)
    : geometry_(geometry),
      timing_(timing),
      kind_(kind),
      channel_busy_until_(geometry.channels, 0) {
  assert(geometry.valid());
  chips_.reserve(geometry.num_chips());
  for (std::uint32_t c = 0; c < geometry.num_chips(); ++c) {
    chips_.push_back(std::make_unique<Chip>(geometry.blocks_per_chip,
                                            geometry.wordlines_per_block, kind,
                                            timing));
  }
}

void NandDevice::set_program_suspend(bool enabled) {
  for (auto& chip : chips_) chip->set_program_suspend(enabled);
}

bool NandDevice::in_range(const PageAddress& addr) const {
  return addr.chip < geometry_.num_chips() &&
         addr.block < geometry_.blocks_per_chip &&
         addr.pos.wordline < geometry_.wordlines_per_block;
}

Microseconds NandDevice::occupy_channel(std::uint32_t channel, Microseconds now) {
  Microseconds& busy = channel_busy_until_.at(channel);
  const Microseconds start = std::max(now, busy);
  busy = start + timing_.transfer_us;
  return start;
}

Status NandDevice::can_program(const PageAddress& addr) const {
  if (!in_range(addr)) return Status{ErrorCode::kOutOfRange};
  return chips_[addr.chip]->block(addr.block).can_program(addr.pos);
}

Result<OpTiming> NandDevice::program(const PageAddress& addr, PageData data, Microseconds now) {
  if (!in_range(addr)) return ErrorCode::kOutOfRange;
  // Validate first so a rejected program leaves the bus timeline untouched.
  const Status legal = chips_[addr.chip]->block(addr.block).can_program(addr.pos);
  if (!legal.is_ok()) return legal.code();

  const std::uint32_t channel = geometry_.channel_of_chip(addr.chip);
  const Microseconds bus_start = occupy_channel(channel, now);
  const Microseconds bus_end = bus_start + timing_.transfer_us;
  Result<OpTiming> cell = chips_[addr.chip]->program(addr.block, addr.pos,
                                                     std::move(data), bus_end);
  assert(cell.is_ok());
  return OpTiming{bus_start, cell.value().complete};
}

Result<NandDevice::ReadResult> NandDevice::read(const PageAddress& addr, Microseconds now) {
  if (!in_range(addr)) return ErrorCode::kOutOfRange;
  Result<Chip::ReadOutcome> sensed = chips_[addr.chip]->read(addr.block, addr.pos, now);
  if (!sensed.is_ok()) return sensed.code();
  const std::uint32_t channel = geometry_.channel_of_chip(addr.chip);
  const Microseconds bus_start =
      occupy_channel(channel, sensed.value().timing.complete);
  ReadResult result;
  result.timing = OpTiming{sensed.value().timing.start, bus_start + timing_.transfer_us};
  result.data = std::move(sensed.value().data);
  return result;
}

Result<OpTiming> NandDevice::erase(BlockAddress addr, Microseconds now) {
  if (addr.chip >= geometry_.num_chips() || addr.block >= geometry_.blocks_per_chip) {
    return ErrorCode::kOutOfRange;
  }
  return chips_[addr.chip]->erase(addr.block, now);
}

std::vector<PowerLossVictim> NandDevice::inject_power_loss(Microseconds t) {
  std::vector<PowerLossVictim> victims;
  for (std::uint32_t c = 0; c < chips_.size(); ++c) {
    if (auto hit = chips_[c]->apply_power_loss(t)) {
      victims.push_back(PowerLossVictim{c, hit->block, hit->pos});
    }
  }
  // The channel buses stop with the power: cap their timelines at the cut
  // so post-reboot work (recovery reads) starts immediately.
  for (Microseconds& busy : channel_busy_until_) busy = std::min(busy, t);
  ++power_loss_count_;
  return victims;
}

OpCounters NandDevice::total_counters() const {
  OpCounters total;
  for (const auto& chip : chips_) total += chip->counters();
  return total;
}

std::uint64_t NandDevice::total_erase_count() const {
  std::uint64_t total = 0;
  for (const auto& chip : chips_) total += chip->total_erase_count();
  return total;
}

NandDevice::WearStats NandDevice::wear_stats() const {
  WearStats stats;
  stats.min_erases = std::numeric_limits<std::uint64_t>::max();
  double sum = 0.0;
  double sum_sq = 0.0;
  std::uint64_t blocks = 0;
  for (const auto& chip : chips_) {
    for (std::uint32_t b = 0; b < chip->num_blocks(); ++b) {
      const std::uint64_t erases = chip->block(b).erase_count();
      stats.min_erases = std::min(stats.min_erases, erases);
      stats.max_erases = std::max(stats.max_erases, erases);
      sum += static_cast<double>(erases);
      sum_sq += static_cast<double>(erases) * static_cast<double>(erases);
      ++blocks;
    }
  }
  if (blocks == 0) {
    stats.min_erases = 0;
    return stats;
  }
  stats.mean_erases = sum / static_cast<double>(blocks);
  const double variance =
      sum_sq / static_cast<double>(blocks) - stats.mean_erases * stats.mean_erases;
  stats.stddev = variance > 0.0 ? std::sqrt(variance) : 0.0;
  return stats;
}

Microseconds NandDevice::all_idle_at() const {
  Microseconds latest = 0;
  for (const auto& chip : chips_) latest = std::max(latest, chip->busy_until());
  for (const Microseconds busy : channel_busy_until_) latest = std::max(latest, busy);
  return latest;
}

}  // namespace rps::nand
