#include "src/nand/device.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/util/serialize.hpp"

namespace rps::nand {

NandDevice::NandDevice(const Geometry& geometry, const TimingSpec& timing,
                       SequenceKind kind, const BadBlockConfig& bad_blocks)
    : geometry_(geometry),
      timing_(timing),
      kind_(kind),
      channel_busy_until_(geometry.channels, 0),
      bad_blocks_(bad_blocks, geometry.num_units(), geometry.blocks_per_chip) {
  assert(geometry.valid());
  chips_.reserve(geometry.num_units());
  for (std::uint32_t u = 0; u < geometry.num_units(); ++u) {
    chips_.push_back(std::make_unique<Chip>(geometry.blocks_per_chip,
                                            geometry.wordlines_per_block, kind,
                                            timing));
    chips_.back()->attach_attribution(&attribution_);
  }
}

void NandDevice::set_program_suspend(bool enabled) {
  for (auto& chip : chips_) chip->set_program_suspend(enabled);
}

std::optional<std::uint32_t> NandDevice::grow_bad(std::uint32_t unit,
                                                  std::uint32_t block,
                                                  std::uint32_t old_physical,
                                                  BadBlockCause cause,
                                                  Microseconds now) {
  const std::optional<std::uint32_t> spare = bad_blocks_.remap(unit, block, cause);
  if (bad_block_listener_) {
    bad_block_listener_(BadBlockEvent{
        unit, block, old_physical,
        spare ? static_cast<std::int64_t>(*spare) : -1, cause, now});
  }
  return spare;
}

Result<std::uint32_t> NandDevice::resolve_erase(const BlockAddress& addr,
                                                Microseconds now) {
  const std::uint32_t unit = addr.chip;
  if (bad_blocks_.enabled() && bad_blocks_.is_retired(unit, addr.block)) {
    return ErrorCode::kBlockBad;
  }
  std::uint32_t physical = bad_blocks_.translate(unit, addr.block);
  if (bad_blocks_.enabled() &&
      chips_[unit]->block(physical).erase_count() >=
          bad_blocks_.endurance_limit(unit, physical)) {
    const std::optional<std::uint32_t> spare =
        grow_bad(unit, addr.block, physical, BadBlockCause::kEraseFailure, now);
    if (!spare) return ErrorCode::kBlockBad;
    physical = *spare;
  }
  return physical;
}

Status NandDevice::can_program(const PageAddress& addr) const {
  if (!in_range(addr)) return Status{ErrorCode::kOutOfRange};
  if (bad_blocks_.enabled() && bad_blocks_.is_retired(addr.chip, addr.block)) {
    return Status{ErrorCode::kBlockBad};
  }
  const std::uint32_t physical = bad_blocks_.translate(addr.chip, addr.block);
  return chips_[addr.chip]->block(physical).can_program(addr.pos);
}

Result<OpTiming> NandDevice::erase(BlockAddress addr, Microseconds now) {
  if (addr.chip >= geometry_.num_units() ||
      addr.block >= bad_blocks_.visible_blocks()) {
    return ErrorCode::kOutOfRange;
  }
  Result<std::uint32_t> physical = resolve_erase(addr, now);
  if (!physical.is_ok()) return physical.code();
  return chips_[addr.chip]->erase(physical.value(), now);
}

Result<OpTiming> NandDevice::multi_plane_program(
    const std::vector<PageAddress>& group, std::vector<PageData> data,
    Microseconds now) {
  if (group.empty() || group.size() != data.size() ||
      group.size() > geometry_.planes_per_chip) {
    return ErrorCode::kInvalidArgument;
  }
  const std::uint32_t die = geometry_.chip_of_unit(group.front().chip);
  std::vector<std::uint32_t> physical(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    const PageAddress& addr = group[i];
    if (!in_range(addr)) return ErrorCode::kOutOfRange;
    // Plane-addressing constraint: one die, distinct planes, the same
    // block offset and page position on every plane.
    if (geometry_.chip_of_unit(addr.chip) != die ||
        addr.block != group.front().block || !(addr.pos == group.front().pos)) {
      return ErrorCode::kInvalidArgument;
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (group[j].chip == addr.chip) return ErrorCode::kInvalidArgument;
    }
    Result<std::uint32_t> resolved = resolve_program(addr, now);
    if (!resolved.is_ok()) return resolved.code();
    physical[i] = resolved.value();
  }
  // Data in: one serialized transfer per plane on the die's channel.
  const std::uint32_t channel = geometry_.channel_of_chip(die);
  Microseconds first_bus = kTimeNever;
  Microseconds last_bus_end = now;
  for (std::size_t i = 0; i < group.size(); ++i) {
    const Microseconds bus_start = occupy_channel(channel, now);
    first_bus = std::min(first_bus, bus_start);
    last_bus_end = std::max(last_bus_end, bus_start + timing_.transfer_us);
  }
  // Cells fire together once every member plane is idle: the group's
  // program windows align exactly, so wall-clock pays the latency once.
  Microseconds cell_start = last_bus_end;
  for (const PageAddress& addr : group) {
    cell_start = std::max(cell_start, chips_[addr.chip]->busy_until());
  }
  Microseconds complete = cell_start;
  for (std::size_t i = 0; i < group.size(); ++i) {
    const OpTiming cell = chips_[group[i].chip]->program_resolved(
        physical[i], group[i].pos, std::move(data[i]), cell_start);
    complete = std::max(complete, cell.complete);
  }
  return OpTiming{first_bus, complete};
}

Result<OpTiming> NandDevice::multi_plane_erase(
    const std::vector<BlockAddress>& group, Microseconds now) {
  if (group.empty() || group.size() > geometry_.planes_per_chip) {
    return ErrorCode::kInvalidArgument;
  }
  const std::uint32_t die = geometry_.chip_of_unit(group.front().chip);
  std::vector<std::uint32_t> physical(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    const BlockAddress& addr = group[i];
    if (addr.chip >= geometry_.num_units() ||
        addr.block >= bad_blocks_.visible_blocks()) {
      return ErrorCode::kOutOfRange;
    }
    if (geometry_.chip_of_unit(addr.chip) != die ||
        addr.block != group.front().block) {
      return ErrorCode::kInvalidArgument;
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (group[j].chip == addr.chip) return ErrorCode::kInvalidArgument;
    }
    Result<std::uint32_t> resolved = resolve_erase(addr, now);
    if (!resolved.is_ok()) return resolved.code();
    physical[i] = resolved.value();
  }
  Microseconds start = now;
  for (const BlockAddress& addr : group) {
    start = std::max(start, chips_[addr.chip]->busy_until());
  }
  OpTiming out{start, start};
  for (std::size_t i = 0; i < group.size(); ++i) {
    Result<OpTiming> erased = chips_[group[i].chip]->erase(physical[i], start);
    assert(erased.is_ok());
    out.complete = std::max(out.complete, erased.value().complete);
  }
  return out;
}

std::vector<PowerLossVictim> NandDevice::inject_power_loss(Microseconds t) {
  std::vector<PowerLossVictim> victims;
  for (std::uint32_t c = 0; c < chips_.size(); ++c) {
    if (auto hit = chips_[c]->apply_power_loss(t)) {
      // Victims are reported under their FTL-visible address: an in-flight
      // program always targets a reachable physical block, so the reverse
      // translation is total here.
      const std::optional<std::uint32_t> visible =
          bad_blocks_.reverse(c, hit->block);
      assert(visible.has_value());
      victims.push_back(PowerLossVictim{c, visible.value_or(hit->block), hit->pos});
    }
  }
  // The channel buses stop with the power: cap their timelines at the cut
  // so post-reboot work (recovery reads) starts immediately.
  for (Microseconds& busy : channel_busy_until_) busy = std::min(busy, t);
  ++power_loss_count_;
  return victims;
}

OpCounters NandDevice::total_counters() const {
  OpCounters total;
  for (const auto& chip : chips_) total += chip->counters();
  return total;
}

std::uint64_t NandDevice::total_erase_count() const {
  std::uint64_t total = 0;
  for (const auto& chip : chips_) total += chip->total_erase_count();
  return total;
}

NandDevice::WearStats NandDevice::wear_stats() const {
  WearStats stats;
  stats.min_erases = std::numeric_limits<std::uint64_t>::max();
  double sum = 0.0;
  double sum_sq = 0.0;
  std::uint64_t blocks = 0;
  for (const auto& chip : chips_) {
    for (std::uint32_t b = 0; b < chip->num_blocks(); ++b) {
      const std::uint64_t erases = chip->block(b).erase_count();
      stats.min_erases = std::min(stats.min_erases, erases);
      stats.max_erases = std::max(stats.max_erases, erases);
      sum += static_cast<double>(erases);
      sum_sq += static_cast<double>(erases) * static_cast<double>(erases);
      ++blocks;
    }
  }
  if (blocks == 0) {
    stats.min_erases = 0;
    return stats;
  }
  stats.mean_erases = sum / static_cast<double>(blocks);
  const double variance =
      sum_sq / static_cast<double>(blocks) - stats.mean_erases * stats.mean_erases;
  stats.stddev = variance > 0.0 ? std::sqrt(variance) : 0.0;
  return stats;
}

Microseconds NandDevice::all_idle_at() const {
  Microseconds latest = 0;
  for (const auto& chip : chips_) latest = std::max(latest, chip->busy_until());
  for (const Microseconds busy : channel_busy_until_) latest = std::max(latest, busy);
  return latest;
}

void NandDevice::save(ser::Writer& w) const {
  w.u64(chips_.size());
  for (const auto& chip : chips_) chip->save(w);
  w.u64(channel_busy_until_.size());
  for (const Microseconds busy : channel_busy_until_) w.i64(busy);
  bad_blocks_.save(w);
  w.boolean(cache_program_);
  w.u64(power_loss_count_);
  rps::nand::save(w, attribution_.counters);
}

void NandDevice::load(ser::Reader& r) {
  if (r.u64() != chips_.size()) {
    r.fail();
    return;
  }
  for (const auto& chip : chips_) chip->load(r);
  if (r.u64() != channel_busy_until_.size()) {
    r.fail();
    return;
  }
  for (Microseconds& busy : channel_busy_until_) busy = r.i64();
  bad_blocks_.load(r);
  cache_program_ = r.boolean();
  power_loss_count_ = r.u64();
  rps::nand::load(r, attribution_.counters);
}

}  // namespace rps::nand
