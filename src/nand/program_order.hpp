// The paper's program-order constraint engine (Section 2).
//
// The fixed program sequence (FPS) of 2-bit MLC NAND is formalized as four
// constraints over word lines k and page types:
//
//   C1: before LSB(k), LSB(k-1) must be written          (k >= 1)
//   C2: before MSB(k), MSB(k-1) must be written          (k >= 1)
//   C3: before MSB(k), LSB(k+1) must be written          (k+1 < wordlines)
//   C4: before LSB(k), MSB(k-2) must be written          (k >= 2)
//
// The paper's contribution at the device level is that C4 is an
// over-specification: a sequence satisfying only C1-C3 (a *relaxed* program
// sequence, RPS) accumulates no more cell-to-cell interference than FPS.
// This module provides:
//   - per-program legality checking against a block's word-line state,
//   - canonical whole-block order generators (FPS, RPSfull, RPShalf,
//     random RPS, unconstrained random),
//   - order analysis (aggressor counting) used by the reliability study.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/nand/address.hpp"
#include "src/util/random.hpp"
#include "src/util/result.hpp"

namespace rps::nand {

/// Which constraint set a device enforces.
enum class SequenceKind : std::uint8_t {
  kFps,            // constraints 1-4 (conventional devices)
  kRps,            // constraints 1-3 (the paper's relaxed sequence)
  kUnconstrained,  // physical constraints only (reliability study strawman)
};

constexpr const char* to_string(SequenceKind kind) {
  switch (kind) {
    case SequenceKind::kFps: return "FPS";
    case SequenceKind::kRps: return "RPS";
    case SequenceKind::kUnconstrained: return "Unconstrained";
  }
  return "?";
}

/// Program state of one word line. MSB-only is physically impossible: the
/// MSB program refines the LSB-programmed Vth states.
enum class WordlineState : std::uint8_t {
  kErased = 0,
  kLsbProgrammed = 1,
  kFullyProgrammed = 2,
};

/// Word-line program state of a whole block, independent of data storage.
/// Kept as a separate value type so order generators and the reliability
/// simulator can explore sequences without instantiating device blocks.
class BlockProgramState {
 public:
  explicit BlockProgramState(std::uint32_t wordlines) : states_(wordlines, WordlineState::kErased) {}

  [[nodiscard]] std::uint32_t wordlines() const { return static_cast<std::uint32_t>(states_.size()); }
  [[nodiscard]] WordlineState state(std::uint32_t wl) const {
    assert(wl < states_.size());
    return states_[wl];
  }

  [[nodiscard]] bool is_programmed(PagePos pos) const {
    assert(pos.wordline < states_.size());
    const WordlineState s = states_[pos.wordline];
    return pos.type == PageType::kLsb ? s != WordlineState::kErased
                                      : s == WordlineState::kFullyProgrammed;
  }

  /// Records a program without legality checking (callers check first).
  void mark_programmed(PagePos pos) {
    assert(pos.wordline < states_.size());
    WordlineState& s = states_[pos.wordline];
    if (pos.type == PageType::kLsb) {
      assert(s == WordlineState::kErased);
      s = WordlineState::kLsbProgrammed;
    } else {
      assert(s == WordlineState::kLsbProgrammed);
      s = WordlineState::kFullyProgrammed;
    }
  }

  void reset() { std::fill(states_.begin(), states_.end(), WordlineState::kErased); }

 private:
  std::vector<WordlineState> states_;
};

/// Validates one page program against `kind`'s constraint set.
///
/// Returns kOk, kAlreadyProgrammed, kNotErased (MSB before paired LSB,
/// physically impossible), kOutOfRange, or kSequenceViolation.
///
/// Inline: this is the per-program legality gate on the simulator hot path
/// (multiple invocations per page program before deduplication).
inline Status check_program_legality(const BlockProgramState& block, PagePos pos,
                                     SequenceKind kind) {
  const std::uint32_t n = block.wordlines();
  if (pos.wordline >= n) return Status{ErrorCode::kOutOfRange};
  const std::uint32_t k = pos.wordline;

  // Physical constraints first: no reprogram, and the MSB program refines
  // LSB-programmed cells so the paired LSB must exist.
  if (block.is_programmed(pos)) return Status{ErrorCode::kAlreadyProgrammed};
  if (pos.type == PageType::kMsb &&
      block.state(k) != WordlineState::kLsbProgrammed) {
    return Status{ErrorCode::kNotErased};
  }

  if (kind == SequenceKind::kUnconstrained) return Status::ok();

  if (pos.type == PageType::kLsb) {
    // C1: LSB pages are written in ascending word-line order.
    if (k >= 1 && !block.is_programmed({k - 1, PageType::kLsb})) {
      return Status{ErrorCode::kSequenceViolation};
    }
    // C4 (FPS only): before LSB(k), MSB(k-2) must be written.
    if (kind == SequenceKind::kFps && k >= 2 &&
        !block.is_programmed({k - 2, PageType::kMsb})) {
      return Status{ErrorCode::kSequenceViolation};
    }
  } else {
    // C2: MSB pages are written in ascending word-line order.
    if (k >= 1 && !block.is_programmed({k - 1, PageType::kMsb})) {
      return Status{ErrorCode::kSequenceViolation};
    }
    // C3: before MSB(k), LSB(k+1) must be written (when WL(k+1) exists).
    if (k + 1 < n && !block.is_programmed({k + 1, PageType::kLsb})) {
      return Status{ErrorCode::kSequenceViolation};
    }
  }
  return Status::ok();
}

/// All pages currently legal to program under `kind`. At most a handful for
/// FPS; potentially one LSB and one MSB frontier page for RPS.
std::vector<PagePos> legal_programs(const BlockProgramState& block, SequenceKind kind);

/// A whole-block program order: a permutation of all 2*wordlines pages.
using ProgramOrder = std::vector<PagePos>;

/// The representative FPS order of Fig. 2(b): LSB(0), LSB(1), MSB(0),
/// LSB(2), MSB(1), ..., LSB(n-1), MSB(n-2), MSB(n-1).
ProgramOrder fps_order(std::uint32_t wordlines);

/// RPSfull (Fig. 3a): all LSB pages in word-line order, then all MSB pages.
/// This is the 2PO order flexFTL uses.
ProgramOrder rps_full_order(std::uint32_t wordlines);

/// RPShalf (Fig. 3b): the first half of the LSB pages are written up front;
/// the remainder interleaves MSB programs with the remaining LSB pages.
ProgramOrder rps_half_order(std::uint32_t wordlines);

/// A uniformly random order that satisfies the RPS constraints: at each
/// step, pick uniformly among the currently legal pages.
ProgramOrder random_rps_order(std::uint32_t wordlines, Rng& rng);

/// A random order with only the physical LSB-before-paired-MSB constraint.
/// Used as the reliability study's worst case (Fig. 2a scenario).
ProgramOrder random_unconstrained_order(std::uint32_t wordlines, Rng& rng);

/// True iff `order` is a permutation of all pages and every step is legal
/// under `kind`.
bool order_satisfies(const ProgramOrder& order, std::uint32_t wordlines, SequenceKind kind);

/// Interference exposure of each word line under a given program order.
///
/// The paper's metric (Section 2.1): the cell-to-cell interference seen by
/// WL(k)'s final data is proportional to the number of *aggressor*
/// programs — programs to WL(k-1) or WL(k+1) performed after MSB(k).
/// FPS and every RPS order expose each word line to at most one aggressor;
/// unconstrained orders expose up to four.
struct WordlineExposure {
  std::uint32_t aggressors_after_msb = 0;  // disturbs the final 2-bit state
  std::uint32_t aggressors_on_lsb = 0;     // neighbor programs between LSB(k) and MSB(k)
};

std::vector<WordlineExposure> analyze_exposure(const ProgramOrder& order, std::uint32_t wordlines);

}  // namespace rps::nand
