// The full multi-channel NAND storage device.
//
// Chips attached to the same channel share the channel bus: moving a page
// between controller and chip occupies the bus for TimingSpec::transfer_us,
// while cell operations occupy only the chip. This captures the
// inter-channel parallelism the paper's parityFTL baseline exploits and
// bounds the aggregate peak bandwidth realistically.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/nand/address.hpp"
#include "src/nand/chip.hpp"
#include "src/nand/geometry.hpp"
#include "src/nand/timing.hpp"
#include "src/util/result.hpp"

namespace rps::nand {

/// What a power loss interrupted, per chip.
struct PowerLossVictim {
  std::uint32_t chip = 0;
  std::uint32_t block = 0;
  PagePos pos;
};

class NandDevice {
 public:
  NandDevice(const Geometry& geometry, const TimingSpec& timing, SequenceKind kind);

  [[nodiscard]] const Geometry& geometry() const { return geometry_; }
  [[nodiscard]] const TimingSpec& timing() const { return timing_; }
  [[nodiscard]] SequenceKind sequence_kind() const { return kind_; }

  [[nodiscard]] const Chip& chip(std::uint32_t c) const { return *chips_.at(c); }
  [[nodiscard]] Chip& chip(std::uint32_t c) { return *chips_.at(c); }

  /// Enable program suspension on every chip (see Chip::set_program_suspend).
  void set_program_suspend(bool enabled);

  [[nodiscard]] const Block& block(BlockAddress addr) const {
    return chips_.at(addr.chip)->block(addr.block);
  }

  /// Legality of programming `addr` next (no side effects).
  [[nodiscard]] Status can_program(const PageAddress& addr) const;

  /// Program: bus-in transfer, then cell program. `complete` is when the
  /// chip finishes; the caller's view of service time is complete - now.
  Result<OpTiming> program(const PageAddress& addr, PageData data, Microseconds now);

  /// Read: cell sensing, then bus-out transfer.
  struct ReadResult {
    OpTiming timing;             // start of sensing .. end of bus transfer
    Result<PageData> data = ErrorCode::kNotProgrammed;
  };
  Result<ReadResult> read(const PageAddress& addr, Microseconds now);

  Result<OpTiming> erase(BlockAddress addr, Microseconds now);

  /// Inject a power loss at time `t`. Every chip whose last program had not
  /// completed by `t` (in flight, or charged to start after the cut) has
  /// that program's page corrupted; an interrupted MSB program also
  /// destroys its paired LSB page. Chip and channel timelines are capped at
  /// `t` — the device stops dead and is immediately available at reboot.
  /// Returns all interrupted programs.
  std::vector<PowerLossVictim> inject_power_loss(Microseconds t);

  /// Number of power losses injected over the device's lifetime.
  [[nodiscard]] std::uint64_t power_loss_count() const { return power_loss_count_; }

  /// Aggregate counters across chips.
  [[nodiscard]] OpCounters total_counters() const;
  [[nodiscard]] std::uint64_t total_erase_count() const;

  /// Wear summary across all blocks — lifetime evenness at a glance.
  struct WearStats {
    std::uint64_t min_erases = 0;
    std::uint64_t max_erases = 0;
    double mean_erases = 0.0;
    double stddev = 0.0;
  };
  [[nodiscard]] WearStats wear_stats() const;

  /// The earliest time every chip and channel is free.
  [[nodiscard]] Microseconds all_idle_at() const;

 private:
  [[nodiscard]] bool in_range(const PageAddress& addr) const;

  Microseconds occupy_channel(std::uint32_t channel, Microseconds now);

  Geometry geometry_;
  TimingSpec timing_;
  SequenceKind kind_;
  std::vector<std::unique_ptr<Chip>> chips_;
  std::vector<Microseconds> channel_busy_until_;
  std::uint64_t power_loss_count_ = 0;
};

}  // namespace rps::nand
