// The full multi-channel NAND storage device.
//
// Chips attached to the same channel share the channel bus: moving a page
// between controller and chip occupies the bus for TimingSpec::transfer_us,
// while cell operations occupy only the chip. This captures the
// inter-channel parallelism the paper's parityFTL baseline exploits and
// bounds the aggregate peak bandwidth realistically.
//
// Planes. The device instantiates one Chip object per *unit* — a (die,
// plane) pair, Geometry::num_units() of them — so every plane has its own
// cell timeline while all planes of a die share the die's channel. The
// die-level couplings live here: multi_plane_program / multi_plane_erase
// fire the same block offset on several planes of one die inside a single
// aligned cell-busy window, and cache-program pipelining (on by default,
// matching the original model) lets a data transfer overlap the previous
// cell operation.
//
// Bad blocks. A BadBlockTable translates every FTL-visible block address
// to its backing physical block. Factory defects are remapped at init;
// grown defects (erase endurance, program failures) are remapped in
// service while spares last and surface as ErrorCode::kBlockBad once the
// pool is dry. With the default (empty) config every translation is the
// identity and nothing fails — bit-identical to a device without a table.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/nand/address.hpp"
#include "src/nand/bad_block.hpp"
#include "src/nand/chip.hpp"
#include "src/nand/geometry.hpp"
#include "src/nand/timing.hpp"
#include "src/util/result.hpp"

namespace rps::ser {
class Writer;
class Reader;
}  // namespace rps::ser

namespace rps::nand {

/// What a power loss interrupted, per unit. Block numbers are FTL-visible
/// (reverse-translated through the bad-block table).
struct PowerLossVictim {
  std::uint32_t chip = 0;  // flat unit index
  std::uint32_t block = 0;
  PagePos pos;
};

/// One bad-block lifecycle step: `visible_block` of `unit` went bad at
/// `old_physical` and was either remapped to `new_physical` or retired
/// (new_physical < 0).
struct BadBlockEvent {
  std::uint32_t unit = 0;
  std::uint32_t visible_block = 0;
  std::uint32_t old_physical = 0;
  std::int64_t new_physical = -1;
  BadBlockCause cause = BadBlockCause::kEraseFailure;
  Microseconds now = 0;  // simulated time the failure surfaced
};

class NandDevice {
 public:
  NandDevice(const Geometry& geometry, const TimingSpec& timing, SequenceKind kind,
             const BadBlockConfig& bad_blocks = {});

  [[nodiscard]] const Geometry& geometry() const { return geometry_; }
  [[nodiscard]] const TimingSpec& timing() const { return timing_; }
  [[nodiscard]] SequenceKind sequence_kind() const { return kind_; }

  /// Per-unit access ("chip" for historical reasons: with one plane per
  /// die a unit is exactly a chip). Timelines and counters are per unit.
  [[nodiscard]] const Chip& chip(std::uint32_t c) const { return *chips_.at(c); }
  [[nodiscard]] Chip& chip(std::uint32_t c) { return *chips_.at(c); }
  [[nodiscard]] std::uint32_t num_units() const {
    return static_cast<std::uint32_t>(chips_.size());
  }

  /// Enable program suspension on every chip (see Chip::set_program_suspend).
  void set_program_suspend(bool enabled);

  /// Cache-program pipelining: when on (the default, matching the original
  /// model) a program's data transfer only waits for the channel bus, so
  /// it overlaps the unit's previous cell operation. When off the transfer
  /// additionally waits for the unit itself to go idle.
  void set_cache_program(bool enabled) { cache_program_ = enabled; }
  [[nodiscard]] bool cache_program() const { return cache_program_; }

  /// Bad-block state (counters, spare levels) and the FTL-visible block
  /// count per unit (blocks_per_chip minus the spare reservation).
  [[nodiscard]] const BadBlockTable& bad_blocks() const { return bad_blocks_; }
  [[nodiscard]] std::uint32_t visible_blocks() const {
    return bad_blocks_.visible_blocks();
  }

  /// Observe grown-bad remaps and retirements as they happen (factory
  /// marks predate any listener; read them off bad_blocks().counters()).
  using BadBlockListener = std::function<void(const BadBlockEvent&)>;
  void set_bad_block_listener(BadBlockListener listener) {
    bad_block_listener_ = std::move(listener);
  }

  /// Media access through the bad-block translation: `addr.block` is the
  /// FTL-visible address; the returned Block is its physical backing.
  [[nodiscard]] const Block& block(BlockAddress addr) const {
    return chips_.at(addr.chip)->block(bad_blocks_.translate(addr.chip, addr.block));
  }
  [[nodiscard]] Block& block_mut(BlockAddress addr) {
    return chips_.at(addr.chip)->block(bad_blocks_.translate(addr.chip, addr.block));
  }

  /// Legality of programming `addr` next (no side effects).
  [[nodiscard]] Status can_program(const PageAddress& addr) const;

  /// Program: bus-in transfer, then cell program. `complete` is when the
  /// chip finishes; the caller's view of service time is complete - now.
  /// May transparently remap the block (first-page program failure with a
  /// spare available); returns kBlockBad only for retired blocks.
  Result<OpTiming> program(const PageAddress& addr, PageData data, Microseconds now) {
    if (!in_range(addr)) return ErrorCode::kOutOfRange;
    // Validate first so a rejected program leaves the bus timeline untouched.
    Result<std::uint32_t> physical = resolve_program(addr, now);
    if (!physical.is_ok()) return physical.code();
    const std::uint32_t channel = geometry_.channel_of_unit(addr.chip);
    // Cache-program off: the transfer also waits for the unit's cell array
    // to go idle (no on-chip page cache to land the data in early).
    const Microseconds ready =
        cache_program_ ? now : std::max(now, chips_[addr.chip]->busy_until());
    const Microseconds bus_start = occupy_channel(channel, ready);
    const Microseconds bus_end = bus_start + timing_.transfer_us;
    // resolve_program() just validated legality against this block state.
    const OpTiming cell = chips_[addr.chip]->program_resolved(
        physical.value(), addr.pos, std::move(data), bus_end);
    return OpTiming{bus_start, cell.complete};
  }

  /// Read: cell sensing, then bus-out transfer.
  struct ReadResult {
    OpTiming timing;             // start of sensing .. end of bus transfer
    Result<PageData> data = ErrorCode::kNotProgrammed;
  };
  Result<ReadResult> read(const PageAddress& addr, Microseconds now) {
    if (!in_range(addr)) return ErrorCode::kOutOfRange;
    const std::uint32_t physical = bad_blocks_.translate(addr.chip, addr.block);
    Result<Chip::ReadOutcome> sensed = chips_[addr.chip]->read(physical, addr.pos, now);
    if (!sensed.is_ok()) return sensed.code();
    const std::uint32_t channel = geometry_.channel_of_unit(addr.chip);
    const Microseconds bus_start =
        occupy_channel(channel, sensed.value().timing.complete);
    ReadResult result;
    result.timing = OpTiming{sensed.value().timing.start, bus_start + timing_.transfer_us};
    result.data = std::move(sensed.value().data);
    return result;
  }

  /// Erase. A block at its endurance limit fails: it is remapped to a
  /// spare (and the erase retried there) while the pool lasts, else the
  /// call returns kBlockBad and the visible block is retired.
  Result<OpTiming> erase(BlockAddress addr, Microseconds now);

  /// Multi-plane program: one page on each of several planes of the SAME
  /// die, same block offset and page position on every plane (the
  /// plane-addressing constraint of real multi-plane commands). Data
  /// transfers serialize on the die's channel; the cell programs then
  /// fire together in one aligned busy window, so the group pays the cell
  /// latency once in wall-clock time. Validates every member before any
  /// side effect; per-unit counters still count every page.
  Result<OpTiming> multi_plane_program(const std::vector<PageAddress>& group,
                                       std::vector<PageData> data, Microseconds now);

  /// Multi-plane erase: same-die, same block offset, distinct planes,
  /// one aligned erase window. Endurance failures remap-and-retry like
  /// erase(); an unremappable member fails the whole group (no member
  /// timeline is touched) so the caller can fall back to single erases.
  Result<OpTiming> multi_plane_erase(const std::vector<BlockAddress>& group,
                                     Microseconds now);

  /// Inject a power loss at time `t`. Every chip whose last program had not
  /// completed by `t` (in flight, or charged to start after the cut) has
  /// that program's page corrupted; an interrupted MSB program also
  /// destroys its paired LSB page. Chip and channel timelines are capped at
  /// `t` — the device stops dead and is immediately available at reboot.
  /// Returns all interrupted programs (a cut through a multi-plane group
  /// yields one victim per member unit).
  std::vector<PowerLossVictim> inject_power_loss(Microseconds t);

  /// Number of power losses injected over the device's lifetime.
  [[nodiscard]] std::uint64_t power_loss_count() const { return power_loss_count_; }

  /// Aggregate counters across chips.
  [[nodiscard]] OpCounters total_counters() const;
  [[nodiscard]] std::uint64_t total_erase_count() const;

  /// Cause-tagged attribution: the FTL layer brackets its write paths with
  /// CauseScope so every program/erase is charged to the right bucket.
  /// Always on (one enum store per bracket); conservation against
  /// total_counters() is a device invariant.
  WriteCause set_write_cause(WriteCause cause) {
    const WriteCause previous = attribution_.cause;
    attribution_.cause = cause;
    return previous;
  }
  [[nodiscard]] WriteCause write_cause() const { return attribution_.cause; }
  [[nodiscard]] const AttributionCounters& attribution() const {
    return attribution_.counters;
  }

  /// Wear summary across all blocks — lifetime evenness at a glance.
  struct WearStats {
    std::uint64_t min_erases = 0;
    std::uint64_t max_erases = 0;
    double mean_erases = 0.0;
    double stddev = 0.0;
  };
  [[nodiscard]] WearStats wear_stats() const;

  /// The earliest time every chip and channel is free.
  [[nodiscard]] Microseconds all_idle_at() const;

  /// Snapshot support: chips, channel timelines, bad-block table, power
  /// loss count. Geometry/timing/kind are construction-time config — the
  /// restore target must be built from the same config (validated upstream
  /// by the snapshot header). The bad-block listener is borrowed and not
  /// serialized.
  void save(ser::Writer& w) const;
  void load(ser::Reader& r);

 private:
  [[nodiscard]] bool in_range(const PageAddress& addr) const {
    return addr.chip < geometry_.num_units() &&
           addr.block < bad_blocks_.visible_blocks() &&
           addr.pos.wordline < geometry_.wordlines_per_block;
  }

  Microseconds occupy_channel(std::uint32_t channel, Microseconds now) {
    assert(channel < channel_busy_until_.size());
    Microseconds& busy = channel_busy_until_[channel];
    const Microseconds start = std::max(now, busy);
    busy = start + timing_.transfer_us;
    return start;
  }

  /// Resolve `addr` for programming: retired check, translation, legality,
  /// and the first-page program-failure draw (remap + re-resolve when a
  /// spare is available, silently suppressed otherwise — a failure that
  /// cannot be remapped loss-free is not injected).
  Result<std::uint32_t> resolve_program(const PageAddress& addr, Microseconds now) {
    const std::uint32_t unit = addr.chip;
    if (bad_blocks_.enabled() && bad_blocks_.is_retired(unit, addr.block)) {
      return ErrorCode::kBlockBad;
    }
    std::uint32_t physical = bad_blocks_.translate(unit, addr.block);
    const Status legal = chips_[unit]->block(physical).can_program(addr.pos);
    if (!legal.is_ok()) return legal.code();
    // Program-failure injection, restricted to the first page of a fresh
    // block and to units with a spare left: remapping there is loss-free
    // (no earlier page of the block holds data, and the spare is blank).
    if (bad_blocks_.enabled() && addr.pos.flat_index() == 0 &&
        bad_blocks_.has_spare(unit) &&
        bad_blocks_.draw_program_failure(unit, physical,
                                         chips_[unit]->block(physical).erase_count())) {
      const std::optional<std::uint32_t> spare =
          grow_bad(unit, addr.block, physical, BadBlockCause::kProgramFailure, now);
      assert(spare.has_value());  // has_spare() held above
      physical = *spare;
      const Status retry = chips_[unit]->block(physical).can_program(addr.pos);
      if (!retry.is_ok()) return retry.code();
    }
    return physical;
  }

  /// Resolve `addr` for erasing: retired check, translation, endurance
  /// limit (remap while spares last; retire + kBlockBad when dry).
  Result<std::uint32_t> resolve_erase(const BlockAddress& addr, Microseconds now);

  /// Mark visible `block` of `unit` grown-bad; remap or retire. Fires the
  /// listener. Returns the fresh physical block, nullopt when retired.
  std::optional<std::uint32_t> grow_bad(std::uint32_t unit, std::uint32_t block,
                                        std::uint32_t old_physical,
                                        BadBlockCause cause, Microseconds now);

  Geometry geometry_;
  TimingSpec timing_;
  SequenceKind kind_;
  std::vector<std::unique_ptr<Chip>> chips_;  // one per unit
  std::vector<Microseconds> channel_busy_until_;
  BadBlockTable bad_blocks_;
  BadBlockListener bad_block_listener_;
  DeviceAttribution attribution_;  // chips hold borrowed pointers into this
  bool cache_program_ = true;
  std::uint64_t power_loss_count_ = 0;
};

}  // namespace rps::nand
