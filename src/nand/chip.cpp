#include "src/nand/chip.hpp"

#include <cassert>

#include "src/util/serialize.hpp"

namespace rps::nand {

Chip::Chip(std::uint32_t blocks, std::uint32_t wordlines, SequenceKind kind,
           const TimingSpec& timing)
    : timing_(timing) {
  blocks_.reserve(blocks);
  for (std::uint32_t b = 0; b < blocks; ++b) blocks_.emplace_back(wordlines, kind);
  wear_.resize(blocks);  // preallocated up front: the ledger never grows
}

void Chip::settle_erases_slow(Microseconds now) {
  // An erase that started by the present can never be voided (a power
  // loss is always injected at or after the current wall clock), so its
  // cell reset is safe to apply. One charged to start in the future must
  // stay pending: a cut landing before its start voids it. Compact
  // in-place — this runs on the program/read hot path and must not
  // allocate.
  std::size_t kept = 0;
  for (PendingErase& pending : pending_erases_) {
    if (pending.start <= now) {
      blocks_[pending.block].erase();
    } else {
      pending_erases_[kept++] = pending;
    }
  }
  pending_erases_.resize(kept);
}

void Chip::materialize_erase_slow(std::uint32_t b) const {
  // Logically const: ops serialize on the chip timeline, so an op touching
  // block `b` is charged after any pending erase of `b` completed.
  Chip& self = const_cast<Chip&>(*this);
  std::size_t kept = 0;
  for (PendingErase& pending : self.pending_erases_) {
    if (pending.block == b) {
      self.blocks_[b].erase();
    } else {
      self.pending_erases_[kept++] = pending;
    }
  }
  self.pending_erases_.resize(kept);
}

Result<OpTiming> Chip::program(std::uint32_t b, PagePos pos, PageData data, Microseconds now) {
  if (b >= blocks_.size()) return ErrorCode::kOutOfRange;
  settle_erases(now);
  materialize_erase(b);
  // Validate before touching the timeline so a rejected program is free.
  const Status legal = blocks_[b].can_program(pos);
  if (!legal.is_ok()) return legal.code();
  return commit_program(b, pos, std::move(data), now);
}

Result<OpTiming> Chip::erase(std::uint32_t b, Microseconds now) {
  if (b >= blocks_.size()) return ErrorCode::kOutOfRange;
  settle_erases(now);
  materialize_erase(b);
  const Microseconds start = occupy(now, timing_.erase_us);
  // Lazy destruction (see header): charge the timeline (and the counter)
  // now, reset the cells only once the erase provably started — so a
  // power cut landing before `start` voids it and the data survives.
  ++counters_.erases;
  const WriteCause cause = attr_ != nullptr ? attr_->cause : WriteCause::kHost;
  if (attr_ != nullptr) attr_->note_erase();
  // Ledger charge mirrors the counter; the pending record keeps what a
  // voiding power loss must restore (cause bucket, previous last-erase).
  pending_erases_.push_back({b, start, cause, wear_[b].last_erase_us});
  ++wear_[b].erases;
  wear_[b].last_erase_us = start;
  return OpTiming{start, busy_until_};
}

std::uint64_t Chip::total_erase_count() const {
  // Pending erases are committed on the timeline; count them without
  // forcing their (still voidable) cell resets.
  std::uint64_t total = pending_erases_.size();
  for (const Block& b : blocks_) total += b.erase_count();
  return total;
}

std::optional<Chip::InFlightProgram> Chip::program_in_flight_at(Microseconds t) const {
  if (last_program_ && last_program_->start <= t && t < last_program_->complete) {
    return last_program_;
  }
  return std::nullopt;
}

std::optional<Chip::InFlightProgram> Chip::apply_power_loss(Microseconds t) {
  // Settle charged erases against the cut. One that started by `t` really
  // destroyed the block (an interrupted erase leaves garbage, and every
  // valid page was relocated — durably, by per-chip serialization —
  // before the erase was issued). One charged to start after `t` never
  // began: void it, so the block's data survives the cut — it may hold
  // the only copy of a page whose relocation was interrupted.
  {
    std::vector<PendingErase> pending;
    pending.swap(pending_erases_);
    for (const PendingErase& erase : pending) {
      if (erase.start <= t) {
        blocks_[erase.block].erase();
      } else {
        // Charged at issue; the erase never happened. Roll back the
        // counter, the attribution bucket it was charged under (the FTL's
        // cause scope may have moved on since), and the ledger — at most
        // one pending erase per block exists, so the saved previous
        // last-erase time is exact.
        --counters_.erases;
        if (attr_ != nullptr) attr_->void_erase(erase.cause);
        --wear_[erase.block].erases;
        wear_[erase.block].last_erase_us = erase.prev_last_erase;
      }
    }
  }
  // Power is gone: the chip stops dead at t. The timeline cannot extend
  // past the cut — whatever was charged beyond it never executed.
  busy_until_ = std::min(busy_until_, t);
  if (!last_program_ || last_program_->complete <= t) {
    last_program_.reset();
    return std::nullopt;
  }
  // Any program not complete by t is destroyed: the one mid-flight, or one
  // charged to start after t inside a synchronous GC/backup sequence (its
  // cells were never touched, but the model wrote eagerly — report it as a
  // victim so the FTL can roll the phantom write back).
  const InFlightProgram in_flight = *last_program_;
  last_program_.reset();
  Block& block = blocks_[in_flight.block];
  // The interrupted program itself never completed.
  block.corrupt(in_flight.pos);
  if (in_flight.pos.type == PageType::kMsb) {
    // Destructive MSB programming: the paired LSB page's Vth states were
    // mid-rearrangement, so its previously valid data is lost (Section 1).
    block.corrupt({in_flight.pos.wordline, PageType::kLsb});
  }
  return in_flight;
}

void Chip::save(ser::Writer& w) const {
  // Serialize blocks_ directly, NOT through block(): the accessor
  // materializes pending erases, and the lazy/settled distinction is
  // observable (a power loss before a pending erase's start voids it).
  w.u64(blocks_.size());
  for (const Block& b : blocks_) b.save(w);
  w.i64(busy_until_);
  w.i64(busy_total_);
  w.u64(counters_.reads);
  w.u64(counters_.lsb_programs);
  w.u64(counters_.msb_programs);
  w.u64(counters_.erases);
  w.boolean(last_program_.has_value());
  if (last_program_) {
    w.u32(last_program_->block);
    w.u32(last_program_->pos.wordline);
    w.u8(static_cast<std::uint8_t>(last_program_->pos.type));
    w.i64(last_program_->start);
    w.i64(last_program_->complete);
    w.u32(last_program_->suspends);
  }
  w.u64(pending_erases_.size());
  for (const PendingErase& pe : pending_erases_) {
    w.u32(pe.block);
    w.i64(pe.start);
    w.u8(static_cast<std::uint8_t>(pe.cause));
    w.i64(pe.prev_last_erase);
  }
  w.boolean(program_suspend_);
  for (const BlockWear& wear : wear_) rps::nand::save(w, wear);
}

void Chip::load(ser::Reader& r) {
  if (r.u64() != blocks_.size()) {
    r.fail();
    return;
  }
  for (Block& b : blocks_) b.load(r);
  busy_until_ = r.i64();
  busy_total_ = r.i64();
  counters_.reads = r.u64();
  counters_.lsb_programs = r.u64();
  counters_.msb_programs = r.u64();
  counters_.erases = r.u64();
  last_program_.reset();
  if (r.boolean()) {
    InFlightProgram p;
    p.block = r.u32();
    p.pos.wordline = r.u32();
    p.pos.type = static_cast<PageType>(r.u8());
    p.start = r.i64();
    p.complete = r.i64();
    p.suspends = r.u32();
    last_program_ = p;
  }
  pending_erases_.clear();
  const std::uint64_t pending = r.u64();
  if (pending > r.remaining()) {
    r.fail();
    return;
  }
  pending_erases_.reserve(static_cast<std::size_t>(pending));
  for (std::uint64_t i = 0; i < pending; ++i) {
    PendingErase pe;
    pe.block = r.u32();
    pe.start = r.i64();
    pe.cause = static_cast<WriteCause>(r.u8());
    pe.prev_last_erase = r.i64();
    pending_erases_.push_back(pe);
  }
  program_suspend_ = r.boolean();
  for (BlockWear& wear : wear_) rps::nand::load(r, wear);
}

}  // namespace rps::nand
