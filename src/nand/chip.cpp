#include "src/nand/chip.hpp"

#include <cassert>

namespace rps::nand {

Chip::Chip(std::uint32_t blocks, std::uint32_t wordlines, SequenceKind kind,
           const TimingSpec& timing)
    : timing_(timing) {
  blocks_.reserve(blocks);
  for (std::uint32_t b = 0; b < blocks; ++b) blocks_.emplace_back(wordlines, kind);
}

Microseconds Chip::occupy(Microseconds now, Microseconds latency) {
  const Microseconds start = std::max(now, busy_until_);
  busy_until_ = start + latency;
  busy_total_ += latency;
  return start;
}

Result<OpTiming> Chip::program(std::uint32_t b, PagePos pos, PageData data, Microseconds now) {
  if (b >= blocks_.size()) return ErrorCode::kOutOfRange;
  Block& block = blocks_[b];
  // Validate before touching the timeline so a rejected program is free.
  const Status legal = block.can_program(pos);
  if (!legal.is_ok()) return legal.code();

  const Microseconds latency = pos.type == PageType::kLsb
                                   ? timing_.program_lsb_us
                                   : timing_.program_msb_us;
  const Microseconds start = occupy(now, latency);
  const Status programmed = block.program(pos, std::move(data));
  assert(programmed.is_ok());
  (void)programmed;

  if (pos.type == PageType::kLsb) {
    ++counters_.lsb_programs;
  } else {
    ++counters_.msb_programs;
  }
  const OpTiming timing{start, busy_until_};
  last_program_ = InFlightProgram{b, pos, timing.start, timing.complete};
  return timing;
}

Result<Chip::ReadOutcome> Chip::read(std::uint32_t b, PagePos pos, Microseconds now) {
  if (b >= blocks_.size()) return ErrorCode::kOutOfRange;
  if (pos.wordline >= blocks_[b].wordlines()) return ErrorCode::kOutOfRange;
  ++counters_.reads;
  ReadOutcome outcome;
  outcome.data = blocks_[b].read(pos);

  // Program suspension: jump the queue past an in-flight program. The read
  // runs immediately; the program (and the chip) is pushed back by the
  // read plus the suspend/resume overhead.
  if (program_suspend_ && last_program_ && last_program_->start <= now &&
      now < last_program_->complete &&
      last_program_->suspends < timing_.max_suspends_per_program) {
    ++last_program_->suspends;
    const Microseconds stretch = timing_.read_us + timing_.suspend_resume_us;
    last_program_->complete += stretch;
    busy_until_ += stretch;
    busy_total_ += timing_.read_us;
    outcome.timing = OpTiming{now, now + timing_.read_us};
    return outcome;
  }

  const Microseconds start = occupy(now, timing_.read_us);
  outcome.timing = OpTiming{start, busy_until_};
  return outcome;
}

Result<OpTiming> Chip::erase(std::uint32_t b, Microseconds now) {
  if (b >= blocks_.size()) return ErrorCode::kOutOfRange;
  const Microseconds start = occupy(now, timing_.erase_us);
  blocks_[b].erase();
  ++counters_.erases;
  return OpTiming{start, busy_until_};
}

std::uint64_t Chip::total_erase_count() const {
  std::uint64_t total = 0;
  for (const Block& b : blocks_) total += b.erase_count();
  return total;
}

std::optional<Chip::InFlightProgram> Chip::program_in_flight_at(Microseconds t) const {
  if (last_program_ && last_program_->start <= t && t < last_program_->complete) {
    return last_program_;
  }
  return std::nullopt;
}

std::optional<Chip::InFlightProgram> Chip::apply_power_loss(Microseconds t) {
  const auto in_flight = program_in_flight_at(t);
  if (!in_flight) return std::nullopt;
  Block& block = blocks_[in_flight->block];
  // The interrupted program itself never completed.
  block.corrupt(in_flight->pos);
  if (in_flight->pos.type == PageType::kMsb) {
    // Destructive MSB programming: the paired LSB page's Vth states were
    // mid-rearrangement, so its previously valid data is lost (Section 1).
    block.corrupt({in_flight->pos.wordline, PageType::kLsb});
  }
  return in_flight;
}

}  // namespace rps::nand
