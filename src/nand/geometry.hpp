// Physical organization of the simulated MLC NAND storage system.
//
// The paper's testbed (BlueDBM, 16 GB slice) is 8 channels x 4 chips per
// channel, 512 blocks per chip, 256 pages (128 word lines) per block,
// 4 KB pages. `Geometry::paper()` reproduces that; tests and examples use
// smaller instances.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rps::nand {

struct Geometry {
  std::uint32_t channels = 8;
  std::uint32_t chips_per_channel = 4;
  std::uint32_t blocks_per_chip = 512;
  std::uint32_t wordlines_per_block = 128;  // 2 pages (LSB+MSB) per word line
  std::uint32_t page_size_bytes = 4096;
  std::uint32_t spare_bytes = 128;  // out-of-band area per page

  /// The configuration used in the paper's evaluation (Section 4.1).
  static constexpr Geometry paper() { return Geometry{}; }

  /// A small configuration for unit tests (fast, still multi-chip).
  static constexpr Geometry tiny() {
    return Geometry{.channels = 2,
                    .chips_per_channel = 2,
                    .blocks_per_chip = 16,
                    .wordlines_per_block = 4,
                    .page_size_bytes = 512,
                    .spare_bytes = 16};
  }

  [[nodiscard]] constexpr std::uint32_t num_chips() const {
    return channels * chips_per_channel;
  }
  [[nodiscard]] constexpr std::uint32_t pages_per_block() const {
    return wordlines_per_block * 2;
  }
  [[nodiscard]] constexpr std::uint64_t pages_per_chip() const {
    return static_cast<std::uint64_t>(blocks_per_chip) * pages_per_block();
  }
  [[nodiscard]] constexpr std::uint64_t total_blocks() const {
    return static_cast<std::uint64_t>(num_chips()) * blocks_per_chip;
  }
  [[nodiscard]] constexpr std::uint64_t total_pages() const {
    return static_cast<std::uint64_t>(num_chips()) * pages_per_chip();
  }
  [[nodiscard]] constexpr std::uint64_t capacity_bytes() const {
    return total_pages() * page_size_bytes;
  }

  [[nodiscard]] constexpr bool valid() const {
    return channels > 0 && chips_per_channel > 0 && blocks_per_chip > 0 &&
           wordlines_per_block >= 2 && page_size_bytes > 0;
  }

  /// Channel that a (global) chip index is attached to.
  [[nodiscard]] constexpr std::uint32_t channel_of_chip(std::uint32_t chip) const {
    return chip / chips_per_channel;
  }

  friend constexpr bool operator==(const Geometry&, const Geometry&) = default;
};

}  // namespace rps::nand
