// Physical organization of the simulated MLC NAND storage system.
//
// The paper's testbed (BlueDBM, 16 GB slice) is 8 channels x 4 chips per
// channel, 512 blocks per chip, 256 pages (128 word lines) per block,
// 4 KB pages. `Geometry::paper()` reproduces that; tests and examples use
// smaller instances.
//
// Planes. A chip (die) is subdivided into `planes_per_chip` planes, each
// an independent block array with its own cell timeline. The simulator's
// scheduling granule is the *unit* — one (chip, plane) pair — indexed
// flat as `unit = chip * planes_per_chip + plane`. `blocks_per_chip`
// counts blocks *per plane* so that `planes_per_chip = 1` (the default)
// reproduces the original chip-granular model bit for bit: every unit
// index equals its chip index and every derived quantity is unchanged.
// Planes of one die share the die's channel attachment; the die-level
// coupling (multi-plane command windows, bad-block spares) is modeled in
// NandDevice.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace rps::nand {

struct Geometry {
  std::uint32_t channels = 8;
  std::uint32_t chips_per_channel = 4;
  std::uint32_t planes_per_chip = 1;
  std::uint32_t blocks_per_chip = 512;      // blocks per plane (see header note)
  std::uint32_t wordlines_per_block = 128;  // 2 pages (LSB+MSB) per word line
  std::uint32_t page_size_bytes = 4096;
  std::uint32_t spare_bytes = 128;  // out-of-band area per page

  /// The configuration used in the paper's evaluation (Section 4.1).
  static constexpr Geometry paper() { return Geometry{}; }

  /// The paper's testbed at 4x effective parallelism: every die exposes
  /// four planes (the common organization of the chips BlueDBM carries).
  static constexpr Geometry paper4x() {
    Geometry g;
    g.planes_per_chip = 4;
    return g;
  }

  /// 16x the paper's parallelism: twice the channels, twice the chips per
  /// channel, four planes per die.
  static constexpr Geometry paper16x() {
    Geometry g;
    g.channels = 16;
    g.chips_per_channel = 8;
    g.planes_per_chip = 4;
    return g;
  }

  /// A small configuration for unit tests (fast, still multi-chip).
  static constexpr Geometry tiny() {
    return Geometry{.channels = 2,
                    .chips_per_channel = 2,
                    .planes_per_chip = 1,
                    .blocks_per_chip = 16,
                    .wordlines_per_block = 4,
                    .page_size_bytes = 512,
                    .spare_bytes = 16};
  }

  [[nodiscard]] constexpr std::uint32_t num_chips() const {
    return channels * chips_per_channel;
  }
  /// Total scheduling units: one per (chip, plane).
  [[nodiscard]] constexpr std::uint32_t num_units() const {
    return num_chips() * planes_per_chip;
  }
  [[nodiscard]] constexpr std::uint32_t pages_per_block() const {
    return wordlines_per_block * 2;
  }
  /// Pages per unit (per plane).
  [[nodiscard]] constexpr std::uint64_t pages_per_unit() const {
    return static_cast<std::uint64_t>(blocks_per_chip) * pages_per_block();
  }
  /// Pages per die (all planes).
  [[nodiscard]] constexpr std::uint64_t pages_per_chip() const {
    return pages_per_unit() * planes_per_chip;
  }
  [[nodiscard]] constexpr std::uint64_t total_blocks() const {
    return static_cast<std::uint64_t>(num_units()) * blocks_per_chip;
  }
  [[nodiscard]] constexpr std::uint64_t total_pages() const {
    return static_cast<std::uint64_t>(num_units()) * pages_per_unit();
  }
  [[nodiscard]] constexpr std::uint64_t capacity_bytes() const {
    return total_pages() * page_size_bytes;
  }

  /// Structural and overflow validity: every field positive (word lines
  /// >= 2 so both page types exist), unit counts fit their u32 indices,
  /// and total_pages() / capacity_bytes() fit u64 without wrapping.
  [[nodiscard]] constexpr bool valid() const {
    if (channels == 0 || chips_per_channel == 0 || planes_per_chip == 0 ||
        blocks_per_chip == 0 || wordlines_per_block < 2 || page_size_bytes == 0) {
      return false;
    }
    constexpr std::uint64_t kMax32 = std::numeric_limits<std::uint32_t>::max();
    constexpr std::uint64_t kMax64 = std::numeric_limits<std::uint64_t>::max();
    const std::uint64_t chips =
        static_cast<std::uint64_t>(channels) * chips_per_channel;
    if (chips > kMax32) return false;  // num_chips() returns u32
    const std::uint64_t units = chips * planes_per_chip;  // < 2^64 (u32 * u32)
    if (units > kMax32) return false;  // num_units() returns u32
    const std::uint64_t block_pages =
        static_cast<std::uint64_t>(wordlines_per_block) * 2;
    if (block_pages > kMax64 / blocks_per_chip) return false;
    const std::uint64_t unit_pages = block_pages * blocks_per_chip;
    if (unit_pages > kMax64 / units) return false;
    const std::uint64_t pages = unit_pages * units;  // == total_pages()
    if (pages > kMax64 / page_size_bytes) return false;
    return true;
  }

  /// Channel that a (global) chip index is attached to.
  /// Precondition: chip < num_chips().
  [[nodiscard]] constexpr std::uint32_t channel_of_chip(std::uint32_t chip) const {
    assert(chip < num_chips());
    return chip / chips_per_channel;
  }

  /// Decompose / compose the flat unit index.
  [[nodiscard]] constexpr std::uint32_t chip_of_unit(std::uint32_t unit) const {
    return unit / planes_per_chip;
  }
  [[nodiscard]] constexpr std::uint32_t plane_of_unit(std::uint32_t unit) const {
    return unit % planes_per_chip;
  }
  [[nodiscard]] constexpr std::uint32_t unit_of(std::uint32_t chip,
                                                std::uint32_t plane) const {
    return chip * planes_per_chip + plane;
  }

  /// Channel a unit's die is attached to. Precondition: unit < num_units().
  [[nodiscard]] constexpr std::uint32_t channel_of_unit(std::uint32_t unit) const {
    return channel_of_chip(chip_of_unit(unit));
  }

  friend constexpr bool operator==(const Geometry&, const Geometry&) = default;
};

}  // namespace rps::nand
