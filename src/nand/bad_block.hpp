// Per-unit bad-block management: factory-defect marking, grown-bad
// remapping onto a spare pool, and retirement when the pool runs dry.
//
// Real NAND ships with factory-marked bad blocks (up to ~2% per die) and
// grows more as erase cycles wear cells out. Controllers hide both behind
// a remap table: each plane reserves its last S physical blocks as
// spares, the FTL only ever addresses the first `visible_blocks()`
// blocks, and a visible block that goes bad is transparently redirected
// to a spare. When no spare is left the block is *retired* — the FTL
// sees the failure (ErrorCode::kBlockBad) and removes the block from its
// pools, shrinking effective overprovisioning.
//
// Lifecycle of a physical block: good -> factory-bad (at init, from the
// seed) or grown-bad (erase endurance exceeded / program failure), after
// which its visible address is remapped -> the visible address is
// retired once remapping is impossible.
//
// The default configuration (no spares, zero defect rates) makes every
// translation the identity and injects no failures: the device model is
// bit-identical to one without a table.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/nand/address.hpp"

namespace rps::ser {
class Writer;
class Reader;
}  // namespace rps::ser

namespace rps::nand {

/// Knobs for the bad-block model. All-zero defaults = management off.
struct BadBlockConfig {
  /// Physical blocks per unit reserved as remap spares (the FTL sees
  /// blocks_per_chip - spare_blocks_per_unit blocks). 0 disables remap.
  std::uint32_t spare_blocks_per_unit = 0;
  /// Factory defect probability per physical block, in parts per million.
  std::uint32_t factory_bad_ppm = 0;
  /// Mean erase endurance per block; a block whose erase count reaches its
  /// (jittered) limit fails its next erase. 0 = unlimited endurance.
  std::uint64_t erase_endurance = 0;
  /// Per-block endurance spread: the limit is drawn uniformly from
  /// [mean * (1 - pct/100), mean * (1 + pct/100)].
  std::uint32_t endurance_jitter_pct = 25;
  /// Probability (ppm) that programming the first page of a freshly erased
  /// block fails, marking it grown-bad. Drawn per (block, erase cycle).
  std::uint32_t program_fail_ppm = 0;
  /// Seed for all factory marks, endurance limits and failure draws.
  std::uint64_t seed = 0xbadb10c5ull;

  [[nodiscard]] bool enabled() const {
    return spare_blocks_per_unit > 0 || factory_bad_ppm > 0 ||
           erase_endurance > 0 || program_fail_ppm > 0;
  }
};

/// Why a block was marked bad (trace/event reporting).
enum class BadBlockCause : std::uint8_t {
  kFactory = 0,
  kEraseFailure,
  kProgramFailure,
};

constexpr const char* to_string(BadBlockCause cause) {
  switch (cause) {
    case BadBlockCause::kFactory: return "factory";
    case BadBlockCause::kEraseFailure: return "erase-failure";
    case BadBlockCause::kProgramFailure: return "program-failure";
  }
  return "unknown";
}

class BadBlockTable {
 public:
  /// Builds the table and performs the factory scan: every physical block
  /// is tested against factory_bad_ppm; factory-bad visible blocks are
  /// remapped onto spares immediately, factory-bad spares are struck from
  /// the pool. Visible blocks left without a spare come out retired —
  /// the FTL must drop them from its pools at init (dead_visible_blocks).
  BadBlockTable(const BadBlockConfig& config, std::uint32_t units,
                std::uint32_t blocks_per_unit);

  [[nodiscard]] const BadBlockConfig& config() const { return config_; }
  [[nodiscard]] bool enabled() const { return config_.enabled(); }

  /// Blocks per unit the FTL may address.
  [[nodiscard]] std::uint32_t visible_blocks() const { return visible_blocks_; }

  /// Physical block currently backing visible block `block` of `unit`.
  /// Identity until the first remap ever happens — the fast path is one
  /// flag test, so a disabled table costs the hot paths nothing.
  [[nodiscard]] std::uint32_t translate(std::uint32_t unit, std::uint32_t block) const {
    return any_remap_ ? translate_slow(unit, block) : block;
  }

  /// Visible block whose data lives in physical block `physical` (the
  /// inverse of translate): identity unless `physical` is a mapped spare.
  /// Returns nullopt for unmapped spares and retired visible addresses —
  /// physical locations no FTL-visible address reaches.
  [[nodiscard]] std::optional<std::uint32_t> reverse(std::uint32_t unit,
                                                     std::uint32_t physical) const;

  /// Mark the physical block behind visible `block` grown-bad and remap
  /// the visible address to a fresh spare. Returns the new physical block,
  /// or nullopt when the unit's spare pool is exhausted — the visible
  /// address is then retired (translate still reports the dead physical
  /// block; is_retired() reports true).
  std::optional<std::uint32_t> remap(std::uint32_t unit, std::uint32_t block,
                                     BadBlockCause cause);

  /// True when visible `block` of `unit` has been retired (no spare was
  /// available when it went bad, or factory marks consumed the pool).
  [[nodiscard]] bool is_retired(std::uint32_t unit, std::uint32_t block) const {
    return any_retired_ && units_[unit].retired[block];
  }

  [[nodiscard]] std::uint32_t spares_remaining(std::uint32_t unit) const {
    return static_cast<std::uint32_t>(units_.at(unit).spare_free.size());
  }
  [[nodiscard]] bool has_spare(std::uint32_t unit) const {
    return !units_.at(unit).spare_free.empty();
  }

  /// Visible blocks of `unit` that are retired right now (init handshake
  /// with the FTL, and test introspection).
  [[nodiscard]] std::vector<std::uint32_t> dead_visible_blocks(std::uint32_t unit) const;

  /// Endurance limit of physical block `physical` of `unit` (erase count
  /// at which the next erase fails). Unlimited when erase_endurance == 0.
  [[nodiscard]] std::uint64_t endurance_limit(std::uint32_t unit,
                                              std::uint32_t physical) const;

  /// Deterministic draw: does programming the first page of physical
  /// block `physical` (currently at `erase_count` cycles) fail?
  [[nodiscard]] bool draw_program_failure(std::uint32_t unit, std::uint32_t physical,
                                          std::uint64_t erase_count) const;

  /// Lifetime counters across all units.
  struct Counters {
    std::uint64_t factory_bad = 0;   // physical blocks marked at init
    std::uint64_t grown_bad = 0;     // physical blocks that failed in service
    std::uint64_t remapped = 0;      // successful visible -> spare remaps
    std::uint64_t retired = 0;       // visible addresses permanently lost
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Snapshot support. The remap maps are written sorted by visible block
  /// (canonical order); `reverse` is rebuilt by inversion on load. The
  /// endurance/failure draws are stateless splitmix64 over (seed, block),
  /// so no RNG stream rides along.
  void save(ser::Writer& w) const;
  void load(ser::Reader& r);

 private:
  struct UnitState {
    // visible block -> physical spare backing it (absent = identity).
    std::unordered_map<std::uint32_t, std::uint32_t> remap;
    // physical spare -> visible block it backs (inverse of `remap`).
    std::unordered_map<std::uint32_t, std::uint32_t> reverse;
    std::vector<std::uint32_t> spare_free;  // unused good spares, ascending
    std::vector<bool> bad;                  // per physical block
    std::vector<bool> retired;              // per visible block
  };

  /// splitmix64 over (seed, salt, unit, block[, extra]).
  [[nodiscard]] std::uint64_t draw(std::uint64_t salt, std::uint32_t unit,
                                   std::uint32_t block, std::uint64_t extra = 0) const;

  [[nodiscard]] std::uint32_t translate_slow(std::uint32_t unit,
                                             std::uint32_t block) const;

  std::optional<std::uint32_t> take_spare(UnitState& state);

  BadBlockConfig config_;
  std::uint32_t blocks_per_unit_;
  std::uint32_t visible_blocks_;
  std::vector<UnitState> units_;
  Counters counters_;
  bool any_remap_ = false;    // a remap map entry exists somewhere
  bool any_retired_ = false;  // a visible address is retired somewhere
};

}  // namespace rps::nand
