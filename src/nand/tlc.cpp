#include "src/nand/tlc.hpp"

#include <algorithm>
#include <cassert>

namespace rps::nand {

void TlcBlockState::mark_programmed(TlcPagePos pos) {
  std::uint8_t& pass = passes_.at(pos.wordline);
  assert(pass == static_cast<std::uint8_t>(pos.type));
  ++pass;
}

Status check_tlc_program_legality(const TlcBlockState& block, TlcPagePos pos,
                                  TlcSequenceKind kind) {
  const std::uint32_t n = block.wordlines();
  if (pos.wordline >= n) return Status{ErrorCode::kOutOfRange};
  const std::uint32_t k = pos.wordline;
  const std::uint8_t pass = block.passes(k);
  const auto wanted = static_cast<std::uint8_t>(pos.type);

  // Physical progression: LSB, then CSB, then MSB, no reprogram.
  if (pass > wanted) return Status{ErrorCode::kAlreadyProgrammed};
  if (pass < wanted) return Status{ErrorCode::kNotErased};

  if (kind == TlcSequenceKind::kUnconstrained) return Status::ok();

  // T1/T2/T3: same-type pages ascend word lines.
  if (k >= 1 && !block.is_programmed({k - 1, pos.type})) {
    return Status{ErrorCode::kSequenceViolation};
  }
  switch (pos.type) {
    case TlcPageType::kLsb:
      // T6 (FPS only): before LSB(k), MSB(k-3) must be written.
      if (kind == TlcSequenceKind::kFps && k >= 3 &&
          !block.is_programmed({k - 3, TlcPageType::kMsb})) {
        return Status{ErrorCode::kSequenceViolation};
      }
      break;
    case TlcPageType::kCsb:
      // T4: before CSB(k), LSB(k+1) must be written.
      if (k + 1 < n && !block.is_programmed({k + 1, TlcPageType::kLsb})) {
        return Status{ErrorCode::kSequenceViolation};
      }
      break;
    case TlcPageType::kMsb:
      // T5: before MSB(k), CSB(k+1) must be written.
      if (k + 1 < n && !block.is_programmed({k + 1, TlcPageType::kCsb})) {
        return Status{ErrorCode::kSequenceViolation};
      }
      break;
  }
  return Status::ok();
}

std::vector<TlcPagePos> legal_tlc_programs(const TlcBlockState& block,
                                           TlcSequenceKind kind) {
  std::vector<TlcPagePos> legal;
  for (std::uint32_t k = 0; k < block.wordlines(); ++k) {
    for (const TlcPageType type :
         {TlcPageType::kLsb, TlcPageType::kCsb, TlcPageType::kMsb}) {
      if (check_tlc_program_legality(block, {k, type}, kind).is_ok()) {
        legal.push_back({k, type});
      }
    }
  }
  return legal;
}

TlcProgramOrder tlc_fps_order(std::uint32_t wordlines) {
  assert(wordlines >= 2);
  TlcProgramOrder order;
  order.reserve(wordlines * 3);
  order.push_back({0, TlcPageType::kLsb});
  order.push_back({1, TlcPageType::kLsb});
  order.push_back({0, TlcPageType::kCsb});
  for (std::uint32_t k = 0; k + 2 < wordlines; ++k) {
    order.push_back({k + 2, TlcPageType::kLsb});
    order.push_back({k + 1, TlcPageType::kCsb});
    order.push_back({k, TlcPageType::kMsb});
  }
  order.push_back({wordlines - 1, TlcPageType::kCsb});
  order.push_back({wordlines - 2, TlcPageType::kMsb});
  order.push_back({wordlines - 1, TlcPageType::kMsb});
  return order;
}

TlcProgramOrder tlc_rps_full_order(std::uint32_t wordlines) {
  TlcProgramOrder order;
  order.reserve(wordlines * 3);
  for (const TlcPageType type :
       {TlcPageType::kLsb, TlcPageType::kCsb, TlcPageType::kMsb}) {
    for (std::uint32_t k = 0; k < wordlines; ++k) order.push_back({k, type});
  }
  return order;
}

namespace {

TlcProgramOrder random_order_under(std::uint32_t wordlines, TlcSequenceKind kind,
                                   Rng& rng) {
  TlcBlockState block(wordlines);
  TlcProgramOrder order;
  order.reserve(wordlines * 3);
  for (std::uint32_t step = 0; step < wordlines * 3; ++step) {
    const std::vector<TlcPagePos> legal = legal_tlc_programs(block, kind);
    assert(!legal.empty());
    const TlcPagePos pick = legal[rng.next_below(legal.size())];
    block.mark_programmed(pick);
    order.push_back(pick);
  }
  return order;
}

}  // namespace

TlcProgramOrder random_tlc_rps_order(std::uint32_t wordlines, Rng& rng) {
  return random_order_under(wordlines, TlcSequenceKind::kRps, rng);
}

TlcProgramOrder random_tlc_unconstrained_order(std::uint32_t wordlines, Rng& rng) {
  return random_order_under(wordlines, TlcSequenceKind::kUnconstrained, rng);
}

bool tlc_order_satisfies(const TlcProgramOrder& order, std::uint32_t wordlines,
                         TlcSequenceKind kind) {
  if (order.size() != static_cast<std::size_t>(wordlines) * 3) return false;
  TlcBlockState block(wordlines);
  for (const TlcPagePos pos : order) {
    if (!check_tlc_program_legality(block, pos, kind).is_ok()) return false;
    block.mark_programmed(pos);
  }
  return true;
}

std::vector<std::uint32_t> analyze_tlc_exposure(const TlcProgramOrder& order,
                                                std::uint32_t wordlines) {
  std::vector<std::uint32_t> step_of(wordlines * 3, 0);
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    step_of[order[i].flat_index()] = i;
  }
  std::vector<std::uint32_t> exposure(wordlines, 0);
  for (std::uint32_t k = 0; k < wordlines; ++k) {
    const std::uint32_t final_step = step_of[TlcPagePos{k, TlcPageType::kMsb}.flat_index()];
    for (const std::int64_t nb : {static_cast<std::int64_t>(k) - 1,
                                  static_cast<std::int64_t>(k) + 1}) {
      if (nb < 0 || nb >= static_cast<std::int64_t>(wordlines)) continue;
      const auto w = static_cast<std::uint32_t>(nb);
      for (const TlcPageType type :
           {TlcPageType::kLsb, TlcPageType::kCsb, TlcPageType::kMsb}) {
        if (step_of[TlcPagePos{w, type}.flat_index()] > final_step) ++exposure[k];
      }
    }
  }
  return exposure;
}

}  // namespace rps::nand
