#include "src/nand/program_order.hpp"

#include <algorithm>
#include <cassert>

namespace rps::nand {

std::vector<PagePos> legal_programs(const BlockProgramState& block, SequenceKind kind) {
  std::vector<PagePos> legal;
  for (std::uint32_t k = 0; k < block.wordlines(); ++k) {
    for (PageType type : {PageType::kLsb, PageType::kMsb}) {
      if (check_program_legality(block, {k, type}, kind).is_ok()) {
        legal.push_back({k, type});
      }
    }
  }
  return legal;
}

ProgramOrder fps_order(std::uint32_t wordlines) {
  assert(wordlines >= 2);
  ProgramOrder order;
  order.reserve(wordlines * 2);
  // Fig. 2(b): LSB(0), LSB(1), then MSB(k), LSB(k+2) pairs, ending with the
  // last two MSB pages.
  order.push_back({0, PageType::kLsb});
  order.push_back({1, PageType::kLsb});
  for (std::uint32_t k = 0; k + 2 < wordlines; ++k) {
    order.push_back({k, PageType::kMsb});
    order.push_back({k + 2, PageType::kLsb});
  }
  order.push_back({wordlines - 2, PageType::kMsb});
  order.push_back({wordlines - 1, PageType::kMsb});
  return order;
}

ProgramOrder rps_full_order(std::uint32_t wordlines) {
  ProgramOrder order;
  order.reserve(wordlines * 2);
  for (std::uint32_t k = 0; k < wordlines; ++k) order.push_back({k, PageType::kLsb});
  for (std::uint32_t k = 0; k < wordlines; ++k) order.push_back({k, PageType::kMsb});
  return order;
}

ProgramOrder rps_half_order(std::uint32_t wordlines) {
  assert(wordlines >= 2);
  ProgramOrder order;
  order.reserve(wordlines * 2);
  const std::uint32_t half = wordlines / 2 + 1;  // LSB frontier head start
  std::uint32_t next_lsb = 0;
  std::uint32_t next_msb = 0;
  for (; next_lsb < std::min(half, wordlines); ++next_lsb) {
    order.push_back({next_lsb, PageType::kLsb});
  }
  // Interleave the remaining LSB pages with MSB programs; C3 holds because
  // the LSB frontier stays at least one word line ahead of the MSB frontier.
  while (next_msb < wordlines) {
    order.push_back({next_msb, PageType::kMsb});
    ++next_msb;
    if (next_lsb < wordlines) {
      order.push_back({next_lsb, PageType::kLsb});
      ++next_lsb;
    }
  }
  return order;
}

namespace {

ProgramOrder random_order_under(std::uint32_t wordlines, SequenceKind kind, Rng& rng) {
  BlockProgramState block(wordlines);
  ProgramOrder order;
  order.reserve(wordlines * 2);
  for (std::uint32_t step = 0; step < wordlines * 2; ++step) {
    const std::vector<PagePos> legal = legal_programs(block, kind);
    assert(!legal.empty());
    const PagePos pick = legal[rng.next_below(legal.size())];
    block.mark_programmed(pick);
    order.push_back(pick);
  }
  return order;
}

}  // namespace

ProgramOrder random_rps_order(std::uint32_t wordlines, Rng& rng) {
  return random_order_under(wordlines, SequenceKind::kRps, rng);
}

ProgramOrder random_unconstrained_order(std::uint32_t wordlines, Rng& rng) {
  return random_order_under(wordlines, SequenceKind::kUnconstrained, rng);
}

bool order_satisfies(const ProgramOrder& order, std::uint32_t wordlines, SequenceKind kind) {
  if (order.size() != static_cast<std::size_t>(wordlines) * 2) return false;
  BlockProgramState block(wordlines);
  for (const PagePos pos : order) {
    if (!check_program_legality(block, pos, kind).is_ok()) return false;
    block.mark_programmed(pos);
  }
  return true;
}

std::vector<WordlineExposure> analyze_exposure(const ProgramOrder& order, std::uint32_t wordlines) {
  // step_of[x] = position of page x in the order.
  std::vector<std::uint32_t> lsb_step(wordlines, 0);
  std::vector<std::uint32_t> msb_step(wordlines, 0);
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    const PagePos pos = order[i];
    (pos.type == PageType::kLsb ? lsb_step : msb_step)[pos.wordline] = i;
  }
  std::vector<WordlineExposure> exposure(wordlines);
  for (std::uint32_t k = 0; k < wordlines; ++k) {
    auto count_neighbors = [&](auto predicate) {
      std::uint32_t count = 0;
      for (const std::int64_t nb : {static_cast<std::int64_t>(k) - 1,
                                    static_cast<std::int64_t>(k) + 1}) {
        if (nb < 0 || nb >= static_cast<std::int64_t>(wordlines)) continue;
        const auto w = static_cast<std::uint32_t>(nb);
        if (predicate(lsb_step[w])) ++count;
        if (predicate(msb_step[w])) ++count;
      }
      return count;
    };
    exposure[k].aggressors_after_msb =
        count_neighbors([&](std::uint32_t step) { return step > msb_step[k]; });
    exposure[k].aggressors_on_lsb = count_neighbors([&](std::uint32_t step) {
      return step > lsb_step[k] && step < msb_step[k];
    });
  }
  return exposure;
}

}  // namespace rps::nand
