// One NAND chip (die): an array of blocks plus a timeline.
//
// Timing model: a chip executes one operation at a time. An operation
// issued at time T starts at max(T, busy_until) and occupies the chip for
// its latency; the channel bus is modeled one level up, in NandDevice.
// The in-flight operation is tracked so a power loss can be resolved to
// the exact page being programmed (destructive MSB programming).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/nand/attribution.hpp"
#include "src/nand/block.hpp"
#include "src/nand/timing.hpp"
#include "src/util/counter_fields.hpp"
#include "src/util/types.hpp"

namespace rps::ser {
class Writer;
class Reader;
}  // namespace rps::ser

namespace rps::nand {

/// Operation counters, aggregated per chip and per device. Fields come
/// from the shared X-macro list (src/util/counter_fields.hpp) so the
/// struct, Registry::delta and the metrics report can never disagree.
struct OpCounters {
#define RPS_FIELD(name) std::uint64_t name = 0;
  RPS_OP_COUNTER_FIELDS(RPS_FIELD)
#undef RPS_FIELD

  [[nodiscard]] std::uint64_t programs() const { return lsb_programs + msb_programs; }

  OpCounters& operator+=(const OpCounters& other) {
#define RPS_FIELD(name) name += other.name;
    RPS_OP_COUNTER_FIELDS(RPS_FIELD)
#undef RPS_FIELD
    return *this;
  }
};

/// When an accepted operation starts and finishes on the chip timeline.
struct OpTiming {
  Microseconds start = 0;     // when the chip began executing
  Microseconds complete = 0;  // when the chip becomes free again

  [[nodiscard]] Microseconds busy_time() const { return complete - start; }
};

class Chip {
 public:
  Chip(std::uint32_t blocks, std::uint32_t wordlines, SequenceKind kind,
       const TimingSpec& timing);

  /// Enable program suspension: a read arriving while a program occupies
  /// the chip preempts it (up to max_suspends_per_program times), paying
  /// suspend_resume_us and stretching the program accordingly. Real MLC
  /// controllers use this to protect read latency from 2 ms MSB programs.
  void set_program_suspend(bool enabled) { program_suspend_ = enabled; }
  [[nodiscard]] bool program_suspend() const { return program_suspend_; }

  [[nodiscard]] std::uint32_t num_blocks() const { return static_cast<std::uint32_t>(blocks_.size()); }
  [[nodiscard]] const Block& block(std::uint32_t b) const {
    assert(b < blocks_.size());
    materialize_erase(b);
    return blocks_[b];
  }
  [[nodiscard]] Block& block(std::uint32_t b) {
    assert(b < blocks_.size());
    materialize_erase(b);
    return blocks_[b];
  }

  /// Program `pos` of block `b` at (or after) `now`. On success the chip
  /// timeline advances; on failure nothing changes.
  Result<OpTiming> program(std::uint32_t b, PagePos pos, PageData data, Microseconds now);

  /// Program whose legality the caller has just validated against this
  /// block (NandDevice::resolve_program checks can_program through the
  /// block() accessor, which also materialized any pending erase of `b`).
  /// Skips the duplicate legality checks; otherwise identical to program().
  OpTiming program_resolved(std::uint32_t b, PagePos pos, PageData data, Microseconds now) {
    assert(b < blocks_.size());
    // The caller validated via block(b).can_program(), which also
    // materialized any pending erase of `b`; settling other blocks' erases
    // here cannot change this block's legality.
    settle_erases(now);
    materialize_erase(b);
    return commit_program(b, pos, std::move(data), now);
  }

  /// Read a page. Timing advances even for ECC-uncorrectable reads (the
  /// sensing happened); the data result is reported separately.
  struct ReadOutcome {
    OpTiming timing;
    Result<PageData> data = ErrorCode::kNotProgrammed;
  };
  Result<ReadOutcome> read(std::uint32_t b, PagePos pos, Microseconds now) {
    if (b >= blocks_.size()) return ErrorCode::kOutOfRange;
    if (pos.wordline >= blocks_[b].wordlines()) return ErrorCode::kOutOfRange;
    settle_erases(now);
    materialize_erase(b);
    ++counters_.reads;
    ReadOutcome outcome;
    outcome.data = blocks_[b].read(pos);
    // Program suspension: jump the queue past an in-flight program. The
    // read runs immediately; the program (and the chip) is pushed back by
    // the read plus the suspend/resume overhead.
    if (program_suspend_ && last_program_ && last_program_->start <= now &&
        now < last_program_->complete &&
        last_program_->suspends < timing_.max_suspends_per_program) {
      ++last_program_->suspends;
      const Microseconds stretch = timing_.read_us + timing_.suspend_resume_us;
      last_program_->complete += stretch;
      busy_until_ += stretch;
      busy_total_ += timing_.read_us;
      outcome.timing = OpTiming{now, now + timing_.read_us};
      return outcome;
    }
    const Microseconds start = occupy(now, timing_.read_us);
    outcome.timing = OpTiming{start, busy_until_};
    return outcome;
  }

  /// Erase block `b`. The timeline charge (and the erase counter) is
  /// immediate; the destructive cell reset is *lazy* — it is applied once
  /// the erase provably started (the wall clock passed its start time, or
  /// a later op touches the block, which timeline-serialization places
  /// after the erase). A power loss landing before the erase's start time
  /// voids it entirely: the block's data survives the cut, exactly as on
  /// real hardware where a queued erase behind an in-flight program never
  /// began.
  Result<OpTiming> erase(std::uint32_t b, Microseconds now);

  [[nodiscard]] Microseconds busy_until() const { return busy_until_; }
  [[nodiscard]] const OpCounters& counters() const { return counters_; }
  [[nodiscard]] Microseconds busy_time_total() const { return busy_total_; }

  /// Total erases across all blocks of this chip.
  [[nodiscard]] std::uint64_t total_erase_count() const;

  /// Point this chip at its device's attribution state (null = standalone
  /// chip, ops stay unattributed). Borrowed; the device outlives the chip.
  void attach_attribution(DeviceAttribution* attr) { attr_ = attr; }

  /// The per-physical-block wear ledger, charged at the same instants as
  /// OpCounters (timeline charge time, rolled back on power-loss voiding).
  /// Indexed by *physical* block: bad-block remaps need no ledger fixup.
  [[nodiscard]] const std::vector<BlockWear>& wear_ledger() const { return wear_; }
  [[nodiscard]] const BlockWear& block_wear(std::uint32_t b) const {
    assert(b < wear_.size());
    return wear_[b];
  }

  /// The program operation in flight at time `t`, if any.
  struct InFlightProgram {
    std::uint32_t block = 0;
    PagePos pos;
    Microseconds start = 0;
    Microseconds complete = 0;
    std::uint32_t suspends = 0;
  };
  [[nodiscard]] std::optional<InFlightProgram> program_in_flight_at(Microseconds t) const;

  /// Power loss at time `t`: the chip stops dead. The last program is a
  /// victim if it had not completed by `t` — mid-flight, or queued to start
  /// after `t` (a synchronous GC/backup sequence charged ahead of the cut).
  /// Its page is corrupted; an interrupted MSB program also destroys the
  /// paired LSB page's stored data. The chip timeline is capped at `t`
  /// (after a reboot the chip is immediately available). Returns the
  /// victim, if any.
  std::optional<InFlightProgram> apply_power_loss(Microseconds t);

  /// Snapshot support. Pending (lazy) erases are serialized as-is, NOT
  /// settled first: whether an erase's cell reset has been applied is
  /// observable through a later power loss, so a restore must reproduce
  /// the exact lazy state, not an equivalent eager one.
  void save(ser::Writer& w) const;
  void load(ser::Reader& r);

 private:
  /// An erase charged to the timeline whose cell reset has not been
  /// applied yet (see erase()). Carries the cause it was attributed to and
  /// the ledger's previous last-erase time so a power loss that voids the
  /// erase can roll both back exactly (at most one pending erase per block
  /// exists — erase() materializes any earlier one first).
  struct PendingErase {
    std::uint32_t block = 0;
    Microseconds start = 0;
    WriteCause cause = WriteCause::kHost;
    Microseconds prev_last_erase = -1;
  };

  Microseconds occupy(Microseconds now, Microseconds latency) {
    const Microseconds start = std::max(now, busy_until_);
    busy_until_ = start + latency;
    busy_total_ += latency;
    return start;
  }

  /// Timeline charge + page store + counters, shared by program() and
  /// program_resolved() once legality is established.
  OpTiming commit_program(std::uint32_t b, PagePos pos, PageData&& data,
                          Microseconds now) {
    const Microseconds latency = pos.type == PageType::kLsb
                                     ? timing_.program_lsb_us
                                     : timing_.program_msb_us;
    const Microseconds start = occupy(now, latency);
    const std::uint64_t spare = data.spare;
    blocks_[b].program_prechecked(pos, std::move(data));
    if (pos.type == PageType::kLsb) {
      ++counters_.lsb_programs;
    } else {
      ++counters_.msb_programs;
    }
    ++wear_[b].programs;
    if (attr_ != nullptr) {
      attr_->note_program(pos.type == PageType::kLsb,
                          (spare & kNonHostSpareFlag) != 0, stream_of_spare(spare));
    }
    const OpTiming timing{start, busy_until_};
    last_program_ = InFlightProgram{b, pos, timing.start, timing.complete};
    return timing;
  }

  /// Apply the cell resets of pending erases that started by `now`. A
  /// power loss is always injected at or after the present, so these can
  /// no longer be voided. Erases charged to start in the future stay
  /// pending (a cut before their start time voids them). The common case
  /// (no erase pending) is a branch, not a call.
  void settle_erases(Microseconds now) {
    if (!pending_erases_.empty()) settle_erases_slow(now);
  }
  void settle_erases_slow(Microseconds now);

  /// Apply the pending erase of block `b` (if any) regardless of its
  /// start time: an op touching `b` serializes after the erase on the
  /// chip timeline, so it must observe the erased state. Logically const.
  void materialize_erase(std::uint32_t b) const {
    if (!pending_erases_.empty()) materialize_erase_slow(b);
  }
  void materialize_erase_slow(std::uint32_t b) const;

  std::vector<Block> blocks_;
  std::vector<BlockWear> wear_;  // physical-block-indexed, preallocated
  TimingSpec timing_;
  Microseconds busy_until_ = 0;
  Microseconds busy_total_ = 0;
  OpCounters counters_;
  DeviceAttribution* attr_ = nullptr;  // borrowed; null = unattributed
  std::optional<InFlightProgram> last_program_;
  std::vector<PendingErase> pending_erases_;
  bool program_suspend_ = false;
};

}  // namespace rps::nand
