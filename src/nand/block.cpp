#include "src/nand/block.hpp"

#include <algorithm>

#include "src/util/serialize.hpp"

namespace rps::nand {

void PageData::xor_with(const PageData& other) {
  signature ^= other.signature;
  spare ^= other.spare;
  lpn ^= other.lpn;
  version ^= other.version;
  if (bytes.size() < other.bytes.size()) bytes.resize(other.bytes.size(), 0);
  for (std::size_t i = 0; i < other.bytes.size(); ++i) bytes[i] ^= other.bytes[i];
}

Block::Block(std::uint32_t wordlines, SequenceKind kind)
    : kind_(kind), program_state_(wordlines), slots_(wordlines * 2) {}

void Block::erase() {
  for (PageSlot& s : slots_) s = PageSlot{};
  program_state_.reset();
  programmed_pages_ = 0;
  programmed_lsb_ = 0;
  reads_since_erase_ = 0;
  slc_mode_ = false;
  ++erase_count_;
}

Status Block::set_slc_mode() {
  if (!is_erased()) return Status{ErrorCode::kNotErased};
  slc_mode_ = true;
  return Status::ok();
}

void Block::corrupt(PagePos pos) {
  PageSlot& s = slot(pos);
  if (s.state == PageState::kValid) {
    s.state = PageState::kCorrupted;
    s.data = PageData{};
  }
}

void save(ser::Writer& w, const PageData& d) {
  w.u64(d.lpn);
  w.u64(d.signature);
  w.u64(d.spare);
  w.u64(d.version);
  w.u64(d.bytes.size());
  w.bytes(d.bytes.data(), d.bytes.size());
}

void load(ser::Reader& r, PageData& d) {
  d.lpn = r.u64();
  d.signature = r.u64();
  d.spare = r.u64();
  d.version = r.u64();
  const std::uint64_t n = r.u64();
  if (n > r.remaining()) {
    r.fail();
    d.bytes.clear();
    return;
  }
  d.bytes.resize(static_cast<std::size_t>(n));
  r.bytes(d.bytes.data(), d.bytes.size());
}

void Block::save(ser::Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kind_));
  w.u64(erase_count_);
  w.u64(reads_since_erase_);
  w.boolean(slc_mode_);
  w.u64(slots_.size());
  for (const PageSlot& s : slots_) {
    w.u8(static_cast<std::uint8_t>(s.state));
    // Erased and corrupted slots hold a default PageData by construction
    // (erase()/corrupt() clear the record), so only valid pages carry one.
    if (s.state == PageState::kValid) nand::save(w, s.data);
  }
}

void Block::load(ser::Reader& r) {
  if (r.u8() != static_cast<std::uint8_t>(kind_)) {
    r.fail();
    return;
  }
  erase_count_ = r.u64();
  reads_since_erase_ = r.u64();
  slc_mode_ = r.boolean();
  if (r.u64() != slots_.size()) {
    r.fail();
    return;
  }
  program_state_.reset();
  programmed_pages_ = 0;
  programmed_lsb_ = 0;
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    const std::uint8_t raw = r.u8();
    if (raw > static_cast<std::uint8_t>(PageState::kCorrupted)) {
      r.fail();
      return;
    }
    PageSlot& s = slots_[i];
    s.state = static_cast<PageState>(raw);
    s.data = PageData{};
    if (s.state == PageState::kValid) nand::load(r, s.data);
    // Word-line program state and the programmed counters are derived from
    // the slot states: a non-erased slot is programmed for ordering
    // purposes, corrupted or not.
    if (s.state != PageState::kErased) {
      const PagePos pos = PagePos::from_flat(i);
      program_state_.mark_programmed(pos);
      ++programmed_pages_;
      if (pos.type == PageType::kLsb) ++programmed_lsb_;
    }
  }
}

std::optional<PagePos> Block::next_msb() const {
  const std::uint32_t programmed_msb = programmed_msb_pages();
  if (programmed_msb >= wordlines()) return std::nullopt;
  const PagePos candidate{programmed_msb, PageType::kMsb};
  if (!can_program(candidate).is_ok()) return std::nullopt;
  return candidate;
}

}  // namespace rps::nand
