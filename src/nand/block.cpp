#include "src/nand/block.hpp"

#include <algorithm>

namespace rps::nand {

void PageData::xor_with(const PageData& other) {
  signature ^= other.signature;
  spare ^= other.spare;
  lpn ^= other.lpn;
  version ^= other.version;
  if (bytes.size() < other.bytes.size()) bytes.resize(other.bytes.size(), 0);
  for (std::size_t i = 0; i < other.bytes.size(); ++i) bytes[i] ^= other.bytes[i];
}

Block::Block(std::uint32_t wordlines, SequenceKind kind)
    : kind_(kind), program_state_(wordlines), slots_(wordlines * 2) {}

Status Block::program(PagePos pos, PageData data) {
  const Status legal = can_program(pos);
  if (!legal.is_ok()) return legal;
  program_state_.mark_programmed(pos);
  PageSlot& s = slot(pos);
  s.state = PageState::kValid;
  s.data = std::move(data);
  ++programmed_pages_;
  if (pos.type == PageType::kLsb) ++programmed_lsb_;
  return Status::ok();
}

Result<PageData> Block::read(PagePos pos) const {
  if (pos.wordline >= wordlines()) return ErrorCode::kOutOfRange;
  ++reads_since_erase_;
  const PageSlot& s = slot(pos);
  switch (s.state) {
    case PageState::kErased: return ErrorCode::kNotProgrammed;
    case PageState::kCorrupted: return ErrorCode::kEccUncorrectable;
    case PageState::kValid: return s.data;
  }
  return ErrorCode::kInvalidArgument;
}

const PageData* Block::peek(PagePos pos) const {
  if (pos.wordline >= wordlines()) return nullptr;
  ++reads_since_erase_;
  const PageSlot& s = slot(pos);
  return s.state == PageState::kValid ? &s.data : nullptr;
}

PageState Block::page_state(PagePos pos) const { return slot(pos).state; }

void Block::erase() {
  for (PageSlot& s : slots_) s = PageSlot{};
  program_state_.reset();
  programmed_pages_ = 0;
  programmed_lsb_ = 0;
  reads_since_erase_ = 0;
  slc_mode_ = false;
  ++erase_count_;
}

Status Block::set_slc_mode() {
  if (!is_erased()) return Status{ErrorCode::kNotErased};
  slc_mode_ = true;
  return Status::ok();
}

void Block::corrupt(PagePos pos) {
  PageSlot& s = slot(pos);
  if (s.state == PageState::kValid) {
    s.state = PageState::kCorrupted;
    s.data = PageData{};
  }
}

std::optional<PagePos> Block::next_lsb() const {
  // C1 forces ascending LSB order, so the frontier is the count of
  // LSB-programmed word lines.
  if (programmed_lsb_ >= wordlines()) return std::nullopt;
  return PagePos{programmed_lsb_, PageType::kLsb};
}

std::optional<PagePos> Block::next_msb() const {
  const std::uint32_t programmed_msb = programmed_msb_pages();
  if (programmed_msb >= wordlines()) return std::nullopt;
  const PagePos candidate{programmed_msb, PageType::kMsb};
  if (!can_program(candidate).is_ok()) return std::nullopt;
  return candidate;
}

}  // namespace rps::nand
