// TLC (3-bit-per-cell) generalization of the relaxed program sequence.
//
// The paper (Section 1) notes the RPS idea applies to TLC devices with a
// similar program scheme; this module works that claim out. A TLC word
// line holds three pages — LSB, CSB, MSB — programmed progressively. The
// conventional TLC "shadow" program sequence generalizes Fig. 2(b):
//
//   T1/T2/T3: LSB, CSB and MSB pages are each written in ascending
//             word-line order (same-type ordering);
//   T4:       before CSB(k), LSB(k+1) must be written  (k+1 < wordlines);
//   T5:       before MSB(k), CSB(k+1) must be written  (k+1 < wordlines);
//   T6:       before LSB(k), MSB(k-3) must be written  (k >= 3).
//
// T4/T5 bound the cell-to-cell interference exactly like MLC constraint 3:
// they force both neighbors' earlier-pass programs to precede a page's
// final (MSB) pass. T6 is the TLC analogue of MLC constraint 4 — and the
// same argument shows it is an over-specification: programs to WL(k-3)
// cannot disturb WL(k). Dropping T6 yields the relaxed TLC sequence,
// under which all LSB pages of a block (three times cheaper to program
// than MSB pages on real TLC parts) can be written consecutively.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/random.hpp"
#include "src/util/result.hpp"

namespace rps::nand {

enum class TlcPageType : std::uint8_t { kLsb = 0, kCsb = 1, kMsb = 2 };

constexpr const char* to_string(TlcPageType type) {
  switch (type) {
    case TlcPageType::kLsb: return "LSB";
    case TlcPageType::kCsb: return "CSB";
    case TlcPageType::kMsb: return "MSB";
  }
  return "?";
}

struct TlcPagePos {
  std::uint32_t wordline = 0;
  TlcPageType type = TlcPageType::kLsb;

  [[nodiscard]] constexpr std::uint32_t flat_index() const {
    return wordline * 3 + static_cast<std::uint32_t>(type);
  }

  friend constexpr bool operator==(const TlcPagePos&, const TlcPagePos&) = default;
};

enum class TlcSequenceKind : std::uint8_t {
  kFps,            // T1-T6 (conventional shadow sequence)
  kRps,            // T1-T5 (the relaxed sequence)
  kUnconstrained,  // physical progression only
};

constexpr const char* to_string(TlcSequenceKind kind) {
  switch (kind) {
    case TlcSequenceKind::kFps: return "TLC-FPS";
    case TlcSequenceKind::kRps: return "TLC-RPS";
    case TlcSequenceKind::kUnconstrained: return "TLC-Unconstrained";
  }
  return "?";
}

/// Per-word-line progression: 0 = erased, 1 = LSB done, 2 = +CSB, 3 = +MSB.
class TlcBlockState {
 public:
  explicit TlcBlockState(std::uint32_t wordlines) : passes_(wordlines, 0) {}

  [[nodiscard]] std::uint32_t wordlines() const {
    return static_cast<std::uint32_t>(passes_.size());
  }
  [[nodiscard]] std::uint8_t passes(std::uint32_t wl) const { return passes_.at(wl); }

  [[nodiscard]] bool is_programmed(TlcPagePos pos) const {
    return passes_.at(pos.wordline) > static_cast<std::uint8_t>(pos.type);
  }

  void mark_programmed(TlcPagePos pos);
  void reset() { std::fill(passes_.begin(), passes_.end(), 0); }

 private:
  std::vector<std::uint8_t> passes_;
};

/// Validate one TLC page program against `kind`'s constraint set.
Status check_tlc_program_legality(const TlcBlockState& block, TlcPagePos pos,
                                  TlcSequenceKind kind);

/// All currently legal page programs under `kind`.
std::vector<TlcPagePos> legal_tlc_programs(const TlcBlockState& block,
                                           TlcSequenceKind kind);

using TlcProgramOrder = std::vector<TlcPagePos>;

/// The conventional shadow sequence: L0 L1 C0, then (L(k+2) C(k+1) M(k))
/// triples, then C(n-1) M(n-2) M(n-1).
TlcProgramOrder tlc_fps_order(std::uint32_t wordlines);

/// The TLC 2PO order: all LSB pages, then all CSB pages, then all MSB
/// pages — three phases instead of MLC's two.
TlcProgramOrder tlc_rps_full_order(std::uint32_t wordlines);

/// A uniformly random order satisfying T1-T5.
TlcProgramOrder random_tlc_rps_order(std::uint32_t wordlines, Rng& rng);

/// A random order with only the per-word-line pass progression enforced.
TlcProgramOrder random_tlc_unconstrained_order(std::uint32_t wordlines, Rng& rng);

/// True iff `order` covers all pages and every step is legal under `kind`.
bool tlc_order_satisfies(const TlcProgramOrder& order, std::uint32_t wordlines,
                         TlcSequenceKind kind);

/// Aggressor programs to WL(k)'s neighbors after WL(k)'s final (MSB)
/// program — the interference exposure metric, as in the MLC analysis.
std::vector<std::uint32_t> analyze_tlc_exposure(const TlcProgramOrder& order,
                                                std::uint32_t wordlines);

}  // namespace rps::nand
