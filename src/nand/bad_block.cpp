#include "src/nand/bad_block.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "src/util/serialize.hpp"

namespace rps::nand {

namespace {
constexpr std::uint64_t kPpmScale = 1'000'000;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

std::uint64_t BadBlockTable::draw(std::uint64_t salt, std::uint32_t unit,
                                  std::uint32_t block, std::uint64_t extra) const {
  std::uint64_t x = splitmix64(config_.seed ^ salt);
  x = splitmix64(x ^ (static_cast<std::uint64_t>(unit) << 32 | block));
  return splitmix64(x ^ extra);
}

BadBlockTable::BadBlockTable(const BadBlockConfig& config, std::uint32_t units,
                             std::uint32_t blocks_per_unit)
    : config_(config), blocks_per_unit_(blocks_per_unit) {
  assert(config.spare_blocks_per_unit < blocks_per_unit);
  visible_blocks_ = blocks_per_unit - config.spare_blocks_per_unit;
  units_.resize(units);
  for (std::uint32_t u = 0; u < units; ++u) {
    UnitState& state = units_[u];
    state.bad.assign(blocks_per_unit, false);
    state.retired.assign(visible_blocks_, false);
    // Factory scan: mark defects, then build the spare pool from the good
    // blocks of the reserved tail region (ascending, so remap order is
    // deterministic and independent of the failure order-of-discovery).
    for (std::uint32_t b = 0; b < blocks_per_unit; ++b) {
      if (config_.factory_bad_ppm > 0 &&
          draw(/*salt=*/0xfac0, u, b) % kPpmScale < config_.factory_bad_ppm) {
        state.bad[b] = true;
        ++counters_.factory_bad;
      }
    }
    for (std::uint32_t b = visible_blocks_; b < blocks_per_unit; ++b) {
      if (!state.bad[b]) state.spare_free.push_back(b);
    }
    // Factory-bad visible blocks are remapped at birth; with the pool
    // exhausted they are retired before the FTL ever sees them.
    for (std::uint32_t b = 0; b < visible_blocks_; ++b) {
      if (!state.bad[b]) continue;
      if (const std::optional<std::uint32_t> spare = take_spare(state)) {
        state.remap[b] = *spare;
        state.reverse[*spare] = b;
        any_remap_ = true;
        ++counters_.remapped;
      } else {
        state.retired[b] = true;
        any_retired_ = true;
        ++counters_.retired;
      }
    }
  }
}

std::optional<std::uint32_t> BadBlockTable::take_spare(UnitState& state) {
  if (state.spare_free.empty()) return std::nullopt;
  const std::uint32_t spare = state.spare_free.front();
  state.spare_free.erase(state.spare_free.begin());
  return spare;
}

std::uint32_t BadBlockTable::translate_slow(std::uint32_t unit,
                                            std::uint32_t block) const {
  const UnitState& state = units_[unit];
  const auto it = state.remap.find(block);
  return it == state.remap.end() ? block : it->second;
}

std::optional<std::uint32_t> BadBlockTable::reverse(std::uint32_t unit,
                                                    std::uint32_t physical) const {
  const UnitState& state = units_.at(unit);
  if (physical < visible_blocks_) {
    // A visible physical location is its own address unless it went bad
    // (its data, if any, is unreachable) or was retired.
    if (state.bad[physical]) return std::nullopt;
    if (state.retired[physical]) return std::nullopt;
    return physical;
  }
  const auto it = state.reverse.find(physical);
  if (it == state.reverse.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint32_t> BadBlockTable::remap(std::uint32_t unit,
                                                  std::uint32_t block,
                                                  BadBlockCause cause) {
  assert(block < visible_blocks_);
  UnitState& state = units_.at(unit);
  assert(!state.retired[block]);
  const std::uint32_t old_physical = translate(unit, block);
  if (!state.bad[old_physical]) {
    state.bad[old_physical] = true;
    if (cause != BadBlockCause::kFactory) ++counters_.grown_bad;
  }
  // Drop the stale mapping (if the block had already been remapped once).
  if (const auto it = state.remap.find(block); it != state.remap.end()) {
    state.reverse.erase(it->second);
    state.remap.erase(it);
  }
  const std::optional<std::uint32_t> spare = take_spare(state);
  if (!spare) {
    state.retired[block] = true;
    any_retired_ = true;
    ++counters_.retired;
    return std::nullopt;
  }
  state.remap[block] = *spare;
  state.reverse[*spare] = block;
  any_remap_ = true;
  ++counters_.remapped;
  return spare;
}

std::vector<std::uint32_t> BadBlockTable::dead_visible_blocks(std::uint32_t unit) const {
  std::vector<std::uint32_t> dead;
  const UnitState& state = units_.at(unit);
  for (std::uint32_t b = 0; b < visible_blocks_; ++b) {
    if (state.retired[b]) dead.push_back(b);
  }
  return dead;
}

std::uint64_t BadBlockTable::endurance_limit(std::uint32_t unit,
                                             std::uint32_t physical) const {
  if (config_.erase_endurance == 0) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  const std::uint64_t mean = config_.erase_endurance;
  const std::uint64_t spread =
      mean * config_.endurance_jitter_pct / 100;  // half-width of the window
  if (spread == 0) return std::max<std::uint64_t>(1, mean);
  const std::uint64_t low = mean > spread ? mean - spread : 1;
  const std::uint64_t width = 2 * spread + 1;
  return std::max<std::uint64_t>(1, low + draw(/*salt=*/0xedu, unit, physical) % width);
}

bool BadBlockTable::draw_program_failure(std::uint32_t unit, std::uint32_t physical,
                                         std::uint64_t erase_count) const {
  if (config_.program_fail_ppm == 0) return false;
  return draw(/*salt=*/0xf441, unit, physical, erase_count) % kPpmScale <
         config_.program_fail_ppm;
}

void BadBlockTable::save(ser::Writer& w) const {
  w.u64(units_.size());
  for (const UnitState& unit : units_) {
    // Canonical order: remap entries sorted by visible block. The reverse
    // map is the exact inverse, so it is rebuilt on load rather than stored.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> entries(unit.remap.begin(),
                                                                 unit.remap.end());
    std::sort(entries.begin(), entries.end());
    w.u64(entries.size());
    for (const auto& [visible, physical] : entries) {
      w.u32(visible);
      w.u32(physical);
    }
    w.u64(unit.spare_free.size());
    for (const std::uint32_t spare : unit.spare_free) w.u32(spare);
    w.u64(unit.bad.size());
    for (const bool b : unit.bad) w.boolean(b);
    w.u64(unit.retired.size());
    for (const bool b : unit.retired) w.boolean(b);
  }
  w.u64(counters_.factory_bad);
  w.u64(counters_.grown_bad);
  w.u64(counters_.remapped);
  w.u64(counters_.retired);
  w.boolean(any_remap_);
  w.boolean(any_retired_);
}

void BadBlockTable::load(ser::Reader& r) {
  if (r.u64() != units_.size()) {
    r.fail();
    return;
  }
  for (UnitState& unit : units_) {
    unit.remap.clear();
    unit.reverse.clear();
    const std::uint64_t remaps = r.u64();
    if (remaps > r.remaining()) {
      r.fail();
      return;
    }
    for (std::uint64_t i = 0; i < remaps; ++i) {
      const std::uint32_t visible = r.u32();
      const std::uint32_t physical = r.u32();
      unit.remap.emplace(visible, physical);
      unit.reverse.emplace(physical, visible);
    }
    unit.spare_free.clear();
    const std::uint64_t spares = r.u64();
    if (spares > r.remaining()) {
      r.fail();
      return;
    }
    unit.spare_free.reserve(static_cast<std::size_t>(spares));
    for (std::uint64_t i = 0; i < spares; ++i) unit.spare_free.push_back(r.u32());
    if (r.u64() != unit.bad.size()) {
      r.fail();
      return;
    }
    for (std::size_t i = 0; i < unit.bad.size(); ++i) unit.bad[i] = r.boolean();
    if (r.u64() != unit.retired.size()) {
      r.fail();
      return;
    }
    for (std::size_t i = 0; i < unit.retired.size(); ++i) unit.retired[i] = r.boolean();
  }
  counters_.factory_bad = r.u64();
  counters_.grown_bad = r.u64();
  counters_.remapped = r.u64();
  counters_.retired = r.u64();
  any_remap_ = r.boolean();
  any_retired_ = r.boolean();
}

}  // namespace rps::nand
