#include "src/nand/tlc_device.hpp"

#include <algorithm>
#include <cassert>

#include "src/util/serialize.hpp"

namespace rps::nand {

TlcBlock::TlcBlock(std::uint32_t wordlines, TlcSequenceKind kind)
    : kind_(kind), state_(wordlines), slots_(wordlines * 3) {}

Status TlcBlock::program(TlcPagePos pos, PageData data) {
  const Status legal = can_program(pos);
  if (!legal.is_ok()) return legal;
  state_.mark_programmed(pos);
  Slot& slot = slots_[pos.flat_index()];
  slot.state = PageState::kValid;
  slot.data = std::move(data);
  ++programmed_;
  ++pass_counts_[static_cast<std::size_t>(pos.type)];
  return Status::ok();
}

Result<PageData> TlcBlock::read(TlcPagePos pos) const {
  if (pos.wordline >= wordlines()) return ErrorCode::kOutOfRange;
  const Slot& slot = slots_[pos.flat_index()];
  switch (slot.state) {
    case PageState::kErased: return ErrorCode::kNotProgrammed;
    case PageState::kCorrupted: return ErrorCode::kEccUncorrectable;
    case PageState::kValid: return slot.data;
  }
  return ErrorCode::kInvalidArgument;
}

void TlcBlock::erase() {
  for (Slot& slot : slots_) slot = Slot{};
  state_.reset();
  pass_counts_ = {0, 0, 0};
  programmed_ = 0;
  ++erase_count_;
}

void TlcBlock::corrupt(TlcPagePos pos) {
  Slot& slot = slots_[pos.flat_index()];
  if (slot.state == PageState::kValid) {
    slot.state = PageState::kCorrupted;
    slot.data = PageData{};
  }
}

std::optional<TlcPagePos> TlcBlock::next_in_pass(TlcPageType type) const {
  const std::uint32_t frontier = pass_counts_[static_cast<std::size_t>(type)];
  if (frontier >= wordlines()) return std::nullopt;
  const TlcPagePos candidate{frontier, type};
  if (!can_program(candidate).is_ok()) return std::nullopt;
  return candidate;
}

TlcChip::TlcChip(std::uint32_t blocks, std::uint32_t wordlines, TlcSequenceKind kind,
                 const TlcTimingSpec& timing)
    : timing_(timing) {
  blocks_.reserve(blocks);
  for (std::uint32_t b = 0; b < blocks; ++b) blocks_.emplace_back(wordlines, kind);
  wear_.resize(blocks);  // preallocated up front: the ledger never grows
}

Microseconds TlcChip::occupy(Microseconds now, Microseconds latency) {
  const Microseconds start = std::max(now, busy_until_);
  busy_until_ = start + latency;
  return start;
}

Result<OpTiming> TlcChip::program(std::uint32_t b, TlcPagePos pos, PageData data,
                                  Microseconds now) {
  if (b >= blocks_.size()) return ErrorCode::kOutOfRange;
  const Status legal = blocks_[b].can_program(pos);
  if (!legal.is_ok()) return legal.code();
  const Microseconds start = occupy(now, timing_.program_us(pos.type));
  const std::uint64_t spare = data.spare;
  const Status programmed = blocks_[b].program(pos, std::move(data));
  assert(programmed.is_ok());
  (void)programmed;
  if (pos.type == TlcPageType::kLsb) {
    ++counters_.lsb_programs;
  } else {
    ++counters_.msb_programs;  // CSB+MSB both count as slow programs
  }
  ++wear_[b].programs;
  if (attr_ != nullptr) {
    attr_->note_program(pos.type == TlcPageType::kLsb,
                        (spare & kNonHostSpareFlag) != 0, stream_of_spare(spare));
  }
  const OpTiming timing{start, busy_until_};
  last_program_ = InFlight{b, pos, timing.start, timing.complete};
  return timing;
}

Result<TlcChip::ReadOutcome> TlcChip::read(std::uint32_t b, TlcPagePos pos,
                                           Microseconds now) {
  if (b >= blocks_.size()) return ErrorCode::kOutOfRange;
  if (pos.wordline >= blocks_[b].wordlines()) return ErrorCode::kOutOfRange;
  const Microseconds start = occupy(now, timing_.read_us);
  ++counters_.reads;
  ReadOutcome outcome;
  outcome.timing = OpTiming{start, busy_until_};
  outcome.data = blocks_[b].read(pos);
  return outcome;
}

Result<OpTiming> TlcChip::erase(std::uint32_t b, Microseconds now) {
  if (b >= blocks_.size()) return ErrorCode::kOutOfRange;
  const Microseconds start = occupy(now, timing_.erase_us);
  blocks_[b].erase();
  ++counters_.erases;
  ++wear_[b].erases;
  wear_[b].last_erase_us = start;
  if (attr_ != nullptr) attr_->note_erase();
  return OpTiming{start, busy_until_};
}

std::optional<TlcChip::InFlight> TlcChip::apply_power_loss(Microseconds t) {
  if (!last_program_ || t < last_program_->start || t >= last_program_->complete) {
    return std::nullopt;
  }
  TlcBlock& block = blocks_[last_program_->block];
  const std::uint32_t wl = last_program_->pos.wordline;
  // The interrupted pass and every lower pass of the word line are lost:
  // shadow programming physically re-places the lower pages' charge.
  for (std::uint8_t pass = 0; pass <= static_cast<std::uint8_t>(last_program_->pos.type);
       ++pass) {
    block.corrupt({wl, static_cast<TlcPageType>(pass)});
  }
  return last_program_;
}

std::uint64_t TlcChip::total_erase_count() const {
  std::uint64_t total = 0;
  for (const TlcBlock& b : blocks_) total += b.erase_count();
  return total;
}

TlcDevice::TlcDevice(const TlcGeometry& geometry, const TlcTimingSpec& timing,
                     TlcSequenceKind kind)
    : geometry_(geometry),
      timing_(timing),
      kind_(kind),
      channel_busy_until_(geometry.channels, 0) {
  chips_.reserve(geometry.num_chips());
  for (std::uint32_t c = 0; c < geometry.num_chips(); ++c) {
    chips_.push_back(std::make_unique<TlcChip>(
        geometry.blocks_per_chip, geometry.wordlines_per_block, kind, timing));
    chips_.back()->attach_attribution(&attribution_);
  }
}

bool TlcDevice::in_range(const TlcPageAddress& addr) const {
  return addr.chip < geometry_.num_chips() &&
         addr.block < geometry_.blocks_per_chip &&
         addr.pos.wordline < geometry_.wordlines_per_block;
}

Microseconds TlcDevice::occupy_channel(std::uint32_t channel, Microseconds now) {
  Microseconds& busy = channel_busy_until_.at(channel);
  const Microseconds start = std::max(now, busy);
  busy = start + timing_.transfer_us;
  return start;
}

Result<OpTiming> TlcDevice::program(const TlcPageAddress& addr, PageData data,
                                    Microseconds now) {
  if (!in_range(addr)) return ErrorCode::kOutOfRange;
  const Status legal = chips_[addr.chip]->block(addr.block).can_program(addr.pos);
  if (!legal.is_ok()) return legal.code();
  const Microseconds bus_start =
      occupy_channel(geometry_.channel_of_chip(addr.chip), now);
  Result<OpTiming> cell = chips_[addr.chip]->program(
      addr.block, addr.pos, std::move(data), bus_start + timing_.transfer_us);
  assert(cell.is_ok());
  return OpTiming{bus_start, cell.value().complete};
}

Result<TlcDevice::ReadResult> TlcDevice::read(const TlcPageAddress& addr,
                                              Microseconds now) {
  if (!in_range(addr)) return ErrorCode::kOutOfRange;
  Result<TlcChip::ReadOutcome> sensed =
      chips_[addr.chip]->read(addr.block, addr.pos, now);
  if (!sensed.is_ok()) return sensed.code();
  const Microseconds bus_start = occupy_channel(
      geometry_.channel_of_chip(addr.chip), sensed.value().timing.complete);
  ReadResult result;
  result.timing = OpTiming{sensed.value().timing.start, bus_start + timing_.transfer_us};
  result.data = std::move(sensed.value().data);
  return result;
}

Result<OpTiming> TlcDevice::erase(std::uint32_t chip, std::uint32_t block,
                                  Microseconds now) {
  if (chip >= geometry_.num_chips() || block >= geometry_.blocks_per_chip) {
    return ErrorCode::kOutOfRange;
  }
  return chips_[chip]->erase(block, now);
}

std::vector<TlcDevice::PowerLossVictim> TlcDevice::inject_power_loss(Microseconds t) {
  std::vector<PowerLossVictim> victims;
  for (std::uint32_t c = 0; c < chips_.size(); ++c) {
    if (const auto hit = chips_[c]->apply_power_loss(t)) {
      victims.push_back(PowerLossVictim{c, hit->block, hit->pos});
    }
  }
  return victims;
}

OpCounters TlcDevice::total_counters() const {
  OpCounters total;
  for (const auto& chip : chips_) total += chip->counters();
  return total;
}

std::uint64_t TlcDevice::total_erase_count() const {
  std::uint64_t total = 0;
  for (const auto& chip : chips_) total += chip->total_erase_count();
  return total;
}

Microseconds TlcDevice::all_idle_at() const {
  Microseconds latest = 0;
  for (const auto& chip : chips_) latest = std::max(latest, chip->busy_until());
  for (const Microseconds busy : channel_busy_until_) latest = std::max(latest, busy);
  return latest;
}

void TlcBlock::save(ser::Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kind_));
  w.u64(erase_count_);
  w.u64(slots_.size());
  for (const Slot& s : slots_) {
    w.u8(static_cast<std::uint8_t>(s.state));
    if (s.state == PageState::kValid) nand::save(w, s.data);
  }
}

void TlcBlock::load(ser::Reader& r) {
  if (r.u8() != static_cast<std::uint8_t>(kind_)) {
    r.fail();
    return;
  }
  erase_count_ = r.u64();
  if (r.u64() != slots_.size()) {
    r.fail();
    return;
  }
  state_.reset();
  pass_counts_ = {0, 0, 0};
  programmed_ = 0;
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    const std::uint8_t raw = r.u8();
    if (raw > static_cast<std::uint8_t>(PageState::kCorrupted)) {
      r.fail();
      return;
    }
    Slot& s = slots_[i];
    s.state = static_cast<PageState>(raw);
    s.data = PageData{};
    if (s.state == PageState::kValid) nand::load(r, s.data);
    // Pass progression and counters derive from the slot states; iterating
    // flat indices visits L, C, M of each word line in pass order.
    if (s.state != PageState::kErased) {
      const TlcPagePos pos{i / 3, static_cast<TlcPageType>(i % 3)};
      state_.mark_programmed(pos);
      ++programmed_;
      ++pass_counts_[static_cast<std::size_t>(pos.type)];
    }
  }
}

void TlcChip::save(ser::Writer& w) const {
  w.u64(blocks_.size());
  for (const TlcBlock& b : blocks_) b.save(w);
  w.i64(busy_until_);
  w.u64(counters_.reads);
  w.u64(counters_.lsb_programs);
  w.u64(counters_.msb_programs);
  w.u64(counters_.erases);
  w.boolean(last_program_.has_value());
  if (last_program_) {
    w.u32(last_program_->block);
    w.u32(last_program_->pos.wordline);
    w.u8(static_cast<std::uint8_t>(last_program_->pos.type));
    w.i64(last_program_->start);
    w.i64(last_program_->complete);
  }
  for (const BlockWear& wear : wear_) nand::save(w, wear);
}

void TlcChip::load(ser::Reader& r) {
  if (r.u64() != blocks_.size()) {
    r.fail();
    return;
  }
  for (TlcBlock& b : blocks_) b.load(r);
  busy_until_ = r.i64();
  counters_.reads = r.u64();
  counters_.lsb_programs = r.u64();
  counters_.msb_programs = r.u64();
  counters_.erases = r.u64();
  last_program_.reset();
  if (r.boolean()) {
    InFlight p;
    p.block = r.u32();
    p.pos.wordline = r.u32();
    p.pos.type = static_cast<TlcPageType>(r.u8());
    p.start = r.i64();
    p.complete = r.i64();
    last_program_ = p;
  }
  for (BlockWear& wear : wear_) nand::load(r, wear);
}

void TlcDevice::save(ser::Writer& w) const {
  w.u64(chips_.size());
  for (const auto& chip : chips_) chip->save(w);
  w.u64(channel_busy_until_.size());
  for (const Microseconds busy : channel_busy_until_) w.i64(busy);
  nand::save(w, attribution_.counters);
}

void TlcDevice::load(ser::Reader& r) {
  if (r.u64() != chips_.size()) {
    r.fail();
    return;
  }
  for (const auto& chip : chips_) chip->load(r);
  if (r.u64() != channel_busy_until_.size()) {
    r.fail();
    return;
  }
  for (Microseconds& busy : channel_busy_until_) busy = r.i64();
  nand::load(r, attribution_.counters);
}

}  // namespace rps::nand
