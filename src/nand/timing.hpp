// Operation latencies of the simulated MLC NAND device.
//
// Defaults follow the paper: 500 us LSB program, 2000 us MSB program
// (Section 1, citing 2X-nm MLC parts), 40 us page read (Section 3.3's
// reboot-cost estimate). Erase and bus-transfer times are typical values
// for the same device class.
#pragma once

#include <cstdint>

#include "src/util/types.hpp"

namespace rps::nand {

struct TimingSpec {
  Microseconds read_us = 40;         // cell sensing, occupies the chip
  Microseconds program_lsb_us = 500;
  Microseconds program_msb_us = 2000;
  Microseconds erase_us = 3500;
  /// Channel-bus occupancy to move one page between controller and chip.
  /// 4 KB over a 400 MB/s toggle-DDR interface is ~10 us.
  Microseconds transfer_us = 10;

  /// Program-suspend support: cost of suspending and later resuming an
  /// in-flight program so a read can jump the queue. 0 keeps the feature
  /// available but free; suspension itself is enabled per-device.
  Microseconds suspend_resume_us = 30;
  /// Reads may preempt one program at most this many times (unbounded
  /// suspension would starve the program).
  std::uint32_t max_suspends_per_program = 4;

  static constexpr TimingSpec paper() { return TimingSpec{}; }

  /// An idealized zero-latency spec for logic-only unit tests.
  static constexpr TimingSpec zero() {
    return TimingSpec{.read_us = 0,
                      .program_lsb_us = 0,
                      .program_msb_us = 0,
                      .erase_us = 0,
                      .transfer_us = 0,
                      .suspend_resume_us = 0,
                      .max_suspends_per_program = 4};
  }

  friend constexpr bool operator==(const TimingSpec&, const TimingSpec&) = default;
};

}  // namespace rps::nand
