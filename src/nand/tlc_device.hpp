// TLC device model: blocks, chips and the multi-channel device for
// 3-bit-per-cell NAND, mirroring the MLC stack (block.hpp / chip.hpp /
// device.hpp) over the TLC constraint engine of tlc.hpp.
//
// Timing reflects shadow-programmed TLC parts: the three passes get
// progressively slower (coarse LSB placement, intermediate CSB, fine MSB),
// and the asymmetry the paper exploits on MLC is even steeper here.
// Power-loss semantics follow the destructive-reprogram rule: a pass
// interrupted mid-flight destroys every previously programmed page of the
// same word line (the pass physically re-places those cells' charge).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/nand/attribution.hpp"
#include "src/nand/block.hpp"  // PageData, PageState, kNonHostSpareFlag
#include "src/nand/chip.hpp"   // OpTiming, OpCounters
#include "src/nand/tlc.hpp"
#include "src/util/result.hpp"
#include "src/util/types.hpp"

namespace rps::ser {
class Writer;
class Reader;
}  // namespace rps::ser

namespace rps::nand {

struct TlcTimingSpec {
  Microseconds read_us = 60;
  Microseconds program_lsb_us = 400;
  Microseconds program_csb_us = 1100;
  Microseconds program_msb_us = 2600;
  Microseconds erase_us = 5000;
  Microseconds transfer_us = 10;

  static constexpr TlcTimingSpec nominal() { return TlcTimingSpec{}; }

  [[nodiscard]] constexpr Microseconds program_us(TlcPageType type) const {
    switch (type) {
      case TlcPageType::kLsb: return program_lsb_us;
      case TlcPageType::kCsb: return program_csb_us;
      case TlcPageType::kMsb: return program_msb_us;
    }
    return 0;
  }
};

struct TlcGeometry {
  std::uint32_t channels = 2;
  std::uint32_t chips_per_channel = 2;
  std::uint32_t blocks_per_chip = 64;
  std::uint32_t wordlines_per_block = 32;  // 3 pages per word line
  std::uint32_t page_size_bytes = 4096;

  [[nodiscard]] constexpr std::uint32_t num_chips() const {
    return channels * chips_per_channel;
  }
  [[nodiscard]] constexpr std::uint32_t pages_per_block() const {
    return wordlines_per_block * 3;
  }
  [[nodiscard]] constexpr std::uint64_t total_pages() const {
    return static_cast<std::uint64_t>(num_chips()) * blocks_per_chip *
           pages_per_block();
  }
  [[nodiscard]] constexpr std::uint32_t channel_of_chip(std::uint32_t chip) const {
    return chip / chips_per_channel;
  }
};

struct TlcPageAddress {
  std::uint32_t chip = 0;
  std::uint32_t block = 0;
  TlcPagePos pos;

  friend constexpr bool operator==(const TlcPageAddress&, const TlcPageAddress&) = default;
};

class TlcBlock {
 public:
  TlcBlock(std::uint32_t wordlines, TlcSequenceKind kind);

  [[nodiscard]] std::uint32_t wordlines() const { return state_.wordlines(); }
  [[nodiscard]] Status can_program(TlcPagePos pos) const {
    return check_tlc_program_legality(state_, pos, kind_);
  }
  Status program(TlcPagePos pos, PageData data);
  [[nodiscard]] Result<PageData> read(TlcPagePos pos) const;
  [[nodiscard]] PageState page_state(TlcPagePos pos) const {
    return slots_[pos.flat_index()].state;
  }
  void erase();
  void corrupt(TlcPagePos pos);

  [[nodiscard]] std::uint64_t erase_count() const { return erase_count_; }
  [[nodiscard]] std::uint32_t programmed_pages() const { return programmed_; }
  [[nodiscard]] bool is_fully_programmed() const {
    return programmed_ == wordlines() * 3;
  }
  [[nodiscard]] bool is_erased() const { return programmed_ == 0; }
  /// Pages programmed in pass `type` so far.
  [[nodiscard]] std::uint32_t programmed_in_pass(TlcPageType type) const {
    return pass_counts_[static_cast<std::size_t>(type)];
  }
  /// Next legal page of pass `type` (the per-pass frontier), if any.
  [[nodiscard]] std::optional<TlcPagePos> next_in_pass(TlcPageType type) const;

  /// Snapshot support (same contract as mlc Block::save/load).
  void save(ser::Writer& w) const;
  void load(ser::Reader& r);

 private:
  struct Slot {
    PageState state = PageState::kErased;
    PageData data;
  };

  TlcSequenceKind kind_;
  TlcBlockState state_;
  std::vector<Slot> slots_;
  std::array<std::uint32_t, 3> pass_counts_{0, 0, 0};
  std::uint32_t programmed_ = 0;
  std::uint64_t erase_count_ = 0;
};

class TlcChip {
 public:
  TlcChip(std::uint32_t blocks, std::uint32_t wordlines, TlcSequenceKind kind,
          const TlcTimingSpec& timing);

  [[nodiscard]] const TlcBlock& block(std::uint32_t b) const { return blocks_.at(b); }
  [[nodiscard]] TlcBlock& block(std::uint32_t b) { return blocks_.at(b); }
  [[nodiscard]] Microseconds busy_until() const { return busy_until_; }

  Result<OpTiming> program(std::uint32_t b, TlcPagePos pos, PageData data,
                           Microseconds now);
  struct ReadOutcome {
    OpTiming timing;
    Result<PageData> data = ErrorCode::kNotProgrammed;
  };
  Result<ReadOutcome> read(std::uint32_t b, TlcPagePos pos, Microseconds now);
  Result<OpTiming> erase(std::uint32_t b, Microseconds now);

  struct InFlight {
    std::uint32_t block = 0;
    TlcPagePos pos;
    Microseconds start = 0;
    Microseconds complete = 0;
  };
  /// Power loss: an interrupted pass destroys the in-flight page and every
  /// lower pass of the same word line.
  std::optional<InFlight> apply_power_loss(Microseconds t);

  [[nodiscard]] const OpCounters& counters() const { return counters_; }
  [[nodiscard]] std::uint64_t total_erase_count() const;

  /// Attribution + wear ledger, same contract as the MLC Chip (TLC erases
  /// are eager, so there is no voiding path to roll back).
  void attach_attribution(DeviceAttribution* attr) { attr_ = attr; }
  [[nodiscard]] const std::vector<BlockWear>& wear_ledger() const { return wear_; }

  /// Snapshot support.
  void save(ser::Writer& w) const;
  void load(ser::Reader& r);

 private:
  Microseconds occupy(Microseconds now, Microseconds latency);

  std::vector<TlcBlock> blocks_;
  std::vector<BlockWear> wear_;  // physical-block-indexed, preallocated
  TlcTimingSpec timing_;
  Microseconds busy_until_ = 0;
  OpCounters counters_;
  DeviceAttribution* attr_ = nullptr;  // borrowed; null = unattributed
  std::optional<InFlight> last_program_;
};

class TlcDevice {
 public:
  TlcDevice(const TlcGeometry& geometry, const TlcTimingSpec& timing,
            TlcSequenceKind kind);

  [[nodiscard]] const TlcGeometry& geometry() const { return geometry_; }
  [[nodiscard]] const TlcTimingSpec& timing() const { return timing_; }
  [[nodiscard]] TlcSequenceKind sequence_kind() const { return kind_; }
  [[nodiscard]] TlcChip& chip(std::uint32_t c) { return *chips_.at(c); }
  [[nodiscard]] const TlcChip& chip(std::uint32_t c) const { return *chips_.at(c); }

  Result<OpTiming> program(const TlcPageAddress& addr, PageData data, Microseconds now);
  struct ReadResult {
    OpTiming timing;
    Result<PageData> data = ErrorCode::kNotProgrammed;
  };
  Result<ReadResult> read(const TlcPageAddress& addr, Microseconds now);
  Result<OpTiming> erase(std::uint32_t chip, std::uint32_t block, Microseconds now);

  struct PowerLossVictim {
    std::uint32_t chip = 0;
    std::uint32_t block = 0;
    TlcPagePos pos;
  };
  std::vector<PowerLossVictim> inject_power_loss(Microseconds t);

  [[nodiscard]] OpCounters total_counters() const;
  [[nodiscard]] std::uint64_t total_erase_count() const;
  [[nodiscard]] Microseconds all_idle_at() const;

  /// Cause-tagged attribution (same contract as NandDevice): always on,
  /// bracketed by the FTL via CauseScope, conserved against
  /// total_counters().
  WriteCause set_write_cause(WriteCause cause) {
    const WriteCause previous = attribution_.cause;
    attribution_.cause = cause;
    return previous;
  }
  [[nodiscard]] WriteCause write_cause() const { return attribution_.cause; }
  [[nodiscard]] const AttributionCounters& attribution() const {
    return attribution_.counters;
  }

  /// Snapshot support.
  void save(ser::Writer& w) const;
  void load(ser::Reader& r);

 private:
  [[nodiscard]] bool in_range(const TlcPageAddress& addr) const;
  Microseconds occupy_channel(std::uint32_t channel, Microseconds now);

  TlcGeometry geometry_;
  TlcTimingSpec timing_;
  TlcSequenceKind kind_;
  std::vector<std::unique_ptr<TlcChip>> chips_;
  std::vector<Microseconds> channel_busy_until_;
  DeviceAttribution attribution_;  // chips hold borrowed pointers into this
};

}  // namespace rps::nand
