// Cause-tagged program/erase attribution and the per-block wear ledger.
//
// Every program and erase the device commits is charged to exactly one
// WriteCause — the FTL layer brackets its write paths with a CauseScope so
// the device knows *why* each op happened — and, for host-visible pages,
// to the FDP write stream carried in the spare word. The counters are
// always on (like OpCounters): attribution is a device invariant, not an
// observer, so conservation (attributed sums == OpCounters, exactly) holds
// at every instant including across power-loss voiding of pending erases.
//
// The wear ledger is the per-physical-block view of the same events:
// program count, erase count and last-erase sim-time per block, maintained
// by the chip at commit time. Both structures are fixed-size PODs
// preallocated at construction — the hot path adds no allocations and the
// disabled-observer norm (one branch per site) is preserved trivially:
// there is nothing to disable.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/util/types.hpp"

namespace rps::ser {
class Writer;
class Reader;
}  // namespace rps::ser

namespace rps::nand {

/// Why a program/erase happened. The FTL layer is responsible for keeping
/// the device's active cause honest around every write path (CauseScope).
enum class WriteCause : std::uint8_t {
  kHost = 0,    // host write path (FtlBase::host_program / TLC write_pass)
  kGcCopy,      // garbage-collection valid-page relocation + victim erase
  kWearLevel,   // static wear-leveling migration
  kParity,      // parity-backup flush / parity-block reclaim
  kBackup,      // rtfFTL paired-LSB backup programs
  kScrub,       // read-disturb scrub migration
  kMeta,        // mapping rebuild / recovery reads-writes, misc FTL metadata
};

inline constexpr std::size_t kNumWriteCauses = 7;

/// Stream slots tracked exactly; tags >= kStreamSlots share one overflow
/// bucket (slot kStreamSlots). 32 exact slots cover the QoS frontend's
/// tenant range with room to spare.
inline constexpr std::size_t kStreamSlots = 32;

[[nodiscard]] const char* to_string(WriteCause cause);

/// Per-cause and per-stream op totals for one device. Conservation
/// invariants (enforced by tests/test_metrics.cpp against OpCounters):
///   sum(lsb_programs)  == ops.lsb_programs
///   sum(msb_programs)  == ops.msb_programs
///   sum(erases)        == ops.erases
///   meta_programs + sum(stream_programs) == ops.programs()
struct AttributionCounters {
  std::array<std::uint64_t, kNumWriteCauses> lsb_programs{};
  std::array<std::uint64_t, kNumWriteCauses> msb_programs{};
  std::array<std::uint64_t, kNumWriteCauses> erases{};
  /// Host-visible pages only, bucketed by FDP stream tag (GC copies
  /// inherit the tag with the page, so stream ownership survives
  /// relocation). Slot kStreamSlots is the >= kStreamSlots overflow.
  std::array<std::uint64_t, kStreamSlots + 1> stream_programs{};
  /// Pages flagged kNonHostSpareFlag (parity, paired-LSB backups).
  std::uint64_t meta_programs = 0;

  [[nodiscard]] std::uint64_t programs(WriteCause c) const {
    const auto i = static_cast<std::size_t>(c);
    return lsb_programs[i] + msb_programs[i];
  }
  [[nodiscard]] std::uint64_t cause_erases(WriteCause c) const {
    return erases[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t total_lsb_programs() const {
    std::uint64_t t = 0;
    for (const std::uint64_t v : lsb_programs) t += v;
    return t;
  }
  [[nodiscard]] std::uint64_t total_msb_programs() const {
    std::uint64_t t = 0;
    for (const std::uint64_t v : msb_programs) t += v;
    return t;
  }
  [[nodiscard]] std::uint64_t total_programs() const {
    return total_lsb_programs() + total_msb_programs();
  }
  [[nodiscard]] std::uint64_t total_erases() const {
    std::uint64_t t = 0;
    for (const std::uint64_t v : erases) t += v;
    return t;
  }
  [[nodiscard]] std::uint64_t total_stream_programs() const {
    std::uint64_t t = 0;
    for (const std::uint64_t v : stream_programs) t += v;
    return t;
  }

  AttributionCounters& operator+=(const AttributionCounters& other) {
    for (std::size_t i = 0; i < kNumWriteCauses; ++i) {
      lsb_programs[i] += other.lsb_programs[i];
      msb_programs[i] += other.msb_programs[i];
      erases[i] += other.erases[i];
    }
    for (std::size_t i = 0; i < stream_programs.size(); ++i) {
      stream_programs[i] += other.stream_programs[i];
    }
    meta_programs += other.meta_programs;
    return *this;
  }

  friend bool operator==(const AttributionCounters&, const AttributionCounters&) = default;
};

/// The difference a - b, fieldwise (run deltas, like Registry).
[[nodiscard]] AttributionCounters delta(const AttributionCounters& a,
                                        const AttributionCounters& b);

/// Canonical byte encoding (device snapshots).
void save(ser::Writer& w, const AttributionCounters& c);
void load(ser::Reader& r, AttributionCounters& c);

/// The device-owned attribution state every chip of the device charges
/// into: the currently active cause plus the accumulated counters. Owned
/// by NandDevice / TlcDevice; chips hold a borrowed pointer (null for
/// standalone chips in unit tests — their ops are simply unattributed).
struct DeviceAttribution {
  WriteCause cause = WriteCause::kHost;
  AttributionCounters counters;

  /// Charge one committed program. `spare` is the page's OOB word (meta
  /// flag + stream tag); callers pass it *before* moving the PageData.
  void note_program(bool lsb, bool meta_page, std::uint32_t stream) {
    const auto c = static_cast<std::size_t>(cause);
    if (lsb) {
      ++counters.lsb_programs[c];
    } else {
      ++counters.msb_programs[c];
    }
    if (meta_page) {
      ++counters.meta_programs;
    } else {
      ++counters.stream_programs[stream < kStreamSlots ? stream : kStreamSlots];
    }
  }
  void note_erase() { ++counters.erases[static_cast<std::size_t>(cause)]; }
  /// Undo an erase charged under `charged_cause` (power loss voided it).
  void void_erase(WriteCause charged_cause) {
    --counters.erases[static_cast<std::size_t>(charged_cause)];
  }
};

/// RAII cause bracket over anything exposing
/// `WriteCause set_write_cause(WriteCause)` (NandDevice, TlcDevice).
/// Nests correctly: the previous cause is restored on scope exit, so a
/// parity flush fired from inside a host write re-exposes kHost after.
template <typename DeviceT>
class CauseScope {
 public:
  CauseScope(DeviceT& device, WriteCause cause)
      : device_(device), previous_(device.set_write_cause(cause)) {}
  ~CauseScope() { device_.set_write_cause(previous_); }
  CauseScope(const CauseScope&) = delete;
  CauseScope& operator=(const CauseScope&) = delete;

 private:
  DeviceT& device_;
  WriteCause previous_;
};

/// One physical block's ledger entry. Counts are charged when the op is
/// charged to the chip timeline (same instant as OpCounters), and a
/// power-loss-voided pending erase is rolled back here too — the ledger
/// always sums to the device counters.
struct BlockWear {
  std::uint64_t programs = 0;
  std::uint64_t erases = 0;
  Microseconds last_erase_us = -1;  // sim-time of the last charged erase

  friend bool operator==(const BlockWear&, const BlockWear&) = default;
};

void save(ser::Writer& w, const BlockWear& wear);
void load(ser::Reader& r, BlockWear& wear);

}  // namespace rps::nand
