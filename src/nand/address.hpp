// Page addressing for the MLC NAND model.
//
// A physical page is identified word-line-centrically: (chip, block,
// word line, LSB|MSB). This makes the paper's program-order constraints —
// which are all phrased over word lines and page types — direct to express.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "src/nand/geometry.hpp"

namespace rps::nand {

/// Which bit of the 2-bit MLC cell a page maps to.
enum class PageType : std::uint8_t { kLsb = 0, kMsb = 1 };

constexpr const char* to_string(PageType type) {
  return type == PageType::kLsb ? "LSB" : "MSB";
}

constexpr PageType paired_type(PageType type) {
  return type == PageType::kLsb ? PageType::kMsb : PageType::kLsb;
}

/// Position of a page within a block.
struct PagePos {
  std::uint32_t wordline = 0;
  PageType type = PageType::kLsb;

  /// Flat index within the block: LSB(k) -> 2k, MSB(k) -> 2k+1.
  /// (A storage index, unrelated to any program order.)
  [[nodiscard]] constexpr std::uint32_t flat_index() const {
    return wordline * 2 + (type == PageType::kMsb ? 1u : 0u);
  }
  static constexpr PagePos from_flat(std::uint32_t index) {
    return PagePos{index / 2, (index % 2) ? PageType::kMsb : PageType::kLsb};
  }

  [[nodiscard]] std::string to_string() const {
    return std::string(nand::to_string(type)) + "(" + std::to_string(wordline) + ")";
  }

  friend constexpr bool operator==(const PagePos&, const PagePos&) = default;
};

/// Fully-qualified physical page address. `chip` is the flat *unit*
/// index — one (die, plane) pair, see Geometry — so with one plane per
/// die it is exactly the global chip index. `block` is FTL-visible: the
/// device's bad-block table may remap it to a spare physical block.
struct PageAddress {
  std::uint32_t chip = 0;   // flat unit index (die * planes + plane)
  std::uint32_t block = 0;  // block index within the unit
  PagePos pos;

  [[nodiscard]] std::string to_string() const {
    return "chip" + std::to_string(chip) + "/blk" + std::to_string(block) +
           "/" + pos.to_string();
  }

  friend constexpr bool operator==(const PageAddress&, const PageAddress&) = default;
};

/// Physical block address (`chip` is a flat unit index, like PageAddress).
struct BlockAddress {
  std::uint32_t chip = 0;
  std::uint32_t block = 0;

  friend constexpr bool operator==(const BlockAddress&, const BlockAddress&) = default;
  friend constexpr auto operator<=>(const BlockAddress&, const BlockAddress&) = default;
};

/// The fully-decomposed (channel, die, plane) coordinates that a flat
/// PageAddress encodes. The hot paths stay on the flat unit index; this
/// form is for boundaries where physical layout matters — trace lanes,
/// bad-block records, log output.
struct PhysicalAddress {
  std::uint32_t channel = 0;
  std::uint32_t chip = 0;   // die index within the device
  std::uint32_t plane = 0;  // plane index within the die
  std::uint32_t block = 0;
  PagePos pos;

  static constexpr PhysicalAddress from_page(const Geometry& g,
                                             const PageAddress& addr) {
    const std::uint32_t die = g.chip_of_unit(addr.chip);
    return PhysicalAddress{g.channel_of_chip(die), die, g.plane_of_unit(addr.chip),
                           addr.block, addr.pos};
  }

  [[nodiscard]] constexpr PageAddress to_page(const Geometry& g) const {
    return PageAddress{g.unit_of(chip, plane), block, pos};
  }

  [[nodiscard]] std::string to_string() const {
    return "ch" + std::to_string(channel) + "/chip" + std::to_string(chip) +
           "/pl" + std::to_string(plane) + "/blk" + std::to_string(block) + "/" +
           pos.to_string();
  }

  friend constexpr bool operator==(const PhysicalAddress&, const PhysicalAddress&) = default;
};

}  // namespace rps::nand

template <>
struct std::hash<rps::nand::BlockAddress> {
  std::size_t operator()(const rps::nand::BlockAddress& a) const noexcept {
    return (static_cast<std::size_t>(a.chip) << 32) ^ a.block;
  }
};
