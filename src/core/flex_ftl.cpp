#include "src/core/flex_ftl.hpp"

#include <algorithm>
#include <cassert>

#include "src/obs/trace.hpp"
#include "src/util/serialize.hpp"

namespace rps::core {

namespace {

PolicyManager::Params policy_params(const ftl::FtlConfig& config) {
  PolicyManager::Params p;
  p.u_high = config.u_high;
  p.u_low = config.u_low;
  // The quota starts at a fraction of all LSB pages in the device
  // (Section 3.2: 5%). There is one LSB page per word line.
  const auto total_lsb_pages =
      static_cast<double>(config.geometry.total_blocks()) *
      config.geometry.wordlines_per_block;
  p.initial_quota =
      static_cast<std::int64_t>(total_lsb_pages * config.initial_quota_fraction);
  p.chips = config.geometry.num_units();
  return p;
}

}  // namespace

FlexFtl::FlexFtl(const ftl::FtlConfig& config)
    : FtlBase(config, nand::SequenceKind::kRps),
      chips_(config.geometry.num_units()),
      policy_(policy_params(config)) {
  // A chip's parity tables key on its own block numbers, so blocks_per_chip
  // bounds their population — reserving up front keeps the per-write
  // coverage bookkeeping rehash-free for the whole run.
  for (ChipState& chip : chips_) {
    chip.parity_durable.reserve(config.geometry.blocks_per_chip);
    chip.parity_page.reserve(config.geometry.blocks_per_chip);
  }
}

nand::PageData FlexFtl::zeroed_parity() {
  nand::PageData d;
  d.lpn = 0;  // XOR identity; PageData's default LPN is the all-ones sentinel
  return d;
}

Result<Microseconds> FlexFtl::write_lsb(std::uint32_t chip, Lpn lpn,
                                        nand::PageData data, Microseconds now,
                                        bool gc, bool cold) {
  ChipState& cs = chips_.at(chip);
  std::optional<std::uint32_t>& fast_slot = cold ? cs.cold_fast : cs.fast;
  nand::PageData& acc = cold ? cs.cold_acc : cs.parity_acc;
  RingBuffer<std::uint32_t>& queue = cold ? cs.cold_sbqueue : cs.sbqueue;
  if (!fast_slot) {
    // Host-path allocation may trigger foreground GC whose copies recurse
    // into write_lsb and install a fast block; re-check before installing
    // our own (clobbering it would orphan a half-filled active block).
    if (!gc && blocks_.free_blocks(chip) <= config_.gc_reserve_blocks) {
      const Status freed = ensure_free_block(chip, now);
      if (!freed.is_ok() && !fast_slot) return freed.code();
    }
    if (!fast_slot) {
      Result<std::uint32_t> block = blocks_.allocate(
          chip, ftl::BlockUse::kActive, gc ? 0 : config_.gc_reserve_blocks);
      if (!block.is_ok()) return block.code();
      fast_slot = block.value();
      acc = zeroed_parity();
    }
  }

  const std::uint32_t fast = *fast_slot;
  nand::Block& block = device_.block_mut({chip, fast});
  const std::optional<nand::PagePos> pos = block.next_lsb();
  assert(pos.has_value());  // invariant: an active fast block has LSB space
  const nand::PageAddress addr{chip, fast, *pos};

  acc.xor_with(data);  // parity page buffer accumulates every LSB
  Result<nand::OpTiming> timing = device_.program(addr, std::move(data), now);
  assert(timing.is_ok());
  commit_mapping(lpn, addr);
  policy_.note_lsb_write();
  if (!gc) {
    ++stats_.host_lsb_writes;
    ++lsb_since_idle_;
  }

  if (!block.next_lsb()) {
    // Last LSB page written: flush the accumulated parity page, then the
    // block joins its slow-block queue (Fig. 6's fast -> slow transition).
    if (trace_ != nullptr) {
      trace_->record(obs::EventKind::kBlockFastToSlow, chip + 1,
                     timing.value().complete, -1, fast);
    }
    flush_parity_from(chip, fast, acc, timing.value().complete);
    queue.push_back(fast);
    fast_slot.reset();
  }
  return timing.value().complete;
}

Microseconds FlexFtl::flush_parity(std::uint32_t chip, std::uint32_t fast_block,
                                   Microseconds now) {
  return flush_parity_from(chip, fast_block, chips_.at(chip).parity_acc, now);
}

Microseconds FlexFtl::flush_parity_from(std::uint32_t chip, std::uint32_t fast_block,
                                        const nand::PageData& acc, Microseconds now) {
  // Attribution: the parity program is backup overhead, whatever write
  // path (host LSB completion, GC) triggered the flush.
  const nand::CauseScope cause(device_, nand::WriteCause::kParity);
  ChipState& cs = chips_.at(chip);
  if (!cs.backup) {
    // Never take the final free block: GC depends on it as a relocation
    // destination when the SBQueue is empty.
    Result<std::uint32_t> block =
        blocks_.allocate(chip, ftl::BlockUse::kBackup, /*reserve=*/1);
    if (!block.is_ok()) {
      // No backup space: the block proceeds unprotected (counted, and the
      // recovery path reports such pages as lost).
      ++skipped_backups_;
      if (trace_ != nullptr) {
        trace_->record(obs::EventKind::kParityFlush, chip + 1, now, -1,
                       fast_block, 0, /*skipped=*/1);
      }
      return now;
    }
    cs.backup = BackupBlock{.block = block.value(), .next_lsb = 0, .live_pages = 0};
  }

  // Parity pages go to the backup block's LSB pages only (footnote 2) —
  // consecutive LSB programs are exactly what RPS makes legal.
  const nand::PageAddress dst{chip, cs.backup->block,
                              {cs.backup->next_lsb, nand::PageType::kLsb}};
  // The parity page is the XOR of the block's LSB pages — including their
  // LPN fields, which is what lets recovery reconstruct a lost page's LPN.
  // Only the spare word is claimed for the inverse map (host pages keep
  // spare = 0, so recovery can still XOR it away).
  nand::PageData parity = acc;
  // Inverse map for power-off recovery, plus the metadata flag that keeps
  // mapping reconstruction from mistaking the parity page for host data.
  parity.spare = fast_block | nand::kNonHostSpareFlag;
  Result<nand::OpTiming> timing = device_.program(dst, std::move(parity), now);
  assert(timing.is_ok());
  ++cs.backup->next_lsb;
  ++cs.backup->live_pages;
  blocks_.add_written({chip, cs.backup->block});
  ++stats_.backup_pages;

  util::recycled_assign(cs.parity_page, cs.page_spares, fast_block, dst);
  util::recycled_assign(cs.parity_durable, cs.durable_spares, fast_block,
                        timing.value().complete);

  if (trace_ != nullptr) {
    trace_->record(obs::EventKind::kParityFlush, chip + 1, now,
                   timing.value().complete - now, fast_block, dst.block,
                   /*skipped=*/0);
  }

  if (cs.backup->next_lsb >= device_.geometry().wordlines_per_block) {
    cs.retiring.push_back(*cs.backup);
    cs.backup.reset();
  }
  return timing.value().complete;
}

void FlexFtl::invalidate_parity(std::uint32_t chip, std::uint32_t slow_block,
                                Microseconds now) {
  ChipState& cs = chips_.at(chip);
  const auto durable = cs.parity_durable.find(slow_block);
  if (durable != cs.parity_durable.end()) {
    util::recycled_erase(cs.parity_durable, cs.durable_spares, durable);
  }
  const auto it = cs.parity_page.find(slow_block);
  if (it == cs.parity_page.end()) return;  // was never protected
  const std::uint32_t backup_block = it->second.block;
  util::recycled_erase(cs.parity_page, cs.page_spares, it);
  release_parity_page(chip, backup_block, now);
}

void FlexFtl::release_parity_page(std::uint32_t chip, std::uint32_t backup_block,
                                  Microseconds now) {
  ChipState& cs = chips_.at(chip);
  if (cs.backup && cs.backup->block == backup_block) {
    assert(cs.backup->live_pages > 0);
    --cs.backup->live_pages;
    return;
  }
  for (auto retiring = cs.retiring.begin(); retiring != cs.retiring.end(); ++retiring) {
    if (retiring->block != backup_block) continue;
    assert(retiring->live_pages > 0);
    if (--retiring->live_pages == 0) {
      // Every parity page in this retired backup block is stale: recycle.
      // The erase is parity overhead regardless of what released the page.
      const nand::CauseScope cause(device_, nand::WriteCause::kParity);
      const Result<nand::OpTiming> erased = erase_block({chip, backup_block}, now);
      assert(erased.is_ok());
      (void)erased;
      blocks_.release({chip, backup_block});
      cs.retiring.erase(retiring);
    }
    return;
  }
}

void FlexFtl::prune_retire_log(std::uint32_t chip, Microseconds now) {
  std::vector<ChipState::RetirementLogEntry>& log = chips_.at(chip).retire_log;
  std::erase_if(log, [now](const ChipState::RetirementLogEntry& entry) {
    return entry.at <= now;
  });
}

Result<Microseconds> FlexFtl::write_msb(std::uint32_t chip, Lpn lpn,
                                        nand::PageData data, Microseconds now,
                                        bool gc, bool prefer_cold) {
  ChipState& cs = chips_.at(chip);
  // Stream preference with cross-stream fallback (deadlock safety).
  RingBuffer<std::uint32_t>* queue = prefer_cold ? &cs.cold_sbqueue : &cs.sbqueue;
  RingBuffer<std::uint32_t>* other = prefer_cold ? &cs.sbqueue : &cs.cold_sbqueue;
  if (queue->empty()) queue = other;
  if (queue->empty()) return ErrorCode::kNoFreePage;
  // FIFO: the head of the SBQueue is the active slow block (Section 3.1).
  const std::uint32_t slow = queue->front();
  nand::Block& block = device_.block_mut({chip, slow});
  const std::optional<nand::PagePos> pos = block.next_msb();
  assert(pos.has_value());  // invariant: SBQueue blocks have MSB space

  // The block's parity page must be durable before its (destructive) MSB
  // phase begins; normally it became durable long ago.
  Microseconds start = now;
  const auto durable = cs.parity_durable.find(slow);
  if (durable != cs.parity_durable.end()) start = std::max(start, durable->second);

  const nand::PageAddress addr{chip, slow, *pos};
  Result<nand::OpTiming> timing = device_.program(addr, std::move(data), start);
  assert(timing.is_ok());
  commit_mapping(lpn, addr);
  policy_.note_msb_write();
  if (!gc) ++stats_.host_msb_writes;

  if (block.is_fully_programmed()) {
    // Slow -> full transition: the backup parity page is no longer needed.
    // The bookkeeping retires eagerly (deferring it would shift free-pool
    // dynamics), but the retirement only becomes *irrevocable* once this
    // final MSB program completes — until then a power cut destroys the
    // paired LSB page with that parity page as its only copy. Log it so
    // recovery can void it; the parity media survives the cut because any
    // backup-block erase the release charges starts after `complete` and
    // is voided by the chip's lazy-erase power-loss rules.
    blocks_.set_use({chip, slow}, ftl::BlockUse::kFull);
    queue->pop_front();
    if (trace_ != nullptr) {
      trace_->record(obs::EventKind::kBlockSlowToFull, chip + 1,
                     timing.value().complete, -1, slow);
    }
    prune_retire_log(chip, timing.value().start);
    const auto parity_it = cs.parity_page.find(slow);
    if (parity_it != cs.parity_page.end()) {
      cs.retire_log.push_back({slow, timing.value().complete, parity_it->second});
    }
    invalidate_parity(chip, slow, timing.value().complete);
  }
  return timing.value().complete;
}

Result<Microseconds> FlexFtl::allocate_host_page(std::uint32_t chip, Lpn lpn,
                                                 nand::PageData data, Microseconds now,
                                                 double buffer_utilization) {
  ChipState& cs = chips_.at(chip);
  const bool has_slow = !cs.sbqueue.empty() || !cs.cold_sbqueue.empty();
  nand::PageType choice = policy_.choose(chip, buffer_utilization, has_slow);

  // Block-pool-status feedback (Fig. 5: the block pool manager reports its
  // state to the page allocator to balance page-type consumption): when
  // free LSB capacity is nearly exhausted but MSB capacity is banked in the
  // SBQueue, consume MSB pages instead of forcing foreground GC.
  if (choice == nand::PageType::kLsb && has_slow) {
    const bool lsb_starved =
        blocks_.free_blocks(chip) <= config_.gc_reserve_blocks + 2 && !cs.fast;
    const bool sbqueue_bloated =
        cs.sbqueue.size() + cs.cold_sbqueue.size() >
        device_.geometry().blocks_per_chip / 2;
    if (lsb_starved || sbqueue_bloated) choice = nand::PageType::kMsb;
  }

  // choose() only picks MSB when a slow block exists (footnote 1).
  if (choice == nand::PageType::kMsb && has_slow) {
    return write_msb(chip, lpn, std::move(data), now, /*gc=*/false);
  }
  return write_lsb(chip, lpn, std::move(data), now, /*gc=*/false);
}

Result<Microseconds> FlexFtl::allocate_gc_page(std::uint32_t chip, Lpn lpn,
                                               nand::PageData data, Microseconds now,
                                               bool background) {
  (void)background;
  // GC copies consume slow MSB pages (raising q); LSB only as a fallback.
  // With hot/cold separation on, copies live in their own stream.
  const bool cold = config_.separate_gc_stream;
  ChipState& cs = chips_.at(chip);
  const bool has_slow = !cs.sbqueue.empty() || !cs.cold_sbqueue.empty();
  if (has_slow) {
    return write_msb(chip, lpn, std::move(data), now, /*gc=*/true,
                     /*prefer_cold=*/cold);
  }
  return write_lsb(chip, lpn, std::move(data), now, /*gc=*/true, /*cold=*/cold);
}

void FlexFtl::on_idle_plan(Microseconds now, Microseconds deadline) {
  // Grace windows whose final MSB completed by now are settled: their log
  // entries can never be voided anymore.
  for (std::uint32_t chip = 0; chip < chips_.size(); ++chip) {
    prune_retire_log(chip, now);
  }
  // Burst observation happens on every idle, even ones too short to work
  // in — the predictor must see the workload's rhythm either way.
  if (config_.use_write_predictor) {
    if (lsb_since_idle_ > 0) predictor_.observe_burst(lsb_since_idle_);
    lsb_since_idle_ = 0;
  }

  FtlBase::on_idle_plan(now, deadline);
  // Same spill guard as the base background GC.
  deadline -= 2 * config_.timing.program_msb_us;
  if (deadline <= now) return;

  // Quota replenishment: while q is below its target, relocate victims
  // (copies go to MSB pages, each incrementing q) until the quota is back,
  // the idle window closes, or no victim passes the yield guard. The
  // target is the static ceiling, unless the write predictor (paper's
  // conclusion / future work) is enabled — then the observed burst sizes
  // bound how much idle GC is worth doing.
  std::int64_t target = policy_.initial_quota();
  if (config_.use_write_predictor) {
    const std::int64_t predicted = predictor_.predicted_demand();
    if (predicted >= 0) {
      target = std::min(target, std::max(policy_.quota(), predicted));
    }
  }
  const std::uint32_t chips = device_.geometry().num_units();
  std::uint32_t stalled = 0;
  std::uint32_t chip = bgc_rr_chip_ % chips;
  while (policy_.quota() < target && stalled < chips) {
    const bool msb_available = !chips_[chip].sbqueue.empty() ||
                               !chips_[chip].cold_sbqueue.empty();
    if (!msb_available || device_.chip(chip).busy_until() >= deadline ||
        blocks_.best_victim_gain(chip) <
            blocks_.pages_per_block() / config_.bgc_min_yield_divisor) {
      ++stalled;
      chip = (chip + 1) % chips;
      continue;
    }
    const std::optional<std::uint32_t> victim = blocks_.pick_victim(chip);
    if (!victim) {
      ++stalled;
      chip = (chip + 1) % chips;
      continue;
    }
    const Microseconds start = std::max(now, device_.chip(chip).busy_until());
    if (!collect_block(chip, *victim, start, deadline, /*background=*/true)) {
      ++stalled;
    } else {
      stalled = 0;
    }
    chip = (chip + 1) % chips;
  }
}

std::optional<Lpn> FlexFtl::find_lpn_of(const nand::PageAddress& addr) const {
  for (Lpn lpn = 0; lpn < mapping_.exported_pages(); ++lpn) {
    if (mapping_.maps_to(lpn, addr)) return lpn;
  }
  return std::nullopt;
}

std::optional<nand::PageAddress> FlexFtl::find_newest_copy(
    Lpn lpn, const nand::PageAddress& exclude) const {
  std::optional<nand::PageAddress> best;
  std::uint64_t best_version = 0;
  const nand::Geometry& geometry = device_.geometry();
  for (std::uint32_t chip = 0; chip < geometry.num_units(); ++chip) {
    for (std::uint32_t b = 0; b < device_.visible_blocks(); ++b) {
      if (device_.bad_blocks().is_retired(chip, b)) continue;
      const nand::Block& block = device_.block({chip, b});
      if (block.is_erased()) continue;
      for (std::uint32_t wl = 0; wl < geometry.wordlines_per_block; ++wl) {
        for (const nand::PageType type : {nand::PageType::kLsb, nand::PageType::kMsb}) {
          const nand::PagePos pos{wl, type};
          const nand::PageAddress addr{chip, b, pos};
          if (addr == exclude) continue;
          if (block.page_state(pos) != nand::PageState::kValid) continue;
          const Result<nand::PageData> data = block.read(pos);
          if (!data.is_ok()) continue;
          if (data.value().spare & nand::kNonHostSpareFlag) continue;
          if (data.value().lpn != lpn) continue;
          if (!best || data.value().version > best_version) {
            best = addr;
            best_version = data.value().version;
          }
        }
      }
    }
  }
  return best;
}

namespace {

void save_address(ser::Writer& w, const nand::PageAddress& addr) {
  w.u32(addr.chip);
  w.u32(addr.block);
  w.u32(addr.pos.wordline);
  w.u8(static_cast<std::uint8_t>(addr.pos.type));
}

void load_address(ser::Reader& r, nand::PageAddress& addr) {
  addr.chip = r.u32();
  addr.block = r.u32();
  addr.pos.wordline = r.u32();
  addr.pos.type = static_cast<nand::PageType>(r.u8());
}

void save_opt_block(ser::Writer& w, const std::optional<std::uint32_t>& block) {
  w.boolean(block.has_value());
  w.u32(block.value_or(0));
}

void load_opt_block(ser::Reader& r, std::optional<std::uint32_t>& block) {
  const bool has = r.boolean();
  const std::uint32_t value = r.u32();
  block = has ? std::optional<std::uint32_t>(value) : std::nullopt;
}

void save_deque(ser::Writer& w, const RingBuffer<std::uint32_t>& q) {
  w.u64(q.size());
  for (std::size_t i = 0; i < q.size(); ++i) w.u32(q[i]);
}

bool load_deque(ser::Reader& r, RingBuffer<std::uint32_t>& q) {
  q.clear();
  const std::uint64_t n = r.u64();
  if (n > r.remaining()) {
    r.fail();
    return false;
  }
  for (std::uint64_t i = 0; i < n; ++i) q.push_back(r.u32());
  return true;
}

}  // namespace

void FlexFtl::save_extra(ser::Writer& w) const {
  w.u64(chips_.size());
  for (const ChipState& chip : chips_) {
    save_opt_block(w, chip.fast);
    save_deque(w, chip.sbqueue);
    nand::save(w, chip.parity_acc);
    save_opt_block(w, chip.cold_fast);
    save_deque(w, chip.cold_sbqueue);
    nand::save(w, chip.cold_acc);
    w.boolean(chip.backup.has_value());
    if (chip.backup) {
      w.u32(chip.backup->block);
      w.u32(chip.backup->next_lsb);
      w.u32(chip.backup->live_pages);
    }
    w.u64(chip.retiring.size());
    for (const BackupBlock& b : chip.retiring) {
      w.u32(b.block);
      w.u32(b.next_lsb);
      w.u32(b.live_pages);
    }
    // Canonical byte stream: hash maps are emitted sorted by block key.
    std::vector<std::pair<std::uint32_t, Microseconds>> durable(
        chip.parity_durable.begin(), chip.parity_durable.end());
    std::sort(durable.begin(), durable.end());
    w.u64(durable.size());
    for (const auto& [block, at] : durable) {
      w.u32(block);
      w.i64(at);
    }
    std::vector<std::pair<std::uint32_t, nand::PageAddress>> pages(
        chip.parity_page.begin(), chip.parity_page.end());
    std::sort(pages.begin(), pages.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.u64(pages.size());
    for (const auto& [block, addr] : pages) {
      w.u32(block);
      save_address(w, addr);
    }
    w.u64(chip.retire_log.size());
    for (const ChipState::RetirementLogEntry& entry : chip.retire_log) {
      w.u32(entry.block);
      w.i64(entry.at);
      save_address(w, entry.parity);
    }
  }
  policy_.save(w);
  predictor_.save(w);
  w.u64(lsb_since_idle_);
  w.u64(skipped_backups_);
}

void FlexFtl::load_extra(ser::Reader& r) {
  if (r.u64() != chips_.size()) {
    r.fail();
    return;
  }
  for (ChipState& chip : chips_) {
    load_opt_block(r, chip.fast);
    if (!load_deque(r, chip.sbqueue)) return;
    nand::load(r, chip.parity_acc);
    load_opt_block(r, chip.cold_fast);
    if (!load_deque(r, chip.cold_sbqueue)) return;
    nand::load(r, chip.cold_acc);
    chip.backup.reset();
    if (r.boolean()) {
      BackupBlock b;
      b.block = r.u32();
      b.next_lsb = r.u32();
      b.live_pages = r.u32();
      chip.backup = b;
    }
    chip.retiring.clear();
    const std::uint64_t retiring = r.u64();
    if (retiring > r.remaining()) {
      r.fail();
      return;
    }
    chip.retiring.reserve(static_cast<std::size_t>(retiring));
    for (std::uint64_t i = 0; i < retiring; ++i) {
      BackupBlock b;
      b.block = r.u32();
      b.next_lsb = r.u32();
      b.live_pages = r.u32();
      chip.retiring.push_back(b);
    }
    chip.parity_durable.clear();
    const std::uint64_t durable = r.u64();
    if (durable > r.remaining()) {
      r.fail();
      return;
    }
    chip.parity_durable.reserve(static_cast<std::size_t>(durable));
    for (std::uint64_t i = 0; i < durable; ++i) {
      const std::uint32_t block = r.u32();
      chip.parity_durable.emplace(block, r.i64());
    }
    chip.parity_page.clear();
    const std::uint64_t pages = r.u64();
    if (pages > r.remaining()) {
      r.fail();
      return;
    }
    chip.parity_page.reserve(static_cast<std::size_t>(pages));
    for (std::uint64_t i = 0; i < pages; ++i) {
      const std::uint32_t block = r.u32();
      nand::PageAddress addr;
      load_address(r, addr);
      chip.parity_page.emplace(block, addr);
    }
    chip.retire_log.clear();
    const std::uint64_t log = r.u64();
    if (log > r.remaining()) {
      r.fail();
      return;
    }
    chip.retire_log.reserve(static_cast<std::size_t>(log));
    for (std::uint64_t i = 0; i < log; ++i) {
      ChipState::RetirementLogEntry entry;
      entry.block = r.u32();
      entry.at = r.i64();
      load_address(r, entry.parity);
      chip.retire_log.push_back(entry);
    }
  }
  policy_.load(r);
  predictor_.load(r);
  lsb_since_idle_ = r.u64();
  skipped_backups_ = r.u64();
}

}  // namespace rps::core
