// flexFTL's adaptive page-allocation policy (Section 3.2).
//
// The policy manager picks the page type for each write from two signals:
//   u — write-buffer utilization: high u means a burst is underway and the
//       host needs peak bandwidth now;
//   q — the quota of successive LSB-page writes: how many more LSB pages
//       can be consumed before future bandwidth is endangered. Every LSB
//       write decrements q, every MSB write increments it (background GC,
//       which copies with MSB pages in idle time, is what replenishes q).
//
// Decision rule (paper, verbatim):
//   u > u_high: LSB if q > 0, else alternate LSB/MSB;
//   u < u_low : MSB (or LSB if no slow block exists — footnote 1);
//   otherwise : alternate LSB/MSB.
#pragma once

#include <cstdint>
#include <vector>

#include "src/nand/address.hpp"

namespace rps::ser {
class Writer;
class Reader;
}  // namespace rps::ser

namespace rps::core {

class PolicyManager {
 public:
  struct Params {
    double u_high = 0.80;
    double u_low = 0.10;
    /// Initial quota: the paper uses 5% of all LSB pages in the device.
    std::int64_t initial_quota = 0;
    /// Chips in the device: the alternate-LSB/MSB state is kept per chip.
    /// (A single global toggle resonates with round-robin write striping
    /// when the chip count is even — half the chips would see only LSB
    /// choices — so alternation must be tracked where it is consumed.)
    std::uint32_t chips = 1;
  };

  explicit PolicyManager(const Params& params);

  /// Choose the page type for the next write on `chip`.
  /// `slow_block_available` is whether an MSB frontier currently exists on
  /// that chip (footnote 1's corner case).
  [[nodiscard]] nand::PageType choose(std::uint32_t chip, double buffer_utilization,
                                      bool slow_block_available);

  /// Quota bookkeeping, driven by the writes actually performed (host and
  /// GC alike). q is capped at its initial value: the quota models the
  /// largest burst the system promises to absorb.
  void note_lsb_write();
  void note_msb_write();

  [[nodiscard]] std::int64_t quota() const { return quota_; }
  [[nodiscard]] std::int64_t initial_quota() const { return params_.initial_quota; }
  [[nodiscard]] const Params& params() const { return params_; }

  /// Snapshot support (params are construction-time config).
  void save(ser::Writer& w) const;
  void load(ser::Reader& r);

 private:
  nand::PageType alternate(std::uint32_t chip, bool slow_block_available);

  Params params_;
  std::int64_t quota_;
  std::vector<std::uint8_t> alternate_toggle_;  // per chip
};

}  // namespace rps::core
