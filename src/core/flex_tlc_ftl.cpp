#include "src/core/flex_tlc_ftl.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/util/serialize.hpp"

namespace rps::core {

namespace {
constexpr double kBgcFreeThreshold = 0.10;
}

FlexTlcFtl::FlexTlcFtl(const TlcFtlConfig& config)
    : config_(config),
      device_(config.geometry, config.timing, nand::TlcSequenceKind::kRps),
      chips_(config.geometry.num_chips()),
      rotate_(config.geometry.num_chips(), 0) {
  const auto exported = static_cast<Lpn>(
      std::floor(static_cast<double>(config.geometry.total_pages()) *
                 (1.0 - config.overprovisioning)));
  mapping_.resize(exported);
  const auto lsb_pages = static_cast<double>(config.geometry.num_chips()) *
                         config.geometry.blocks_per_chip *
                         config.geometry.wordlines_per_block;
  initial_quota_ =
      static_cast<std::int64_t>(lsb_pages * config.initial_quota_fraction);
  quota_ = initial_quota_;
  for (ChipState& cs : chips_) {
    cs.use.assign(config.geometry.blocks_per_chip, Use::kFree);
    cs.valid.assign(config.geometry.blocks_per_chip, 0);
    cs.written.assign(config.geometry.blocks_per_chip, 0);
    for (std::uint32_t b = 0; b < config.geometry.blocks_per_chip; ++b) {
      cs.free.push_back(b);
    }
  }
}

nand::PageData FlexTlcFtl::zeroed_parity() {
  nand::PageData d;
  d.lpn = 0;
  return d;
}

std::uint64_t FlexTlcFtl::make_signature(Lpn lpn) {
  std::uint64_t x = lpn * 0x9e3779b97f4a7c15ull + (++write_version_);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  return x ^ (x >> 31);
}

std::uint32_t FlexTlcFtl::pick_chip() {
  // Headroom-based placement with round-robin tie-breaking (the same
  // balance rule as the MLC FtlBase; see DESIGN.md).
  const std::uint32_t chips = device_.geometry().num_chips();
  const std::uint64_t chip_pages =
      static_cast<std::uint64_t>(device_.geometry().blocks_per_chip) *
      device_.geometry().pages_per_block();
  const std::uint32_t start = rr_chip_++ % chips;
  std::uint32_t best = start;
  std::uint64_t best_headroom = 0;
  for (std::uint32_t i = 0; i < chips; ++i) {
    const std::uint32_t chip = (start + i) % chips;
    std::uint64_t valid = 0;
    for (const std::uint32_t v : chips_[chip].valid) valid += v;
    const std::uint64_t headroom = chip_pages - valid;
    if (i == 0 || headroom > best_headroom) {
      best = chip;
      best_headroom = headroom;
    }
  }
  return best;
}

Result<std::uint32_t> FlexTlcFtl::allocate(std::uint32_t chip, Use use,
                                           std::uint32_t reserve) {
  ChipState& cs = chips_.at(chip);
  if (cs.free.size() <= reserve) return ErrorCode::kNoFreeBlock;
  const std::uint32_t block = cs.free.front();
  cs.free.pop_front();
  cs.use[block] = use;
  cs.valid[block] = 0;
  cs.written[block] = 0;
  return block;
}

void FlexTlcFtl::release(std::uint32_t chip, std::uint32_t block) {
  ChipState& cs = chips_.at(chip);
  assert(cs.valid[block] == 0);
  cs.use[block] = Use::kFree;
  cs.free.push_back(block);
}

void FlexTlcFtl::commit_mapping(Lpn lpn, const nand::TlcPageAddress& addr) {
  if (const std::optional<nand::TlcPageAddress>& old = mapping_[lpn]) {
    assert(chips_[old->chip].valid[old->block] > 0);
    --chips_[old->chip].valid[old->block];
  }
  mapping_[lpn] = addr;
  ++chips_[addr.chip].valid[addr.block];
}

Microseconds FlexTlcFtl::flush_parity(std::uint32_t chip, std::uint32_t block,
                                      const nand::PageData& acc, bool csb_pass,
                                      Microseconds now) {
  // Attribution: the parity program is protection overhead, not part of the
  // host or GC pass whose completion triggered the flush.
  const nand::CauseScope cause(device_, nand::WriteCause::kParity);
  ChipState& cs = chips_.at(chip);
  if (!cs.backup) {
    // Never take the final free block: garbage collection depends on it as
    // a relocation destination when every phase queue is empty.
    const Result<std::uint32_t> fresh = allocate(chip, Use::kBackup, /*reserve=*/1);
    if (!fresh.is_ok()) return now;  // unprotected; recovery reports losses
    cs.backup = BackupBlock{fresh.value(), 0, 0};
  }
  const nand::TlcPageAddress dst{chip, cs.backup->block,
                                 {cs.backup->next_lsb, nand::TlcPageType::kLsb}};
  nand::PageData parity = acc;
  parity.spare = static_cast<std::uint64_t>(block) | nand::kNonHostSpareFlag;
  const Result<nand::OpTiming> timing = device_.program(dst, std::move(parity), now);
  assert(timing.is_ok());
  ++cs.backup->next_lsb;
  ++cs.backup->live_pages;
  ++stats_.backup_pages;
  (csb_pass ? cs.csb_parity : cs.lsb_parity)[block] = dst;
  if (cs.backup->next_lsb >= device_.geometry().wordlines_per_block) {
    cs.retiring.push_back(*cs.backup);
    cs.backup.reset();
  }
  return timing.value().complete;
}

void FlexTlcFtl::drop_backup_reference(std::uint32_t chip, std::uint32_t backup_block,
                                       Microseconds now) {
  ChipState& cs = chips_.at(chip);
  if (cs.backup && cs.backup->block == backup_block) {
    --cs.backup->live_pages;
    return;
  }
  for (auto it = cs.retiring.begin(); it != cs.retiring.end(); ++it) {
    if (it->block != backup_block) continue;
    if (--it->live_pages == 0) {
      // The recycled backup block's erase is parity overhead too.
      const nand::CauseScope cause(device_, nand::WriteCause::kParity);
      const Result<nand::OpTiming> erased = device_.erase(chip, backup_block, now);
      assert(erased.is_ok());
      (void)erased;
      release(chip, backup_block);
      cs.retiring.erase(it);
    }
    return;
  }
}

void FlexTlcFtl::invalidate_parities(std::uint32_t chip, std::uint32_t block,
                                     Microseconds now) {
  ChipState& cs = chips_.at(chip);
  for (auto* map : {&cs.lsb_parity, &cs.csb_parity}) {
    const auto it = map->find(block);
    if (it == map->end()) continue;
    drop_backup_reference(chip, it->second.block, now);
    map->erase(it);
  }
  cs.csb_acc.erase(block);
}

Result<Microseconds> FlexTlcFtl::write_pass(std::uint32_t chip, nand::TlcPageType pass,
                                            Lpn lpn, nand::PageData data,
                                            Microseconds now, bool gc) {
  ChipState& cs = chips_.at(chip);
  const std::uint32_t wordlines = device_.geometry().wordlines_per_block;

  std::uint32_t block = 0;
  switch (pass) {
    case nand::TlcPageType::kLsb: {
      if (!cs.fast) {
        Result<std::uint32_t> fresh =
            allocate(chip, Use::kActive, gc ? 0 : config_.gc_reserve_blocks);
        if (!fresh.is_ok() && !gc) {
          const Status freed = ensure_free_block(chip, now);
          if (!freed.is_ok() && !cs.fast) return freed.code();
          if (!cs.fast) fresh = allocate(chip, Use::kActive, 0);
        }
        if (!cs.fast) {
          if (!fresh.is_ok()) return fresh.code();
          cs.fast = fresh.value();
          cs.lsb_acc = zeroed_parity();
        }
      }
      block = *cs.fast;
      break;
    }
    case nand::TlcPageType::kCsb:
      if (cs.csb_queue.empty()) return ErrorCode::kNoFreePage;
      block = cs.csb_queue.front();
      break;
    case nand::TlcPageType::kMsb:
      if (cs.msb_queue.empty()) return ErrorCode::kNoFreePage;
      block = cs.msb_queue.front();
      break;
  }

  nand::TlcBlock& device_block = device_.chip(chip).block(block);
  const std::optional<nand::TlcPagePos> pos = device_block.next_in_pass(pass);
  assert(pos.has_value());
  const nand::TlcPageAddress addr{chip, block, *pos};

  if (pass == nand::TlcPageType::kLsb) cs.lsb_acc.xor_with(data);
  if (pass == nand::TlcPageType::kCsb) {
    auto [it, inserted] = cs.csb_acc.try_emplace(block, zeroed_parity());
    it->second.xor_with(data);
  }

  const Result<nand::OpTiming> timing = device_.program(addr, std::move(data), now);
  assert(timing.is_ok());
  ++chips_[chip].written[block];
  commit_mapping(lpn, addr);

  switch (pass) {
    case nand::TlcPageType::kLsb:
      --quota_;
      if (!gc) ++stats_.host_writes_by_pass[0];
      if (device_block.programmed_in_pass(nand::TlcPageType::kLsb) >= wordlines) {
        // Fast phase complete: flush the LSB parity, hand to the CSB queue.
        flush_parity(chip, block, cs.lsb_acc, /*csb_pass=*/false,
                     timing.value().complete);
        cs.csb_queue.push_back(block);
        cs.fast.reset();
      }
      break;
    case nand::TlcPageType::kCsb:
      if (!gc) ++stats_.host_writes_by_pass[1];
      if (device_block.programmed_in_pass(nand::TlcPageType::kCsb) >= wordlines) {
        const auto acc = cs.csb_acc.find(block);
        assert(acc != cs.csb_acc.end());
        flush_parity(chip, block, acc->second, /*csb_pass=*/true,
                     timing.value().complete);
        cs.csb_queue.pop_front();
        cs.msb_queue.push_back(block);
      }
      break;
    case nand::TlcPageType::kMsb:
      quota_ = std::min(quota_ + 1, initial_quota_);
      if (!gc) ++stats_.host_writes_by_pass[2];
      if (device_block.is_fully_programmed()) {
        cs.msb_queue.pop_front();
        cs.use[block] = Use::kFull;
        invalidate_parities(chip, block, timing.value().complete);
      }
      break;
  }
  return timing.value().complete;
}

Result<Microseconds> FlexTlcFtl::write(Lpn lpn, Microseconds now,
                                       double buffer_utilization) {
  return write_data(lpn, {}, now, buffer_utilization);
}

Result<Microseconds> FlexTlcFtl::write_data(Lpn lpn, std::vector<std::uint8_t> bytes,
                                            Microseconds now,
                                            double buffer_utilization) {
  if (lpn >= mapping_.size()) return ErrorCode::kOutOfRange;
  nand::PageData data;
  data.lpn = lpn;
  data.signature = make_signature(lpn);
  data.version = write_version_;
  data.bytes = std::move(bytes);
  const std::uint32_t chip = pick_chip();
  ChipState& cs = chips_.at(chip);

  // Pass selection (the MLC policy generalized to three passes).
  const bool has_c = !cs.csb_queue.empty();
  const bool has_m = !cs.msb_queue.empty();
  nand::TlcPageType pass = nand::TlcPageType::kLsb;
  if (buffer_utilization > config_.u_high && quota_ > 0) {
    pass = nand::TlcPageType::kLsb;
  } else if (buffer_utilization < config_.u_low) {
    pass = has_m ? nand::TlcPageType::kMsb
                 : (has_c ? nand::TlcPageType::kCsb : nand::TlcPageType::kLsb);
  } else {
    // Rotate L -> C -> M, skipping phases with no open block.
    for (int i = 0; i < 3; ++i) {
      const std::uint8_t r = rotate_[chip]++ % 3;
      if (r == 0) break;  // LSB always available (allocates)
      if (r == 1 && has_c) {
        pass = nand::TlcPageType::kCsb;
        break;
      }
      if (r == 2 && has_m) {
        pass = nand::TlcPageType::kMsb;
        break;
      }
    }
  }
  // Block-pool feedback: don't burn the last free blocks on LSB when
  // mid/slow capacity is banked in the queues.
  if (pass == nand::TlcPageType::kLsb && !cs.fast &&
      cs.free.size() <= config_.gc_reserve_blocks + 1 && (has_c || has_m)) {
    pass = has_m ? nand::TlcPageType::kMsb : nand::TlcPageType::kCsb;
  }
  // Attribution: the pass program is host work; nested scopes re-tag any
  // parity flush or foreground GC it triggers.
  const Result<Microseconds> done = [&] {
    const nand::CauseScope cause(device_, nand::WriteCause::kHost);
    return write_pass(chip, pass, lpn, std::move(data), now, /*gc=*/false);
  }();
  if (done.is_ok()) ++stats_.host_write_pages;
  return done;
}

Result<nand::PageData> FlexTlcFtl::read_data(Lpn lpn, Microseconds now) {
  if (lpn >= mapping_.size()) return ErrorCode::kOutOfRange;
  if (!mapping_[lpn]) return ErrorCode::kNotFound;
  Result<nand::TlcDevice::ReadResult> got = device_.read(*mapping_[lpn], now);
  assert(got.is_ok());
  if (!got.value().data.is_ok()) return got.value().data.code();
  return std::move(got.value().data).take();
}

Result<Microseconds> FlexTlcFtl::program_gc_copy(std::uint32_t chip, Lpn lpn,
                                                 nand::PageData data,
                                                 Microseconds now) {
  ChipState& cs = chips_.at(chip);
  if (!cs.msb_queue.empty()) {
    return write_pass(chip, nand::TlcPageType::kMsb, lpn, std::move(data), now, true);
  }
  if (!cs.csb_queue.empty()) {
    return write_pass(chip, nand::TlcPageType::kCsb, lpn, std::move(data), now, true);
  }
  return write_pass(chip, nand::TlcPageType::kLsb, lpn, std::move(data), now, true);
}

std::optional<std::uint32_t> FlexTlcFtl::pick_victim(std::uint32_t chip) const {
  const ChipState& cs = chips_.at(chip);
  std::optional<std::uint32_t> best;
  std::uint32_t best_invalid = 0;
  for (std::uint32_t b = 0; b < cs.use.size(); ++b) {
    if (cs.use[b] != Use::kFull) continue;
    const std::uint32_t invalid = cs.written[b] - cs.valid[b];
    if (invalid > best_invalid) {
      best_invalid = invalid;
      best = b;
    }
  }
  return best;
}

bool FlexTlcFtl::collect_block(std::uint32_t chip, std::uint32_t victim,
                               Microseconds now, Microseconds deadline) {
  // Attribution: relocation reads/copies and the victim erase are GC work
  // regardless of which path (host pressure or idle) requested them.
  const nand::CauseScope cause(device_, nand::WriteCause::kGcCopy);
  nand::TlcBlock& block = device_.chip(chip).block(victim);
  for (std::uint32_t wl = 0; wl < block.wordlines(); ++wl) {
    for (const nand::TlcPageType pass :
         {nand::TlcPageType::kLsb, nand::TlcPageType::kCsb, nand::TlcPageType::kMsb}) {
      const nand::TlcPagePos pos{wl, pass};
      if (block.page_state(pos) != nand::PageState::kValid) continue;
      const nand::TlcPageAddress addr{chip, victim, pos};
      const Lpn lpn = block.read(pos).value().lpn;
      if (lpn >= mapping_.size() || !mapping_[lpn] || !(*mapping_[lpn] == addr)) {
        continue;
      }
      if (device_.chip(chip).busy_until() >= deadline) return false;
      Result<nand::TlcDevice::ReadResult> got = device_.read(addr, now);
      assert(got.is_ok());
      if (!got.value().data.is_ok()) continue;
      Result<Microseconds> copied =
          program_gc_copy(chip, lpn, std::move(got.value().data).take(),
                          got.value().timing.complete);
      if (!copied.is_ok()) return false;
      ++stats_.gc_copy_pages;
    }
  }
  if (chips_[chip].valid[victim] != 0) return false;
  const Result<nand::OpTiming> erased = device_.erase(chip, victim, now);
  assert(erased.is_ok());
  (void)erased;
  release(chip, victim);
  ++stats_.gc_blocks;
  return true;
}

Status FlexTlcFtl::ensure_free_block(std::uint32_t chip, Microseconds now) {
  while (chips_[chip].free.size() <= config_.gc_reserve_blocks) {
    const std::optional<std::uint32_t> victim = pick_victim(chip);
    if (!victim) return Status{ErrorCode::kNoFreeBlock};
    if (!collect_block(chip, *victim, now, kTimeNever)) {
      return Status{ErrorCode::kNoFreeBlock};
    }
  }
  return Status::ok();
}

void FlexTlcFtl::on_idle(Microseconds now, Microseconds deadline) {
  deadline -= 2 * config_.timing.program_msb_us;  // spill guard
  if (deadline <= now) return;
  const std::uint32_t blocks = device_.geometry().blocks_per_chip;
  const std::uint32_t pages = device_.geometry().pages_per_block();
  for (std::uint32_t chip = 0; chip < chips_.size(); ++chip) {
    while (device_.chip(chip).busy_until() < deadline) {
      const double free_fraction =
          static_cast<double>(chips_[chip].free.size()) / blocks;
      const bool need_space = free_fraction < kBgcFreeThreshold;
      const bool need_quota = quota_ < initial_quota_;
      if (!need_space && !need_quota) break;
      const std::optional<std::uint32_t> victim = pick_victim(chip);
      if (!victim) break;
      // Yield guard, as in the MLC base.
      if (chips_[chip].written[*victim] - chips_[chip].valid[*victim] < pages / 4 &&
          !need_space) {
        break;
      }
      const Microseconds start = std::max(now, device_.chip(chip).busy_until());
      if (!collect_block(chip, *victim, start, deadline)) break;
    }
  }
}

std::optional<Lpn> FlexTlcFtl::find_lpn_of(const nand::TlcPageAddress& addr) const {
  for (Lpn lpn = 0; lpn < mapping_.size(); ++lpn) {
    if (mapping_[lpn] && *mapping_[lpn] == addr) return lpn;
  }
  return std::nullopt;
}

TlcRecoveryReport FlexTlcFtl::recover_from_power_loss(
    const std::vector<nand::TlcDevice::PowerLossVictim>& victims, Microseconds now) {
  TlcRecoveryReport report;
  // Attribution: reboot-time parity checks and rewrites are recovery
  // metadata work, not host traffic.
  const nand::CauseScope cause(device_, nand::WriteCause::kMeta);

  // Interrupted, unacknowledged writes roll back.
  for (const nand::TlcDevice::PowerLossVictim& victim : victims) {
    const nand::TlcPageAddress addr{victim.chip, victim.block, victim.pos};
    if (const std::optional<Lpn> lpn = find_lpn_of(addr)) {
      --chips_[addr.chip].valid[addr.block];
      mapping_[*lpn].reset();
      ++report.interrupted_writes_discarded;
    }
  }

  const std::uint32_t wordlines = device_.geometry().wordlines_per_block;
  for (std::uint32_t chip = 0; chip < chips_.size(); ++chip) {
    ChipState& cs = chips_[chip];

    // A pass in flight can only have damaged blocks in the CSB/MSB queues.
    // Check each queued block's lower passes against their parity pages.
    auto recover_pass = [&](std::uint32_t blk, nand::TlcPageType pass,
                            std::unordered_map<std::uint32_t, nand::TlcPageAddress>&
                                parity_map,
                            std::uint32_t pages_in_pass) {
      nand::PageData recomputed = zeroed_parity();
      std::optional<nand::TlcPagePos> lost;
      for (std::uint32_t wl = 0; wl < pages_in_pass; ++wl) {
        const nand::TlcPageAddress addr{chip, blk, {wl, pass}};
        Result<nand::TlcDevice::ReadResult> got = device_.read(addr, now);
        assert(got.is_ok());
        ++report.pages_read;
        if (got.value().data.is_ok()) {
          recomputed.xor_with(got.value().data.value());
        } else {
          lost = addr.pos;
        }
      }
      if (!lost) return;
      const nand::TlcPageAddress lost_addr{chip, blk, *lost};
      const auto parity_it = parity_map.find(blk);
      if (parity_it == parity_map.end()) {
        if (const std::optional<Lpn> lpn = find_lpn_of(lost_addr)) {
          --cs.valid[blk];
          mapping_[*lpn].reset();
          ++report.pages_lost;
        }
        return;
      }
      Result<nand::TlcDevice::ReadResult> saved = device_.read(parity_it->second, now);
      assert(saved.is_ok());
      ++report.parity_pages_read;
      if (!saved.value().data.is_ok()) return;  // parity itself interrupted
      nand::PageData recovered = std::move(saved.value().data).take();
      recovered.xor_with(recomputed);
      recovered.spare = 0;
      if (recovered.lpn >= mapping_.size() || !mapping_[recovered.lpn] ||
          !(*mapping_[recovered.lpn] == lost_addr)) {
        return;  // stale data; nothing to restore
      }
      const Lpn lpn = recovered.lpn;
      if (program_gc_copy(chip, lpn, std::move(recovered), now).is_ok()) {
        ++report.pages_recovered;
      } else {
        --cs.valid[blk];
        mapping_[lpn].reset();
        ++report.pages_lost;
      }
    };

    const std::vector<std::uint32_t> csb_blocks(cs.csb_queue.begin(),
                                                cs.csb_queue.end());
    for (const std::uint32_t blk : csb_blocks) {
      ++report.blocks_checked;
      recover_pass(blk, nand::TlcPageType::kLsb, cs.lsb_parity, wordlines);
    }
    const std::vector<std::uint32_t> msb_blocks(cs.msb_queue.begin(),
                                                cs.msb_queue.end());
    for (const std::uint32_t blk : msb_blocks) {
      ++report.blocks_checked;
      recover_pass(blk, nand::TlcPageType::kLsb, cs.lsb_parity, wordlines);
      recover_pass(blk, nand::TlcPageType::kCsb, cs.csb_parity, wordlines);
    }

    // Rebuild the in-RAM accumulators of the open passes.
    if (cs.fast) {
      nand::PageData acc = zeroed_parity();
      const nand::TlcBlock& block = device_.chip(chip).block(*cs.fast);
      for (std::uint32_t wl = 0;
           wl < block.programmed_in_pass(nand::TlcPageType::kLsb); ++wl) {
        const Result<nand::TlcDevice::ReadResult> got =
            device_.read({chip, *cs.fast, {wl, nand::TlcPageType::kLsb}}, now);
        ++report.pages_read;
        if (got.value().data.is_ok()) acc.xor_with(got.value().data.value());
      }
      cs.lsb_acc = acc;
    }
    if (!cs.csb_queue.empty()) {
      const std::uint32_t head = cs.csb_queue.front();
      nand::PageData acc = zeroed_parity();
      const nand::TlcBlock& block = device_.chip(chip).block(head);
      for (std::uint32_t wl = 0;
           wl < block.programmed_in_pass(nand::TlcPageType::kCsb); ++wl) {
        const Result<nand::TlcDevice::ReadResult> got =
            device_.read({chip, head, {wl, nand::TlcPageType::kCsb}}, now);
        ++report.pages_read;
        if (got.value().data.is_ok()) acc.xor_with(got.value().data.value());
      }
      cs.csb_acc[head] = acc;
    }
  }
  return report;
}

bool FlexTlcFtl::check_consistency() const {
  std::uint64_t valid_total = 0;
  for (const ChipState& cs : chips_) {
    for (const std::uint32_t v : cs.valid) valid_total += v;
  }
  std::uint64_t mapped = 0;
  for (const auto& entry : mapping_) {
    if (!entry) continue;
    ++mapped;
    if (device_.chip(entry->chip).block(entry->block).page_state(entry->pos) ==
        nand::PageState::kErased) {
      return false;
    }
  }
  return valid_total == mapped;
}

namespace {

void save_tlc_address(ser::Writer& w, const nand::TlcPageAddress& addr) {
  w.u32(addr.chip);
  w.u32(addr.block);
  w.u32(addr.pos.wordline);
  w.u8(static_cast<std::uint8_t>(addr.pos.type));
}

void load_tlc_address(ser::Reader& r, nand::TlcPageAddress& addr) {
  addr.chip = r.u32();
  addr.block = r.u32();
  addr.pos.wordline = r.u32();
  addr.pos.type = static_cast<nand::TlcPageType>(r.u8());
}

}  // namespace

void FlexTlcFtl::save_state(ser::Writer& w) const {
  device_.save(w);
  w.u64(mapping_.size());
  for (const std::optional<nand::TlcPageAddress>& entry : mapping_) {
    w.boolean(entry.has_value());
    if (entry) save_tlc_address(w, *entry);
  }
  w.u64(chips_.size());
  for (const ChipState& chip : chips_) {
    w.u64(chip.free.size());
    for (const std::uint32_t b : chip.free) w.u32(b);
    w.boolean(chip.fast.has_value());
    w.u32(chip.fast.value_or(0));
    w.u64(chip.csb_queue.size());
    for (const std::uint32_t b : chip.csb_queue) w.u32(b);
    w.u64(chip.msb_queue.size());
    for (const std::uint32_t b : chip.msb_queue) w.u32(b);
    w.u64(chip.use.size());
    for (const Use u : chip.use) w.u8(static_cast<std::uint8_t>(u));
    w.u64(chip.valid.size());
    for (const std::uint32_t v : chip.valid) w.u32(v);
    w.u64(chip.written.size());
    for (const std::uint32_t v : chip.written) w.u32(v);
    nand::save(w, chip.lsb_acc);
    // Canonical byte stream: hash maps are emitted sorted by block key.
    std::vector<std::uint32_t> acc_keys;
    acc_keys.reserve(chip.csb_acc.size());
    for (const auto& [block, acc] : chip.csb_acc) acc_keys.push_back(block);
    std::sort(acc_keys.begin(), acc_keys.end());
    w.u64(acc_keys.size());
    for (const std::uint32_t block : acc_keys) {
      w.u32(block);
      nand::save(w, chip.csb_acc.at(block));
    }
    for (const auto* parity : {&chip.lsb_parity, &chip.csb_parity}) {
      std::vector<std::pair<std::uint32_t, nand::TlcPageAddress>> entries(
          parity->begin(), parity->end());
      std::sort(entries.begin(), entries.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      w.u64(entries.size());
      for (const auto& [block, addr] : entries) {
        w.u32(block);
        save_tlc_address(w, addr);
      }
    }
    w.boolean(chip.backup.has_value());
    if (chip.backup) {
      w.u32(chip.backup->block);
      w.u32(chip.backup->next_lsb);
      w.u32(chip.backup->live_pages);
    }
    w.u64(chip.retiring.size());
    for (const BackupBlock& b : chip.retiring) {
      w.u32(b.block);
      w.u32(b.next_lsb);
      w.u32(b.live_pages);
    }
  }
  w.u64(stats_.host_write_pages);
  for (const std::uint64_t n : stats_.host_writes_by_pass) w.u64(n);
  w.u64(stats_.gc_copy_pages);
  w.u64(stats_.backup_pages);
  w.u64(stats_.gc_blocks);
  w.i64(quota_);
  w.i64(initial_quota_);
  w.u64(rotate_.size());
  for (const std::uint8_t t : rotate_) w.u8(t);
  w.u32(rr_chip_);
  w.u64(write_version_);
}

void FlexTlcFtl::load_state(ser::Reader& r) {
  device_.load(r);
  if (r.u64() != mapping_.size()) {
    r.fail();
    return;
  }
  for (std::optional<nand::TlcPageAddress>& entry : mapping_) {
    if (r.boolean()) {
      nand::TlcPageAddress addr;
      load_tlc_address(r, addr);
      entry = addr;
    } else {
      entry.reset();
    }
  }
  if (r.u64() != chips_.size()) {
    r.fail();
    return;
  }
  for (ChipState& chip : chips_) {
    chip.free.clear();
    const std::uint64_t free = r.u64();
    if (free > r.remaining()) {
      r.fail();
      return;
    }
    for (std::uint64_t i = 0; i < free; ++i) chip.free.push_back(r.u32());
    const bool has_fast = r.boolean();
    const std::uint32_t fast = r.u32();
    chip.fast = has_fast ? std::optional<std::uint32_t>(fast) : std::nullopt;
    chip.csb_queue.clear();
    const std::uint64_t csb = r.u64();
    if (csb > r.remaining()) {
      r.fail();
      return;
    }
    for (std::uint64_t i = 0; i < csb; ++i) chip.csb_queue.push_back(r.u32());
    chip.msb_queue.clear();
    const std::uint64_t msb = r.u64();
    if (msb > r.remaining()) {
      r.fail();
      return;
    }
    for (std::uint64_t i = 0; i < msb; ++i) chip.msb_queue.push_back(r.u32());
    if (r.u64() != chip.use.size()) {
      r.fail();
      return;
    }
    for (Use& u : chip.use) {
      const std::uint8_t raw = r.u8();
      if (raw > static_cast<std::uint8_t>(Use::kBackup)) {
        r.fail();
        return;
      }
      u = static_cast<Use>(raw);
    }
    if (r.u64() != chip.valid.size()) {
      r.fail();
      return;
    }
    for (std::uint32_t& v : chip.valid) v = r.u32();
    if (r.u64() != chip.written.size()) {
      r.fail();
      return;
    }
    for (std::uint32_t& v : chip.written) v = r.u32();
    nand::load(r, chip.lsb_acc);
    chip.csb_acc.clear();
    const std::uint64_t accs = r.u64();
    if (accs > r.remaining()) {
      r.fail();
      return;
    }
    for (std::uint64_t i = 0; i < accs; ++i) {
      const std::uint32_t block = r.u32();
      nand::PageData acc;
      nand::load(r, acc);
      chip.csb_acc.emplace(block, std::move(acc));
    }
    for (auto* parity : {&chip.lsb_parity, &chip.csb_parity}) {
      parity->clear();
      const std::uint64_t entries = r.u64();
      if (entries > r.remaining()) {
        r.fail();
        return;
      }
      parity->reserve(static_cast<std::size_t>(entries));
      for (std::uint64_t i = 0; i < entries; ++i) {
        const std::uint32_t block = r.u32();
        nand::TlcPageAddress addr;
        load_tlc_address(r, addr);
        parity->emplace(block, addr);
      }
    }
    chip.backup.reset();
    if (r.boolean()) {
      BackupBlock b;
      b.block = r.u32();
      b.next_lsb = r.u32();
      b.live_pages = r.u32();
      chip.backup = b;
    }
    chip.retiring.clear();
    const std::uint64_t retiring = r.u64();
    if (retiring > r.remaining()) {
      r.fail();
      return;
    }
    chip.retiring.reserve(static_cast<std::size_t>(retiring));
    for (std::uint64_t i = 0; i < retiring; ++i) {
      BackupBlock b;
      b.block = r.u32();
      b.next_lsb = r.u32();
      b.live_pages = r.u32();
      chip.retiring.push_back(b);
    }
  }
  stats_.host_write_pages = r.u64();
  for (std::uint64_t& n : stats_.host_writes_by_pass) n = r.u64();
  stats_.gc_copy_pages = r.u64();
  stats_.backup_pages = r.u64();
  stats_.gc_blocks = r.u64();
  quota_ = r.i64();
  initial_quota_ = r.i64();
  if (r.u64() != rotate_.size()) {
    r.fail();
    return;
  }
  for (std::uint8_t& t : rotate_) t = r.u8();
  rr_chip_ = r.u32();
  write_version_ = r.u64();
}

}  // namespace rps::core
