// flexFTL-TLC: the paper's flexFTL carried to 3-bit NAND (the "applicable
// to TLC" projection of Section 1, fully worked out).
//
// Three-phase ordering (3PO) generalizes 2PO: a block's LSB pages are all
// written first (fast phase), then its CSB pages (mid phase), then its MSB
// pages (slow phase). Per chip the block pool manager keeps one active
// block per phase, with FIFO queues between phases:
//
//   free -> [LSB phase] -> CSBQueue -> [CSB phase] -> MSBQueue
//        -> [MSB phase] -> full -> GC -> free
//
// Power-loss protection needs *two* parity pages per block: an interrupted
// CSB pass destroys the word line's LSB page; an interrupted MSB pass
// destroys its LSB and CSB pages (shadow programming re-places the lower
// pages' charge). The LSB parity is flushed when the fast phase completes,
// the CSB parity when the mid phase completes; both go to LSB-only backup
// blocks, which the relaxed TLC sequence makes legal.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/nand/tlc_device.hpp"
#include "src/util/result.hpp"
#include "src/util/types.hpp"

namespace rps::ser {
class Writer;
class Reader;
}  // namespace rps::ser

namespace rps::core {

struct TlcFtlConfig {
  nand::TlcGeometry geometry;
  nand::TlcTimingSpec timing = nand::TlcTimingSpec::nominal();
  double overprovisioning = 0.30;
  std::uint32_t gc_reserve_blocks = 2;
  double u_high = 0.80;
  double u_low = 0.10;
  double initial_quota_fraction = 0.05;

  static TlcFtlConfig tiny() {
    TlcFtlConfig c;
    c.geometry = nand::TlcGeometry{.channels = 1,
                                   .chips_per_channel = 2,
                                   .blocks_per_chip = 24,
                                   .wordlines_per_block = 8,
                                   .page_size_bytes = 512};
    c.gc_reserve_blocks = 1;
    c.initial_quota_fraction = 0.5;
    return c;
  }
};

struct TlcFtlStats {
  std::uint64_t host_write_pages = 0;
  std::array<std::uint64_t, 3> host_writes_by_pass{0, 0, 0};  // L, C, M
  std::uint64_t gc_copy_pages = 0;
  std::uint64_t backup_pages = 0;
  std::uint64_t gc_blocks = 0;
};

struct TlcRecoveryReport {
  std::uint64_t blocks_checked = 0;
  std::uint64_t pages_read = 0;
  std::uint64_t parity_pages_read = 0;
  std::uint64_t pages_recovered = 0;
  std::uint64_t pages_lost = 0;
  std::uint64_t interrupted_writes_discarded = 0;
};

class FlexTlcFtl {
 public:
  explicit FlexTlcFtl(const TlcFtlConfig& config);

  [[nodiscard]] std::string_view name() const { return "flexFTL-TLC"; }
  [[nodiscard]] Lpn exported_pages() const {
    return static_cast<Lpn>(mapping_.size());
  }
  [[nodiscard]] nand::TlcDevice& device() { return device_; }
  [[nodiscard]] const nand::TlcDevice& device() const { return device_; }
  [[nodiscard]] const TlcFtlStats& stats() const { return stats_; }
  [[nodiscard]] std::int64_t quota() const { return quota_; }
  [[nodiscard]] const TlcFtlConfig& config() const { return config_; }

  /// One-page host write; `buffer_utilization` drives the pass choice as
  /// in the MLC policy manager (LSB under pressure while quota lasts).
  Result<Microseconds> write(Lpn lpn, Microseconds now, double buffer_utilization);
  Result<Microseconds> write_data(Lpn lpn, std::vector<std::uint8_t> bytes,
                                  Microseconds now, double buffer_utilization);
  Result<nand::PageData> read_data(Lpn lpn, Microseconds now);

  /// Idle window: background GC (quota-replenishing, consuming CSB/MSB
  /// capacity) while the free pool is below 10%.
  void on_idle(Microseconds now, Microseconds deadline);

  /// Post-power-loss recovery using the two per-block parity pages.
  TlcRecoveryReport recover_from_power_loss(
      const std::vector<nand::TlcDevice::PowerLossVictim>& victims, Microseconds now);

  /// Phase-queue depths (observability).
  [[nodiscard]] std::size_t csb_queue_depth(std::uint32_t chip) const {
    return chips_.at(chip).csb_queue.size();
  }
  [[nodiscard]] std::size_t msb_queue_depth(std::uint32_t chip) const {
    return chips_.at(chip).msb_queue.size();
  }

  [[nodiscard]] bool check_consistency() const;

  /// Serializes the complete FTL + TLC device state; loading into a
  /// same-config instance restores it bit-identically (sim::Snapshot).
  void save_state(ser::Writer& w) const;
  void load_state(ser::Reader& r);

 private:
  enum class Use : std::uint8_t { kFree, kActive, kFull, kBackup };

  struct BackupBlock {
    std::uint32_t block = 0;
    std::uint32_t next_lsb = 0;
    std::uint32_t live_pages = 0;
  };

  struct ChipState {
    std::deque<std::uint32_t> free;
    std::optional<std::uint32_t> fast;   // LSB-phase block
    std::deque<std::uint32_t> csb_queue; // LSB-complete, head = CSB-phase block
    std::deque<std::uint32_t> msb_queue; // CSB-complete, head = MSB-phase block
    std::vector<Use> use;
    std::vector<std::uint32_t> valid;
    std::vector<std::uint32_t> written;
    /// Per-block parity accumulators for the in-progress passes.
    nand::PageData lsb_acc;
    std::unordered_map<std::uint32_t, nand::PageData> csb_acc;
    /// block -> saved parity page addresses (LSB-pass, CSB-pass).
    std::unordered_map<std::uint32_t, nand::TlcPageAddress> lsb_parity;
    std::unordered_map<std::uint32_t, nand::TlcPageAddress> csb_parity;
    std::optional<BackupBlock> backup;
    std::vector<BackupBlock> retiring;
  };

  static nand::PageData zeroed_parity();
  std::uint64_t make_signature(Lpn lpn);
  std::uint32_t pick_chip();

  Result<std::uint32_t> allocate(std::uint32_t chip, Use use, std::uint32_t reserve);
  void release(std::uint32_t chip, std::uint32_t block);
  void commit_mapping(Lpn lpn, const nand::TlcPageAddress& addr);

  Result<Microseconds> write_pass(std::uint32_t chip, nand::TlcPageType pass, Lpn lpn,
                                  nand::PageData data, Microseconds now, bool gc);
  Microseconds flush_parity(std::uint32_t chip, std::uint32_t block,
                            const nand::PageData& acc, bool csb_pass, Microseconds now);
  void invalidate_parities(std::uint32_t chip, std::uint32_t block, Microseconds now);
  void drop_backup_reference(std::uint32_t chip, std::uint32_t backup_block,
                             Microseconds now);

  Result<Microseconds> program_gc_copy(std::uint32_t chip, Lpn lpn, nand::PageData data,
                                       Microseconds now);
  std::optional<std::uint32_t> pick_victim(std::uint32_t chip) const;
  bool collect_block(std::uint32_t chip, std::uint32_t victim, Microseconds now,
                     Microseconds deadline);
  Status ensure_free_block(std::uint32_t chip, Microseconds now);

  [[nodiscard]] std::optional<Lpn> find_lpn_of(const nand::TlcPageAddress& addr) const;

  TlcFtlConfig config_;
  nand::TlcDevice device_;
  std::vector<std::optional<nand::TlcPageAddress>> mapping_;
  std::vector<ChipState> chips_;
  TlcFtlStats stats_;
  std::int64_t quota_;
  std::int64_t initial_quota_;
  std::vector<std::uint8_t> rotate_;  // per-chip L/C/M rotation state
  std::uint32_t rr_chip_ = 0;
  std::uint64_t write_version_ = 0;
};

}  // namespace rps::core
