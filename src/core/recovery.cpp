// Power-loss recovery (Section 3.3, Fig. 7b).
//
// A sudden power-off during an MSB program destroys the paired LSB page's
// previously-acknowledged data. At reboot, flexFTL:
//   1. discards interrupted in-flight writes (they were never acknowledged),
//   2. re-reads every LSB page of every slow block, recomputing the parity;
//      an ECC-uncorrectable page is reconstructed by XOR-ing the saved
//      per-block parity page with the readable pages, and rewritten,
//   3. re-reads the written LSB pages of each active fast block to rebuild
//      its partially-accumulated parity page buffer.
// All reads are charged to the device timeline, so the report's recovery
// time reproduces the paper's reboot-cost estimate.
#include "src/core/flex_ftl.hpp"

#include <cassert>

namespace rps::core {

RecoveryReport FlexFtl::recover_from_power_loss(
    const std::vector<nand::PowerLossVictim>& victims, Microseconds now) {
  RecoveryReport report;
  const Microseconds start = now;
  // Attribution: everything the reboot does — parity re-reads, rewritten
  // reconstructed pages — is recovery/metadata work, not host traffic.
  const nand::CauseScope cause(device_, nand::WriteCause::kMeta);

  // Step 1: interrupted programs never completed. If the destroyed page
  // was a relocation copy, its source still exists (a victim block is only
  // erased after its pass commits): roll the mapping back to the newest
  // intact copy. Otherwise it was an in-flight host write that was never
  // acknowledged: discard it.
  for (const nand::PowerLossVictim& victim : victims) {
    const nand::PageAddress addr{victim.chip, victim.block, victim.pos};
    const std::optional<Lpn> lpn = find_lpn_of(addr);
    if (!lpn) continue;
    if (const std::optional<nand::PageAddress> source = find_newest_copy(*lpn, addr)) {
      // The source may sit in a GC victim block whose erase the power loss
      // voided (it was charged after the cut): pull it back out of the
      // free pool before hanging valid pages off it.
      blocks_.reclaim({source->chip, source->block}, ftl::BlockUse::kFull);
      mapping_.update(*lpn, *source);  // returns `addr`; fix the counters
      blocks_.remove_valid({addr.chip, addr.block});
      blocks_.add_valid({source->chip, source->block});
      ++report.relocations_rolled_back;
    } else {
      mapping_.unmap(*lpn);
      blocks_.remove_valid({addr.chip, addr.block});
      ++report.interrupted_writes_discarded;
    }
  }

  const std::uint32_t wordlines = device_.geometry().wordlines_per_block;
  for (std::uint32_t chip = 0; chip < chips_.size(); ++chip) {
    ChipState& cs = chips_[chip];

    // Settle the retirement log against the cut. A retirement whose final
    // MSB program completed by now is irrevocable: drop the entry. One
    // still in flight is void — that MSB program is a victim, the paired
    // LSB page is destroyed, and the logged parity page is the data's only
    // copy (its media survived the cut: any backup-block erase charged by
    // the eager release started after `at` and was voided by the chip's
    // lazy-erase rules). Re-hook such parity pages and run the parity
    // check over the block below, exactly as if it were still the active
    // slow block — unless the block number was recycled into a new
    // protected block inside the window (then the old incarnation's pages
    // all went stale before the recycling erase, and the live map entry
    // belongs to the new incarnation).
    std::vector<std::uint32_t> voided_retirements;
    {
      std::vector<ChipState::RetirementLogEntry> log;
      log.swap(cs.retire_log);
      for (const ChipState::RetirementLogEntry& entry : log) {
        if (entry.at <= now) continue;
        if (cs.parity_page.emplace(entry.block, entry.parity).second) {
          voided_retirements.push_back(entry.block);
        }
      }
    }

    // Step 2: verify every slow block's LSB data by parity recomputation.
    // (Snapshot the queue: rewriting a recovered page may consume MSB pages
    // and retire the head slow block, mutating the deque.)
    std::vector<std::uint32_t> slow_blocks;
    slow_blocks.reserve(cs.sbqueue.size() + cs.cold_sbqueue.size() +
                        voided_retirements.size());
    for (std::size_t i = 0; i < cs.sbqueue.size(); ++i) {
      slow_blocks.push_back(cs.sbqueue[i]);
    }
    for (std::size_t i = 0; i < cs.cold_sbqueue.size(); ++i) {
      slow_blocks.push_back(cs.cold_sbqueue[i]);
    }
    slow_blocks.insert(slow_blocks.end(), voided_retirements.begin(),
                       voided_retirements.end());
    for (const std::uint32_t blk : slow_blocks) {
      ++report.slow_blocks_checked;
      nand::PageData recomputed = zeroed_parity();
      std::optional<nand::PagePos> lost;
      for (std::uint32_t wl = 0; wl < wordlines; ++wl) {
        const nand::PageAddress addr{chip, blk, {wl, nand::PageType::kLsb}};
        Result<nand::NandDevice::ReadResult> got = device_.read(addr, now);
        ++report.lsb_pages_read;
        // A failed device read counts as an unreadable page, the same as
        // ECC-uncorrectable data — never dereference an error Result (this
        // must hold in NDEBUG builds, where an assert would vanish).
        if (got.is_ok() && got.value().data.is_ok()) {
          recomputed.xor_with(got.value().data.value());
        } else {
          // Skip the unreadable page; keep accumulating the rest (Fig. 7b).
          lost = nand::PagePos{wl, nand::PageType::kLsb};
        }
      }

      // Verify the saved parity page — proactively, not only when a page
      // was lost. A cut during the flush leaves a corrupt parity page the
      // bookkeeping believes durable; trusting it until the next crash
      // would turn a recoverable loss into a silent one. No MSB of this
      // block can have started (the MSB phase waits for parity
      // durability), so dropping the coverage loses nothing now; the
      // block proceeds unprotected, counted via skipped_parity_backups()
      // and the report.
      const auto parity_it = cs.parity_page.find(blk);
      bool parity_ok = false;
      nand::PageData saved_parity;
      if (parity_it != cs.parity_page.end()) {
        Result<nand::NandDevice::ReadResult> saved =
            device_.read(parity_it->second, now);
        ++report.parity_pages_read;
        if (saved.is_ok() && saved.value().data.is_ok()) {
          parity_ok = true;
          saved_parity = std::move(saved.value().data).take();
        } else {
          // Unreadable parity page: the cut landed during the flush (or a
          // re-hooked page's backup block was recycled first). Drop the
          // coverage — releasing the accounting only for live coverage; a
          // re-hooked entry (no durable timestamp) was already released by
          // its eager retirement.
          if (cs.parity_durable.count(blk) != 0) {
            invalidate_parity(chip, blk, now);
          } else {
            cs.parity_page.erase(blk);
          }
          ++skipped_backups_;
          ++report.parity_flush_interrupted;
        }
      }
      if (!lost) continue;

      const nand::PageAddress lost_addr{chip, blk, *lost};
      if (!parity_ok) {
        // The block was not protected (backup allocation failed, or the
        // flush itself was the interrupted program). A stale intact copy
        // elsewhere can still save the data.
        if (const std::optional<Lpn> lpn = find_lpn_of(lost_addr)) {
          if (const auto source = find_newest_copy(*lpn, lost_addr)) {
            blocks_.reclaim({source->chip, source->block}, ftl::BlockUse::kFull);
            mapping_.update(*lpn, *source);
            blocks_.remove_valid({chip, blk});
            blocks_.add_valid({source->chip, source->block});
            ++report.relocations_rolled_back;
          } else {
            mapping_.unmap(*lpn);
            blocks_.remove_valid({chip, blk});
            ++report.pages_lost;
          }
        }
        continue;
      }

      // lost page = saved parity XOR (XOR of all readable LSB pages).
      nand::PageData recovered = std::move(saved_parity);
      recovered.xor_with(recomputed);
      recovered.spare = 0;  // the parity page's spare held the inverse map

      if (!mapping_.maps_to(recovered.lpn, lost_addr)) {
        // The destroyed page held stale data; nothing to restore.
        continue;
      }
      // Rewrite the reconstructed page at a fresh location and remap.
      const Lpn lpn = recovered.lpn;
      Result<Microseconds> rewritten =
          allocate_gc_page(chip, lpn, std::move(recovered), now, /*background=*/false);
      if (rewritten.is_ok()) {
        ++report.pages_recovered;
      } else {
        mapping_.unmap(lpn);
        blocks_.remove_valid({chip, blk});
        ++report.pages_lost;
      }
    }

    // The voided retirements are settled now: any destroyed page was
    // reconstructed and rewritten elsewhere (or counted lost). The eager
    // retirement already released the parity accounting; only the
    // re-hooked map entries go away (erasing one the corrupt-parity path
    // above already dropped is a no-op).
    for (const std::uint32_t blk : voided_retirements) {
      cs.parity_page.erase(blk);
    }

    // Step 3: rebuild the parity page buffers of the active fast blocks
    // (host and cold streams) from their already-written LSB pages.
    for (const bool cold : {false, true}) {
      const std::optional<std::uint32_t>& fast = cold ? cs.cold_fast : cs.fast;
      if (!fast) continue;
      ++report.fast_blocks_checked;
      const nand::Block& block = device_.block({chip, *fast});
      nand::PageData acc = zeroed_parity();
      for (std::uint32_t wl = 0; wl < block.programmed_lsb_pages(); ++wl) {
        const nand::PageAddress addr{chip, *fast, {wl, nand::PageType::kLsb}};
        Result<nand::NandDevice::ReadResult> got = device_.read(addr, now);
        ++report.lsb_pages_read;
        // An interrupted (corrupt) LSB program contributes nothing; its
        // write was already discarded in step 1. A failed device read is
        // treated the same (no Result dereference under NDEBUG).
        if (got.is_ok() && got.value().data.is_ok()) {
          acc.xor_with(got.value().data.value());
        }
      }
      (cold ? cs.cold_acc : cs.parity_acc) = acc;
    }
  }

  // A voided erase leaves a free block with surviving media — that is the
  // point: it may have held the only copy of rolled-back data. Any such
  // block not reclaimed above must be scrubbed before reallocation, since
  // programs validate against erased state.
  for (std::uint32_t chip = 0; chip < chips_.size(); ++chip) {
    for (std::uint32_t b = 0; b < device_.visible_blocks(); ++b) {
      const nand::BlockAddress addr{chip, b};
      if (blocks_.use(addr) != ftl::BlockUse::kFree) continue;
      if (device_.block(addr).is_erased()) continue;
      const Result<nand::OpTiming> erased = erase_block(addr, now);
      // A worn-out block fails its scrub erase and is retired instead of
      // re-entering the free pool; recovery proceeds without it.
      assert(erased.is_ok() || erased.code() == ErrorCode::kBlockBad);
      (void)erased;
    }
  }

  report.recovery_time_us = std::max<Microseconds>(0, device_.all_idle_at() - start);
  return report;
}

}  // namespace rps::core
