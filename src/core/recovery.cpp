// Power-loss recovery (Section 3.3, Fig. 7b).
//
// A sudden power-off during an MSB program destroys the paired LSB page's
// previously-acknowledged data. At reboot, flexFTL:
//   1. discards interrupted in-flight writes (they were never acknowledged),
//   2. re-reads every LSB page of every slow block, recomputing the parity;
//      an ECC-uncorrectable page is reconstructed by XOR-ing the saved
//      per-block parity page with the readable pages, and rewritten,
//   3. re-reads the written LSB pages of each active fast block to rebuild
//      its partially-accumulated parity page buffer.
// All reads are charged to the device timeline, so the report's recovery
// time reproduces the paper's reboot-cost estimate.
#include <cassert>

#include "src/core/flex_ftl.hpp"

namespace rps::core {

RecoveryReport FlexFtl::recover_from_power_loss(
    const std::vector<nand::PowerLossVictim>& victims, Microseconds now) {
  RecoveryReport report;
  const Microseconds start = now;

  // Step 1: interrupted programs never completed. If the destroyed page
  // was a relocation copy, its source still exists (a victim block is only
  // erased after its pass commits): roll the mapping back to the newest
  // intact copy. Otherwise it was an in-flight host write that was never
  // acknowledged: discard it.
  for (const nand::PowerLossVictim& victim : victims) {
    const nand::PageAddress addr{victim.chip, victim.block, victim.pos};
    const std::optional<Lpn> lpn = find_lpn_of(addr);
    if (!lpn) continue;
    if (const std::optional<nand::PageAddress> source = find_newest_copy(*lpn, addr)) {
      mapping_.update(*lpn, *source);  // returns `addr`; fix the counters
      blocks_.remove_valid({addr.chip, addr.block});
      blocks_.add_valid({source->chip, source->block});
      ++report.relocations_rolled_back;
    } else {
      mapping_.unmap(*lpn);
      blocks_.remove_valid({addr.chip, addr.block});
      ++report.interrupted_writes_discarded;
    }
  }

  const std::uint32_t wordlines = device_.geometry().wordlines_per_block;
  for (std::uint32_t chip = 0; chip < chips_.size(); ++chip) {
    ChipState& cs = chips_[chip];

    // Step 2: verify every slow block's LSB data by parity recomputation.
    // (Snapshot the queue: rewriting a recovered page may consume MSB pages
    // and retire the head slow block, mutating the deque.)
    std::vector<std::uint32_t> slow_blocks(cs.sbqueue.begin(), cs.sbqueue.end());
    slow_blocks.insert(slow_blocks.end(), cs.cold_sbqueue.begin(),
                       cs.cold_sbqueue.end());
    for (const std::uint32_t blk : slow_blocks) {
      ++report.slow_blocks_checked;
      nand::PageData recomputed = zeroed_parity();
      std::optional<nand::PagePos> lost;
      for (std::uint32_t wl = 0; wl < wordlines; ++wl) {
        const nand::PageAddress addr{chip, blk, {wl, nand::PageType::kLsb}};
        Result<nand::NandDevice::ReadResult> got = device_.read(addr, now);
        assert(got.is_ok());
        ++report.lsb_pages_read;
        if (got.value().data.is_ok()) {
          recomputed.xor_with(got.value().data.value());
        } else {
          // Skip the unreadable page; keep accumulating the rest (Fig. 7b).
          lost = addr.pos;
        }
      }
      if (!lost) continue;

      const nand::PageAddress lost_addr{chip, blk, *lost};
      const auto parity_it = cs.parity_page.find(blk);
      if (parity_it == cs.parity_page.end()) {
        // The block was never protected (backup allocation failed). A
        // stale intact copy elsewhere can still save the data.
        if (const std::optional<Lpn> lpn = find_lpn_of(lost_addr)) {
          if (const auto source = find_newest_copy(*lpn, lost_addr)) {
            mapping_.update(*lpn, *source);
            blocks_.remove_valid({chip, blk});
            blocks_.add_valid({source->chip, source->block});
            ++report.relocations_rolled_back;
          } else {
            mapping_.unmap(*lpn);
            blocks_.remove_valid({chip, blk});
            ++report.pages_lost;
          }
        }
        continue;
      }
      Result<nand::NandDevice::ReadResult> saved =
          device_.read(parity_it->second, now);
      assert(saved.is_ok());
      ++report.parity_pages_read;
      if (!saved.value().data.is_ok()) {
        // The parity page itself was the interrupted program (a power cut
        // during the flush). No MSB of this block can have started — the
        // MSB phase waits for parity durability — so nothing is lost; the
        // block simply proceeds unprotected until its pages are stale.
        cs.parity_page.erase(blk);
        cs.parity_durable.erase(blk);
        ++skipped_backups_;
        continue;
      }

      // lost page = saved parity XOR (XOR of all readable LSB pages).
      nand::PageData recovered = std::move(saved.value().data).take();
      recovered.xor_with(recomputed);
      recovered.spare = 0;  // the parity page's spare held the inverse map

      if (!mapping_.maps_to(recovered.lpn, lost_addr)) {
        // The destroyed page held stale data; nothing to restore.
        continue;
      }
      // Rewrite the reconstructed page at a fresh location and remap.
      const Lpn lpn = recovered.lpn;
      Result<Microseconds> rewritten =
          allocate_gc_page(chip, lpn, std::move(recovered), now, /*background=*/false);
      if (rewritten.is_ok()) {
        ++report.pages_recovered;
      } else {
        mapping_.unmap(lpn);
        blocks_.remove_valid({chip, blk});
        ++report.pages_lost;
      }
    }

    // Step 3: rebuild the parity page buffers of the active fast blocks
    // (host and cold streams) from their already-written LSB pages.
    for (const bool cold : {false, true}) {
      const std::optional<std::uint32_t>& fast = cold ? cs.cold_fast : cs.fast;
      if (!fast) continue;
      ++report.fast_blocks_checked;
      const nand::Block& block = device_.block({chip, *fast});
      nand::PageData acc = zeroed_parity();
      for (std::uint32_t wl = 0; wl < block.programmed_lsb_pages(); ++wl) {
        const nand::PageAddress addr{chip, *fast, {wl, nand::PageType::kLsb}};
        Result<nand::NandDevice::ReadResult> got = device_.read(addr, now);
        assert(got.is_ok());
        ++report.lsb_pages_read;
        // An interrupted (corrupt) LSB program contributes nothing; its
        // write was already discarded in step 1.
        if (got.value().data.is_ok()) acc.xor_with(got.value().data.value());
      }
      (cold ? cs.cold_acc : cs.parity_acc) = acc;
    }
  }

  report.recovery_time_us = std::max<Microseconds>(0, device_.all_idle_at() - start);
  return report;
}

}  // namespace rps::core
