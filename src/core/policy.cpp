#include "src/core/policy.hpp"

#include <algorithm>

#include "src/util/serialize.hpp"

namespace rps::core {

PolicyManager::PolicyManager(const Params& params)
    : params_(params),
      quota_(params.initial_quota),
      alternate_toggle_(std::max<std::uint32_t>(1, params.chips), 0) {}

nand::PageType PolicyManager::alternate(std::uint32_t chip, bool slow_block_available) {
  if (!slow_block_available) return nand::PageType::kLsb;
  std::uint8_t& toggle = alternate_toggle_.at(chip);
  toggle ^= 1;
  return toggle ? nand::PageType::kLsb : nand::PageType::kMsb;
}

nand::PageType PolicyManager::choose(std::uint32_t chip, double buffer_utilization,
                                     bool slow_block_available) {
  if (buffer_utilization > params_.u_high) {
    if (quota_ > 0) return nand::PageType::kLsb;
    return alternate(chip, slow_block_available);
  }
  if (buffer_utilization < params_.u_low) {
    // No bandwidth pressure: consume a slow page, banking quota.
    return slow_block_available ? nand::PageType::kMsb : nand::PageType::kLsb;
  }
  return alternate(chip, slow_block_available);
}

void PolicyManager::note_lsb_write() { --quota_; }

void PolicyManager::note_msb_write() {
  quota_ = std::min(quota_ + 1, params_.initial_quota);
}

void PolicyManager::save(ser::Writer& w) const {
  w.i64(quota_);
  w.u64(alternate_toggle_.size());
  for (const std::uint8_t t : alternate_toggle_) w.u8(t);
}

void PolicyManager::load(ser::Reader& r) {
  quota_ = r.i64();
  if (r.u64() != alternate_toggle_.size()) {
    r.fail();
    return;
  }
  for (std::uint8_t& t : alternate_toggle_) t = r.u8();
}

}  // namespace rps::core
