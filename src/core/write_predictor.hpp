// Future-write predictor (the paper's conclusion, citing Hahn et al. [9]):
// "if flexFTL can more accurately estimate the amount of future writes, a
// background garbage collector can reclaim free blocks more efficiently so
// that more LSB-page writes can be used for future write requests."
//
// This is a deliberately simple instance: an exponentially weighted moving
// average of recent burst sizes (LSB pages consumed between idle periods)
// predicts the next burst, and flexFTL's idle-time quota replenishment
// targets that prediction (plus head-room) instead of always refilling to
// the static ceiling — less idle GC churn with the same burst absorption.
#pragma once

#include <algorithm>
#include <cstdint>

#include "src/util/serialize.hpp"

namespace rps::core {

class WritePredictor {
 public:
  /// `smoothing` in (0, 1]: weight of the newest burst observation.
  explicit WritePredictor(double smoothing = 0.3) : smoothing_(smoothing) {}

  /// Record LSB pages consumed since the previous idle period.
  void observe_burst(std::uint64_t lsb_pages) {
    if (!seeded_) {
      ewma_ = static_cast<double>(lsb_pages);
      seeded_ = true;
    } else {
      ewma_ = smoothing_ * static_cast<double>(lsb_pages) + (1.0 - smoothing_) * ewma_;
    }
    peak_ = std::max(peak_, lsb_pages);
  }

  /// Predicted LSB demand of the next burst, with 2x head-room. The EWMA
  /// forgets one-off outliers (such as the initial fill, which arrives as
  /// one giant "burst"); the caller caps the result at the static quota,
  /// which remains the conservative ceiling the paper's 5% setting gives.
  [[nodiscard]] std::int64_t predicted_demand() const {
    if (!seeded_) return -1;  // no observation yet: caller uses the static quota
    return static_cast<std::int64_t>(2.0 * ewma_ + 1.0);
  }

  [[nodiscard]] bool seeded() const { return seeded_; }
  [[nodiscard]] double ewma() const { return ewma_; }
  [[nodiscard]] std::uint64_t peak() const { return peak_; }

  /// Snapshot support (smoothing is construction-time config).
  void save(ser::Writer& w) const {
    w.f64(ewma_);
    w.u64(peak_);
    w.boolean(seeded_);
  }
  void load(ser::Reader& r) {
    ewma_ = r.f64();
    peak_ = r.u64();
    seeded_ = r.boolean();
  }

 private:
  double smoothing_;
  double ewma_ = 0.0;
  std::uint64_t peak_ = 0;
  bool seeded_ = false;
};

}  // namespace rps::core
