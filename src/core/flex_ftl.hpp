// flexFTL: the paper's RPS-aware FTL (Section 3).
//
// Blocks are programmed under the relaxed program sequence with two-phase
// ordering (2PO): all LSB pages first (the block is a *fast block*), then
// all MSB pages (a *slow block*). Per chip, the block pool manager keeps
//   - one active fast block serving LSB writes,
//   - a FIFO slow-block queue (SBQueue) of LSB-full blocks, whose head is
//     the active slow block serving MSB writes,
//   - full and free pools.
// The adaptive page allocator (PolicyManager) picks LSB vs MSB per write
// from write-buffer utilization and the LSB quota q. While a fast block
// fills, an XOR parity of all its LSB pages accumulates in the parity page
// buffer; one parity page per block is flushed to a backup block (to the
// backup block's LSB pages — legal under RPS) when the last LSB page is
// written, replacing per-paired-page backups entirely. Background GC
// relocates with MSB pages during idle time, reclaiming LSB capacity and
// raising q for future bursts.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/core/policy.hpp"
#include "src/core/write_predictor.hpp"
#include "src/ftl/ftl_base.hpp"
#include "src/util/map_recycle.hpp"
#include "src/util/ring_buffer.hpp"

namespace rps::core {

/// Outcome of the post-power-loss recovery procedure (Section 3.3).
struct RecoveryReport {
  std::uint64_t slow_blocks_checked = 0;
  std::uint64_t fast_blocks_checked = 0;
  std::uint64_t lsb_pages_read = 0;      // parity recomputation reads
  std::uint64_t parity_pages_read = 0;
  std::uint64_t pages_recovered = 0;     // rebuilt from parity
  std::uint64_t pages_lost = 0;          // unrecoverable (no parity coverage)
  std::uint64_t interrupted_writes_discarded = 0;  // in-flight, unacknowledged
  /// Interrupted GC relocation copies rolled back to their still-intact
  /// source pages (the victim block outlives the relocation pass).
  std::uint64_t relocations_rolled_back = 0;
  /// Slow blocks whose saved parity page was itself destroyed by the cut
  /// (power failed during the parity flush): the block proceeds
  /// unprotected, counted — never silently (skipped_parity_backups()).
  std::uint64_t parity_flush_interrupted = 0;
  Microseconds recovery_time_us = 0;

  /// Reports compare whole: the reproducer-replay determinism check in
  /// src/faultsim/ asserts bit-equal reports for bit-equal crashes.
  friend bool operator==(const RecoveryReport&, const RecoveryReport&) = default;
};

class FlexFtl : public ftl::FtlBase {
 public:
  explicit FlexFtl(const ftl::FtlConfig& config);

  [[nodiscard]] std::string_view name() const override { return "flexFTL"; }

  /// Idle-time work (Section 3.2): besides the common low-free-space
  /// background GC, flexFTL keeps the LSB quota q in a high range — GC
  /// relocation copies consume MSB pages, each raising q, so future bursts
  /// can again be absorbed with fast LSB writes.
  void on_idle_plan(Microseconds now, Microseconds deadline) override;

  /// Power-loss recovery: verifies every slow block's LSB data by parity
  /// recomputation, rebuilds lost pages from the per-block parity pages,
  /// discards interrupted unacknowledged writes, and recomputes the parity
  /// accumulators of active fast blocks. `victims` is what the device
  /// reported from NandDevice::inject_power_loss.
  RecoveryReport recover_from_power_loss(
      const std::vector<nand::PowerLossVictim>& victims, Microseconds now);

  // --- observability (tests, benches, examples) ---
  [[nodiscard]] const PolicyManager& policy() const { return policy_; }
  [[nodiscard]] std::int64_t quota() const { return policy_.quota(); }
  [[nodiscard]] std::optional<std::uint32_t> active_fast_block(std::uint32_t chip) const {
    return chips_.at(chip).fast;
  }
  [[nodiscard]] std::size_t sbqueue_depth(std::uint32_t chip) const {
    return chips_.at(chip).sbqueue.size();
  }
  [[nodiscard]] std::size_t cold_sbqueue_depth(std::uint32_t chip) const {
    return chips_.at(chip).cold_sbqueue.size();
  }
  [[nodiscard]] std::optional<std::uint32_t> active_slow_block(std::uint32_t chip) const {
    const auto& q = chips_.at(chip).sbqueue;
    return q.empty() ? std::nullopt : std::optional<std::uint32_t>(q.front());
  }
  [[nodiscard]] std::uint64_t skipped_parity_backups() const { return skipped_backups_; }
  [[nodiscard]] const WritePredictor& write_predictor() const { return predictor_; }

  /// State-sampling hooks (obs::StateSampler): q, and the total SBQueue
  /// depth (hot + cold streams) across every chip.
  [[nodiscard]] std::int64_t observed_lsb_quota() const override {
    return policy_.quota();
  }
  [[nodiscard]] std::uint64_t observed_slow_queue_depth() const override {
    std::uint64_t depth = 0;
    for (const ChipState& chip : chips_) {
      depth += chip.sbqueue.size() + chip.cold_sbqueue.size();
    }
    return depth;
  }

 protected:
  Result<Microseconds> allocate_host_page(std::uint32_t chip, Lpn lpn,
                                          nand::PageData data, Microseconds now,
                                          double buffer_utilization) override;
  Result<Microseconds> allocate_gc_page(std::uint32_t chip, Lpn lpn, nand::PageData data,
                                        Microseconds now, bool background) override;

  void save_extra(ser::Writer& w) const override;
  void load_extra(ser::Reader& r) override;

 private:
  /// A backup block holding per-block parity pages on its LSB pages.
  struct BackupBlock {
    std::uint32_t block = 0;
    std::uint32_t next_lsb = 0;     // parity write frontier
    std::uint32_t live_pages = 0;   // parity pages still protecting a block
  };

  struct ChipState {
    std::optional<std::uint32_t> fast;   // active fast block (host stream)
    RingBuffer<std::uint32_t> sbqueue;  // head = active slow block
    nand::PageData parity_acc;           // parity page buffer for `fast`
    /// Cold stream (GC relocation copies), used when separate_gc_stream:
    std::optional<std::uint32_t> cold_fast;
    RingBuffer<std::uint32_t> cold_sbqueue;
    nand::PageData cold_acc;
    std::optional<BackupBlock> backup;   // current backup block
    std::vector<BackupBlock> retiring;   // full backup blocks, still live
    /// slow block -> when its parity page became durable (MSB writes wait).
    std::unordered_map<std::uint32_t, Microseconds> parity_durable;
    /// slow block -> where its parity page lives.
    std::unordered_map<std::uint32_t, nand::PageAddress> parity_page;
    /// Banked map nodes: the durable/page insert-erase cycle recycles
    /// nodes instead of churning the heap (util/map_recycle.hpp).
    std::vector<std::unordered_map<std::uint32_t, Microseconds>::node_type>
        durable_spares;
    std::vector<std::unordered_map<std::uint32_t, nand::PageAddress>::node_type>
        page_spares;
    /// Retirement log for the final-MSB grace window. The full transition
    /// retires a block's parity page eagerly (bookkeeping must not lag, or
    /// free-pool dynamics diverge), but the final MSB program only
    /// *completes* at `at` — until then a power cut destroys the paired
    /// LSB page and that parity page is still its only copy. Each
    /// retirement is logged here with the parity page's address; recovery
    /// voids entries whose `at` lies beyond the cut and re-hooks `parity`
    /// for reconstruction (the page's media survives the cut: its backup
    /// block's erase, if one was charged, started after `at` and is voided
    /// by the lazy-erase power-loss rules). Entries are pruned once the
    /// chip timeline provably passed `at`.
    struct RetirementLogEntry {
      std::uint32_t block = 0;
      Microseconds at = 0;
      nand::PageAddress parity;
    };
    std::vector<RetirementLogEntry> retire_log;
  };

  static nand::PageData zeroed_parity();

  Result<Microseconds> write_lsb(std::uint32_t chip, Lpn lpn, nand::PageData data,
                                 Microseconds now, bool gc, bool cold = false);
  Result<Microseconds> write_msb(std::uint32_t chip, Lpn lpn, nand::PageData data,
                                 Microseconds now, bool gc, bool prefer_cold = false);

  /// Flush the chip's accumulated parity page for `fast_block` (just
  /// LSB-completed); returns when it is durable.
  Microseconds flush_parity(std::uint32_t chip, std::uint32_t fast_block,
                            Microseconds now);
  Microseconds flush_parity_from(std::uint32_t chip, std::uint32_t fast_block,
                                 const nand::PageData& acc, Microseconds now);

  /// The slow block finished its MSB phase: its parity page is stale.
  void invalidate_parity(std::uint32_t chip, std::uint32_t slow_block,
                         Microseconds now);

  /// One parity page of `backup_block` went stale: drop its live count,
  /// recycling the backup block once nothing in it protects anything.
  void release_parity_page(std::uint32_t chip, std::uint32_t backup_block,
                           Microseconds now);

  /// Drop retirement-log entries settled by time `now` (their final MSB
  /// program provably completed; no power loss can void them anymore).
  void prune_retire_log(std::uint32_t chip, Microseconds now);

  /// Find the LPN currently mapped to `addr` (linear scan; recovery only).
  [[nodiscard]] std::optional<Lpn> find_lpn_of(const nand::PageAddress& addr) const;

  /// Media scan for the newest intact copy of `lpn` other than `exclude` —
  /// how recovery rolls an interrupted relocation back to its source.
  [[nodiscard]] std::optional<nand::PageAddress> find_newest_copy(
      Lpn lpn, const nand::PageAddress& exclude) const;

  std::vector<ChipState> chips_;
  PolicyManager policy_;
  WritePredictor predictor_;
  std::uint64_t lsb_since_idle_ = 0;  // burst-size observation for the predictor
  std::uint64_t skipped_backups_ = 0;
};

}  // namespace rps::core
