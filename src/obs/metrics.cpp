#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "src/nand/device.hpp"
#include "src/nand/tlc_device.hpp"

namespace rps::obs {

WearSummary summarize_wear(const std::vector<const nand::BlockWear*>& blocks) {
  WearSummary s;
  s.blocks = blocks.size();
  if (blocks.empty()) return s;

  // Pass 1: totals and extremes (and the sums the moments need).
  std::uint64_t sum_e = 0;
  std::uint64_t sum_p = 0;
  double sum_e_sq = 0.0;
  s.min_erases = blocks.front()->erases;
  s.min_programs = blocks.front()->programs;
  for (const nand::BlockWear* w : blocks) {
    sum_e += w->erases;
    sum_p += w->programs;
    const double e = static_cast<double>(w->erases);
    sum_e_sq += e * e;
    s.min_erases = std::min(s.min_erases, w->erases);
    s.max_erases = std::max(s.max_erases, w->erases);
    s.min_programs = std::min(s.min_programs, w->programs);
    s.max_programs = std::max(s.max_programs, w->programs);
  }
  s.total_erases = sum_e;
  s.total_programs = sum_p;
  const double n = static_cast<double>(blocks.size());
  s.mean_erases = static_cast<double>(sum_e) / n;
  s.mean_programs = static_cast<double>(sum_p) / n;
  if (s.mean_erases > 0.0) {
    // Population variance via E[x^2] - mean^2; clamp the tiny negative
    // rounding residue a uniform ledger can produce.
    const double var =
        std::max(0.0, sum_e_sq / n - s.mean_erases * s.mean_erases);
    s.cov_erases = std::sqrt(var) / s.mean_erases;
    s.max_over_mean_erases = static_cast<double>(s.max_erases) / s.mean_erases;
  }

  // Pass 2: fixed-width histogram sized to the observed maximum so every
  // bucket is meaningful at any wear level (width >= 1; last bucket
  // open-ended catches the max itself).
  s.bucket_width = s.max_erases / WearSummary::kHistBuckets + 1;
  for (const nand::BlockWear* w : blocks) {
    const std::uint64_t b =
        std::min<std::uint64_t>(w->erases / s.bucket_width,
                                WearSummary::kHistBuckets - 1);
    ++s.pe_histogram[b];
  }
  return s;
}

namespace {

template <typename DeviceT>
WearSummary collect_wear_impl(const DeviceT& device, std::uint32_t units) {
  std::vector<const nand::BlockWear*> blocks;
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < units; ++c) {
    total += device.chip(c).wear_ledger().size();
  }
  blocks.reserve(total);
  for (std::uint32_t c = 0; c < units; ++c) {
    for (const nand::BlockWear& w : device.chip(c).wear_ledger()) {
      blocks.push_back(&w);
    }
  }
  return summarize_wear(blocks);
}

}  // namespace

WearSummary collect_wear(const nand::NandDevice& device) {
  return collect_wear_impl(device, device.geometry().num_units());
}

WearSummary collect_wear(const nand::TlcDevice& device) {
  return collect_wear_impl(device, device.geometry().num_chips());
}

double waf_of(const nand::AttributionCounters& a, nand::WriteCause cause) {
  const std::uint64_t host = a.programs(nand::WriteCause::kHost);
  if (host == 0) return 0.0;
  return static_cast<double>(a.programs(cause)) / static_cast<double>(host);
}

double waf_total(const nand::AttributionCounters& a) {
  const std::uint64_t host = a.programs(nand::WriteCause::kHost);
  if (host == 0) return 0.0;
  return static_cast<double>(a.total_programs()) / static_cast<double>(host);
}

MetricsReport::MetricsReport() {
  out_ = "{\"metrics_version\":";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u", kVersion);
  out_ += buf;
}

void MetricsReport::key_prefix(std::string_view key) {
  assert(!sealed_);
  if (need_comma_) out_ += ',';
  need_comma_ = true;
  out_ += '"';
  out_.append(key.data(), key.size());
  out_ += "\":";
}

void MetricsReport::begin(std::string_view key) {
  key_prefix(key);
  out_ += '{';
  need_comma_ = false;
  ++depth_;
}

void MetricsReport::end() {
  assert(depth_ > 1);  // the root object is closed by str()
  out_ += '}';
  need_comma_ = true;
  --depth_;
}

void MetricsReport::add_u64(std::string_view key, std::uint64_t v) {
  key_prefix(key);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
}

void MetricsReport::add_i64(std::string_view key, std::int64_t v) {
  key_prefix(key);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
}

void MetricsReport::add_f64(std::string_view key, double v) {
  key_prefix(key);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out_ += buf;
}

void MetricsReport::add_str(std::string_view key, std::string_view v) {
  key_prefix(key);
  out_ += '"';
  for (const char c : v) {
    // Report strings are FTL/preset names; escape the JSON must-escapes.
    if (c == '"' || c == '\\') out_ += '\\';
    out_ += c;
  }
  out_ += '"';
}

void MetricsReport::add_u64_array(std::string_view key, const std::uint64_t* v,
                                  std::size_t n) {
  key_prefix(key);
  out_ += '[';
  char buf[24];
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) out_ += ',';
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v[i]));
    out_ += buf;
  }
  out_ += ']';
}

void MetricsReport::add_attribution(const nand::AttributionCounters& a) {
  begin("attribution");
  begin("programs_by_cause");
  for (std::uint32_t c = 0; c < nand::kNumWriteCauses; ++c) {
    const nand::WriteCause cause = static_cast<nand::WriteCause>(c);
    begin(nand::to_string(cause));
    add_u64("lsb", a.lsb_programs[c]);
    add_u64("msb", a.msb_programs[c]);
    add_u64("total", a.programs(cause));
    end();
  }
  end();
  begin("erases_by_cause");
  for (std::uint32_t c = 0; c < nand::kNumWriteCauses; ++c) {
    add_u64(nand::to_string(static_cast<nand::WriteCause>(c)), a.erases[c]);
  }
  end();
  add_u64("total_programs", a.total_programs());
  add_u64("total_erases", a.total_erases());
  add_u64("meta_programs", a.meta_programs);
  add_u64_array("stream_programs", a.stream_programs.data(),
                a.stream_programs.size());
  begin("waf");
  add_f64("total", waf_total(a));
  for (std::uint32_t c = 0; c < nand::kNumWriteCauses; ++c) {
    const nand::WriteCause cause = static_cast<nand::WriteCause>(c);
    add_f64(nand::to_string(cause), waf_of(a, cause));
  }
  end();
  end();
}

void MetricsReport::add_wear(const WearSummary& w) {
  begin("wear");
  add_u64("blocks", w.blocks);
  add_u64("total_erases", w.total_erases);
  add_u64("total_programs", w.total_programs);
  add_u64("min_erases", w.min_erases);
  add_u64("max_erases", w.max_erases);
  add_f64("mean_erases", w.mean_erases);
  add_f64("cov_erases", w.cov_erases);
  add_f64("max_over_mean_erases", w.max_over_mean_erases);
  add_u64("min_programs", w.min_programs);
  add_u64("max_programs", w.max_programs);
  add_f64("mean_programs", w.mean_programs);
  add_u64("pe_bucket_width", w.bucket_width);
  add_u64_array("pe_histogram", w.pe_histogram.data(), w.pe_histogram.size());
  end();
}

std::string MetricsReport::str() {
  assert(depth_ == 1);  // every begin() matched by an end()
  if (!sealed_) {
    out_ += "}\n";
    sealed_ = true;
  }
  return out_;
}

bool MetricsReport::write_file(const std::string& path) {
  const std::string body = str();
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f.is_open()) return false;
  f.write(body.data(), static_cast<std::streamsize>(body.size()));
  return f.good();
}

}  // namespace rps::obs
