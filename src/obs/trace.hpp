// Deterministic sim-time tracing.
//
// A TraceSink records structured events stamped with *simulated*
// microseconds — never wall clock — so a trace is a pure function of the
// run's configuration: two runs of the same seed produce byte-identical
// exports, and a trace taken at --jobs=N is identical to --jobs=1 (traced
// runs are single-threaded; parallel sweeps give each trial its own pid
// scope and force jobs=1 while a sink is attached).
//
// The whole layer is runtime-off by default: instrumented components hold
// a TraceSink* that is null unless a harness attaches one, so the disabled
// cost of every site is a single pointer test (verified by bench_simcore's
// 5%-of-baseline gate). Events carry an EventKind plus three kind-specific
// integer args (see the taxonomy below); the exporter maps them to Chrome
// trace_event JSON that Perfetto / chrome://tracing opens directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/types.hpp"

namespace rps::obs {

/// The event taxonomy (DESIGN.md section 11). Arg slots a/b/c per kind:
///   kHostRead / kHostWrite   a=lpn  b=pages  c=queued_us (issue - arrival)
///   kIdleWindow              a=duration handed to the FTL (== dur)
///   kNandRead / kNandWrite   a=lpn  b=command id  c=wait_us (start - ready)
///   kGcForeground/kGcBackground  a=victim block  b=pages copied  c=freed(0/1)
///   kParityFlush             a=fast block  b=backup block  c=skipped(0/1)
///   kBlockFastToSlow         a=block (last LSB page written; joins SBQueue)
///   kBlockSlowToFull         a=block (last MSB page written)
///   kBlockReclaimed          a=block  b=background(0/1) (erased + freed)
///   kPowerLossCut            a=in-flight programs destroyed
///   kRecovery                a=pages recovered  b=pages lost  c=supported(0/1)
///   kBlockRemapped           a=visible block  b=old physical  c=new physical
///   kBlockRetired            a=visible block  b=old physical  c=cause
enum class EventKind : std::uint8_t {
  kHostRead,
  kHostWrite,
  kIdleWindow,
  kNandRead,
  kNandWrite,
  kGcForeground,
  kGcBackground,
  kParityFlush,
  kBlockFastToSlow,
  kBlockSlowToFull,
  kBlockReclaimed,
  kPowerLossCut,
  kRecovery,
  kBlockRemapped,  // grown-bad block redirected to a spare
  kBlockRetired,   // grown-bad block with no spare left: capacity lost
  kCounter,        // Perfetto counter sample ("C" phase): a=track, b=value*1e6
};

/// Counter-track taxonomy for kCounter events (ISSUE 10): each track is a
/// named time series Perfetto renders as a counter lane. Values are fixed-
/// point (scaled by 1e6 into TraceEvent::b) so the export stays integer-
/// deterministic while the JSON prints the natural unit.
enum class CounterTrack : std::uint8_t {
  kUtilization,   // host write-buffer utilization [0, 1]
  kFreeFraction,  // free blocks / total blocks, device-wide
  kWriteQueue,    // controller write FIFO depth
  kSbQueue,       // flexFTL slow-block queue depth (all chips)
  kLsbQuota,      // flexFTL LSB quota (clamped at 0 for the track)
  kWaf,           // cumulative write amplification (device programs / host)
  kMaxPe,         // max per-block erase count, device-wide
  kMeanPe,        // mean per-block erase count, device-wide
};
inline constexpr std::uint32_t kNumCounterTracks = 8;

const char* to_string(CounterTrack track);

/// Exporter metadata for a kind: Chrome trace name + category.
const char* to_string(EventKind kind);
const char* category(EventKind kind);

struct TraceEvent {
  EventKind kind = EventKind::kHostRead;
  std::uint32_t pid = 0;   // trace scope: 0 = the run; sweeps use 1 + trial index
  std::uint32_t tid = 0;   // lane: 0 = host, chip c = lane c + 1
  Microseconds ts = 0;     // simulated microseconds
  Microseconds dur = -1;   // < 0 renders as an instant event
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class TraceSink {
 public:
  /// Scope subsequent events under `pid` (sweep drivers: one pid per trial).
  void set_pid(std::uint32_t pid) { pid_ = pid; }
  [[nodiscard]] std::uint32_t pid() const { return pid_; }

  /// Planes per chip of the traced device. With planes > 1 the per-unit
  /// lanes are named "chip C.P" (die C, plane P); at the default 1 the
  /// legacy "chip N" names are kept so exports stay byte-identical.
  void set_planes(std::uint32_t planes) { planes_ = planes == 0 ? 1 : planes; }
  [[nodiscard]] std::uint32_t planes() const { return planes_; }

  /// Record one event. Hot instrumentation sites call this behind a null
  /// check on their sink pointer; the call itself is a push_back.
  void record(EventKind kind, std::uint32_t tid, Microseconds ts, Microseconds dur,
              std::uint64_t a = 0, std::uint64_t b = 0, std::uint64_t c = 0) {
    events_.push_back(TraceEvent{kind, pid_, tid, ts, dur, a, b, c});
  }

  /// Record one counter sample on `track` at simulated time `ts`.
  /// `value_micro` is the value scaled by 1e6 (fixed-point, so the sample
  /// stream is pure integers; the exporter prints value_micro / 1e6 with
  /// %.6f). Counter lanes live on tid 0 of the current pid.
  void record_counter(CounterTrack track, Microseconds ts, std::uint64_t value_micro) {
    events_.push_back(TraceEvent{EventKind::kCounter, pid_, 0, ts, -1,
                                 static_cast<std::uint64_t>(track), value_micro, 0});
  }

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Number of recorded events of `kind` (test/CI validation helper).
  [[nodiscard]] std::size_t count(EventKind kind) const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}) — what Perfetto and
  /// chrome://tracing load. Deterministic byte-for-byte: metadata first
  /// (process/thread names in (pid, tid) order), then events in record
  /// order, all-integer args.
  [[nodiscard]] std::string to_chrome_json() const;

  /// Write to_chrome_json() to `path`. False on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
  std::uint32_t pid_ = 0;
  std::uint32_t planes_ = 1;
};

}  // namespace rps::obs
