#include "src/obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace rps::obs {

std::size_t LatencyHistogram::bucket_index(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  // Values in [2^m, 2^(m+1)) with m >= kSubBucketBits map to octave
  // m - kSubBucketBits + 1, sub-bucket (value >> shift) - kSubBuckets.
  const auto msb = static_cast<std::uint32_t>(std::bit_width(value) - 1);
  const std::uint32_t shift = msb - kSubBucketBits;
  const std::uint64_t sub = (value >> shift) - kSubBuckets;
  return static_cast<std::size_t>((static_cast<std::uint64_t>(shift) + 1)
                                      * kSubBuckets +
                                  sub);
}

std::uint64_t LatencyHistogram::bucket_low(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::uint64_t shift = index / kSubBuckets - 1;
  const std::uint64_t sub = index % kSubBuckets + kSubBuckets;
  return sub << shift;
}

std::uint64_t LatencyHistogram::bucket_high(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::uint64_t shift = index / kSubBuckets - 1;
  return bucket_low(index) + (1ull << shift) - 1;
}

void LatencyHistogram::add(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  const std::size_t index = bucket_index(value);
  if (index >= counts_.size()) counts_.resize(index + 1, 0);
  counts_[index] += count;
  total_ += count;
  sum_ += value * count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.total_ == 0) return;
  if (other.counts_.size() > counts_.size()) counts_.resize(other.counts_.size(), 0);
  for (std::size_t i = 0; i < other.counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::clear() {
  counts_.clear();
  total_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<std::uint64_t>::max();
  max_ = 0;
}

std::uint64_t LatencyHistogram::percentile(double p) const {
  if (total_ == 0) return 0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max_;
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(total_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) return std::min(bucket_high(i), max_);
  }
  return max_;
}

double LatencyHistogram::cdf_at(std::uint64_t v) const {
  if (total_ == 0) return 0.0;
  const std::size_t cap = bucket_index(v);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size() && i <= cap; ++i) seen += counts_[i];
  return static_cast<double>(seen) / static_cast<double>(total_);
}

std::string LatencyHistogram::to_json() const {
  std::string out = "{\"count\":";
  char buf[96];
  const auto u64 = [&](std::uint64_t v) {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    out += buf;
  };
  u64(total_);
  out += ",\"sum\":";
  u64(sum_);
  out += ",\"min\":";
  u64(min());
  out += ",\"max\":";
  u64(max_);
  out += ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"lo\":";
    u64(bucket_low(i));
    out += ",\"hi\":";
    u64(bucket_high(i));
    out += ",\"count\":";
    u64(counts_[i]);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace rps::obs
