// Single-point counter snapshot / delta helper.
//
// The simulator measures every phase (warm-up, main run) as a *delta* of
// the FTL's monotonic counters. Before this helper, each call site copied
// the subtraction field by field — and drifted: simulator.cpp's main-run
// delta had silently dropped `scrubbed_blocks`. Registry captures all
// three counter families (NAND op counters, FTL stats, total erases) in
// one struct, and delta() subtracts every field in one place, so adding a
// counter means touching exactly two functions here.
//
// Header-only on purpose: it reads ftl::FtlBase accessors but must not
// create a link cycle (rps_ftl links rps_obs for the trace sink).
#pragma once

#include <cstdint>

#include "src/ftl/ftl_base.hpp"
#include "src/nand/chip.hpp"

namespace rps::obs {

struct CounterSnapshot {
  nand::OpCounters ops;
  ftl::FtlStats ftl;
  std::uint64_t erases = 0;
};

class Registry {
 public:
  /// Copy every monotonic counter the FTL exposes, at this instant.
  [[nodiscard]] static CounterSnapshot capture(const ftl::FtlBase& f) {
    CounterSnapshot snap;
    snap.ops = f.device().total_counters();
    snap.ftl = f.stats();
    snap.erases = f.device().total_erase_count();
    return snap;
  }

  /// Field-wise `after - before`. Counters are monotonic, so every field
  /// of `after` is >= its `before` counterpart within one run.
  [[nodiscard]] static CounterSnapshot delta(const CounterSnapshot& before,
                                             const CounterSnapshot& after) {
    CounterSnapshot d;
    d.ops.reads = after.ops.reads - before.ops.reads;
    d.ops.lsb_programs = after.ops.lsb_programs - before.ops.lsb_programs;
    d.ops.msb_programs = after.ops.msb_programs - before.ops.msb_programs;
    d.ops.erases = after.ops.erases - before.ops.erases;
    d.ftl.host_write_pages = after.ftl.host_write_pages - before.ftl.host_write_pages;
    d.ftl.host_read_pages = after.ftl.host_read_pages - before.ftl.host_read_pages;
    d.ftl.host_lsb_writes = after.ftl.host_lsb_writes - before.ftl.host_lsb_writes;
    d.ftl.host_msb_writes = after.ftl.host_msb_writes - before.ftl.host_msb_writes;
    d.ftl.gc_copy_pages = after.ftl.gc_copy_pages - before.ftl.gc_copy_pages;
    d.ftl.backup_pages = after.ftl.backup_pages - before.ftl.backup_pages;
    d.ftl.foreground_gc_blocks =
        after.ftl.foreground_gc_blocks - before.ftl.foreground_gc_blocks;
    d.ftl.background_gc_blocks =
        after.ftl.background_gc_blocks - before.ftl.background_gc_blocks;
    d.ftl.unmapped_reads = after.ftl.unmapped_reads - before.ftl.unmapped_reads;
    d.ftl.read_errors = after.ftl.read_errors - before.ftl.read_errors;
    d.ftl.scrubbed_blocks = after.ftl.scrubbed_blocks - before.ftl.scrubbed_blocks;
    d.erases = after.erases - before.erases;
    return d;
  }
};

}  // namespace rps::obs
