// Single-point counter snapshot / delta helper.
//
// The simulator measures every phase (warm-up, main run) as a *delta* of
// the FTL's monotonic counters. Before this helper, each call site copied
// the subtraction field by field — and drifted: simulator.cpp's main-run
// delta had silently dropped `scrubbed_blocks`, and the helper itself
// later dropped `remapped_blocks`/`retired_blocks`/`coalesced_erases`
// when those were added. delta() is now generated from the same X-macro
// field lists that declare the counter structs (src/util/counter_fields.hpp),
// so a field added to a struct is subtracted here by construction.
//
// Header-only on purpose: it reads ftl::FtlBase accessors but must not
// create a link cycle (rps_ftl links rps_obs for the trace sink).
#pragma once

#include <cstdint>

#include "src/ftl/ftl_base.hpp"
#include "src/nand/attribution.hpp"
#include "src/nand/chip.hpp"
#include "src/util/counter_fields.hpp"

namespace rps::obs {

struct CounterSnapshot {
  nand::OpCounters ops;
  ftl::FtlStats ftl;
  nand::AttributionCounters attribution;
  std::uint64_t erases = 0;
};

class Registry {
 public:
  /// Copy every monotonic counter the FTL exposes, at this instant.
  [[nodiscard]] static CounterSnapshot capture(const ftl::FtlBase& f) {
    CounterSnapshot snap;
    snap.ops = f.device().total_counters();
    snap.ftl = f.stats();
    snap.attribution = f.device().attribution();
    snap.erases = f.device().total_erase_count();
    return snap;
  }

  /// Field-wise `after - before`. Counters are monotonic, so every field
  /// of `after` is >= its `before` counterpart within one run.
  [[nodiscard]] static CounterSnapshot delta(const CounterSnapshot& before,
                                             const CounterSnapshot& after) {
    CounterSnapshot d;
#define RPS_FIELD(name) d.ops.name = after.ops.name - before.ops.name;
    RPS_OP_COUNTER_FIELDS(RPS_FIELD)
#undef RPS_FIELD
#define RPS_FIELD(name) d.ftl.name = after.ftl.name - before.ftl.name;
    RPS_FTL_STAT_FIELDS(RPS_FIELD)
#undef RPS_FIELD
    d.attribution = nand::delta(after.attribution, before.attribution);
    d.erases = after.erases - before.erases;
    return d;
  }
};

}  // namespace rps::obs
