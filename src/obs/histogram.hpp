// Log-bucketed, mergeable latency histogram.
//
// Replaces the ad-hoc sort-and-index percentile code of the bench
// harnesses with a fixed bucket layout whose contents are plain integer
// counts: merging two histograms is element-wise u64 addition, which is
// commutative and associative — so a sweep that shards samples across
// parallel_for_indexed slots and merges the per-slot histograms in slot
// order produces bit-identical results for ANY --jobs value (and any
// merge order).
//
// Bucket layout (HdrHistogram-style): values below 2^kSubBucketBits are
// exact (one bucket per integer); above that, each power-of-two octave is
// split into 2^kSubBucketBits linear sub-buckets, so every reported
// quantile is within a 2^-kSubBucketBits (< 0.8%) relative error of the
// true sample. Quantiles are reported as the bucket's upper bound, capped
// at the observed max — deterministic, and never below the true value.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace rps::obs {

class LatencyHistogram {
 public:
  /// Sub-buckets per octave = 2^7 = 128 -> <0.8% relative quantile error.
  static constexpr std::uint32_t kSubBucketBits = 7;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;

  /// Record `count` samples of `value` (microseconds, or any non-negative
  /// integer unit — the histogram is unit-agnostic).
  void add(std::uint64_t value, std::uint64_t count = 1);

  /// Element-wise accumulate `other` into this. Exact: counts, sum, min
  /// and max all combine with commutative integer ops.
  void merge(const LatencyHistogram& other);

  void clear();

  /// Pre-size the bucket array to its maximum possible extent (~58 KiB)
  /// so no later add() grows it — lets a caller front-load every
  /// allocation before an allocation-audited window. Semantics are
  /// unchanged: trailing zero buckets are invisible to ==, to_json and
  /// the quantile queries.
  void reserve_max() {
    const std::size_t full =
        bucket_index(std::numeric_limits<std::uint64_t>::max()) + 1;
    if (counts_.size() < full) counts_.resize(full, 0);
  }

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] bool empty() const { return total_ == 0; }
  /// Exact sum of every added value (not bucket-quantized).
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return total_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(total_);
  }

  /// Value at percentile p in [0, 100]: the upper bound of the bucket
  /// holding the ceil(p/100 * count)-th smallest sample, capped at max().
  [[nodiscard]] std::uint64_t percentile(double p) const;
  [[nodiscard]] std::uint64_t p50() const { return percentile(50.0); }
  [[nodiscard]] std::uint64_t p95() const { return percentile(95.0); }
  [[nodiscard]] std::uint64_t p99() const { return percentile(99.0); }
  [[nodiscard]] std::uint64_t p999() const { return percentile(99.9); }

  /// Empirical CDF: fraction of samples whose bucket lies at or below the
  /// bucket of `v` (within one bucket's relative error of the true CDF).
  [[nodiscard]] double cdf_at(std::uint64_t v) const;

  /// Non-empty buckets as {"lo":..,"hi":..,"count":..} JSON (tests and
  /// artifacts; byte-deterministic).
  [[nodiscard]] std::string to_json() const;

  friend bool operator==(const LatencyHistogram& x, const LatencyHistogram& y) {
    if (x.total_ != y.total_ || x.sum_ != y.sum_ || x.max_ != y.max_) return false;
    if (x.min() != y.min()) return false;
    // Trailing zero buckets are insignificant (growth is on demand).
    const std::size_t n = std::max(x.counts_.size(), y.counts_.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t cx = i < x.counts_.size() ? x.counts_[i] : 0;
      const std::uint64_t cy = i < y.counts_.size() ? y.counts_[i] : 0;
      if (cx != cy) return false;
    }
    return true;
  }

  /// Bucket arithmetic (exposed for tests).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value);
  /// Inclusive upper bound of bucket `index`.
  [[nodiscard]] static std::uint64_t bucket_high(std::size_t index);
  /// Inclusive lower bound of bucket `index`.
  [[nodiscard]] static std::uint64_t bucket_low(std::size_t index);

 private:
  std::vector<std::uint64_t> counts_;  // grown on demand
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

}  // namespace rps::obs
