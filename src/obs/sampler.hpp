// Periodic FTL-state sampler on the simulated clock.
//
// A StateSampler emits one StateSample per elapsed `period_us` of
// simulated time, stamped on the absolute period grid (every sample's
// ts is a multiple of the period, and timestamps strictly increase — the
// cadence property the tests assert). It is *driven*, not self-running:
// the command controller ticks it at every event-queue instant and the
// simulator ticks it at request boundaries, so sampling needs no thread,
// no wall clock, and is exactly reproducible.
//
// What goes into a sample is the caller's business: the sampler stores a
// Collector callback (built by sim::make_state_collector from an FTL and
// an optional controller) so this layer depends on nothing above
// src/util. Disabled cost is a null-pointer test at every tick site; an
// attached sampler's off-grid tick costs one division and a compare.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/util/types.hpp"

namespace rps::obs {

class TraceSink;

/// One snapshot of the internal dynamics the paper's flexFTL is governed
/// by (Section 3.2), plus scheduler state. Fields an FTL has no notion of
/// keep their defaults (q = -1, sbqueue = 0).
struct StateSample {
  Microseconds ts = 0;        // simulated time, multiple of the period
  double u = 0.0;             // host write-buffer utilization [0, 1]
  std::int64_t q = -1;        // flexFTL LSB quota; -1 = not applicable
  std::uint64_t sbqueue = 0;  // total slow-block queue depth across chips
  double free_fraction = 0.0; // free blocks / total blocks, device-wide
  std::uint64_t queued_write_ops = 0;  // controller write FIFO depth
  std::vector<std::uint64_t> chip_queue;  // per-chip queued read ops

  // Wear / write-amplification lanes (ISSUE 10). Appended after the chip
  // columns in the CSV/JSON exports so pre-existing column positions are
  // stable. Filled by collectors with wear-ledger access; defaults mean
  // "not collected".
  std::uint64_t wear_max_pe = 0;  // max per-block erase count, device-wide
  double wear_mean_pe = 0.0;      // mean per-block erase count, device-wide
  double waf = 0.0;  // cumulative WAF (attributed programs / host programs)
};

class StateSampler {
 public:
  using Collector = std::function<void(StateSample&)>;

  explicit StateSampler(Microseconds period_us, Collector collector = {});

  /// Install / replace the collector (harnesses that build the sampler
  /// before the FTL exists — e.g. run_experiment wires its own FTL and
  /// controller into a caller-supplied sampler).
  void set_collector(Collector collector) { collector_ = std::move(collector); }

  /// The latest host buffer utilization, stamped into every sample (the
  /// simulator updates it per request; it is not derivable from the FTL).
  void set_utilization(double u) { u_ = u; }

  /// Mirror every emitted sample into `sink` as Perfetto counter tracks
  /// ("C" events: utilization, free fraction, queue depths, WAF, wear).
  /// nullptr detaches. The sink is borrowed, same discipline as the
  /// simulator's trace sink; traced runs are single-threaded so the
  /// forwarded stream is deterministic.
  void set_counter_sink(TraceSink* sink) { counter_sink_ = sink; }

  /// Advance the sampler to simulated time `now`: emits one sample at
  /// floor(now / period) * period if that grid point has not been sampled
  /// yet. Call freely (every event instant) — off-grid calls are cheap.
  void tick(Microseconds now);

  [[nodiscard]] Microseconds period() const { return period_; }
  [[nodiscard]] const std::vector<StateSample>& samples() const { return samples_; }
  void clear();

  /// CSV time series: ts_us,u,q,sbqueue,free_frac,write_q,chip0,chip1,...
  /// (one chipN column per chip of the first sample).
  [[nodiscard]] std::string to_csv() const;
  bool write_csv(const std::string& path) const;

  /// JSON array of sample objects (same fields as the CSV).
  [[nodiscard]] std::string to_json() const;
  bool write_json(const std::string& path) const;

 private:
  void forward_counters(const StateSample& sample);

  Microseconds period_;
  Microseconds last_slot_ = -1;  // grid point of the newest sample
  double u_ = 0.0;
  Collector collector_;
  TraceSink* counter_sink_ = nullptr;  // borrowed; null = no counter tracks
  std::vector<StateSample> samples_;
};

}  // namespace rps::obs
