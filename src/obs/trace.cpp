#include "src/obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace rps::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kHostRead: return "host_read";
    case EventKind::kHostWrite: return "host_write";
    case EventKind::kIdleWindow: return "idle_window";
    case EventKind::kNandRead: return "nand_read";
    case EventKind::kNandWrite: return "nand_write";
    case EventKind::kGcForeground: return "gc_foreground";
    case EventKind::kGcBackground: return "gc_background";
    case EventKind::kParityFlush: return "parity_flush";
    case EventKind::kBlockFastToSlow: return "fast_to_slow";
    case EventKind::kBlockSlowToFull: return "slow_to_full";
    case EventKind::kBlockReclaimed: return "block_reclaimed";
    case EventKind::kPowerLossCut: return "power_loss_cut";
    case EventKind::kRecovery: return "recovery";
    case EventKind::kBlockRemapped: return "block_remapped";
    case EventKind::kBlockRetired: return "block_retired";
    case EventKind::kCounter: return "counter";
  }
  __builtin_unreachable();
}

const char* to_string(CounterTrack track) {
  switch (track) {
    case CounterTrack::kUtilization: return "buffer_utilization";
    case CounterTrack::kFreeFraction: return "free_fraction";
    case CounterTrack::kWriteQueue: return "write_queue";
    case CounterTrack::kSbQueue: return "sbqueue";
    case CounterTrack::kLsbQuota: return "lsb_quota";
    case CounterTrack::kWaf: return "waf";
    case CounterTrack::kMaxPe: return "max_pe";
    case CounterTrack::kMeanPe: return "mean_pe";
  }
  __builtin_unreachable();
}

const char* category(EventKind kind) {
  switch (kind) {
    case EventKind::kHostRead:
    case EventKind::kHostWrite:
    case EventKind::kIdleWindow:
      return "host";
    case EventKind::kNandRead:
    case EventKind::kNandWrite:
      return "nand";
    case EventKind::kGcForeground:
    case EventKind::kGcBackground:
      return "gc";
    case EventKind::kParityFlush:
      return "parity";
    case EventKind::kBlockFastToSlow:
    case EventKind::kBlockSlowToFull:
    case EventKind::kBlockReclaimed:
      return "block";
    case EventKind::kPowerLossCut:
    case EventKind::kRecovery:
      return "power";
    case EventKind::kBlockRemapped:
    case EventKind::kBlockRetired:
      return "badblock";
    case EventKind::kCounter:
      return "counter";
  }
  __builtin_unreachable();
}

namespace {

/// Names for the a/b/c arg slots; nullptr = slot unused by this kind.
struct ArgNames {
  const char* a = nullptr;
  const char* b = nullptr;
  const char* c = nullptr;
};

ArgNames arg_names(EventKind kind) {
  switch (kind) {
    case EventKind::kHostRead:
    case EventKind::kHostWrite:
      return {"lpn", "pages", "queued_us"};
    case EventKind::kIdleWindow:
      return {"duration_us", nullptr, nullptr};
    case EventKind::kNandRead:
    case EventKind::kNandWrite:
      return {"lpn", "cmd", "wait_us"};
    case EventKind::kGcForeground:
    case EventKind::kGcBackground:
      return {"victim_block", "copies", "freed"};
    case EventKind::kParityFlush:
      return {"fast_block", "backup_block", "skipped"};
    case EventKind::kBlockFastToSlow:
    case EventKind::kBlockSlowToFull:
      return {"block", nullptr, nullptr};
    case EventKind::kBlockReclaimed:
      return {"block", "background", nullptr};
    case EventKind::kPowerLossCut:
      return {"victims", nullptr, nullptr};
    case EventKind::kRecovery:
      return {"pages_recovered", "pages_lost", "supported"};
    case EventKind::kBlockRemapped:
      return {"block", "old_physical", "new_physical"};
    case EventKind::kBlockRetired:
      return {"block", "old_physical", "cause"};
    case EventKind::kCounter:
      return {nullptr, nullptr, nullptr};  // rendered as a "C" event instead
  }
  __builtin_unreachable();
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

/// One metadata event (process_name / thread_name).
void append_metadata(std::string& out, const char* what, std::uint32_t pid,
                     std::uint32_t tid, const std::string& name) {
  out += "{\"name\":\"";
  out += what;
  out += "\",\"ph\":\"M\",\"pid\":";
  append_u64(out, pid);
  out += ",\"tid\":";
  append_u64(out, tid);
  out += ",\"args\":{\"name\":\"";
  out += name;
  out += "\"}},\n";
}

}  // namespace

std::size_t TraceSink::count(EventKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const TraceEvent& e) { return e.kind == kind; }));
}

std::string TraceSink::to_chrome_json() const {
  std::string out;
  out.reserve(128 + events_.size() * 120);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";

  // Lane naming: every (pid, tid) pair seen gets a thread_name, every pid a
  // process_name, emitted in sorted order so the header is deterministic
  // regardless of which lane recorded first.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> lanes;
  lanes.reserve(events_.size());
  for (const TraceEvent& e : events_) lanes.emplace_back(e.pid, e.tid);
  std::sort(lanes.begin(), lanes.end());
  lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());
  std::uint32_t last_pid = 0;
  bool have_pid = false;
  for (const auto& [pid, tid] : lanes) {
    if (!have_pid || pid != last_pid) {
      append_metadata(out, "process_name", pid, 0,
                      pid == 0 ? std::string("run")
                               : "trial " + std::to_string(pid - 1));
      last_pid = pid;
      have_pid = true;
    }
    // Unit lane tid = 1 + unit index. With planes > 1 name the lane by its
    // (die, plane) coordinates; at 1 plane keep the legacy "chip N" names
    // (planes=1 exports must stay byte-identical to the chip-granular model).
    std::string lane_name;
    if (tid == 0) {
      lane_name = "host";
    } else if (planes_ <= 1) {
      lane_name = "chip " + std::to_string(tid - 1);
    } else {
      const std::uint32_t unit = tid - 1;
      lane_name = "chip " + std::to_string(unit / planes_) + "." +
                  std::to_string(unit % planes_);
    }
    append_metadata(out, "thread_name", pid, tid, lane_name);
  }

  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (e.kind == EventKind::kCounter) {
      // Perfetto counter sample: one "C" event per track per grid point.
      // The fixed-point payload prints as its natural unit with pinned
      // precision, keeping the export byte-deterministic.
      out += "{\"name\":\"";
      out += to_string(static_cast<CounterTrack>(e.a));
      out += "\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":";
      append_i64(out, e.ts);
      out += ",\"pid\":";
      append_u64(out, e.pid);
      out += ",\"tid\":";
      append_u64(out, e.tid);
      out += ",\"args\":{\"value\":";
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.6f", static_cast<double>(e.b) / 1e6);
      out += buf;
      out += "}}";
      out += i + 1 < events_.size() ? ",\n" : "\n";
      continue;
    }
    out += "{\"name\":\"";
    out += to_string(e.kind);
    out += "\",\"cat\":\"";
    out += category(e.kind);
    out += "\",\"ph\":\"";
    out += e.dur >= 0 ? "X" : "i";
    out += "\",\"ts\":";
    append_i64(out, e.ts);
    if (e.dur >= 0) {
      out += ",\"dur\":";
      append_i64(out, e.dur);
    } else {
      out += ",\"s\":\"t\"";  // instant scope: thread
    }
    out += ",\"pid\":";
    append_u64(out, e.pid);
    out += ",\"tid\":";
    append_u64(out, e.tid);
    const ArgNames names = arg_names(e.kind);
    out += ",\"args\":{";
    bool first = true;
    const auto arg = [&](const char* name, std::uint64_t v) {
      if (name == nullptr) return;
      if (!first) out += ',';
      first = false;
      out += '\"';
      out += name;
      out += "\":";
      append_u64(out, v);
    };
    arg(names.a, e.a);
    arg(names.b, e.b);
    arg(names.c, e.c);
    out += "}}";
    out += i + 1 < events_.size() ? ",\n" : "\n";
  }
  out += "]}\n";
  return out;
}

bool TraceSink::write_chrome_json(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace rps::obs
