// Attributed wear and write-amplification accounting (ISSUE 10).
//
// Three pieces:
//
//   * WearSummary — a deterministic digest of the per-block wear ledgers
//     the NAND layer maintains (nand::BlockWear): P/E extremes, mean,
//     coefficient of variation, max/mean imbalance, and a fixed-width
//     P/E-count histogram. collect_wear() walks every physical block of a
//     device (MLC or TLC family) in address order, so the summary is a
//     pure function of device state — identical across runs and --jobs.
//
//   * Cause-tagged WAF decomposition — nand::AttributionCounters splits
//     the device's program/erase totals by WriteCause (host, gc_copy,
//     wear_level, parity, backup, scrub, meta). Because attribution is
//     charged at the same instants as the device OpCounters, the split is
//     exact: components sum to the device totals, and the per-cause WAF
//     contributions sum to the overall WAF. waf_of() exposes that.
//
//   * MetricsReport — a versioned, ordered JSON report builder. Keys are
//     emitted in call order with canonical formatting (%.6f doubles, no
//     whitespace variation), so two runs that compute the same numbers
//     produce byte-identical files regardless of thread count. The
//     schema opens with {"metrics_version":1,...} so downstream tooling
//     can reject incompatible layouts.
//
// This layer is post-run reporting: nothing here runs inside the
// allocation-audited hot path (the ledgers themselves are preallocated in
// the device constructors; see nand::Chip / nand::TlcChip).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/nand/attribution.hpp"

namespace rps::nand {
class NandDevice;
class TlcDevice;
}  // namespace rps::nand

namespace rps::obs {

/// Deterministic digest of a device's per-block wear ledgers.
struct WearSummary {
  /// Fixed histogram width: erase counts bucket into
  /// [i*bucket_width, (i+1)*bucket_width); the last bucket is open-ended.
  static constexpr std::uint32_t kHistBuckets = 16;

  std::uint64_t blocks = 0;  ///< physical blocks surveyed (incl. retired)
  std::uint64_t total_erases = 0;
  std::uint64_t total_programs = 0;
  std::uint64_t min_erases = 0;
  std::uint64_t max_erases = 0;
  double mean_erases = 0.0;
  /// stddev/mean of per-block erase counts; 0 when mean is 0. The paper's
  /// wear-leveling claims are about keeping this (and max/mean) small.
  double cov_erases = 0.0;
  double max_over_mean_erases = 0.0;
  std::uint64_t min_programs = 0;
  std::uint64_t max_programs = 0;
  double mean_programs = 0.0;
  std::uint64_t bucket_width = 1;
  std::array<std::uint64_t, kHistBuckets> pe_histogram{};

  friend bool operator==(const WearSummary&, const WearSummary&) = default;
};

/// Summarize an explicit ledger span (exposed for tests; the device
/// overloads below concatenate per-chip ledgers in unit order).
[[nodiscard]] WearSummary summarize_wear(const std::vector<const nand::BlockWear*>& blocks);

[[nodiscard]] WearSummary collect_wear(const nand::NandDevice& device);
[[nodiscard]] WearSummary collect_wear(const nand::TlcDevice& device);

/// WAF contribution of one cause: programs(cause) / host programs.
/// Contributions over all causes sum exactly to total WAF because the
/// attribution split is conservative (see nand::AttributionCounters).
[[nodiscard]] double waf_of(const nand::AttributionCounters& a, nand::WriteCause cause);

/// Total WAF from the attributed counters: total programs / host programs
/// (0 when no host programs were charged).
[[nodiscard]] double waf_total(const nand::AttributionCounters& a);

/// Versioned ordered-JSON metrics report. Append-only builder: values are
/// emitted in call order, nested objects via begin/end. Formatting is
/// canonical (no spaces, %.6f doubles, lower-case keys by convention), so
/// equal inputs yield byte-identical output.
class MetricsReport {
 public:
  static constexpr std::uint32_t kVersion = 1;

  MetricsReport();

  /// Open / close a nested JSON object. Sections may nest.
  void begin(std::string_view key);
  void end();

  void add_u64(std::string_view key, std::uint64_t v);
  void add_i64(std::string_view key, std::int64_t v);
  void add_f64(std::string_view key, double v);  // canonical %.6f
  void add_str(std::string_view key, std::string_view v);
  void add_u64_array(std::string_view key, const std::uint64_t* v, std::size_t n);

  /// Emit the full cause-tagged breakdown as a "attribution" section:
  /// per-cause program/erase counts, meta pages, per-stream programs, and
  /// the WAF decomposition (total + per-cause contributions).
  void add_attribution(const nand::AttributionCounters& a);

  /// Emit a WearSummary as a "wear" section.
  void add_wear(const WearSummary& w);

  /// Finish the report and return the canonical JSON string. The builder
  /// is sealed afterwards (further adds are programming errors, asserted).
  [[nodiscard]] std::string str();

  /// Finish and write to `path` (truncating). Returns false on I/O error.
  [[nodiscard]] bool write_file(const std::string& path);

 private:
  void key_prefix(std::string_view key);

  std::string out_;
  std::uint32_t depth_ = 1;     // inside the root object
  bool need_comma_ = true;      // root already holds metrics_version
  bool sealed_ = false;
};

}  // namespace rps::obs
