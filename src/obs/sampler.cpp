#include "src/obs/sampler.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

#include "src/obs/trace.hpp"

namespace rps::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

// Fixed-precision doubles keep the exports byte-deterministic across
// runs (the values themselves are deterministic; %.6f just pins the text).
void append_f64(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out += buf;
}

bool write_text(const std::string& path, const std::string& text) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

StateSampler::StateSampler(Microseconds period_us, Collector collector)
    : period_(period_us > 0 ? period_us : 1), collector_(std::move(collector)) {}


void StateSampler::tick(Microseconds now) {
  const Microseconds slot = now - now % period_;
  if (slot <= last_slot_) return;
  last_slot_ = slot;
  StateSample sample;
  sample.ts = slot;
  sample.u = u_;
  if (collector_) collector_(sample);
  if (counter_sink_ != nullptr) forward_counters(sample);
  samples_.push_back(std::move(sample));
}

void StateSampler::forward_counters(const StateSample& s) {
  // Fixed-point scaling (x1e6, round-to-nearest) keeps the trace stream
  // all-integer; the exporter restores the natural unit with %.6f.
  const auto micro = [](double v) {
    return static_cast<std::uint64_t>(std::llround(v * 1e6));
  };
  TraceSink& sink = *counter_sink_;
  sink.record_counter(CounterTrack::kUtilization, s.ts, micro(s.u));
  sink.record_counter(CounterTrack::kFreeFraction, s.ts, micro(s.free_fraction));
  sink.record_counter(CounterTrack::kWriteQueue, s.ts, s.queued_write_ops * 1000000);
  sink.record_counter(CounterTrack::kSbQueue, s.ts, s.sbqueue * 1000000);
  if (s.q >= 0) {
    sink.record_counter(CounterTrack::kLsbQuota, s.ts,
                        static_cast<std::uint64_t>(s.q) * 1000000);
  }
  sink.record_counter(CounterTrack::kWaf, s.ts, micro(s.waf));
  sink.record_counter(CounterTrack::kMaxPe, s.ts, s.wear_max_pe * 1000000);
  sink.record_counter(CounterTrack::kMeanPe, s.ts, micro(s.wear_mean_pe));
}

void StateSampler::clear() {
  samples_.clear();
  last_slot_ = -1;
}

std::string StateSampler::to_csv() const {
  std::string out = "ts_us,u,q,sbqueue,free_frac,write_q";
  const std::size_t chips = samples_.empty() ? 0 : samples_.front().chip_queue.size();
  for (std::size_t c = 0; c < chips; ++c) {
    out += ",chip";
    append_u64(out, c);
  }
  out += ",max_pe,mean_pe,waf";
  out += '\n';
  for (const StateSample& s : samples_) {
    append_i64(out, s.ts);
    out += ',';
    append_f64(out, s.u);
    out += ',';
    append_i64(out, s.q);
    out += ',';
    append_u64(out, s.sbqueue);
    out += ',';
    append_f64(out, s.free_fraction);
    out += ',';
    append_u64(out, s.queued_write_ops);
    for (std::size_t c = 0; c < chips; ++c) {
      out += ',';
      append_u64(out, c < s.chip_queue.size() ? s.chip_queue[c] : 0);
    }
    out += ',';
    append_u64(out, s.wear_max_pe);
    out += ',';
    append_f64(out, s.wear_mean_pe);
    out += ',';
    append_f64(out, s.waf);
    out += '\n';
  }
  return out;
}

bool StateSampler::write_csv(const std::string& path) const {
  return write_text(path, to_csv());
}

std::string StateSampler::to_json() const {
  std::string out = "[\n";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const StateSample& s = samples_[i];
    out += "{\"ts_us\":";
    append_i64(out, s.ts);
    out += ",\"u\":";
    append_f64(out, s.u);
    out += ",\"q\":";
    append_i64(out, s.q);
    out += ",\"sbqueue\":";
    append_u64(out, s.sbqueue);
    out += ",\"free_frac\":";
    append_f64(out, s.free_fraction);
    out += ",\"write_q\":";
    append_u64(out, s.queued_write_ops);
    out += ",\"chip_queue\":[";
    for (std::size_t c = 0; c < s.chip_queue.size(); ++c) {
      if (c != 0) out += ',';
      append_u64(out, s.chip_queue[c]);
    }
    out += "],\"max_pe\":";
    append_u64(out, s.wear_max_pe);
    out += ",\"mean_pe\":";
    append_f64(out, s.wear_mean_pe);
    out += ",\"waf\":";
    append_f64(out, s.waf);
    out += '}';
    out += i + 1 < samples_.size() ? ",\n" : "\n";
  }
  out += "]\n";
  return out;
}

bool StateSampler::write_json(const std::string& path) const {
  return write_text(path, to_json());
}

}  // namespace rps::obs
