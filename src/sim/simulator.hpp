// Trace-driven storage-system simulator.
//
// Replays a request trace against an FTL with the semantics of the paper's
// testbed benchmarks (Sysbench/Filebench are closed-loop): a bounded window
// of outstanding requests (queue depth) gates issue, so service latency
// feeds back into achieved throughput. The gap structure of the trace is
// preserved — gaps longer than the idle threshold are handed to the FTL as
// idle windows, which is where background GC earns its keep.
//
// Measured outputs cover every series the paper reports: IOPS (Fig. 8a),
// block erasures (Fig. 8b), windowed write-bandwidth samples for CDF
// curves (Fig. 8c), plus latency percentiles and write amplification.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "src/controller/controller.hpp"
#include "src/ftl/ftl_base.hpp"
#include "src/obs/histogram.hpp"
#include "src/obs/metrics.hpp"
#include "src/util/stats.hpp"
#include "src/workload/trace.hpp"

namespace rps::obs {
class TraceSink;
class StateSampler;
}  // namespace rps::obs

namespace rps::sim {

class Snapshot;

/// How the measured run executes requests against the FTL.
enum class Engine {
  /// Whole requests go to the command controller, which splits them into
  /// per-page ops and stripes the pages across idle chips — one request's
  /// pages overlap across the array (src/controller/).
  kController,
  /// The pre-controller path: loop a request's pages through
  /// FtlBase::write one by one, each page placed without regard to chip
  /// busyness.
  kLegacySync,
};

struct SimConfig {
  /// Execution engine for the measured run. Preconditioning and warm-up
  /// always use the direct synchronous path (untimed, device idle).
  Engine engine = Engine::kController;
  /// Outstanding-request window (closed-loop issue gating).
  std::uint32_t queue_depth = 64;
  /// Gaps longer than this become FTL idle windows.
  Microseconds idle_threshold_us = 1000;
  /// Closed-loop think/idle semantics (Filebench-like): a trace gap longer
  /// than the idle threshold counts from the completion of all prior work,
  /// not from an absolute timestamp — so faster burst service shortens the
  /// run instead of just shrinking queueing delay.
  bool think_time_follows_completion = true;
  /// Window for write-bandwidth sampling (Fig. 8c).
  Microseconds bw_window_us = 50'000;
  /// Precondition: fraction of exported pages sequentially written before
  /// the measured run (steady-state GC behaviour needs a full device).
  double precondition_fraction = 1.0;
  /// After the sequential fill, this many uniformly random overwrites (as a
  /// fraction of exported pages) break up the sequential layout. Keep it
  /// moderate: the heavy lifting of reaching steady state should use
  /// warm_up() with a trace whose locality matches the measured workload —
  /// uniform overwrites at high utilization drive WAF far above any
  /// realistic Zipf steady state.
  double precondition_overwrite_fraction = 0.0;
  /// Buffer utilization reported during preconditioning (0.5 = the
  /// alternate-LSB/MSB regime, filling blocks evenly).
  double precondition_utilization = 0.5;
  std::uint64_t precondition_seed = 0x5eed;
  /// Cut device power when the replay clock reaches this time: requests
  /// arriving at or after it are never issued, queued controller work is
  /// cancelled, and in-flight programs are destroyed (see SimResult.crashed
  /// / Simulator::power_loss). kTimeNever = run to completion.
  Microseconds crash_time_us = kTimeNever;
};

struct SimResult {
  std::string ftl_name;
  std::string workload_name;

  std::uint64_t requests = 0;
  std::uint64_t read_requests = 0;
  std::uint64_t write_requests = 0;
  std::uint64_t pages_read = 0;
  std::uint64_t pages_written = 0;
  std::uint64_t read_errors = 0;

  Microseconds makespan_us = 0;   // first arrival .. last completion
  Microseconds busy_us = 0;       // union of [issue, completion] intervals
  std::uint64_t idle_windows = 0; // idle windows handed to the FTL
  Microseconds idle_time_us = 0;  // total duration of those windows

  SampleSet latency_us;           // per-request completion - arrival
  SampleSet write_bw_mbps;        // windowed write bandwidth samples

  /// The same two series as log-bucketed mergeable histograms (integer
  /// units: microseconds, and KB/s per bandwidth window). Merging the
  /// histograms of per-shard results is order-invariant — sweep aggregates
  /// are bit-identical for any --jobs (what SampleSet concatenation never
  /// guaranteed its percentiles to be).
  obs::LatencyHistogram latency_hist_us;
  obs::LatencyHistogram write_bw_kbps;

  std::uint64_t erases = 0;       // block erasures during the measured run
  nand::OpCounters ops;           // device op deltas during the measured run
  ftl::FtlStats ftl_stats;        // FTL counter deltas during the measured run

  /// Cause-tagged program/erase deltas for the measured run (same charge
  /// instants as `ops`, so the per-cause split sums exactly to it) and a
  /// wear-ledger digest of the device at run end. Both feed the
  /// --metrics=PATH report (obs::MetricsReport).
  nand::AttributionCounters attribution;
  obs::WearSummary wear;

  /// Set when SimConfig::crash_time_us cut the run short; `power_loss`
  /// holds what the cut destroyed (device victims, cancelled controller
  /// ops) for a recovery procedure to act on.
  bool crashed = false;
  ctrl::PowerLossOutcome power_loss;

  /// Requests per second over wall-clock makespan.
  [[nodiscard]] double iops_makespan() const {
    return makespan_us <= 0 ? 0.0
                            : static_cast<double>(requests) * 1e6 /
                                  static_cast<double>(makespan_us);
  }
  /// Requests per second over busy time — the closed-loop IOPS the paper's
  /// benchmarks report (idle think time is not the storage system's).
  [[nodiscard]] double iops_busy() const {
    return busy_us <= 0 ? 0.0
                        : static_cast<double>(requests) * 1e6 /
                              static_cast<double>(busy_us);
  }
  /// NAND programs per host page write during the run.
  [[nodiscard]] double waf() const {
    return pages_written == 0 ? 0.0
                              : static_cast<double>(ops.programs()) /
                                    static_cast<double>(pages_written);
  }
};

class Simulator {
 public:
  Simulator(ftl::FtlBase& ftl, const SimConfig& config);

  /// Sequentially fill the logical space to steady state. Not measured.
  void precondition();

  /// Snapshot the FTL's complete state right now (typically after
  /// precondition() / warm_up()) so sibling runs can fork from it.
  [[nodiscard]] Snapshot checkpoint() const;

  /// Restore a checkpoint instead of re-running precondition(): the FTL
  /// must be a fresh instance of the snapshot's configuration. Returns
  /// false (snapshot/config mismatch) without marking the simulator
  /// preconditioned. A restored run is bit-identical to one that did the
  /// preconditioning work in-process.
  [[nodiscard]] bool warm_start(const Snapshot& snapshot);

  /// Replay the writes of `trace` (untimed, unmeasured) to push garbage
  /// collection into the steady state of that trace's locality. Run after
  /// precondition() with a sibling of the workload to be measured.
  void warm_up(const workload::Trace& trace);

  /// Replay `trace` and measure. May be called after precondition(); the
  /// trace's arrival times are shifted to start after any prior activity.
  /// With SimConfig::crash_time_us set, the replay stops at the cut and
  /// the result carries the power-loss outcome (crash-and-reboot
  /// orchestration: crash here, then hand the victims to
  /// sim::crash_reboot and keep using the same FTL).
  SimResult run(const workload::Trace& trace);

  /// Cut device power at `t` directly (outside a run): cancels queued
  /// controller work and destroys in-flight programs.
  ctrl::PowerLossOutcome power_loss(Microseconds t) { return controller_.power_loss(t); }

  /// The command-scheduling engine (crash harness and scheduling tests
  /// drive it directly).
  [[nodiscard]] ctrl::Controller& controller() { return controller_; }

  /// Attach / detach (nullptr) a trace sink: host-request and power-loss
  /// events from the replay loop, NandOp events from the controller, GC
  /// and parity events from the FTL. Borrowed pointer; detach before the
  /// sink dies. Null by default — the disabled cost is a pointer test.
  void set_trace_sink(obs::TraceSink* sink);

  /// Attach / detach (nullptr) a periodic state sampler. The replay loop
  /// feeds it buffer utilization and ticks it per request; the controller
  /// ticks it at every event-queue instant between them.
  void set_state_sampler(obs::StateSampler* sampler);

  /// Observe run()'s steady-state window: called with `true` right before
  /// the replay loop starts (after per-run setup — result strings, counter
  /// capture, container reserves) and with `false` right after it ends
  /// (before harvest). The allocation audit arms/disarms here: on a
  /// simulator whose scratch is warm from a previous run of the same
  /// trace, everything between the two calls is allocation-free.
  void set_steady_state_hook(std::function<void(bool)> hook) {
    steady_hook_ = std::move(hook);
  }

 private:
  ftl::FtlBase& ftl_;
  SimConfig config_;
  ctrl::Controller controller_;
  bool preconditioned_ = false;
  obs::TraceSink* trace_ = nullptr;      // borrowed; null = tracing off
  obs::StateSampler* sampler_ = nullptr; // borrowed; null = sampling off
  std::function<void(bool)> steady_hook_;  // steady-state window observer

  // Replay-loop scratch, hoisted out of run() so capacity persists across
  // calls: a warmed simulator replaying a trace it has seen before (the
  // --alloc-audit regime) grows nothing here. Cleared, never shrunk, at
  // the top of each run().
  struct BatchMember {
    Microseconds ack = 0;
    std::uint32_t pages = 0;
  };
  std::priority_queue<Microseconds, std::vector<Microseconds>, std::greater<>>
      outstanding_;
  std::priority_queue<std::pair<Microseconds, std::uint32_t>,
                      std::vector<std::pair<Microseconds, std::uint32_t>>,
                      std::greater<>>
      in_flush_;  // (device completion, pages)
  std::vector<std::uint64_t> bw_bytes_;
  std::vector<bool> bw_touched_;
  std::vector<BatchMember> batch_;
  std::vector<ctrl::CommandResult> batch_results_;
};

}  // namespace rps::sim
