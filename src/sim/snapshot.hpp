// Versioned binary snapshots of complete device + FTL state.
//
// A Snapshot captures everything mutable in an FTL — NAND media contents,
// per-chip timelines, bad-block tables, mapping, block pools, stats,
// policy cursors — as one canonical byte stream, so a restored instance
// is bit-identical to the saved one: same placements, same timings, same
// digests from then on. That is what lets the sweep drivers precondition
// a device ONCE and fork every seeded trial from the snapshot instead of
// re-running the fill phase per trial (ISSUE 8's warm start).
//
// Layout (all fields via ser::Writer — fixed little-endian):
//
//   u64  magic      "RPSSNAP1"
//   u32  version    kVersion (readers reject anything else)
//   u8   family     0 = MLC FtlBase, 1 = core::FlexTlcFtl
//   str  ftl name   e.g. "flexFTL" (restore target must match)
//   u32[] geometry echo (7 fields MLC / 5 fields TLC; must match)
//   u64  payload size
//   ...  payload    FtlBase::save_state / FlexTlcFtl::save_state stream
//   u64  payload FNV-1a (file-corruption guard)
//
// Determinism contract: the byte stream is canonical — unordered
// containers are serialized sorted by key, doubles as IEEE-754 bit
// patterns — so digest() is a pure function of logical state, identical
// across platforms and runs. RNG streams are deliberately NOT part of a
// snapshot: no persistent generator lives across the harness fork points
// (the fill phase draws nothing; workload generators are re-seeded per
// trial), which DESIGN.md §13 pins as a contract.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/util/serialize.hpp"

namespace rps::ftl {
class FtlBase;
}  // namespace rps::ftl

namespace rps::core {
class FlexTlcFtl;
}  // namespace rps::core

namespace rps::sim {

class Snapshot {
 public:
  static constexpr std::uint64_t kMagic = 0x3150414e53535052ull;  // "RPSSNAP1"
  // v2: per-block wear ledger + cause-attributed op counters appended to
  // the chip/device payload streams (old v1 payloads lack those fields).
  static constexpr std::uint32_t kVersion = 2;

  Snapshot() = default;

  /// Capture the complete state of an MLC-family FTL (any FtlBase).
  static Snapshot capture(const ftl::FtlBase& ftl);
  /// Capture the TLC projection (FlexTlcFtl owns its own device type).
  static Snapshot capture(const core::FlexTlcFtl& ftl);

  /// Restore into a same-configuration instance. Returns false — leaving
  /// the target in an unspecified state that must be discarded — when the
  /// header does not match (wrong FTL name, geometry, version) or the
  /// payload is truncated/corrupt. Restoring into a freshly-constructed
  /// FTL of the captured config always succeeds.
  [[nodiscard]] bool restore(ftl::FtlBase& ftl) const;
  [[nodiscard]] bool restore(core::FlexTlcFtl& ftl) const;

  /// FNV-1a over the whole stream (header + payload). Two FTLs in the
  /// same logical state produce equal digests; the golden-digest tests
  /// pin these for the paper geometry.
  [[nodiscard]] std::uint64_t digest() const { return ser::fnv1a(bytes_); }

  /// Header accessors (empty/zero when the header is malformed).
  [[nodiscard]] bool valid() const;
  [[nodiscard]] std::string ftl_name() const;

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  [[nodiscard]] bool empty() const { return bytes_.empty(); }

  /// Adopt a raw stream (file I/O, embedding in a larger container).
  static Snapshot from_bytes(std::vector<std::uint8_t> bytes);

  /// Whole-snapshot file I/O. load_file returns nullopt when the file is
  /// unreadable or fails header/checksum validation.
  [[nodiscard]] bool save_file(const std::string& path) const;
  static std::optional<Snapshot> load_file(const std::string& path);

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace rps::sim
