// Shared experiment harness: builds an FTL, preconditions it, generates a
// workload preset and measures it. Every Fig. 8 bench and the examples go
// through this, so configurations stay comparable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/flex_ftl.hpp"
#include "src/ftl/config.hpp"
#include "src/ftl/ftl_base.hpp"
#include "src/obs/sampler.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/snapshot.hpp"
#include "src/workload/generator.hpp"

namespace rps::sim {

/// The four FTLs of the paper's evaluation, plus the capacity-sacrificing
/// SLC-mode baseline from the related work (Lee et al. [4]).
enum class FtlKind { kPage, kParity, kRtf, kFlex, kSlc };

/// The evaluation set of Fig. 8 (kSlc is a related-work extra).
inline constexpr FtlKind kAllFtls[] = {FtlKind::kPage, FtlKind::kParity,
                                       FtlKind::kRtf, FtlKind::kFlex};

constexpr const char* to_string(FtlKind kind) {
  // Exhaustive switch, no default path: -Werror=switch (set globally in
  // the top-level CMakeLists) turns a missing enumerator into a compile
  // error instead of a silent "?" in bench output.
  switch (kind) {
    case FtlKind::kPage: return "pageFTL";
    case FtlKind::kParity: return "parityFTL";
    case FtlKind::kRtf: return "rtfFTL";
    case FtlKind::kFlex: return "flexFTL";
    case FtlKind::kSlc: return "slcFTL";
  }
  __builtin_unreachable();
}

/// Instantiate an FTL by kind.
std::unique_ptr<ftl::FtlBase> make_ftl(FtlKind kind, const ftl::FtlConfig& config);

/// What rebooting an FTL after a power cut produced.
struct RebootOutcome {
  /// True when the FTL has a real recovery procedure for destroyed pages
  /// (flexFTL's parity reconstruction, Section 3.3). False means the
  /// reboot was a best-effort media rescan: acknowledged data destroyed by
  /// the cut stays lost, by design of that FTL.
  bool recovery_supported = false;
  /// flexFTL's recovery report; zeroes for unsupported kinds.
  core::RecoveryReport report;
};

/// Crash-and-reboot orchestration: bring `ftl` back up after a power cut
/// at `now`, with `victims` as reported by the injection
/// (NandDevice::inject_power_loss or Controller::power_loss). flexFTL
/// replays its parity-based recovery; every other kind loses its RAM
/// tables and rebuilds the mapping from the media's out-of-band metadata.
/// With `sink` attached, records one kRecovery event covering the
/// recovery phase.
RebootOutcome crash_reboot(FtlKind kind, ftl::FtlBase& ftl,
                           const std::vector<nand::PowerLossVictim>& victims,
                           Microseconds now, obs::TraceSink* sink = nullptr);

/// The geometry the benchmarks use: the paper's channel/chip organization
/// (8 x 4) with fewer blocks per chip (128 instead of 512) so a full
/// steady-state run fits in seconds. 256 x 4 KB pages per block as in the
/// paper; 4 GB total.
nand::Geometry bench_geometry();

struct ExperimentSpec {
  ftl::FtlConfig ftl_config;
  SimConfig sim;
  std::uint64_t requests = 200'000;
  /// Fraction of exported pages the workload touches.
  double working_set_fraction = 0.90;
  std::uint64_t seed = 1;

  static ExperimentSpec bench_default();
};

/// Precondition + replay one preset against one FTL. `sink` / `sampler`
/// (optional) observe the *measured* run only — they attach after
/// preconditioning and warm-up, so the trace and time series hold exactly
/// what the result row measures. A caller-supplied sampler gets its
/// collector wired to this experiment's FTL and controller
/// (make_state_collector); its samples must be consumed before the next
/// attach. Traced runs are meant to be single experiments: the parallel
/// drivers below never attach observers, which is what keeps traced
/// output trivially --jobs-invariant.
/// With `warm` non-null, run_experiment forks from the snapshot instead
/// of re-running precondition() — bit-identical results, minus the fill
/// cost. The snapshot must come from make_precondition_snapshot with the
/// same (kind, spec); warm-up still runs per experiment (it depends on
/// the preset and seed, the snapshot does not).
SimResult run_experiment(FtlKind kind, workload::Preset preset,
                         const ExperimentSpec& spec,
                         obs::TraceSink* sink = nullptr,
                         obs::StateSampler* sampler = nullptr,
                         const Snapshot* warm = nullptr);

/// Precondition a fresh FTL of `kind` under `spec` and capture the
/// steady-state device. Workload-independent: one snapshot per (kind,
/// spec) serves every preset and seed of a sweep.
Snapshot make_precondition_snapshot(FtlKind kind, const ExperimentSpec& spec);

/// Build a StateSampler collector snapshotting `ftl` (quota, SBQueue
/// depth, free-block fraction) and, when non-null, `controller`'s queue
/// depths. Both borrowed: they must outlive the sampler's use.
obs::StateSampler::Collector make_state_collector(const ftl::FtlBase& ftl,
                                                  const ctrl::Controller* controller);

/// Run all four FTLs against one preset (shared trace). With `jobs` > 1
/// the four independent experiments run concurrently; results stay in
/// kAllFtls order either way.
std::vector<SimResult> run_all_ftls(workload::Preset preset, const ExperimentSpec& spec,
                                    std::uint32_t jobs = 1);

/// Run every preset x evaluation-FTL experiment `jobs`-wide. Each
/// experiment builds its own FTL/simulator/trace from (kind, preset,
/// spec) — nothing is shared — so they parallelize freely; results land
/// in [preset][ftl] order (ftl order = kAllFtls), bit-identical to the
/// sequential nested loop for any jobs value.
std::vector<std::vector<SimResult>> run_preset_matrix(
    const std::vector<workload::Preset>& presets, const ExperimentSpec& spec,
    std::uint32_t jobs);

/// Parse a `--jobs=N` / `--jobs N` pair out of argv (for the bench
/// drivers). Returns 1 when absent or malformed.
std::uint32_t parse_jobs_flag(int argc, char** argv);

/// Parse `--trace=PATH` / `--trace PATH` out of argv (bench drivers:
/// where to write the Chrome trace JSON). Empty string = absent.
std::string parse_trace_flag(int argc, char** argv);

/// Parse `--requests=N` / `--requests N` out of argv; `fallback` when
/// absent or malformed (CI smoke runs shrink the benches with this).
std::uint64_t parse_requests_flag(int argc, char** argv, std::uint64_t fallback);

/// Parse `--metrics=PATH` / `--metrics PATH` out of argv (bench drivers:
/// where to write the obs::MetricsReport JSON). Empty string = absent.
std::string parse_metrics_flag(int argc, char** argv);

/// Append one experiment's results to an open MetricsReport: headline
/// numbers, then the attribution and wear sections. Callers wrap each
/// experiment in its own report.begin(label)/end() pair, so a sweep's
/// report is one JSON object per cell in sweep order — deterministic and
/// --jobs-invariant because SimResult itself is.
void add_result_metrics(obs::MetricsReport& report, const SimResult& result);

}  // namespace rps::sim
