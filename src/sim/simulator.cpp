#include "src/sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

#include "src/obs/registry.hpp"
#include "src/obs/sampler.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/snapshot.hpp"
#include "src/util/random.hpp"
#include <vector>

namespace rps::sim {

Simulator::Simulator(ftl::FtlBase& ftl, const SimConfig& config)
    : ftl_(ftl), config_(config), controller_(ftl) {}

void Simulator::set_trace_sink(obs::TraceSink* sink) {
  trace_ = sink;
  if (sink != nullptr) {
    sink->set_planes(ftl_.device().geometry().planes_per_chip);
  }
  ftl_.set_trace_sink(sink);
  controller_.set_observability(trace_, sampler_);
}

void Simulator::set_state_sampler(obs::StateSampler* sampler) {
  sampler_ = sampler;
  controller_.set_observability(trace_, sampler_);
}

void Simulator::precondition() {
  const Lpn fill_pages = static_cast<Lpn>(
      static_cast<double>(ftl_.exported_pages()) * config_.precondition_fraction);
  for (Lpn lpn = 0; lpn < fill_pages; ++lpn) {
    const Result<ftl::HostOp> op =
        ftl_.write(lpn, /*now=*/0, config_.precondition_utilization);
    assert(op.is_ok());
    (void)op;
  }
  // Random overwrites until garbage collection reaches steady state.
  Rng rng(config_.precondition_seed);
  const auto overwrites = static_cast<std::uint64_t>(
      static_cast<double>(ftl_.exported_pages()) *
      config_.precondition_overwrite_fraction);
  for (std::uint64_t i = 0; i < overwrites && fill_pages > 0; ++i) {
    const Lpn lpn = rng.next_below(fill_pages);
    const Result<ftl::HostOp> op = ftl_.write(
        lpn, ftl_.device().all_idle_at(), config_.precondition_utilization);
    assert(op.is_ok());
    (void)op;
  }
  preconditioned_ = true;
}

Snapshot Simulator::checkpoint() const { return Snapshot::capture(ftl_); }

bool Simulator::warm_start(const Snapshot& snapshot) {
  if (!snapshot.restore(ftl_)) return false;
  preconditioned_ = true;
  return true;
}

void Simulator::warm_up(const workload::Trace& trace) {
  const Lpn exported = ftl_.exported_pages();
  for (const workload::IoRequest& req : trace.requests()) {
    if (req.kind != workload::IoKind::kWrite) continue;
    for (std::uint32_t j = 0; j < req.page_count; ++j) {
      if (req.lpn + j >= exported) break;
      const Result<ftl::HostOp> op =
          ftl_.write(req.lpn + j, ftl_.device().all_idle_at(),
                     config_.precondition_utilization);
      assert(op.is_ok());
      (void)op;
    }
  }
  preconditioned_ = true;
}

SimResult Simulator::run(const workload::Trace& trace) {
  SimResult result;
  result.ftl_name = std::string(ftl_.name());
  result.workload_name = trace.name();
  if (trace.empty()) return result;
  assert(trace.is_sorted());

  // Start after any preconditioning activity has drained.
  const Microseconds base =
      ftl_.device().all_idle_at() + (preconditioned_ ? 10'000 : 0);
  const Microseconds first_arrival = trace.requests().front().arrival_us;

  // Baseline for delta counters (one capture covers every family).
  const obs::CounterSnapshot counters_before = obs::Registry::capture(ftl_);

  // Closed-loop window: at most queue_depth requests outstanding. A new
  // request issues when the earliest-finishing outstanding one completes.
  // (This and the containers below are member scratch — capacity persists
  // across runs so a warmed replay of a known trace allocates nothing.)
  auto& outstanding = outstanding_;
  while (!outstanding.empty()) outstanding.pop();

  // Write-buffer model. Writes are acknowledged when the RAM write buffer
  // accepts them — instantly while there is room, otherwise when enough
  // earlier flushes complete on the device. Device program latency is
  // invisible to a write's latency unless the buffer is full, exactly like
  // the paper's testbed (and any real storage stack).
  //
  // Two occupancy views: `in_flush` tracks pages handed to the FTL whose
  // programs have not finished (gates ACKs); the arrival-based counters
  // additionally include queued-but-unissued writes (that total is the
  // utilization u the policy manager sees).
  auto& in_flush = in_flush_;  // (device completion, pages)
  while (!in_flush.empty()) in_flush.pop();
  std::uint64_t flush_pending_pages = 0;
  std::uint64_t arrived_write_pages = 0;
  std::uint64_t completed_write_pages = 0;
  std::size_t arrival_scan = 0;  // lookahead over trace arrivals
  const std::uint64_t buffer_capacity = ftl_.config().write_buffer_pages;

  // Windowed write-bandwidth accumulation (bytes per completion window).
  // Flush completions never precede `base`, so windows index densely from
  // base's window: a flat vector (grown on demand — completions are
  // near-sorted, so growth is amortized push_back) replaces the former
  // std::map and its per-write tree walk. `bw_touched` preserves the
  // map's semantics exactly: only windows some write completed in emit a
  // sample, even a zero-byte one.
  const std::int64_t window_base = base / config_.bw_window_us;
  auto& bw_bytes = bw_bytes_;
  auto& bw_touched = bw_touched_;
  bw_bytes.clear();
  bw_touched.clear();
  const auto page_bytes =
      static_cast<std::uint64_t>(ftl_.config().geometry.page_size_bytes);

  Microseconds busy_start = 0;
  Microseconds busy_end = -1;  // current merged busy interval; empty
  Microseconds last_completion = base;

  // Batched admission (controller engine, no observability attached):
  // consecutive writes acknowledged at the same tick submit to the
  // controller without draining between them — one drain retires the
  // whole batch, and the FIFO write queue preserves the serial dispatch
  // order exactly (each member sees the chip-busy state its predecessors
  // created at the tick, just as per-request drains would produce). Only
  // the controller work and the pieces derived from it (in_flush entries,
  // bandwidth windows — both need last_complete) are deferred; the
  // closed-loop models advance inline because a batched write's
  // completion IS its ack tick. The batch must flush before anything
  // that could observe a member's flush time: a read, a different
  // admission tick, an idle window, a buffer-full ack wait, the crash
  // cut, or the end of the trace (members' flush times always exceed the
  // batch tick, so same-tick admissions can never pop them).
  const bool batch_admission = config_.engine == Engine::kController &&
                               trace_ == nullptr && sampler_ == nullptr;
  auto& batch = batch_;
  auto& batch_results = batch_results_;
  batch.clear();
  Microseconds batch_tick = 0;
  const auto flush_batch = [&] {
    if (batch.empty()) return;
    controller_.drain();
    controller_.take_all_results_into(batch_results);
    assert(batch_results.size() == batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const ctrl::CommandResult& cr = batch_results[i];
      assert(cr.ok);
      const Microseconds flushed = std::max(batch[i].ack, cr.last_complete);
      in_flush.emplace(flushed, batch[i].pages);
      const auto window =
          static_cast<std::size_t>(flushed / config_.bw_window_us - window_base);
      if (window >= bw_bytes.size()) {
        bw_bytes.resize(window + 1, 0);
        bw_touched.resize(window + 1, false);
      }
      bw_bytes[window] += page_bytes * batch[i].pages;
      bw_touched[window] = true;
    }
    batch.clear();
  };

  // Front-load the result's per-request growth, then open the steady-state
  // window: from here to the end of the replay loop, a simulator whose
  // scratch is warm from a prior run of this trace allocates nothing
  // (bench_simcore --alloc-audit arms the interposer in this hook).
  result.latency_us.reserve(trace.requests().size());
  result.latency_hist_us.reserve_max();
  if (config_.engine == Engine::kController) {
    // Closed loop: at most queue_depth commands are ever outstanding, so
    // a batch can never exceed it, and the controller's in-flight
    // structures are pre-sized from the same bound — hard caps, immune to
    // the run-to-run concurrency drift that warm-up alone can't pin down.
    batch.reserve(config_.queue_depth);
    batch_results.reserve(config_.queue_depth);
    std::uint32_t max_pages = 1;
    for (const workload::IoRequest& req : trace.requests()) {
      max_pages = std::max(max_pages, req.page_count);
    }
    controller_.reserve_inflight(config_.queue_depth, max_pages);
  }
  if (steady_hook_) steady_hook_(true);

  Microseconds prev_arrival = base;       // adjusted arrival of previous request
  Microseconds prev_raw = first_arrival;  // raw trace arrival of previous request
  for (const workload::IoRequest& req : trace.requests()) {
    const Microseconds raw_gap = req.arrival_us - prev_raw;
    prev_raw = req.arrival_us;
    Microseconds arrival;
    if (config_.think_time_follows_completion &&
        raw_gap > config_.idle_threshold_us) {
      // Think/idle periods start once all prior work has completed.
      arrival = std::max(prev_arrival, last_completion) + raw_gap;
    } else {
      arrival = prev_arrival + raw_gap;
    }
    prev_arrival = arrival;

    // Crash orchestration: requests arriving at or after the cut never
    // reach the device. Work already accepted keeps its recorded
    // completions; whether its data survived is decided by the injection
    // below and checked by the recovery layer.
    if (arrival >= config_.crash_time_us) {
      result.crashed = true;
      break;
    }

    // Idle window detection: the host is idle when every past request has
    // completed and the next arrival is still ahead. (Issue-stream gaps are
    // NOT idleness — a saturated device paces issues in latency-sized
    // steps.) Device-side flush backlog is handled by on_idle's per-chip
    // deadline checks.
    if (arrival > last_completion + config_.idle_threshold_us) {
      flush_batch();  // the FTL must be settled before its idle window
      ++result.idle_windows;
      result.idle_time_us += arrival - last_completion;
      if (trace_ != nullptr) {
        trace_->record(obs::EventKind::kIdleWindow, 0, last_completion,
                       arrival - last_completion,
                       static_cast<std::uint64_t>(arrival - last_completion));
      }
      ftl_.on_idle(last_completion, arrival);
    }

    Microseconds issue = arrival;
    while (!outstanding.empty() && outstanding.top() <= arrival) outstanding.pop();
    while (outstanding.size() >= config_.queue_depth) {
      issue = std::max(issue, outstanding.top());
      outstanding.pop();
    }

    // A later admission tick (or a read, whose completion the loop needs
    // immediately) ends the batch before the buffer model can observe it.
    if (!batch.empty() &&
        (issue != batch_tick || req.kind != workload::IoKind::kWrite)) {
      flush_batch();
    }

    // Advance the buffer model to the issue time: pages of every write that
    // has arrived by now occupy the buffer...
    const std::vector<workload::IoRequest>& all = trace.requests();
    while (arrival_scan < all.size() &&
           base + (all[arrival_scan].arrival_us - first_arrival) <= issue) {
      if (all[arrival_scan].kind == workload::IoKind::kWrite) {
        arrived_write_pages += all[arrival_scan].page_count;
      }
      ++arrival_scan;
    }
    // ...minus those whose flush already completed.
    while (!in_flush.empty() && in_flush.top().first <= issue) {
      completed_write_pages += in_flush.top().second;
      flush_pending_pages -= in_flush.top().second;
      in_flush.pop();
    }
    const double utilization = std::min(
        1.0, static_cast<double>(arrived_write_pages - completed_write_pages) /
                 static_cast<double>(buffer_capacity));
    if (sampler_ != nullptr) {
      // Feed u before any event this request triggers can sample it.
      sampler_->set_utilization(utilization);
      sampler_->tick(issue);
    }

    Microseconds completion = issue;
    if (req.kind == workload::IoKind::kWrite) {
      ++result.write_requests;
      // ACK when the buffer has room: wait for earlier flushes if needed.
      // A pending batch flushes first — its members' flush times belong
      // in the queue this wait consumes.
      if (!batch.empty() &&
          flush_pending_pages + req.page_count > buffer_capacity) {
        flush_batch();
      }
      Microseconds ack = issue;
      while (flush_pending_pages + req.page_count > buffer_capacity &&
             !in_flush.empty()) {
        ack = std::max(ack, in_flush.top().first);
        completed_write_pages += in_flush.top().second;
        flush_pending_pages -= in_flush.top().second;
        in_flush.pop();
      }
      Microseconds flushed = ack;
      bool deferred = false;
      if (config_.engine == Engine::kController) {
        // Whole request to the controller: its pages become a batch of
        // page ops striped across idle chips.
        ctrl::HostCommand cmd;
        cmd.kind = ctrl::CmdKind::kWrite;
        cmd.lpn = req.lpn;
        cmd.page_count = req.page_count;
        cmd.issue = ack;
        cmd.buffer_utilization = utilization;
        if (batch_admission && req.page_count > 0) {
          // A nonempty batch here means ack == batch_tick: the earlier
          // flush points cleared any tick change, and the ack wait above
          // flushed before raising ack.
          if (batch.empty()) batch_tick = ack;
          assert(ack == batch_tick);
          controller_.submit(cmd);
          batch.push_back(BatchMember{ack, req.page_count});
          deferred = true;
        } else {
          flush_batch();  // zero-page corner: keep strict serial order
          const ctrl::CommandResult cr = controller_.execute(cmd);
          assert(cr.ok);
          flushed = std::max(flushed, cr.last_complete);
        }
        result.pages_written += req.page_count;
      } else {
        for (std::uint32_t j = 0; j < req.page_count; ++j) {
          const Result<ftl::HostOp> op = ftl_.write(req.lpn + j, ack, utilization);
          assert(op.is_ok());
          flushed = std::max(flushed, op.value().complete);
          ++result.pages_written;
        }
      }
      flush_pending_pages += req.page_count;
      if (!deferred) {
        in_flush.emplace(flushed, req.page_count);
        const auto window =
            static_cast<std::size_t>(flushed / config_.bw_window_us - window_base);
        if (window >= bw_bytes.size()) {
          bw_bytes.resize(window + 1, 0);
          bw_touched.resize(window + 1, false);
        }
        bw_bytes[window] += page_bytes * req.page_count;
        bw_touched[window] = true;
      }
      completion = ack;
    } else {
      ++result.read_requests;
      if (config_.engine == Engine::kController) {
        ctrl::HostCommand cmd;
        cmd.kind = ctrl::CmdKind::kRead;
        cmd.lpn = req.lpn;
        cmd.page_count = req.page_count;
        cmd.issue = issue;
        const ctrl::CommandResult cr = controller_.execute(cmd);
        completion = std::max(completion, cr.last_complete);
        result.read_errors += cr.read_errors;
        result.pages_read += req.page_count;
      } else {
        for (std::uint32_t j = 0; j < req.page_count; ++j) {
          const Result<ftl::HostOp> op = ftl_.read(req.lpn + j, issue);
          if (op.is_ok()) {
            completion = std::max(completion, op.value().complete);
          } else {
            ++result.read_errors;
          }
          ++result.pages_read;
        }
      }
    }
    ++result.requests;
    result.latency_us.add(static_cast<double>(completion - arrival));
    result.latency_hist_us.add(static_cast<std::uint64_t>(completion - arrival));
    if (trace_ != nullptr) {
      trace_->record(req.kind == workload::IoKind::kWrite
                         ? obs::EventKind::kHostWrite
                         : obs::EventKind::kHostRead,
                     0, arrival, completion - arrival, req.lpn, req.page_count,
                     static_cast<std::uint64_t>(issue - arrival));
    }
    if (sampler_ != nullptr) sampler_->tick(completion);

    // Busy-interval merging over [issue, completion].
    if (busy_end < busy_start || issue > busy_end) {
      if (busy_end >= busy_start) result.busy_us += busy_end - busy_start;
      busy_start = issue;
      busy_end = completion;
    } else {
      busy_end = std::max(busy_end, completion);
    }

    outstanding.push(completion);
    last_completion = std::max(last_completion, completion);
  }
  flush_batch();  // end of trace (or crash cut): retire the tail batch
  if (steady_hook_) steady_hook_(false);
  if (busy_end >= busy_start) result.busy_us += busy_end - busy_start;

  if (result.crashed) {
    if (config_.engine == Engine::kController) {
      result.power_loss = controller_.power_loss(config_.crash_time_us);
    } else {
      result.power_loss.victims =
          ftl_.device().inject_power_loss(config_.crash_time_us);
    }
    if (trace_ != nullptr) {
      trace_->record(obs::EventKind::kPowerLossCut, 0, config_.crash_time_us, -1,
                     result.power_loss.victims.size());
    }
    last_completion = std::max(base, std::min(last_completion, config_.crash_time_us));
  }

  result.makespan_us = last_completion - base;

  const obs::CounterSnapshot counters_delta =
      obs::Registry::delta(counters_before, obs::Registry::capture(ftl_));
  result.erases = counters_delta.erases;
  result.ops = counters_delta.ops;
  result.ftl_stats = counters_delta.ftl;
  result.attribution = counters_delta.attribution;
  result.wear = obs::collect_wear(ftl_.device());

  // Windowed bandwidth samples (windows in which writes completed).
  const double window_seconds =
      static_cast<double>(config_.bw_window_us) / 1e6;
  for (std::size_t w = 0; w < bw_bytes.size(); ++w) {
    if (!bw_touched[w]) continue;
    result.write_bw_mbps.add(static_cast<double>(bw_bytes[w]) / 1e6 / window_seconds);
    // Same sample, integer KB/s (bytes per window over window length).
    result.write_bw_kbps.add(bw_bytes[w] * 1000 /
                             static_cast<std::uint64_t>(config_.bw_window_us));
  }
  return result;
}

}  // namespace rps::sim
