#include "src/sim/runner.hpp"

#include "src/core/flex_ftl.hpp"
#include "src/ftl/page_ftl.hpp"
#include "src/ftl/parity_ftl.hpp"
#include "src/ftl/rtf_ftl.hpp"
#include "src/ftl/slc_ftl.hpp"

namespace rps::sim {

std::unique_ptr<ftl::FtlBase> make_ftl(FtlKind kind, const ftl::FtlConfig& config) {
  switch (kind) {
    case FtlKind::kPage: return std::make_unique<ftl::PageFtl>(config);
    case FtlKind::kParity: return std::make_unique<ftl::ParityFtl>(config);
    case FtlKind::kRtf: return std::make_unique<ftl::RtfFtl>(config);
    case FtlKind::kFlex: return std::make_unique<core::FlexFtl>(config);
    case FtlKind::kSlc: return std::make_unique<ftl::SlcFtl>(config);
  }
  __builtin_unreachable();
}

RebootOutcome crash_reboot(FtlKind kind, ftl::FtlBase& ftl,
                           const std::vector<nand::PowerLossVictim>& victims,
                           Microseconds now) {
  RebootOutcome outcome;
  switch (kind) {
    case FtlKind::kFlex:
      outcome.recovery_supported = true;
      outcome.report =
          static_cast<core::FlexFtl&>(ftl).recover_from_power_loss(victims, now);
      break;
    case FtlKind::kPage:
    case FtlKind::kParity:
    case FtlKind::kRtf:
    case FtlKind::kSlc:
      // No recovery procedure: the reboot is an OOB media rescan. Pages the
      // cut destroyed read as ECC-uncorrectable and are dropped; the newest
      // intact copy of each LPN (if any) wins.
      ftl.rebuild_mapping();
      break;
  }
  return outcome;
}

nand::Geometry bench_geometry() {
  nand::Geometry g;
  g.channels = 8;
  g.chips_per_channel = 4;
  g.blocks_per_chip = 128;
  g.wordlines_per_block = 128;
  g.page_size_bytes = 4096;
  return g;
}

ExperimentSpec ExperimentSpec::bench_default() {
  ExperimentSpec spec;
  spec.ftl_config.geometry = bench_geometry();
  // Enterprise-class spare capacity: keeps steady-state write amplification
  // in the 1.3-1.8 range the paper's testbed operated in (its 16 GB slice
  // of a 512 GB-capable BlueDBM board was effectively overprovisioned).
  spec.ftl_config.overprovisioning = 0.20;
  spec.working_set_fraction = 0.80;
  return spec;
}

SimResult run_experiment(FtlKind kind, workload::Preset preset,
                         const ExperimentSpec& spec) {
  std::unique_ptr<ftl::FtlBase> ftl = make_ftl(kind, spec.ftl_config);
  Simulator simulator(*ftl, spec.sim);
  simulator.precondition();
  const Lpn working_set = static_cast<Lpn>(
      static_cast<double>(ftl->exported_pages()) * spec.working_set_fraction);
  // Warm-up: a sibling trace (same preset and locality, different seed)
  // drives GC to the workload's own steady state before measurement.
  const workload::Trace warmup = workload::generate(workload::preset_config(
      preset, working_set, spec.requests / 2, spec.seed ^ 0x77777777ull));
  simulator.warm_up(warmup);
  const workload::Trace trace = workload::generate(
      workload::preset_config(preset, working_set, spec.requests, spec.seed));
  return simulator.run(trace);
}

std::vector<SimResult> run_all_ftls(workload::Preset preset,
                                    const ExperimentSpec& spec) {
  std::vector<SimResult> results;
  for (const FtlKind kind : kAllFtls) {
    results.push_back(run_experiment(kind, preset, spec));
  }
  return results;
}

}  // namespace rps::sim
