#include "src/sim/runner.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "src/core/flex_ftl.hpp"
#include "src/ftl/page_ftl.hpp"
#include "src/ftl/parity_ftl.hpp"
#include "src/ftl/rtf_ftl.hpp"
#include "src/ftl/slc_ftl.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/util/parallel.hpp"

namespace rps::sim {

std::unique_ptr<ftl::FtlBase> make_ftl(FtlKind kind, const ftl::FtlConfig& config) {
  switch (kind) {
    case FtlKind::kPage: return std::make_unique<ftl::PageFtl>(config);
    case FtlKind::kParity: return std::make_unique<ftl::ParityFtl>(config);
    case FtlKind::kRtf: return std::make_unique<ftl::RtfFtl>(config);
    case FtlKind::kFlex: return std::make_unique<core::FlexFtl>(config);
    case FtlKind::kSlc: return std::make_unique<ftl::SlcFtl>(config);
  }
  __builtin_unreachable();
}

RebootOutcome crash_reboot(FtlKind kind, ftl::FtlBase& ftl,
                           const std::vector<nand::PowerLossVictim>& victims,
                           Microseconds now, obs::TraceSink* sink) {
  RebootOutcome outcome;
  switch (kind) {
    case FtlKind::kFlex:
      outcome.recovery_supported = true;
      outcome.report =
          static_cast<core::FlexFtl&>(ftl).recover_from_power_loss(victims, now);
      break;
    case FtlKind::kPage:
    case FtlKind::kParity:
    case FtlKind::kRtf:
    case FtlKind::kSlc:
      // No recovery procedure: the reboot is an OOB media rescan. Pages the
      // cut destroyed read as ECC-uncorrectable and are dropped; the newest
      // intact copy of each LPN (if any) wins.
      ftl.rebuild_mapping();
      break;
  }
  if (sink != nullptr) {
    sink->record(obs::EventKind::kRecovery, 0, now,
                 outcome.recovery_supported ? outcome.report.recovery_time_us
                                            : Microseconds{-1},
                 outcome.report.pages_recovered, outcome.report.pages_lost,
                 outcome.recovery_supported ? 1 : 0);
  }
  return outcome;
}

nand::Geometry bench_geometry() {
  nand::Geometry g;
  g.channels = 8;
  g.chips_per_channel = 4;
  g.blocks_per_chip = 128;
  g.wordlines_per_block = 128;
  g.page_size_bytes = 4096;
  return g;
}

ExperimentSpec ExperimentSpec::bench_default() {
  ExperimentSpec spec;
  spec.ftl_config.geometry = bench_geometry();
  // Enterprise-class spare capacity: keeps steady-state write amplification
  // in the 1.3-1.8 range the paper's testbed operated in (its 16 GB slice
  // of a 512 GB-capable BlueDBM board was effectively overprovisioned).
  spec.ftl_config.overprovisioning = 0.20;
  spec.working_set_fraction = 0.80;
  return spec;
}

obs::StateSampler::Collector make_state_collector(const ftl::FtlBase& ftl,
                                                  const ctrl::Controller* controller) {
  return [&ftl, controller](obs::StateSample& sample) {
    sample.q = ftl.observed_lsb_quota();
    sample.sbqueue = ftl.observed_slow_queue_depth();
    const nand::Geometry& geometry = ftl.device().geometry();
    std::uint64_t free_blocks = 0;
    for (std::uint32_t chip = 0; chip < geometry.num_units(); ++chip) {
      free_blocks += ftl.blocks().free_blocks(chip);
    }
    sample.free_fraction = static_cast<double>(free_blocks) /
                           static_cast<double>(geometry.total_blocks());
    if (controller != nullptr) {
      sample.queued_write_ops = controller->write_queue_depth();
      sample.chip_queue.resize(controller->num_chips());
      for (std::uint32_t chip = 0; chip < controller->num_chips(); ++chip) {
        sample.chip_queue[chip] = controller->read_queue_depth(chip);
      }
    }
    // Wear / WAF lanes (ISSUE 10). Cumulative device-lifetime values, not
    // per-run deltas: the time series shows wear accumulating and WAF
    // converging. The ledger scan is O(blocks) but runs only on emitted
    // (grid-point) samples; everything here is allocation-free.
    const nand::AttributionCounters& attribution = ftl.device().attribution();
    sample.waf = obs::waf_total(attribution);
    std::uint64_t max_pe = 0;
    std::uint64_t total_pe = 0;
    for (std::uint32_t chip = 0; chip < geometry.num_units(); ++chip) {
      for (const nand::BlockWear& wear : ftl.device().chip(chip).wear_ledger()) {
        max_pe = std::max(max_pe, wear.erases);
        total_pe += wear.erases;
      }
    }
    sample.wear_max_pe = max_pe;
    sample.wear_mean_pe =
        static_cast<double>(total_pe) / static_cast<double>(geometry.total_blocks());
  };
}

SimResult run_experiment(FtlKind kind, workload::Preset preset,
                         const ExperimentSpec& spec, obs::TraceSink* sink,
                         obs::StateSampler* sampler, const Snapshot* warm) {
  std::unique_ptr<ftl::FtlBase> ftl = make_ftl(kind, spec.ftl_config);
  Simulator simulator(*ftl, spec.sim);
  if (warm != nullptr) {
    const bool restored = simulator.warm_start(*warm);
    assert(restored);
    (void)restored;
  } else {
    simulator.precondition();
  }
  const Lpn working_set = static_cast<Lpn>(
      static_cast<double>(ftl->exported_pages()) * spec.working_set_fraction);
  // Warm-up: a sibling trace (same preset and locality, different seed)
  // drives GC to the workload's own steady state before measurement.
  const workload::Trace warmup = workload::generate(workload::preset_config(
      preset, working_set, spec.requests / 2, spec.seed ^ 0x77777777ull));
  simulator.warm_up(warmup);
  const workload::Trace trace = workload::generate(
      workload::preset_config(preset, working_set, spec.requests, spec.seed));
  // Observe only the measured run: attaching here keeps preconditioning
  // and warm-up noise out of the trace and the time series.
  if (sink != nullptr) simulator.set_trace_sink(sink);
  if (sampler != nullptr) {
    sampler->set_collector(make_state_collector(
        *ftl, spec.sim.engine == Engine::kController ? &simulator.controller()
                                                     : nullptr));
    // With both observers attached, every emitted sample also lands in the
    // trace as Perfetto counter tracks ("C" events).
    if (sink != nullptr) sampler->set_counter_sink(sink);
    simulator.set_state_sampler(sampler);
  }
  SimResult result = simulator.run(trace);
  if (sampler != nullptr) {
    // The collector closes over this experiment's FTL, which dies with
    // this frame — never leave it installed.
    sampler->set_collector({});
    sampler->set_counter_sink(nullptr);
  }
  return result;
}

Snapshot make_precondition_snapshot(FtlKind kind, const ExperimentSpec& spec) {
  std::unique_ptr<ftl::FtlBase> ftl = make_ftl(kind, spec.ftl_config);
  Simulator simulator(*ftl, spec.sim);
  simulator.precondition();
  return simulator.checkpoint();
}

std::vector<SimResult> run_all_ftls(workload::Preset preset,
                                    const ExperimentSpec& spec,
                                    std::uint32_t jobs) {
  // Precondition each kind once (jobs-wide) and fork the experiments from
  // the snapshots — the fill phase is workload-independent, so this is
  // bit-identical to preconditioning inside every cell.
  std::vector<Snapshot> warm(std::size(kAllFtls));
  util::parallel_for_indexed(warm.size(), jobs, [&](std::size_t f) {
    warm[f] = make_precondition_snapshot(kAllFtls[f], spec);
  });
  std::vector<SimResult> results(std::size(kAllFtls));
  util::parallel_for_indexed(results.size(), jobs, [&](std::size_t f) {
    results[f] = run_experiment(kAllFtls[f], preset, spec, nullptr, nullptr, &warm[f]);
  });
  return results;
}

std::vector<std::vector<SimResult>> run_preset_matrix(
    const std::vector<workload::Preset>& presets, const ExperimentSpec& spec,
    std::uint32_t jobs) {
  constexpr std::size_t kFtls = std::size(kAllFtls);
  // One steady-state snapshot per FTL kind serves the whole matrix: the
  // preconditioning fill depends on (kind, spec) only, never the preset.
  std::vector<Snapshot> warm(kFtls);
  util::parallel_for_indexed(warm.size(), jobs, [&](std::size_t f) {
    warm[f] = make_precondition_snapshot(kAllFtls[f], spec);
  });
  std::vector<std::vector<SimResult>> results(presets.size(),
                                              std::vector<SimResult>(kFtls));
  // Flat (preset, ftl) index space; each cell writes only its own slot.
  util::parallel_for_indexed(
      presets.size() * kFtls, jobs, [&](std::size_t i) {
        const std::size_t p = i / kFtls;
        const std::size_t f = i % kFtls;
        results[p][f] = run_experiment(kAllFtls[f], presets[p], spec, nullptr,
                                       nullptr, &warm[f]);
      });
  return results;
}

std::uint32_t parse_jobs_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg.rfind("--jobs=", 0) == 0) {
        return std::max(1u, static_cast<std::uint32_t>(std::stoul(arg.substr(7))));
      }
      if (arg == "--jobs" && i + 1 < argc) {
        return std::max(1u, static_cast<std::uint32_t>(std::stoul(argv[i + 1])));
      }
    } catch (...) {
      return 1;
    }
  }
  return 1;
}

std::string parse_trace_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) return arg.substr(8);
    if (arg == "--trace" && i + 1 < argc) return argv[i + 1];
  }
  return {};
}

std::string parse_metrics_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics=", 0) == 0) return arg.substr(10);
    if (arg == "--metrics" && i + 1 < argc) return argv[i + 1];
  }
  return {};
}

void add_result_metrics(obs::MetricsReport& report, const SimResult& result) {
  report.add_str("ftl", result.ftl_name);
  report.add_str("workload", result.workload_name);
  report.add_u64("requests", result.requests);
  report.add_u64("pages_written", result.pages_written);
  report.add_u64("pages_read", result.pages_read);
  report.add_i64("makespan_us", result.makespan_us);
  report.add_f64("iops_busy", result.iops_busy());
  report.add_f64("waf", result.waf());
  report.add_u64("erases", result.erases);
  report.add_attribution(result.attribution);
  report.add_wear(result.wear);
}

std::uint64_t parse_requests_flag(int argc, char** argv, std::uint64_t fallback) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg.rfind("--requests=", 0) == 0) {
        return std::max<std::uint64_t>(1, std::stoull(arg.substr(11)));
      }
      if (arg == "--requests" && i + 1 < argc) {
        return std::max<std::uint64_t>(1, std::stoull(argv[i + 1]));
      }
    } catch (...) {
      return fallback;
    }
  }
  return fallback;
}

}  // namespace rps::sim
