#include "src/sim/runner.hpp"

#include <algorithm>
#include <string>

#include "src/core/flex_ftl.hpp"
#include "src/ftl/page_ftl.hpp"
#include "src/ftl/parity_ftl.hpp"
#include "src/ftl/rtf_ftl.hpp"
#include "src/ftl/slc_ftl.hpp"
#include "src/util/parallel.hpp"

namespace rps::sim {

std::unique_ptr<ftl::FtlBase> make_ftl(FtlKind kind, const ftl::FtlConfig& config) {
  switch (kind) {
    case FtlKind::kPage: return std::make_unique<ftl::PageFtl>(config);
    case FtlKind::kParity: return std::make_unique<ftl::ParityFtl>(config);
    case FtlKind::kRtf: return std::make_unique<ftl::RtfFtl>(config);
    case FtlKind::kFlex: return std::make_unique<core::FlexFtl>(config);
    case FtlKind::kSlc: return std::make_unique<ftl::SlcFtl>(config);
  }
  __builtin_unreachable();
}

RebootOutcome crash_reboot(FtlKind kind, ftl::FtlBase& ftl,
                           const std::vector<nand::PowerLossVictim>& victims,
                           Microseconds now) {
  RebootOutcome outcome;
  switch (kind) {
    case FtlKind::kFlex:
      outcome.recovery_supported = true;
      outcome.report =
          static_cast<core::FlexFtl&>(ftl).recover_from_power_loss(victims, now);
      break;
    case FtlKind::kPage:
    case FtlKind::kParity:
    case FtlKind::kRtf:
    case FtlKind::kSlc:
      // No recovery procedure: the reboot is an OOB media rescan. Pages the
      // cut destroyed read as ECC-uncorrectable and are dropped; the newest
      // intact copy of each LPN (if any) wins.
      ftl.rebuild_mapping();
      break;
  }
  return outcome;
}

nand::Geometry bench_geometry() {
  nand::Geometry g;
  g.channels = 8;
  g.chips_per_channel = 4;
  g.blocks_per_chip = 128;
  g.wordlines_per_block = 128;
  g.page_size_bytes = 4096;
  return g;
}

ExperimentSpec ExperimentSpec::bench_default() {
  ExperimentSpec spec;
  spec.ftl_config.geometry = bench_geometry();
  // Enterprise-class spare capacity: keeps steady-state write amplification
  // in the 1.3-1.8 range the paper's testbed operated in (its 16 GB slice
  // of a 512 GB-capable BlueDBM board was effectively overprovisioned).
  spec.ftl_config.overprovisioning = 0.20;
  spec.working_set_fraction = 0.80;
  return spec;
}

SimResult run_experiment(FtlKind kind, workload::Preset preset,
                         const ExperimentSpec& spec) {
  std::unique_ptr<ftl::FtlBase> ftl = make_ftl(kind, spec.ftl_config);
  Simulator simulator(*ftl, spec.sim);
  simulator.precondition();
  const Lpn working_set = static_cast<Lpn>(
      static_cast<double>(ftl->exported_pages()) * spec.working_set_fraction);
  // Warm-up: a sibling trace (same preset and locality, different seed)
  // drives GC to the workload's own steady state before measurement.
  const workload::Trace warmup = workload::generate(workload::preset_config(
      preset, working_set, spec.requests / 2, spec.seed ^ 0x77777777ull));
  simulator.warm_up(warmup);
  const workload::Trace trace = workload::generate(
      workload::preset_config(preset, working_set, spec.requests, spec.seed));
  return simulator.run(trace);
}

std::vector<SimResult> run_all_ftls(workload::Preset preset,
                                    const ExperimentSpec& spec,
                                    std::uint32_t jobs) {
  std::vector<SimResult> results(std::size(kAllFtls));
  util::parallel_for_indexed(results.size(), jobs, [&](std::size_t f) {
    results[f] = run_experiment(kAllFtls[f], preset, spec);
  });
  return results;
}

std::vector<std::vector<SimResult>> run_preset_matrix(
    const std::vector<workload::Preset>& presets, const ExperimentSpec& spec,
    std::uint32_t jobs) {
  constexpr std::size_t kFtls = std::size(kAllFtls);
  std::vector<std::vector<SimResult>> results(presets.size(),
                                              std::vector<SimResult>(kFtls));
  // Flat (preset, ftl) index space; each cell writes only its own slot.
  util::parallel_for_indexed(
      presets.size() * kFtls, jobs, [&](std::size_t i) {
        const std::size_t p = i / kFtls;
        const std::size_t f = i % kFtls;
        results[p][f] = run_experiment(kAllFtls[f], presets[p], spec);
      });
  return results;
}

std::uint32_t parse_jobs_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg.rfind("--jobs=", 0) == 0) {
        return std::max(1u, static_cast<std::uint32_t>(std::stoul(arg.substr(7))));
      }
      if (arg == "--jobs" && i + 1 < argc) {
        return std::max(1u, static_cast<std::uint32_t>(std::stoul(argv[i + 1])));
      }
    } catch (...) {
      return 1;
    }
  }
  return 1;
}

}  // namespace rps::sim
