#include "src/sim/snapshot.hpp"

#include <cstdio>

#include "src/core/flex_tlc_ftl.hpp"
#include "src/ftl/ftl_base.hpp"

namespace rps::sim {

namespace {

constexpr std::uint8_t kFamilyMlc = 0;
constexpr std::uint8_t kFamilyTlc = 1;

void write_header(ser::Writer& w, std::uint8_t family, std::string_view name) {
  w.u64(Snapshot::kMagic);
  w.u32(Snapshot::kVersion);
  w.u8(family);
  w.str(name);
}

void write_geometry(ser::Writer& w, const nand::Geometry& g) {
  w.u32(g.channels);
  w.u32(g.chips_per_channel);
  w.u32(g.planes_per_chip);
  w.u32(g.blocks_per_chip);
  w.u32(g.wordlines_per_block);
  w.u32(g.page_size_bytes);
  w.u32(g.spare_bytes);
}

bool geometry_matches(ser::Reader& r, const nand::Geometry& g) {
  return r.u32() == g.channels && r.u32() == g.chips_per_channel &&
         r.u32() == g.planes_per_chip && r.u32() == g.blocks_per_chip &&
         r.u32() == g.wordlines_per_block && r.u32() == g.page_size_bytes &&
         r.u32() == g.spare_bytes;
}

void write_geometry(ser::Writer& w, const nand::TlcGeometry& g) {
  w.u32(g.channels);
  w.u32(g.chips_per_channel);
  w.u32(g.blocks_per_chip);
  w.u32(g.wordlines_per_block);
  w.u32(g.page_size_bytes);
}

bool geometry_matches(ser::Reader& r, const nand::TlcGeometry& g) {
  return r.u32() == g.channels && r.u32() == g.chips_per_channel &&
         r.u32() == g.blocks_per_chip && r.u32() == g.wordlines_per_block &&
         r.u32() == g.page_size_bytes;
}

void append_payload(ser::Writer& header, ser::Writer&& payload) {
  const std::vector<std::uint8_t> body = payload.take();
  header.u64(body.size());
  header.bytes(body.data(), body.size());
  header.u64(ser::fnv1a(body));
}

/// Parse + validate the header; on success returns a Reader positioned at
/// the payload covering exactly `payload size` bytes. The checksum trailer
/// is NOT re-verified here: restore() runs on every warm-started trial (a
/// 64-seed sweep forks thousands of times from one snapshot), and hashing
/// a multi-megabyte payload per fork would cost as much as the fill phase
/// it replaces. Integrity is checked once, where untrusted bytes enter a
/// Snapshot (from_bytes / load_file); capture() output is correct by
/// construction.
template <typename Geometry>
std::optional<ser::Reader> open_payload(const std::vector<std::uint8_t>& bytes,
                                        std::uint8_t family, std::string_view name,
                                        const Geometry& geometry) {
  ser::Reader r(bytes);
  if (r.u64() != Snapshot::kMagic) return std::nullopt;
  if (r.u32() != Snapshot::kVersion) return std::nullopt;
  if (r.u8() != family) return std::nullopt;
  if (r.str() != name) return std::nullopt;
  if (!geometry_matches(r, geometry)) return std::nullopt;
  const std::uint64_t size = r.u64();
  if (!r.ok() || r.remaining() < 8 || size != r.remaining() - 8) return std::nullopt;
  return ser::Reader(bytes.data() + r.pos(), static_cast<std::size_t>(size));
}

/// Full structural + checksum verification of an untrusted byte stream:
/// magic, version, family, payload framing, FNV-1a trailer.
bool verify_stream(const std::vector<std::uint8_t>& bytes) {
  ser::Reader r(bytes);
  if (r.u64() != Snapshot::kMagic) return false;
  if (r.u32() != Snapshot::kVersion) return false;
  const std::uint8_t family = r.u8();
  if (family != kFamilyMlc && family != kFamilyTlc) return false;
  if (r.str().empty()) return false;
  const std::size_t geometry_words = family == kFamilyMlc ? 7 : 5;
  for (std::size_t i = 0; i < geometry_words; ++i) (void)r.u32();
  const std::uint64_t size = r.u64();
  if (!r.ok() || r.remaining() < 8 || size != r.remaining() - 8) return false;
  const std::size_t start = r.pos();
  ser::Reader trailer(bytes.data() + start + size, 8);
  return trailer.u64() ==
         ser::fnv1a(bytes.data() + start, static_cast<std::size_t>(size));
}

}  // namespace

Snapshot Snapshot::capture(const ftl::FtlBase& ftl) {
  ser::Writer w;
  write_header(w, kFamilyMlc, ftl.name());
  write_geometry(w, ftl.device().geometry());
  ser::Writer payload;
  ftl.save_state(payload);
  append_payload(w, std::move(payload));
  Snapshot s;
  s.bytes_ = w.take();
  return s;
}

Snapshot Snapshot::capture(const core::FlexTlcFtl& ftl) {
  ser::Writer w;
  write_header(w, kFamilyTlc, ftl.name());
  write_geometry(w, ftl.device().geometry());
  ser::Writer payload;
  ftl.save_state(payload);
  append_payload(w, std::move(payload));
  Snapshot s;
  s.bytes_ = w.take();
  return s;
}

bool Snapshot::restore(ftl::FtlBase& ftl) const {
  std::optional<ser::Reader> payload =
      open_payload(bytes_, kFamilyMlc, ftl.name(), ftl.device().geometry());
  if (!payload) return false;
  ftl.load_state(*payload);
  return payload->ok() && payload->at_end();
}

bool Snapshot::restore(core::FlexTlcFtl& ftl) const {
  std::optional<ser::Reader> payload =
      open_payload(bytes_, kFamilyTlc, ftl.name(), ftl.device().geometry());
  if (!payload) return false;
  ftl.load_state(*payload);
  return payload->ok() && payload->at_end();
}

bool Snapshot::valid() const {
  ser::Reader r(bytes_);
  if (r.u64() != kMagic || r.u32() != kVersion) return false;
  const std::uint8_t family = r.u8();
  return r.ok() && (family == kFamilyMlc || family == kFamilyTlc);
}

std::string Snapshot::ftl_name() const {
  ser::Reader r(bytes_);
  if (r.u64() != kMagic || r.u32() != kVersion) return {};
  (void)r.u8();
  std::string name = r.str();
  return r.ok() ? name : std::string{};
}

Snapshot Snapshot::from_bytes(std::vector<std::uint8_t> bytes) {
  // The one trust boundary: bytes from outside (a file, a peer process)
  // get the full checksum verification here, exactly once. A snapshot
  // that fails comes back empty — restore() on it returns false.
  Snapshot s;
  if (verify_stream(bytes)) s.bytes_ = std::move(bytes);
  return s;
}

bool Snapshot::save_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = bytes_.empty()
                                  ? 0
                                  : std::fwrite(bytes_.data(), 1, bytes_.size(), f);
  const bool ok = std::fclose(f) == 0 && written == bytes_.size();
  return ok;
}

std::optional<Snapshot> Snapshot::load_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) return std::nullopt;
  Snapshot s = from_bytes(std::move(bytes));
  if (!s.valid()) return std::nullopt;
  return s;
}

}  // namespace rps::sim
