// The command-scheduling controller: per-chip op queues, request striping,
// event-driven retirement.
//
// A submitted HostCommand is split into per-page NandOps (nand_op.hpp).
// Write ops wait in one FIFO and are *bound to a chip at dispatch time*:
// when the event loop reaches a time t, every chip whose timeline is free
// at t is eligible, and the allocator's capacity-aware round-robin
// (FtlBase::pick_chip_among) picks among the eligible set. That is what
// makes the pages of one request stripe across the array — the second
// page never waits behind the first page's program, it lands on the next
// idle chip. When no chip is idle the controller sleeps until the
// earliest one frees up.
//
// Read ops are bound to the chip their mapping points at and queue
// per-chip FIFO; the device model serializes same-chip service anyway, so
// queueing mirrors the hardware. Reads of unmapped pages retire instantly
// (zero-fill, no device touch).
//
// What the controller does NOT do: page placement (the allocator decides
// where on the chosen chip a page lands and what backup/GC work surrounds
// it), and GC scheduling (foreground GC remains a synchronous part of an
// allocation — the victim relocation must complete before the freed block
// can absorb the triggering write, so it is one indivisible policy step).
//
// Memory layout (DESIGN.md §14): the steady-state submit→retire cycle is
// allocation-free. Per-page ops are never materialized — an op is fully
// determined by its (command, index) pair (kind and LPN derive from the
// command, the only dependency edge is index-1 → index on ordered
// commands, and the plane group is index / planes) — so the queues carry
// tiny {ready, cmd, index} entries in recycling ring buffers, and the only
// per-op storage is a done-flag byte from a power-of-two slab pool. Live
// commands occupy a power-of-two ring of parallel arrays (SoA: state,
// command, remaining-count, result, done-slab, plane anchors) indexed by
// id & mask, recycled as the id window slides.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/controller/event_queue.hpp"
#include "src/controller/nand_op.hpp"
#include "src/ftl/ftl_base.hpp"
#include "src/util/ring_buffer.hpp"
#include "src/util/slab_pool.hpp"

namespace rps::obs {
class TraceSink;
class StateSampler;
}  // namespace rps::obs

namespace rps::ctrl {

struct ControllerConfig {
  /// Bind write ops to idle chips at dispatch (request striping). When
  /// off, every write falls back to the allocator's own unconstrained
  /// chip pick — placement becomes identical to the legacy synchronous
  /// path regardless of chip busyness.
  bool stripe_writes = true;
  /// Record one OpRecord per retired op (property tests, debugging).
  bool keep_op_log = false;
};

/// Completion record of one command.
struct CommandResult {
  CommandId id = 0;
  Microseconds issue = 0;
  Microseconds first_complete = 0;  // earliest page op retirement
  Microseconds last_complete = 0;   // all page ops retired
  std::uint32_t pages = 0;
  std::uint32_t read_errors = 0;    // ECC-uncorrectable page reads
  bool ok = true;                   // every write op found space
  /// A power loss cancelled at least one of this command's ops before it
  /// dispatched: the command was never acknowledged to the host.
  bool aborted = false;
};

/// What a power loss tore out of the controller (see Controller::power_loss).
struct PowerLossOutcome {
  /// Programs the device reported destroyed (in flight at the cut).
  std::vector<nand::PowerLossVictim> victims;
  std::uint64_t cancelled_write_ops = 0;  // queued, never dispatched
  std::uint64_t cancelled_read_ops = 0;   // queued, never dispatched
  std::uint64_t aborted_commands = 0;     // had at least one unretired op
};

/// Per-op trace entry.
struct OpRecord {
  CommandId cmd = 0;
  std::uint32_t index = 0;  // position within the command's batch
  OpKind kind = OpKind::kHostWrite;
  Lpn lpn = 0;
  std::uint32_t chip = 0;   // chip the op was dispatched on
  Microseconds issue = 0;   // command issue time
  Microseconds ready = 0;   // last dependency resolved
  Microseconds start = 0;   // dispatched to the allocator/device
  Microseconds complete = 0;
  bool ok = true;
};

class Controller {
 public:
  explicit Controller(ftl::FtlBase& ftl, ControllerConfig config = {});
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Enqueue a command, split into per-page ops. Returns its id; nothing
  /// executes until drain().
  CommandId submit(const HostCommand& cmd);

  /// Run the event loop: dispatch every op that becomes ready at an event
  /// time <= `until` (default: until everything submitted has retired).
  void drain(Microseconds until = kTimeNever);

  /// submit + drain + take_result: the synchronous convenience path.
  CommandResult execute(const HostCommand& cmd);

  /// Completion record of a fully retired command (removes it from the
  /// finished set). Asserts the command is finished.
  CommandResult take_result(CommandId id);

  /// Every finished (or aborted) command's record, ordered by id; clears
  /// the finished set. The crash harness uses this to decide which
  /// commands the host saw acknowledged before a cut.
  std::vector<CommandResult> take_all_results();

  /// Allocation-free variant: clears `out` and refills it (reserving from
  /// the finished-set size). Steady-state callers reuse one buffer across
  /// harvests so the results path never touches the allocator.
  void take_all_results_into(std::vector<CommandResult>& out);

  /// Pre-size every in-flight structure for a closed-loop host that keeps
  /// at most `commands` commands of at most `max_pages` pages each
  /// outstanding: the slot ring, the done-flag slab pool (every size
  /// class up to `max_pages`, `commands` slabs deep), the op queues, and
  /// the finished list. After this, a host honoring those bounds drives
  /// submit/drain/take_all_results_into without a single heap allocation
  /// — capacity high-water marks can no longer drift run to run.
  void reserve_inflight(std::size_t commands, std::size_t max_pages);

  /// Power loss at time `t`: settle everything dispatchable by `t`, then
  /// tear the controller down the way a real cut would — queued-but-
  /// unissued ops are cancelled (their commands abort; the host never saw
  /// an acknowledgement), wake-ups are dropped, and the device power loss
  /// is injected (destroying in-flight programs). Commands that fully
  /// retired stay in the finished set; whether their data survived is the
  /// recovery layer's problem, not the scheduler's.
  PowerLossOutcome power_loss(Microseconds t);

  /// True when no submitted op is still in flight.
  [[nodiscard]] bool idle() const { return live_ops_ == 0; }

  /// Idle-window pass-through to the allocator's planning hook.
  void on_idle(Microseconds now, Microseconds deadline);

  /// Attach observability (null = off, the default). The sink records one
  /// NandOp event per retired device op; the sampler is ticked at every
  /// event-queue instant the drain loop reaches. Both pointers are
  /// borrowed — the harness owns them and they must outlive the drain.
  void set_observability(obs::TraceSink* sink, obs::StateSampler* sampler) {
    trace_ = sink;
    sampler_ = sampler;
  }

  /// Scheduler depth right now (state sampling): write FIFO ops, and
  /// queued read ops on `chip` (a flat unit index; one queue per unit).
  [[nodiscard]] std::size_t write_queue_depth() const { return write_queue_.size(); }
  [[nodiscard]] std::size_t read_queue_depth(std::uint32_t chip) const {
    assert(chip < read_queues_.size());
    return read_queues_[chip].size();
  }
  [[nodiscard]] std::uint32_t num_chips() const {
    return static_cast<std::uint32_t>(read_queues_.size());
  }

  [[nodiscard]] const std::vector<OpRecord>& op_log() const { return op_log_; }
  [[nodiscard]] const ControllerConfig& config() const { return config_; }

 private:
  /// A slot walks kPending -> kFinished (done slab released; the result
  /// awaits take_result) -> kEmpty, and the id window slides off empty
  /// front slots.
  enum class SlotState : std::uint8_t { kEmpty, kPending, kFinished };

  /// A dependency-resolved op waiting in a dispatch queue. `ready` is
  /// immutable once enqueued: dependencies resolve *before* enqueueing
  /// (an ordered op enters its queue when its predecessor retires), so
  /// the dispatch scan never dereferences the slot to test readiness.
  struct QueuedOp {
    Microseconds ready = 0;
    CommandId cmd = 0;
    std::uint32_t index = 0;
  };

  /// Live commands occupy a power-of-two ring of parallel arrays indexed
  /// by id & slot_mask_ (ids are monotonic, so the window
  /// [base_id_, next_id_) is contiguous mod capacity).
  [[nodiscard]] std::size_t slot_of(CommandId id) const {
    assert(id >= base_id_ && id < next_id_);
    return static_cast<std::size_t>(id) & slot_mask_;
  }

  /// Double the slot ring, re-basing the live window by id.
  void grow_slots();

  /// Slide the window: drop consumed slots off the front.
  void pop_empty_front() {
    while (base_id_ < next_id_ &&
           slot_state_[static_cast<std::size_t>(base_id_) & slot_mask_] ==
               SlotState::kEmpty) {
      ++base_id_;
    }
  }

  /// The per-page op an index denotes, derived from its command.
  [[nodiscard]] static Lpn op_lpn(const HostCommand& cmd, std::uint32_t index) {
    return cmd.lpn + index;
  }
  [[nodiscard]] std::uint32_t op_plane_group(const HostCommand& cmd,
                                             std::uint32_t index) const {
    return (planes_ > 1 && cmd.kind == CmdKind::kWrite && !cmd.ordered)
               ? index / planes_
               : kNoPlaneGroup;
  }

  /// Return a finished/aborted slot's done slab to the pool.
  void release_done(std::size_t si) {
    if (slot_done_[si] != nullptr) {
      done_pool_.release(slot_done_[si], slot_cmd_[si].page_count);
      slot_done_[si] = nullptr;
    }
  }

  /// An op's dependencies just resolved: route it to its dispatch queue
  /// (or retire it on the spot for unmapped reads).
  void enqueue_ready(CommandId id, std::uint32_t index, Microseconds ready);

  /// Dispatch everything dispatchable at time `t`; schedules wake-ups for
  /// whatever blocks (busy chips, unready deps).
  void dispatch_at(Microseconds t);

  /// Returns true when the op was consumed (dispatched or failed); false
  /// when it must stay queued (no idle chip — `blocked_until` is set to
  /// the earliest time one frees up).
  bool dispatch_write(const QueuedOp& qop, Microseconds t, Microseconds& blocked_until);
  void dispatch_read(const QueuedOp& qop, std::uint32_t chip, Microseconds t);

  void retire(CommandId id, std::uint32_t index, Microseconds ready,
              std::uint32_t chip, Microseconds start, Microseconds complete,
              bool ok);

  /// Finalize commands whose last op retired (recorded in
  /// newly_finished_): release their done slab and flip the slot to
  /// kFinished. Only called from drain() between events.
  void collect_finished();

  ftl::FtlBase& ftl_;
  ControllerConfig config_;
  EventQueue events_;
  std::uint32_t units_ = 0;   // geometry cache: flat chip units
  std::uint32_t planes_ = 0;  // geometry cache: planes per die

  // SoA slot ring (see slot_of). Parallel arrays keep the fields the
  // dispatch/retire path touches (state, remaining, result) packed apart
  // from the cold per-command records.
  std::vector<SlotState> slot_state_;
  std::vector<std::uint32_t> slot_remaining_;
  std::vector<CommandResult> slot_result_;
  std::vector<HostCommand> slot_cmd_;
  std::vector<std::uint8_t*> slot_done_;  // per-op done flags (slab pool)
  /// Plane-group anchors: (group, die) of the first member dispatched.
  /// Later members of the group prefer idle sibling planes of that die
  /// so their programs share one multi-plane-style busy window. The
  /// inner vectors keep their capacity across slot recycling.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> slot_group_die_;
  std::size_t slot_mask_ = 0;
  CommandId base_id_ = 1;  // oldest live id
  CommandId next_id_ = 1;

  SlabPool<std::uint8_t> done_pool_;
  std::vector<CommandId> newly_finished_;  // remaining hit 0, not yet collected
  std::size_t finished_count_ = 0;  // slots in kFinished state
  RingBuffer<QueuedOp> write_queue_;               // FIFO, striped across chips
  std::vector<RingBuffer<QueuedOp>> read_queues_;  // per chip
  std::size_t queued_reads_ = 0;  // total across read_queues_
  std::vector<OpRecord> op_log_;
  std::vector<std::uint8_t> eligible_;          // scratch: idle-chip mask
  std::uint64_t live_ops_ = 0;
  obs::TraceSink* trace_ = nullptr;      // borrowed; null = tracing off
  obs::StateSampler* sampler_ = nullptr; // borrowed; null = sampling off
};

}  // namespace rps::ctrl
