#include "src/controller/event_queue.hpp"

// All members are defined inline in the header (they sit on the
// controller's per-event hot path); this TU anchors the target.
