#include "src/controller/event_queue.hpp"

#include <cassert>

namespace rps::ctrl {

void EventQueue::schedule(Microseconds t) { heap_.push(t); }

Microseconds EventQueue::pop() {
  assert(!heap_.empty());
  const Microseconds t = heap_.top();
  heap_.pop();
  return t;
}

}  // namespace rps::ctrl
