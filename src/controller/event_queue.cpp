#include "src/controller/event_queue.hpp"

#include <cassert>

namespace rps::ctrl {

void EventQueue::schedule(Microseconds t) {
  // Stale wake-up for the instant being processed: dispatch_at runs to a
  // fixpoint there, so this wake-up can't make anything newly
  // dispatchable. (Outside an instant nothing <= the earliest entry may
  // be dropped — a post-drain submit may legitimately re-wake a past
  // time.)
  if (processing_ && t <= current_) return;
  // Exact duplicate of the current earliest: the drain loop coalesces
  // equal pops, so the second entry could never be observed.
  if (!times_.empty() && t == times_.min()) return;
  times_.insert(t);
}

Microseconds EventQueue::pop() {
  assert(!times_.empty());
  const Microseconds t = times_.pop_min();
  current_ = t;
  processing_ = true;
  return t;
}

}  // namespace rps::ctrl
