// Minimal discrete-event core for the command controller: a min-heap of
// wake-up times. The controller schedules a wake-up whenever something
// will become dispatchable later (a dependency completes, a chip goes
// idle, a command's issue time arrives) and drains events in time order.
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "src/util/types.hpp"

namespace rps::ctrl {

class EventQueue {
 public:
  void schedule(Microseconds t);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Earliest scheduled time. Precondition: !empty().
  [[nodiscard]] Microseconds peek() const { return heap_.top(); }

  /// Pop and return the earliest scheduled time. Precondition: !empty().
  Microseconds pop();

  /// Drop every scheduled wake-up (power-loss teardown).
  void clear() { heap_ = {}; }

 private:
  std::priority_queue<Microseconds, std::vector<Microseconds>, std::greater<>> heap_;
};

}  // namespace rps::ctrl
