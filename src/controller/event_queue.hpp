// Minimal discrete-event core for the command controller: an ordered
// multiset of wake-up times over a hierarchical calendar queue
// (src/controller/calendar_queue.hpp — O(1) amortized against the dense,
// near-clock wake-up profile the controller produces, where the old
// binary heap paid O(log n) per op). The controller schedules a wake-up
// whenever something will become dispatchable later (a dependency
// completes, a chip goes idle, a command's issue time arrives) and
// drains events in time order.
//
// The controller schedules redundantly by design (every blocked op posts
// its own wake-up, chips post theirs), so the queue coalesces at the
// source instead of carrying duplicates to the heap:
//   - an exact duplicate of the current earliest entry is dropped — the
//     drain loop would coalesce the two pops anyway, and the heap of a
//     queue-depth-64 run is mostly such duplicates;
//   - while the controller is *processing* an instant (between pop() and
//     end_instant()), any time <= that instant is dropped: dispatch_at
//     runs to a fixpoint at its instant, so re-waking at or before it
//     cannot unblock anything the fixpoint didn't already try.
#pragma once

#include <cassert>

#include "src/controller/calendar_queue.hpp"
#include "src/util/types.hpp"

namespace rps::ctrl {

class EventQueue {
 public:
  void schedule(Microseconds t) {
    // Stale wake-up for the instant being processed: dispatch_at runs to a
    // fixpoint there, so this wake-up can't make anything newly
    // dispatchable. (Outside an instant nothing <= the earliest entry may
    // be dropped — a post-drain submit may legitimately re-wake a past
    // time.)
    if (processing_ && t <= current_) return;
    // Exact duplicate of the current earliest: the drain loop coalesces
    // equal pops, so the second entry could never be observed.
    if (!times_.empty() && t == times_.min()) return;
    times_.insert(t);
  }

  [[nodiscard]] bool empty() const { return times_.empty(); }
  [[nodiscard]] std::size_t size() const { return times_.size(); }

  /// Earliest scheduled time. Precondition: !empty().
  [[nodiscard]] Microseconds peek() const { return times_.min(); }

  /// Pop and return the earliest scheduled time. Precondition: !empty().
  /// Starts an "instant": until end_instant(), schedule() drops any time
  /// at or before the popped one.
  Microseconds pop() {
    assert(!times_.empty());
    const Microseconds t = times_.pop_min();
    current_ = t;
    processing_ = true;
    return t;
  }

  /// The caller's dispatch fixpoint for the popped instant is done;
  /// schedule() resumes accepting times at or before it.
  void end_instant() { processing_ = false; }

  /// Drop every scheduled wake-up (power-loss teardown).
  void clear() {
    times_.clear();
    processing_ = false;
  }

 private:
  CalendarQueue times_;
  Microseconds current_ = 0;  // last popped time (valid while processing_)
  bool processing_ = false;
};

}  // namespace rps::ctrl
