// Two-tier (hierarchical) calendar queue: the time-ordered multiset under
// the controller's EventQueue, replacing the binary heap.
//
// A calendar queue [Brown, CACM 1988] hashes each event time into a ring
// of `nbuckets` buckets of `width` microseconds each (one "year" =
// nbuckets * width). Near-future events — the controller's entire steady
// state, where wake-ups cluster within a few op latencies of the clock —
// land in a handful of buckets, so insert and pop are O(1) amortized
// instead of the heap's O(log n).
//
// The hierarchy: events more than one year past the current minimum go to
// an overflow tier (a sorted array, min at the back) instead of wrapping
// around the ring and polluting year scans. As the clock advances,
// overflow events within the new year migrate down into the calendar.
//
// Determinism contract: the structure stores bare timestamps, so "tie
// order" of equal times is value-identity — pop order is exactly the
// sorted multiset order, bit-identical to the heap it replaces. Growth
// (bucket doubling) is a pure function of the insert/pop sequence; no
// clocks, no sampling, no randomness.
//
// find-min after a pop walks the ring one bucket-width window at a time,
// starting at the popped time's bucket: the first bucket whose minimum
// falls inside its current-year window holds the global minimum (windows
// are disjoint and increasing). A full fruitless cycle — sparse or
// past-scheduled events — falls back to a direct scan of the per-bucket
// minima, which is always exact.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/types.hpp"

namespace rps::ctrl {

class CalendarQueue {
 public:
  /// `width` = bucket granularity in simulated microseconds. The default
  /// spans a typical NAND op latency, so one dispatch round's wake-ups
  /// share a few adjacent buckets.
  explicit CalendarQueue(Microseconds width = 256);

  void insert(Microseconds t);

  /// Remove and return the minimum. Precondition: !empty().
  Microseconds pop_min();

  /// Cached exact minimum, O(1). Precondition: !empty().
  [[nodiscard]] Microseconds min() const { return min_; }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  void clear();

  /// Ring capacity right now (growth observability for tests).
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

 private:
  [[nodiscard]] std::size_t bucket_of(Microseconds t) const {
    return static_cast<std::size_t>(t / width_) & mask_;
  }

  /// Insert into a bucket, keeping it sorted descending (min at back()).
  void place(Microseconds t);

  /// Exact minimum of the calendar tier, >= `floor`; kTimeNever if the
  /// tier is empty. `floor` must lower-bound every calendar event.
  [[nodiscard]] Microseconds calendar_min_from(Microseconds floor) const;

  /// Double the ring when buckets get crowded; redistributes in place.
  void maybe_grow();

  /// Pull overflow events that now fall inside the current year down into
  /// the calendar tier.
  void migrate_overflow();

  std::vector<std::vector<Microseconds>> buckets_;
  std::vector<Microseconds> overflow_;  // sorted descending, min at back
  Microseconds width_;
  std::size_t mask_;          // buckets_.size() - 1 (power of two)
  std::size_t size_ = 0;      // both tiers
  std::size_t in_calendar_ = 0;
  Microseconds min_ = 0;      // exact global min (valid when size_ > 0)
};

}  // namespace rps::ctrl
