// Two-tier (hierarchical) calendar queue: the time-ordered multiset under
// the controller's EventQueue, replacing the binary heap.
//
// A calendar queue [Brown, CACM 1988] hashes each event time into a ring
// of `nbuckets` buckets of `width` microseconds each (one "year" =
// nbuckets * width). Near-future events — the controller's entire steady
// state, where wake-ups cluster within a few op latencies of the clock —
// land in a handful of buckets, so insert and pop are O(1) amortized
// instead of the heap's O(log n).
//
// The hierarchy: events more than one year past the current minimum go to
// an overflow tier (a sorted array, min at the back) instead of wrapping
// around the ring and polluting year scans. As the clock advances,
// overflow events within the new year migrate down into the calendar.
//
// Determinism contract: the structure stores bare timestamps, so "tie
// order" of equal times is value-identity — pop order is exactly the
// sorted multiset order, bit-identical to the heap it replaces. Growth
// (bucket doubling) is a pure function of the insert/pop sequence; no
// clocks, no sampling, no randomness.
//
// find-min after a pop walks the ring one bucket-width window at a time,
// starting at the popped time's bucket: the first bucket whose minimum
// falls inside its current-year window holds the global minimum (windows
// are disjoint and increasing). A full fruitless cycle — sparse or
// past-scheduled events — falls back to a direct scan of the per-bucket
// minima, which is always exact.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/util/types.hpp"

namespace rps::ctrl {

class CalendarQueue {
 public:
  /// `width` = bucket granularity in simulated microseconds. The default
  /// spans a typical NAND op latency, so one dispatch round's wake-ups
  /// share a few adjacent buckets.
  explicit CalendarQueue(Microseconds width = 256);

  void insert(Microseconds t) {
    if (size_ == 0 || t < min_) min_ = t;
    const Microseconds year = width_ * static_cast<Microseconds>(buckets_.size());
    if (size_ > 0 && t - min_ >= year) {
      // Beyond the current year: overflow tier, sorted descending.
      overflow_.insert(
          std::upper_bound(overflow_.begin(), overflow_.end(), t, std::greater<>()),
          t);
    } else {
      place(t);
      maybe_grow();
    }
    ++size_;
  }

  /// Remove and return the minimum. Precondition: !empty().
  Microseconds pop_min() {
    assert(size_ > 0);
    const Microseconds t = min_;
    std::vector<Microseconds>& b = buckets_[bucket_of(t)];
    if (!b.empty() && b.back() == t) {
      b.pop_back();
      --in_calendar_;
    } else {
      // The minimum can only live in overflow when the calendar tier has
      // no element this small (e.g. the tier is empty).
      assert(!overflow_.empty() && overflow_.back() == t);
      overflow_.pop_back();
    }
    --size_;
    if (size_ == 0) return t;
    Microseconds cand = in_calendar_ > 0 ? calendar_min_from(t) : kTimeNever;
    if (!overflow_.empty() && overflow_.back() < cand) cand = overflow_.back();
    min_ = cand;
    if (!overflow_.empty()) migrate_overflow();
    return t;
  }

  /// Cached exact minimum, O(1). Precondition: !empty().
  [[nodiscard]] Microseconds min() const { return min_; }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  void clear();

  /// Ring capacity right now (growth observability for tests).
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

 private:
  [[nodiscard]] std::size_t bucket_of(Microseconds t) const {
    return static_cast<std::size_t>(t / width_) & mask_;
  }

  /// Insert into a bucket, keeping it sorted descending (min at back()).
  void place(Microseconds t) {
    std::vector<Microseconds>& b = buckets_[bucket_of(t)];
    b.insert(std::upper_bound(b.begin(), b.end(), t, std::greater<>()), t);
    ++in_calendar_;
  }

  /// Exact minimum of the calendar tier, >= `floor`; kTimeNever if the
  /// tier is empty. `floor` must lower-bound every calendar event.
  [[nodiscard]] Microseconds calendar_min_from(Microseconds floor) const {
    const auto n = static_cast<Microseconds>(buckets_.size());
    // The windowed scan's bucket_end arithmetic must not overflow; absurdly
    // large floors (near kTimeNever) skip straight to the exact fallback.
    if (floor >= 0 && floor < kTimeNever - 2 * width_ * n) {
      std::size_t i = bucket_of(floor);
      Microseconds bucket_end = (floor / width_ + 1) * width_;
      for (std::size_t k = 0; k < buckets_.size(); ++k) {
        const std::vector<Microseconds>& b = buckets_[i];
        // Windows are disjoint and increasing, so the first bucket whose
        // minimum falls inside its current-year window holds the global
        // minimum. A future-year resident of the same bucket is >= its
        // window end and never matches.
        if (!b.empty() && b.back() < bucket_end) return b.back();
        i = (i + 1) & mask_;
        bucket_end += width_;
      }
    }
    // Sparse year (or wrap-hostile floor): direct minimum over the
    // per-bucket minima — always exact.
    Microseconds best = kTimeNever;
    for (const std::vector<Microseconds>& b : buckets_) {
      if (!b.empty() && b.back() < best) best = b.back();
    }
    return best;
  }

  /// Double the ring when buckets get crowded; redistributes in place.
  void maybe_grow() {
    if (in_calendar_ > kLoadFactor * buckets_.size() && buckets_.size() < kMaxBuckets) {
      grow();
    }
  }
  void grow();

  /// Pull overflow events that now fall inside the current year down into
  /// the calendar tier.
  void migrate_overflow();

  static constexpr std::size_t kMaxBuckets = 1 << 16;  // ring growth ceiling
  static constexpr std::size_t kLoadFactor = 8;  // grow past this per-bucket load

  std::vector<std::vector<Microseconds>> buckets_;
  std::vector<Microseconds> overflow_;  // sorted descending, min at back
  Microseconds width_;
  std::size_t mask_;          // buckets_.size() - 1 (power of two)
  std::size_t size_ = 0;      // both tiers
  std::size_t in_calendar_ = 0;
  Microseconds min_ = 0;      // exact global min (valid when size_ > 0)
};

}  // namespace rps::ctrl
