#include "src/controller/arbiter.hpp"

#include <algorithm>
#include <cassert>

namespace rps::ctrl {

std::optional<ArbPolicy> arb_policy_from(const std::string& name) {
  for (const ArbPolicy policy : kAllArbPolicies) {
    if (name == to_string(policy)) return policy;
  }
  return std::nullopt;
}

QueueArbiter::QueueArbiter(std::uint32_t queues, ArbiterConfig config)
    : queues_(queues), config_(std::move(config)), deficit_(queues, 0) {
  assert(queues_ > 0);
  weights_.resize(queues_, 1);
  for (std::uint32_t q = 0; q < queues_ && q < config_.weights.size(); ++q) {
    weights_[q] = std::max<std::uint32_t>(1, config_.weights[q]);
  }
  if (config_.quantum_pages == 0) config_.quantum_pages = 1;
}

std::optional<std::uint32_t> QueueArbiter::admit(
    const std::vector<std::uint8_t>& eligible,
    const std::vector<std::uint32_t>& head_cost) {
  assert(eligible.size() == queues_);
  assert(head_cost.size() == queues_ || config_.policy != ArbPolicy::kWeightedDeficitRoundRobin);
  switch (config_.policy) {
    case ArbPolicy::kRoundRobin: return admit_rr(eligible);
    case ArbPolicy::kWeightedRoundRobin: return admit_wrr(eligible);
    case ArbPolicy::kWeightedDeficitRoundRobin: return admit_wdrr(eligible, head_cost);
  }
  return std::nullopt;
}

std::optional<std::uint32_t> QueueArbiter::admit_rr(
    const std::vector<std::uint8_t>& eligible) {
  for (std::uint32_t scan = 0; scan < queues_; ++scan) {
    const std::uint32_t q = cur_;
    cur_ = (cur_ + 1) % queues_;
    if (eligible[q] != 0) return q;
  }
  return std::nullopt;
}

std::optional<std::uint32_t> QueueArbiter::admit_wrr(
    const std::vector<std::uint8_t>& eligible) {
  // One extra iteration: the first may only close out cur_'s spent visit.
  for (std::uint32_t scan = 0; scan <= queues_; ++scan) {
    if (eligible[cur_] != 0 && (!visiting_ || credit_ > 0)) {
      if (!visiting_) {
        visiting_ = true;
        credit_ = weights_[cur_];
      }
      --credit_;
      return cur_;
    }
    // Visit over (queue ineligible, or its credit spent): move on.
    visiting_ = false;
    cur_ = (cur_ + 1) % queues_;
  }
  return std::nullopt;
}

std::optional<std::uint32_t> QueueArbiter::admit_wdrr(
    const std::vector<std::uint8_t>& eligible,
    const std::vector<std::uint32_t>& head_cost) {
  std::uint32_t max_cost = 1;
  bool any = false;
  for (std::uint32_t q = 0; q < queues_; ++q) {
    if (eligible[q] == 0) continue;
    any = true;
    max_cost = std::max(max_cost, std::max<std::uint32_t>(1, head_cost[q]));
  }
  if (!any) return std::nullopt;
  // Every full round grants each eligible queue quantum x weight pages, so
  // within max_cost / quantum + 1 rounds some head fits its deficit.
  const std::uint64_t rounds = 2 + max_cost / config_.quantum_pages;
  for (std::uint64_t scan = 0; scan < rounds * queues_ + 1; ++scan) {
    if (eligible[cur_] == 0) {
      // Classic DRR: a queue with nothing to admit banks no service.
      deficit_[cur_] = 0;
      visiting_ = false;
      cur_ = (cur_ + 1) % queues_;
      continue;
    }
    if (!visiting_) {
      visiting_ = true;
      deficit_[cur_] +=
          static_cast<std::uint64_t>(config_.quantum_pages) * weights_[cur_];
    }
    const std::uint64_t cost = std::max<std::uint32_t>(1, head_cost[cur_]);
    if (deficit_[cur_] >= cost) {
      deficit_[cur_] -= cost;
      return cur_;
    }
    visiting_ = false;
    cur_ = (cur_ + 1) % queues_;
  }
  return std::nullopt;  // unreachable: the round bound guarantees an admit
}

}  // namespace rps::ctrl
