#include "src/controller/arbiter.hpp"

#include <algorithm>
#include <cassert>

namespace rps::ctrl {

std::optional<ArbPolicy> arb_policy_from(const std::string& name) {
  for (const ArbPolicy policy : kAllArbPolicies) {
    if (name == to_string(policy)) return policy;
  }
  return std::nullopt;
}

QueueArbiter::QueueArbiter(std::uint32_t queues, ArbiterConfig config)
    : queues_(queues),
      config_(std::move(config)),
      active_(queues),
      head_cost_(queues, 0),
      deficit_(queues, 0),
      stamp_pos_(queues, 0),
      stamped_(queues, 0) {
  assert(queues_ > 0);
  weights_.resize(queues_, 1);
  for (std::uint32_t q = 0; q < queues_ && q < config_.weights.size(); ++q) {
    weights_[q] = std::max<std::uint32_t>(1, config_.weights[q]);
  }
  if (config_.quantum_pages == 0) config_.quantum_pages = 1;
}

void QueueArbiter::set_eligible(std::uint32_t queue, bool eligible,
                                std::uint32_t head_cost) {
  assert(queue < queues_);
  if (eligible) {
    head_cost_[queue] = head_cost;
    if (!active_.test(queue)) {
      // Materialize the lazy zeroing before the queue rejoins the walk:
      // from here on its deficit is live again and must not be re-zeroed
      // retroactively by an old stamp.
      if (stamped_[queue] != 0) {
        if (lazily_zeroed(queue)) deficit_[queue] = 0;
        stamped_[queue] = 0;
      }
      active_.set(queue);
    }
  } else if (active_.test(queue)) {
    active_.clear(queue);
    head_cost_[queue] = 0;
    stamp_pos_[queue] = pos_;
    stamped_[queue] = 1;
  }
}

std::optional<std::uint32_t> QueueArbiter::admit() {
  switch (config_.policy) {
    case ArbPolicy::kRoundRobin: return admit_rr();
    case ArbPolicy::kWeightedRoundRobin: return admit_wrr();
    case ArbPolicy::kWeightedDeficitRoundRobin: return admit_wdrr();
  }
  return std::nullopt;
}

std::optional<std::uint32_t> QueueArbiter::admit(
    const std::vector<std::uint8_t>& eligible,
    const std::vector<std::uint32_t>& head_cost) {
  assert(eligible.size() == queues_);
  assert(head_cost.size() == queues_ ||
         config_.policy != ArbPolicy::kWeightedDeficitRoundRobin);
  for (std::uint32_t q = 0; q < queues_; ++q) {
    set_eligible(q, eligible[q] != 0, q < head_cost.size() ? head_cost[q] : 0);
  }
  return admit();
}

std::optional<std::uint32_t> QueueArbiter::admit_rr() {
  // Full-scan equivalent: advance cyclically from cur(), admit the first
  // eligible queue and rest one past it; an empty round leaves the
  // pointer where it started.
  if (!active_.any()) return std::nullopt;
  const std::uint32_t start = cur();
  const std::uint32_t q = active_.next_cyclic(start);
  pos_ += (q + queues_ - start) % queues_ + 1;
  return q;
}

std::optional<std::uint32_t> QueueArbiter::admit_wrr() {
  // Close out an in-progress visit first: the resting queue admits again
  // only while it stays eligible with credit left; otherwise the pointer
  // steps off it (which is also the full scan's net motion — +1 with
  // visiting_ cleared — when nothing at all is eligible).
  if (visiting_) {
    if (active_.test(cur()) && credit_ > 0) {
      --credit_;
      return cur();
    }
    visiting_ = false;
    ++pos_;
    if (!active_.any()) return std::nullopt;
  } else if (!active_.any()) {
    ++pos_;
    return std::nullopt;
  }
  const std::uint32_t start = cur();
  const std::uint32_t q = active_.next_cyclic(start);
  pos_ += (q + queues_ - start) % queues_;
  visiting_ = true;
  credit_ = weights_[q] - 1;
  return q;
}

std::optional<std::uint32_t> QueueArbiter::admit_wdrr() {
  // No eligible queue: the full scan returned before touching any state.
  if (!active_.any()) return std::nullopt;
  std::uint32_t max_cost = 1;
  active_.for_each([&](std::uint32_t q) {
    max_cost = std::max(max_cost, std::max<std::uint32_t>(1, head_cost_[q]));
  });
  // Every full round grants each eligible queue quantum x weight pages, so
  // within max_cost / quantum + 1 rounds some head fits its deficit.
  const std::uint64_t rounds = 2 + max_cost / config_.quantum_pages;
  const std::uint64_t max_visits = rounds * active_.count() + 1;
  for (std::uint64_t visits = 0; visits < max_visits;) {
    const std::uint32_t q = cur();
    if (!active_.test(q)) {
      // The pointer sweeps the whole inactive run in one jump. Each
      // skipped queue counts as visited-while-ineligible: its banked
      // deficit reads as zero from now on (lazily_zeroed()).
      visiting_ = false;
      const std::uint32_t nxt = active_.next_cyclic(q);
      pos_ += (nxt + queues_ - q) % queues_;
      continue;
    }
    ++visits;
    if (!visiting_) {
      visiting_ = true;
      deficit_[q] += static_cast<std::uint64_t>(config_.quantum_pages) * weights_[q];
    }
    const std::uint64_t cost = std::max<std::uint32_t>(1, head_cost_[q]);
    if (deficit_[q] >= cost) {
      deficit_[q] -= cost;
      return q;
    }
    visiting_ = false;
    ++pos_;
  }
  assert(false && "WDRR round bound must guarantee an admission");
  return std::nullopt;
}

}  // namespace rps::ctrl
