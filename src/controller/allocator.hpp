// The Allocator interface: the policy half of the FTL split.
//
// An FTL used to own the whole write path — chip selection, page placement,
// backup work, and device timing in one virtual call. The controller layer
// splits that: the *controller* decides when an op runs and which chip it
// runs on (per-chip queues, request striping); the *allocator* decides
// where on that chip the page lands and what backup work surrounds it
// (2PO ordering, LSB quota, per-block parity, paired-page backups).
//
// pageFTL / parityFTL / rtfFTL / flexFTL / slcFTL all implement this
// interface (via ftl::FtlBase), preserving their exact placement semantics.
#pragma once

#include <cstdint>

#include "src/nand/block.hpp"
#include "src/util/result.hpp"
#include "src/util/types.hpp"

namespace rps::ctrl {

class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Place and program one host page on `chip` at/after `now`, commit the
  /// mapping, and return the program completion time. `buffer_utilization`
  /// is the host write buffer's fill level in [0, 1] (flexFTL's policy
  /// input; other allocators ignore it).
  virtual Result<Microseconds> allocate_host_page(std::uint32_t chip, Lpn lpn,
                                                  nand::PageData data, Microseconds now,
                                                  double buffer_utilization) = 0;

  /// Place and program one GC relocation copy on `chip` (same-chip
  /// relocation). `background` distinguishes idle-time GC (flexFTL uses
  /// MSB pages and raises its quota there).
  virtual Result<Microseconds> allocate_gc_page(std::uint32_t chip, Lpn lpn,
                                                nand::PageData data, Microseconds now,
                                                bool background) = 0;

  /// Plan background work for an idle window [now, deadline): background
  /// GC, quota replenishment, wear leveling — whatever the policy banks
  /// during idleness.
  virtual void on_idle_plan(Microseconds now, Microseconds deadline) = 0;
};

}  // namespace rps::ctrl
