#include "src/controller/calendar_queue.hpp"

namespace rps::ctrl {

namespace {
constexpr std::size_t kInitialBuckets = 8;  // power of two
}  // namespace

CalendarQueue::CalendarQueue(Microseconds width)
    : buckets_(kInitialBuckets),
      width_(std::max<Microseconds>(1, width)),
      mask_(kInitialBuckets - 1) {}

void CalendarQueue::grow() {
  std::vector<Microseconds> all;
  all.reserve(in_calendar_);
  for (std::vector<Microseconds>& b : buckets_) {
    all.insert(all.end(), b.begin(), b.end());
    b.clear();
  }
  buckets_.resize(buckets_.size() * 2);
  mask_ = buckets_.size() - 1;
  in_calendar_ = 0;
  for (const Microseconds t : all) place(t);
}

void CalendarQueue::migrate_overflow() {
  // Recompute the year each round: migration can grow the ring, widening
  // the window mid-loop.
  while (!overflow_.empty() &&
         overflow_.back() - min_ <
             width_ * static_cast<Microseconds>(buckets_.size())) {
    place(overflow_.back());
    overflow_.pop_back();
    maybe_grow();
  }
}

void CalendarQueue::clear() {
  for (std::vector<Microseconds>& b : buckets_) b.clear();
  overflow_.clear();
  size_ = 0;
  in_calendar_ = 0;
  min_ = 0;
}

}  // namespace rps::ctrl
