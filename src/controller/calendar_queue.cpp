#include "src/controller/calendar_queue.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

namespace rps::ctrl {

namespace {
constexpr std::size_t kInitialBuckets = 8;    // power of two
constexpr std::size_t kMaxBuckets = 1 << 16;  // ring growth ceiling
constexpr std::size_t kLoadFactor = 8;        // grow past this per-bucket load
}  // namespace

CalendarQueue::CalendarQueue(Microseconds width)
    : buckets_(kInitialBuckets),
      width_(std::max<Microseconds>(1, width)),
      mask_(kInitialBuckets - 1) {}

void CalendarQueue::place(Microseconds t) {
  std::vector<Microseconds>& b = buckets_[bucket_of(t)];
  b.insert(std::upper_bound(b.begin(), b.end(), t, std::greater<>()), t);
  ++in_calendar_;
}

void CalendarQueue::insert(Microseconds t) {
  if (size_ == 0 || t < min_) min_ = t;
  const Microseconds year = width_ * static_cast<Microseconds>(buckets_.size());
  if (size_ > 0 && t - min_ >= year) {
    // Beyond the current year: overflow tier, sorted descending.
    overflow_.insert(
        std::upper_bound(overflow_.begin(), overflow_.end(), t, std::greater<>()), t);
  } else {
    place(t);
    maybe_grow();
  }
  ++size_;
}

Microseconds CalendarQueue::pop_min() {
  assert(size_ > 0);
  const Microseconds t = min_;
  std::vector<Microseconds>& b = buckets_[bucket_of(t)];
  if (!b.empty() && b.back() == t) {
    b.pop_back();
    --in_calendar_;
  } else {
    // The minimum can only live in overflow when the calendar tier has no
    // element this small (e.g. the tier is empty).
    assert(!overflow_.empty() && overflow_.back() == t);
    overflow_.pop_back();
  }
  --size_;
  if (size_ == 0) return t;
  Microseconds cand = in_calendar_ > 0 ? calendar_min_from(t) : kTimeNever;
  if (!overflow_.empty() && overflow_.back() < cand) cand = overflow_.back();
  min_ = cand;
  migrate_overflow();
  return t;
}

Microseconds CalendarQueue::calendar_min_from(Microseconds floor) const {
  const auto n = static_cast<Microseconds>(buckets_.size());
  // The windowed scan's bucket_end arithmetic must not overflow; absurdly
  // large floors (near kTimeNever) skip straight to the exact fallback.
  if (floor >= 0 && floor < kTimeNever - 2 * width_ * n) {
    std::size_t i = bucket_of(floor);
    Microseconds bucket_end = (floor / width_ + 1) * width_;
    for (std::size_t k = 0; k < buckets_.size(); ++k) {
      const std::vector<Microseconds>& b = buckets_[i];
      // Windows are disjoint and increasing, so the first bucket whose
      // minimum falls inside its current-year window holds the global
      // minimum. A future-year resident of the same bucket is >= its
      // window end and never matches.
      if (!b.empty() && b.back() < bucket_end) return b.back();
      i = (i + 1) & mask_;
      bucket_end += width_;
    }
  }
  // Sparse year (or wrap-hostile floor): direct minimum over the
  // per-bucket minima — always exact.
  Microseconds best = kTimeNever;
  for (const std::vector<Microseconds>& b : buckets_) {
    if (!b.empty() && b.back() < best) best = b.back();
  }
  return best;
}

void CalendarQueue::maybe_grow() {
  if (in_calendar_ <= kLoadFactor * buckets_.size() || buckets_.size() >= kMaxBuckets) {
    return;
  }
  std::vector<Microseconds> all;
  all.reserve(in_calendar_);
  for (std::vector<Microseconds>& b : buckets_) {
    all.insert(all.end(), b.begin(), b.end());
    b.clear();
  }
  buckets_.resize(buckets_.size() * 2);
  mask_ = buckets_.size() - 1;
  in_calendar_ = 0;
  for (const Microseconds t : all) place(t);
}

void CalendarQueue::migrate_overflow() {
  // Recompute the year each round: migration can grow the ring, widening
  // the window mid-loop.
  while (!overflow_.empty() &&
         overflow_.back() - min_ <
             width_ * static_cast<Microseconds>(buckets_.size())) {
    place(overflow_.back());
    overflow_.pop_back();
    maybe_grow();
  }
}

void CalendarQueue::clear() {
  for (std::vector<Microseconds>& b : buckets_) b.clear();
  overflow_.clear();
  size_ = 0;
  in_calendar_ = 0;
  min_ = 0;
}

}  // namespace rps::ctrl
