// Submission-queue arbitration for the multi-queue host frontend.
//
// The frontend holds N per-tenant submission queues; at every admission
// instant it asks the arbiter which queue's head to admit next. The
// arbiter is a pure scheduling state machine — it sees only "queue q has
// an admissible head of cost c pages" and never touches the queues
// themselves — so each policy is unit-testable in isolation and the
// whole layer is deterministic by construction (no clocks, no RNG).
//
// Policies (NVMe round-robin arbitration and its weighted refinements):
//   - kRoundRobin: one command per eligible queue, cyclic. Cost-blind —
//     a tenant issuing 8-page commands gets 8x the bandwidth of a
//     1-page tenant at the same admission rate (the unfairness the QoS
//     bench demonstrates).
//   - kWeightedRoundRobin: like RR, but a queue admits up to `weight`
//     commands per visit. Still cost-blind.
//   - kWeightedDeficitRoundRobin: classic DRR (Shreedhar & Varghese)
//     with page-granular costs. Each visit grants the queue
//     quantum_pages x weight deficit; a head is admitted only while its
//     page cost fits the accumulated deficit. Cost-aware: admission
//     bandwidth, not admission count, converges to the weight ratio —
//     which is what bounds a victim tenant's latency under a large-write
//     flood.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rps::ctrl {

enum class ArbPolicy : std::uint8_t {
  kRoundRobin = 0,
  kWeightedRoundRobin = 1,
  kWeightedDeficitRoundRobin = 2,
};

inline constexpr ArbPolicy kAllArbPolicies[] = {
    ArbPolicy::kRoundRobin, ArbPolicy::kWeightedRoundRobin,
    ArbPolicy::kWeightedDeficitRoundRobin};

constexpr const char* to_string(ArbPolicy policy) {
  switch (policy) {
    case ArbPolicy::kRoundRobin: return "rr";
    case ArbPolicy::kWeightedRoundRobin: return "wrr";
    case ArbPolicy::kWeightedDeficitRoundRobin: return "wdrr";
  }
  return "?";
}

/// Parse a policy name ("rr", "wrr", "wdrr"); nullopt on anything else.
std::optional<ArbPolicy> arb_policy_from(const std::string& name);

struct ArbiterConfig {
  ArbPolicy policy = ArbPolicy::kRoundRobin;
  /// Per-queue weights (WRR: commands per visit; WDRR: deficit scale).
  /// Empty = every queue weight 1. Zero entries are clamped to 1.
  std::vector<std::uint32_t> weights;
  /// WDRR deficit grant per visit, in pages (scaled by the queue weight).
  std::uint32_t quantum_pages = 8;
};

class QueueArbiter {
 public:
  QueueArbiter(std::uint32_t queues, ArbiterConfig config);

  /// Pick the next queue to admit from and commit the admission.
  /// `eligible[q]` != 0 means queue q has a head the frontend could admit
  /// right now (arrived, under its in-flight cap); `head_cost[q]` is that
  /// head's cost in pages (ignored by the cost-blind policies). Returns
  /// nullopt when no queue is eligible. Deterministic: the same call
  /// sequence yields the same admissions.
  ///
  /// A queue that is not eligible when visited loses its stored credit /
  /// deficit (classic DRR: only backlogged queues bank service).
  std::optional<std::uint32_t> admit(const std::vector<std::uint8_t>& eligible,
                                     const std::vector<std::uint32_t>& head_cost);

  [[nodiscard]] std::uint32_t num_queues() const { return queues_; }
  [[nodiscard]] const ArbiterConfig& config() const { return config_; }
  [[nodiscard]] std::uint32_t weight(std::uint32_t queue) const {
    return weights_[queue];
  }
  /// WDRR deficit of `queue`, in pages (tests).
  [[nodiscard]] std::uint64_t deficit(std::uint32_t queue) const {
    return deficit_[queue];
  }

 private:
  std::optional<std::uint32_t> admit_rr(const std::vector<std::uint8_t>& eligible);
  std::optional<std::uint32_t> admit_wrr(const std::vector<std::uint8_t>& eligible);
  std::optional<std::uint32_t> admit_wdrr(const std::vector<std::uint8_t>& eligible,
                                          const std::vector<std::uint32_t>& head_cost);

  std::uint32_t queues_;
  ArbiterConfig config_;
  std::vector<std::uint32_t> weights_;  // resolved per-queue (>= 1)
  std::uint32_t cur_ = 0;               // queue the pointer rests on
  std::uint32_t credit_ = 0;            // WRR: admissions left this visit
  bool visiting_ = false;               // WRR/WDRR: cur_'s visit already began
  std::vector<std::uint64_t> deficit_;  // WDRR: banked pages per queue
};

}  // namespace rps::ctrl
