// Submission-queue arbitration for the multi-queue host frontend.
//
// The frontend holds N per-tenant submission queues; at every admission
// instant it asks the arbiter which queue's head to admit next. The
// arbiter is a pure scheduling state machine — it sees only "queue q has
// an admissible head of cost c pages" and never touches the queues
// themselves — so each policy is unit-testable in isolation and the
// whole layer is deterministic by construction (no clocks, no RNG).
//
// Policies (NVMe round-robin arbitration and its weighted refinements):
//   - kRoundRobin: one command per eligible queue, cyclic. Cost-blind —
//     a tenant issuing 8-page commands gets 8x the bandwidth of a
//     1-page tenant at the same admission rate (the unfairness the QoS
//     bench demonstrates).
//   - kWeightedRoundRobin: like RR, but a queue admits up to `weight`
//     commands per visit. Still cost-blind.
//   - kWeightedDeficitRoundRobin: classic DRR (Shreedhar & Varghese)
//     with page-granular costs. Each visit grants the queue
//     quantum_pages x weight deficit; a head is admitted only while its
//     page cost fits the accumulated deficit. Cost-aware: admission
//     bandwidth, not admission count, converges to the weight ratio —
//     which is what bounds a victim tenant's latency under a large-write
//     flood.
//
// Cost model: admission is O(active queues), not O(N). Eligibility lives
// inside the arbiter as a packed bit set, updated incrementally through
// set_eligible(); the round-robin walk jumps from active queue to active
// queue instead of stepping over every registered tenant, which is what
// makes thousands-of-tenants frontends affordable. The legacy
// vector-based admit() overload survives as a full-sync wrapper with the
// exact same admission sequence.
//
// WDRR's "an ineligible queue visited by the pointer loses its banked
// deficit" rule is preserved *lazily*: the walk never lands on inactive
// queues anymore, so each queue records the absolute pointer position at
// which it went ineligible, and its deficit reads as zero once the
// pointer has provably swept past it (see lazily_zeroed()). Admission
// sequences and the deficit() accessor are bit-identical to the
// full-scan implementation — a property test drives both against random
// schedules to pin that.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/util/index_bitset.hpp"

namespace rps::ctrl {

enum class ArbPolicy : std::uint8_t {
  kRoundRobin = 0,
  kWeightedRoundRobin = 1,
  kWeightedDeficitRoundRobin = 2,
};

inline constexpr ArbPolicy kAllArbPolicies[] = {
    ArbPolicy::kRoundRobin, ArbPolicy::kWeightedRoundRobin,
    ArbPolicy::kWeightedDeficitRoundRobin};

constexpr const char* to_string(ArbPolicy policy) {
  switch (policy) {
    case ArbPolicy::kRoundRobin: return "rr";
    case ArbPolicy::kWeightedRoundRobin: return "wrr";
    case ArbPolicy::kWeightedDeficitRoundRobin: return "wdrr";
  }
  return "?";
}

/// Parse a policy name ("rr", "wrr", "wdrr"); nullopt on anything else.
std::optional<ArbPolicy> arb_policy_from(const std::string& name);

struct ArbiterConfig {
  ArbPolicy policy = ArbPolicy::kRoundRobin;
  /// Per-queue weights (WRR: commands per visit; WDRR: deficit scale).
  /// Empty = every queue weight 1. Zero entries are clamped to 1.
  std::vector<std::uint32_t> weights;
  /// WDRR deficit grant per visit, in pages (scaled by the queue weight).
  std::uint32_t quantum_pages = 8;
};

class QueueArbiter {
 public:
  QueueArbiter(std::uint32_t queues, ArbiterConfig config);

  /// Incremental eligibility: queue q has (or no longer has) a head the
  /// frontend could admit right now, costing `head_cost` pages. Calls
  /// with unchanged eligibility are cheap no-ops (cost updates aside), so
  /// the frontend may re-report freely. This is the O(active) interface —
  /// push deltas here, then call the argument-free admit().
  void set_eligible(std::uint32_t queue, bool eligible, std::uint32_t head_cost = 0);

  /// Pick the next queue to admit from and commit the admission, using
  /// the eligibility pushed through set_eligible(). Returns nullopt when
  /// no queue is eligible. Deterministic: the same call sequence yields
  /// the same admissions. Cost: O(active queues) per call.
  ///
  /// A queue that is not eligible when the pointer sweeps it loses its
  /// stored credit / deficit (classic DRR: only backlogged queues bank
  /// service).
  std::optional<std::uint32_t> admit();

  /// Full-sync wrapper: `eligible[q]` != 0 means queue q has an
  /// admissible head of `head_cost[q]` pages. Reconciles every queue
  /// through set_eligible(), then admits — the admission sequence is
  /// identical to driving the incremental interface directly.
  std::optional<std::uint32_t> admit(const std::vector<std::uint8_t>& eligible,
                                     const std::vector<std::uint32_t>& head_cost);

  [[nodiscard]] std::uint32_t num_queues() const { return queues_; }
  [[nodiscard]] const ArbiterConfig& config() const { return config_; }
  [[nodiscard]] std::uint32_t weight(std::uint32_t queue) const {
    return weights_[queue];
  }
  /// WDRR deficit of `queue`, in pages (tests). Reads through the lazy
  /// zeroing: an ineligible queue the pointer swept past reports zero.
  [[nodiscard]] std::uint64_t deficit(std::uint32_t queue) const {
    return stamped_[queue] != 0 && lazily_zeroed(queue) ? 0 : deficit_[queue];
  }

 private:
  std::optional<std::uint32_t> admit_rr();
  std::optional<std::uint32_t> admit_wrr();
  std::optional<std::uint32_t> admit_wdrr();

  /// True when the pointer has swept position `queue` (mod N) since the
  /// queue went ineligible. Walks examine the contiguous absolute range
  /// [walk start, walk end]; successive walks chain, so every absolute
  /// position in [stamp, pos_) has been examined by a walk that started
  /// at or after the stamp — except the stamp position itself, which is
  /// only re-examined once the pointer moves off it (pos_ > pass).
  [[nodiscard]] bool lazily_zeroed(std::uint32_t queue) const {
    const std::uint64_t stamp = stamp_pos_[queue];
    const std::uint64_t pass =
        stamp + (queue + queues_ - static_cast<std::uint32_t>(stamp % queues_)) % queues_;
    return pos_ > pass;
  }

  [[nodiscard]] std::uint32_t cur() const {
    return static_cast<std::uint32_t>(pos_ % queues_);
  }

  std::uint32_t queues_;
  ArbiterConfig config_;
  std::vector<std::uint32_t> weights_;  // resolved per-queue (>= 1)
  util::IndexBitSet active_;            // queues with an admissible head
  std::vector<std::uint32_t> head_cost_;
  /// Absolute pointer position: cur() == pos_ % N is the queue the
  /// pointer rests on. Monotone — the lazy-zeroing stamps compare
  /// against it, so it never wraps back.
  std::uint64_t pos_ = 0;
  std::uint32_t credit_ = 0;            // WRR: admissions left this visit
  bool visiting_ = false;               // WRR/WDRR: cur()'s visit already began
  std::vector<std::uint64_t> deficit_;  // WDRR: banked pages per queue
  std::vector<std::uint64_t> stamp_pos_;  // pos_ when the queue went ineligible
  std::vector<std::uint8_t> stamped_;     // stamp_pos_ entry is live
};

}  // namespace rps::ctrl
