#include "src/controller/nand_op.hpp"

namespace rps::ctrl {

std::vector<NandOp> split_request(const HostCommand& cmd,
                                  std::uint32_t planes_per_chip) {
  std::vector<NandOp> ops;
  ops.reserve(cmd.page_count);
  const bool group_planes =
      planes_per_chip > 1 && cmd.kind == CmdKind::kWrite && !cmd.ordered;
  for (std::uint32_t j = 0; j < cmd.page_count; ++j) {
    NandOp op;
    op.kind = cmd.kind == CmdKind::kRead ? OpKind::kHostRead : OpKind::kHostWrite;
    op.lpn = cmd.lpn + j;
    if (cmd.ordered && j > 0) op.deps.push_back(j - 1);
    if (group_planes) op.plane_group = j / planes_per_chip;
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace rps::ctrl
