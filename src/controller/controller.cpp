#include "src/controller/controller.hpp"

#include <algorithm>
#include <cassert>

#include "src/obs/sampler.hpp"
#include "src/obs/trace.hpp"

namespace rps::ctrl {

namespace {
/// Initial slot-ring capacity; doubles as the live window outgrows it.
constexpr std::size_t kInitialSlots = 64;
}  // namespace

Controller::Controller(ftl::FtlBase& ftl, ControllerConfig config)
    : ftl_(ftl),
      config_(config),
      units_(ftl.device().geometry().num_units()),
      planes_(ftl.device().geometry().planes_per_chip),
      slot_state_(kInitialSlots, SlotState::kEmpty),
      slot_remaining_(kInitialSlots, 0),
      slot_result_(kInitialSlots),
      slot_cmd_(kInitialSlots),
      slot_done_(kInitialSlots, nullptr),
      slot_group_die_(kInitialSlots),
      slot_mask_(kInitialSlots - 1),
      read_queues_(ftl.device().geometry().num_units()) {}

Controller::~Controller() {
  // Slots still live at teardown hold done slabs; hand them back so the
  // pool's destructor frees everything exactly once.
  for (CommandId id = base_id_; id < next_id_; ++id) {
    release_done(static_cast<std::size_t>(id) & slot_mask_);
  }
}

void Controller::grow_slots() {
  const std::size_t cap = slot_state_.size() * 2;
  const std::size_t mask = cap - 1;
  std::vector<SlotState> state(cap, SlotState::kEmpty);
  std::vector<std::uint32_t> remaining(cap, 0);
  std::vector<CommandResult> result(cap);
  std::vector<HostCommand> cmd(cap);
  std::vector<std::uint8_t*> done(cap, nullptr);
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> group_die(cap);
  for (CommandId id = base_id_; id < next_id_; ++id) {
    const std::size_t from = static_cast<std::size_t>(id) & slot_mask_;
    const std::size_t to = static_cast<std::size_t>(id) & mask;
    state[to] = slot_state_[from];
    remaining[to] = slot_remaining_[from];
    result[to] = slot_result_[from];
    cmd[to] = slot_cmd_[from];
    done[to] = slot_done_[from];
    group_die[to] = std::move(slot_group_die_[from]);
  }
  slot_state_ = std::move(state);
  slot_remaining_ = std::move(remaining);
  slot_result_ = std::move(result);
  slot_cmd_ = std::move(cmd);
  slot_done_ = std::move(done);
  slot_group_die_ = std::move(group_die);
  slot_mask_ = mask;
}

void Controller::reserve_inflight(std::size_t commands, std::size_t max_pages) {
  while (slot_state_.size() < commands) grow_slots();
  for (std::size_t cap = 1;; cap <<= 1) {
    // Worst case every outstanding command lands in one size class.
    done_pool_.prefill(cap, commands);
    if (cap >= max_pages) break;
  }
  const std::size_t max_ops = commands * max_pages;
  write_queue_.reserve(max_ops);
  for (RingBuffer<QueuedOp>& q : read_queues_) q.reserve(max_ops);
  newly_finished_.reserve(commands);
}

CommandId Controller::submit(const HostCommand& cmd) {
  if (static_cast<std::size_t>(next_id_ - base_id_) >= slot_state_.size()) grow_slots();
  const CommandId id = next_id_++;
  const std::size_t si = static_cast<std::size_t>(id) & slot_mask_;
  assert(slot_state_[si] == SlotState::kEmpty);
  assert(slot_done_[si] == nullptr);
  slot_state_[si] = SlotState::kPending;
  slot_cmd_[si] = cmd;
  slot_group_die_[si].clear();
  const std::uint32_t pages = cmd.page_count;
  slot_remaining_[si] = pages;
  CommandResult& result = slot_result_[si];
  result = CommandResult{};
  result.id = id;
  result.issue = cmd.issue;
  result.first_complete = kTimeNever;
  result.last_complete = cmd.issue;
  result.pages = pages;
  live_ops_ += pages;

  if (pages == 0) {
    // Degenerate zero-page command: finished on arrival (collected at the
    // next drain, like any other completion).
    result.first_complete = cmd.issue;
    newly_finished_.push_back(id);
    return id;
  }
  std::uint8_t* done = done_pool_.acquire(pages);
  std::fill_n(done, pages, std::uint8_t{0});
  slot_done_[si] = done;
  // Seed only dependency-free ops: on an ordered command op 0 alone (each
  // retirement enqueues its successor), otherwise every op. Enqueueing an
  // op can retire it on the spot (unmapped read), and that retirement
  // already enqueues the dependent it unblocks.
  if (cmd.ordered) {
    enqueue_ready(id, 0, cmd.issue);
  } else {
    for (std::uint32_t j = 0; j < pages; ++j) enqueue_ready(id, j, cmd.issue);
  }
  events_.schedule(cmd.issue);
  return id;
}

void Controller::enqueue_ready(CommandId id, std::uint32_t index, Microseconds ready) {
  const std::size_t si = slot_of(id);
  const HostCommand& cmd = slot_cmd_[si];
  if (cmd.kind == CmdKind::kWrite) {
    write_queue_.push_back(QueuedOp{ready, id, index});
    return;
  }
  // Reads are bound to the chip their mapping points at. Unmapped pages
  // are zero-fill — no device op, retire at readiness (ftl_.read keeps
  // the unmapped-read stats accounting).
  const Lpn lpn = op_lpn(cmd, index);
  const Result<nand::PageAddress> addr = ftl_.mapping().lookup(lpn);
  if (addr.is_ok()) {
    read_queues_[addr.value().chip].push_back(QueuedOp{ready, id, index});
    ++queued_reads_;
    return;
  }
  const Result<ftl::HostOp> op = ftl_.read(lpn, ready);
  if (!op.is_ok()) {
    // Out-of-range LPN: surfaces as a read error, like the legacy loop.
    ++slot_result_[si].read_errors;
    retire(id, index, ready, /*chip=*/0, ready, ready, /*ok=*/true);
    return;
  }
  retire(id, index, ready, /*chip=*/0, ready, op.value().complete, /*ok=*/true);
}

void Controller::dispatch_at(Microseconds t) {
  // Wake-up coalescing: every blocked head computes when it could next
  // dispatch, but only the *earliest* such time needs an event — the
  // fixpoint rescans every queue at the next visited instant, so the later
  // wake-ups are re-derived (from fresher chip timelines) when it fires.
  // Dispatch outcomes are identical either way; only the set of visited
  // instants shrinks. A sampler observes visited instants (one tick per
  // drained time), so with one attached every wake-up is scheduled
  // individually, exactly as before.
  const bool coalesce = sampler_ == nullptr;
  Microseconds next_wake = kTimeNever;
  const auto wake = [&](Microseconds w) {
    if (coalesce) {
      next_wake = std::min(next_wake, w);
    } else {
      events_.schedule(w);
    }
  };
  bool progress = true;
  while (progress) {
    progress = false;
    // Write stream: FIFO heads bind to idle chips until none is idle (or
    // the head is not yet ready). Readiness lives in the queue entry —
    // the scan touches no slot state.
    while (!write_queue_.empty()) {
      const QueuedOp qop = write_queue_.front();
      if (qop.ready > t) {
        wake(qop.ready);
        break;
      }
      Microseconds blocked_until = kTimeNever;
      if (!dispatch_write(qop, t, blocked_until)) {
        wake(blocked_until);  // no idle chip
        break;
      }
      write_queue_.pop_front();
      progress = true;
    }
    // Per-chip read queues: each head dispatches once its chip is free.
    // Skipped outright when nothing is queued anywhere.
    if (queued_reads_ != 0) {
      for (std::uint32_t chip = 0; chip < read_queues_.size(); ++chip) {
        RingBuffer<QueuedOp>& queue = read_queues_[chip];
        while (!queue.empty()) {
          const QueuedOp qop = queue.front();
          if (qop.ready > t) {
            wake(qop.ready);
            break;
          }
          const Microseconds busy = ftl_.device().chip(chip).busy_until();
          if (busy > t) {
            wake(busy);
            break;
          }
          queue.pop_front();
          --queued_reads_;
          dispatch_read(qop, chip, t);
          progress = true;
        }
      }
    }
  }
  if (next_wake != kTimeNever) events_.schedule(next_wake);
}

bool Controller::dispatch_write(const QueuedOp& qop, Microseconds t,
                                Microseconds& blocked_until) {
  const std::size_t si = slot_of(qop.cmd);
  const HostCommand& cmd = slot_cmd_[si];
  const std::uint32_t units = units_;
  const std::uint32_t planes = planes_;
  std::uint32_t chip = 0;
  if (config_.stripe_writes) {
    eligible_.assign(units, 0);
    bool any_idle = false;
    Microseconds next_free = kTimeNever;
    for (std::uint32_t c = 0; c < units; ++c) {
      const Microseconds busy = ftl_.device().chip(c).busy_until();
      if (busy <= t) {
        eligible_[c] = 1;
        any_idle = true;
      } else {
        next_free = std::min(next_free, busy);
      }
    }
    if (!any_idle) {
      blocked_until = next_free;
      return false;
    }
    // Plane affinity: a later member of a plane group prefers an idle
    // sibling plane of the die its group already landed on, so the
    // group's programs overlap in one aligned cell window. When no
    // sibling is idle the op spills to the global idle set (throughput
    // beats pairing). Inert with one plane per die.
    const std::uint32_t group = op_plane_group(cmd, qop.index);
    std::int64_t anchor_die = -1;
    if (group != kNoPlaneGroup) {
      for (const auto& [g, die] : slot_group_die_[si]) {
        if (g == group) {
          anchor_die = die;
          break;
        }
      }
      if (anchor_die >= 0) {
        bool sibling_idle = false;
        for (std::uint32_t p = 0; p < planes; ++p) {
          if (eligible_[static_cast<std::uint32_t>(anchor_die) * planes + p] != 0) {
            sibling_idle = true;
            break;
          }
        }
        if (sibling_idle) {
          for (std::uint32_t u = 0; u < units; ++u) {
            if (u / planes != static_cast<std::uint32_t>(anchor_die)) eligible_[u] = 0;
          }
        }
      }
    }
    chip = ftl_.pick_chip_among(eligible_);
    if (group != kNoPlaneGroup && anchor_die < 0) {
      slot_group_die_[si].emplace_back(group, chip / planes);
    }
  } else {
    chip = ftl_.pick_unconstrained_chip();
  }
  const Result<ftl::HostOp> op = ftl_.write_on(chip, op_lpn(cmd, qop.index), t,
                                               cmd.buffer_utilization, cmd.stream);
  if (!op.is_ok()) {
    // Destination exhausted (kNoFreeBlock) or out of range: the command
    // fails, but its bookkeeping still retires so drain() terminates.
    retire(qop.cmd, qop.index, qop.ready, chip, t, t, /*ok=*/false);
    return true;
  }
  retire(qop.cmd, qop.index, qop.ready, chip, t, op.value().complete, /*ok=*/true);
  return true;
}

void Controller::dispatch_read(const QueuedOp& qop, std::uint32_t chip, Microseconds t) {
  const std::size_t si = slot_of(qop.cmd);
  const Result<ftl::HostOp> op = ftl_.read(op_lpn(slot_cmd_[si], qop.index), t);
  if (!op.is_ok()) {
    // ECC-uncorrectable: data destroyed. The op retires (the command
    // completes, as the host sees an error response) at dispatch time.
    ++slot_result_[si].read_errors;
    retire(qop.cmd, qop.index, qop.ready, chip, t, t, /*ok=*/true);
    return;
  }
  retire(qop.cmd, qop.index, qop.ready, chip, t, op.value().complete, /*ok=*/true);
}

void Controller::retire(CommandId id, std::uint32_t index, Microseconds ready,
                        std::uint32_t chip, Microseconds start,
                        Microseconds complete, bool ok) {
  const std::size_t si = slot_of(id);
  assert(slot_done_[si] != nullptr);
  assert(slot_done_[si][index] == 0);
  slot_done_[si][index] = 1;
  assert(slot_remaining_[si] > 0);
  if (--slot_remaining_[si] == 0) newly_finished_.push_back(id);
  assert(live_ops_ > 0);
  --live_ops_;
  CommandResult& result = slot_result_[si];
  if (!ok) result.ok = false;
  result.first_complete = std::min(result.first_complete, complete);
  result.last_complete = std::max(result.last_complete, complete);
  const HostCommand& cmd = slot_cmd_[si];
  const OpKind kind =
      cmd.kind == CmdKind::kRead ? OpKind::kHostRead : OpKind::kHostWrite;
  if (config_.keep_op_log) {
    op_log_.push_back(OpRecord{id, index, kind, op_lpn(cmd, index), chip,
                               cmd.issue, ready, start, complete, ok});
  }
  if (trace_ != nullptr) {
    // One duration event per device op, on the chip's lane. wait_us is the
    // scheduling delay: dependency-ready to dispatch.
    trace_->record(kind == OpKind::kHostWrite ? obs::EventKind::kNandWrite
                                              : obs::EventKind::kNandRead,
                   chip + 1, start, complete - start, op_lpn(cmd, index), id,
                   static_cast<std::uint64_t>(std::max<Microseconds>(0, start - ready)));
  }
  // Resolve the one dependent an ordered chain can have: op index+1 waits
  // on this op alone, so it becomes ready here — O(1), no batch sweep.
  if (cmd.ordered && index + 1 < cmd.page_count) {
    const Microseconds dep_ready = std::max(cmd.issue, complete);
    enqueue_ready(id, index + 1, dep_ready);
    events_.schedule(dep_ready);
  }
}

void Controller::collect_finished() {
  for (const CommandId id : newly_finished_) {
    const std::size_t si = slot_of(id);
    assert(slot_state_[si] == SlotState::kPending && slot_remaining_[si] == 0);
    if (slot_result_[si].first_complete == kTimeNever) {
      slot_result_[si].first_complete = slot_result_[si].issue;
    }
    slot_state_[si] = SlotState::kFinished;
    release_done(si);  // only the result lives on
    ++finished_count_;
  }
  newly_finished_.clear();
}

void Controller::drain(Microseconds until) {
  while (!events_.empty() && events_.peek() <= until) {
    const Microseconds t = events_.pop();
    // Coalesce duplicate wake-ups at the same instant.
    while (!events_.empty() && events_.peek() <= t) events_.pop();
    dispatch_at(t);
    events_.end_instant();
    collect_finished();
    if (sampler_ != nullptr) sampler_->tick(t);
  }
  collect_finished();
  // A full drain must leave nothing in flight: every queued op either had
  // its wake-up scheduled or retired. Anything else is a scheduler bug.
  assert(until != kTimeNever || live_ops_ == 0);
}

CommandResult Controller::execute(const HostCommand& cmd) {
  const CommandId id = submit(cmd);
  drain();
  return take_result(id);
}

std::vector<CommandResult> Controller::take_all_results() {
  std::vector<CommandResult> results;
  take_all_results_into(results);
  return results;
}

void Controller::take_all_results_into(std::vector<CommandResult>& out) {
  out.clear();
  out.reserve(finished_count_);
  // Id order is result order, so the records come out sorted for free.
  for (CommandId id = base_id_; id < next_id_; ++id) {
    const std::size_t si = static_cast<std::size_t>(id) & slot_mask_;
    if (slot_state_[si] != SlotState::kFinished) continue;
    out.push_back(slot_result_[si]);
    slot_state_[si] = SlotState::kEmpty;
  }
  finished_count_ = 0;
  pop_empty_front();
}

PowerLossOutcome Controller::power_loss(Microseconds t) {
  drain(t);
  PowerLossOutcome outcome;
  outcome.cancelled_write_ops = write_queue_.size();
  write_queue_.clear();
  for (RingBuffer<QueuedOp>& queue : read_queues_) {
    outcome.cancelled_read_ops += queue.size();
    queue.clear();
  }
  queued_reads_ = 0;
  // Every command still pending lost at least one op (collect_finished
  // already handled fully retired ones): abort it. Its record survives in
  // the finished state so callers can count what was in flight.
  for (CommandId id = base_id_; id < next_id_; ++id) {
    const std::size_t si = static_cast<std::size_t>(id) & slot_mask_;
    if (slot_state_[si] != SlotState::kPending) continue;
    assert(slot_remaining_[si] > 0);
    assert(live_ops_ >= slot_remaining_[si]);
    live_ops_ -= slot_remaining_[si];
    CommandResult& result = slot_result_[si];
    result.ok = false;
    result.aborted = true;
    if (result.first_complete == kTimeNever) {
      result.first_complete = result.issue;
    }
    slot_state_[si] = SlotState::kFinished;
    release_done(si);
    slot_remaining_[si] = 0;
    ++finished_count_;
    ++outcome.aborted_commands;
  }
  events_.clear();
  assert(live_ops_ == 0);
  outcome.victims = ftl_.device().inject_power_loss(t);
  return outcome;
}

CommandResult Controller::take_result(CommandId id) {
  const std::size_t si = slot_of(id);
  assert(slot_state_[si] == SlotState::kFinished);
  const CommandResult result = slot_result_[si];
  slot_state_[si] = SlotState::kEmpty;
  assert(finished_count_ > 0);
  --finished_count_;
  pop_empty_front();
  return result;
}

void Controller::on_idle(Microseconds now, Microseconds deadline) {
  ftl_.on_idle(now, deadline);
}

}  // namespace rps::ctrl
