#include "src/controller/controller.hpp"

#include <algorithm>
#include <cassert>

#include "src/obs/sampler.hpp"
#include "src/obs/trace.hpp"

namespace rps::ctrl {

Controller::Controller(ftl::FtlBase& ftl, ControllerConfig config)
    : ftl_(ftl),
      config_(config),
      read_queues_(ftl.device().geometry().num_units()) {}

CommandId Controller::submit(const HostCommand& cmd) {
  const CommandId id = next_id_++;
  slots_.emplace_back();
  Slot& stored = slots_.back();
  stored.state = Slot::State::kPending;
  stored.cmd = cmd;
  std::vector<NandOp> ops =
      split_request(cmd, ftl_.device().geometry().planes_per_chip);
  stored.ops.reserve(ops.size());
  for (NandOp& op : ops) {
    OpState state;
    state.unresolved = static_cast<std::uint32_t>(op.deps.size());
    state.ready = cmd.issue;
    state.op = std::move(op);
    stored.ops.push_back(std::move(state));
  }
  stored.remaining = static_cast<std::uint32_t>(stored.ops.size());
  stored.result.id = id;
  stored.result.issue = cmd.issue;
  stored.result.first_complete = kTimeNever;
  stored.result.last_complete = cmd.issue;
  stored.result.pages = stored.remaining;
  live_ops_ += stored.remaining;

  if (stored.remaining == 0) {
    // Degenerate zero-page command: finished on arrival (collected at the
    // next drain, like any other completion).
    stored.result.first_complete = cmd.issue;
    newly_finished_.push_back(id);
    return id;
  }
  for (std::uint32_t i = 0; i < stored.ops.size(); ++i) {
    // Seed only ops that arrived dependency-free: enqueueing an op can
    // retire it on the spot (unmapped read), and that retirement already
    // enqueues any dependent it unblocks — rechecking `unresolved` here
    // would enqueue such a dependent a second time.
    if (stored.ops[i].op.deps.empty()) enqueue_ready(stored, id, i);
  }
  events_.schedule(cmd.issue);
  return id;
}

void Controller::enqueue_ready(Slot& pending, CommandId id, std::uint32_t index) {
  OpState& state = pending.ops[index];
  if (state.op.kind == OpKind::kHostWrite) {
    write_queue_.push_back(OpRef{id, index});
    return;
  }
  // Reads are bound to the chip their mapping points at. Unmapped pages
  // are zero-fill — no device op, retire at readiness (ftl_.read keeps
  // the unmapped-read stats accounting).
  const Result<nand::PageAddress> addr = ftl_.mapping().lookup(state.op.lpn);
  if (addr.is_ok()) {
    read_queues_[addr.value().chip].push_back(OpRef{id, index});
    return;
  }
  const Result<ftl::HostOp> op = ftl_.read(state.op.lpn, state.ready);
  if (!op.is_ok()) {
    // Out-of-range LPN: surfaces as a read error, like the legacy loop.
    ++pending.result.read_errors;
    retire(OpRef{id, index}, /*chip=*/0, state.ready, state.ready, /*ok=*/true);
    return;
  }
  retire(OpRef{id, index}, /*chip=*/0, state.ready, op.value().complete, /*ok=*/true);
}

void Controller::dispatch_at(Microseconds t) {
  bool progress = true;
  while (progress) {
    progress = false;
    // Write stream: FIFO heads bind to idle chips until none is idle (or
    // the head is not yet ready).
    while (!write_queue_.empty()) {
      const OpRef ref = write_queue_.front();
      const OpState& state = slot(ref.cmd).ops[ref.index];
      if (state.ready > t) {
        events_.schedule(state.ready);
        break;
      }
      if (!dispatch_write(ref, t)) break;  // no idle chip; wake-up scheduled
      write_queue_.pop_front();
      progress = true;
    }
    // Per-chip read queues: each head dispatches once its chip is free.
    for (std::uint32_t chip = 0; chip < read_queues_.size(); ++chip) {
      std::deque<OpRef>& queue = read_queues_[chip];
      while (!queue.empty()) {
        const OpRef ref = queue.front();
        const OpState& state = slot(ref.cmd).ops[ref.index];
        if (state.ready > t) {
          events_.schedule(state.ready);
          break;
        }
        const Microseconds busy = ftl_.device().chip(chip).busy_until();
        if (busy > t) {
          events_.schedule(busy);
          break;
        }
        queue.pop_front();
        dispatch_read(ref, chip, t);
        progress = true;
      }
    }
  }
}

bool Controller::dispatch_write(const OpRef& ref, Microseconds t) {
  Slot& pending = slot(ref.cmd);
  OpState& state = pending.ops[ref.index];
  const std::uint32_t units = ftl_.device().geometry().num_units();
  const std::uint32_t planes = ftl_.device().geometry().planes_per_chip;
  std::uint32_t chip = 0;
  if (config_.stripe_writes) {
    eligible_.assign(units, 0);
    bool any_idle = false;
    Microseconds next_free = kTimeNever;
    for (std::uint32_t c = 0; c < units; ++c) {
      const Microseconds busy = ftl_.device().chip(c).busy_until();
      if (busy <= t) {
        eligible_[c] = 1;
        any_idle = true;
      } else {
        next_free = std::min(next_free, busy);
      }
    }
    if (!any_idle) {
      events_.schedule(next_free);
      return false;
    }
    // Plane affinity: a later member of a plane group prefers an idle
    // sibling plane of the die its group already landed on, so the
    // group's programs overlap in one aligned cell window. When no
    // sibling is idle the op spills to the global idle set (throughput
    // beats pairing). Inert with one plane per die.
    std::int64_t anchor_die = -1;
    if (planes > 1 && state.op.plane_group != kNoPlaneGroup) {
      for (const auto& [group, die] : pending.group_die) {
        if (group == state.op.plane_group) {
          anchor_die = die;
          break;
        }
      }
      if (anchor_die >= 0) {
        bool sibling_idle = false;
        for (std::uint32_t p = 0; p < planes; ++p) {
          if (eligible_[static_cast<std::uint32_t>(anchor_die) * planes + p] != 0) {
            sibling_idle = true;
            break;
          }
        }
        if (sibling_idle) {
          for (std::uint32_t u = 0; u < units; ++u) {
            if (u / planes != static_cast<std::uint32_t>(anchor_die)) eligible_[u] = 0;
          }
        }
      }
    }
    chip = ftl_.pick_chip_among(eligible_);
    if (planes > 1 && state.op.plane_group != kNoPlaneGroup && anchor_die < 0) {
      pending.group_die.emplace_back(state.op.plane_group, chip / planes);
    }
  } else {
    chip = ftl_.pick_unconstrained_chip();
  }
  const Result<ftl::HostOp> op = ftl_.write_on(
      chip, state.op.lpn, t, pending.cmd.buffer_utilization, pending.cmd.stream);
  if (!op.is_ok()) {
    // Destination exhausted (kNoFreeBlock) or out of range: the command
    // fails, but its bookkeeping still retires so drain() terminates.
    retire(ref, chip, t, t, /*ok=*/false);
    return true;
  }
  retire(ref, chip, t, op.value().complete, /*ok=*/true);
  return true;
}

void Controller::dispatch_read(const OpRef& ref, std::uint32_t chip, Microseconds t) {
  Slot& pending = slot(ref.cmd);
  OpState& state = pending.ops[ref.index];
  const Result<ftl::HostOp> op = ftl_.read(state.op.lpn, t);
  if (!op.is_ok()) {
    // ECC-uncorrectable: data destroyed. The op retires (the command
    // completes, as the host sees an error response) at dispatch time.
    ++pending.result.read_errors;
    retire(ref, chip, t, t, /*ok=*/true);
    return;
  }
  retire(ref, chip, t, op.value().complete, /*ok=*/true);
}

void Controller::retire(const OpRef& ref, std::uint32_t chip, Microseconds start,
                        Microseconds complete, bool ok) {
  Slot& pending = slot(ref.cmd);
  OpState& state = pending.ops[ref.index];
  assert(!state.done);
  state.done = true;
  state.complete = complete;
  assert(pending.remaining > 0);
  --pending.remaining;
  if (pending.remaining == 0) newly_finished_.push_back(ref.cmd);
  assert(live_ops_ > 0);
  --live_ops_;
  if (!ok) pending.result.ok = false;
  pending.result.first_complete = std::min(pending.result.first_complete, complete);
  pending.result.last_complete = std::max(pending.result.last_complete, complete);
  if (config_.keep_op_log) {
    op_log_.push_back(OpRecord{ref.cmd, ref.index, state.op.kind, state.op.lpn, chip,
                               pending.cmd.issue, state.ready, start, complete, ok});
  }
  if (trace_ != nullptr) {
    // One duration event per device op, on the chip's lane. wait_us is the
    // scheduling delay: dependency-ready to dispatch.
    trace_->record(state.op.kind == OpKind::kHostWrite ? obs::EventKind::kNandWrite
                                                       : obs::EventKind::kNandRead,
                   chip + 1, start, complete - start, state.op.lpn, ref.cmd,
                   static_cast<std::uint64_t>(std::max<Microseconds>(0, start - state.ready)));
  }
  // Resolve dependents within the batch (op batches are request-sized, so
  // the linear sweep is cheap).
  for (std::uint32_t j = 0; j < pending.ops.size(); ++j) {
    OpState& other = pending.ops[j];
    if (other.done || other.unresolved == 0) continue;
    for (const std::uint32_t dep : other.op.deps) {
      if (dep != ref.index) continue;
      other.ready = std::max(other.ready, complete);
      if (--other.unresolved == 0) {
        enqueue_ready(pending, ref.cmd, j);
        events_.schedule(other.ready);
      }
      break;
    }
  }
}

void Controller::collect_finished() {
  for (const CommandId id : newly_finished_) {
    Slot& s = slot(id);
    assert(s.state == Slot::State::kPending && s.remaining == 0);
    if (s.result.first_complete == kTimeNever) {
      s.result.first_complete = s.result.issue;
    }
    s.state = Slot::State::kFinished;
    s.ops = {};  // release op storage; only the result lives on
    ++finished_count_;
  }
  newly_finished_.clear();
}

void Controller::drain(Microseconds until) {
  while (!events_.empty() && events_.peek() <= until) {
    const Microseconds t = events_.pop();
    // Coalesce duplicate wake-ups at the same instant.
    while (!events_.empty() && events_.peek() <= t) events_.pop();
    dispatch_at(t);
    events_.end_instant();
    collect_finished();
    if (sampler_ != nullptr) sampler_->tick(t);
  }
  collect_finished();
  // A full drain must leave nothing in flight: every queued op either had
  // its wake-up scheduled or retired. Anything else is a scheduler bug.
  assert(until != kTimeNever || live_ops_ == 0);
}

CommandResult Controller::execute(const HostCommand& cmd) {
  const CommandId id = submit(cmd);
  drain();
  return take_result(id);
}

std::vector<CommandResult> Controller::take_all_results() {
  // Slot order is id order, so the results come out sorted for free.
  std::vector<CommandResult> results;
  results.reserve(finished_count_);
  for (Slot& s : slots_) {
    if (s.state != Slot::State::kFinished) continue;
    results.push_back(s.result);
    s.state = Slot::State::kEmpty;
  }
  finished_count_ = 0;
  pop_empty_front();
  return results;
}

PowerLossOutcome Controller::power_loss(Microseconds t) {
  drain(t);
  PowerLossOutcome outcome;
  outcome.cancelled_write_ops = write_queue_.size();
  write_queue_.clear();
  for (std::deque<OpRef>& queue : read_queues_) {
    outcome.cancelled_read_ops += queue.size();
    queue.clear();
  }
  // Every command still pending lost at least one op (collect_finished
  // already handled fully retired ones): abort it. Its record survives in
  // the finished state so callers can count what was in flight.
  for (Slot& pending : slots_) {
    if (pending.state != Slot::State::kPending) continue;
    assert(pending.remaining > 0);
    assert(live_ops_ >= pending.remaining);
    live_ops_ -= pending.remaining;
    pending.result.ok = false;
    pending.result.aborted = true;
    if (pending.result.first_complete == kTimeNever) {
      pending.result.first_complete = pending.result.issue;
    }
    pending.state = Slot::State::kFinished;
    pending.ops = {};
    pending.remaining = 0;
    ++finished_count_;
    ++outcome.aborted_commands;
  }
  events_.clear();
  assert(live_ops_ == 0);
  outcome.victims = ftl_.device().inject_power_loss(t);
  return outcome;
}

CommandResult Controller::take_result(CommandId id) {
  Slot& s = slot(id);
  assert(s.state == Slot::State::kFinished);
  const CommandResult result = s.result;
  s.state = Slot::State::kEmpty;
  assert(finished_count_ > 0);
  --finished_count_;
  pop_empty_front();
  return result;
}

void Controller::on_idle(Microseconds now, Microseconds deadline) {
  ftl_.on_idle(now, deadline);
}

}  // namespace rps::ctrl
