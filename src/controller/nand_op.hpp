// Command decomposition: a whole host request (`HostCommand`, mirroring
// workload::IoRequest's page_count span) splits into per-page `NandOp`s
// with explicit dependencies. The controller schedules the ops; the
// dependency edges express ordering the host demands (journal-style
// `ordered` commands chain page j on page j-1), while independent pages
// are free to stripe across chips.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/types.hpp"

namespace rps::ctrl {

using CommandId = std::uint64_t;

enum class CmdKind : std::uint8_t { kRead = 0, kWrite = 1 };
enum class OpKind : std::uint8_t { kHostRead = 0, kHostWrite = 1 };

/// One whole host request, as the simulator issues it.
struct HostCommand {
  CmdKind kind = CmdKind::kWrite;
  Lpn lpn = 0;                    // first logical page
  std::uint32_t page_count = 1;
  Microseconds issue = 0;         // earliest time any page op may start
  /// Host write-buffer fill level in [0, 1] at issue (flexFTL policy input).
  double buffer_utilization = 0.0;
  /// FDP-style write-stream / placement hint. 0 = the default stream
  /// (exactly the pre-multi-tenant behavior); the multi-queue frontend
  /// assigns one stream per tenant so the allocator can segregate their
  /// data onto distinct active blocks.
  std::uint32_t stream = 0;
  /// Chain page j on page j-1 (journal-like strict ordering). Default:
  /// the pages of one request are independent and may stripe freely.
  bool ordered = false;
};

/// Sentinel: the op belongs to no plane group.
inline constexpr std::uint32_t kNoPlaneGroup = 0xffffffffu;

/// One page-granular NAND operation derived from a HostCommand.
struct NandOp {
  OpKind kind = OpKind::kHostWrite;
  Lpn lpn = 0;
  /// Indices within the same command's batch this op must wait for (the
  /// op becomes ready when the last dependency completes).
  std::vector<std::uint32_t> deps;
  /// Plane group within the command: consecutive unordered write pages are
  /// grouped planes_per_chip at a time, and the dispatcher steers the
  /// members of one group onto sibling planes of the same die so their
  /// cell windows overlap. kNoPlaneGroup with one plane per die.
  std::uint32_t plane_group = kNoPlaneGroup;
};

/// Split a command into its per-page op batch. `planes_per_chip` > 1
/// assigns plane groups to unordered write pages (ordered pages serialize
/// anyway, and reads are bound to whatever unit the mapping names).
std::vector<NandOp> split_request(const HostCommand& cmd,
                                  std::uint32_t planes_per_chip = 1);

}  // namespace rps::ctrl
