// parityFTL: FPS baseline with the adaptive paired-page pre-backup scheme
// of Lee et al. [6] (Section 4.1).
//
// Before an MSB program endangers previously written LSB data, a parity
// page covering that data must be durable. Under FPS at most two LSB pages
// can share one parity page, and exploiting inter-channel parallelism the
// scheme pairs LSB pages from different chips: every two LSB programs, the
// accumulated XOR parity is flushed to a backup block (itself written in
// FPS order — RPS is what later makes LSB-only backup blocks possible).
// An MSB program whose paired LSB is not yet covered forces a synchronous
// partial flush and waits for it.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/ftl/page_ftl.hpp"
#include "src/util/map_recycle.hpp"

namespace rps::ftl {

class ParityFtl : public PageFtl {
 public:
  explicit ParityFtl(const FtlConfig& config);

  [[nodiscard]] std::string_view name() const override { return "parityFTL"; }

  /// LSB pages accumulated but not yet flushed (observable for tests).
  [[nodiscard]] std::size_t pending_lsb_pages() const { return pending_.size(); }
  /// Parity flushes that had to cover fewer than two LSB pages.
  [[nodiscard]] std::uint64_t partial_flushes() const { return partial_flushes_; }
  /// Parity writes skipped because no backup block could be allocated.
  [[nodiscard]] std::uint64_t skipped_backups() const { return skipped_backups_; }

  /// How many LSB pages share one parity page (fixed at 2 under FPS [6]).
  static constexpr std::size_t kLsbPagesPerParity = 2;

 protected:
  Microseconds before_program(const nand::PageAddress& addr, const nand::PageData& data,
                              Microseconds now, bool gc) override;

  void save_extra(ser::Writer& w) const override;
  void load_extra(ser::Reader& r) override;

 private:
  /// Flush the accumulated parity to a backup block; returns its durable
  /// time (or `now` when there was nothing to flush / no backup space).
  Microseconds flush_parity(Microseconds now);

  static std::uint64_t wl_key(const nand::PageAddress& addr) {
    return (static_cast<std::uint64_t>(addr.chip) << 44) |
           (static_cast<std::uint64_t>(addr.block) << 20) | addr.pos.wordline;
  }

  /// Backup blocks run in SLC mode: parity pages land on LSB pages only,
  /// back to back, at LSB program speed (an FPS device cannot legally
  /// sustain consecutive LSB programs on an MLC-mode block).
  struct SlcCursor {
    bool valid = false;
    std::uint32_t block = 0;
    std::uint32_t next = 0;  // next LSB word line
  };

  nand::PageData parity_acc_;
  std::vector<nand::PageAddress> pending_;  // LSB pages in the accumulator
  /// Word lines whose LSB data is covered by a durable parity page, with
  /// the flush completion time (MSB programs wait on it, then consume it).
  using DurableMap = std::unordered_map<std::uint64_t, Microseconds>;
  DurableMap parity_durable_at_;
  std::vector<DurableMap::node_type> durable_spares_;  // recycled nodes
  std::vector<SlcCursor> backup_;  // per-chip backup block cursors
  std::uint32_t backup_rr_ = 0;
  std::uint64_t partial_flushes_ = 0;
  std::uint64_t skipped_backups_ = 0;
};

}  // namespace rps::ftl
